#include "ledger/ledger.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>

#include "common/logging.hh"

namespace fs = std::filesystem;

namespace helios
{

namespace
{

/** Write @a text to @a path atomically: temp file + rename, so a
 *  crash mid-write can never leave a half-written file at @a path. */
void
writeFileAtomic(const std::string &path, const std::string &text)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            fatal("ledger: cannot open '%s' for writing", tmp.c_str());
        out << text;
        out.flush();
        if (!out)
            fatal("ledger: write to '%s' failed", tmp.c_str());
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec)
        fatal("ledger: cannot rename '%s' into place: %s", tmp.c_str(),
              ec.message().c_str());
}

/** Parse one index line into a record; nullptr on any damage (the
 *  caller warns and skips — recovery must never throw). */
std::unique_ptr<LedgerRecord>
parseIndexLine(const std::string &line)
{
    try {
        const JsonValue value = JsonValue::parse(line);
        if (value.get("schema").isNull() ||
            value.at("schema").asString() != "helios-ledger")
            return nullptr;
        auto record = std::make_unique<LedgerRecord>();
        record->key.programHash = value.at("program_hash").asUint();
        record->key.configHash = value.at("config_hash").asUint();
        record->key.budget = value.at("budget").asUint();
        record->key.build = value.at("build").asString();
        record->seq = value.at("seq").asUint();
        record->blob = value.at("blob").asString();
        record->meta = value.at("meta");
        return record;
    } catch (const FatalError &) {
        return nullptr;
    }
}

JsonValue
indexLineJson(const LedgerRecord &record)
{
    JsonValue value = JsonValue::object();
    value.set("schema", JsonValue(std::string("helios-ledger")));
    value.set("program_hash", JsonValue(record.key.programHash));
    value.set("config_hash", JsonValue(record.key.configHash));
    value.set("budget", JsonValue(record.key.budget));
    value.set("build", JsonValue(record.key.build));
    value.set("seq", JsonValue(record.seq));
    value.set("blob", JsonValue(record.blob));
    value.set("meta", record.meta);
    return value;
}

/** File names must not escape the ledger directory; the build stamp
 *  is the only free-form key component. */
std::string
sanitizeForFileName(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        const bool safe = (c >= 'a' && c <= 'z') ||
                          (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '-' ||
                          c == '_' || c == '.';
        out += safe ? c : '_';
    }
    return out.empty() ? std::string("unknown") : out;
}

} // namespace

std::string
LedgerKey::text() const
{
    return strFormat("p%016llx-c%016llx-b%llu-%s",
                     (unsigned long long)programHash,
                     (unsigned long long)configHash,
                     (unsigned long long)budget,
                     sanitizeForFileName(build).c_str());
}

Ledger::Ledger(const std::string &dir) : dir_(dir)
{
    std::error_code ec;
    fs::create_directories(fs::path(dir_) / "blobs", ec);
    if (ec)
        fatal("ledger: cannot create '%s': %s", dir_.c_str(),
              ec.message().c_str());

    std::ifstream in(indexPath(), std::ios::binary);
    if (!in)
        return; // fresh ledger
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    bool damaged = false;
    size_t start = 0, line_no = 0;
    while (start < text.size()) {
        ++line_no;
        const size_t newline = text.find('\n', start);
        if (newline == std::string::npos) {
            // No terminating newline: the classic crash-mid-append
            // truncated tail. Drop it.
            warn("ledger: %s: dropping truncated final line %zu "
                 "(crash during append?)",
                 indexPath().c_str(), line_no);
            ++warnings_;
            damaged = true;
            break;
        }
        const std::string line = text.substr(start, newline - start);
        start = newline + 1;
        if (line.empty())
            continue;
        std::unique_ptr<LedgerRecord> record = parseIndexLine(line);
        if (!record) {
            warn("ledger: %s: skipping malformed line %zu",
                 indexPath().c_str(), line_no);
            ++warnings_;
            damaged = true;
            continue;
        }
        if (findLocked(record->key)) {
            warn("ledger: %s: duplicate key %s at line %zu "
                 "(keeping the first record)",
                 indexPath().c_str(), record->key.text().c_str(),
                 line_no);
            ++warnings_;
            damaged = true;
            continue;
        }
        nextSeq_ = std::max(nextSeq_, record->seq + 1);
        records_.push_back(std::move(*record));
    }

    // Compact a damaged index right away so the next append lands on
    // a clean tail instead of concatenating onto garbage.
    if (damaged)
        rewriteIndexLocked();
}

std::string
Ledger::indexPath() const
{
    return (fs::path(dir_) / "index.jsonl").string();
}

const LedgerRecord *
Ledger::findLocked(const LedgerKey &key) const
{
    for (const LedgerRecord &record : records_)
        if (record.key == key)
            return &record;
    return nullptr;
}

const LedgerRecord *
Ledger::find(const LedgerKey &key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return findLocked(key);
}

bool
Ledger::record(const LedgerKey &key, JsonValue meta,
               const std::string &blob_text)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (const LedgerRecord *existing = findLocked(key)) {
        ++hits_;
        // Self-heal: a hit whose blob rotted away is re-materialized
        // from the fresh run (determinism: same key, same content).
        const fs::path blob_path = fs::path(dir_) / existing->blob;
        std::error_code ec;
        if (!fs::exists(blob_path, ec))
            writeFileAtomic(blob_path.string(), blob_text);
        return false;
    }

    LedgerRecord record;
    record.key = key;
    record.seq = nextSeq_++;
    record.meta = std::move(meta);
    record.blob = "blobs/" + key.text() + ".json";

    // Blob first, index line second: a crash in between leaves an
    // orphan blob (gc cleans those up), never an index entry pointing
    // at a half-written blob.
    writeFileAtomic((fs::path(dir_) / record.blob).string(), blob_text);

    std::ofstream out(indexPath(), std::ios::binary | std::ios::app);
    if (!out)
        fatal("ledger: cannot open '%s' for append",
              indexPath().c_str());
    out << indexLineJson(record).dump(0) << '\n';
    out.flush();
    if (!out)
        fatal("ledger: append to '%s' failed", indexPath().c_str());

    records_.push_back(std::move(record));
    ++recorded_;
    return true;
}

std::string
Ledger::loadBlob(const LedgerRecord &record) const
{
    std::ifstream in(fs::path(dir_) / record.blob, std::ios::binary);
    if (!in) {
        warn("ledger: blob '%s' for key %s is missing or unreadable",
             record.blob.c_str(), record.key.text().c_str());
        return "";
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void
Ledger::rewriteIndexLocked() const
{
    std::string text;
    for (const LedgerRecord &record : records_)
        text += indexLineJson(record).dump(0) + "\n";
    writeFileAtomic(indexPath(), text);
}

size_t
Ledger::gc()
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::set<std::string> referenced;
    for (const LedgerRecord &record : records_)
        referenced.insert(
            (fs::path(dir_) / record.blob).lexically_normal().string());

    size_t removed = 0;
    std::error_code ec;
    for (const fs::directory_entry &entry :
         fs::directory_iterator(fs::path(dir_) / "blobs", ec)) {
        if (!entry.is_regular_file())
            continue;
        const std::string path =
            entry.path().lexically_normal().string();
        if (referenced.count(path))
            continue;
        std::error_code remove_ec;
        if (fs::remove(entry.path(), remove_ec))
            ++removed;
    }
    rewriteIndexLocked();
    return removed;
}

// ---------------------------------------------------------------------
// Global armed instance
// ---------------------------------------------------------------------

namespace
{

std::unique_ptr<Ledger> &
globalSlot()
{
    static std::unique_ptr<Ledger> instance;
    return instance;
}

} // namespace

Ledger *
Ledger::global()
{
    return globalSlot().get();
}

Ledger *
Ledger::arm(const std::string &dir)
{
    globalSlot() = std::make_unique<Ledger>(dir);
    return globalSlot().get();
}

void
Ledger::disarm()
{
    globalSlot().reset();
}

void
initLedgerFromEnv()
{
    if (Ledger::global())
        return;
    if (const char *dir = std::getenv("HELIOS_LEDGER"))
        if (dir[0] != '\0')
            Ledger::arm(dir);
}

} // namespace helios
