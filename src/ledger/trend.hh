/**
 * @file
 * Trend analysis over a run ledger: any numeric meta field (IPC,
 * fusion coverage, cells/s, peak RSS, ...) as an append-order series
 * per workload × configuration, with regression flagging of the
 * latest point against a rolling window of its predecessors.
 *
 * This is the CI drift observatory's brain: the committed ledger seed
 * plus every recorded CI sweep form the history, and a latest point
 * that drifts past the tolerance relative to the rolling-window mean
 * fails the build (`helios_db trend`, exit 1). Pure computation over
 * LedgerRecord meta — no I/O — so the synthetic-history regression
 * tests drive it directly.
 */

#ifndef LEDGER_TREND_HH
#define LEDGER_TREND_HH

#include <cstdint>
#include <string>
#include <vector>

namespace helios
{

class Ledger;

/** One observation of a metric (a ledger record's meta field). */
struct TrendPoint
{
    uint64_t seq = 0;    ///< ledger append order (the time axis)
    double value = 0.0;
    std::string build;   ///< build stamp the value was recorded under
};

/** One workload × configuration × budget series of a single metric.
 *  Budget is part of the grouping key: a budget-capped run and a
 *  run-to-completion of the same workload are different experiments,
 *  and mixing them would fabricate drift. */
struct TrendSeries
{
    std::string workload;
    std::string mode;
    uint64_t budget = 0;
    std::string metric;
    std::vector<TrendPoint> points; ///< seq-ascending
};

/** A latest point that drifted past tolerance vs its window. */
struct TrendFlag
{
    std::string workload;
    std::string mode;
    std::string metric;
    double latest = 0.0;
    double reference = 0.0; ///< rolling-window mean it was held to
    double delta = 0.0;     ///< (latest - reference) / reference
};

struct TrendOptions
{
    /** Rolling-window size: the latest point is compared against the
     *  mean of up to this many immediately preceding points. */
    size_t window = 5;
    /** Relative drift tolerance (0.02 = 2%). */
    double tolerance = 0.02;
    /** Direction of "worse": true flags drops (IPC, coverage,
     *  throughput), false flags rises (peak RSS, wall-clock). */
    bool higherIsBetter = true;
};

/**
 * Extract every (workload, mode) series of @a metric from the
 * ledger's records. Records whose meta lacks the metric (or carries a
 * non-number) are skipped. Series are ordered by first appearance;
 * points are seq-ascending.
 */
std::vector<TrendSeries> collectTrendSeries(const Ledger &ledger,
                                            const std::string &metric);

/**
 * Flag the latest point of @a series when it drifted past the
 * tolerance relative to the mean of its rolling window. A series with
 * fewer than two points has no history to drift from and never flags.
 * A zero reference (empty window mean) never flags — there is no
 * meaningful relative drift from zero.
 */
std::vector<TrendFlag> analyzeTrend(const TrendSeries &series,
                                    const TrendOptions &options);

} // namespace helios

#endif // LEDGER_TREND_HH
