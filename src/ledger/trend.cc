#include "ledger/trend.hh"

#include <algorithm>
#include <cmath>

#include "ledger/ledger.hh"

namespace helios
{

std::vector<TrendSeries>
collectTrendSeries(const Ledger &ledger, const std::string &metric)
{
    std::vector<TrendSeries> series;
    for (const LedgerRecord &record : ledger.records()) {
        if (record.meta.kind() != JsonValue::Kind::Object)
            continue;
        const JsonValue &value = record.meta.get(metric);
        if (!value.isNumber())
            continue;

        const JsonValue &wl = record.meta.get("workload");
        const JsonValue &mode = record.meta.get("mode");
        TrendPoint point;
        point.seq = record.seq;
        point.value = value.asDouble();
        point.build = record.key.build;

        TrendSeries *target = nullptr;
        for (TrendSeries &candidate : series) {
            if (candidate.workload ==
                    (wl.isNull() ? "" : wl.asString()) &&
                candidate.mode ==
                    (mode.isNull() ? "" : mode.asString()) &&
                candidate.budget == record.key.budget) {
                target = &candidate;
                break;
            }
        }
        if (!target) {
            series.emplace_back();
            target = &series.back();
            target->workload = wl.isNull() ? "" : wl.asString();
            target->mode = mode.isNull() ? "" : mode.asString();
            target->budget = record.key.budget;
            target->metric = metric;
        }
        target->points.push_back(point);
    }

    // Records are already seq-ordered, but a merged or hand-edited
    // ledger might not be; the time axis must be.
    for (TrendSeries &s : series)
        std::stable_sort(s.points.begin(), s.points.end(),
                         [](const TrendPoint &a, const TrendPoint &b) {
                             return a.seq < b.seq;
                         });
    return series;
}

std::vector<TrendFlag>
analyzeTrend(const TrendSeries &series, const TrendOptions &options)
{
    std::vector<TrendFlag> flags;
    if (series.points.size() < 2 || options.window == 0)
        return flags;

    const TrendPoint &latest = series.points.back();
    const size_t history = series.points.size() - 1;
    const size_t count = std::min(options.window, history);
    double sum = 0.0;
    for (size_t i = history - count; i < history; ++i)
        sum += series.points[i].value;
    const double reference = sum / double(count);
    if (reference == 0.0 || !std::isfinite(reference))
        return flags;

    const double delta = (latest.value - reference) / reference;
    const bool worse = options.higherIsBetter
                           ? delta < -options.tolerance
                           : delta > options.tolerance;
    if (!worse)
        return flags;

    TrendFlag flag;
    flag.workload = series.workload;
    flag.mode = series.mode;
    flag.metric = series.metric;
    flag.latest = latest.value;
    flag.reference = reference;
    flag.delta = delta;
    flags.push_back(flag);
    return flags;
}

} // namespace helios
