/**
 * @file
 * Persistent, content-addressed run ledger.
 *
 * The repo's memory across runs: an append-only on-disk store of
 * finished simulation results, keyed by what makes a run what it is —
 * (program hash, config hash, instruction budget, build stamp).
 * Determinism makes every record a free replay: two runs with the
 * same key are bit-identical, so a keyed hit answers a query without
 * re-simulating. That is the memoization substrate the
 * simulation-as-a-service daemon and the design-space autotuner
 * (ROADMAP.md) are built on, and `bench/helios_db` turns the same
 * store into a longitudinal database (list / trend / diff across
 * builds).
 *
 * On-disk layout (one directory):
 *
 *   index.jsonl        one JSON object per record, append-only
 *   blobs/<key>.json   the full RunReport file of that run
 *
 * Crash tolerance, in order of likelihood:
 *  - a crash mid-append leaves a truncated final index line: dropped
 *    with a warning on open, and the index is compacted so the next
 *    append starts from a clean tail;
 *  - any malformed line (bit rot, hand edits) is skipped with a
 *    warning — the ledger NEVER refuses to open;
 *  - blobs are written to a temp file and rename()d, so a half-
 *    written blob cannot appear under a committed key; a blob that is
 *    missing or corrupt anyway (copied ledgers, disk faults) degrades
 *    to a warning on access and is re-recorded on the next run;
 *  - duplicate keys (re-ingest, merged ledgers) keep the first record
 *    and warn.
 *
 * The store itself is schema-agnostic: records carry an opaque JSON
 * `meta` object (workload, mode, ipc, ... — whatever the producer
 * wants to query on) plus a blob of text. Everything RunReport-shaped
 * lives one layer up, in harness/run_ledger.* and bench/helios_db.
 * All mutators are thread-safe (parallel runMatrix workers record
 * concurrently).
 */

#ifndef LEDGER_LEDGER_HH
#define LEDGER_LEDGER_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.hh"

namespace helios
{

/** What identifies a run: equal keys are bit-identical replays. */
struct LedgerKey
{
    uint64_t programHash = 0; ///< Program::sourceHash fingerprint
    uint64_t configHash = 0;  ///< configHash(CoreParams)
    uint64_t budget = 0;      ///< instruction budget (0: unbounded)
    std::string build;        ///< build stamp (git hash or override)

    /** Canonical file-name-safe spelling:
     *  "p<16hex>-c<16hex>-b<dec>-<build>". */
    std::string text() const;

    bool operator==(const LedgerKey &other) const = default;
};

/** One ledger entry: a key, queryable metadata, and a blob pointer. */
struct LedgerRecord
{
    LedgerKey key;
    uint64_t seq = 0;  ///< append order; the trend time axis
    JsonValue meta;    ///< flat object: workload, mode, ipc, ...
    std::string blob;  ///< blob path relative to the ledger directory
};

class Ledger
{
  public:
    /** Open (creating directories as needed) and recover the index;
     *  fatal() only when the directory cannot be created or the index
     *  cannot be read at all — damaged content is recovered, not
     *  fatal. */
    explicit Ledger(const std::string &dir);

    const std::string &dir() const { return dir_; }

    /** All recovered + appended records, in seq order. */
    const std::vector<LedgerRecord> &records() const { return records_; }

    const LedgerRecord *find(const LedgerKey &key) const;

    /**
     * Record one finished run: write the blob (atomically), then
     * append the index line. Returns false on a keyed hit — the run
     * is already known and nothing is written (a corrupt or missing
     * blob under the key is silently healed by rewriting it).
     */
    bool record(const LedgerKey &key, JsonValue meta,
                const std::string &blob_text);

    /** The record's blob text; empty string + warn() when the blob
     *  file is missing or unreadable (never throws). */
    std::string loadBlob(const LedgerRecord &record) const;

    /**
     * Garbage-collect: delete blob files no index record references
     * (crash leftovers, removed records) and compact the index file
     * to exactly the surviving records. Returns the number of blob
     * files removed.
     */
    size_t gc();

    /** warn()s issued while recovering the index (damage observed). */
    unsigned recoveryWarnings() const { return warnings_; }

    /** Appends / keyed hits since this Ledger was opened. */
    uint64_t recorded() const { return recorded_; }
    uint64_t hits() const { return hits_; }

    // ---- process-global armed instance ----------------------------
    // The harness records every finished run when a global ledger is
    // armed (helios_run --ledger DIR, HELIOS_LEDGER=DIR via
    // printBenchHeader); nullptr when disarmed (the default).
    static Ledger *global();
    static Ledger *arm(const std::string &dir);
    static void disarm(); ///< tests

    Ledger(const Ledger &) = delete;
    Ledger &operator=(const Ledger &) = delete;

  private:
    std::string indexPath() const;
    const LedgerRecord *findLocked(const LedgerKey &key) const;
    void rewriteIndexLocked() const;

    std::string dir_;
    std::vector<LedgerRecord> records_;
    uint64_t nextSeq_ = 0;
    unsigned warnings_ = 0;
    uint64_t recorded_ = 0;
    uint64_t hits_ = 0;
    mutable std::mutex mutex_;
};

/** Arm the global ledger from HELIOS_LEDGER; no-op when the variable
 *  is unset or a ledger is already armed. printBenchHeader and
 *  helios_run call this, so every bench records under
 *  HELIOS_LEDGER=DIR with no per-tool plumbing. */
void initLedgerFromEnv();

} // namespace helios

#endif // LEDGER_LEDGER_HH
