#include "sim/hart.hh"

#include <algorithm>
#include <iterator>

#include "common/bits.hh"
#include "common/logging.hh"
#include "isa/decoder.hh"
#include "isa/disasm.hh"
#include "sim/checkpoint.hh"

namespace helios
{

namespace
{

int64_t s64(uint64_t v) { return static_cast<int64_t>(v); }
int32_t s32(uint64_t v) { return static_cast<int32_t>(v); }

uint64_t
sext32(uint64_t v)
{
    return static_cast<uint64_t>(static_cast<int64_t>(s32(v)));
}

uint64_t
mulhu64(uint64_t a, uint64_t b)
{
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(a) * b) >> 64);
}

uint64_t
mulh64(int64_t a, int64_t b)
{
    return static_cast<uint64_t>(
        (static_cast<__int128>(a) * b) >> 64);
}

uint64_t
mulhsu64(int64_t a, uint64_t b)
{
    return static_cast<uint64_t>(
        (static_cast<__int128>(a) *
         static_cast<unsigned __int128>(b)) >> 64);
}

} // namespace

Hart::Hart(Memory &memory) : mem(memory) {}

void
Hart::reset(const Program &prog)
{
    for (uint64_t &reg : regs)
        reg = 0;
    regs[RegSp] = defaultStackTop;
    thePc = prog.entry;
    seq = 0;
    hasExited = false;
    theExitCode = 0;
    theOutput.clear();
    mem.loadProgram(prog);

    // The heap floor: where the ELF loader placed it, or one page
    // above the highest loaded byte for assembled kernels. The shim
    // refuses to grow brk past guestImageLimit (the stack reserve).
    const uint64_t brk_base = prog.brkBase
                                  ? prog.brkBase
                                  : alignUp(prog.imageEnd(),
                                            Memory::pageSize);
    sys.reset(brk_base, guestImageLimit);
    sys.setStdin(prog.stdinData);
    if (prog.linuxAbi)
        setupStartStack(prog);

    predecoded.clear();
    fastCache.clear();
    textBase = prog.textBase;
    textLimit = prog.textBase + 4 * prog.code.size();
    if (cacheWanted) {
        predecoded.reserve(prog.code.size());
        for (uint32_t word : prog.code)
            predecoded.push_back(decode(word));
    }
}

Checkpoint
Hart::makeCheckpoint(uint64_t program_hash) const
{
    Checkpoint ckpt;
    ckpt.programHash = program_hash;
    ckpt.instIndex = seq;
    std::copy(std::begin(regs), std::end(regs),
              std::begin(ckpt.regs));
    ckpt.pc = thePc;
    ckpt.exited = hasExited;
    ckpt.exitCode = theExitCode;
    ckpt.output = theOutput;
    ckpt.textBase = textBase;
    ckpt.textLimit = textLimit;
    ckpt.sys = sys.state();
    mem.forEachResidentPage([&](uint64_t index, const uint8_t *data) {
        Checkpoint::PageRecord page;
        page.index = index;
        page.bytes.assign(data, data + Memory::pageSize);
        ckpt.pages.push_back(std::move(page));
    });
    return ckpt;
}

void
Hart::restoreCheckpoint(const Checkpoint &ckpt)
{
    // Restoring on top of live pages would leave stale residents the
    // checkpoint never knew about, silently skewing checksums.
    if (mem.numPages() != 0)
        fatal("checkpoint restore needs a fresh Memory (%zu pages "
              "already resident)",
              mem.numPages());

    std::copy(std::begin(ckpt.regs), std::end(ckpt.regs),
              std::begin(regs));
    thePc = ckpt.pc;
    seq = ckpt.instIndex;
    hasExited = ckpt.exited;
    theExitCode = ckpt.exitCode;
    theOutput = ckpt.output;
    sys.restoreState(ckpt.sys);

    // writeBlock marks residency exactly as the original run's stores
    // did, so numPages()/checksum() match the checkpointed state.
    for (const Checkpoint::PageRecord &page : ckpt.pages)
        mem.writeBlock(page.index << Memory::pageBits,
                       page.bytes.data(), page.bytes.size());

    // Rebuild the pre-decoded caches from the restored image, exactly
    // as reset() derives them from a fresh program: a run that
    // patched its own text before the cut predecodes the *patched*
    // words here.
    textBase = ckpt.textBase;
    textLimit = ckpt.textLimit;
    predecoded.clear();
    fastCache.clear();
    if (cacheWanted && textLimit > textBase) {
        predecoded.reserve((textLimit - textBase) / 4);
        for (uint64_t addr = textBase; addr < textLimit; addr += 4)
            predecoded.push_back(
                decode(static_cast<uint32_t>(mem.read(addr, 4))));
    }
}

void
Hart::setDecodeCacheEnabled(bool enabled)
{
    cacheWanted = enabled;
    if (!enabled)
        predecoded.clear();
}

const Instruction &
Hart::fetch(uint64_t pc, Instruction &scratch)
{
    const uint64_t offset = pc - textBase;
    if (offset < predecoded.size() * 4 && (offset & 3) == 0)
        return predecoded[offset >> 2];
    scratch = decode(static_cast<uint32_t>(mem.read(pc, 4)));
    return scratch;
}

void
Hart::setupStartStack(const Program &prog)
{
    // The Linux process start contract (System V gABI as the RISC-V
    // kernel implements it): sp points at argc; above it the argv
    // pointer array (NULL-terminated), the (empty) envp array's NULL,
    // and the auxiliary vector; the strings and the AT_RANDOM bytes
    // live higher still, below the stack top. Everything written
    // here is deterministic, so engine/config differentials see
    // identical memory.
    uint64_t sp = regs[RegSp];

    std::vector<uint64_t> arg_ptrs;
    for (const std::string &arg : prog.argv) {
        sp -= arg.size() + 1;
        mem.writeBlock(sp, arg.c_str(), arg.size() + 1);
        arg_ptrs.push_back(sp);
    }

    // 16 deterministic bytes for AT_RANDOM (musl seeds its stack
    // protector from these).
    static const uint8_t at_random[16] = {0x68, 0x65, 0x6c, 0x69,
                                          0x6f, 0x73, 0x2d, 0x61,
                                          0x74, 0x2d, 0x72, 0x6e,
                                          0x64, 0x30, 0x31, 0x36};
    sp -= sizeof(at_random);
    const uint64_t random_ptr = sp;
    mem.writeBlock(sp, at_random, sizeof(at_random));

    // auxv: AT_PAGESZ, AT_RANDOM, AT_NULL.
    const uint64_t auxv[] = {6, Memory::pageSize, 25, random_ptr, 0, 0};
    const size_t words = 1 + arg_ptrs.size() + 1 // argc, argv, NULL
                         + 1                     // envp: NULL
                         + std::size(auxv);
    sp = (sp - 8 * words) & ~uint64_t(15);

    uint64_t slot = sp;
    const auto push = [&](uint64_t value) {
        mem.write(slot, value, 8);
        slot += 8;
    };
    push(arg_ptrs.size());
    for (uint64_t ptr : arg_ptrs)
        push(ptr);
    push(0);
    push(0);
    for (uint64_t value : auxv)
        push(value);

    regs[RegSp] = sp;
    // Mirror argc/argv into a0/a1: Linux leaves registers undefined
    // and crt0 reads the stack, but newlib-style bare entry points
    // take them as arguments; serving both costs nothing.
    regs[RegA0] = arg_ptrs.size();
    regs[RegA1] = sp + 8;
}

void
Hart::invalidateText(uint64_t addr, uint64_t size)
{
    if (addr >= textLimit || addr + size <= textBase)
        return;
    const uint64_t lo = std::max(addr, textBase);
    const uint64_t hi = std::min(addr + size - 1, textLimit - 1);
    const uint64_t lo_word = (lo - textBase) >> 2;
    const uint64_t hi_word = (hi - textBase) >> 2;
    if (!predecoded.empty())
        for (uint64_t word = lo_word; word <= hi_word; ++word)
            predecoded[word] = decode(static_cast<uint32_t>(
                mem.read(textBase + 4 * word, 4)));
    if (fastCache.built())
        fastCache.invalidate(mem, lo_word, hi_word);
}

uint64_t
Hart::archChecksum() const
{
    uint64_t hash = 1469598103934665603ULL; // FNV offset basis
    constexpr uint64_t prime = 1099511628211ULL;
    auto mix = [&hash](uint64_t value) {
        for (unsigned shift = 0; shift < 64; shift += 8) {
            hash ^= (value >> shift) & 0xff;
            hash *= prime;
        }
    };
    for (uint64_t reg : regs)
        mix(reg);
    mix(thePc);
    mix(hasExited ? theExitCode + 1 : 0);
    for (char c : theOutput) {
        hash ^= uint8_t(c);
        hash *= prime;
    }
    return hash;
}

void
Hart::setReg(unsigned index, uint64_t value)
{
    helios_assert(index < numArchRegs, "register index out of range");
    if (index != RegZero)
        regs[index] = value;
}

bool
Hart::step(DynInst &out)
{
    if (hasExited)
        return false;

    Instruction scratch;
    const Instruction &inst = fetch(thePc, scratch);
    if (inst.op == Op::Invalid)
        fatal("invalid instruction 0x%08x at pc 0x%llx", inst.raw,
              static_cast<unsigned long long>(thePc));

    out = DynInst{};
    out.seq = seq++;
    out.pc = thePc;
    out.inst = inst;

    // Execute from the copy in `out`: a store into the text segment
    // re-decodes cache entries, which would invalidate `inst` if it
    // referred into the cache.
    execute(out.inst, out);

    out.nextPc = thePc;
    return true;
}

uint64_t
Hart::run(uint64_t max_insts)
{
    DynInst rec;
    uint64_t executed = 0;
    while (executed < max_insts && step(rec))
        ++executed;
    return executed;
}

void
Hart::execute(const Instruction &inst, DynInst &rec)
{
    const uint64_t a = regs[inst.rs1];
    const uint64_t b = regs[inst.rs2];
    const int64_t imm = inst.imm;
    uint64_t next_pc = thePc + 4;
    uint64_t result = 0;
    bool writes = inst.writesReg();

    switch (inst.op) {
      case Op::Lui:
        result = static_cast<uint64_t>(imm << 12);
        break;
      case Op::Auipc:
        result = thePc + static_cast<uint64_t>(imm << 12);
        break;
      case Op::Jal:
        result = thePc + 4;
        next_pc = thePc + static_cast<uint64_t>(imm);
        rec.taken = true;
        break;
      case Op::Jalr:
        result = thePc + 4;
        next_pc = (a + static_cast<uint64_t>(imm)) & ~1ULL;
        rec.taken = true;
        break;

      case Op::Beq: rec.taken = a == b; break;
      case Op::Bne: rec.taken = a != b; break;
      case Op::Blt: rec.taken = s64(a) < s64(b); break;
      case Op::Bge: rec.taken = s64(a) >= s64(b); break;
      case Op::Bltu: rec.taken = a < b; break;
      case Op::Bgeu: rec.taken = a >= b; break;

      case Op::Lb: case Op::Lh: case Op::Lw: case Op::Ld:
      case Op::Lbu: case Op::Lhu: case Op::Lwu: {
        const uint64_t addr = a + static_cast<uint64_t>(imm);
        rec.effAddr = addr;
        const uint64_t raw = mem.read(addr, inst.memSize());
        if (inst.info().memSigned)
            result = static_cast<uint64_t>(
                sextBits(raw, 8 * inst.memSize()));
        else
            result = raw;
        break;
      }

      case Op::Sb: case Op::Sh: case Op::Sw: case Op::Sd: {
        const uint64_t addr = a + static_cast<uint64_t>(imm);
        rec.effAddr = addr;
        mem.write(addr, b, inst.memSize());
        invalidateText(addr, inst.memSize());
        break;
      }

      case Op::Addi: result = a + static_cast<uint64_t>(imm); break;
      case Op::Slti: result = s64(a) < imm ? 1 : 0; break;
      case Op::Sltiu:
        result = a < static_cast<uint64_t>(imm) ? 1 : 0;
        break;
      case Op::Xori: result = a ^ static_cast<uint64_t>(imm); break;
      case Op::Ori: result = a | static_cast<uint64_t>(imm); break;
      case Op::Andi: result = a & static_cast<uint64_t>(imm); break;
      case Op::Slli: result = a << (imm & 63); break;
      case Op::Srli: result = a >> (imm & 63); break;
      case Op::Srai:
        result = static_cast<uint64_t>(s64(a) >> (imm & 63));
        break;

      case Op::Add: result = a + b; break;
      case Op::Sub: result = a - b; break;
      case Op::Sll: result = a << (b & 63); break;
      case Op::Slt: result = s64(a) < s64(b) ? 1 : 0; break;
      case Op::Sltu: result = a < b ? 1 : 0; break;
      case Op::Xor: result = a ^ b; break;
      case Op::Srl: result = a >> (b & 63); break;
      case Op::Sra:
        result = static_cast<uint64_t>(s64(a) >> (b & 63));
        break;
      case Op::Or: result = a | b; break;
      case Op::And: result = a & b; break;

      case Op::Addiw:
        result = sext32(a + static_cast<uint64_t>(imm));
        break;
      case Op::Slliw: result = sext32(a << (imm & 31)); break;
      case Op::Srliw:
        result = sext32(static_cast<uint32_t>(a) >> (imm & 31));
        break;
      case Op::Sraiw:
        result = static_cast<uint64_t>(
            static_cast<int64_t>(s32(a) >> (imm & 31)));
        break;
      case Op::Addw: result = sext32(a + b); break;
      case Op::Subw: result = sext32(a - b); break;
      case Op::Sllw: result = sext32(a << (b & 31)); break;
      case Op::Srlw:
        result = sext32(static_cast<uint32_t>(a) >> (b & 31));
        break;
      case Op::Sraw:
        result = static_cast<uint64_t>(
            static_cast<int64_t>(s32(a) >> (b & 31)));
        break;

      case Op::Mul: result = a * b; break;
      case Op::Mulh: result = mulh64(s64(a), s64(b)); break;
      case Op::Mulhsu: result = mulhsu64(s64(a), b); break;
      case Op::Mulhu: result = mulhu64(a, b); break;
      case Op::Div:
        if (b == 0)
            result = ~0ULL;
        else if (s64(a) == INT64_MIN && s64(b) == -1)
            result = a;
        else
            result = static_cast<uint64_t>(s64(a) / s64(b));
        break;
      case Op::Divu: result = b == 0 ? ~0ULL : a / b; break;
      case Op::Rem:
        if (b == 0)
            result = a;
        else if (s64(a) == INT64_MIN && s64(b) == -1)
            result = 0;
        else
            result = static_cast<uint64_t>(s64(a) % s64(b));
        break;
      case Op::Remu: result = b == 0 ? a : a % b; break;

      case Op::Mulw: result = sext32(a * b); break;
      case Op::Divw: {
        const int32_t da = s32(a), db = s32(b);
        if (db == 0)
            result = ~0ULL;
        else if (da == INT32_MIN && db == -1)
            result = sext32(static_cast<uint64_t>(
                static_cast<uint32_t>(da)));
        else
            result = static_cast<uint64_t>(
                static_cast<int64_t>(da / db));
        break;
      }
      case Op::Divuw: {
        const uint32_t da = static_cast<uint32_t>(a);
        const uint32_t db = static_cast<uint32_t>(b);
        result = db == 0 ? ~0ULL : sext32(da / db);
        break;
      }
      case Op::Remw: {
        const int32_t da = s32(a), db = s32(b);
        if (db == 0)
            result = sext32(a);
        else if (da == INT32_MIN && db == -1)
            result = 0;
        else
            result = static_cast<uint64_t>(
                static_cast<int64_t>(da % db));
        break;
      }
      case Op::Remuw: {
        const uint32_t da = static_cast<uint32_t>(a);
        const uint32_t db = static_cast<uint32_t>(b);
        result = db == 0 ? sext32(a) : sext32(da % db);
        break;
      }

      case Op::Fence:
        break;
      case Op::Ecall:
        doEcall();
        break;
      case Op::Ebreak:
        fatal("ebreak at pc 0x%llx",
              static_cast<unsigned long long>(thePc));

      default:
        panic("unhandled opcode in Hart::execute: %s",
              disassemble(inst).c_str());
    }

    if (inst.isCondBranch() && rec.taken)
        next_pc = thePc + static_cast<uint64_t>(imm);

    if (writes)
        regs[inst.rd] = result;
    thePc = next_pc;
}

void
Hart::doEcall()
{
    const SyscallResult res = sys.handle(regs, mem, thePc, theOutput);
    if (res.exited) {
        hasExited = true;
        theExitCode = res.exitCode;
    }
    // A syscall that wrote guest memory (read(2), stat/clock stubs)
    // may have overwritten text: keep the decoder caches coherent
    // exactly as a store would.
    if (res.writeLen)
        invalidateText(res.writeAddr, res.writeLen);
}

} // namespace helios
