/**
 * @file
 * The functional RV64IM hart: architectural state plus an instruction-
 * at-a-time execution loop. Plays the role Spike plays in the paper's
 * infrastructure.
 */

#ifndef SIM_HART_HH
#define SIM_HART_HH

#include <cstdint>
#include <string>
#include <vector>

#include "asm/program.hh"
#include "sim/decoder_cache.hh"
#include "sim/memory.hh"
#include "sim/syscalls.hh"
#include "sim/trace.hh"

namespace helios
{

struct Checkpoint;

/**
 * Architectural state and functional execution.
 *
 * System interaction goes through the Linux user-mode ecall shim
 * (sim/syscalls.hh): exit/exit_group end the run, write/writev
 * append to the collected output string, read serves the program's
 * stdin buffer, brk grows the heap inside the low arena, and the
 * remaining stubs are deterministic. For a Program with linuxAbi set
 * (ELF images), reset() additionally builds the standard process
 * start stack — argc, argv pointers, NULL envp, minimal auxv, with
 * the strings copied below the stack top — and mirrors argc/argv
 * into a0/a1 for bare-metal style entry points.
 */
class Hart
{
  public:
    explicit Hart(Memory &memory);

    /** Reset state and load a program (sp points at the stack top). */
    void reset(const Program &prog);

    /**
     * Execute a single instruction.
     * @param out record of the executed instruction
     * @return false once the program has exited (out is untouched)
     */
    bool step(DynInst &out);

    /** Run to completion or until @a max_insts executed. */
    uint64_t run(uint64_t max_insts = UINT64_MAX);

    /**
     * Fast-forward run: same architectural semantics as run(), but
     * executed through the flat decoder cache with threaded dispatch
     * and basic-block stepping (src/sim/decoder_cache.{hh,cc}).
     * Bit-identical to run() — same registers, memory, pc, seq, exit
     * state and output — which the engine differential harness
     * asserts across the whole workload suite. The one documented
     * difference is fatal() paths (invalid/ebreak/unsupported ecall):
     * the fault fires with an identical message and pc, but
     * instsExecuted() is block-aligned rather than instruction-exact
     * when the throw unwinds.
     */
    uint64_t runFast(uint64_t max_insts = UINT64_MAX);

    /**
     * Traced single-step through the fast engine's decoder cache:
     * dispatches the pre-resolved entry (ignoring fused handlers) and
     * produces a DynInst bit-identical to step()'s. Exists so the
     * differential harness can prove stream equality between engines;
     * for throughput use runFast().
     */
    bool stepFast(DynInst &out);

    /** Fused entry pairs in the decoder cache (builds it if needed). */
    size_t fastFusedPairs();

    /** Static instruction slots in the decoder cache (ditto). */
    size_t fastCacheEntries();

    bool exited() const { return hasExited; }
    uint64_t exitCode() const { return theExitCode; }
    uint64_t pc() const { return thePc; }
    uint64_t instsExecuted() const { return seq; }
    const std::string &output() const { return theOutput; }

    uint64_t reg(unsigned index) const { return regs[index]; }
    void setReg(unsigned index, uint64_t value);

    /**
     * Checksum of the architectural register file, pc, exit status
     * and collected output. Combined with Memory::checksum() this
     * fingerprints the full architectural state, so the differential
     * harness can assert that every fusion configuration consumed an
     * identical functional execution.
     */
    uint64_t archChecksum() const;

    /**
     * Snapshot the full architectural state — registers, pc, seq,
     * exit status, collected output, syscall-shim state and every
     * resident memory page — into a Checkpoint cut at the current
     * dynamic instruction index. runFast(n) stops at an exact
     * instruction count, so a checkpoint can be cut anywhere in a
     * run: mid-basic-block, between the halves of a fused pair,
     * after self-modifying stores or mid-way through the stdin
     * buffer. Purely architectural (no decoder-cache or timing
     * state), so one checkpoint serves every configuration.
     *
     * @param program_hash Program::sourceHash, stamped into the
     *        checkpoint so restore sites can verify provenance
     */
    Checkpoint makeCheckpoint(uint64_t program_hash = 0) const;

    /**
     * Reinstate a checkpoint into this hart and its (freshly
     * constructed) Memory — the counterpart of reset(const Program&)
     * for a mid-run cut. Execution then continues bit-identically to
     * the run the checkpoint was cut from, through either engine.
     * The pre-decoded caches are rebuilt from the restored memory
     * image (never serialized), which is what makes post-SMC cuts
     * safe. fatal() when the Memory already holds resident pages.
     */
    void restoreCheckpoint(const Checkpoint &ckpt);

    /**
     * Enable/disable the pre-decoded program cache (enabled by
     * default). Takes effect at the next reset(); exists so tests can
     * compare cached and uncached execution bit-for-bit.
     */
    void setDecodeCacheEnabled(bool enabled);
    bool decodeCacheEnabled() const { return cacheWanted; }

    /** Static instructions currently held pre-decoded (0 if disabled). */
    size_t decodeCacheSize() const { return predecoded.size(); }

  private:
    /** Fetch + decode at @a pc, through the pre-decoded cache. */
    const Instruction &fetch(uint64_t pc, Instruction &scratch);

    /**
     * Re-decode cached words touched by a store (or a syscall that
     * wrote guest memory) into [addr, addr+size): repairs both the
     * reference engine's pre-decoded cache and the fast engine's
     * decoder cache (including block lengths and fused pairs
     * spanning the patched words).
     */
    void invalidateText(uint64_t addr, uint64_t size);

    /** Lazily build the fast engine's decoder cache. */
    void ensureFastCache();

    void execute(const Instruction &inst, DynInst &rec);
    void doEcall();

    /** Build the Linux process start stack (linuxAbi programs). */
    void setupStartStack(const Program &prog);

    Memory &mem;
    uint64_t regs[numArchRegs] = {};
    uint64_t thePc = 0;
    uint64_t seq = 0;
    bool hasExited = false;
    uint64_t theExitCode = 0;
    std::string theOutput;
    SyscallEmulator sys;

    // Pre-decoded program cache: each static instruction in
    // [textBase, textLimit) is decoded exactly once at reset() and
    // step() indexes it by (pc - textBase) / 4. Stores into the text
    // segment re-decode the overwritten words (self-modifying code).
    bool cacheWanted = true;
    std::vector<Instruction> predecoded;
    uint64_t textBase = 0;
    uint64_t textLimit = 0;

    // Fast-forward engine state: built lazily on the first
    // runFast()/stepFast() call, dropped at reset(), kept coherent
    // with memory by invalidateText().
    DecoderCache fastCache;

    // runFast()'s dispatch table: the decoder cache translated to
    // resolved handler pointers + packed operands. Tagged with the
    // cache version it was translated from; runFast() re-translates
    // whenever the version moves (rebuild or SMC invalidation).
    std::vector<RunEntry> runEntries;
    uint64_t runEntriesVersion = UINT64_MAX;
};

/** Feed adapter running a hart with an instruction budget. */
class HartFeed : public InstructionFeed
{
  public:
    HartFeed(Hart &hart, uint64_t max_insts = UINT64_MAX)
        : hart(hart), remaining(max_insts)
    {}

    bool
    next(DynInst &out) override
    {
        if (remaining == 0)
            return false;
        --remaining;
        return hart.step(out);
    }

  private:
    Hart &hart;
    uint64_t remaining;
};

} // namespace helios

#endif // SIM_HART_HH
