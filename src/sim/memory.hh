/**
 * @file
 * Byte-addressable 64-bit physical memory.
 *
 * The low 128 MiB — everything the assembler ever lays out (text at
 * 0x10000, data at 0x200000, stack below 0x7ff0000) — is backed by
 * one contiguous lazily-committed arena (calloc, so the OS hands out
 * zero pages on first touch), which makes a guest load a single
 * bounds check plus one host load with no page-table walk at all.
 * Addresses at or above the arena fall back to 4 KiB pages allocated
 * on first touch in a hash map. Uninitialized memory reads as zero in
 * both regions.
 *
 * Page residency is still tracked exactly — a bitmap for arena pages,
 * the map itself for high pages — because numPages() and checksum()
 * are architectural observables: the engine differential harness
 * compares them across engines, so a store must "materialize" its
 * page identically no matter which path executed it, and reads must
 * never materialize anything.
 */

#ifndef SIM_MEMORY_HH
#define SIM_MEMORY_HH

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "asm/program.hh"

namespace helios
{

/**
 * Contiguous-arena + sparse-page memory. Uninitialized memory reads
 * as zero.
 */
class Memory
{
  public:
    static constexpr uint64_t pageBits = 12;
    static constexpr uint64_t pageSize = 1ULL << pageBits;

    Memory();

    uint8_t
    readByte(uint64_t addr) const
    {
        if (addr < arenaBytes)
            return arena[addr];
        const Page *page = findHighPage(addr);
        return page ? (*page)[addr & (pageSize - 1)] : 0;
    }

    void
    writeByte(uint64_t addr, uint8_t value)
    {
        if (addr < arenaBytes) {
            markResident(addr >> pageBits);
            arena[addr] = value;
            return;
        }
        touchHighPage(addr)[addr & (pageSize - 1)] = value;
    }

    /** Little-endian multi-byte read of 1, 2, 4 or 8 bytes. */
    uint64_t read(uint64_t addr, unsigned size) const;

    /** Little-endian multi-byte write of 1, 2, 4 or 8 bytes. */
    void write(uint64_t addr, uint64_t value, unsigned size);

    /**
     * Compile-time-width load for the fast-forward engine: one bounds
     * check plus a memcpy the compiler folds into a single
     * zero-extending host load from the arena. Bit-identical to
     * read(addr, N): absent pages read as zero without being
     * materialized, and accesses outside the arena take the generic
     * path.
     */
    template <unsigned N>
    uint64_t
    loadFast(uint64_t addr) const
    {
        static_assert(N == 1 || N == 2 || N == 4 || N == 8);
        // The memcpy trick reuses the host byte order as the guest's.
        static_assert(std::endian::native == std::endian::little,
                      "fast path assumes a little-endian host");
        if (addr <= arenaBytes - N) {
            uint64_t value = 0;
            std::memcpy(&value, arena.get() + addr, N);
            return value;
        }
        return read(addr, N);
    }

    /**
     * Compile-time-width store counterpart of loadFast(). Marks the
     * touched page(s) resident exactly as write() would, so
     * numPages() and checksum() cannot diverge between the engines.
     */
    template <unsigned N>
    void
    storeFast(uint64_t addr, uint64_t value)
    {
        static_assert(N == 1 || N == 2 || N == 4 || N == 8);
        if (addr <= arenaBytes - N) {
            std::memcpy(arena.get() + addr, &value, N);
            const uint64_t first = addr >> pageBits;
            const uint64_t last = (addr + N - 1) >> pageBits;
            markResident(first);
            if (last != first)
                markResident(last);
            return;
        }
        write(addr, value, N);
    }

    /** Copy a block of bytes into memory. */
    void writeBlock(uint64_t addr, const void *src, size_t len);

    /** Copy a block of bytes out of memory. */
    void readBlock(uint64_t addr, void *dst, size_t len) const;

    /** Load an assembled program's text and data segments. */
    void loadProgram(const Program &prog);

    /** Number of resident pages (for tests / footprint reporting). */
    size_t
    numPages() const
    {
        size_t count = pages.size();
        for (uint64_t word : resident)
            count += size_t(std::popcount(word));
        return count;
    }

    /**
     * Order-independent content checksum (FNV-1a over resident pages
     * in ascending address order). Two memories that compare equal
     * byte-for-byte over resident pages produce the same value, so
     * the differential harness can compare final states across runs.
     */
    uint64_t checksum() const;

    /**
     * Visit every resident page in ascending page-index order: arena
     * pages via the residency bitmap (never the full arena scan),
     * then high pages sorted by index. The single source of truth for
     * "what is resident" — checksum() and the checkpoint serializer
     * (sim/checkpoint.hh) both walk through it, so a checkpoint
     * captures exactly the bytes the checksum fingerprints.
     */
    void forEachResidentPage(
        const std::function<void(uint64_t page_index,
                                 const uint8_t *data)> &visit) const;

    /** Has any store touched the page holding @a page_index? */
    bool
    pageResident(uint64_t page_index) const
    {
        if (page_index < arenaPages)
            return (resident[page_index >> 6] >>
                    (page_index & 63)) & 1;
        return pages.find(page_index) != pages.end();
    }

  private:
    using Page = std::array<uint8_t, pageSize>;

    /** Arena size: covers every address the assembler lays out. */
    static constexpr uint64_t arenaPages = 1ULL << 15;
    static constexpr uint64_t arenaBytes = arenaPages << pageBits;

    struct CallocDeleter
    {
        void operator()(uint8_t *p) const { std::free(p); }
    };

    void
    markResident(uint64_t page_index)
    {
        resident[page_index >> 6] |= 1ULL << (page_index & 63);
    }

    const Page *
    findHighPage(uint64_t addr) const
    {
        auto it = pages.find(addr >> pageBits);
        return it == pages.end() ? nullptr : it->second.get();
    }

    Page &
    touchHighPage(uint64_t addr)
    {
        std::unique_ptr<Page> &slot = pages[addr >> pageBits];
        if (!slot) {
            slot = std::make_unique<Page>();
            slot->fill(0);
        }
        return *slot;
    }

    /** The low-128 MiB arena (lazily committed zero pages). */
    std::unique_ptr<uint8_t[], CallocDeleter> arena;

    /** One bit per arena page: has any store touched it? */
    std::array<uint64_t, arenaPages / 64> resident{};

    /** Pages at or above arenaBytes, allocated on first store. */
    std::unordered_map<uint64_t, std::unique_ptr<Page>> pages;
};

} // namespace helios

#endif // SIM_MEMORY_HH
