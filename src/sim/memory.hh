/**
 * @file
 * Sparse byte-addressable 64-bit physical memory.
 */

#ifndef SIM_MEMORY_HH
#define SIM_MEMORY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "asm/program.hh"

namespace helios
{

/**
 * Sparse memory backed by 4 KiB pages allocated on first touch.
 * Uninitialized memory reads as zero.
 */
class Memory
{
  public:
    static constexpr uint64_t pageBits = 12;
    static constexpr uint64_t pageSize = 1ULL << pageBits;

    uint8_t
    readByte(uint64_t addr) const
    {
        const Page *page = findPage(addr);
        return page ? (*page)[addr & (pageSize - 1)] : 0;
    }

    void
    writeByte(uint64_t addr, uint8_t value)
    {
        touchPage(addr)[addr & (pageSize - 1)] = value;
    }

    /** Little-endian multi-byte read of 1, 2, 4 or 8 bytes. */
    uint64_t read(uint64_t addr, unsigned size) const;

    /** Little-endian multi-byte write of 1, 2, 4 or 8 bytes. */
    void write(uint64_t addr, uint64_t value, unsigned size);

    /** Copy a block of bytes into memory. */
    void writeBlock(uint64_t addr, const void *src, size_t len);

    /** Copy a block of bytes out of memory. */
    void readBlock(uint64_t addr, void *dst, size_t len) const;

    /** Load an assembled program's text and data segments. */
    void loadProgram(const Program &prog);

    /** Number of resident pages (for tests / footprint reporting). */
    size_t numPages() const { return pages.size(); }

    /**
     * Order-independent content checksum (FNV-1a over resident pages
     * in ascending address order). Two memories that compare equal
     * byte-for-byte over touched pages produce the same value, so the
     * differential harness can compare final states across runs.
     */
    uint64_t checksum() const;

  private:
    using Page = std::array<uint8_t, pageSize>;

    /**
     * Direct-mapped fast path: every address the assembler lays out
     * (text at 0x10000, data at 0x200000, stack below 0x7ff0000) sits
     * under 128 MiB, so a flat 32 K-entry page-pointer vector turns
     * the per-access hash lookup into one indexed load. Higher pages
     * fall back to the hash map, which stays the owner of every page
     * either way — numPages() and checksum() are unchanged.
     */
    static constexpr uint64_t flatPages = 1ULL << 15;

    const Page *
    findPage(uint64_t addr) const
    {
        const uint64_t index = addr >> pageBits;
        if (index < flatPages)
            return flat[index];
        auto it = pages.find(index);
        return it == pages.end() ? nullptr : it->second.get();
    }

    Page &
    touchPage(uint64_t addr)
    {
        const uint64_t index = addr >> pageBits;
        if (index < flatPages && flat[index])
            return *flat[index];
        std::unique_ptr<Page> &slot = pages[index];
        if (!slot) {
            slot = std::make_unique<Page>();
            slot->fill(0);
            if (index < flatPages)
                flat[index] = slot.get();
        }
        return *slot;
    }

    std::unordered_map<uint64_t, std::unique_ptr<Page>> pages;
    std::vector<Page *> flat = std::vector<Page *>(flatPages, nullptr);
};

} // namespace helios

#endif // SIM_MEMORY_HH
