/**
 * @file
 * Flat decoder cache for the fast-forward functional engine.
 *
 * One 16-byte FastEntry per static instruction word in the text
 * segment, indexed by (pc - textBase) >> 2, in the style of
 * libriscv's decoder cache: the handler is resolved at decode time
 * (a handler id the threaded dispatch loop feeds into a computed-goto
 * label table), the register fields are pre-extracted, and the
 * immediate is pre-folded as far as the ISA allows — branch and jal
 * targets and auipc results are stored as absolute 64-bit values so
 * the handlers never reconstruct a pc-relative offset.
 *
 * On top of the per-entry cache sits basic-block metadata: blockLen(w)
 * counts the instructions from word w to its block terminator
 * (inclusive), letting Hart::runFast() check the instruction budget
 * once per block instead of once per instruction. A final sentinel
 * entry (HidTextEnd) past the last word catches straight-line code
 * running off the end of text and routes it back to the reference
 * engine's fault path.
 *
 * Fusion: after the base entries are built, adjacent pairs matching
 * the paper's hottest idioms (lui+addi constant build, addi+branch
 * loop step, load+dependent ALU op) are re-pointed at fused handlers
 * that execute both instructions in one dispatch. Fusion only ever
 * changes the *head* entry's handler id — every architectural field
 * keeps the unfused instruction's semantics, so a jump landing on the
 * pair's tail executes it standalone and the traced single-stepper
 * can replay the exact reference DynInst stream from the same cache.
 *
 * SMC contract: Hart::invalidateText() (called by every store that
 * overlaps text) re-decodes the overwritten words and then rebuilds
 * the enclosing straight-line region — from the previous terminator
 * to the next one *under the new contents* — so both block lengths
 * and fused pairs spanning the patched words are recomputed before
 * the next block dispatch.
 */

#ifndef SIM_DECODER_CACHE_HH
#define SIM_DECODER_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "isa/riscv.hh"

namespace helios
{

class Memory;

/** One pre-resolved instruction slot in the flat decoder cache. */
struct FastEntry
{
    /**
     * Pre-folded immediate. For branches and jal this is the absolute
     * target pc; for auipc the complete result (pc + imm<<12); for
     * lui the sign-extended shifted constant; for Op::Invalid the raw
     * undecodable word (for the fault message). Everything else keeps
     * the decoder's sign-extended immediate.
     */
    int64_t imm = 0;
    uint8_t hid = 0;         ///< handler id (base op or fused idiom)
    Op op = Op::Invalid;     ///< architectural opcode (traced dispatch)
    uint8_t rd = 0;
    uint8_t rs1 = 0;
    uint8_t rs2 = 0;
    uint8_t pad[3] = {};     ///< keep sizeof == 16: 4 entries per line
};

static_assert(sizeof(FastEntry) == 16);

/**
 * Handler ids. Values below Op::NumOps are the base opcodes
 * themselves (so building an unfused entry is a cast); the fused ids
 * and the text-end sentinel follow. Fused handlers execute the head
 * instruction's exact semantics, then the tail's, in one dispatch —
 * operands always come from the two entries and the register file, so
 * no operand-role constraint is needed for correctness (the matcher
 * only picks idioms).
 */
enum FastHid : uint8_t
{
    HidFusedLi = uint8_t(Op::NumOps), ///< lui + addi off its rd
    HidFusedAddiBeq,                  ///< addi + beq (loop step)
    HidFusedAddiBne,                  ///< addi + bne
    HidFusedAddiBlt,                  ///< addi + blt
    HidFusedAddiBge,                  ///< addi + bge
    HidFusedAddiBltu,                 ///< addi + bltu
    HidFusedAddiBgeu,                 ///< addi + bgeu
    HidFusedLdAdd,                    ///< ld + add
    HidFusedLdAddi,                   ///< ld + addi
    HidFusedLwAdd,                    ///< lw + add
    HidFusedLwAddi,                   ///< lw + addi
    HidFusedLdLd,                     ///< ld + ld (field-pair fetch)
    HidFusedLdBltu,                   ///< ld + bltu (scan loop)
    HidFusedAddXor,                   ///< add + xor (checksum fold)
    HidFusedAddLd,                    ///< add + ld (indexed load)
    HidFusedAddiSlli,                 ///< addi + slli (index scale)
    HidFusedSlliAdd,                  ///< slli + add (address gen)
    // Multi-instruction idioms (longest-first in the matcher): whole
    // hot-loop bodies collapsed into one dispatch.
    HidFusedLdAddiBne,                ///< ld + addi + bne (chase loop)
    HidFusedLdLdAddXor,               ///< ld + ld + add + xor (fold)
    HidFusedScanBltu,                 ///< addi+slli+add+ld+bltu (scan)
    HidFusedSlliAddLd,                ///< slli + add + ld (indexed ld)
    HidFusedSlliAddLdBgeu,            ///< slli+add+ld+bgeu (scan+test)
    HidFusedAddiAddiBne,              ///< addi + addi + bne (loop close)
    HidFusedLdLdBge,                  ///< ld + ld + bge (range pop)
    HidTextEnd,                       ///< sentinel past the last word
    NumFastHids,
};

/**
 * One slot of the run-time dispatch table Hart::runFast() translates
 * the decoder cache into: the computed-goto label resolved to a
 * pointer, plus rd/rs1/rs2 and the (≤32-bit, checked at translation)
 * immediate packed into one word. Two loads fetch everything the
 * handler needs; the hid indirection and the per-field loads of the
 * durable cache are off the hot path.
 */
struct RunEntry
{
    const void *handler = nullptr;
    uint64_t meta = 0; ///< rd | rs1<<8 | rs2<<16 | uint32(imm)<<32
};

static_assert(sizeof(RunEntry) == 16);

constexpr uint64_t
packFastMeta(uint8_t rd, uint8_t rs1, uint8_t rs2, int64_t imm)
{
    return uint64_t(rd) | uint64_t(rs1) << 8 | uint64_t(rs2) << 16 |
           uint64_t(uint32_t(imm)) << 32;
}

constexpr uint8_t fastMetaRd(uint64_t m) { return uint8_t(m); }
constexpr uint8_t fastMetaRs1(uint64_t m) { return uint8_t(m >> 8); }
constexpr uint8_t fastMetaRs2(uint64_t m) { return uint8_t(m >> 16); }

constexpr int64_t
fastMetaImm(uint64_t m)
{
    return int64_t(int32_t(uint32_t(m >> 32)));
}

/** Flat, text-indexed decoder cache plus basic-block metadata. */
class DecoderCache
{
  public:
    /**
     * (Re)build the cache for the text segment [text_base,
     * text_base + 4 * num_words) from the current memory contents.
     */
    void build(const Memory &memory, uint64_t text_base,
               size_t num_words);

    /** Drop everything (next build starts fresh). */
    void clear();

    bool built() const { return !entries.empty(); }

    /**
     * Re-decode words [lo_word, hi_word] from memory and rebuild the
     * enclosing straight-line region's block metadata and fusion.
     * Called by Hart::invalidateText() with the clamped word range a
     * store overlapped.
     */
    void invalidate(const Memory &memory, size_t lo_word,
                    size_t hi_word);

    const FastEntry *entryArray() const { return entries.data(); }

    /**
     * words + 1 slots: one per text word plus a sentinel slot of 1
     * past the end, so block chaining can budget-check a branch to
     * pc == textLimit without a bounds test.
     */
    const uint32_t *blockLenArray() const { return blockLens.data(); }

    size_t numWords() const { return words; }
    uint64_t textBase() const { return base; }

    /** Instructions from word @a w to its block terminator, inclusive. */
    uint32_t blockLen(size_t w) const { return blockLens[w]; }

    /** Number of entry pairs currently pointed at a fused handler. */
    size_t fusedPairs() const;

    /**
     * Monotonic change counter, bumped by build() and invalidate().
     * Hart::runFast() compares it against the version its RunEntry
     * translation was made from, so SMC invalidation mid-run forces a
     * re-translation before the next block dispatch.
     */
    uint64_t version() const { return version_; }

  private:
    FastEntry makeEntry(uint32_t word, uint64_t pc) const;

    /**
     * Reset handler ids to the base ops, recompute block lengths and
     * re-run pair fusion over words [lo, hi]. Callers guarantee the
     * range covers whole straight-line regions: entries[lo - 1] (if
     * any) and entries[hi] are terminators, or lo/hi sit at the text
     * edges.
     */
    void rebuildRange(size_t lo, size_t hi);

    std::vector<FastEntry> entries; ///< words + 1 (text-end sentinel)
    std::vector<uint32_t> blockLens;
    uint64_t base = 0;
    size_t words = 0;
    uint64_t version_ = 0;
};

} // namespace helios

#endif // SIM_DECODER_CACHE_HH
