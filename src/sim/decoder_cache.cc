/**
 * @file
 * Fast-forward engine: decoder-cache construction and the two
 * dispatchers built on it — Hart::runFast() (computed-goto threaded
 * block runner) and Hart::stepFast() (traced single-stepper). Both
 * expand the same instruction bodies from fast_ops.inc, so they
 * cannot drift from each other; bit-identity against the reference
 * Hart::step() loop is asserted by the engine differential harness
 * (src/harness/differential.cc) and tests/test_fast_engine.cc.
 */

#include "sim/decoder_cache.hh"

#include <cstdint>
#include <cstring>

#include "common/logging.hh"
#include "isa/decoder.hh"
#include "sim/hart.hh"
#include "sim/memory.hh"

namespace helios
{

namespace
{

int64_t s64(uint64_t v) { return static_cast<int64_t>(v); }
int32_t s32(uint64_t v) { return static_cast<int32_t>(v); }

uint64_t
sext8(uint64_t v)
{
    return static_cast<uint64_t>(
        static_cast<int64_t>(static_cast<int8_t>(v)));
}

uint64_t
sext16(uint64_t v)
{
    return static_cast<uint64_t>(
        static_cast<int64_t>(static_cast<int16_t>(v)));
}

uint64_t
sext32(uint64_t v)
{
    return static_cast<uint64_t>(static_cast<int64_t>(s32(v)));
}

uint64_t
mulhu64(uint64_t a, uint64_t b)
{
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(a) * b) >> 64);
}

uint64_t
mulh64(int64_t a, int64_t b)
{
    return static_cast<uint64_t>(
        (static_cast<__int128>(a) * b) >> 64);
}

uint64_t
mulhsu64(int64_t a, uint64_t b)
{
    return static_cast<uint64_t>(
        (static_cast<__int128>(a) *
         static_cast<unsigned __int128>(b)) >> 64);
}

/**
 * Fused-pair matcher. The caller guarantees @a head is not a block
 * terminator and @a tail lies inside the same block. Every fused
 * handler executes head-then-tail sequentially against the register
 * file, so apart from HidFusedLi (which folds the constant and needs
 * the addi to read the lui's rd) no operand-role constraint is
 * required for correctness — the op-pair table just picks the paper's
 * hot idioms.
 */
uint8_t
matchFusion(const FastEntry &head, const FastEntry &tail)
{
    switch (head.op) {
      case Op::Lui:
        // lui rd, hi ; addi rdx, rd, lo — materialize a constant.
        if (tail.op == Op::Addi && tail.rs1 == head.rd &&
            head.rd != 0)
            return HidFusedLi;
        return 0;
      case Op::Addi:
        // addi ; branch — the loop-step idiom (addi t0,t0,-1 ;
        // bnez t0,loop) — and addi ; slli index scaling.
        switch (tail.op) {
          case Op::Beq: return HidFusedAddiBeq;
          case Op::Bne: return HidFusedAddiBne;
          case Op::Blt: return HidFusedAddiBlt;
          case Op::Bge: return HidFusedAddiBge;
          case Op::Bltu: return HidFusedAddiBltu;
          case Op::Bgeu: return HidFusedAddiBgeu;
          case Op::Slli: return HidFusedAddiSlli;
          default: return 0;
        }
      case Op::Ld:
        // ld ; {alu, second field load, scan-loop branch}.
        switch (tail.op) {
          case Op::Add: return HidFusedLdAdd;
          case Op::Addi: return HidFusedLdAddi;
          case Op::Ld: return HidFusedLdLd;
          case Op::Bltu: return HidFusedLdBltu;
          default: return 0;
        }
      case Op::Lw:
        if (tail.op == Op::Add)
            return HidFusedLwAdd;
        if (tail.op == Op::Addi)
            return HidFusedLwAddi;
        return 0;
      case Op::Add:
        // add ; xor checksum folds, add ; ld indexed loads.
        if (tail.op == Op::Xor)
            return HidFusedAddXor;
        if (tail.op == Op::Ld)
            return HidFusedAddLd;
        return 0;
      case Op::Slli:
        if (tail.op == Op::Add)
            return HidFusedSlliAdd;
        return 0;
      default:
        return 0;
    }
}

/**
 * Multi-instruction idioms, matched longest-first before pair fusion.
 * Like the pairs, the fused handlers execute every instruction's
 * exact semantics in order against the register file, so the op
 * sequence is the only constraint. Interior ops are never block
 * terminators; a terminator may only appear as the final op.
 */
struct FusionPattern
{
    uint8_t len;
    Op ops[5];
    uint8_t hid;
};

constexpr FusionPattern longPatterns[] = {
    // Scaled-index scan loop step (qsort's Hoare partition scans):
    // addi i ; slli t, i, k ; add t, t, base ; ld v ; bltu.
    {5, {Op::Addi, Op::Slli, Op::Add, Op::Ld, Op::Bltu},
     HidFusedScanBltu},
    // Scaled-index load + bounds test (validation sweeps).
    {4, {Op::Slli, Op::Add, Op::Ld, Op::Bgeu, Op::Invalid},
     HidFusedSlliAddLdBgeu},
    // Field-pair fetch + checksum fold (mcf's list traversal).
    {4, {Op::Ld, Op::Ld, Op::Add, Op::Xor, Op::Invalid},
     HidFusedLdLdAddXor},
    // Field-pair fetch + signed compare (range-stack pop).
    {3, {Op::Ld, Op::Ld, Op::Bge, Op::Invalid, Op::Invalid},
     HidFusedLdLdBge},
    // Pointer-chase + count-down loop close.
    {3, {Op::Ld, Op::Addi, Op::Bne, Op::Invalid, Op::Invalid},
     HidFusedLdAddiBne},
    // Double pointer/counter step + loop close.
    {3, {Op::Addi, Op::Addi, Op::Bne, Op::Invalid, Op::Invalid},
     HidFusedAddiAddiBne},
    // Scaled-index address generation + load.
    {3, {Op::Slli, Op::Add, Op::Ld, Op::Invalid, Op::Invalid},
     HidFusedSlliAddLd},
};

} // namespace

FastEntry
DecoderCache::makeEntry(uint32_t word, uint64_t pc) const
{
    const Instruction inst = decode(word);
    FastEntry entry;
    entry.op = inst.op;
    entry.hid = static_cast<uint8_t>(inst.op);
    entry.rd = inst.rd;
    entry.rs1 = inst.rs1;
    entry.rs2 = inst.rs2;
    switch (inst.op) {
      case Op::Lui:
        entry.imm = inst.imm << 12;
        break;
      case Op::Auipc:
        entry.imm = static_cast<int64_t>(
            pc + static_cast<uint64_t>(inst.imm << 12));
        break;
      case Op::Jal:
      case Op::Beq: case Op::Bne: case Op::Blt:
      case Op::Bge: case Op::Bltu: case Op::Bgeu:
        // Absolute target; the handlers never re-derive pc + imm.
        entry.imm = static_cast<int64_t>(
            pc + static_cast<uint64_t>(inst.imm));
        break;
      case Op::Invalid:
        // Keep the raw word for the reference-identical fault text.
        entry.imm = static_cast<int64_t>(static_cast<uint64_t>(word));
        break;
      default:
        entry.imm = inst.imm;
        break;
    }
    return entry;
}

void
DecoderCache::build(const Memory &memory, uint64_t text_base,
                    size_t num_words)
{
    base = text_base;
    words = num_words;
    ++version_;
    entries.assign(num_words + 1, FastEntry{});
    // One sentinel slot past the last word, permanently 1: a branch
    // chaining to pc == textLimit budget-checks it like a real block
    // before dispatching the text-end handler.
    blockLens.assign(num_words + 1, 1);
    for (size_t w = 0; w < num_words; ++w)
        entries[w] = makeEntry(
            static_cast<uint32_t>(memory.read(text_base + 4 * w, 4)),
            text_base + 4 * w);

    // Sentinel: straight-line code running past the last text word
    // dispatches here instead of off the end of the array.
    entries[num_words].hid = HidTextEnd;
    entries[num_words].op = Op::Invalid;

    if (num_words > 0)
        rebuildRange(0, num_words - 1);
}

void
DecoderCache::clear()
{
    entries.clear();
    blockLens.clear();
    base = 0;
    words = 0;
}

void
DecoderCache::invalidate(const Memory &memory, size_t lo_word,
                         size_t hi_word)
{
    if (entries.empty() || words == 0)
        return;
    ++version_;
    for (size_t w = lo_word; w <= hi_word; ++w)
        entries[w] = makeEntry(
            static_cast<uint32_t>(memory.read(base + 4 * w, 4)),
            base + 4 * w);

    // Expand to the enclosing straight-line region *under the new
    // contents*: back to the previous terminator (block lengths of
    // every upstream word in the run change with the patch, and a
    // fused head is never a terminator, so this also unwinds pairs
    // reaching into the patched words) and forward to the next.
    size_t lo = lo_word;
    while (lo > 0 && !isBlockTerminatorOp(entries[lo - 1].op))
        --lo;
    size_t hi = hi_word;
    while (hi + 1 < words && !isBlockTerminatorOp(entries[hi].op))
        ++hi;
    rebuildRange(lo, hi);
}

void
DecoderCache::rebuildRange(size_t lo, size_t hi)
{
    // Back to unfused handlers before re-pairing.
    for (size_t w = lo; w <= hi; ++w)
        entries[w].hid = static_cast<uint8_t>(entries[w].op);

    // Block lengths, innermost-out. entries[hi] is a terminator or
    // the last text word, so blockLens[hi + 1] is never needed.
    for (size_t w = hi + 1; w-- > lo;) {
        if (isBlockTerminatorOp(entries[w].op) || w == words - 1)
            blockLens[w] = 1;
        else
            blockLens[w] = blockLens[w + 1] + 1;
    }

    // Greedy in-order fusion within each block, longest idiom first.
    size_t w = lo;
    while (w <= hi) {
        const size_t block_end = w + blockLens[w] - 1;
        size_t i = w;
        while (i <= block_end) {
            size_t advance = 1;
            for (const FusionPattern &p : longPatterns) {
                if (i + p.len - 1 > block_end)
                    continue;
                bool match = true;
                for (unsigned k = 0; k < p.len; ++k)
                    if (entries[i + k].op != p.ops[k]) {
                        match = false;
                        break;
                    }
                if (match) {
                    entries[i].hid = p.hid;
                    advance = p.len;
                    break;
                }
            }
            if (advance == 1 && i < block_end) {
                const uint8_t fused =
                    matchFusion(entries[i], entries[i + 1]);
                if (fused != 0) {
                    entries[i].hid = fused;
                    advance = 2;
                }
            }
            i += advance;
        }
        w = block_end + 1;
    }
}

size_t
DecoderCache::fusedPairs() const
{
    size_t count = 0;
    for (size_t w = 0; w < words; ++w)
        if (entries[w].hid >= static_cast<uint8_t>(Op::NumOps) &&
            entries[w].hid != HidTextEnd)
            ++count;
    return count;
}

void
Hart::ensureFastCache()
{
    if (!fastCache.built())
        fastCache.build(mem, textBase, (textLimit - textBase) / 4);
}

size_t
Hart::fastFusedPairs()
{
    ensureFastCache();
    return fastCache.fusedPairs();
}

size_t
Hart::fastCacheEntries()
{
    ensureFastCache();
    return fastCache.numWords();
}

/*
 * The untraced block runner. Shape of the hot path:
 *
 *   - one budget / residency check per *block* (blockLens), not per
 *     instruction;
 *   - computed-goto threaded dispatch: every handler jumps straight
 *     to the next handler through the label table, so the indirect
 *     branch predictor sees one distinct branch per static handler
 *     (the classic threaded-interpreter win over a central switch);
 *   - non-control handlers never touch thePc — the pc is implied by
 *     the entry pointer and only materialized (FAST_PC) by handlers
 *     that need it;
 *   - block chaining: a terminator settles seq/executed from the
 *     pointer distance, bounds- and budget-checks its own target
 *     inline (FAST_GOTO_N) and jumps straight to the target block's
 *     first handler — each static branch gets its own indirect
 *     dispatch site, so the predictor learns per-branch targets. The
 *     outer loop is only re-entered on the slow paths: off-text or
 *     misaligned pc, budget expiry, ecall, SMC invalidation, and the
 *     text-end sentinel (all via `chain_exit`).
 *
 * On any fatal() (invalid/ebreak/bad ecall) instsExecuted() is
 * block-aligned — in-block progress before the fault is not folded
 * into seq. The reference engine is the contract for fault *state*
 * (message and pc); counters after a throw are not part of it.
 */
uint64_t
Hart::runFast(uint64_t max_insts)
{
    ensureFastCache();
    const uint32_t *const block_lens = fastCache.blockLenArray();
    const uint64_t text_base = fastCache.textBase();
    const size_t text_words = fastCache.numWords();
    const uint64_t text_bytes = text_words * 4;
    Memory &mem = this->mem;
    uint64_t executed = 0;
    DynInst scratch;

    // Execute on a local copy of the register file. Simulated-memory
    // stores go through byte arrays, which in C++ may alias *any*
    // object — including this->regs — so working on the members would
    // force the compiler to reload source registers after every
    // store. A local array whose address never escapes is provably
    // unaliased. The RAII guard publishes it back on every exit,
    // including fatal() unwinds, so post-catch architectural state
    // matches the reference engine.
    uint64_t lregs[numArchRegs];
    std::memcpy(lregs, this->regs, sizeof(lregs));
    struct RegPublish
    {
        Hart *hart;
        const uint64_t *local;
        ~RegPublish()
        {
            std::memcpy(hart->regs, local, sizeof(hart->regs));
        }
    } reg_publish{this, lregs};
    uint64_t *const regs = lregs;

    static const void *const handlers[NumFastHids] = {
        &&h_Invalid, &&h_Lui, &&h_Auipc, &&h_Jal, &&h_Jalr,
        &&h_Beq, &&h_Bne, &&h_Blt, &&h_Bge, &&h_Bltu, &&h_Bgeu,
        &&h_Lb, &&h_Lh, &&h_Lw, &&h_Ld, &&h_Lbu, &&h_Lhu, &&h_Lwu,
        &&h_Sb, &&h_Sh, &&h_Sw, &&h_Sd,
        &&h_Addi, &&h_Slti, &&h_Sltiu, &&h_Xori, &&h_Ori, &&h_Andi,
        &&h_Slli, &&h_Srli, &&h_Srai,
        &&h_Add, &&h_Sub, &&h_Sll, &&h_Slt, &&h_Sltu, &&h_Xor,
        &&h_Srl, &&h_Sra, &&h_Or, &&h_And,
        &&h_Addiw, &&h_Slliw, &&h_Srliw, &&h_Sraiw,
        &&h_Addw, &&h_Subw, &&h_Sllw, &&h_Srlw, &&h_Sraw,
        &&h_Mul, &&h_Mulh, &&h_Mulhsu, &&h_Mulhu,
        &&h_Div, &&h_Divu, &&h_Rem, &&h_Remu,
        &&h_Mulw, &&h_Divw, &&h_Divuw, &&h_Remw, &&h_Remuw,
        &&h_Fence, &&h_Ecall, &&h_Ebreak,
        &&h_FusedLi,
        &&h_FusedAddiBeq, &&h_FusedAddiBne, &&h_FusedAddiBlt,
        &&h_FusedAddiBge, &&h_FusedAddiBltu, &&h_FusedAddiBgeu,
        &&h_FusedLdAdd, &&h_FusedLdAddi,
        &&h_FusedLwAdd, &&h_FusedLwAddi,
        &&h_FusedLdLd, &&h_FusedLdBltu,
        &&h_FusedAddXor, &&h_FusedAddLd,
        &&h_FusedAddiSlli, &&h_FusedSlliAdd,
        &&h_FusedLdAddiBne, &&h_FusedLdLdAddXor, &&h_FusedScanBltu,
        &&h_FusedSlliAddLd, &&h_FusedSlliAddLdBgeu,
        &&h_FusedAddiAddiBne, &&h_FusedLdLdBge,
        &&h_TextEnd,
    };

    // Translate the durable cache into the dispatch table the hot
    // loop actually walks: resolved label pointer + packed operands,
    // two loads per handler. Re-translated whenever the cache version
    // moves (first run after reset/build, SMC invalidation mid-run).
    const auto retranslate = [&] {
        const FastEntry *const ce = fastCache.entryArray();
        runEntries.resize(text_words + 1);
        for (size_t w = 0; w <= text_words; ++w) {
            helios_assert(
                ce[w].imm == int64_t(int32_t(uint32_t(
                                 uint64_t(ce[w].imm)))),
                "fast-engine immediate overflows the packed run entry");
            runEntries[w].handler = handlers[ce[w].hid];
            runEntries[w].meta = packFastMeta(ce[w].rd, ce[w].rs1,
                                              ce[w].rs2, ce[w].imm);
        }
        runEntriesVersion = fastCache.version();
    };
    if (runEntriesVersion != fastCache.version())
        retranslate();
    const RunEntry *const entry_base = runEntries.data();

    while (!hasExited && executed < max_insts) {
        const uint64_t offset = thePc - text_base;
        if (offset >= text_bytes || (offset & 3) != 0) {
            // Off-text (or misaligned) pc: the reference engine owns
            // this path — it decodes from memory and faults exactly
            // like a non-cached fetch. step() works on the member
            // register file, so sync the local copy around it.
            std::memcpy(this->regs, lregs, sizeof(lregs));
            const bool stepped = step(scratch);
            std::memcpy(lregs, this->regs, sizeof(lregs));
            if (!stepped)
                break;
            ++executed;
            continue;
        }

        // An SMC store exits its block after bumping the cache
        // version; refresh the dispatch table before running the next
        // block. resize() keeps the same length, so entry_base stays
        // valid.
        if (runEntriesVersion != fastCache.version())
            retranslate();

        const RunEntry *e = entry_base + (offset >> 2);
        const RunEntry *block_start = e;
        if (uint64_t(block_lens[offset >> 2]) > max_insts - executed) {
            // The budget expires inside this block: single-step the
            // tail on the reference engine so the stopping point is
            // bit-identical.
            std::memcpy(this->regs, lregs, sizeof(lregs));
            while (executed < max_insts && step(scratch))
                ++executed;
            std::memcpy(lregs, this->regs, sizeof(lregs));
            break;
        }

        goto *e->handler;

/*
 * Untraced dispatch context. FAST_OP opens a scope that loads the
 * packed meta word once — entry reads never repeat after a register
 * write — and FAST_END/FAST_TERM close it after advancing to the next
 * handler pointer (one load, no hid indirection).
 */
#define FAST_OP(name)                                                  \
      h_##name: {                                                      \
        const uint64_t fe_meta = e->meta;                              \
        (void)fe_meta;
#define FAST_END                                                       \
        ++e;                                                           \
        goto *e->handler;                                              \
      }
#define FAST_TERM                                                      \
        {                                                              \
            const uint64_t blk = uint64_t(e - block_start) + 1;        \
            executed += blk;                                           \
            seq += blk;                                                \
        }                                                              \
        goto chain_exit;                                               \
      }
/*
 * Block chaining: a terminator that knows its successor pc settles
 * this block's counters, budget-checks the target block, and jumps
 * straight to its handler — the outer loop is only re-entered on the
 * slow paths (off-text target, budget expiry, ecall, SMC). Keeping
 * the dispatch in each terminator gives every static jump/branch its
 * own indirect-branch site, which the host predictor tracks far
 * better than one shared dispatch point.
 */
#define FAST_GOTO_N(target, consumed)                                  \
        do {                                                           \
            const uint64_t chain_pc = (target);                        \
            const uint64_t blk =                                       \
                uint64_t(e - block_start) + (consumed);                \
            executed += blk;                                           \
            seq += blk;                                                \
            const uint64_t chain_off = chain_pc - text_base;           \
            if (chain_off > text_bytes || (chain_off & 3) != 0) {      \
                thePc = chain_pc;                                      \
                goto chain_exit;                                       \
            }                                                          \
            const size_t ci = size_t(chain_off >> 2);                  \
            if (uint64_t(block_lens[ci]) > max_insts - executed) {     \
                thePc = chain_pc;                                      \
                goto chain_exit;                                       \
            }                                                          \
            e = entry_base + ci;                                       \
            block_start = e;                                           \
            goto *e->handler;                                          \
        } while (0)
#define FAST_GOTO(target) FAST_GOTO_N(target, 1)
#define FRD fastMetaRd(fe_meta)
#define FRS1 fastMetaRs1(fe_meta)
#define FRS2 fastMetaRs2(fe_meta)
#define FIMM fastMetaImm(fe_meta)
#define FAST_PC                                                        \
        (text_base + (uint64_t(e - entry_base) << 2))
#define WREG(r, v)                                                     \
        do {                                                           \
            const uint8_t wreg_rd = (r);                               \
            const uint64_t wreg_val = (v);                             \
            if (wreg_rd != 0)                                          \
                regs[wreg_rd] = wreg_val;                              \
        } while (0)
#define RECORD_EA(a) ((void)0)
#define RECORD_TAKEN(t) ((void)(t))
#define SMC_EXIT                                                       \
        do {                                                           \
            const uint64_t blk = uint64_t(e - block_start) + 1;        \
            executed += blk;                                           \
            seq += blk;                                                \
            thePc = FAST_PC + 4;                                       \
            goto chain_exit;                                           \
        } while (0)
#define FAST_SYNC_OUT std::memcpy(this->regs, lregs, sizeof(lregs))
#define FAST_SYNC_IN std::memcpy(lregs, this->regs, sizeof(lregs))

#include "sim/fast_ops.inc"

        /*
         * Fused handlers: untraced only. Each executes the head
         * instruction's exact semantics, then the tail's, against the
         * register file — so any operand roles (including x0 and
         * aliased registers) behave exactly as the unfused sequence
         * would, and a jump landing on the pair's tail still executes
         * it standalone through its own entry. Only the dispatch tail
         * is shared.
         */

      h_FusedLi: {
        // matcher guarantees tail.rs1 == head.rd != 0, so the addi's
        // source is the lui constant — fold without a register read.
        const uint64_t m0 = e->meta, m1 = e[1].meta;
        const uint64_t v0 = uint64_t(fastMetaImm(m0));
        regs[fastMetaRd(m0)] = v0;
        WREG(fastMetaRd(m1), v0 + uint64_t(fastMetaImm(m1)));
        e += 2;
        goto *e->handler;
      }

#define HELIOS_FUSED_ADDI_BRANCH(name, cond)                           \
      h_FusedAddi##name: {                                             \
        const uint64_t m0 = e->meta, m1 = e[1].meta;                   \
        WREG(fastMetaRd(m0),                                           \
             regs[fastMetaRs1(m0)] + uint64_t(fastMetaImm(m0)));       \
        const uint64_t a = regs[fastMetaRs1(m1)];                      \
        const uint64_t b = regs[fastMetaRs2(m1)];                      \
        FAST_GOTO_N((cond) ? uint64_t(fastMetaImm(m1))                 \
                           : FAST_PC + 8, 2);                          \
      }

        HELIOS_FUSED_ADDI_BRANCH(Beq, a == b)
        HELIOS_FUSED_ADDI_BRANCH(Bne, a != b)
        HELIOS_FUSED_ADDI_BRANCH(Blt, s64(a) < s64(b))
        HELIOS_FUSED_ADDI_BRANCH(Bge, s64(a) >= s64(b))
        HELIOS_FUSED_ADDI_BRANCH(Bltu, a < b)
        HELIOS_FUSED_ADDI_BRANCH(Bgeu, a >= b)

#undef HELIOS_FUSED_ADDI_BRANCH

/* Head of every load-led pair: perform the load, write rd. */
#define HELIOS_FUSED_LOAD_HEAD(width, convert)                         \
        const uint64_t m0 = e->meta, m1 = e[1].meta;                   \
        const uint64_t addr0 =                                         \
            regs[fastMetaRs1(m0)] + uint64_t(fastMetaImm(m0));         \
        WREG(fastMetaRd(m0), convert(mem.loadFast<width>(addr0)));

      h_FusedLdAdd: {
        HELIOS_FUSED_LOAD_HEAD(8, )
        WREG(fastMetaRd(m1),
             regs[fastMetaRs1(m1)] + regs[fastMetaRs2(m1)]);
        e += 2;
        goto *e->handler;
      }

      h_FusedLdAddi: {
        HELIOS_FUSED_LOAD_HEAD(8, )
        WREG(fastMetaRd(m1),
             regs[fastMetaRs1(m1)] + uint64_t(fastMetaImm(m1)));
        e += 2;
        goto *e->handler;
      }

      h_FusedLwAdd: {
        HELIOS_FUSED_LOAD_HEAD(4, sext32)
        WREG(fastMetaRd(m1),
             regs[fastMetaRs1(m1)] + regs[fastMetaRs2(m1)]);
        e += 2;
        goto *e->handler;
      }

      h_FusedLwAddi: {
        HELIOS_FUSED_LOAD_HEAD(4, sext32)
        WREG(fastMetaRd(m1),
             regs[fastMetaRs1(m1)] + uint64_t(fastMetaImm(m1)));
        e += 2;
        goto *e->handler;
      }

      h_FusedLdLd: {
        HELIOS_FUSED_LOAD_HEAD(8, )
        const uint64_t addr1 =
            regs[fastMetaRs1(m1)] + uint64_t(fastMetaImm(m1));
        WREG(fastMetaRd(m1), mem.loadFast<8>(addr1));
        e += 2;
        goto *e->handler;
      }

      h_FusedLdBltu: {
        HELIOS_FUSED_LOAD_HEAD(8, )
        const bool taken =
            regs[fastMetaRs1(m1)] < regs[fastMetaRs2(m1)];
        FAST_GOTO_N(taken ? uint64_t(fastMetaImm(m1)) : FAST_PC + 8,
                    2);
      }

#undef HELIOS_FUSED_LOAD_HEAD

      h_FusedAddXor: {
        const uint64_t m0 = e->meta, m1 = e[1].meta;
        WREG(fastMetaRd(m0),
             regs[fastMetaRs1(m0)] + regs[fastMetaRs2(m0)]);
        WREG(fastMetaRd(m1),
             regs[fastMetaRs1(m1)] ^ regs[fastMetaRs2(m1)]);
        e += 2;
        goto *e->handler;
      }

      h_FusedAddLd: {
        const uint64_t m0 = e->meta, m1 = e[1].meta;
        WREG(fastMetaRd(m0),
             regs[fastMetaRs1(m0)] + regs[fastMetaRs2(m0)]);
        const uint64_t addr1 =
            regs[fastMetaRs1(m1)] + uint64_t(fastMetaImm(m1));
        WREG(fastMetaRd(m1), mem.loadFast<8>(addr1));
        e += 2;
        goto *e->handler;
      }

      h_FusedAddiSlli: {
        const uint64_t m0 = e->meta, m1 = e[1].meta;
        WREG(fastMetaRd(m0),
             regs[fastMetaRs1(m0)] + uint64_t(fastMetaImm(m0)));
        WREG(fastMetaRd(m1),
             regs[fastMetaRs1(m1)] << (fastMetaImm(m1) & 63));
        e += 2;
        goto *e->handler;
      }

      h_FusedSlliAdd: {
        const uint64_t m0 = e->meta, m1 = e[1].meta;
        WREG(fastMetaRd(m0),
             regs[fastMetaRs1(m0)] << (fastMetaImm(m0) & 63));
        WREG(fastMetaRd(m1),
             regs[fastMetaRs1(m1)] + regs[fastMetaRs2(m1)]);
        e += 2;
        goto *e->handler;
      }

        /*
         * Multi-instruction idioms: same generic-sequential rule as
         * the pairs, just more of it per dispatch. These are whole
         * hot-loop bodies — one meta load per instruction, one
         * chained dispatch per iteration.
         */

      h_FusedLdAddiBne: {
        // ld x ; addi n ; bne — pointer-chase loop close.
        const uint64_t m0 = e->meta, m1 = e[1].meta, m2 = e[2].meta;
        const uint64_t addr0 =
            regs[fastMetaRs1(m0)] + uint64_t(fastMetaImm(m0));
        WREG(fastMetaRd(m0), mem.loadFast<8>(addr0));
        WREG(fastMetaRd(m1),
             regs[fastMetaRs1(m1)] + uint64_t(fastMetaImm(m1)));
        const bool taken =
            regs[fastMetaRs1(m2)] != regs[fastMetaRs2(m2)];
        FAST_GOTO_N(taken ? uint64_t(fastMetaImm(m2)) : FAST_PC + 12,
                    3);
      }

      h_FusedLdLdAddXor: {
        // ld a ; ld b ; add acc, a ; xor acc, b — field-pair fold.
        const uint64_t m0 = e->meta, m1 = e[1].meta;
        const uint64_t m2 = e[2].meta, m3 = e[3].meta;
        const uint64_t addr0 =
            regs[fastMetaRs1(m0)] + uint64_t(fastMetaImm(m0));
        WREG(fastMetaRd(m0), mem.loadFast<8>(addr0));
        const uint64_t addr1 =
            regs[fastMetaRs1(m1)] + uint64_t(fastMetaImm(m1));
        WREG(fastMetaRd(m1), mem.loadFast<8>(addr1));
        WREG(fastMetaRd(m2),
             regs[fastMetaRs1(m2)] + regs[fastMetaRs2(m2)]);
        WREG(fastMetaRd(m3),
             regs[fastMetaRs1(m3)] ^ regs[fastMetaRs2(m3)]);
        e += 4;
        goto *e->handler;
      }

      h_FusedScanBltu: {
        // addi i ; slli t,i,k ; add t,t,base ; ld v ; bltu — a whole
        // scaled-index scan-loop iteration in one dispatch.
        const uint64_t m0 = e->meta, m1 = e[1].meta, m2 = e[2].meta;
        const uint64_t m3 = e[3].meta, m4 = e[4].meta;
        WREG(fastMetaRd(m0),
             regs[fastMetaRs1(m0)] + uint64_t(fastMetaImm(m0)));
        WREG(fastMetaRd(m1),
             regs[fastMetaRs1(m1)] << (fastMetaImm(m1) & 63));
        WREG(fastMetaRd(m2),
             regs[fastMetaRs1(m2)] + regs[fastMetaRs2(m2)]);
        const uint64_t addr3 =
            regs[fastMetaRs1(m3)] + uint64_t(fastMetaImm(m3));
        WREG(fastMetaRd(m3), mem.loadFast<8>(addr3));
        const bool taken =
            regs[fastMetaRs1(m4)] < regs[fastMetaRs2(m4)];
        FAST_GOTO_N(taken ? uint64_t(fastMetaImm(m4)) : FAST_PC + 20,
                    5);
      }

      h_FusedSlliAddLd: {
        // slli t,i,k ; add t,t,base ; ld v — scaled-index load.
        const uint64_t m0 = e->meta, m1 = e[1].meta, m2 = e[2].meta;
        WREG(fastMetaRd(m0),
             regs[fastMetaRs1(m0)] << (fastMetaImm(m0) & 63));
        WREG(fastMetaRd(m1),
             regs[fastMetaRs1(m1)] + regs[fastMetaRs2(m1)]);
        const uint64_t addr2 =
            regs[fastMetaRs1(m2)] + uint64_t(fastMetaImm(m2));
        WREG(fastMetaRd(m2), mem.loadFast<8>(addr2));
        e += 3;
        goto *e->handler;
      }

      h_FusedSlliAddLdBgeu: {
        // slli ; add ; ld ; bgeu — scaled-index load + bounds test.
        const uint64_t m0 = e->meta, m1 = e[1].meta;
        const uint64_t m2 = e[2].meta, m3 = e[3].meta;
        WREG(fastMetaRd(m0),
             regs[fastMetaRs1(m0)] << (fastMetaImm(m0) & 63));
        WREG(fastMetaRd(m1),
             regs[fastMetaRs1(m1)] + regs[fastMetaRs2(m1)]);
        const uint64_t addr2 =
            regs[fastMetaRs1(m2)] + uint64_t(fastMetaImm(m2));
        WREG(fastMetaRd(m2), mem.loadFast<8>(addr2));
        const bool taken =
            regs[fastMetaRs1(m3)] >= regs[fastMetaRs2(m3)];
        FAST_GOTO_N(taken ? uint64_t(fastMetaImm(m3)) : FAST_PC + 16,
                    4);
      }

      h_FusedAddiAddiBne: {
        // addi p ; addi n ; bne — double pointer/counter loop close.
        const uint64_t m0 = e->meta, m1 = e[1].meta, m2 = e[2].meta;
        WREG(fastMetaRd(m0),
             regs[fastMetaRs1(m0)] + uint64_t(fastMetaImm(m0)));
        WREG(fastMetaRd(m1),
             regs[fastMetaRs1(m1)] + uint64_t(fastMetaImm(m1)));
        const bool taken =
            regs[fastMetaRs1(m2)] != regs[fastMetaRs2(m2)];
        FAST_GOTO_N(taken ? uint64_t(fastMetaImm(m2)) : FAST_PC + 12,
                    3);
      }

      h_FusedLdLdBge: {
        // ld lo ; ld hi ; bge — range-stack pop + empty test.
        const uint64_t m0 = e->meta, m1 = e[1].meta, m2 = e[2].meta;
        const uint64_t addr0 =
            regs[fastMetaRs1(m0)] + uint64_t(fastMetaImm(m0));
        WREG(fastMetaRd(m0), mem.loadFast<8>(addr0));
        const uint64_t addr1 =
            regs[fastMetaRs1(m1)] + uint64_t(fastMetaImm(m1));
        WREG(fastMetaRd(m1), mem.loadFast<8>(addr1));
        const bool taken =
            s64(regs[fastMetaRs1(m2)]) >= s64(regs[fastMetaRs2(m2)]);
        FAST_GOTO_N(taken ? uint64_t(fastMetaImm(m2)) : FAST_PC + 12,
                    3);
      }

      h_TextEnd: {
        // Straight-line code ran off the end of text: settle the
        // instructions executed on the way here, then hand the pc to
        // the outer loop, whose off-text path reproduces the
        // reference engine's fault on the next iteration.
        const uint64_t blk = uint64_t(e - block_start);
        executed += blk;
        seq += blk;
        thePc = text_base + (uint64_t(e - entry_base) << 2);
        goto chain_exit;
      }

#undef FAST_OP
#undef FAST_END
#undef FAST_TERM
#undef FAST_GOTO
#undef FAST_GOTO_N
#undef FRD
#undef FRS1
#undef FRS2
#undef FIMM
#undef FAST_PC
#undef WREG
#undef RECORD_EA
#undef RECORD_TAKEN
#undef SMC_EXIT
#undef FAST_SYNC_OUT
#undef FAST_SYNC_IN

      chain_exit:;
    }
    return executed;
}

/*
 * The traced single-stepper: same cache, same bodies, but dispatching
 * the *base* op of every entry (fused handler ids are ignored) and
 * filling a reference-identical DynInst. Used by the engine
 * differential to prove stream equality; the throughput path is
 * runFast().
 */
bool
Hart::stepFast(DynInst &out)
{
    if (hasExited)
        return false;
    ensureFastCache();

    const uint64_t offset = thePc - fastCache.textBase();
    if (offset >= fastCache.numWords() * 4 || (offset & 3) != 0)
        return step(out);

    const FastEntry *e = fastCache.entryArray() + (offset >> 2);
    // Like the reference fetch path: fault before seq is consumed.
    if (e->op == Op::Invalid)
        fatal("invalid instruction 0x%08x at pc 0x%llx",
              unsigned(uint32_t(e->imm)),
              (unsigned long long)thePc);

    const uint64_t pc = thePc;
    out = DynInst{};
    out.seq = seq++;
    out.pc = pc;
    // Full-fidelity record (including Instruction::raw) straight from
    // memory — invalidateText() keeps text and cache coherent, so
    // this matches the entry by construction.
    out.inst = decode(static_cast<uint32_t>(mem.read(pc, 4)));
    thePc = pc + 4; // non-control default; handlers override

    switch (e->op) {

#define FAST_OP(name) case Op::name:
#define FAST_END break
#define FAST_TERM break
#define FAST_GOTO(target) thePc = (target)
#define FRD (e->rd)
#define FRS1 (e->rs1)
#define FRS2 (e->rs2)
#define FIMM (e->imm)
#define FAST_PC pc
#define WREG(r, v)                                                     \
        do {                                                           \
            const uint8_t wreg_rd = (r);                               \
            const uint64_t wreg_val = (v);                             \
            if (wreg_rd != 0)                                          \
                regs[wreg_rd] = wreg_val;                              \
        } while (0)
#define RECORD_EA(a) out.effAddr = (a)
#define RECORD_TAKEN(t) out.taken = (t)
#define SMC_EXIT ((void)0)
    // stepFast executes on the member register file, so the syscall
    // sync hooks are no-ops here.
#define FAST_SYNC_OUT ((void)0)
#define FAST_SYNC_IN ((void)0)

#include "sim/fast_ops.inc"

#undef FAST_OP
#undef FAST_END
#undef FAST_TERM
#undef FAST_GOTO
#undef FRD
#undef FRS1
#undef FRS2
#undef FIMM
#undef FAST_PC
#undef WREG
#undef RECORD_EA
#undef RECORD_TAKEN
#undef SMC_EXIT
#undef FAST_SYNC_OUT
#undef FAST_SYNC_IN

      default:
        panic("unhandled opcode in Hart::stepFast: %u",
              unsigned(e->op));
    }

    out.nextPc = thePc;
    return true;
}

} // namespace helios
