#include "sim/elf_loader.hh"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "common/bits.hh"
#include "common/logging.hh"

namespace helios
{

namespace
{

// The ELF64 constants the loader checks, spelled out locally so the
// parser has no host-header dependencies (guest and host ELF must not
// be conflated).
constexpr uint8_t elfClass64 = 2;
constexpr uint8_t elfDataLsb = 1;
constexpr uint16_t elfTypeRel = 1;
constexpr uint16_t elfTypeExec = 2;
constexpr uint16_t elfTypeDyn = 3;
constexpr uint16_t elfMachineRiscv = 243;
constexpr uint32_t phTypeLoad = 1;
constexpr uint32_t phTypeDynamic = 2;
constexpr uint32_t phTypeInterp = 3;
constexpr uint32_t phFlagExec = 1;
constexpr uint64_t ehdrSize = 64;
constexpr uint64_t phentSize = 56;
constexpr uint64_t maxPhnum = 64;

/** The lowest vaddr a segment may map (no zero-page mappings). */
constexpr uint64_t minSegmentVaddr = 0x1000;

/** Bounds-checked little-endian field readers. */
struct ImageReader
{
    const std::vector<uint8_t> &image;

    uint64_t
    field(uint64_t offset, unsigned size, const char *what) const
    {
        if (offset > image.size() || image.size() - offset < size)
            fatal("ELF: truncated image (%zu bytes) reading %s at "
                  "offset 0x%llx",
                  image.size(), what, (unsigned long long)offset);
        uint64_t value = 0;
        for (unsigned i = 0; i < size; ++i)
            value |= uint64_t(image[offset + i]) << (8 * i);
        return value;
    }

    uint16_t u16(uint64_t off, const char *what) const
    { return uint16_t(field(off, 2, what)); }
    uint32_t u32(uint64_t off, const char *what) const
    { return uint32_t(field(off, 4, what)); }
    uint64_t u64(uint64_t off, const char *what) const
    { return field(off, 8, what); }
};

/** One parsed PT_LOAD, before conversion into the Program. */
struct LoadSegment
{
    uint64_t vaddr = 0;
    uint64_t filesz = 0;
    uint64_t memsz = 0;
    uint64_t offset = 0;
    bool exec = false;
};

} // namespace

Program
loadElf(const std::vector<uint8_t> &image)
{
    const ImageReader r{image};

    if (image.size() < ehdrSize)
        fatal("ELF: image too small (%zu bytes) for an ELF64 header",
              image.size());
    if (image[0] != 0x7f || image[1] != 'E' || image[2] != 'L' ||
        image[3] != 'F')
        fatal("ELF: bad magic (not an ELF image)");
    if (image[4] != elfClass64)
        fatal("ELF: not a 64-bit image (EI_CLASS=%u)", image[4]);
    if (image[5] != elfDataLsb)
        fatal("ELF: not little-endian (EI_DATA=%u)", image[5]);

    const uint16_t type = r.u16(16, "e_type");
    const uint16_t machine = r.u16(18, "e_machine");
    if (machine != elfMachineRiscv)
        fatal("ELF: machine %u is not RISC-V (EM_RISCV=%u)", machine,
              elfMachineRiscv);
    if (type == elfTypeDyn)
        fatal("ELF: PIE/shared object not supported; link statically "
              "with -static (and -no-pie)");
    if (type == elfTypeRel)
        fatal("ELF: relocatable object not supported; link it into a "
              "static executable");
    if (type != elfTypeExec)
        fatal("ELF: unsupported e_type %u (want ET_EXEC)", type);

    const uint64_t entry = r.u64(24, "e_entry");
    const uint64_t phoff = r.u64(32, "e_phoff");
    const uint16_t phentsize = r.u16(54, "e_phentsize");
    const uint16_t phnum = r.u16(56, "e_phnum");
    if (phentsize != phentSize)
        fatal("ELF: e_phentsize %u (want %llu)", phentsize,
              (unsigned long long)phentSize);
    if (phnum == 0)
        fatal("ELF: no program headers (nothing to load)");
    if (phnum > maxPhnum)
        fatal("ELF: %u program headers (limit %llu)", phnum,
              (unsigned long long)maxPhnum);
    if (phoff > image.size() ||
        image.size() - phoff < uint64_t(phnum) * phentSize)
        fatal("ELF: program header table [0x%llx, +%u*%llu) runs past "
              "the image (%zu bytes)",
              (unsigned long long)phoff, phnum,
              (unsigned long long)phentSize, image.size());

    std::vector<LoadSegment> segs;
    for (uint16_t i = 0; i < phnum; ++i) {
        const uint64_t ph = phoff + uint64_t(i) * phentSize;
        const uint32_t p_type = r.u32(ph, "p_type");
        if (p_type == phTypeInterp)
            fatal("ELF: dynamically linked (PT_INTERP present); link "
                  "with -static");
        if (p_type == phTypeDynamic)
            fatal("ELF: PT_DYNAMIC present; link statically");
        if (p_type != phTypeLoad)
            continue;

        LoadSegment seg;
        seg.exec = (r.u32(ph + 4, "p_flags") & phFlagExec) != 0;
        seg.offset = r.u64(ph + 8, "p_offset");
        seg.vaddr = r.u64(ph + 16, "p_vaddr");
        seg.filesz = r.u64(ph + 32, "p_filesz");
        seg.memsz = r.u64(ph + 40, "p_memsz");
        if (seg.memsz == 0)
            continue;
        if (seg.filesz > seg.memsz)
            fatal("ELF: segment %u has p_filesz 0x%llx > p_memsz "
                  "0x%llx",
                  i, (unsigned long long)seg.filesz,
                  (unsigned long long)seg.memsz);
        if (seg.offset > image.size() ||
            image.size() - seg.offset < seg.filesz)
            fatal("ELF: segment %u file range [0x%llx, +0x%llx) runs "
                  "past the image (%zu bytes)",
                  i, (unsigned long long)seg.offset,
                  (unsigned long long)seg.filesz, image.size());
        if (seg.vaddr < minSegmentVaddr)
            fatal("ELF: segment %u maps 0x%llx below the minimum "
                  "guest address 0x%llx",
                  i, (unsigned long long)seg.vaddr,
                  (unsigned long long)minSegmentVaddr);
        if (seg.vaddr > guestImageLimit ||
            guestImageLimit - seg.vaddr < seg.memsz)
            fatal("ELF: segment %u [0x%llx, +0x%llx) reaches beyond "
                  "the guest image limit 0x%llx — the simulator backs "
                  "guest memory with a contiguous 128 MiB arena and "
                  "reserves its top for the stack and heap, so "
                  "segments must not spill into the sparse high-page "
                  "map",
                  i, (unsigned long long)seg.vaddr,
                  (unsigned long long)seg.memsz,
                  (unsigned long long)guestImageLimit);
        segs.push_back(seg);
    }
    if (segs.empty())
        fatal("ELF: no loadable PT_LOAD segments");

    std::sort(segs.begin(), segs.end(),
              [](const LoadSegment &a, const LoadSegment &b) {
                  return a.vaddr < b.vaddr;
              });
    for (size_t i = 1; i < segs.size(); ++i)
        if (segs[i].vaddr < segs[i - 1].vaddr + segs[i - 1].memsz)
            fatal("ELF: PT_LOAD segments overlap (0x%llx..0x%llx vs "
                  "0x%llx..)",
                  (unsigned long long)segs[i - 1].vaddr,
                  (unsigned long long)(segs[i - 1].vaddr +
                                       segs[i - 1].memsz),
                  (unsigned long long)segs[i].vaddr);

    const LoadSegment *text = nullptr;
    for (const LoadSegment &seg : segs) {
        if (!seg.exec)
            continue;
        if (text)
            fatal("ELF: multiple executable segments (0x%llx and "
                  "0x%llx); the frontend supports one text segment",
                  (unsigned long long)text->vaddr,
                  (unsigned long long)seg.vaddr);
        text = &seg;
    }
    if (!text)
        fatal("ELF: no executable PT_LOAD segment");
    if (text->filesz % 4 != 0)
        fatal("ELF: text segment size 0x%llx is not a multiple of 4 "
              "(RV64IM has no compressed instructions)",
              (unsigned long long)text->filesz);
    if (text->filesz == 0)
        fatal("ELF: text segment has no file-backed instructions");
    if (entry < text->vaddr || entry >= text->vaddr + text->filesz)
        fatal("ELF: entry point 0x%llx falls outside the text segment "
              "[0x%llx, 0x%llx)",
              (unsigned long long)entry,
              (unsigned long long)text->vaddr,
              (unsigned long long)(text->vaddr + text->filesz));
    if (entry % 4 != 0)
        fatal("ELF: entry point 0x%llx is not 4-byte aligned",
              (unsigned long long)entry);

    Program prog;
    prog.textBase = text->vaddr;
    prog.entry = entry;
    prog.dataBase = 0;
    prog.linuxAbi = true;
    prog.argv = {"a.out"};
    prog.sourceHash = fnv1a(image.data(), image.size());

    prog.code.reserve(text->filesz / 4);
    for (uint64_t off = 0; off < text->filesz; off += 4) {
        uint32_t word;
        std::memcpy(&word, image.data() + text->offset + off, 4);
        prog.code.push_back(word);
    }

    uint64_t image_end = text->vaddr + text->memsz;
    for (const LoadSegment &seg : segs) {
        if (&seg != text) {
            Program::Segment out;
            out.vaddr = seg.vaddr;
            out.bytes.assign(image.begin() + long(seg.offset),
                             image.begin() + long(seg.offset) +
                                 long(seg.filesz));
            out.memSize = seg.memsz;
            prog.segments.push_back(std::move(out));
        }
        image_end = std::max(image_end, seg.vaddr + seg.memsz);
    }
    // A bss tail inside the text segment (memsz > filesz) becomes a
    // zero-filled data segment so memory sees it; the text words stay
    // exactly the file-backed range.
    if (text->memsz > text->filesz) {
        Program::Segment bss;
        bss.vaddr = text->vaddr + text->filesz;
        bss.memSize = text->memsz - text->filesz;
        prog.segments.push_back(std::move(bss));
    }

    prog.brkBase = alignUp(image_end, 0x1000);
    return prog;
}

Program
loadElfFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open ELF file '%s'", path.c_str());
    std::vector<uint8_t> image(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    return loadElf(image);
}

} // namespace helios
