/**
 * @file
 * Dynamic-instruction records and the feed interface between the
 * functional simulator and the timing model.
 */

#ifndef SIM_TRACE_HH
#define SIM_TRACE_HH

#include <cstdint>

#include "isa/instruction.hh"

namespace helios
{

/**
 * One retired architectural instruction with its runtime facts.
 *
 * The timing model treats each record as one µ-op (footnote 2 of the
 * paper: every RISC-V instruction here cracks into exactly one µ-op);
 * fusion then merges µ-ops into fused µ-ops inside the pipeline.
 */
struct DynInst
{
    uint64_t seq = 0;       ///< program-order sequence number, from 0
    uint64_t pc = 0;
    Instruction inst;
    uint64_t nextPc = 0;    ///< actual next PC (after any control flow)
    uint64_t effAddr = 0;   ///< effective address of a memory access
    bool taken = false;     ///< conditional branch outcome

    bool isLoad() const { return inst.isLoad(); }
    bool isStore() const { return inst.isStore(); }
    bool isMem() const { return inst.isMem(); }
    uint8_t memSize() const { return inst.memSize(); }

    /** Cache-line address of the access (64 B lines). */
    uint64_t lineAddr() const { return effAddr >> 6; }
};

/**
 * Pull interface delivering the committed dynamic instruction stream.
 */
class InstructionFeed
{
  public:
    virtual ~InstructionFeed() = default;

    /**
     * Produce the next dynamic instruction.
     * @return false when the program has exited (out is untouched).
     */
    virtual bool next(DynInst &out) = 0;
};

} // namespace helios

#endif // SIM_TRACE_HH
