/**
 * @file
 * Architectural checkpoints: the full functional state of a hart and
 * its memory at an exact dynamic instruction index, as dumb data.
 *
 * A checkpoint is what sampled simulation (harness/sampling.hh) cuts
 * after a functional fast-forward: restore it into a fresh Hart +
 * Memory and execution continues bit-identically to a run that never
 * stopped — same registers, pc, seq, syscall-shim state (brk, pending
 * stdin bytes, deterministic clock phase), collected output and every
 * resident memory page. Checkpoints are configuration-independent
 * (purely architectural), so one checkpoint set serves a whole
 * configuration sweep.
 *
 * On-disk form: an 8-byte magic, a length-prefixed JSON header with
 * every scalar field (human-inspectable with `head`), then a binary
 * payload of [page index, 4 KiB page] records in ascending index
 * order followed by the length-prefixed output and stdin blobs.
 * serialize() → deserialize() and save() → load() round-trip to an
 * operator==-equal value (tier-1 checked).
 */

#ifndef SIM_CHECKPOINT_HH
#define SIM_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/riscv.hh"
#include "sim/memory.hh"
#include "sim/syscalls.hh"

namespace helios
{

/** Full architectural state at one dynamic instruction index. */
struct Checkpoint
{
    /** Bumped on any change to the serialized layout. */
    static constexpr uint32_t kVersion = 1;

    // Identity.
    uint64_t programHash = 0; ///< Program::sourceHash of the run
    uint64_t instIndex = 0;   ///< dynamic instructions executed at the cut

    // Hart scalars.
    uint64_t regs[numArchRegs] = {};
    uint64_t pc = 0;
    bool exited = false;
    uint64_t exitCode = 0;
    std::string output;       ///< bytes written to fds 1/2 so far

    // Text segment bounds, so restore can rebuild the pre-decoded
    // instruction cache from restored memory (covers self-modifying
    // code: the cache is re-derived, never serialized).
    uint64_t textBase = 0;
    uint64_t textLimit = 0;

    // Linux ecall shim state.
    SyscallState sys;

    /** One resident 4 KiB page. */
    struct PageRecord
    {
        uint64_t index = 0;         ///< page index (addr >> pageBits)
        std::vector<uint8_t> bytes; ///< exactly Memory::pageSize bytes

        bool operator==(const PageRecord &other) const = default;
    };

    /** Resident pages in ascending index order. */
    std::vector<PageRecord> pages;

    /** Compact binary form (magic + JSON header + page payload). */
    std::string serialize() const;

    /** Parse serialize() output; fatal() on malformed input. */
    static Checkpoint deserialize(const std::string &bytes);

    /** Write the serialized form to @a path (fatal() on I/O error). */
    void save(const std::string &path) const;

    /** Load from @a path (fatal() on I/O error or malformed data). */
    static Checkpoint load(const std::string &path);

    bool operator==(const Checkpoint &other) const;
};

} // namespace helios

#endif // SIM_CHECKPOINT_HH
