/**
 * @file
 * Minimal static ELF64 loader: the real-binary frontend.
 *
 * Parses a statically-linked RV64 ELF executable image and converts
 * its PT_LOAD segments into a Program the existing loader/hart
 * machinery runs: the (single) executable segment becomes the text
 * words, every other segment rides along as a Program::Segment, the
 * entry point comes from e_entry, and the brk floor is placed one
 * page above the highest loaded byte. The resulting Program has
 * linuxAbi set, so Hart::reset() builds the standard Linux process
 * start stack (argc/argv/envp/auxv) and the ecall shim
 * (sim/syscalls.hh) serves the system-call surface.
 *
 * Everything unsupported is a clear FatalError, never a crash or a
 * silent misload: dynamic/relocatable/PIE objects, non-RISC-V
 * machines, truncated or overlapping headers, and any segment that
 * reaches beyond the guest low arena (guestImageLimit) are all
 * rejected with messages naming the offending field. The loader is
 * pure parsing — it touches no simulator state — so it is safe to
 * fuzz (tests/test_elf_loader.cc does, seeded, in the sanitizer
 * trees).
 */

#ifndef SIM_ELF_LOADER_HH
#define SIM_ELF_LOADER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "asm/program.hh"

namespace helios
{

/**
 * Parse @a image as a statically-linked RV64 ELF executable.
 * FatalError on anything malformed or unsupported. The returned
 * program's argv defaults to {"a.out"}; callers (CLI, workload
 * wrappers) usually overwrite it.
 */
Program loadElf(const std::vector<uint8_t> &image);

/** Read @a path and loadElf() it; FatalError when unreadable. */
Program loadElfFile(const std::string &path);

} // namespace helios

#endif // SIM_ELF_LOADER_HH
