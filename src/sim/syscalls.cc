#include "sim/syscalls.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"
#include "sim/memory.hh"

namespace helios
{

namespace
{

// Linux RISC-V (asm-generic) syscall numbers.
enum : uint64_t
{
    SysIoctl = 29,
    SysClose = 57,
    SysLseek = 62,
    SysRead = 63,
    SysWrite = 64,
    SysWritev = 66,
    SysFstat = 80,
    SysExit = 93,
    SysExitGroup = 94,
    SysSetTidAddress = 96,
    SysSetRobustList = 99,
    SysClockGettime = 113,
    SysGettimeofday = 169,
    SysGetpid = 172,
    SysGetuid = 174,
    SysGeteuid = 175,
    SysGetgid = 176,
    SysGetegid = 177,
    SysGettid = 178,
    SysBrk = 214,
};

// Errno values returned as -errno in a0 (Linux convention).
constexpr uint64_t errBadf = uint64_t(-9);
constexpr uint64_t errInval = uint64_t(-22);
constexpr uint64_t errNotty = uint64_t(-25);
constexpr uint64_t errSpipe = uint64_t(-29);

/** A single write/writev is capped so a garbage length register
 *  cannot balloon the captured output string. */
constexpr uint64_t maxWriteBytes = 16ULL << 20;

/** Byte size of the riscv64 struct stat the fstat stub fills. */
constexpr uint64_t statSize = 128;

/** Append @a len guest bytes at @a addr to @a output. */
void
appendGuestBytes(Memory &mem, uint64_t addr, uint64_t len,
                 std::string &output, uint64_t pc)
{
    if (len > maxWriteBytes)
        fatal("write of %llu bytes at pc 0x%llx exceeds the syscall "
              "shim's %llu MiB cap",
              (unsigned long long)len, (unsigned long long)pc,
              (unsigned long long)(maxWriteBytes >> 20));
    output.reserve(output.size() + len);
    for (uint64_t i = 0; i < len; ++i)
        output += static_cast<char>(mem.readByte(addr + i));
}

} // namespace

void
SyscallEmulator::reset(uint64_t brk_base, uint64_t brk_limit)
{
    brk = brk_base;
    brkBase = brk_base;
    brkLimit = brk_limit;
    stdinData.clear();
    stdinPos = 0;
    clockTicks = 0;
}

void
SyscallEmulator::setStdin(std::string data)
{
    stdinData = std::move(data);
    stdinPos = 0;
}

SyscallState
SyscallEmulator::state() const
{
    SyscallState snap;
    snap.brk = brk;
    snap.brkBase = brkBase;
    snap.brkLimit = brkLimit;
    snap.stdinData = stdinData;
    snap.stdinPos = stdinPos;
    snap.clockTicks = clockTicks;
    return snap;
}

void
SyscallEmulator::restoreState(const SyscallState &state)
{
    brk = state.brk;
    brkBase = state.brkBase;
    brkLimit = state.brkLimit;
    stdinData = state.stdinData;
    stdinPos = state.stdinPos;
    clockTicks = state.clockTicks;
}

SyscallResult
SyscallEmulator::handle(uint64_t (&regs)[numArchRegs], Memory &mem,
                        uint64_t pc, std::string &output)
{
    SyscallResult res;
    const uint64_t call = regs[RegA7];
    const uint64_t a0 = regs[RegA0];
    const uint64_t a1 = regs[RegA1];
    const uint64_t a2 = regs[RegA2];

    switch (call) {
      case SysExit:
      case SysExitGroup:
        res.exited = true;
        res.exitCode = a0;
        break;

      case SysWrite: // write(fd, buf, len)
        if (a0 == 1 || a0 == 2) {
            appendGuestBytes(mem, a1, a2, output, pc);
            regs[RegA0] = a2;
        } else {
            regs[RegA0] = errBadf;
        }
        break;

      case SysWritev: { // writev(fd, iov, iovcnt)
        if (a0 != 1 && a0 != 2) {
            regs[RegA0] = errBadf;
            break;
        }
        if (a2 > 1024) {
            regs[RegA0] = errInval;
            break;
        }
        uint64_t total = 0;
        for (uint64_t i = 0; i < a2; ++i) {
            const uint64_t base = mem.read(a1 + 16 * i, 8);
            const uint64_t len = mem.read(a1 + 16 * i + 8, 8);
            appendGuestBytes(mem, base, len, output, pc);
            total += len;
        }
        regs[RegA0] = total;
        break;
      }

      case SysRead: { // read(fd, buf, len)
        if (a0 != 0) {
            regs[RegA0] = errBadf;
            break;
        }
        const uint64_t remaining = stdinData.size() - stdinPos;
        const uint64_t count = std::min(a2, remaining);
        if (count > 0) {
            mem.writeBlock(a1, stdinData.data() + stdinPos, count);
            stdinPos += count;
            res.writeAddr = a1;
            res.writeLen = count;
        }
        regs[RegA0] = count;
        break;
      }

      case SysBrk: { // brk(addr)
        if (a0 == 0 || a0 < brkBase) {
            // Query, or an attempt to shrink below the heap floor:
            // report the current break unchanged (Linux semantics).
            regs[RegA0] = brk;
            break;
        }
        if (a0 > brkLimit)
            fatal("brk(0x%llx) at pc 0x%llx reaches beyond the guest "
                  "heap limit 0x%llx: the simulator backs guest "
                  "memory with a 128 MiB low arena whose top is "
                  "reserved for the stack, and refuses to spill the "
                  "heap into the sparse high-page map",
                  (unsigned long long)a0, (unsigned long long)pc,
                  (unsigned long long)brkLimit);
        brk = a0;
        regs[RegA0] = brk;
        break;
      }

      case SysFstat: { // fstat(fd, statbuf)
        if (a0 > 2) {
            regs[RegA0] = errBadf;
            break;
        }
        // A minimal riscv64 struct stat describing a character
        // device (what a tty looks like): st_mode = S_IFCHR | 0620,
        // st_nlink = 1, st_blksize = 4096, everything else zero.
        uint8_t stat[statSize] = {};
        const uint32_t mode = 0x2000 | 0620;
        std::memcpy(stat + 16, &mode, 4);
        const uint32_t nlink = 1;
        std::memcpy(stat + 20, &nlink, 4);
        const uint32_t blksize = 4096;
        std::memcpy(stat + 56, &blksize, 4);
        mem.writeBlock(a1, stat, statSize);
        res.writeAddr = a1;
        res.writeLen = statSize;
        regs[RegA0] = 0;
        break;
      }

      case SysClockGettime: { // clock_gettime(clockid, ts)
        // Deterministic clock: 1 ms per query, never the host's.
        ++clockTicks;
        const uint64_t ns = clockTicks * 1'000'000;
        mem.write(a1, ns / 1'000'000'000, 8);
        mem.write(a1 + 8, ns % 1'000'000'000, 8);
        res.writeAddr = a1;
        res.writeLen = 16;
        regs[RegA0] = 0;
        break;
      }

      case SysGettimeofday: { // gettimeofday(tv, tz)
        ++clockTicks;
        const uint64_t us = clockTicks * 1'000;
        mem.write(a0, us / 1'000'000, 8);
        mem.write(a0 + 8, us % 1'000'000, 8);
        res.writeAddr = a0;
        res.writeLen = 16;
        regs[RegA0] = 0;
        break;
      }

      case SysIoctl:
        regs[RegA0] = errNotty;
        break;
      case SysLseek:
        regs[RegA0] = errSpipe;
        break;
      case SysClose:
        regs[RegA0] = 0;
        break;
      case SysSetRobustList:
        regs[RegA0] = 0;
        break;
      case SysSetTidAddress:
      case SysGetpid:
      case SysGettid:
        regs[RegA0] = 1;
        break;
      case SysGetuid:
      case SysGeteuid:
      case SysGetgid:
      case SysGetegid:
        regs[RegA0] = 0;
        break;

      default:
        fatal("unsupported ecall %llu at pc 0x%llx",
              (unsigned long long)call, (unsigned long long)pc);
    }
    return res;
}

} // namespace helios
