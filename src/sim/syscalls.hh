/**
 * @file
 * Linux user-mode ecall shim.
 *
 * Emulates the subset of the RISC-V Linux syscall ABI that
 * statically-linked newlib/musl-style RV64IM binaries need to reach
 * main(), do formatted I/O and exit: exit/exit_group, write/writev
 * to a captured output stream, read from a caller-provided stdin
 * buffer, brk, and deterministic fstat/clock/identity stubs. Every
 * result is a pure function of the call sequence — the clock is a
 * counter, not the host's — so two engines (or two fusion
 * configurations) replaying the same instruction stream observe
 * bit-identical syscall results, which the differential harnesses
 * rely on.
 *
 * Unsupported calls are a fatal() with the call number and pc, never
 * a silent -ENOSYS: a workload wandering off the supported surface
 * should fail loudly, not compute garbage.
 */

#ifndef SIM_SYSCALLS_HH
#define SIM_SYSCALLS_HH

#include <cstdint>
#include <string>

#include "isa/riscv.hh"

namespace helios
{

class Memory;

/**
 * The shim's complete mutable state, as dumb data. Checkpoints
 * (sim/checkpoint.hh) carry one of these so a restored hart replays
 * the exact syscall sequence the original would have: same brk, same
 * remaining stdin bytes, same deterministic clock phase.
 */
struct SyscallState
{
    uint64_t brk = 0;
    uint64_t brkBase = 0;
    uint64_t brkLimit = 0;
    std::string stdinData;
    uint64_t stdinPos = 0;
    uint64_t clockTicks = 0;

    bool operator==(const SyscallState &other) const = default;
};

/** What one ecall did, beyond mutating a0: the hart uses this to
 *  latch exit state and keep decoder caches coherent with guest
 *  memory the shim wrote (read(2) can overwrite text). */
struct SyscallResult
{
    bool exited = false;     ///< exit/exit_group fired
    uint64_t exitCode = 0;   ///< a0 at exit
    uint64_t writeAddr = 0;  ///< guest range the shim wrote...
    uint64_t writeLen = 0;   ///< ...(0: nothing written)
};

/**
 * State + logic of the ecall shim. One emulator per hart; reset()
 * returns it to program-start state so runs stay independent.
 */
class SyscallEmulator
{
  public:
    /**
     * Reset to program-start state.
     * @param brk_base initial program break (heap floor)
     * @param brk_limit exclusive ceiling brk may grow to; growing
     *        past it is a fatal() diagnostic, not a high-page fallback
     */
    void reset(uint64_t brk_base, uint64_t brk_limit);

    /** Bytes read(2) serves from fd 0; EOF once drained. */
    void setStdin(std::string data);

    /**
     * Handle one ecall: a7 selects the call, a0..a5 carry arguments,
     * the return value lands in a0. Output written to fds 1/2 is
     * appended to @a output. fatal() on unsupported call numbers.
     * @param pc the pc of the ecall instruction (diagnostics)
     */
    SyscallResult handle(uint64_t (&regs)[numArchRegs], Memory &mem,
                         uint64_t pc, std::string &output);

    uint64_t currentBrk() const { return brk; }

    /** Snapshot the full shim state (checkpointing). */
    SyscallState state() const;

    /** Reinstate a snapshot taken by state(). */
    void restoreState(const SyscallState &state);

  private:
    uint64_t brk = 0;
    uint64_t brkBase = 0;
    uint64_t brkLimit = 0;
    std::string stdinData;
    uint64_t stdinPos = 0;
    uint64_t clockTicks = 0;
};

} // namespace helios

#endif // SIM_SYSCALLS_HH
