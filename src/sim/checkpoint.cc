#include "sim/checkpoint.hh"

#include <cstring>
#include <fstream>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"

namespace helios
{

namespace
{

/** File magic: identifies a Helios checkpoint at a glance. */
constexpr char kMagic[8] = {'H', 'E', 'L', 'I', 'O', 'S', 'C', 'P'};

void
appendU32(std::string &out, uint32_t value)
{
    char buf[4];
    std::memcpy(buf, &value, 4);
    out.append(buf, 4);
}

void
appendU64(std::string &out, uint64_t value)
{
    char buf[8];
    std::memcpy(buf, &value, 8);
    out.append(buf, 8);
}

/** Bounds-checked reader over the serialized byte string. */
class Reader
{
  public:
    explicit Reader(const std::string &bytes) : data(bytes) {}

    void
    raw(void *dst, size_t len)
    {
        if (len > data.size() - pos)
            fatal("checkpoint: truncated (need %zu bytes at offset "
                  "%zu of %zu)",
                  len, pos, data.size());
        std::memcpy(dst, data.data() + pos, len);
        pos += len;
    }

    uint32_t
    u32()
    {
        uint32_t value = 0;
        raw(&value, 4);
        return value;
    }

    uint64_t
    u64()
    {
        uint64_t value = 0;
        raw(&value, 8);
        return value;
    }

    std::string
    blob(uint64_t len)
    {
        if (len > data.size() - pos)
            fatal("checkpoint: truncated blob (%llu bytes at offset "
                  "%zu of %zu)",
                  (unsigned long long)len, pos, data.size());
        std::string out = data.substr(pos, len);
        pos += len;
        return out;
    }

    bool done() const { return pos == data.size(); }

  private:
    const std::string &data;
    size_t pos = 0;
};

} // namespace

std::string
Checkpoint::serialize() const
{
    JsonValue header = JsonValue::object();
    header.set("version", JsonValue(uint64_t(kVersion)));
    header.set("program_hash", JsonValue(programHash));
    header.set("inst_index", JsonValue(instIndex));
    header.set("pc", JsonValue(pc));
    header.set("exited", JsonValue(exited));
    header.set("exit_code", JsonValue(exitCode));
    header.set("text_base", JsonValue(textBase));
    header.set("text_limit", JsonValue(textLimit));

    JsonValue reg_array = JsonValue::array();
    for (uint64_t reg : regs)
        reg_array.push(JsonValue(reg));
    header.set("regs", std::move(reg_array));

    JsonValue shim = JsonValue::object();
    shim.set("brk", JsonValue(sys.brk));
    shim.set("brk_base", JsonValue(sys.brkBase));
    shim.set("brk_limit", JsonValue(sys.brkLimit));
    shim.set("stdin_pos", JsonValue(sys.stdinPos));
    shim.set("clock_ticks", JsonValue(sys.clockTicks));
    header.set("sys", std::move(shim));

    header.set("pages", JsonValue(uint64_t(pages.size())));
    header.set("output_bytes", JsonValue(uint64_t(output.size())));
    header.set("stdin_bytes", JsonValue(uint64_t(sys.stdinData.size())));

    const std::string header_text = header.dump();

    std::string out;
    out.reserve(sizeof(kMagic) + 8 + header_text.size() +
                pages.size() * (8 + Memory::pageSize) + output.size() +
                sys.stdinData.size() + 16);
    out.append(kMagic, sizeof(kMagic));
    appendU32(out, kVersion);
    appendU32(out, uint32_t(header_text.size()));
    out += header_text;

    for (const PageRecord &page : pages) {
        helios_assert(page.bytes.size() == Memory::pageSize,
                      "checkpoint page record has a bad size");
        appendU64(out, page.index);
        out.append(reinterpret_cast<const char *>(page.bytes.data()),
                   page.bytes.size());
    }
    appendU64(out, output.size());
    out += output;
    appendU64(out, sys.stdinData.size());
    out += sys.stdinData;
    return out;
}

Checkpoint
Checkpoint::deserialize(const std::string &bytes)
{
    Reader in(bytes);

    char magic[sizeof(kMagic)] = {};
    in.raw(magic, sizeof(magic));
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        fatal("checkpoint: bad magic (not a Helios checkpoint)");
    const uint32_t version = in.u32();
    if (version != kVersion)
        fatal("checkpoint: format version %u is not the supported "
              "version %u",
              version, kVersion);

    const uint32_t header_len = in.u32();
    const JsonValue header = JsonValue::parse(in.blob(header_len));

    Checkpoint ckpt;
    ckpt.programHash = header.at("program_hash").asUint();
    ckpt.instIndex = header.at("inst_index").asUint();
    ckpt.pc = header.at("pc").asUint();
    ckpt.exited = header.at("exited").asBool();
    ckpt.exitCode = header.at("exit_code").asUint();
    ckpt.textBase = header.at("text_base").asUint();
    ckpt.textLimit = header.at("text_limit").asUint();

    const JsonValue &reg_array = header.at("regs");
    if (reg_array.size() != numArchRegs)
        fatal("checkpoint: %zu registers in header (expected %u)",
              reg_array.size(), numArchRegs);
    for (unsigned i = 0; i < numArchRegs; ++i)
        ckpt.regs[i] = reg_array.at(i).asUint();

    const JsonValue &shim = header.at("sys");
    ckpt.sys.brk = shim.at("brk").asUint();
    ckpt.sys.brkBase = shim.at("brk_base").asUint();
    ckpt.sys.brkLimit = shim.at("brk_limit").asUint();
    ckpt.sys.stdinPos = shim.at("stdin_pos").asUint();
    ckpt.sys.clockTicks = shim.at("clock_ticks").asUint();

    const uint64_t page_count = header.at("pages").asUint();
    ckpt.pages.reserve(page_count);
    uint64_t prev_index = 0;
    for (uint64_t i = 0; i < page_count; ++i) {
        PageRecord page;
        page.index = in.u64();
        if (i > 0 && page.index <= prev_index)
            fatal("checkpoint: page indices out of order");
        prev_index = page.index;
        page.bytes.resize(Memory::pageSize);
        in.raw(page.bytes.data(), Memory::pageSize);
        ckpt.pages.push_back(std::move(page));
    }

    const std::string output_blob = in.blob(in.u64());
    if (output_blob.size() != header.at("output_bytes").asUint())
        fatal("checkpoint: output blob size disagrees with header");
    ckpt.output = output_blob;

    const std::string stdin_blob = in.blob(in.u64());
    if (stdin_blob.size() != header.at("stdin_bytes").asUint())
        fatal("checkpoint: stdin blob size disagrees with header");
    ckpt.sys.stdinData = stdin_blob;

    if (!in.done())
        fatal("checkpoint: trailing bytes after payload");
    return ckpt;
}

void
Checkpoint::save(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("checkpoint: cannot open '%s' for writing", path.c_str());
    const std::string bytes = serialize();
    out.write(bytes.data(), std::streamsize(bytes.size()));
    if (!out)
        fatal("checkpoint: write to '%s' failed", path.c_str());
}

Checkpoint
Checkpoint::load(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("checkpoint: cannot open '%s'", path.c_str());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return deserialize(buffer.str());
}

bool
Checkpoint::operator==(const Checkpoint &other) const
{
    return programHash == other.programHash &&
           instIndex == other.instIndex &&
           std::memcmp(regs, other.regs, sizeof(regs)) == 0 &&
           pc == other.pc && exited == other.exited &&
           exitCode == other.exitCode && output == other.output &&
           textBase == other.textBase && textLimit == other.textLimit &&
           sys == other.sys && pages == other.pages;
}

} // namespace helios
