#include "sim/memory.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

namespace helios
{

uint64_t
Memory::read(uint64_t addr, unsigned size) const
{
    helios_assert(size == 1 || size == 2 || size == 4 || size == 8,
                  "bad access size");
    uint64_t value = 0;
    // Fast path: access within one page.
    const uint64_t offset = addr & (pageSize - 1);
    if (offset + size <= pageSize) {
        const Page *page = findPage(addr);
        if (!page)
            return 0;
        for (unsigned i = 0; i < size; ++i)
            value |= uint64_t((*page)[offset + i]) << (8 * i);
        return value;
    }
    for (unsigned i = 0; i < size; ++i)
        value |= uint64_t(readByte(addr + i)) << (8 * i);
    return value;
}

void
Memory::write(uint64_t addr, uint64_t value, unsigned size)
{
    helios_assert(size == 1 || size == 2 || size == 4 || size == 8,
                  "bad access size");
    const uint64_t offset = addr & (pageSize - 1);
    if (offset + size <= pageSize) {
        Page &page = touchPage(addr);
        for (unsigned i = 0; i < size; ++i)
            page[offset + i] = uint8_t(value >> (8 * i));
        return;
    }
    for (unsigned i = 0; i < size; ++i)
        writeByte(addr + i, uint8_t(value >> (8 * i)));
}

void
Memory::writeBlock(uint64_t addr, const void *src, size_t len)
{
    const auto *bytes = static_cast<const uint8_t *>(src);
    size_t done = 0;
    while (done < len) {
        const uint64_t offset = (addr + done) & (pageSize - 1);
        const size_t chunk =
            std::min<size_t>(len - done, pageSize - offset);
        std::memcpy(touchPage(addr + done).data() + offset, bytes + done,
                    chunk);
        done += chunk;
    }
}

void
Memory::readBlock(uint64_t addr, void *dst, size_t len) const
{
    auto *bytes = static_cast<uint8_t *>(dst);
    size_t done = 0;
    while (done < len) {
        const uint64_t offset = (addr + done) & (pageSize - 1);
        const size_t chunk =
            std::min<size_t>(len - done, pageSize - offset);
        const Page *page = findPage(addr + done);
        if (page)
            std::memcpy(bytes + done, page->data() + offset, chunk);
        else
            std::memset(bytes + done, 0, chunk);
        done += chunk;
    }
}

uint64_t
Memory::checksum() const
{
    // Sort resident page indices so the hash does not depend on
    // unordered_map iteration order.
    std::vector<uint64_t> indices;
    indices.reserve(pages.size());
    for (const auto &[index, page] : pages)
        indices.push_back(index);
    std::sort(indices.begin(), indices.end());

    uint64_t hash = 1469598103934665603ULL; // FNV offset basis
    constexpr uint64_t prime = 1099511628211ULL;
    for (uint64_t index : indices) {
        for (unsigned shift = 0; shift < 64; shift += 8) {
            hash ^= (index >> shift) & 0xff;
            hash *= prime;
        }
        const Page &page = *pages.at(index);
        for (uint8_t byte : page) {
            hash ^= byte;
            hash *= prime;
        }
    }
    return hash;
}

void
Memory::loadProgram(const Program &prog)
{
    for (size_t i = 0; i < prog.code.size(); ++i)
        write(prog.textBase + i * 4, prog.code[i], 4);
    if (!prog.data.empty())
        writeBlock(prog.dataBase, prog.data.data(), prog.data.size());
}

} // namespace helios
