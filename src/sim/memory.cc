#include "sim/memory.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace helios
{

Memory::Memory()
    : arena(static_cast<uint8_t *>(std::calloc(arenaBytes, 1)))
{
    helios_assert(arena != nullptr, "memory arena allocation failed");
}

uint64_t
Memory::read(uint64_t addr, unsigned size) const
{
    helios_assert(size == 1 || size == 2 || size == 4 || size == 8,
                  "bad access size");
    uint64_t value = 0;
    if (addr <= arenaBytes - size) {
        for (unsigned i = 0; i < size; ++i)
            value |= uint64_t(arena[addr + i]) << (8 * i);
        return value;
    }
    // High pages and accesses straddling the arena edge: byte loop.
    for (unsigned i = 0; i < size; ++i)
        value |= uint64_t(readByte(addr + i)) << (8 * i);
    return value;
}

void
Memory::write(uint64_t addr, uint64_t value, unsigned size)
{
    helios_assert(size == 1 || size == 2 || size == 4 || size == 8,
                  "bad access size");
    if (addr <= arenaBytes - size) {
        for (unsigned i = 0; i < size; ++i)
            arena[addr + i] = uint8_t(value >> (8 * i));
        const uint64_t first = addr >> pageBits;
        const uint64_t last = (addr + size - 1) >> pageBits;
        markResident(first);
        if (last != first)
            markResident(last);
        return;
    }
    for (unsigned i = 0; i < size; ++i)
        writeByte(addr + i, uint8_t(value >> (8 * i)));
}

void
Memory::writeBlock(uint64_t addr, const void *src, size_t len)
{
    const auto *bytes = static_cast<const uint8_t *>(src);
    size_t done = 0;
    if (addr < arenaBytes && len > 0) {
        const size_t chunk =
            std::min<uint64_t>(len, arenaBytes - addr);
        std::memcpy(arena.get() + addr, bytes, chunk);
        const uint64_t last = (addr + chunk - 1) >> pageBits;
        for (uint64_t p = addr >> pageBits; p <= last; ++p)
            markResident(p);
        done = chunk;
    }
    while (done < len) {
        const uint64_t offset = (addr + done) & (pageSize - 1);
        const size_t chunk =
            std::min<size_t>(len - done, pageSize - offset);
        std::memcpy(touchHighPage(addr + done).data() + offset,
                    bytes + done, chunk);
        done += chunk;
    }
}

void
Memory::readBlock(uint64_t addr, void *dst, size_t len) const
{
    auto *bytes = static_cast<uint8_t *>(dst);
    size_t done = 0;
    if (addr < arenaBytes && len > 0) {
        const size_t chunk =
            std::min<uint64_t>(len, arenaBytes - addr);
        std::memcpy(bytes, arena.get() + addr, chunk);
        done = chunk;
    }
    while (done < len) {
        const uint64_t offset = (addr + done) & (pageSize - 1);
        const size_t chunk =
            std::min<size_t>(len - done, pageSize - offset);
        const Page *page = findHighPage(addr + done);
        if (page)
            std::memcpy(bytes + done, page->data() + offset, chunk);
        else
            std::memset(bytes + done, 0, chunk);
        done += chunk;
    }
}

void
Memory::forEachResidentPage(
    const std::function<void(uint64_t page_index,
                             const uint8_t *data)> &visit) const
{
    // Arena pages first (ascending by construction): their indices
    // are all below any high page's, so the combined order is
    // globally ascending.
    for (size_t w = 0; w < resident.size(); ++w) {
        uint64_t bits = resident[w];
        while (bits) {
            const uint64_t index =
                w * 64 + uint64_t(std::countr_zero(bits));
            visit(index, arena.get() + (index << pageBits));
            bits &= bits - 1;
        }
    }

    // Sort high page indices so the walk does not depend on
    // unordered_map iteration order.
    std::vector<uint64_t> indices;
    indices.reserve(pages.size());
    for (const auto &[index, page] : pages)
        indices.push_back(index);
    std::sort(indices.begin(), indices.end());
    for (uint64_t index : indices)
        visit(index, pages.at(index)->data());
}

uint64_t
Memory::checksum() const
{
    uint64_t hash = 1469598103934665603ULL; // FNV offset basis
    constexpr uint64_t prime = 1099511628211ULL;
    forEachResidentPage([&](uint64_t index, const uint8_t *data) {
        for (unsigned shift = 0; shift < 64; shift += 8) {
            hash ^= (index >> shift) & 0xff;
            hash *= prime;
        }
        for (size_t i = 0; i < pageSize; ++i) {
            hash ^= data[i];
            hash *= prime;
        }
    });
    return hash;
}

void
Memory::loadProgram(const Program &prog)
{
    for (size_t i = 0; i < prog.code.size(); ++i)
        write(prog.textBase + i * 4, prog.code[i], 4);
    if (!prog.data.empty())
        writeBlock(prog.dataBase, prog.data.data(), prog.data.size());
    for (const Program::Segment &seg : prog.segments) {
        if (!seg.bytes.empty())
            writeBlock(seg.vaddr, seg.bytes.data(), seg.bytes.size());
        // The zero-initialized tail (bss) is written explicitly so a
        // reused Memory holds no stale bytes and the pages count as
        // resident identically across engines and configurations.
        uint64_t addr = seg.vaddr + seg.bytes.size();
        uint64_t left = seg.memSize > seg.bytes.size()
                            ? seg.memSize - seg.bytes.size()
                            : 0;
        static const uint8_t zeros[4096] = {};
        while (left > 0) {
            const size_t chunk =
                size_t(std::min<uint64_t>(left, sizeof(zeros)));
            writeBlock(addr, zeros, chunk);
            addr += chunk;
            left -= chunk;
        }
    }
}

} // namespace helios
