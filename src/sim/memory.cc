#include "sim/memory.hh"

#include <cstring>

#include "common/logging.hh"

namespace helios
{

uint64_t
Memory::read(uint64_t addr, unsigned size) const
{
    helios_assert(size == 1 || size == 2 || size == 4 || size == 8,
                  "bad access size");
    uint64_t value = 0;
    // Fast path: access within one page.
    const uint64_t offset = addr & (pageSize - 1);
    if (offset + size <= pageSize) {
        const Page *page = findPage(addr);
        if (!page)
            return 0;
        for (unsigned i = 0; i < size; ++i)
            value |= uint64_t((*page)[offset + i]) << (8 * i);
        return value;
    }
    for (unsigned i = 0; i < size; ++i)
        value |= uint64_t(readByte(addr + i)) << (8 * i);
    return value;
}

void
Memory::write(uint64_t addr, uint64_t value, unsigned size)
{
    helios_assert(size == 1 || size == 2 || size == 4 || size == 8,
                  "bad access size");
    const uint64_t offset = addr & (pageSize - 1);
    if (offset + size <= pageSize) {
        Page &page = touchPage(addr);
        for (unsigned i = 0; i < size; ++i)
            page[offset + i] = uint8_t(value >> (8 * i));
        return;
    }
    for (unsigned i = 0; i < size; ++i)
        writeByte(addr + i, uint8_t(value >> (8 * i)));
}

void
Memory::writeBlock(uint64_t addr, const void *src, size_t len)
{
    const auto *bytes = static_cast<const uint8_t *>(src);
    size_t done = 0;
    while (done < len) {
        const uint64_t offset = (addr + done) & (pageSize - 1);
        const size_t chunk =
            std::min<size_t>(len - done, pageSize - offset);
        std::memcpy(touchPage(addr + done).data() + offset, bytes + done,
                    chunk);
        done += chunk;
    }
}

void
Memory::readBlock(uint64_t addr, void *dst, size_t len) const
{
    auto *bytes = static_cast<uint8_t *>(dst);
    size_t done = 0;
    while (done < len) {
        const uint64_t offset = (addr + done) & (pageSize - 1);
        const size_t chunk =
            std::min<size_t>(len - done, pageSize - offset);
        const Page *page = findPage(addr + done);
        if (page)
            std::memcpy(bytes + done, page->data() + offset, chunk);
        else
            std::memset(bytes + done, 0, chunk);
        done += chunk;
    }
}

void
Memory::loadProgram(const Program &prog)
{
    for (size_t i = 0; i < prog.code.size(); ++i)
        write(prog.textBase + i * 4, prog.code[i], 4);
    if (!prog.data.empty())
        writeBlock(prog.dataBase, prog.data.data(), prog.data.size());
}

} // namespace helios
