#include "common/json.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace helios
{

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
formatShortestDouble(double value)
{
    // The shortest decimal form that parses back to the exact same
    // bits: 15 digits cover most values, 17 always suffice.
    for (int precision = 15; precision <= 17; ++precision) {
        std::string text = strFormat("%.*g", precision, value);
        if (std::strtod(text.c_str(), nullptr) == value)
            return text;
    }
    return strFormat("%.17g", value); // unreachable for finite doubles
}

JsonValue::JsonValue(int64_t value)
{
    if (value >= 0) {
        kind_ = Kind::Uint;
        uinteger = uint64_t(value);
    } else {
        kind_ = Kind::Int;
        integer = value;
    }
}

JsonValue
JsonValue::array()
{
    JsonValue value;
    value.kind_ = Kind::Array;
    return value;
}

JsonValue
JsonValue::object()
{
    JsonValue value;
    value.kind_ = Kind::Object;
    return value;
}

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool)
        fatal("json: expected a boolean");
    return boolean;
}

uint64_t
JsonValue::asUint() const
{
    if (kind_ != Kind::Uint)
        fatal("json: expected a non-negative integer");
    return uinteger;
}

int64_t
JsonValue::asInt() const
{
    if (kind_ == Kind::Int)
        return integer;
    if (kind_ == Kind::Uint && uinteger <= uint64_t(INT64_MAX))
        return int64_t(uinteger);
    fatal("json: expected an integer in int64 range");
}

double
JsonValue::asDouble() const
{
    switch (kind_) {
      case Kind::Real: return real;
      case Kind::Uint: return double(uinteger);
      case Kind::Int: return double(integer);
      default: fatal("json: expected a number");
    }
}

const std::string &
JsonValue::asString() const
{
    if (kind_ != Kind::String)
        fatal("json: expected a string");
    return text;
}

size_t
JsonValue::size() const
{
    if (kind_ == Kind::Array)
        return items.size();
    if (kind_ == Kind::Object)
        return fields.size();
    fatal("json: size() on a scalar");
}

const JsonValue &
JsonValue::at(size_t index) const
{
    if (kind_ != Kind::Array)
        fatal("json: expected an array");
    if (index >= items.size())
        fatal("json: array index %zu out of range (size %zu)", index,
              items.size());
    return items[index];
}

void
JsonValue::push(JsonValue value)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Array;
    if (kind_ != Kind::Array)
        fatal("json: push() on a non-array");
    items.push_back(std::move(value));
}

namespace
{

template <typename Fields>
auto
fieldPos(Fields &fields, const std::string &key)
{
    return std::lower_bound(fields.begin(), fields.end(), key,
                            [](const auto &field, const std::string &k) {
                                return field.first < k;
                            });
}

} // namespace

bool
JsonValue::has(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return false;
    const auto it = fieldPos(fields, key);
    return it != fields.end() && it->first == key;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    if (kind_ != Kind::Object)
        fatal("json: expected an object (looking up '%s')", key.c_str());
    const auto it = fieldPos(fields, key);
    if (it == fields.end() || it->first != key)
        fatal("json: missing key '%s'", key.c_str());
    return it->second;
}

const JsonValue &
JsonValue::get(const std::string &key) const
{
    static const JsonValue null_value;
    if (kind_ != Kind::Object)
        return null_value;
    const auto it = fieldPos(fields, key);
    return it != fields.end() && it->first == key ? it->second
                                                  : null_value;
}

void
JsonValue::set(const std::string &key, JsonValue value)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    if (kind_ != Kind::Object)
        fatal("json: set() on a non-object");
    const auto it = fieldPos(fields, key);
    if (it != fields.end() && it->first == key)
        it->second = std::move(value);
    else
        fields.emplace(it, key, std::move(value));
}

bool
JsonValue::operator==(const JsonValue &other) const
{
    if (kind_ != other.kind_) {
        // 5 and 5.0 parse to different kinds but mean the same number.
        if (isNumber() && other.isNumber())
            return asDouble() == other.asDouble();
        return false;
    }
    switch (kind_) {
      case Kind::Null: return true;
      case Kind::Bool: return boolean == other.boolean;
      case Kind::Uint: return uinteger == other.uinteger;
      case Kind::Int: return integer == other.integer;
      case Kind::Real: return real == other.real;
      case Kind::String: return text == other.text;
      case Kind::Array: return items == other.items;
      case Kind::Object: return fields == other.fields;
    }
    return false;
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

void
JsonValue::write(std::string &out, int indent, int depth) const
{
    const auto newline = [&](int d) {
        if (indent > 0) {
            out += '\n';
            out.append(size_t(indent) * d, ' ');
        }
    };
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += boolean ? "true" : "false";
        break;
      case Kind::Uint:
        out += strFormat("%llu", (unsigned long long)uinteger);
        break;
      case Kind::Int:
        out += strFormat("%lld", (long long)integer);
        break;
      case Kind::Real:
        // JSON has no NaN/Infinity literal; silently degrading to
        // null would corrupt a report, so refuse loudly instead.
        if (!std::isfinite(real))
            fatal("json: cannot serialize non-finite number (%s)",
                  std::isnan(real) ? "NaN" : "Infinity");
        out += formatShortestDouble(real);
        break;
      case Kind::String:
        out += '"';
        out += jsonEscape(text);
        out += '"';
        break;
      case Kind::Array:
        out += '[';
        for (size_t i = 0; i < items.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            items[i].write(out, indent, depth + 1);
        }
        if (!items.empty())
            newline(depth);
        out += ']';
        break;
      case Kind::Object:
        out += '{';
        for (size_t i = 0; i < fields.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            out += '"';
            out += jsonEscape(fields[i].first);
            out += indent > 0 ? "\": " : "\":";
            fields[i].second.write(out, indent, depth + 1);
        }
        if (!fields.empty())
            newline(depth);
        out += '}';
        break;
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    write(out, indent, 0);
    if (indent > 0)
        out += '\n';
    return out;
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

namespace
{

class Parser
{
  public:
    explicit Parser(const std::string &text) : text(text) {}

    JsonValue
    document()
    {
        JsonValue value = parseValue();
        skipSpace();
        if (pos != text.size())
            fail("trailing garbage");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const char *what)
    {
        fatal("json parse error at offset %zu: %s", pos, what);
    }

    void
    skipSpace()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    char
    peek()
    {
        if (pos >= text.size())
            fail("unexpected end of input");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (pos >= text.size() || text[pos] != c)
            fail("unexpected character");
        ++pos;
    }

    bool
    consume(const char *word)
    {
        const size_t len = std::char_traits<char>::length(word);
        if (text.compare(pos, len, word) == 0) {
            pos += len;
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        skipSpace();
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return JsonValue(parseString());
          case 't':
            if (!consume("true"))
                fail("bad literal");
            return JsonValue(true);
          case 'f':
            if (!consume("false"))
                fail("bad literal");
            return JsonValue(false);
          case 'n':
            if (!consume("null"))
                fail("bad literal");
            return JsonValue(nullptr);
          default:
            return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue object = JsonValue::object();
        skipSpace();
        if (peek() == '}') {
            ++pos;
            return object;
        }
        for (;;) {
            skipSpace();
            std::string key = parseString();
            skipSpace();
            expect(':');
            object.set(key, parseValue());
            skipSpace();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect('}');
            return object;
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue array = JsonValue::array();
        skipSpace();
        if (peek() == ']') {
            ++pos;
            return array;
        }
        for (;;) {
            array.push(parseValue());
            skipSpace();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect(']');
            return array;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos >= text.size())
                fail("unterminated string");
            const char c = text[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                fail("unterminated escape");
            const char esc = text[pos++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos + 4 > text.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= unsigned(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                // Encode as UTF-8 (no surrogate-pair support; the
                // telemetry layer never emits any).
                if (code < 0x80) {
                    out += char(code);
                } else if (code < 0x800) {
                    out += char(0xc0 | (code >> 6));
                    out += char(0x80 | (code & 0x3f));
                } else {
                    out += char(0xe0 | (code >> 12));
                    out += char(0x80 | ((code >> 6) & 0x3f));
                    out += char(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                fail("bad escape");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        const size_t start = pos;
        bool negative = false, is_real = false;
        if (peek() == '-') {
            negative = true;
            ++pos;
        }
        while (pos < text.size()) {
            const char c = text[pos];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                is_real = is_real || c == '.' || c == 'e' || c == 'E';
                ++pos;
            } else {
                break;
            }
        }
        const std::string token = text.substr(start, pos - start);
        if (token.empty() || token == "-")
            fail("bad number");
        errno = 0;
        if (!is_real) {
            char *end = nullptr;
            if (negative) {
                const long long value =
                    std::strtoll(token.c_str(), &end, 10);
                if (*end == '\0' && errno != ERANGE)
                    return JsonValue(int64_t(value));
            } else {
                const unsigned long long value =
                    std::strtoull(token.c_str(), &end, 10);
                if (*end == '\0' && errno != ERANGE)
                    return JsonValue(uint64_t(value));
            }
            errno = 0; // integer overflow: fall through to double
        }
        char *end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (*end != '\0')
            fail("bad number");
        return JsonValue(value);
    }

    const std::string &text;
    size_t pos = 0;
};

} // namespace

JsonValue
JsonValue::parse(const std::string &text)
{
    return Parser(text).document();
}

} // namespace helios
