/**
 * @file
 * A minimal JSON value model, parser and writer.
 *
 * Just enough JSON for the telemetry layer: RunReport files are
 * written, re-parsed (round-trip tested) and diffed by
 * bench/compare_reports without external dependencies. Integers are
 * kept exact up to the full uint64_t/int64_t range — simulator
 * counters do not survive a detour through double.
 */

#ifndef COMMON_JSON_HH
#define COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace helios
{

/** One JSON value (null / bool / integer / real / string / array /
 *  object). Objects keep their keys sorted so output is
 *  deterministic. */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Uint,  ///< non-negative integer literal
        Int,   ///< negative integer literal
        Real,
        String,
        Array,
        Object,
    };

    JsonValue() = default;
    JsonValue(std::nullptr_t) {}
    JsonValue(bool value) : kind_(Kind::Bool), boolean(value) {}
    JsonValue(uint64_t value) : kind_(Kind::Uint), uinteger(value) {}
    JsonValue(int64_t value);
    JsonValue(int value) : JsonValue(int64_t(value)) {}
    JsonValue(unsigned value) : JsonValue(uint64_t(value)) {}
    JsonValue(double value) : kind_(Kind::Real), real(value) {}
    JsonValue(std::string value)
        : kind_(Kind::String), text(std::move(value))
    {}
    JsonValue(const char *value) : JsonValue(std::string(value)) {}

    static JsonValue array();
    static JsonValue object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isString() const { return kind_ == Kind::String; }
    bool isNumber() const
    {
        return kind_ == Kind::Uint || kind_ == Kind::Int ||
               kind_ == Kind::Real;
    }

    // Typed accessors; fatal() on kind mismatch so malformed report
    // files fail with a message instead of corrupting a comparison.
    bool asBool() const;
    uint64_t asUint() const;
    int64_t asInt() const;
    double asDouble() const;
    const std::string &asString() const;

    // ---- array ----
    size_t size() const;
    const JsonValue &at(size_t index) const;
    void push(JsonValue value);

    // ---- object ----
    bool has(const std::string &key) const;
    /** fatal() when the key is missing. */
    const JsonValue &at(const std::string &key) const;
    /** Null value when the key is missing. */
    const JsonValue &get(const std::string &key) const;
    void set(const std::string &key, JsonValue value);
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return fields;
    }

    bool operator==(const JsonValue &other) const;

    /** Serialize; @a indent > 0 pretty-prints. */
    std::string dump(int indent = 0) const;

    /** Parse a complete JSON document; fatal() on syntax errors. */
    static JsonValue parse(const std::string &text);

  private:
    void write(std::string &out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool boolean = false;
    uint64_t uinteger = 0;
    int64_t integer = 0;
    double real = 0.0;
    std::string text;
    std::vector<JsonValue> items;
    // Sorted by key (std::vector tolerates the incomplete element
    // type where node containers would not be guaranteed to).
    std::vector<std::pair<std::string, JsonValue>> fields;
};

/** Escape @a text for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &text);

/**
 * The shortest decimal representation of a finite double that parses
 * back (strtod) to exactly the same value — "0.1" instead of the 17
 * significant digits %.17g would print. The JSON writer uses this for
 * every Real; exposed for tests and other emitters.
 */
std::string formatShortestDouble(double value);

} // namespace helios

#endif // COMMON_JSON_HH
