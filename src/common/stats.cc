#include "common/stats.hh"

#include <sstream>

namespace helios
{

std::vector<std::pair<std::string, uint64_t>>
StatGroup::dump() const
{
    std::vector<std::pair<std::string, uint64_t>> result;
    result.reserve(counters.size());
    for (const auto &[name, stat] : counters)
        result.emplace_back(name, stat.value());
    return result;
}

void
StatGroup::resetAll()
{
    for (auto &[name, stat] : counters)
        stat.reset();
}

std::string
StatGroup::toString() const
{
    size_t width = 0;
    for (const auto &[name, stat] : counters)
        width = std::max(width, name.size());

    std::ostringstream out;
    for (const auto &[name, stat] : counters) {
        out << name;
        out << std::string(width - name.size() + 2, ' ');
        out << stat.value() << '\n';
    }
    return out.str();
}

} // namespace helios
