#include "common/stats.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace helios
{

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

Histogram::Histogram()
{
    bounds.reserve(32);
    for (int i = 0; i < 32; ++i)
        bounds.push_back(uint64_t(1) << i);
    buckets.assign(bounds.size() + 1, 0);
}

Histogram::Histogram(std::vector<uint64_t> upper_bounds)
    : bounds(std::move(upper_bounds))
{
    helios_assert(!bounds.empty(), "histogram needs at least one bucket");
    for (size_t i = 1; i < bounds.size(); ++i)
        helios_assert(bounds[i - 1] < bounds[i],
                      "histogram bounds must be strictly increasing");
    buckets.assign(bounds.size() + 1, 0);
}

Histogram
Histogram::linear(uint64_t max, uint64_t step)
{
    helios_assert(step > 0, "histogram step must be positive");
    std::vector<uint64_t> bounds;
    for (uint64_t bound = step; bound < max + step; bound += step)
        bounds.push_back(bound);
    return Histogram(std::move(bounds));
}

void
Histogram::addSample(uint64_t value, uint64_t weight)
{
    if (weight == 0)
        return;
    // First bucket whose inclusive upper bound covers the value;
    // everything above the last bound lands in the overflow bucket.
    const size_t index =
        std::lower_bound(bounds.begin(), bounds.end(), value) -
        bounds.begin();
    buckets[index] += weight;
    if (total == 0) {
        lo = hi = value;
    } else {
        lo = std::min(lo, value);
        hi = std::max(hi, value);
    }
    total += weight;
    weightedSum += value * weight;
}

void
Histogram::merge(const Histogram &other)
{
    helios_assert(bounds == other.bounds,
                  "merging histograms with different bucket layouts");
    if (other.total == 0)
        return;
    for (size_t i = 0; i < buckets.size(); ++i)
        buckets[i] += other.buckets[i];
    if (total == 0) {
        lo = other.lo;
        hi = other.hi;
    } else {
        lo = std::min(lo, other.lo);
        hi = std::max(hi, other.hi);
    }
    total += other.total;
    weightedSum += other.weightedSum;
}

double
Histogram::mean() const
{
    return total ? double(weightedSum) / double(total) : 0.0;
}

uint64_t
Histogram::percentile(double fraction) const
{
    if (total == 0)
        return 0;
    fraction = std::clamp(fraction, 0.0, 1.0);
    // Rank of the requested sample (1-based, ceil), so that
    // percentile(0.5) of {1, 2} is the first sample's bucket.
    const uint64_t rank = std::max<uint64_t>(
        1, uint64_t(fraction * double(total) + 0.999999));
    uint64_t seen = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
        seen += buckets[i];
        if (seen >= rank) {
            // Report the tightest honest value for the bucket: its
            // bound, clamped into the observed sample range.
            const uint64_t bound = bucketBound(i);
            return std::min(bound, hi);
        }
    }
    return hi;
}

uint64_t
Histogram::bucketBound(size_t i) const
{
    return i < bounds.size() ? bounds[i] : UINT64_MAX;
}

void
Histogram::reset()
{
    std::fill(buckets.begin(), buckets.end(), 0);
    total = weightedSum = lo = hi = 0;
}

void
Histogram::restore(const std::vector<uint64_t> &bucket_counts,
                   uint64_t total_samples, uint64_t weighted_sum,
                   uint64_t min_value, uint64_t max_value)
{
    helios_assert(bucket_counts.size() == buckets.size(),
                  "restoring histogram with wrong bucket count");
    buckets = bucket_counts;
    total = total_samples;
    weightedSum = weighted_sum;
    lo = min_value;
    hi = max_value;
}

std::string
Histogram::summary() const
{
    std::ostringstream out;
    out << "n=" << total;
    if (total) {
        out << " mean=" << strFormat("%.2f", mean())
            << " p50=" << percentile(0.50)
            << " p90=" << percentile(0.90)
            << " p99=" << percentile(0.99) << " max=" << hi;
    }
    return out.str();
}

bool
Histogram::operator==(const Histogram &other) const
{
    return bounds == other.bounds && buckets == other.buckets &&
           total == other.total && weightedSum == other.weightedSum &&
           lo == other.lo && hi == other.hi;
}

// ---------------------------------------------------------------------
// CpiStack
// ---------------------------------------------------------------------

void
CpiStack::addCategory(const std::string &name, uint64_t cycles)
{
    // Double-attribution guard: a category added twice would count its
    // cycles twice and silently break the partition invariant.
    for (const auto &[existing, _] : entries)
        helios_assert(existing != name,
                      "CpiStack category attributed twice");
    entries.emplace_back(name, cycles);
}

int64_t
CpiStack::residual() const
{
    uint64_t claimed = 0;
    for (const auto &[name, cycles] : entries)
        claimed += cycles;
    return int64_t(total) - int64_t(claimed);
}

uint64_t
CpiStack::cycles(const std::string &name) const
{
    for (const auto &[entry_name, cycles] : entries)
        if (entry_name == name)
            return cycles;
    return 0;
}

double
CpiStack::fraction(const std::string &name) const
{
    return total ? double(cycles(name)) / double(total) : 0.0;
}

double
CpiStack::fractionWithPrefix(const std::string &prefix) const
{
    if (!total)
        return 0.0;
    uint64_t sum = 0;
    for (const auto &[name, cycles] : entries)
        if (name.compare(0, prefix.size(), prefix) == 0)
            sum += cycles;
    return double(sum) / double(total);
}

std::string
CpiStack::dominant() const
{
    const std::pair<std::string, uint64_t> *best = nullptr;
    for (const auto &entry : entries)
        if (entry.second > 0 && (!best || entry.second > best->second))
            best = &entry;
    return best ? best->first : "";
}

std::string
CpiStack::toString() const
{
    std::vector<std::pair<std::string, uint64_t>> sorted = entries;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const auto &a, const auto &b) {
                         return a.second > b.second;
                     });
    size_t width = sizeof("TOTAL") - 1;
    for (const auto &[name, cycles] : sorted)
        width = std::max(width, name.size());

    std::ostringstream out;
    for (const auto &[name, cycles] : sorted) {
        out << name << std::string(width - name.size() + 2, ' ')
            << strFormat("%12llu  %5.1f%%\n",
                         (unsigned long long)cycles,
                         total ? 100.0 * double(cycles) / double(total)
                               : 0.0);
    }
    if (const int64_t rest = residual())
        out << "(residual)"
            << std::string(width - sizeof("(residual)") + 3, ' ')
            << strFormat("%12lld\n", (long long)rest);
    out << "TOTAL" << std::string(width - 5 + 2, ' ')
        << strFormat("%12llu  100.0%%\n", (unsigned long long)total);
    return out.str();
}

bool
CpiStack::operator==(const CpiStack &other) const
{
    return total == other.total && entries == other.entries;
}

// ---------------------------------------------------------------------
// StatGroup
// ---------------------------------------------------------------------

Stat &
StatGroup::counter(const std::string &name)
{
    const auto [it, fresh] =
        counterIndex.try_emplace(name, counterSlots.size());
    if (fresh)
        counterSlots.emplace_back();
    return counterSlots[it->second];
}

std::pair<const std::string *, Stat *>
StatGroup::counterEntry(std::string_view name)
{
    const auto [it, fresh] = counterIndex.try_emplace(
        std::string(name), counterSlots.size());
    if (fresh)
        counterSlots.emplace_back();
    return {&it->first, &counterSlots[it->second]};
}

uint64_t
StatGroup::get(const std::string &name) const
{
    const auto it = counterIndex.find(name);
    return it == counterIndex.end() ? 0
                                    : counterSlots[it->second].value();
}

Histogram &
StatGroup::histogram(const std::string &name)
{
    const auto [it, fresh] =
        histogramIndex.try_emplace(name, histogramSlots.size());
    if (fresh)
        histogramSlots.emplace_back();
    return histogramSlots[it->second];
}

Histogram &
StatGroup::histogram(const std::string &name, Histogram layout)
{
    const auto [it, fresh] =
        histogramIndex.try_emplace(name, histogramSlots.size());
    if (fresh)
        histogramSlots.push_back(std::move(layout));
    return histogramSlots[it->second];
}

const Histogram *
StatGroup::findHistogram(const std::string &name) const
{
    const auto it = histogramIndex.find(name);
    return it == histogramIndex.end() ? nullptr
                                      : &histogramSlots[it->second];
}

std::vector<std::pair<std::string, uint64_t>>
StatGroup::dump() const
{
    std::vector<std::pair<std::string, uint64_t>> result;
    result.reserve(counterIndex.size());
    for (const auto &[name, index] : counterIndex)
        result.emplace_back(name, counterSlots[index].value());
    std::sort(result.begin(), result.end());
    return result;
}

std::vector<std::pair<std::string, const Histogram *>>
StatGroup::dumpHistograms() const
{
    std::vector<std::pair<std::string, const Histogram *>> result;
    result.reserve(histogramIndex.size());
    for (const auto &[name, index] : histogramIndex)
        result.emplace_back(name, &histogramSlots[index]);
    std::sort(result.begin(), result.end());
    return result;
}

CpiStack
StatGroup::cpiStack(uint64_t total_cycles) const
{
    if (total_cycles == 0)
        total_cycles = get("cycles");
    CpiStack stack(total_cycles);
    for (const auto &[name, value] : dump())
        if (name.compare(0, 4, "cpi.") == 0)
            stack.addCategory(name, value);
    return stack;
}

void
StatGroup::resetAll()
{
    for (Stat &stat : counterSlots)
        stat.reset();
    for (Histogram &histogram : histogramSlots)
        histogram.reset();
}

std::string
StatGroup::toString() const
{
    const auto counters = dump();
    const auto histograms = dumpHistograms();
    size_t width = 0;
    for (const auto &[name, value] : counters)
        width = std::max(width, name.size());
    for (const auto &[name, histogram] : histograms)
        width = std::max(width, name.size());

    std::ostringstream out;
    for (const auto &[name, value] : counters) {
        out << name;
        out << std::string(width - name.size() + 2, ' ');
        out << value << '\n';
    }
    for (const auto &[name, histogram] : histograms) {
        out << name;
        out << std::string(width - name.size() + 2, ' ');
        out << histogram->summary() << '\n';
    }
    return out.str();
}

} // namespace helios
