/**
 * @file
 * Named-statistics registry and first-class stat types.
 *
 * Every pipeline structure owns counters registered into a StatGroup so
 * that harness code can enumerate, print and diff statistics without
 * each experiment hard-wiring member accesses. Beyond flat counters the
 * group also carries Histogram distributions (queue occupancy,
 * fusion-pair distance, ...) and the telemetry layer builds CpiStack
 * cycle accounting on top of the `cpi.*` counters.
 */

#ifndef COMMON_STATS_HH
#define COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace helios
{

/** A single named 64-bit counter. */
class Stat
{
  public:
    Stat() = default;

    void operator++() { ++count; }
    void operator++(int) { ++count; }
    void operator+=(uint64_t n) { count += n; }
    void reset() { count = 0; }

    uint64_t value() const { return count; }

  private:
    uint64_t count = 0;
};

/**
 * A bucketed distribution of 64-bit samples.
 *
 * Buckets are defined by a sorted list of inclusive upper bounds; a
 * sample lands in the first bucket whose bound is >= the sample, and
 * anything above the last bound lands in an implicit overflow bucket.
 * The default layout is exponential (1, 2, 4, ..., 2^31), which suits
 * distances and occupancies alike; pass explicit bounds (e.g. linear)
 * when the resolution matters.
 */
class Histogram
{
  public:
    /** Exponential buckets: upper bounds 1, 2, 4, ..., 2^31. */
    Histogram();

    /** Custom bucket layout; @a upper_bounds must be strictly
     *  increasing and non-empty. */
    explicit Histogram(std::vector<uint64_t> upper_bounds);

    /** Evenly spaced buckets of width @a step covering [0, max]. */
    static Histogram linear(uint64_t max, uint64_t step);

    void addSample(uint64_t value, uint64_t weight = 1);

    /** Fold @a other into this histogram (bucket layouts must match). */
    void merge(const Histogram &other);

    uint64_t samples() const { return total; }
    uint64_t sum() const { return weightedSum; }
    uint64_t minValue() const { return total ? lo : 0; }
    uint64_t maxValue() const { return total ? hi : 0; }
    double mean() const;

    /**
     * Value below which @a fraction (0..1) of the samples fall: the
     * upper bound of the bucket containing that quantile (the exact
     * sample values inside a bucket are not retained). An empty
     * histogram reports 0.
     */
    uint64_t percentile(double fraction) const;

    size_t numBuckets() const { return bounds.size() + 1; }

    /** Inclusive upper bound of bucket @a i (UINT64_MAX: overflow). */
    uint64_t bucketBound(size_t i) const;
    uint64_t bucketCount(size_t i) const { return buckets[i]; }
    const std::vector<uint64_t> &bucketBounds() const { return bounds; }

    void reset();

    /**
     * Reinstate a serialized distribution: bucket counts plus the
     * scalar moments (sample count, weighted sum, observed min/max)
     * that bucketing alone cannot recover. @a bucket_counts must have
     * numBuckets() entries and sum to @a total_samples; used by the
     * RunReport JSON loader so save → load → operator== holds.
     */
    void restore(const std::vector<uint64_t> &bucket_counts,
                 uint64_t total_samples, uint64_t weighted_sum,
                 uint64_t min_value, uint64_t max_value);

    /** One-line summary: n, mean, p50/p90/p99, max. */
    std::string summary() const;

    bool operator==(const Histogram &other) const;

  private:
    std::vector<uint64_t> bounds;  ///< inclusive upper bounds, sorted
    std::vector<uint64_t> buckets; ///< bounds.size() + 1 (overflow last)
    uint64_t total = 0;
    uint64_t weightedSum = 0;
    uint64_t lo = 0;
    uint64_t hi = 0;
};

/**
 * Top-down cycle accounting: a list of named categories whose cycle
 * counts partition a run's total cycles (the paper's Fig. 9 stall
 * attribution, generalized).
 *
 * Two construction paths:
 *  - StatGroup::cpiStack() collects the pipeline's per-cycle `cpi.*`
 *    attribution counters, which are incremented exactly once per
 *    cycle, so the stack is exact: residual() == 0.
 *  - addCategory() builds an ad-hoc stack from arbitrary counters
 *    (e.g. the historical rename/dispatch stall counters); these may
 *    overlap or undercount, and the residual absorbs the difference.
 */
class CpiStack
{
  public:
    explicit CpiStack(uint64_t total_cycles = 0) : total(total_cycles) {}

    void addCategory(const std::string &name, uint64_t cycles);

    /** Cycles not claimed by any category (0 for an exact stack). */
    int64_t residual() const;

    uint64_t totalCycles() const { return total; }
    size_t size() const { return entries.size(); }
    const std::string &name(size_t i) const { return entries[i].first; }
    uint64_t cycles(size_t i) const { return entries[i].second; }
    uint64_t cycles(const std::string &name) const;

    /** Fraction of total cycles in @a name (0 when total is 0). */
    double fraction(const std::string &name) const;

    /** Sum of fractions over categories whose name starts with
     *  @a prefix. */
    double fractionWithPrefix(const std::string &prefix) const;

    /** Category with the most cycles ("" when empty). */
    std::string dominant() const;

    /** True when every cycle is accounted for exactly once. */
    bool exact() const { return residual() == 0; }

    /** Aligned "category cycles percent" table, largest first. */
    std::string toString() const;

    bool operator==(const CpiStack &other) const;

  private:
    uint64_t total;
    std::vector<std::pair<std::string, uint64_t>> entries;
};

/**
 * A flat registry of counters and histograms keyed by dotted names
 * (e.g. "dispatch.stall.sq_full").
 *
 * Backing store is a stable deque indexed by an unordered (hashed)
 * name map: counter() is O(1) amortized and returned references stay
 * valid for the life of the group, while dump() sorts on demand so
 * reports remain alphabetical.
 */
class StatGroup
{
  public:
    /** Get or create the counter with the given name. */
    Stat &counter(const std::string &name);

    /**
     * Get or create, also returning the interned name string. The
     * name pointer stays valid for the group's lifetime (node-based
     * index map), so callers may key caches on a string_view of it —
     * see Pipeline::counter(), which memoizes Stat addresses by
     * content without pinning the caller's storage.
     */
    std::pair<const std::string *, Stat *>
    counterEntry(std::string_view name);

    /** Read a counter; zero if it was never created. */
    uint64_t get(const std::string &name) const;

    /** Get or create a histogram (default exponential buckets). */
    Histogram &histogram(const std::string &name);

    /** Get or create a histogram, creating with the given layout. */
    Histogram &histogram(const std::string &name, Histogram layout);

    /** Read-only lookup; nullptr if it was never created. */
    const Histogram *findHistogram(const std::string &name) const;

    /** All (name, value) pairs, sorted by name. */
    std::vector<std::pair<std::string, uint64_t>> dump() const;

    /** All (name, histogram) pairs, sorted by name. */
    std::vector<std::pair<std::string, const Histogram *>>
    dumpHistograms() const;

    /**
     * Build the exact CPI stack from the `cpi.*` per-cycle attribution
     * counters (total taken from the "cycles" counter unless given).
     */
    CpiStack cpiStack(uint64_t total_cycles = 0) const;

    /** Reset every counter and histogram to zero. */
    void resetAll();

    /** Render as an aligned "name value" table (histograms appended
     *  as one summary line each). */
    std::string toString() const;

  private:
    // Deques keep references stable across growth; the maps give O(1)
    // amortized name lookup.
    std::deque<Stat> counterSlots;
    std::unordered_map<std::string, size_t> counterIndex;
    std::deque<Histogram> histogramSlots;
    std::unordered_map<std::string, size_t> histogramIndex;
};

} // namespace helios

#endif // COMMON_STATS_HH
