/**
 * @file
 * A tiny named-statistics registry.
 *
 * Every pipeline structure owns counters registered into a StatGroup so
 * that harness code can enumerate, print and diff statistics without
 * each experiment hard-wiring member accesses.
 */

#ifndef COMMON_STATS_HH
#define COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace helios
{

/** A single named 64-bit counter. */
class Stat
{
  public:
    Stat() = default;

    void operator++() { ++count; }
    void operator++(int) { ++count; }
    void operator+=(uint64_t n) { count += n; }
    void reset() { count = 0; }

    uint64_t value() const { return count; }

  private:
    uint64_t count = 0;
};

/**
 * A flat registry of counters keyed by dotted names
 * (e.g. "dispatch.stall.sq_full").
 */
class StatGroup
{
  public:
    /** Get or create the counter with the given name. */
    Stat &counter(const std::string &name) { return counters[name]; }

    /** Read a counter; zero if it was never created. */
    uint64_t
    get(const std::string &name) const
    {
        auto it = counters.find(name);
        return it == counters.end() ? 0 : it->second.value();
    }

    /** All (name, value) pairs, sorted by name. */
    std::vector<std::pair<std::string, uint64_t>> dump() const;

    /** Reset every counter to zero. */
    void resetAll();

    /** Render as an aligned "name value" table. */
    std::string toString() const;

  private:
    std::map<std::string, Stat> counters;
};

} // namespace helios

#endif // COMMON_STATS_HH
