/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic() signals an internal simulator bug (aborts); fatal() signals a
 * user/configuration error (throws so harnesses and tests can recover);
 * warn()/inform() report status without stopping the simulation.
 */

#ifndef COMMON_LOGGING_HH
#define COMMON_LOGGING_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace helios
{

/** Exception thrown by fatal(): unrecoverable *user* error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** printf-style formatting into a std::string. */
std::string strFormat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an internal simulator bug and abort. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an unrecoverable user error (throws FatalError). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report suspicious but survivable behaviour. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** panic() unless @a cond holds. */
#define helios_assert(cond, ...)                                          \
    do {                                                                  \
        if (!(cond))                                                      \
            ::helios::panic("assertion '" #cond "' failed: " __VA_ARGS__);\
    } while (0)

} // namespace helios

#endif // COMMON_LOGGING_HH
