/**
 * @file
 * Error reporting and structured host-side logging.
 *
 * Two layers share this header. The classic gem5-spirit helpers:
 * panic() signals an internal simulator bug (aborts); fatal() signals
 * a user/configuration error (throws so harnesses and tests can
 * recover); warn()/inform() report status without stopping the
 * simulation. And the structured logger underneath them: every
 * warn()/inform() (plus the new logTrace/logDebug/logError) is routed
 * through the process-wide thread-safe Logger, which serializes
 * output so parallel runMatrix workers can never interleave partial
 * lines, filters by severity (HELIOS_LOG / helios_run --log-level),
 * attaches per-thread context fields (matrix cell id, workload,
 * config — see LogContext), and optionally mirrors every record to a
 * JSON-lines sink (HELIOS_LOG_JSON / --log-json) for machine
 * consumption. See OBSERVABILITY.md, "Host telemetry".
 */

#ifndef COMMON_LOGGING_HH
#define COMMON_LOGGING_HH

#include <atomic>
#include <cstdarg>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace helios
{

/** Exception thrown by fatal(): unrecoverable *user* error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** printf-style formatting into a std::string. */
std::string strFormat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an internal simulator bug and abort. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an unrecoverable user error (throws FatalError). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report suspicious but survivable behaviour (LogLevel::Warn). */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status (LogLevel::Info). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Fine-grained harness tracing (LogLevel::Trace). */
void logTrace(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Diagnostic detail (LogLevel::Debug). */
void logDebug(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** A definite problem that does not stop the run (LogLevel::Error). */
void logError(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** panic() unless @a cond holds. */
#define helios_assert(cond, ...)                                          \
    do {                                                                  \
        if (!(cond))                                                      \
            ::helios::panic("assertion '" #cond "' failed: " __VA_ARGS__);\
    } while (0)

// ---------------------------------------------------------------------
// Structured leveled logging
// ---------------------------------------------------------------------

/** Severity, least to most severe; Off suppresses everything. */
enum class LogLevel
{
    Trace,
    Debug,
    Info,
    Warn,
    Error,
    Off,
};

/** Lower-case level name ("trace" ... "error", "off"). */
const char *logLevelName(LogLevel level);

/** Parse a level name (case-insensitive); fatal() on unknown names. */
LogLevel logLevelFromName(const std::string &name);

/**
 * The process-wide logger. All helpers above route through
 * Logger::global(), whose construction reads the environment once:
 * HELIOS_LOG=<level> sets the threshold (default info) and
 * HELIOS_LOG_JSON=<path> opens the JSON-lines sink.
 *
 * Thread safety: one mutex serializes every emitted record, and each
 * record is written with a single stream operation, so concurrent
 * workers cannot interleave partial lines (tier-1 regression-tested).
 * The severity check itself is a lock-free atomic load, so disabled
 * levels cost one branch.
 */
class Logger
{
  public:
    static Logger &global();

    void setLevel(LogLevel level);
    LogLevel level() const;

    /** True when records at @a level pass the threshold. */
    bool
    enabled(LogLevel level) const
    {
        return int(level) >= threshold.load(std::memory_order_relaxed);
    }

    /**
     * Mirror every record (any level that passes the threshold) to a
     * JSON-lines file: one object per line with ts (seconds since
     * logger construction), level, msg, thread, and one key per
     * active LogContext field. fatal() when the path cannot be
     * opened.
     */
    void openJsonSink(const std::string &path);
    void closeJsonSink();
    bool jsonSinkOpen() const;

    /**
     * Redirect the text output (normally stdout for trace/debug/info,
     * stderr for warn/error) into @a sink; nullptr restores the
     * defaults. For tests.
     */
    void captureText(std::ostream *sink);

    /** Emit a preformatted message at @a level. */
    void log(LogLevel level, const std::string &message);

    /** printf-style emit. */
    void logf(LogLevel level, const char *fmt, ...)
        __attribute__((format(printf, 3, 4)));
    void vlogf(LogLevel level, const char *fmt, va_list args);

    /**
     * Rewrite-in-place progress line (no newline, leading carriage
     * return) on stderr — the TTY sweep-progress display. A regular
     * record emitted while a progress line is pending clears the line
     * first, so progress and logs never collide.
     */
    void progress(const std::string &line);

    /** Erase a pending progress line (end of sweep). */
    void clearProgress();

    Logger(const Logger &) = delete;
    Logger &operator=(const Logger &) = delete;

  private:
    Logger();
    ~Logger();

    struct Impl;
    Impl *impl;
    std::atomic<int> threshold;
};

/**
 * Render the sweep progress line fed to Logger::progress() and the
 * non-TTY heartbeat: "done/total cells (pct%), rate cells/s, ETA Xs".
 *
 * Division-free at the edges: before the first cell completes, or
 * when the clock has not advanced yet, the rate and ETA render as
 * "--" instead of dividing by zero. An ETA past ~100 hours says more
 * about a misconfigured sweep than about time remaining, so it is
 * clamped to ">99h" rather than printing astronomical seconds.
 */
std::string formatMatrixProgress(size_t done, size_t total,
                                 double elapsed_seconds);

/**
 * RAII per-thread context fields: while alive, every record emitted
 * from this thread carries the given (key, value) pairs — appended to
 * the text line as [k=v ...] and merged into JSON-lines objects.
 * Contexts nest; destruction pops this frame's fields.
 *
 * runMatrix workers wrap each cell in a LogContext naming the cell
 * index, workload and configuration, so a warn() fired deep inside
 * the pipeline identifies its cell even in a 192-way sweep.
 */
class LogContext
{
  public:
    explicit LogContext(
        std::vector<std::pair<std::string, std::string>> fields);
    ~LogContext();

    LogContext(const LogContext &) = delete;
    LogContext &operator=(const LogContext &) = delete;

  private:
    size_t count;
};

} // namespace helios

#endif // COMMON_LOGGING_HH
