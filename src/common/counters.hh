/**
 * @file
 * Small saturating counters used throughout the predictor machinery.
 */

#ifndef COMMON_COUNTERS_HH
#define COMMON_COUNTERS_HH

#include <cstdint>

namespace helios
{

/**
 * An n-bit unsigned saturating counter.
 *
 * The counter saturates at [0, 2^Bits - 1]. Used for fusion-predictor
 * confidence, tournament selector entries and TAGE useful bits.
 */
template <unsigned Bits>
class SatCounter
{
  public:
    static constexpr uint8_t maxValue = (1u << Bits) - 1;

    constexpr SatCounter() = default;
    explicit constexpr SatCounter(uint8_t initial) : count(initial) {}

    /** Increment, saturating at the maximum. */
    void
    increment()
    {
        if (count < maxValue)
            ++count;
    }

    /** Decrement, saturating at zero. */
    void
    decrement()
    {
        if (count > 0)
            --count;
    }

    /** Reset to an arbitrary value (clamped to the max). */
    void
    set(uint8_t value)
    {
        count = value > maxValue ? maxValue : value;
    }

    void reset() { count = 0; }

    uint8_t value() const { return count; }
    bool isSaturated() const { return count == maxValue; }

    /** MSB set: the usual "weakly/strongly taken" style threshold. */
    bool isHigh() const { return count >= (1u << (Bits - 1)); }

  private:
    uint8_t count = 0;
};

/**
 * An n-bit signed saturating counter in [-2^(Bits-1), 2^(Bits-1) - 1],
 * as used by TAGE tagged-component predictions.
 */
template <unsigned Bits>
class SignedSatCounter
{
  public:
    static constexpr int8_t maxValue = (1 << (Bits - 1)) - 1;
    static constexpr int8_t minValue = -(1 << (Bits - 1));

    constexpr SignedSatCounter() = default;

    void
    update(bool up)
    {
        if (up && count < maxValue)
            ++count;
        else if (!up && count > minValue)
            --count;
    }

    void set(int8_t value) { count = value; }
    int8_t value() const { return count; }
    bool predictTaken() const { return count >= 0; }

    /** Weak predictions (-1/0) carry low confidence. */
    bool isWeak() const { return count == 0 || count == -1; }

  private:
    int8_t count = 0;
};

} // namespace helios

#endif // COMMON_COUNTERS_HH
