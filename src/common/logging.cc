#include "common/logging.hh"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <vector>

namespace helios
{

namespace
{

std::string
vformat(const char *fmt, va_list args)
{
    va_list copy;
    va_copy(copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buffer(needed + 1);
    std::vsnprintf(buffer.data(), buffer.size(), fmt, args);
    return std::string(buffer.data(), needed);
}

/** Per-thread context-field stack (flat; LogContext pops by count). */
thread_local std::vector<std::pair<std::string, std::string>>
    tlsContext;

/** Small dense thread id for log records (assigned on first use). */
unsigned
logThreadId()
{
    static std::atomic<unsigned> next{0};
    thread_local unsigned id = next.fetch_add(1);
    return id;
}

/** Minimal JSON string escaping (json.hh would be a layering cycle —
 *  helios_common hosts both, but logging must not pull the full value
 *  model into every translation unit). */
std::string
jsonQuote(const std::string &text)
{
    std::string out = "\"";
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strFormat("\\u%04x", c);
            else
                out += c;
        }
    }
    out += '"';
    return out;
}

} // namespace

std::string
strFormat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string result = vformat(fmt, args);
    va_end(args);
    return result;
}

// ---------------------------------------------------------------------
// Logger
// ---------------------------------------------------------------------

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Trace: return "trace";
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Error: return "error";
      case LogLevel::Off: return "off";
    }
    return "?";
}

LogLevel
logLevelFromName(const std::string &name)
{
    std::string lower;
    lower.reserve(name.size());
    for (const char c : name)
        lower += char(std::tolower(static_cast<unsigned char>(c)));
    for (const LogLevel level :
         {LogLevel::Trace, LogLevel::Debug, LogLevel::Info,
          LogLevel::Warn, LogLevel::Error, LogLevel::Off})
        if (lower == logLevelName(level))
            return level;
    fatal("unknown log level '%s' (trace|debug|info|warn|error|off)",
          name.c_str());
}

struct Logger::Impl
{
    std::mutex mutex;
    std::ofstream jsonOut;
    bool jsonOpen = false;
    std::ostream *capture = nullptr;
    bool progressPending = false;
    std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();

    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - epoch)
            .count();
    }
};

Logger::Logger() : impl(new Impl), threshold(int(LogLevel::Info))
{
    // Environment configuration happens exactly once, here, so every
    // binary (benches, tests, the CLI) honours it without wiring.
    if (const char *env = std::getenv("HELIOS_LOG")) {
        try {
            threshold.store(int(logLevelFromName(env)));
        } catch (const FatalError &error) {
            std::fprintf(stderr, "warn: HELIOS_LOG: %s\n",
                         error.what());
        }
    }
    if (const char *env = std::getenv("HELIOS_LOG_JSON")) {
        try {
            openJsonSink(env);
        } catch (const FatalError &error) {
            std::fprintf(stderr, "warn: HELIOS_LOG_JSON: %s\n",
                         error.what());
        }
    }
}

Logger::~Logger()
{
    delete impl;
}

Logger &
Logger::global()
{
    // Leaked intentionally: workers may log during static destruction.
    static Logger *logger = new Logger;
    return *logger;
}

void
Logger::setLevel(LogLevel level)
{
    threshold.store(int(level), std::memory_order_relaxed);
}

LogLevel
Logger::level() const
{
    return LogLevel(threshold.load(std::memory_order_relaxed));
}

void
Logger::openJsonSink(const std::string &path)
{
    std::lock_guard<std::mutex> lock(impl->mutex);
    impl->jsonOut.close();
    impl->jsonOut.clear();
    impl->jsonOut.open(path, std::ios::app);
    if (!impl->jsonOut) {
        impl->jsonOpen = false;
        fatal("cannot open log sink '%s' for writing", path.c_str());
    }
    impl->jsonOpen = true;
}

void
Logger::closeJsonSink()
{
    std::lock_guard<std::mutex> lock(impl->mutex);
    impl->jsonOut.close();
    impl->jsonOpen = false;
}

bool
Logger::jsonSinkOpen() const
{
    std::lock_guard<std::mutex> lock(impl->mutex);
    return impl->jsonOpen;
}

void
Logger::captureText(std::ostream *sink)
{
    std::lock_guard<std::mutex> lock(impl->mutex);
    impl->capture = sink;
}

void
Logger::log(LogLevel level, const std::string &message)
{
    if (!enabled(level) || level == LogLevel::Off)
        return;

    // Assemble the full record outside the lock; emit it with one
    // stream operation under the lock so lines never interleave.
    std::string line = logLevelName(level);
    line += ": ";
    line += message;
    if (!tlsContext.empty()) {
        line += " [";
        for (size_t i = 0; i < tlsContext.size(); ++i) {
            if (i)
                line += ' ';
            line += tlsContext[i].first;
            line += '=';
            line += tlsContext[i].second;
        }
        line += ']';
    }
    line += '\n';

    std::string json;
    {
        std::ostringstream record;
        record.precision(6);
        record << std::fixed;
        record << "{\"ts\":" << impl->seconds()
               << ",\"level\":" << jsonQuote(logLevelName(level))
               << ",\"thread\":" << logThreadId()
               << ",\"msg\":" << jsonQuote(message);
        for (const auto &[key, value] : tlsContext)
            record << ',' << jsonQuote(key) << ':' << jsonQuote(value);
        record << "}\n";
        json = record.str();
    }

    std::lock_guard<std::mutex> lock(impl->mutex);
    if (impl->progressPending) {
        if (impl->capture)
            *impl->capture << '\n';
        else
            std::fputs("\r\033[K", stderr);
        impl->progressPending = false;
    }
    if (impl->capture) {
        *impl->capture << line;
        impl->capture->flush();
    } else {
        std::FILE *out =
            level >= LogLevel::Warn ? stderr : stdout;
        std::fputs(line.c_str(), out);
        if (out == stderr)
            std::fflush(out);
    }
    if (impl->jsonOpen) {
        impl->jsonOut << json;
        impl->jsonOut.flush();
    }
}

void
Logger::logf(LogLevel level, const char *fmt, ...)
{
    if (!enabled(level))
        return;
    va_list args;
    va_start(args, fmt);
    vlogf(level, fmt, args);
    va_end(args);
}

void
Logger::vlogf(LogLevel level, const char *fmt, va_list args)
{
    if (!enabled(level))
        return;
    log(level, vformat(fmt, args));
}

void
Logger::progress(const std::string &line)
{
    std::lock_guard<std::mutex> lock(impl->mutex);
    if (impl->capture) {
        *impl->capture << '\r' << line;
        impl->capture->flush();
    } else {
        std::fprintf(stderr, "\r\033[K%s", line.c_str());
        std::fflush(stderr);
    }
    impl->progressPending = true;
}

void
Logger::clearProgress()
{
    std::lock_guard<std::mutex> lock(impl->mutex);
    if (!impl->progressPending)
        return;
    if (impl->capture)
        *impl->capture << '\n';
    else {
        std::fputs("\r\033[K", stderr);
        std::fflush(stderr);
    }
    impl->progressPending = false;
}

// ---------------------------------------------------------------------
// LogContext
// ---------------------------------------------------------------------

LogContext::LogContext(
    std::vector<std::pair<std::string, std::string>> fields)
    : count(fields.size())
{
    for (auto &field : fields)
        tlsContext.push_back(std::move(field));
}

LogContext::~LogContext()
{
    tlsContext.resize(tlsContext.size() - count);
}

// ---------------------------------------------------------------------
// Free helpers
// ---------------------------------------------------------------------

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string message = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n", message.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string message = vformat(fmt, args);
    va_end(args);
    throw FatalError(message);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    Logger::global().vlogf(LogLevel::Warn, fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    Logger::global().vlogf(LogLevel::Info, fmt, args);
    va_end(args);
}

void
logTrace(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    Logger::global().vlogf(LogLevel::Trace, fmt, args);
    va_end(args);
}

void
logDebug(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    Logger::global().vlogf(LogLevel::Debug, fmt, args);
    va_end(args);
}

void
logError(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    Logger::global().vlogf(LogLevel::Error, fmt, args);
    va_end(args);
}

std::string
formatMatrixProgress(size_t done, size_t total, double elapsed_seconds)
{
    const double pct =
        total ? 100.0 * double(done) / double(total) : 100.0;
    // Before the first completed cell (or before the clock advances)
    // there is no rate to extrapolate from; never divide by it.
    if (done == 0 || !(elapsed_seconds > 0.0))
        return strFormat("%zu/%zu cells (%.0f%%), -- cells/s, ETA --",
                         done, total, pct);
    const double rate = double(done) / elapsed_seconds;
    const size_t remaining = total > done ? total - done : 0;
    const double eta = double(remaining) / rate;
    // An "ETA" in the 10^5+ second range is noise, not a forecast.
    constexpr double kMaxEtaSeconds = 99.0 * 3600.0;
    if (eta > kMaxEtaSeconds)
        return strFormat("%zu/%zu cells (%.0f%%), %.1f cells/s, "
                         "ETA >99h",
                         done, total, pct, rate);
    return strFormat("%zu/%zu cells (%.0f%%), %.1f cells/s, ETA %.1fs",
                     done, total, pct, rate, eta);
}

} // namespace helios
