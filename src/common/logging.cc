#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace helios
{

namespace
{

std::string
vformat(const char *fmt, va_list args)
{
    va_list copy;
    va_copy(copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buffer(needed + 1);
    std::vsnprintf(buffer.data(), buffer.size(), fmt, args);
    return std::string(buffer.data(), needed);
}

} // namespace

std::string
strFormat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string result = vformat(fmt, args);
    va_end(args);
    return result;
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string message = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n", message.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string message = vformat(fmt, args);
    va_end(args);
    throw FatalError(message);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string message = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", message.c_str());
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string message = vformat(fmt, args);
    va_end(args);
    std::fprintf(stdout, "info: %s\n", message.c_str());
}

} // namespace helios
