/**
 * @file
 * Fixed-capacity circular FIFO used for the pipeline's per-cycle
 * queues (ROB, AQ, LQ, SQ, rename skid buffer, decode pipe).
 *
 * The timing model's structural limits are all hard caps from
 * CoreParams, so a pre-sized ring never reallocates: push/pop are two
 * or three arithmetic ops on a contiguous array, where std::deque
 * pays map-of-blocks indirection and allocates/frees blocks as the
 * queue breathes every cycle. Indexing is logical (0 == front), so
 * range-for and operator[] walk front-to-back exactly like the deques
 * they replace.
 */

#ifndef COMMON_RING_HH
#define COMMON_RING_HH

#include <cstddef>
#include <vector>

#include "common/logging.hh"

namespace helios
{

template <typename T>
class RingBuffer
{
  public:
    explicit RingBuffer(size_t capacity) : slots(capacity ? capacity : 1)
    {
    }

    size_t size() const { return count; }
    size_t capacity() const { return slots.size(); }
    bool empty() const { return count == 0; }
    bool full() const { return count == slots.size(); }

    T &front() { return slots[head]; }
    const T &front() const { return slots[head]; }
    T &back() { return slots[physical(count - 1)]; }
    const T &back() const { return slots[physical(count - 1)]; }

    T &operator[](size_t i) { return slots[physical(i)]; }
    const T &operator[](size_t i) const { return slots[physical(i)]; }

    void
    push_back(const T &value)
    {
        emplace_back() = value;
    }

    /**
     * Append by handing back the tail slot's existing object instead
     * of constructing a fresh one, so a slot that owns heap storage
     * (e.g. a vector) keeps its capacity warm across reuse. The
     * caller must reset any state it cares about.
     */
    T &
    emplace_back()
    {
        helios_assert(count < slots.size(), "ring buffer overflow");
        return slots[physical(count++)];
    }

    void
    pop_front()
    {
        helios_assert(count > 0, "pop_front on empty ring");
        head = head + 1 == slots.size() ? 0 : head + 1;
        --count;
    }

    void
    pop_back()
    {
        helios_assert(count > 0, "pop_back on empty ring");
        --count;
    }

    void
    clear()
    {
        head = 0;
        count = 0;
    }

    /** Logical-index iterator (0 == front), enough for range-for. */
    template <typename Ring, typename Ref>
    class Iterator
    {
      public:
        Iterator(Ring *ring, size_t index) : ring(ring), index(index) {}

        Ref operator*() const { return (*ring)[index]; }
        Iterator &operator++() { ++index; return *this; }
        bool operator==(const Iterator &o) const
        {
            return index == o.index;
        }
        bool operator!=(const Iterator &o) const
        {
            return index != o.index;
        }

      private:
        Ring *ring;
        size_t index;
    };

    using iterator = Iterator<RingBuffer, T &>;
    using const_iterator = Iterator<const RingBuffer, const T &>;

    iterator begin() { return {this, 0}; }
    iterator end() { return {this, count}; }
    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, count}; }

  private:
    size_t
    physical(size_t logical) const
    {
        size_t p = head + logical;
        if (p >= slots.size())
            p -= slots.size();
        return p;
    }

    std::vector<T> slots;
    size_t head = 0;
    size_t count = 0;
};

} // namespace helios

#endif // COMMON_RING_HH
