/**
 * @file
 * Bit-manipulation helpers shared by the ISA, predictor and cache code.
 */

#ifndef COMMON_BITS_HH
#define COMMON_BITS_HH

#include <cstdint>
#include <cstddef>

namespace helios
{

/** Extract bits [hi:lo] (inclusive) of a 64-bit value. */
constexpr uint64_t
bits(uint64_t value, unsigned hi, unsigned lo)
{
    return (value >> lo) & ((hi - lo == 63) ? ~0ULL
                                            : ((1ULL << (hi - lo + 1)) - 1));
}

/** Extract a single bit of a 64-bit value. */
constexpr uint64_t
bit(uint64_t value, unsigned pos)
{
    return (value >> pos) & 1ULL;
}

/** Sign-extend the low @a width bits of @a value to 64 bits. */
constexpr int64_t
sextBits(uint64_t value, unsigned width)
{
    const unsigned shift = 64 - width;
    return static_cast<int64_t>(value << shift) >> shift;
}

/** Build a mask with bits [hi:lo] set. */
constexpr uint64_t
mask(unsigned hi, unsigned lo)
{
    return bits(~0ULL, hi - lo, 0) << lo;
}

/** FNV-1a over a byte range (program images, source text). */
inline uint64_t
fnv1a(const void *data, size_t len, uint64_t hash = 1469598103934665603ULL)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < len; ++i) {
        hash ^= bytes[i];
        hash *= 1099511628211ULL;
    }
    return hash;
}

/** True if @a value is a power of two (zero excluded). */
constexpr bool
isPowerOf2(uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Round @a value down to a multiple of @a align (power of two). */
constexpr uint64_t
alignDown(uint64_t value, uint64_t align)
{
    return value & ~(align - 1);
}

/** Round @a value up to a multiple of @a align (power of two). */
constexpr uint64_t
alignUp(uint64_t value, uint64_t align)
{
    return (value + align - 1) & ~(align - 1);
}

/** Integer log2 of a power of two. */
constexpr unsigned
floorLog2(uint64_t value)
{
    unsigned result = 0;
    while (value >>= 1)
        ++result;
    return result;
}

} // namespace helios

#endif // COMMON_BITS_HH
