/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The simulator must be bit-for-bit reproducible across runs and
 * platforms, so all randomness (workload data-set generation, tests)
 * goes through this xorshift128+ generator with explicit seeding.
 */

#ifndef COMMON_RANDOM_HH
#define COMMON_RANDOM_HH

#include <cstdint>

namespace helios
{

/** xorshift128+ generator; fast, deterministic and seedable. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 seeding to avoid poor low-entropy seeds.
        uint64_t z = seed;
        state[0] = splitMix(z);
        state[1] = splitMix(z);
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t x = state[0];
        const uint64_t y = state[1];
        state[0] = y;
        x ^= x << 23;
        state[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
        return state[1] + y;
    }

    /** Uniform value in [0, bound). @a bound must be non-zero. */
    uint64_t
    below(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(below(hi - lo + 1));
    }

  private:
    uint64_t
    splitMix(uint64_t &z)
    {
        z += 0x9e3779b97f4a7c15ULL;
        uint64_t r = z;
        r = (r ^ (r >> 30)) * 0xbf58476d1ce4e5b9ULL;
        r = (r ^ (r >> 27)) * 0x94d049bb133111ebULL;
        return r ^ (r >> 31);
    }

    uint64_t state[2];
};

} // namespace helios

#endif // COMMON_RANDOM_HH
