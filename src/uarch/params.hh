/**
 * @file
 * Core configuration (Table II equivalent) and fusion modes.
 */

#ifndef UARCH_PARAMS_HH
#define UARCH_PARAMS_HH

#include <cstdint>
#include <iosfwd>
#include <string>

namespace helios
{

class LifecycleTracer;

/**
 * The five evaluated configurations (Section V-A) plus the baseline.
 */
enum class FusionMode : uint8_t
{
    None,          ///< no fusion at all (normalization baseline)
    RiscvFusion,   ///< non-memory Table I idioms, consecutive only
    CsfSbr,        ///< consecutive contiguous same-base memory pairs
    RiscvFusionPP, ///< all Table I idioms, consecutive only
    Helios,        ///< RiscvFusionPP + predictive NCSF/NCTF/DBR
    Oracle,        ///< all eligible memory pairs + non-memory idioms
};

const char *fusionModeName(FusionMode mode);
FusionMode fusionModeFromName(const std::string &name);

/** Fusion predictor organization (Section IV-A2 offers alternatives). */
enum class FpKind : uint8_t
{
    Tournament, ///< the paper's local+global+selector design
    Tage,       ///< TAGE-organized alternative the paper points at
};

/**
 * Machine parameters, modeled after an Intel Icelake-class core with a
 * widened 8-wide front end so that the Allocation Queue fills
 * (Section V-A).
 */
struct CoreParams
{
    // Widths.
    unsigned fetchWidth = 8;
    unsigned decodeWidth = 8;
    unsigned renameWidth = 5;
    unsigned dispatchWidth = 5;
    unsigned commitWidth = 8;

    // Structure sizes (bit-count accounting in Section IV matches
    // AQ=140, IQ=160, LQ=128, ROB=352).
    unsigned aqSize = 140;
    unsigned robSize = 352;
    unsigned iqSize = 160;
    unsigned lqSize = 128;
    unsigned sqSize = 72;
    /** Effectively unconstrained, as in the paper's model: the window
     *  is bounded by ROB/IQ/LQ/SQ, which is what fusion relieves. */
    unsigned numPhysRegs = 1024;

    // Front end.
    unsigned frontendDepth = 4;       ///< decode pipe stages
    unsigned mispredictPenalty = 14;  ///< redirect-to-decode bubbles

    // Issue ports.
    unsigned aluPorts = 4;
    unsigned mulPorts = 1;
    unsigned divPorts = 1;
    unsigned loadPorts = 2;
    unsigned storePorts = 2;
    unsigned branchPorts = 2;

    // Latencies (cycles).
    unsigned aluLatency = 1;
    unsigned mulLatency = 3;
    unsigned divLatency = 20;
    unsigned l1Latency = 5;
    unsigned l2Latency = 14;
    unsigned l3Latency = 40;
    unsigned memLatency = 200;
    unsigned forwardLatency = 6;      ///< store-to-load forwarding
    unsigned lineCrossPenalty = 1;    ///< Section II-B

    // Caches.
    unsigned l1iBytes = 32 * 1024, l1iWays = 8;
    unsigned l1dBytes = 48 * 1024, l1dWays = 12;
    unsigned l2Bytes = 512 * 1024, l2Ways = 8;
    unsigned l3Bytes = 2 * 1024 * 1024, l3Ways = 16;
    unsigned lineBytes = 64;

    // Fusion.
    FusionMode fusion = FusionMode::None;
    unsigned fusionRegionBytes = 64;  ///< cache access granularity
    unsigned maxFusionDistance = 64;  ///< µ-ops (UCH window)
    unsigned ncsfNestDepth = 2;       ///< concurrent pending NCSF'd µ-ops
    unsigned fpConfidenceThreshold = 3;
    FpKind fpKind = FpKind::Tournament;

    /** The paper omits different-base-register store pairs (they are
     *  0.54% of fused stores and would need a 4th source register);
     *  this knob enables them so the ablation can test that claim. */
    bool fuseDbrStorePairs = false;

    // Run control.
    uint64_t maxInstructions = UINT64_MAX;
    uint64_t maxCycles = UINT64_MAX;

    /** Attach a PipelineAuditor to harness-level runs (runOne and the
     *  differential harness honor this). Requires the HELIOS_AUDIT
     *  build option; a fatal() error when the hooks are compiled out. */
    bool audit = false;

    /** Optional pipeview-style event trace: one line per committed
     *  µ-op plus fusion/flush events (nullptr: disabled). */
    std::ostream *traceOut = nullptr;

    /** Optional µ-op lifecycle tracer (src/telemetry): records every
     *  committed/squashed µ-op's stage timestamps plus fusion
     *  annotations for Konata / Chrome-trace export. Non-owning;
     *  nullptr disables tracing (the hot path then pays one
     *  predictable branch per commit/squash). */
    LifecycleTracer *tracer = nullptr;

    /** Sample telemetry histograms into stats(): per-cycle ROB/IQ/
     *  LQ/SQ occupancy, fusion-pair distance at commit, and predictor
     *  component agreement at fuse decisions. Off by default so
     *  figure-scale sweeps pay nothing. */
    bool sampleHistograms = false;

    /** Attach a FusionProfiler (src/telemetry/profiler.*): per-static-
     *  PC fusion-site counters, missed-opportunity attribution via a
     *  commit-time oracle pair-finder, and windowed time-series
     *  samples. Off by default; a profiled run is bit-identical to an
     *  unprofiled one (tier-1 checked). */
    bool profile = false;

    /** Time-series sampling interval in cycles for the profiler
     *  (0: no windowed samples, per-site aggregates only). */
    uint64_t profileWindowCycles = 0;

    /** Recycle µ-op pool slots (the production fast path). The false
     *  setting is a debug fallback that gives every fetched µ-op a
     *  pristine, never-reused slot, for bisecting suspected recycling
     *  bugs: both settings must produce bit-identical runs
     *  (tests/test_perf_structures.cc). */
    bool poolRecycling = true;

    /** The paper's configuration with a given fusion mode. */
    static CoreParams
    icelake(FusionMode mode)
    {
        CoreParams params;
        params.fusion = mode;
        return params;
    }
};

/**
 * Canonical FNV-1a digest of a configuration: every field that can
 * move a simulated number — widths, structure sizes, ports,
 * latencies, cache geometry, and the whole fusion design point —
 * folded over a stable `name=value;` text form, so the digest is
 * independent of struct layout, padding and compiler.
 *
 * Deliberately excluded: pure observers (audit, tracing, histogram
 * sampling, profiling, pool-recycling debug mode), which are
 * tier-1-guaranteed not to change any result, and the run-control
 * budget (maxInstructions/maxCycles), which the run ledger keys
 * separately. Two runs with equal (program hash, config hash, budget)
 * are bit-identical replays of each other.
 */
uint64_t configHash(const CoreParams &params);

} // namespace helios

#endif // UARCH_PARAMS_HH
