/**
 * @file
 * Store-set memory dependence predictor (Chrysos & Emer), as listed in
 * the paper's Table II. Loads that previously violated ordering with a
 * store are placed in the same store set and made to wait for it.
 */

#ifndef UARCH_STORESET_HH
#define UARCH_STORESET_HH

#include <cstdint>
#include <vector>

namespace helios
{

class StoreSets
{
  public:
    static constexpr unsigned ssitEntries = 2048;
    static constexpr unsigned lfstEntries = 128;
    static constexpr uint64_t invalidSeq = ~0ULL;

    StoreSets();

    /**
     * A load is being renamed: return the sequence number of the store
     * it should wait for (invalidSeq when independent).
     */
    uint64_t loadDependence(uint64_t load_pc) const;

    /**
     * A store is being renamed: record it as its set's last store.
     * @return the previous store of the set (for store-store
     *         chaining: stores in a set execute in order), or
     *         invalidSeq.
     */
    uint64_t storeRenamed(uint64_t store_pc, uint64_t store_seq);

    /** A store left the pipeline: clear its LFST entry. */
    void storeCompleted(uint64_t store_pc, uint64_t store_seq);

    /** A memory-order violation was detected: merge the two sets. */
    void trainViolation(uint64_t load_pc, uint64_t store_pc);

    /** Squash recovery: drop LFST entries younger than @a seq. */
    void squash(uint64_t min_squashed_seq);

    /**
     * Periodic SSIT invalidation (Chrysos & Emer): without aging, a
     * single stale violation serializes every future instance of a
     * hot load PC. Call every ~100K committed µ-ops.
     */
    void age();

  private:
    unsigned ssitIndex(uint64_t pc) const;

    std::vector<int32_t> ssit;   // pc -> store set id (-1 invalid)
    std::vector<uint64_t> lfst;  // set id -> last store seq
    uint32_t nextSetId = 0;
};

} // namespace helios

#endif // UARCH_STORESET_HH
