#include "uarch/auditor.hh"

#include <algorithm>

#include "common/logging.hh"
#include "fusion/idiom.hh"

namespace helios
{

namespace
{

constexpr uint64_t invalidSeq = ~0ULL;

bool
overlap(uint64_t a_begin, uint64_t a_end, uint64_t b_begin,
        uint64_t b_end)
{
    return a_begin < b_end && b_begin < a_end;
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (uint8_t(c) < 0x20)
                out += strFormat("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

/** Source registers the tail nucleus of a memory pair reads. */
void
tailSources(const Instruction &tail, unsigned sources[2], int &count)
{
    count = 0;
    if (tail.readsRs1())
        sources[count++] = tail.rs1;
    if (tail.isStore() && tail.readsRs2())
        sources[count++] = tail.rs2;
}

} // namespace

std::string
AuditViolation::toJson() const
{
    return strFormat("{\"invariant\":\"%s\",\"seq\":%llu,"
                     "\"cycle\":%llu,\"detail\":\"%s\"}",
                     jsonEscape(invariant).c_str(),
                     static_cast<unsigned long long>(seq),
                     static_cast<unsigned long long>(cycle),
                     jsonEscape(detail).c_str());
}

PipelineAuditor::PipelineAuditor(const CoreParams &p) : params(p) {}

PipelineAuditor::Rec *
PipelineAuditor::findRec(uint64_t seq)
{
    auto it = recs.find(seq);
    return it == recs.end() ? nullptr : &it->second;
}

void
PipelineAuditor::report(const char *invariant, uint64_t seq,
                        uint64_t cycle, std::string detail)
{
    // Persisting violations (e.g. an oversized queue) would flood the
    // report: record the first few instances fully, count the rest.
    const uint64_t count = ++violationCounts[invariant];
    if (count <= 4 || theViolations.size() < maxRecorded)
        theViolations.push_back(
            {invariant, seq, cycle, std::move(detail)});
}

// ---------------------------------------------------------------------
// Event hooks
// ---------------------------------------------------------------------

void
PipelineAuditor::onFetch(const Uop &uop, uint64_t cycle)
{
    ++checks;
    ++fetchEvents;
    anyFetched = true;
    minSeq = std::min(minSeq, uop.seq);
    maxSeq = std::max(maxSeq, uop.seq);

    auto [it, fresh] = recs.try_emplace(uop.seq);
    if (!fresh) {
        report(it->second.state == SeqState::Committed
                   ? "fetch.refetch_committed"
                   : "fetch.duplicate",
               uop.seq, cycle,
               strFormat("seq %llu fetched while already tracked",
                         static_cast<unsigned long long>(uop.seq)));
        return;
    }
    it->second.dyn = uop.dyn;
    it->second.state = SeqState::InFlight;
}

void
PipelineAuditor::onFusePair(const Uop &head, const DynInst &tail,
                            FusionKind kind, bool absorbed,
                            uint64_t cycle)
{
    ++checks;
    const uint64_t head_seq = head.seq;
    const uint64_t tail_seq = tail.seq;
    const Instruction &hi = head.dyn.inst;
    const Instruction &ti = tail.inst;

    if (tail_seq <= head_seq) {
        report("pair.order", head_seq, cycle,
               strFormat("tail seq %llu not younger than head %llu",
                         static_cast<unsigned long long>(tail_seq),
                         static_cast<unsigned long long>(head_seq)));
        return;
    }
    const uint64_t distance = tail_seq - head_seq;

    switch (kind) {
      case FusionKind::CsfMem:
      case FusionKind::CsfOther: {
        if (distance != 1)
            report("pair.csf_distance", head_seq, cycle,
                   strFormat("consecutive pair with distance %llu",
                             static_cast<unsigned long long>(distance)));
        const Idiom idiom = matchIdiom(hi, ti);
        if (idiom == Idiom::None)
            report("pair.illegal_idiom", head_seq, cycle,
                   "consecutive pair matches no Table I idiom");
        else if (isMemoryIdiom(idiom) != (kind == FusionKind::CsfMem))
            report("pair.idiom_kind", head_seq, cycle,
                   "idiom class does not match fusion kind");
        break;
      }
      case FusionKind::NcsfMem: {
        const bool both_loads = hi.isLoad() && ti.isLoad();
        const bool both_stores = hi.isStore() && ti.isStore();
        if (!both_loads && !both_stores)
            report("pair.mixed_kind", head_seq, cycle,
                   "memory pair mixes a load and a store");
        if (distance > params.maxFusionDistance)
            report("pair.distance", head_seq, cycle,
                   strFormat("distance %llu exceeds limit %u",
                             static_cast<unsigned long long>(distance),
                             params.maxFusionDistance));
        if (both_stores && !params.fuseDbrStorePairs &&
            hi.baseReg() != ti.baseReg())
            report("pair.store_dbr", head_seq, cycle,
                   "different-base store pair without DBR support");
        if (hi.writesReg() && hi.rd == ti.baseReg())
            report("pair.dependent_base", head_seq, cycle,
                   "tail base register produced by the head nucleus");
        break;
      }
      default:
        report("pair.kind", head_seq, cycle, "fused with kind None");
        break;
    }

    auto [it, fresh] = fusedPairs.try_emplace(
        head_seq, PairInfo{tail_seq, kind, head.fpInitiated});
    if (!fresh)
        report("pair.double_fuse", head_seq, cycle,
               "head fused while already paired");
    if (Rec *head_rec = findRec(head_seq))
        head_rec->partOfPair = true;

    if (absorbed) {
        onTailAbsorbed(tail_seq, head_seq, cycle);
    } else if (Rec *rec = findRec(tail_seq);
               rec && rec->state != SeqState::InFlight) {
        report("pair.tail_state", tail_seq, cycle,
               "pending tail is not in flight");
    }
}

void
PipelineAuditor::onTailAbsorbed(uint64_t tail_seq, uint64_t head_seq,
                                uint64_t cycle)
{
    ++checks;
    auto pair = fusedPairs.find(head_seq);
    if (pair == fusedPairs.end() || pair->second.tailSeq != tail_seq) {
        report("pair.unpaired_absorb", tail_seq, cycle,
               strFormat("tail absorbed into head %llu without a "
                         "matching pair record",
                         static_cast<unsigned long long>(head_seq)));
    }
    Rec *rec = findRec(tail_seq);
    if (!rec) {
        report("pair.unknown_tail", tail_seq, cycle,
               "absorbed tail was never fetched");
        return;
    }
    if (rec->state != SeqState::InFlight) {
        report(rec->state == SeqState::Committed
                   ? "pair.absorb_committed"
                   : "pair.double_absorb",
               tail_seq, cycle, "absorbed tail not in flight");
        return;
    }
    rec->state = SeqState::Absorbed;
    rec->partOfPair = true;
}

void
PipelineAuditor::onUnfuse(const Uop &head, uint64_t tail_seq,
                          uint64_t cycle)
{
    ++checks;
    auto pair = fusedPairs.find(head.seq);
    if (pair == fusedPairs.end()) {
        report("pair.unfuse_unpaired", head.seq, cycle,
               "unfused a head with no pair record");
        return;
    }
    if (pair->second.tailSeq != tail_seq)
        report("pair.unfuse_tail", head.seq, cycle,
               strFormat("unfuse names tail %llu, pair records %llu",
                         static_cast<unsigned long long>(tail_seq),
                         static_cast<unsigned long long>(
                             pair->second.tailSeq)));
    fusedPairs.erase(pair);
    if (Rec *head_rec = findRec(head.seq))
        head_rec->partOfPair = false;

    // The tail must still be a live µ-op of its own: an absorbed tail
    // has no marker left to re-dispatch, so unfusing it would drop an
    // architectural instruction.
    Rec *rec = findRec(tail_seq);
    if (rec)
        rec->partOfPair = false;
    if (!rec || rec->state != SeqState::InFlight)
        report("pair.unfuse_absorbed", tail_seq, cycle,
               "unfused tail is not in flight");
}

void
PipelineAuditor::onIssue(const Uop &uop, uint64_t cycle)
{
    ++checks;
    Rec *rec = findRec(uop.seq);
    if (!rec || rec->state != SeqState::InFlight) {
        report("issue.unknown", uop.seq, cycle,
               "issued µ-op is not tracked as in flight");
        return;
    }
    rec->issued = true;
    rec->issueCycle = cycle;
    rec->doneCycle = uop.doneCycle;

    // A catalyst memory access executing only after a fused pair
    // committed is a memory-order break the pipeline's LQ/SQ snoops
    // can no longer see (the pair left the queues at commit): an old
    // store against a committed load pair's tail read, or an old load
    // against a committed store pair's tail bytes about to drain.
    if (uop.isMem()) {
        const auto &pairs =
            uop.isStore() ? committedLoadPairs : committedStorePairs;
        for (const CommittedPair &pair : pairs) {
            if (uop.seq <= pair.headSeq || uop.seq >= pair.tailSeq)
                continue;
            uint64_t begin = uop.dyn.effAddr;
            uint64_t end = begin + uop.dyn.memSize();
            if (uop.hasTail && uop.tailDyn.inst.isMem()) {
                begin = std::min(begin, uop.tailDyn.effAddr);
                end = std::max(end, uop.tailDyn.effAddr +
                                        uop.tailDyn.memSize());
            }
            if (overlap(begin, end, pair.tailBegin, pair.tailEnd))
                report(uop.isStore() ? "pair.store_after_commit"
                                     : "pair.load_after_commit",
                       uop.seq, cycle,
                       strFormat("%s issued after fused %s pair "
                                 "%llu+%llu committed over its bytes",
                                 uop.isStore() ? "store" : "load",
                                 uop.isStore() ? "load" : "store",
                                 static_cast<unsigned long long>(
                                     pair.headSeq),
                                 static_cast<unsigned long long>(
                                     pair.tailSeq)));
        }
    }
}

void
PipelineAuditor::checkPairAtCommit(const Uop &uop, const Rec &head_rec,
                                   uint64_t cycle)
{
    if (uop.fusion == FusionKind::CsfOther)
        return; // non-memory idiom: nothing address-shaped to check

    const DynInst &head = uop.dyn;
    const DynInst &tail = uop.tailDyn;

    // Combined access must fit the fusion region (one cache access).
    if (head.inst.isMem() && tail.inst.isMem()) {
        const uint64_t begin = std::min(head.effAddr, tail.effAddr);
        const uint64_t end =
            std::max(head.effAddr + head.memSize(),
                     tail.effAddr + tail.memSize());
        if (end - begin > params.fusionRegionBytes)
            report("pair.region", uop.seq, cycle,
                   strFormat("committed pair spans %llu bytes "
                             "(region is %u)",
                             static_cast<unsigned long long>(end - begin),
                             params.fusionRegionBytes));
    }

    if (uop.fusion != FusionKind::NcsfMem || tail.seq == head.seq + 1)
        return; // catalyst checks only apply to non-consecutive pairs

    unsigned sources[2];
    int num_sources;
    tailSources(tail.inst, sources, num_sources);
    bool source_open[2] = {true, true};

    // Walk the catalyst window youngest-first through our own mirror;
    // only the last writer of each tail source matters.
    for (uint64_t seq = tail.seq; seq-- > head.seq + 1;) {
        const Rec *rec = findRec(seq);
        if (!rec)
            continue; // squashed and not refetched yet: unobservable
        const Instruction &inst = rec->dyn.inst;

        // Store pairs tolerate no store in their catalyst: the tail
        // store would retire out of order with it.
        if (uop.isStore() && inst.isStore())
            report("pair.store_catalyst", uop.seq, cycle,
                   strFormat("store seq %llu between fused store pair",
                             static_cast<unsigned long long>(seq)));

        // A load pair hoists its tail bytes above every catalyst
        // store: any overlapping store must have executed before the
        // pair read (store-to-load forwarding covers it then).
        if (uop.isLoad() && inst.isStore() && rec->issued) {
            const uint64_t s_begin = rec->dyn.effAddr;
            const uint64_t s_end = s_begin + rec->dyn.memSize();
            if (overlap(s_begin, s_end, tail.effAddr,
                        tail.effAddr + tail.memSize()) &&
                head_rec.issued &&
                rec->issueCycle >= head_rec.issueCycle)
                report("pair.store_order", uop.seq, cycle,
                       strFormat("catalyst store %llu executed after "
                                 "the fused load pair read its bytes",
                                 static_cast<unsigned long long>(seq)));
        }

        if (!inst.writesReg())
            continue;
        for (int i = 0; i < num_sources; ++i) {
            if (!source_open[i] || inst.rd != sources[i])
                continue;
            source_open[i] = false; // last writer found
            if (rec->partOfPair)
                continue; // the head or absorbed tail of a fused pair
                          // delivers its registers at per-half
                          // latencies the mirror cannot see
            if (inst.isLoad()) {
                // Late-RaW rule: a load-produced tail source costs the
                // pair its early issue; the pipeline unfuses these.
                report("pair.late_raw", uop.seq, cycle,
                       strFormat("tail source x%u produced by catalyst "
                                 "load %llu",
                                 sources[i],
                                 static_cast<unsigned long long>(seq)));
            } else if (head_rec.issued &&
                       (!rec->issued ||
                        rec->doneCycle > head_rec.issueCycle)) {
                report("pair.raw_order", uop.seq, cycle,
                       strFormat("pair issued before catalyst producer "
                                 "%llu of x%u completed",
                                 static_cast<unsigned long long>(seq),
                                 sources[i]));
            }
        }
    }
}

void
PipelineAuditor::onCommit(const Uop &uop, uint64_t cycle)
{
    ++checks;
    if (haveCommitted && uop.seq <= lastCommitSeq)
        report("commit.order", uop.seq, cycle,
               strFormat("commit seq %llu after %llu",
                         static_cast<unsigned long long>(uop.seq),
                         static_cast<unsigned long long>(lastCommitSeq)));
    haveCommitted = true;
    lastCommitSeq = uop.seq;

    Rec *rec = findRec(uop.seq);
    if (!rec) {
        report("commit.unknown", uop.seq, cycle,
               "committed µ-op was never fetched");
        return;
    }
    if (rec->state != SeqState::InFlight) {
        report(rec->state == SeqState::Committed ? "commit.twice"
                                                 : "commit.absorbed",
               uop.seq, cycle, "committed µ-op not in flight");
        return;
    }
    rec->state = SeqState::Committed;
    ++committedSeqs;

    if (uop.hasTail) {
        auto pair = fusedPairs.find(uop.seq);
        if (pair == fusedPairs.end())
            report("pair.commit_unpaired", uop.seq, cycle,
                   "fused µ-op committed without a pair record");
        else if (pair->second.tailSeq != uop.tailDyn.seq)
            report("pair.commit_tail", uop.seq, cycle,
                   "committed tail differs from the fused tail");
        if (pair != fusedPairs.end())
            fusedPairs.erase(pair);

        Rec *tail_rec = findRec(uop.tailDyn.seq);
        if (!tail_rec) {
            report("commit.unknown_tail", uop.tailDyn.seq, cycle,
                   "committed tail was never fetched");
        } else if (tail_rec->state != SeqState::Absorbed) {
            report(tail_rec->state == SeqState::Committed
                       ? "commit.tail_twice"
                       : "commit.tail_unabsorbed",
                   uop.tailDyn.seq, cycle,
                   "committed tail nucleus was not absorbed");
        } else {
            tail_rec->state = SeqState::Committed;
            ++committedSeqs;
        }

        checkPairAtCommit(uop, *rec, cycle);

        if (uop.fusion == FusionKind::NcsfMem &&
            uop.tailDyn.seq > uop.seq + 1) {
            auto &pairs = uop.isLoad() ? committedLoadPairs
                                       : committedStorePairs;
            pairs.push_back(
                {uop.seq, uop.tailDyn.seq, uop.tailDyn.effAddr,
                 uop.tailDyn.effAddr + uop.tailDyn.memSize(),
                 rec->issueCycle});
        }
    } else if (fusedPairs.count(uop.seq)) {
        report("pair.commit_unfused", uop.seq, cycle,
               "pair record survives but the head committed unfused");
        fusedPairs.erase(uop.seq);
    }

    // Catalysts of a committed pair all have seq < tailSeq and commit
    // in order: once commit passes the tail, none remain.
    const auto retired = [this](const CommittedPair &pair) {
        return pair.tailSeq <= lastCommitSeq;
    };
    std::erase_if(committedLoadPairs, retired);
    std::erase_if(committedStorePairs, retired);

    if ((committedSeqs & 0xfff) == 0)
        pruneCommitted();
}

void
PipelineAuditor::onSquash(const Uop &uop, uint64_t cycle)
{
    ++checks;
    auto drop = [&](uint64_t seq) {
        auto it = recs.find(seq);
        if (it == recs.end()) {
            report("squash.unknown", seq, cycle,
                   "squashed µ-op is not tracked");
            return;
        }
        if (it->second.state == SeqState::Committed) {
            report("squash.committed", seq, cycle,
                   "squashed an already-committed µ-op");
            return;
        }
        recs.erase(it); // back to unseen; the refetch re-creates it
    };

    drop(uop.seq);
    if (uop.isTailMarker)
        return; // the pair record is keyed by (and dies with) the head
    if (uop.hasTail) {
        // The tail nucleus replays with its head. A pending (predicted)
        // tail still has its own marker in flight, which this squash
        // visits separately; only absorbed tails are dropped here.
        Rec *tail_rec = findRec(uop.tailDyn.seq);
        if (tail_rec && tail_rec->state == SeqState::Absorbed)
            drop(uop.tailDyn.seq);
    }
    fusedPairs.erase(uop.seq);
}

void
PipelineAuditor::onCycleEnd(const AuditView &view)
{
    ++cyclesAudited;
    checks += 6;

    auto check_limit = [&](const char *name, size_t size, size_t limit) {
        if (size > limit)
            report("structure.overflow", 0, view.cycle,
                   strFormat("%s holds %zu entries (limit %zu)", name,
                             size, limit));
    };
    if (view.rob)
        check_limit("ROB", view.rob->size(), params.robSize);
    if (view.aq)
        check_limit("AQ", view.aq->size(), params.aqSize);
    check_limit("IQ", view.iqCount, params.iqSize);
    if (view.lq)
        check_limit("LQ", view.lq->size(), params.lqSize);
    if (view.sq)
        check_limit("SQ", view.sq->size() + view.drainCount,
                    params.sqSize);
    check_limit("PRF", view.allocatedRegs,
                params.numPhysRegs - numArchRegs);

    if (cyclesAudited % scanInterval == 0)
        checkOrderedScan(view);
}

void
PipelineAuditor::checkOrderedScan(const AuditView &view)
{
    auto check_order = [&](const char *name,
                           const RingBuffer<Uop *> *queue) {
        if (!queue)
            return;
        ++checks;
        uint64_t prev = invalidSeq;
        for (const Uop *uop : *queue) {
            if (prev != invalidSeq && uop->seq <= prev) {
                report("structure.order", uop->seq, view.cycle,
                       strFormat("%s entries out of program order "
                                 "(%llu after %llu)",
                                 name,
                                 static_cast<unsigned long long>(
                                     uop->seq),
                                 static_cast<unsigned long long>(prev)));
                return;
            }
            prev = uop->seq;
        }
    };
    check_order("ROB", view.rob);
    check_order("LQ", view.lq);
    check_order("SQ", view.sq);
}

void
PipelineAuditor::pruneCommitted()
{
    if (lastCommitSeq < pruneWindow)
        return;
    const uint64_t floor = lastCommitSeq - pruneWindow;
    std::erase_if(recs, [floor](const auto &entry) {
        return entry.second.state == SeqState::Committed &&
               entry.first < floor;
    });
}

void
PipelineAuditor::finalize(bool drained, uint64_t cycle)
{
    ++checks;
    if (!drained)
        return; // budget abort: in-flight leftovers are legitimate

    for (const auto &[seq, rec] : recs) {
        if (rec.state == SeqState::Committed)
            continue;
        report(rec.state == SeqState::Absorbed ? "leak.absorbed"
                                               : "leak.inflight",
               seq, cycle,
               "µ-op neither committed nor squashed at drain");
    }
    if (!fusedPairs.empty())
        report("leak.pair", fusedPairs.begin()->first, cycle,
               strFormat("%zu pair records survive the drain",
                         fusedPairs.size()));

    // Exactly-once: the feed's sequence numbers are contiguous, so the
    // committed count must cover [minSeq, maxSeq] with no gaps.
    if (anyFetched) {
        const uint64_t expected = maxSeq - minSeq + 1;
        if (committedSeqs != expected)
            report("leak.count", 0, cycle,
                   strFormat("committed %llu of %llu fetched sequence "
                             "numbers",
                             static_cast<unsigned long long>(
                                 committedSeqs),
                             static_cast<unsigned long long>(expected)));
    }
}

std::string
PipelineAuditor::toJson() const
{
    std::string out = strFormat(
        "{\"ok\":%s,\"checks\":%llu,\"uops\":%llu,\"violations\":[",
        ok() ? "true" : "false",
        static_cast<unsigned long long>(checks),
        static_cast<unsigned long long>(fetchEvents));
    for (size_t i = 0; i < theViolations.size(); ++i) {
        if (i)
            out += ',';
        out += theViolations[i].toJson();
    }
    out += "],\"counts\":{";
    bool first = true;
    for (const auto &[name, count] : violationCounts) {
        if (!first)
            out += ',';
        first = false;
        out += strFormat("\"%s\":%llu", jsonEscape(name).c_str(),
                         static_cast<unsigned long long>(count));
    }
    out += "}}";
    return out;
}

} // namespace helios
