/**
 * @file
 * Front-end branch prediction: a TAGE conditional predictor (in the
 * L-TAGE family used by the paper's model), a set-associative BTB for
 * targets, and a return address stack for jalr returns.
 */

#ifndef UARCH_BRANCH_PRED_HH
#define UARCH_BRANCH_PRED_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/counters.hh"
#include "isa/instruction.hh"

namespace helios
{

/** TAGE conditional branch predictor: bimodal base + tagged tables. */
class Tage
{
  public:
    static constexpr unsigned numTables = 8;

    Tage();

    /** Predict the direction of the conditional branch at @a pc. */
    bool predict(uint64_t pc);

    /** Update with the actual outcome (uses the last predict() state,
     *  which is sound in this trace-driven model since prediction and
     *  update happen back-to-back at fetch). */
    void update(uint64_t pc, bool taken);

    /** Push an outcome into the global history. */
    void updateHistory(bool taken);

    /** Low bits of the global history (shared with the fusion
     *  predictor's gshare-like component). */
    uint16_t history() const { return uint16_t(ghist & 0xffff); }

  private:
    struct TaggedEntry
    {
        uint16_t tag = 0;
        SignedSatCounter<3> ctr;
        SatCounter<2> useful;
    };

    static constexpr unsigned baseBits = 13;   // 8K-entry bimodal
    static constexpr unsigned tableBits = 10;  // 1K entries per table
    static constexpr unsigned tagBits = 9;

    unsigned tableIndex(unsigned table, uint64_t pc) const;
    uint16_t tableTag(unsigned table, uint64_t pc) const;

    std::vector<SatCounter<2>> base;
    std::array<std::vector<TaggedEntry>, numTables> tagged;
    std::array<unsigned, numTables> historyLengths;
    uint64_t ghist = 0; // bottom 64 bits of global history
    uint64_t pathHist = 0;

    // State captured by predict() for the subsequent update().
    struct
    {
        int provider = -1; // -1: bimodal
        int altProvider = -1;
        bool providerPred = false;
        bool altPred = false;
        unsigned indices[numTables] = {};
        uint16_t tags[numTables] = {};
    } last;

    uint64_t foldHistory(unsigned length, unsigned bits) const;
};

/** Branch target buffer (4K entries, 4-way). */
class Btb
{
  public:
    Btb();

    /** @return predicted target, or 0 when the entry misses. */
    uint64_t lookup(uint64_t pc) const;
    void update(uint64_t pc, uint64_t target);

  private:
    struct Entry
    {
        bool valid = false;
        uint64_t tag = 0;
        uint64_t target = 0;
        uint64_t lru = 0;
    };

    static constexpr unsigned numSets = 1024;
    static constexpr unsigned numWays = 4;

    std::vector<Entry> entries;
    uint64_t tick = 0;
};

/** Return address stack. */
class ReturnAddressStack
{
  public:
    static constexpr unsigned depth = 32;

    void push(uint64_t addr);
    uint64_t pop();
    bool empty() const { return count == 0; }

  private:
    std::array<uint64_t, depth> stack{};
    unsigned top = 0;
    unsigned count = 0;
};

/**
 * The combined front-end predictor: classifies each control µ-op and
 * reports whether the fetch stream would have been redirected.
 */
class BranchPredictor
{
  public:
    /**
     * Predict the control µ-op at @a pc and compare with the actual
     * outcome from the trace.
     *
     * @param inst decoded control instruction
     * @param taken actual direction (conditional branches)
     * @param target actual next PC
     * @return true when the prediction matches (direction and target)
     */
    bool predictAndCheck(uint64_t pc, const Instruction &inst,
                         bool taken, uint64_t target);

    uint16_t fusionHistory() const { return tage.history(); }

    uint64_t lookups = 0;
    uint64_t mispredicts = 0;

  private:
    Tage tage;
    Btb btb;
    ReturnAddressStack ras;
};

} // namespace helios

#endif // UARCH_BRANCH_PRED_HH
