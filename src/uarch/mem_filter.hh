/**
 * @file
 * Counting membership filter over byte ranges, used to skip the
 * LQ/SQ linear scans when no address overlap is possible.
 *
 * Every executed load/store registers its byte range at 16-byte
 * granule resolution into a small direct-mapped table of counters;
 * removal decrements the same slots, so add/remove must be called
 * with the exact same range. mayOverlap() is conservative: false
 * means *no* registered range can overlap the query (the scan is
 * safely skipped and the simulation outcome is unchanged); true means
 * scan — hash collisions only ever cause harmless extra scans.
 */

#ifndef UARCH_MEM_FILTER_HH
#define UARCH_MEM_FILTER_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace helios
{

class MemRangeFilter
{
  public:
    MemRangeFilter() : counts(tableSize, 0) {}

    void add(uint64_t begin, uint64_t end) { update(begin, end, +1); }

    void
    remove(uint64_t begin, uint64_t end)
    {
        update(begin, end, -1);
    }

    bool
    mayOverlap(uint64_t begin, uint64_t end) const
    {
        if (oversized > 0)
            return begin < end;
        if (begin >= end || occupied == 0)
            return false;
        const uint64_t first = begin >> granuleBits;
        const uint64_t last = (end - 1) >> granuleBits;
        if (last - first >= maxGranules)
            return true;
        for (uint64_t g = first; g <= last; ++g)
            if (counts[slot(g)] != 0)
                return true;
        return false;
    }

    bool empty() const { return occupied == 0 && oversized == 0; }

  private:
    static constexpr unsigned granuleBits = 4; ///< 16-byte granules
    static constexpr unsigned tableBits = 12;
    static constexpr size_t tableSize = size_t(1) << tableBits;
    /** Ranges spanning this many granules (1 KiB — far beyond the
     *  64-byte fusion region) bypass the table entirely. */
    static constexpr uint64_t maxGranules = 64;

    static size_t
    slot(uint64_t granule)
    {
        // Multiply-shift hash: adjacent granules spread across the
        // table instead of clustering in one region.
        return size_t((granule * 0x9E3779B97F4A7C15ULL) >>
                      (64 - tableBits));
    }

    void
    update(uint64_t begin, uint64_t end, int delta)
    {
        if (begin >= end)
            return;
        const uint64_t first = begin >> granuleBits;
        const uint64_t last = (end - 1) >> granuleBits;
        if (last - first >= maxGranules) {
            oversized += delta;
            helios_assert(oversized >= 0, "range filter underflow");
            return;
        }
        for (uint64_t g = first; g <= last; ++g) {
            uint32_t &c = counts[slot(g)];
            helios_assert(delta > 0 || c > 0, "range filter underflow");
            c += uint32_t(delta);
        }
        occupied += delta;
        helios_assert(occupied >= 0, "range filter underflow");
    }

    std::vector<uint32_t> counts;
    int64_t occupied = 0;  ///< tracked ranges (excluding oversized)
    int64_t oversized = 0; ///< ranges too large for the table
};

} // namespace helios

#endif // UARCH_MEM_FILTER_HH
