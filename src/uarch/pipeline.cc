#include "uarch/pipeline.hh"

#include <algorithm>
#include <ostream>

#include "isa/disasm.hh"

#include "common/logging.hh"
#include "fusion/fusion_predictor.hh"
#include "fusion/tage_fp.hh"
#include "telemetry/lifecycle.hh"
#include "telemetry/profiler.hh"
#include "uarch/auditor.hh"

/**
 * Invariant-auditor hook. Compiles to nothing unless the HELIOS_AUDIT
 * CMake option is on, so the hot loop carries zero audit cost in
 * figure-scale builds; with the option on, an unattached auditor costs
 * one predictable branch per event.
 */
#ifdef HELIOS_AUDIT
#define AUDIT_HOOK(call)                                                \
    do {                                                                \
        if (auditor)                                                    \
            auditor->call;                                              \
    } while (0)
#else
#define AUDIT_HOOK(call)                                                \
    do {                                                                \
    } while (0)
#endif

namespace helios
{

namespace
{

constexpr uint64_t invalidSeq = ~0ULL;

/** Pending-address markers in Pipeline::unresolvedKind. */
constexpr uint8_t unresolvedNone = 0;
constexpr uint8_t unresolvedLoad = 1;
constexpr uint8_t unresolvedStore = 2;

/** Smallest power of two >= n. */
uint64_t
nextPow2(uint64_t n)
{
    uint64_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

/**
 * Size of the seq-indexed in-flight ring. Live sequence numbers span
 * at most the machine's µ-op capacity times two (a fused µ-op holds
 * two arch seqs), so doubling that again guarantees no two live seqs
 * ever map to the same slot; inflightInsert asserts it anyway.
 */
uint64_t
inflightRingSize(const CoreParams &p)
{
    const uint64_t uop_capacity =
        uint64_t(p.frontendDepth + 5) * p.fetchWidth + p.aqSize +
        2 * p.dispatchWidth + p.renameWidth + p.robSize + p.sqSize;
    return nextPow2(2 * (2 * uop_capacity) + p.fetchWidth + 64);
}

bool
rangesOverlap(uint64_t a_begin, uint64_t a_end, uint64_t b_begin,
              uint64_t b_end)
{
    return a_begin < b_end && b_begin < a_end;
}

bool
sameMemKind(const Uop *a, const Uop *b)
{
    return (a->isLoad() && b->isLoad()) ||
           (a->isStore() && b->isStore());
}

} // namespace

Pipeline::HotStats
Pipeline::bindHotStats(StatGroup &group)
{
    return {
        group.counter("fetch.uops"),
        group.counter("fetch.blocked_cycles"),
        group.counter("fetch.mispredict_stall_cycles"),
        group.counter("rename.uops"),
        group.counter("rename.stall.aq_empty"),
        group.counter("rename.stall.dispatch_backlog"),
        group.counter("dispatch.uops"),
        group.counter("issue.uops"),
        group.counter("exec.loads"),
        group.counter("exec.stores"),
        group.counter("stlf.forwards"),
        group.counter("stlf.partial"),
        group.counter("exec.line_crossers"),
        group.counter("commit.insts"),
        group.counter("commit.uops"),
        group.counter("commit.loads"),
        group.counter("commit.stores"),
        group.counter("cpi.retiring"),
    };
}

Pipeline::Pipeline(const CoreParams &p, InstructionFeed &f)
    : params(p), feed(f), tracer(p.tracer), hot(bindHotStats(statGroup)),
      caches(params), uopPool(p.poolRecycling),
      decodePipe(p.frontendDepth + 5),
      aq(p.aqSize),
      renamedQueue(2 * p.dispatchWidth + p.renameWidth),
      rob(p.robSize), lqList(p.lqSize), sqList(p.sqSize),
      drainQueue(p.sqSize)
{
    const uint64_t ring = inflightRingSize(p);
    inflightSlots.resize(ring, nullptr);
    unresolvedKind.resize(ring, unresolvedNone);
    inflightMask = ring - 1;
    if (params.fpKind == FpKind::Tage)
        fusionPred = std::make_unique<TageFusionPredictor>();
    else
        fusionPred = std::make_unique<FusionPredictor>();
    rat.resize(numArchRegs);
    for (RatEntry &entry : rat)
        entry.producerSeq = invalidSeq;

    if (params.sampleHistograms) {
        // Occupancy in 32 linear buckets per structure; distance and
        // agreement with layouts matched to their ranges. References
        // into statGroup stay valid for the pipeline's lifetime.
        auto occupancy = [this](const char *name, unsigned size) {
            return &statGroup.histogram(
                name,
                Histogram::linear(size, std::max(1u, size / 32)));
        };
        histRob = occupancy("occupancy.rob", params.robSize);
        histIq = occupancy("occupancy.iq", params.iqSize);
        histLq = occupancy("occupancy.lq", params.lqSize);
        histSq = occupancy("occupancy.sq", params.sqSize);
        histPairDistance = &statGroup.histogram(
            "fusion.pair_distance",
            Histogram::linear(params.maxFusionDistance, 1));
        histFpAgreement = &statGroup.histogram(
            "fusion.fp_agreement", Histogram::linear(2, 1));
    }

    if (params.profile)
        profiler = std::make_unique<FusionProfiler>(params);
}

Pipeline::~Pipeline() = default;

void
Pipeline::attachAuditor(PipelineAuditor *a)
{
#ifdef HELIOS_AUDIT
    auditor = a;
#else
    if (a)
        fatal("pipeline audit hooks were compiled out; rebuild with "
              "-DHELIOS_AUDIT=ON to attach an auditor");
#endif
}

void
Pipeline::inflightInsert(Uop *uop)
{
    Uop *&slot = inflightSlots[uop->seq & inflightMask];
    helios_assert(!slot, "in-flight seq ring collision");
    slot = uop;
    ++inflightCount;
    if (uop->seq > maxFetchedSeq)
        maxFetchedSeq = uop->seq;
}

/** Unlink from the index; the caller decides the record's fate
 *  (release to the pool, or move to the drain queue). */
Uop *
Pipeline::inflightErase(uint64_t seq)
{
    Uop *&slot = inflightSlots[seq & inflightMask];
    helios_assert(slot && slot->seq == seq,
                  "erasing a seq that is not in flight");
    Uop *uop = slot;
    slot = nullptr;
    --inflightCount;
    return uop;
}

/** Insert into the ready list keeping ascending seq order. Newly
 *  ready µ-ops are usually the youngest, so the walk from the tail
 *  terminates almost immediately. */
void
Pipeline::readyInsert(Uop *uop)
{
    uop->inReadyList = true;
    Uop *at = readyTail;
    while (at && at->seq > uop->seq)
        at = at->readyPrev;
    if (!at) {
        uop->readyPrev = nullptr;
        uop->readyNext = readyHead;
        if (readyHead)
            readyHead->readyPrev = uop;
        else
            readyTail = uop;
        readyHead = uop;
    } else {
        uop->readyPrev = at;
        uop->readyNext = at->readyNext;
        if (at->readyNext)
            at->readyNext->readyPrev = uop;
        else
            readyTail = uop;
        at->readyNext = uop;
    }
}

void
Pipeline::readyRemove(Uop *uop)
{
    (uop->readyPrev ? uop->readyPrev->readyNext : readyHead) =
        uop->readyNext;
    (uop->readyNext ? uop->readyNext->readyPrev : readyTail) =
        uop->readyPrev;
    uop->readyPrev = nullptr;
    uop->readyNext = nullptr;
    uop->inReadyList = false;
}

bool
Pipeline::sourceIsReady(uint64_t producer_seq) const
{
    if (producer_seq == invalidSeq)
        return true;
    const Uop *producer = findInflight(producer_seq);
    return !producer || producer->done;
}

// ---------------------------------------------------------------------
// Fetch
// ---------------------------------------------------------------------

void
Pipeline::fetchStage()
{
    if (cycle < fetchBlockedUntil) {
        hot.fetchBlocked++;
        return;
    }
    if (fetchStallSeq != invalidSeq) {
        hot.fetchMispredictStall++;
        return;
    }
    if (decodePipe.size() >= params.frontendDepth + 4)
        return;

    DecodeGroup &group = decodePipe.emplace_back();
    group.uops.clear();
    group.consumed = 0;
    group.fused = false;
    group.readyCycle = cycle + params.frontendDepth;
    for (unsigned i = 0; i < params.fetchWidth; ++i) {
        DynInst dyn;
        if (!replayQueue.empty()) {
            dyn = replayQueue.front();
            replayQueue.pop_front();
        } else if (feedExhausted) {
            break;
        } else if (!feed.next(dyn)) {
            feedExhausted = true;
            break;
        }

        Uop *uop = uopPool.alloc();
        uop->seq = dyn.seq;
        uop->uid = nextUid++;
        uop->dyn = dyn;
        uop->fetchCycle = cycle;
        uop->fetchHistory = bpred.fusionHistory();
        inflightInsert(uop);
        group.uops.push_back(uop);
        AUDIT_HOOK(onFetch(*uop, cycle));
        hot.fetchUops++;
        if (dyn.inst.isStore()) {
            helios_assert(unresolvedKind[dyn.seq & inflightMask] ==
                              unresolvedNone,
                          "unresolved ring collision");
            unresolvedKind[dyn.seq & inflightMask] = unresolvedStore;
        } else if (dyn.inst.isLoad()) {
            helios_assert(unresolvedKind[dyn.seq & inflightMask] ==
                              unresolvedNone,
                          "unresolved ring collision");
            unresolvedKind[dyn.seq & inflightMask] = unresolvedLoad;
        }

        // Instruction cache: charge a stall when a new line misses.
        const uint64_t line = dyn.pc / params.lineBytes;
        if (line != lastFetchLine) {
            lastFetchLine = line;
            const unsigned lat = caches.instAccess(line);
            if (lat > 0) {
                fetchBlockedUntil = cycle + lat;
                break;
            }
        }

        if (dyn.inst.isControl()) {
            const bool correct = bpred.predictAndCheck(
                dyn.pc, dyn.inst, dyn.taken, dyn.nextPc);
            if (!correct) {
                uop->mispredictedBranch = true;
                fetchStallSeq = dyn.seq;
                break;
            }
            // Decoupled front end: correctly predicted taken
            // branches redirect fetch without ending the group (the
            // paper's 8-wide fetch keeps the AQ full even in small
            // loops). The target line is charged by the next µ-op's
            // instruction-cache check.
        }
    }

    if (group.uops.empty())
        decodePipe.pop_back();
}

// ---------------------------------------------------------------------
// Decode: consecutive fusion + AQ insertion + predicted/oracle fusion
// ---------------------------------------------------------------------

void
Pipeline::applyConsecutiveFusion(std::vector<Uop *> &group)
{
    const FusionMode mode = params.fusion;
    if (mode == FusionMode::None)
        return;

    std::vector<Uop *> &out = fuseScratch;
    out.clear();
    size_t i = 0;
    while (i < group.size()) {
        Uop *head = group[i];
        if (i + 1 < group.size()) {
            Uop *tail = group[i + 1];
            const Idiom idiom =
                matchIdiom(head->dyn.inst, tail->dyn.inst);
            bool enabled = false;
            switch (mode) {
              case FusionMode::RiscvFusion:
                enabled = idiom != Idiom::None && !isMemoryIdiom(idiom);
                break;
              case FusionMode::CsfSbr:
                enabled = isMemoryIdiom(idiom);
                break;
              case FusionMode::RiscvFusionPP:
              case FusionMode::Helios:
                enabled = idiom != Idiom::None;
                break;
              case FusionMode::Oracle:
                // Memory pairs are fused (better) in the AQ.
                enabled = idiom != Idiom::None && !isMemoryIdiom(idiom);
                break;
              default:
                break;
            }
            if (enabled && !head->mispredictedBranch) {
                head->fusion = isMemoryIdiom(idiom) ? FusionKind::CsfMem
                                                    : FusionKind::CsfOther;
                head->idiom = idiom;
                head->hasTail = true;
                head->tailDyn = tail->dyn;
                AUDIT_HOOK(onFusePair(*head, tail->dyn, head->fusion,
                                      /*absorbed=*/true, cycle));
                uopPool.release(inflightErase(tail->seq));
                out.push_back(head);
                i += 2;
                continue;
            }
        }
        out.push_back(head);
        ++i;
    }
    group.swap(out);
}

bool
Pipeline::tryPredictedFusion(Uop *tail)
{
    const FpPrediction &pred = tail->fpPred;
    if (!pred.valid)
        return false;
    literalCounter("fusion.fp_attempts")++;
    if (profiler)
        profiler->recordAttempt(tail->dyn.pc);

    if (tail->fusion != FusionKind::None || tail->isTailMarker)
        return false;
    if (pred.distance > tail->seq)
        return false;

    Uop *head = findInflight(tail->seq - pred.distance);
    if (!head || !head->inAq || head->isTailMarker ||
        head->fusion != FusionKind::None || head->hasTail ||
        !sameMemKind(head, tail)) {
        literalCounter("fusion.fp_no_head")++;
        return false;
    }
    // Different-base-register store pairs are not supported by
    // default (Section IV-B: 0.54% of fused stores; they would need a
    // fourth source register).
    if (!params.fuseDbrStorePairs && tail->isStore() &&
        head->dyn.inst.baseReg() != tail->dyn.inst.baseReg()) {
        literalCounter("fusion.fp_store_dbr")++;
        return false;
    }
    // Statically-known dependent loads never fuse (Section II-B).
    if (head->dyn.inst.writesReg() &&
        head->dyn.inst.rd == tail->dyn.inst.baseReg()) {
        literalCounter("fusion.fp_dependent")++;
        return false;
    }

    head->hasTail = true;
    head->tailDyn = tail->dyn;
    head->fusion = FusionKind::NcsfMem;
    head->ncsReady = false;
    head->fpInitiated = true;
    head->fpPred = pred;
    head->pairSeq = tail->seq;

    tail->isTailMarker = true;
    tail->pairSeq = head->seq;

    AUDIT_HOOK(onFusePair(*head, tail->dyn, FusionKind::NcsfMem,
                          /*absorbed=*/false, cycle));
    ++pendingNcsf;
    literalCounter("fusion.fp_applied")++;
    literalCounter("fusion.fp_distance_sum") += pred.distance;
    if (histFpAgreement) {
        // Component agreement at the fuse decision: how many of the
        // tournament components backed the distance we acted on.
        unsigned agreeing = 0;
        if (pred.localValid && pred.localDistance == pred.distance)
            ++agreeing;
        if (pred.globalValid && pred.globalDistance == pred.distance)
            ++agreeing;
        histFpAgreement->addSample(agreeing);
    }
    return true;
}

namespace
{

/**
 * Exact register-dependence walk over a catalyst window: does any
 * source of @a tail (transitively) depend on a destination of
 * @a head, through the catalyst µ-ops supplied by @a visit?
 *
 * This computes the precise outcome of the paper's Deadlock-Tag
 * hardware (Section IV-B2); the real tags are a conservative one-hot
 * approximation that may also yield false positives.
 */
class TaintWalk
{
  public:
    explicit TaintWalk(const Uop *head) : headSeq(head->seq)
    {
        if (head->dyn.inst.writesReg())
            taintReg(head->dyn.inst.rd);
        // The tail nucleus' destination is invisible to the catalyst
        // (WaR deferral), so only the head's register output seeds the
        // register taint; memory (store-set) wakeup edges on the head
        // are tracked through taintedSeqs.
    }

    void
    step(const Uop *u)
    {
        const Instruction &inst = u->dyn.inst;
        bool depends =
            (inst.readsRs1() && isTainted(inst.rs1)) ||
            (inst.readsRs2() && isTainted(inst.rs2));
        if (u->hasTail) {
            const Instruction &t = u->tailDyn.inst;
            depends |= (t.readsRs1() && isTainted(t.rs1)) ||
                       (t.readsRs2() && isTainted(t.rs2));
        }
        // Memory-dependence wakeup edge: a catalyst load made to wait
        // on the head (or on a tainted catalyst store) by the
        // store-set predictor depends on the head for scheduling.
        if (u->waitStoreSeq == headSeq || seqTainted(u->waitStoreSeq))
            depends = true;

        if (depends)
            taintedSeqs.push_back(u->seq);

        if (inst.writesReg()) {
            if (depends)
                taintReg(inst.rd);
            else
                clearReg(inst.rd);
        }
        if (u->hasTail && u->tailDyn.inst.writesReg() &&
            u->fusion != FusionKind::NcsfMem) {
            // CSF pairs produce the tail value in place; a pending
            // NCSF tail destination stays owned by the old producer.
            if (depends)
                taintReg(u->tailDyn.inst.rd);
            else
                clearReg(u->tailDyn.inst.rd);
        }
    }

    bool
    tailDepends(const Instruction &tail) const
    {
        if (tail.readsRs1() && isTainted(tail.rs1))
            return true;
        return tail.readsRs2() && isTainted(tail.rs2);
    }

  private:
    void
    taintReg(unsigned reg)
    {
        if (reg != RegZero)
            tainted |= 1u << reg;
    }

    void clearReg(unsigned reg) { tainted &= ~(1u << reg); }
    bool isTainted(unsigned reg) const { return (tainted >> reg) & 1; }

    bool
    seqTainted(uint64_t seq) const
    {
        for (uint64_t tainted_seq : taintedSeqs)
            if (tainted_seq == seq)
                return true;
        return false;
    }

    uint64_t headSeq;
    uint32_t tainted = 0;
    std::vector<uint64_t> taintedSeqs;
};

/** Byte range and program position of one store nucleus. */
struct StoreNucleus
{
    uint64_t seq = 0;
    uint64_t begin = 0;
    uint64_t end = 0;
};

/**
 * Expand a store µ-op into its store nuclei (one, or two when a store
 * pair fused). Memory-order logic must work per nucleus: the combined
 * [memBegin, memEnd) of a non-consecutive pair covers catalyst bytes
 * neither store writes, and the tail nucleus keeps its own (younger)
 * program position.
 */
int
storeNuclei(const Uop &uop, StoreNucleus out[2])
{
    int count = 0;
    if (uop.dyn.inst.isStore())
        out[count++] = {uop.seq, uop.dyn.effAddr,
                        uop.dyn.effAddr + uop.dyn.memSize()};
    if (uop.hasTail && uop.tailDyn.inst.isStore())
        out[count++] = {uop.tailDyn.seq, uop.tailDyn.effAddr,
                        uop.tailDyn.effAddr + uop.tailDyn.memSize()};
    return count;
}

} // namespace

bool
Pipeline::oracleDependent(const Uop *head, const Uop *tail) const
{
    TaintWalk walk(head);
    for (const Uop *u : aq) {
        if (u->seq <= head->seq || u->seq >= tail->seq ||
            u->isTailMarker)
            continue;
        walk.step(u);
    }
    return walk.tailDepends(tail->dyn.inst);
}

bool
Pipeline::catalystWritesTailSource(const Uop *head,
                                   const Uop *tail) const
{
    // An oracle pair renames at the head, before any catalyst µ-op,
    // so a tail source written inside the catalyst would resolve to
    // the older producer and the pair would issue too early. The
    // predictive scheme handles these pairs through the tail marker's
    // rename-time producer capture; the oracle must decline them.
    const Instruction &t = tail->dyn.inst;
    auto writes_source = [&t](const Instruction &inst) {
        return inst.writesReg() &&
               ((t.readsRs1() && inst.rd == t.rs1) ||
                (t.isStore() && t.readsRs2() && inst.rd == t.rs2));
    };
    for (const Uop *u : aq) {
        if (u->seq <= head->seq || u->seq >= tail->seq ||
            u->isTailMarker)
            continue;
        if (writes_source(u->dyn.inst))
            return true;
        if (u->hasTail && writes_source(u->tailDyn.inst))
            return true;
    }
    return false;
}

bool
Pipeline::tailDependsOnCatalystLoad(const Uop *head,
                                    const Uop *marker) const
{
    uint32_t tainted = 0;
    auto is_tainted = [&tainted](unsigned reg) {
        return reg != RegZero && ((tainted >> reg) & 1);
    };
    for (uint64_t seq = head->seq + 1; seq < marker->seq; ++seq) {
        const Uop *u = findInflight(seq);
        if (!u)
            continue;
        if (u->isTailMarker) {
            // The marker stands for a real load (the tail nucleus of
            // another pair): its destination is load-produced.
            if (u->dyn.inst.writesReg())
                tainted |= 1u << u->dyn.inst.rd;
            continue;
        }
        const Instruction &inst = u->dyn.inst;
        const bool reads_tainted =
            (inst.readsRs1() && is_tainted(inst.rs1)) ||
            (inst.readsRs2() && is_tainted(inst.rs2));
        const bool produces_load = u->isLoad();
        if (inst.writesReg()) {
            if (produces_load || reads_tainted)
                tainted |= 1u << inst.rd;
            else
                tainted &= ~(1u << inst.rd);
        }
        if (u->hasTail && u->tailDyn.inst.writesReg() &&
            u->fusion != FusionKind::NcsfMem) {
            if (produces_load || reads_tainted)
                tainted |= 1u << u->tailDyn.inst.rd;
            else
                tainted &= ~(1u << u->tailDyn.inst.rd);
        }
    }
    const Instruction &tail = marker->dyn.inst;
    if (tail.readsRs1() && is_tainted(tail.rs1))
        return true;
    return tail.readsRs2() && is_tainted(tail.rs2);
}

bool
Pipeline::heliosDependent(const Uop *head, const Uop *marker) const
{
    TaintWalk walk(head);
    // Catalyst µ-ops renamed before the marker live in the ROB or the
    // rename->dispatch buffer; CSF'd tails are folded into their
    // heads, so walking the seq range finds every writer.
    for (uint64_t seq = head->seq + 1; seq < marker->seq; ++seq) {
        const Uop *u = findInflight(seq);
        if (!u || u->isTailMarker)
            continue;
        walk.step(u);
    }
    return walk.tailDepends(marker->dyn.inst);
}

bool
Pipeline::tryOracleFusion(Uop *tail)
{
    if (tail->fusion != FusionKind::None)
        return false;

    for (size_t index = aq.size(); index-- > 0;) {
        Uop *cand = aq[index];
        if (cand == tail)
            continue;
        if (cand->seq >= tail->seq)
            continue;
        const uint64_t distance = tail->seq - cand->seq;
        if (distance > params.maxFusionDistance)
            break;
        if (cand->isTailMarker)
            continue;
        if (cand->dyn.inst.isSerializing())
            break;
        if (!sameMemKind(cand, tail)) {
            // A store between two stores blocks store pairing.
            if (tail->isStore() && cand->isStore())
                break;
            continue;
        }

        const bool usable = cand->fusion == FusionKind::None &&
                            !cand->hasTail;
        bool fused = false;
        if (usable) {
            // Region check with oracle (actual) addresses.
            const uint64_t begin =
                std::min(cand->dyn.effAddr, tail->dyn.effAddr);
            const uint64_t end =
                std::max(cand->dyn.effAddr + cand->dyn.memSize(),
                         tail->dyn.effAddr + tail->dyn.memSize());
            bool ok = end - begin <= params.fusionRegionBytes;
            if (ok && tail->isStore() &&
                cand->dyn.inst.baseReg() != tail->dyn.inst.baseReg())
                ok = false;
            if (ok && oracleDependent(cand, tail))
                ok = false;
            if (ok && catalystWritesTailSource(cand, tail))
                ok = false;
            // Perfect knowledge: never hoist the tail over a catalyst
            // store that writes bytes the pair reads (the predictive
            // scheme learns this through ordering violations).
            if (ok && tail->isLoad()) {
                for (const Uop *u : aq) {
                    if (u->seq <= cand->seq || u->seq >= tail->seq ||
                        u->isTailMarker || !u->isStore())
                        continue;
                    const uint64_t s_begin = u->dyn.effAddr;
                    const uint64_t s_end = s_begin + u->dyn.memSize();
                    if (rangesOverlap(s_begin, s_end, begin, end)) {
                        ok = false;
                        break;
                    }
                    if (u->hasTail) {
                        const uint64_t t_begin = u->tailDyn.effAddr;
                        const uint64_t t_end =
                            t_begin + u->tailDyn.memSize();
                        if (rangesOverlap(t_begin, t_end, begin, end)) {
                            ok = false;
                            break;
                        }
                    }
                }
            }
            if (ok) {
                cand->hasTail = true;
                cand->tailDyn = tail->dyn;
                cand->fusion = FusionKind::NcsfMem;
                cand->pairSeq = tail->seq;
                AUDIT_HOOK(onFusePair(*cand, tail->dyn,
                                      FusionKind::NcsfMem,
                                      /*absorbed=*/true, cycle));
                fused = true;
            }
        }
        if (fused)
            return true;
        // Stores may only pair with the nearest older store.
        if (tail->isStore())
            break;
    }
    return false;
}

void
Pipeline::aqInsertStage()
{
    while (!decodePipe.empty() &&
           decodePipe.front().readyCycle <= cycle) {
        DecodeGroup &grp = decodePipe.front();
        // Exactly once per group: a rerun on the remainder of an
        // AQ-stalled group could pair an already-fused head with the
        // next µ-op and silently drop its first absorbed tail.
        if (!grp.fused) {
            applyConsecutiveFusion(grp.uops);
            grp.fused = true;
        }

        while (grp.consumed < grp.uops.size()) {
            if (aq.size() >= params.aqSize) {
                literalCounter("decode.stall.aq_full")++;
                return;
            }
            Uop *uop = grp.uops[grp.consumed++];

            // Fusion-predictor lookup at Decode (Helios).
            if (params.fusion == FusionMode::Helios && uop->isMem() &&
                uop->fusion == FusionKind::None) {
                uop->fpPred =
                    fusionPred->lookup(uop->dyn.pc, uop->fetchHistory);
            }

            uop->inAq = true;
            uop->aqCycle = cycle;
            aq.push_back(uop);

            if (params.fusion == FusionMode::Helios && uop->fpPred.valid)
                tryPredictedFusion(uop);

            if (params.fusion == FusionMode::Oracle && uop->isMem() &&
                tryOracleFusion(uop)) {
                // Tail disappears immediately (ideal hardware).
                aq.pop_back();
                uopPool.release(inflightErase(uop->seq));
                literalCounter("fusion.oracle_applied")++;
            }
        }
        decodePipe.pop_front();
    }
}

// ---------------------------------------------------------------------
// Rename
// ---------------------------------------------------------------------

bool
Pipeline::attachDependency(Uop *consumer, uint64_t producer_seq,
                           int reg)
{
    if (producer_seq == invalidSeq)
        return false;
    Uop *producer = findInflight(producer_seq);
    if (!producer || producer->done)
        return false;
    // The paper requires fused pairs to deliver their two destination
    // registers to dependents independently (Section II-B): route the
    // dependency to the producing half. reg < 0 (non-register
    // dependences, e.g. store sets) waits for full completion.
    const bool tail_half = reg >= 0 && producer->hasTail &&
                           producer->tailDyn.inst.writesReg() &&
                           producer->tailDyn.inst.rd == unsigned(reg);
    const bool head_half = reg >= 0 && !tail_half &&
                           producer->dyn.inst.writesReg() &&
                           producer->dyn.inst.rd == unsigned(reg);
    if (tail_half) {
        if (producer->tailDone)
            return false;
        producer->dependentsTail.push_back(consumer->seq);
    } else if (head_half) {
        if (producer->headDone)
            return false;
        producer->dependents.push_back(consumer->seq);
    } else {
        // Wait for full completion (final event wakes head list).
        producer->dependents.push_back(consumer->seq);
    }
    ++consumer->notReady;
    return true;
}

void
Pipeline::addSourceDependency(Uop *uop, unsigned reg)
{
    if (reg == RegZero)
        return;
    attachDependency(uop, rat[reg].producerSeq, int(reg));
}

void
Pipeline::addStoreSetDependency(Uop *uop)
{
    uint64_t store_seq = storeSets.loadDependence(uop->dyn.pc);
    if (uop->hasTail && uop->tailDyn.inst.isLoad()) {
        const uint64_t tail_dep =
            storeSets.loadDependence(uop->tailDyn.pc);
        if (store_seq == StoreSets::invalidSeq ||
            (tail_dep != StoreSets::invalidSeq && tail_dep > store_seq))
            store_seq = tail_dep;
    }
    if (store_seq == StoreSets::invalidSeq || store_seq >= uop->seq)
        return;
    if (attachDependency(uop, store_seq, -1)) {
        uop->waitStoreSeq = store_seq;
        literalCounter("storeset.dependencies")++;
    }
}

void
Pipeline::renameNormal(Uop *uop)
{
    const Instruction &inst = uop->dyn.inst;
    bool helios_pending = uop->fusion == FusionKind::NcsfMem &&
                          uop->fpInitiated;

    // Max Active NCS saturation: a head nucleus entering Rename while
    // the nest levels are all busy behaves as unfused, and the tail
    // nucleus reverts to a regular µ-op in the AQ (Section IV-B2).
    if (helios_pending &&
        activeNcsHeads.size() >= params.ncsfNestDepth) {
        Uop *marker = findInflight(uop->pairSeq);
        helios_assert(marker && marker->isTailMarker,
                      "nest-unfuse lost its marker");
        AUDIT_HOOK(onUnfuse(*uop, uop->pairSeq, cycle));
        marker->isTailMarker = false;
        marker->pairSeq = 0;
        marker->fpPred.valid = false;
        uop->hasTail = false;
        uop->fusion = FusionKind::None;
        uop->ncsReady = true;
        uop->fpInitiated = false;
        uop->pairSeq = 0;
        helios_assert(pendingNcsf > 0, "pendingNcsf underflow");
        --pendingNcsf;
        literalCounter("fusion.fp_nest_limited")++;
        if (marker->profBreak == ProfBreak::None)
            marker->profBreak = ProfBreak::NestLimit;
        if (uop->profBreak == ProfBreak::None)
            uop->profBreak = ProfBreak::NestLimit;
        if (profiler)
            profiler->recordBreak(marker->dyn.pc,
                                  ProfBreak::NestLimit);
        helios_pending = false;
    }

    // ---- catalyst flags for active NCSF nests (Section IV-B) ----
    if (!activeNcsHeads.empty()) {
        if (uop->isStore()) {
            for (Uop *head : activeNcsHeads)
                if (head->isStore())
                    head->storeInCatalyst = true;
        }
        if (inst.isSerializing()) {
            for (Uop *head : activeNcsHeads)
                head->serializingInCatalyst = true;
        }
    }

    // ---- sources ----
    if (inst.readsRs1())
        addSourceDependency(uop, inst.rs1);
    if (inst.readsRs2())
        addSourceDependency(uop, inst.rs2);
    if (uop->hasTail && !helios_pending) {
        const Instruction &t = uop->tailDyn.inst;
        switch (uop->fusion) {
          case FusionKind::CsfMem:
          case FusionKind::NcsfMem: // oracle
            if (t.readsRs1() && t.rs1 != inst.rs1)
                addSourceDependency(uop, t.rs1);
            if (t.isStore() && t.readsRs2())
                addSourceDependency(uop, t.rs2);
            break;
          case FusionKind::CsfOther:
            // The idiom's internal register is produced inside the
            // fused µ-op; only external sources count.
            if (t.readsRs1() && t.rs1 != inst.rd)
                addSourceDependency(uop, t.rs1);
            if (t.readsRs2() && t.rs2 != inst.rd)
                addSourceDependency(uop, t.rs2);
            break;
          default:
            break;
        }
    }

    // ---- memory dependence prediction ----
    if (uop->isLoad())
        addStoreSetDependency(uop);
    if (uop->isStore()) {
        // Store-store chaining (Chrysos & Emer): stores of a set
        // execute in order so that a load's single LFST dependence
        // covers all older same-set stores.
        const uint64_t previous =
            storeSets.storeRenamed(uop->dyn.pc, uop->seq);
        if (previous < uop->seq &&
            attachDependency(uop, previous, -1))
            literalCounter("storeset.chained")++;
    }

    // ---- destinations & RAT ----
    unsigned dests = 0;
    if (inst.writesReg()) {
        rat[inst.rd].producerSeq = uop->seq;
        ++dests;
    }
    if (uop->hasTail && uop->tailDyn.inst.writesReg()) {
        const uint8_t tail_rd = uop->tailDyn.inst.rd;
        switch (uop->fusion) {
          case FusionKind::CsfMem:
            // Consecutive: no catalyst, RAT updates immediately.
            rat[tail_rd].producerSeq = uop->seq;
            uop->tailRenamed = true;
            ++dests;
            break;
          case FusionKind::CsfOther:
            // Idioms write a single architectural register (tail.rd ==
            // head.rd), already counted above.
            uop->tailRenamed = true;
            break;
          case FusionKind::NcsfMem:
            if (helios_pending) {
                // WaR deferral: RAT update happens when the tail
                // marker renames (Section IV-B2). The physical
                // register is allocated now.
                ++dests;
            } else {
                // Oracle: idealized immediate update.
                rat[tail_rd].producerSeq = uop->seq;
                uop->tailRenamed = true;
                ++dests;
            }
            break;
          default:
            break;
        }
    }
    uop->numDests = dests;
    allocatedRegs += dests;

    // ---- activate a Helios NCSF nest ----
    if (helios_pending)
        activeNcsHeads.push_back(uop);

    uop->renamed = true;
}

bool
Pipeline::renameMarker(Uop *marker)
{
    Uop *head = findInflight(marker->pairSeq);
    helios_assert(head && head->hasTail && !head->ncsReady,
                  "tail marker without pending head");

    const Instruction &tail = marker->dyn.inst;

    // Deadlock detection (load pairs only: store pairs write nothing).
    // The hardware uses the Deadlock-Tag propagation of Section IV-B2;
    // the simulator computes its precise outcome with an exact walk.
    if (heliosDependent(head, marker)) {
        marker->mustUnfuse = true;
        literalCounter("fusion.unfuse_deadlock")++;
        if (marker->profBreak == ProfBreak::None) {
            marker->profBreak = ProfBreak::Deadlock;
            if (profiler)
                profiler->recordBreak(marker->dyn.pc,
                                      ProfBreak::Deadlock);
        }
    }
    if (head->isStore() && head->storeInCatalyst) {
        marker->mustUnfuse = true;
        literalCounter("fusion.unfuse_store_catalyst")++;
        if (marker->profBreak == ProfBreak::None) {
            marker->profBreak = ProfBreak::StoreCatalyst;
            if (profiler)
                profiler->recordBreak(marker->dyn.pc,
                                      ProfBreak::StoreCatalyst);
        }
    }
    if (head->serializingInCatalyst) {
        marker->mustUnfuse = true;
        literalCounter("fusion.unfuse_serializing")++;
        if (marker->profBreak == ProfBreak::None) {
            marker->profBreak = ProfBreak::Serializing;
            if (profiler)
                profiler->recordBreak(marker->dyn.pc,
                                      ProfBreak::Serializing);
        }
    }

    // Capture the program-order-correct producers of the tail sources.
    if (tail.readsRs1())
        marker->tailProducers.push_back(rat[tail.rs1].producerSeq);
    if (tail.isStore() && tail.readsRs2())
        marker->tailProducers.push_back(rat[tail.rs2].producerSeq);

    // Refinement over the paper: when a tail source hangs off a LOAD
    // inside the catalyst (a pointer-chase step), the fused µ-op
    // cannot issue until that load returns — the head gains nothing
    // and loses its early issue. Such pairs are unfused; ALU-fed
    // catalyst RaWs keep their fusion, preserving the paper's
    // RaW-in-catalyst support.
    if (!marker->mustUnfuse &&
        tailDependsOnCatalystLoad(head, marker)) {
        marker->mustUnfuse = true;
        literalCounter("fusion.unfuse_late_raw")++;
        if (marker->profBreak == ProfBreak::None) {
            marker->profBreak = ProfBreak::LateRaw;
            if (profiler)
                profiler->recordBreak(marker->dyn.pc,
                                      ProfBreak::LateRaw);
        }
    }

    if (tail.writesReg()) {
        if (marker->mustUnfuse) {
            // The tail will re-dispatch as its own µ-op: younger
            // µ-ops must see it as the producer.
            rat[tail.rd].producerSeq = marker->seq;
        } else {
            // Deferred RAT update for the tail destination (the
            // paper's WaR buffer, Section IV-B2).
            rat[tail.rd].producerSeq = head->seq;
            head->tailRenamed = true;
        }
    }

    // Nest teardown.
    auto it = std::find(activeNcsHeads.begin(), activeNcsHeads.end(),
                        head);
    if (it != activeNcsHeads.end())
        activeNcsHeads.erase(it);
    helios_assert(pendingNcsf > 0, "pendingNcsf underflow");
    --pendingNcsf;

    marker->renamed = true;
    return true;
}

void
Pipeline::renameStage()
{
    unsigned renamed = 0;
    if (aq.empty()) {
        hot.renameAqEmpty++;
        return;
    }
    while (renamed < params.renameWidth && !aq.empty()) {
        // Rename stalls when the rename->dispatch skid buffer backs
        // up; physical registers must not be hoarded by µ-ops that
        // cannot dispatch yet.
        if (renamedQueue.size() >= 2 * params.dispatchWidth) {
            hot.renameBacklog++;
            return;
        }
        Uop *uop = aq.front();
        if (uop->isTailMarker) {
            renameMarker(uop);
        } else {
            unsigned dests = uop->dyn.inst.writesReg() ? 1 : 0;
            if (uop->hasTail && uop->tailDyn.inst.writesReg() &&
                uop->fusion != FusionKind::CsfOther)
                ++dests;
            if (allocatedRegs + dests >
                params.numPhysRegs - numArchRegs) {
                literalCounter("rename.stall.prf")++;
                return;
            }
            renameNormal(uop);
        }
        uop->inAq = false;
        uop->renameCycle = cycle;
        aq.pop_front();
        renamedQueue.push_back(uop);
        ++renamed;
        hot.renameUops++;
    }
}

// ---------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------

void
Pipeline::unfuseInPlace(Uop *head)
{
    helios_assert(!head->issued, "unfusing an issued µ-op");
    head->fusion = FusionKind::None;
    head->hasTail = false;
    head->ncsReady = true;
    head->fpInitiated = false;
    if (head->tailDyn.inst.writesReg() && head->numDests > 0) {
        // Release the tail's physical register.
        --head->numDests;
        --allocatedRegs;
    }
    literalCounter("fusion.unfused")++;
}

void
Pipeline::maybeReady(Uop *uop)
{
    if (uop->dispatched && uop->ncsReady && !uop->issued &&
        !uop->done && uop->notReady == 0 && !uop->isTailMarker &&
        !uop->inReadyList)
        readyInsert(uop);
}

void
Pipeline::dispatchStage()
{
    unsigned slots = params.dispatchWidth;
    while (slots > 0 && !renamedQueue.empty()) {
        Uop *uop = renamedQueue.front();

        if (uop->isTailMarker) {
            Uop *head = findInflight(uop->pairSeq);
            helios_assert(head, "marker lost its head");

            if (uop->mustUnfuse) {
                // The tail re-dispatches as its own µ-op: two dispatch
                // slots plus fresh ROB/IQ/LQ/SQ entries.
                if (slots < 2)
                    return;
                if (rob.size() >= params.robSize) {
                    literalCounter("dispatch.stall.rob")++;
                    return;
                }
                if (iqCount >= params.iqSize) {
                    literalCounter("dispatch.stall.iq")++;
                    return;
                }
                if (uop->dyn.isLoad() && lqList.size() >= params.lqSize) {
                    literalCounter("dispatch.stall.lq")++;
                    return;
                }
                if (uop->dyn.isStore() &&
                    sqList.size() + drainQueue.size() >= params.sqSize) {
                    literalCounter("dispatch.stall.sq")++;
                    return;
                }
                if (allocatedRegs + 1 >
                    params.numPhysRegs - numArchRegs) {
                    literalCounter("dispatch.stall.prf")++;
                    return;
                }

                AUDIT_HOOK(onUnfuse(*head, uop->seq, cycle));
                unfuseInPlace(head);
                maybeReady(head);
                if (head->fpPred.valid)
                    fusionPred->resolve(head->fpPred, false);
                literalCounter("fusion.mispredicts")++;
                if (head->profBreak == ProfBreak::None)
                    head->profBreak = uop->profBreak;
                if (profiler)
                    profiler->recordMispredict(uop->dyn.pc);

                // Convert the marker into a real µ-op.
                uop->isTailMarker = false;
                uop->pairSeq = 0;
                uop->ncsReady = true;
                if (uop->dyn.inst.writesReg()) {
                    // RAT already points at the marker (renameMarker).
                    uop->numDests = 1;
                    ++allocatedRegs;
                }
                for (uint64_t producer_seq : uop->tailProducers) {
                    if (sourceIsReady(producer_seq))
                        continue;
                    findInflight(producer_seq)
                        ->dependents.push_back(uop->seq);
                    ++uop->notReady;
                                }
                if (uop->dyn.isLoad())
                    addStoreSetDependency(uop);
                if (uop->dyn.isStore()) {
                    const uint64_t previous =
                        storeSets.storeRenamed(uop->dyn.pc, uop->seq);
                    if (previous != StoreSets::invalidSeq &&
                        previous < uop->seq) {
                        Uop *prev_store = findInflight(previous);
                        if (prev_store && !prev_store->done) {
                            prev_store->dependents.push_back(uop->seq);
                            ++uop->notReady;
                        }
                    }
                }

                rob.push_back(uop);
                ++iqCount;
                uop->inIq = true;
                uop->dispatchCycle = cycle;
                if (uop->dyn.isLoad())
                    lqList.push_back(uop);
                if (uop->dyn.isStore())
                    sqList.push_back(uop);
                uop->dispatched = true;
                uop->renamed = true;
                maybeReady(uop);
                renamedQueue.pop_front();
                slots -= 2;
                continue;
            }

            // Validation: repair/complete the head's tail sources and
            // set NCS Ready (one dispatch slot, Section IV-B2).
            {
                size_t index = 0;
                const Instruction &t = uop->dyn.inst;
                if (t.readsRs1() && index < uop->tailProducers.size())
                    attachDependency(head, uop->tailProducers[index++],
                                     t.rs1);
                if (t.isStore() && t.readsRs2() &&
                    index < uop->tailProducers.size())
                    attachDependency(head, uop->tailProducers[index++],
                                     t.rs2);
            }
            head->ncsReady = true;
            maybeReady(head);
            literalCounter("fusion.validated")++;
            renamedQueue.pop_front();
            AUDIT_HOOK(onTailAbsorbed(uop->seq, head->seq, cycle));
            uopPool.release(inflightErase(uop->seq));
            --slots;
            continue;
        }

        // ---- regular µ-op ----
        if (rob.size() >= params.robSize) {
            literalCounter("dispatch.stall.rob")++;
            return;
        }
        if (iqCount >= params.iqSize) {
            literalCounter("dispatch.stall.iq")++;
            return;
        }
        if (uop->isLoad() && lqList.size() >= params.lqSize) {
            literalCounter("dispatch.stall.lq")++;
            return;
        }
        if (uop->isStore() &&
            sqList.size() + drainQueue.size() >= params.sqSize) {
            literalCounter("dispatch.stall.sq")++;
            return;
        }

        rob.push_back(uop);
        ++iqCount;
        uop->inIq = true;
        uop->dispatchCycle = cycle;
        if (uop->isLoad())
            lqList.push_back(uop);
        if (uop->isStore())
            sqList.push_back(uop);
        uop->dispatched = true;
        maybeReady(uop);
        renamedQueue.pop_front();
        --slots;
        hot.dispatchUops++;
    }
}

// ---------------------------------------------------------------------
// Issue & execute
// ---------------------------------------------------------------------

bool
Pipeline::validateFusedAddresses(Uop *uop)
{
    uop->computeMemRange();
    return uop->memEnd - uop->memBegin <= params.fusionRegionBytes;
}

unsigned
Pipeline::loadHalfLatency(uint64_t load_seq, uint64_t begin,
                          uint64_t end)
{
    // Store-to-load forwarding for this half: youngest older
    // overlapping store nucleus (SQ, then committed stores still
    // draining). Fused store pairs forward per nucleus — the bytes
    // between a non-consecutive pair's two stores are never written,
    // and its tail nucleus may be younger than the load.
    StoreNucleus forwarder;
    bool have_forwarder = false;
    // The filter covers every addrKnown SQ entry and the whole drain
    // queue: a miss proves neither scan can find an overlap.
    if (storeFilter.mayOverlap(begin, end)) {
        auto consider = [&](const Uop *store) {
            StoreNucleus nuclei[2];
            const int count = storeNuclei(*store, nuclei);
            for (int n = 0; n < count; ++n) {
                if (nuclei[n].seq >= load_seq)
                    continue;
                if (!rangesOverlap(nuclei[n].begin, nuclei[n].end,
                                   begin, end))
                    continue;
                if (!have_forwarder || nuclei[n].seq > forwarder.seq) {
                    forwarder = nuclei[n];
                    have_forwarder = true;
                }
            }
        };
        for (const Uop *store : sqList) {
            if (store->seq >= load_seq)
                break;
            if (store->addrKnown)
                consider(store);
        }
        if (!have_forwarder) {
            for (const Uop *store : drainQueue)
                consider(store);
        }
    }
    if (have_forwarder) {
        const bool full =
            forwarder.begin <= begin && end <= forwarder.end;
        if (full) {
            hot.stlfForwards++;
            return params.forwardLatency;
        }
        hot.stlfPartial++;
        return params.forwardLatency + 10;
    }

    const uint64_t first_line = begin / params.lineBytes;
    const uint64_t last_line = (end - 1) / params.lineBytes;
    unsigned latency = caches.dataAccess(first_line);
    if (last_line != first_line) {
        latency = std::max(latency, caches.dataAccess(last_line)) +
                  params.lineCrossPenalty;
        hot.lineCrossers++;
    }
    return latency;
}

unsigned
Pipeline::executeStore(Uop *uop)
{
    uop->computeMemRange();
    uop->addrKnown = true;
    storeFilter.add(uop->memBegin, uop->memEnd);
    unresolvedKind[uop->seq & inflightMask] = unresolvedNone;
    if (uop->hasTail && uop->tailDyn.inst.isStore())
        unresolvedKind[uop->tailDyn.seq & inflightMask] =
            unresolvedNone;
    hot.execStores++;

    // Memory-order violation: a younger load already executed against
    // stale data. Both sides are checked per nucleus (Section IV-B4):
    // each nucleus carries its own byte range and program position. A
    // catalyst load sitting between a non-consecutive store pair's
    // two stores is older than the tail nucleus and reads bytes
    // neither store writes — judging it against the pair's combined
    // range and head position would flush it forever.
    StoreNucleus stores[2];
    const int num_stores = storeNuclei(*uop, stores);
    // Every addrKnown LQ entry's combined range is in loadFilter, so
    // a filter miss on the pair's combined range proves no executed
    // load can overlap either store nucleus — skip the snoop.
    if (!loadFilter.mayOverlap(uop->memBegin, uop->memEnd))
        return 1;
    for (Uop *load : lqList) {
        if (!load->addrKnown || !load->issued)
            continue;
        bool violated = false;
        uint64_t violator_pc = load->dyn.pc;
        for (int n = 0; n < num_stores && !violated; ++n) {
            const StoreNucleus &store = stores[n];
            if (load->seq > store.seq && load->dyn.inst.isMem() &&
                rangesOverlap(load->dyn.effAddr,
                              load->dyn.effAddr + load->dyn.memSize(),
                              store.begin, store.end)) {
                violated = true;
            } else if (load->hasTail &&
                       load->tailDyn.seq > store.seq &&
                       rangesOverlap(load->tailDyn.effAddr,
                                     load->tailDyn.effAddr +
                                         load->tailDyn.memSize(),
                                     store.begin, store.end)) {
                violated = true;
                violator_pc = load->tailDyn.pc;
            }
        }
        if (violated) {
            storeSets.trainViolation(violator_pc, uop->dyn.pc);
            literalCounter("lsq.violations")++;
            // A violation caused by a hoisted fused pair is a fusion
            // misprediction: the store-set cannot protect a load
            // hoisted above a store that has not renamed yet, so the
            // fusion predictor must lose confidence in this pair.
            if (load->fusion == FusionKind::NcsfMem &&
                load->fpInitiated) {
                fusionPred->resolve(load->fpPred, false);
                literalCounter("fusion.mispredicts")++;
                literalCounter("fusion.mispredict_violation")++;
                if (profiler)
                    profiler->recordMispredict(load->tailDyn.pc);
            }
            if (flushRequestSeq == invalidSeq ||
                load->seq < flushRequestSeq) {
                flushRequestSeq = load->seq;
                flushReason = "order_violation";
            }
            break;
        }
    }
    return 1;
}

void
Pipeline::scheduleCompletion(Uop *uop, unsigned latency)
{
    uop->issued = true;
    uop->issueCycle = cycle;
    uop->doneCycle = cycle + std::max(1u, latency);
    if (uop->inIq) {
        uop->inIq = false;
        --iqCount;
    }
    events.push({uop->doneCycle, uop->seq, uop->uid, uint8_t(2)});
    AUDIT_HOOK(onIssue(*uop, cycle));
}

void
Pipeline::scheduleSplitCompletion(Uop *uop, unsigned head_latency,
                                  unsigned tail_latency)
{
    uop->issued = true;
    uop->issueCycle = cycle;
    const uint64_t head_done = cycle + std::max(1u, head_latency);
    const uint64_t tail_done = cycle + std::max(1u, tail_latency);
    uop->doneCycle = std::max(head_done, tail_done);
    if (uop->inIq) {
        uop->inIq = false;
        --iqCount;
    }
    // Each destination register is delivered at its own latency
    // (Section II-B); the µ-op is commit-eligible once both are.
    if (head_done == tail_done) {
        events.push({uop->doneCycle, uop->seq, uop->uid, uint8_t(2)});
    } else if (head_done < tail_done) {
        events.push({head_done, uop->seq, uop->uid, uint8_t(0)});
        events.push({tail_done, uop->seq, uop->uid, uint8_t(2)});
    } else {
        events.push({tail_done, uop->seq, uop->uid, uint8_t(1)});
        events.push({head_done, uop->seq, uop->uid, uint8_t(2)});
    }
    AUDIT_HOOK(onIssue(*uop, cycle));
}

void
Pipeline::issueStage()
{
    unsigned alu = params.aluPorts;
    unsigned mul = params.mulPorts;
    unsigned div = params.divPorts;
    unsigned load = params.loadPorts;
    unsigned store = params.storePorts;
    unsigned branch = params.branchPorts;

    // Walk the intrusive ready list oldest-first. Scheduling never
    // touches the list, so capturing `next` up front keeps the walk
    // valid across the immediate readyRemove of an issued µ-op.
    Uop *next = nullptr;
    for (Uop *uop = readyHead; uop; uop = next) {
        next = uop->readyNext;
        if (alu + mul + div + load + store + branch == 0)
            break;

        unsigned latency = 0;
        OpClass cls = uop->dyn.inst.info().cls;
        if (uop->isMem())
            cls = uop->isLoad() ? OpClass::Load : OpClass::Store;
        switch (cls) {
          case OpClass::IntAlu:
          case OpClass::Serializing:
            if (alu == 0)
                continue;
            --alu;
            latency = params.aluLatency;
            break;
          case OpClass::Branch:
            if (branch == 0)
                continue;
            --branch;
            latency = params.aluLatency;
            break;
          case OpClass::IntMul:
            if (mul == 0)
                continue;
            --mul;
            latency = params.mulLatency;
            break;
          case OpClass::IntDiv:
            if (div == 0 || cycle < divBusyUntil)
                continue;
            --div;
            latency = params.divLatency;
            divBusyUntil = cycle + params.divLatency;
            break;
          case OpClass::Load:
          case OpClass::Store: {
            const bool is_load = uop->isLoad();
            if (is_load) {
                if (load == 0)
                    continue;
                --load;
            } else {
                if (store == 0)
                    continue;
                --store;
            }
            // Address-based fusion validation (case 5, Section IV-C).
            if (uop->fusion == FusionKind::NcsfMem && uop->fpInitiated &&
                !validateFusedAddresses(uop)) {
                fusionPred->resolve(uop->fpPred, false);
                literalCounter("fusion.mispredicts")++;
                literalCounter("fusion.mispredict_region")++;
                if (profiler)
                    profiler->recordMispredict(uop->tailDyn.pc);
                if (flushRequestSeq == invalidSeq ||
                    uop->seq < flushRequestSeq) {
                    flushRequestSeq = uop->seq;
                    flushReason = "fusion_region";
                }
                readyRemove(uop);
                // Keep the µ-op unissued; the flush below removes it.
                uop->issued = true;
                goto after_loop;
            }
            if (uop->fusion == FusionKind::NcsfMem && uop->fpInitiated) {
                fusionPred->resolve(uop->fpPred, true);
                literalCounter("fusion.fp_correct")++;
            }
            if (!is_load) {
                latency = executeStore(uop);
                break;
            }
            uop->computeMemRange();
            uop->addrKnown = true;
            loadFilter.add(uop->memBegin, uop->memEnd);
            unresolvedKind[uop->seq & inflightMask] = unresolvedNone;
            if (uop->hasTail && uop->tailDyn.inst.isLoad())
                unresolvedKind[uop->tailDyn.seq & inflightMask] =
                    unresolvedNone;
            hot.execLoads++;
            // Each nucleus forwards / accesses the cache and delivers
            // its destination independently (Section II-B).
            if (uop->hasTail && uop->dyn.inst.isMem() &&
                uop->tailDyn.inst.isMem()) {
                const unsigned head_latency = loadHalfLatency(
                    uop->seq, uop->dyn.effAddr,
                    uop->dyn.effAddr + uop->dyn.memSize());
                const unsigned tail_latency = loadHalfLatency(
                    uop->seq, uop->tailDyn.effAddr,
                    uop->tailDyn.effAddr + uop->tailDyn.memSize());
                scheduleSplitCompletion(uop, head_latency,
                                        tail_latency);
                readyRemove(uop);
                hot.issueUops++;
                continue;
            }
            latency =
                loadHalfLatency(uop->seq, uop->memBegin, uop->memEnd);
            break;
          }
          default:
            latency = params.aluLatency;
            break;
        }

        scheduleCompletion(uop, latency);
        readyRemove(uop);
        hot.issueUops++;
    }

  after_loop:
    if (flushRequestSeq != invalidSeq) {
        const uint64_t target = flushRequestSeq;
        const char *reason = flushReason;
        flushRequestSeq = invalidSeq;
        flushReason = nullptr;
        squashFrom(target, reason);
    }
}

// ---------------------------------------------------------------------
// Completion
// ---------------------------------------------------------------------

void
Pipeline::wakeDependents(Uop *uop)
{
    auto wake = [this](std::vector<uint64_t> &list) {
        for (uint64_t dep_seq : list) {
            Uop *dep = findInflight(dep_seq);
            if (!dep)
                continue;
            --dep->notReady;
            maybeReady(dep);
        }
        list.clear();
    };
    wake(uop->dependents);
    wake(uop->dependentsTail);
}

void
Pipeline::completeExecution()
{
    while (!events.empty() && events.top().cycle <= cycle) {
        const Event event = events.top();
        events.pop();
        Uop *uop = findInflight(event.seq);
        if (!uop || uop->uid != event.uid || uop->done)
            continue; // squashed (and possibly refetched)
        auto wake_list = [this](std::vector<uint64_t> &list) {
            for (uint64_t dep_seq : list) {
                Uop *dep = findInflight(dep_seq);
                if (!dep)
                    continue;
                --dep->notReady;
                maybeReady(dep);
            }
            list.clear();
        };
        if (event.kind == 0) {
            uop->headDone = true;
            wake_list(uop->dependents);
            continue;
        }
        if (event.kind == 1) {
            uop->tailDone = true;
            wake_list(uop->dependentsTail);
            continue;
        }
        uop->done = true;
        uop->headDone = true;
        uop->tailDone = true;
        wakeDependents(uop);

        if (uop->isStore())
            storeSets.storeCompleted(uop->dyn.pc, uop->seq);

        if (uop->mispredictedBranch && fetchStallSeq == uop->seq) {
            fetchStallSeq = invalidSeq;
            const unsigned refill =
                params.mispredictPenalty > params.frontendDepth
                    ? params.mispredictPenalty - params.frontendDepth
                    : 0;
            fetchBlockedUntil =
                std::max(fetchBlockedUntil, cycle + refill);
        }
    }
}

// ---------------------------------------------------------------------
// Commit & store drain
// ---------------------------------------------------------------------

void
Pipeline::countFusedPair(const Uop *uop)
{
    // One distance sample per committed pair (consecutive pairs are
    // distance 1), so the histogram's sample count equals the total
    // fused-pair count.
    switch (uop->fusion) {
      case FusionKind::CsfOther:
        literalCounter("pairs.csf_other")++;
        if (histPairDistance)
            histPairDistance->addSample(1);
        return;
      case FusionKind::CsfMem:
        literalCounter("pairs.csf_mem")++;
        if (histPairDistance)
            histPairDistance->addSample(1);
        return;
      case FusionKind::NcsfMem: {
        const uint64_t distance = uop->tailDyn.seq - uop->dyn.seq;
        if (histPairDistance)
            histPairDistance->addSample(distance);
        if (distance == 1)
            literalCounter("pairs.csf_mem")++;
        else
            literalCounter("pairs.ncsf")++;
        literalCounter("pairs.distance_sum") += distance;
        if (uop->dyn.inst.baseReg() != uop->tailDyn.inst.baseReg())
            literalCounter("pairs.dbr")++;
        const bool static_csf =
            distance == 1 &&
            isMemPairable(uop->dyn.inst, uop->tailDyn.inst, true);
        if (!static_csf)
            literalCounter("pairs.need_prediction")++;
        if (uop->fpInitiated)
            literalCounter("pairs.fp_validated")++;
        return;
      }
      default:
        return;
    }
}

void
Pipeline::traceCommit(const Uop *uop) const
{
    std::ostream &out = *params.traceOut;
    out << strFormat("%6llu 0x%05llx ",
                     (unsigned long long)uop->seq,
                     (unsigned long long)uop->dyn.pc);
    out << strFormat(
        "[F%llu R%llu D%llu I%llu C%llu @%llu] ",
        (unsigned long long)uop->fetchCycle,
        (unsigned long long)uop->renameCycle,
        (unsigned long long)uop->dispatchCycle,
        (unsigned long long)uop->issueCycle,
        (unsigned long long)uop->doneCycle,
        (unsigned long long)cycle);
    out << disassemble(uop->dyn.inst);
    if (uop->hasTail) {
        const char *kind = uop->fusion == FusionKind::CsfOther
                               ? "CSF-idiom"
                               : (uop->tailDyn.seq == uop->dyn.seq + 1
                                      ? "CSF"
                                      : "NCSF");
        out << "  <" << kind << " + "
            << disassemble(uop->tailDyn.inst) << ">";
    }
    out << '\n';
}

/**
 * Commit wrapper: runs the retirement loop, then attributes the cycle
 * to exactly one `cpi.*` category (retired / frontend-starved / the
 * reason the ROB head is blocked). One increment per call and run()
 * calls this exactly once per cycle, so the categories partition
 * total cycles and StatGroup::cpiStack() is exact by construction —
 * the machine-checked form of the paper's Fig. 9 cycle accounting.
 */
void
Pipeline::commitStage()
{
    commitsThisCycle = 0;
    cpiBlockReason = nullptr;
    commitStageImpl();
    // Double-attribution guard: exactly one cpi.* increment per cycle
    // keeps the stack exact; a second attribution for the same cycle
    // is a model bug.
    helios_assert(cycle != lastCpiCycle,
                  "cpi.* attributed twice in one cycle");
    lastCpiCycle = cycle;
    const char *category = "cpi.frontend";
    if (commitsThisCycle > 0) {
        category = "cpi.retiring";
        hot.cpiRetiring++;
    } else {
        if (cpiBlockReason)
            category = cpiBlockReason;
        literalCounter(category)++;
    }
    if (profiler) {
        // Charge blocked-head cycles to the head µ-op's static PC.
        const bool blocked = commitsThisCycle == 0 &&
                             cpiBlockReason && !rob.empty();
        profiler->onCycle(category,
                          blocked ? rob.front()->dyn.pc : 0, blocked);
    }
}

void
Pipeline::commitStageImpl()
{
    unsigned slots = params.commitWidth;
    while (slots > 0 && !rob.empty()) {
        Uop *uop = rob.front();
        if (!uop->done) {
            if (!uop->dispatched) {
                literalCounter("commit.blocked.not_dispatched")++;
                cpiBlockReason = "cpi.backend.dispatch";
            } else if (!uop->ncsReady) {
                literalCounter("commit.blocked.ncs_pending")++;
                cpiBlockReason = "cpi.fusion.pending";
            } else if (!uop->issued && uop->notReady > 0) {
                literalCounter("commit.blocked.waiting_sources")++;
                cpiBlockReason = "cpi.backend.sources";
            } else if (!uop->issued) {
                literalCounter("commit.blocked.port_starved")++;
                cpiBlockReason = "cpi.backend.ports";
            } else if (uop->hasTail) {
                literalCounter("commit.blocked.executing_fused")++;
                cpiBlockReason = "cpi.exec.fused";
            } else if (uop->isLoad()) {
                literalCounter("commit.blocked.executing_load")++;
                cpiBlockReason = "cpi.exec.load";
            } else if (uop->isStore()) {
                literalCounter("commit.blocked.executing_store")++;
                cpiBlockReason = "cpi.exec.store";
            } else {
                literalCounter("commit.blocked.executing")++;
                cpiBlockReason = "cpi.exec.other";
            }
            return;
        }

        // A non-consecutive fused pair commits at the head's ROB slot,
        // hoisting its tail nucleus past the catalyst window. Hold it
        // until every catalyst memory access of the opposite kind has
        // resolved its address: an unresolved catalyst store could
        // still alias the already-read tail load (the SQ→LQ snoop can
        // only flush while the pair is pre-commit), and an unresolved
        // catalyst load must read its bytes before the committed tail
        // store's data can drain into the cache past it.
        if (uop->hasTail && uop->isMem() &&
            uop->tailDyn.seq > uop->seq + 1) {
            const uint8_t wanted =
                uop->isLoad() ? unresolvedStore : unresolvedLoad;
            bool blocked = false;
            // Catalyst window only (bounded by maxFusionDistance).
            for (uint64_t s = uop->seq + 1; s < uop->tailDyn.seq; ++s) {
                if (unresolvedKind[s & inflightMask] == wanted) {
                    blocked = true;
                    break;
                }
            }
            if (blocked) {
                literalCounter("commit.blocked.catalyst_unresolved")++;
                return;
            }
        }

        AUDIT_HOOK(onCommit(*uop, cycle));
        if (tracer)
            tracer->recordCommit(*uop, cycle);
        if (profiler)
            profiler->recordCommit(*uop);
        ++commitsThisCycle;
        if (params.traceOut)
            traceCommit(uop);
        hot.commitInsts += uop->archInsts();
        hot.commitUops++;
        if (uop->isLoad()) {
            hot.commitLoads += uop->archInsts();
        } else if (uop->isStore()) {
            hot.commitStores += uop->archInsts();
        }
        if (uop->hasTail)
            countFusedPair(uop);

        // UCH training (Helios): unfused committed memory µ-ops look
        // for a same-line partner among recent commits.
        if (params.fusion == FusionMode::Helios && uop->isMem() &&
            uop->fusion == FusionKind::None) {
            const auto cn = uint8_t(uop->seq & 0x7f);
            const uint64_t line = uop->dyn.effAddr / params.lineBytes;
            const auto distance =
                uop->isLoad() ? uch.accessLoad(line, cn)
                              : uch.accessStore(line, cn);
            if (distance) {
                literalCounter("uch.matches")++;
                fusionPred->train(uop->dyn.pc, uop->fetchHistory,
                                 *distance);
            }
        }

        uop->committed = true;
        ++commitCount;
        if ((commitCount & 0xffff) == 0)
            storeSets.age();
        allocatedRegs -= uop->numDests;
        rob.pop_front();
        if (uop->isLoad()) {
            helios_assert(!lqList.empty() && lqList.front() == uop,
                          "LQ order mismatch");
            lqList.pop_front();
            if (uop->addrKnown)
                loadFilter.remove(uop->memBegin, uop->memEnd);
        }
        const uint64_t seq = uop->seq;
        if (uop->isStore()) {
            helios_assert(!sqList.empty() && sqList.front() == uop,
                          "SQ order mismatch");
            sqList.pop_front();
            // The store stays in storeFilter until it drains: the
            // drain queue is still scanned for forwarding.
            drainQueue.push_back(inflightErase(seq));
        } else {
            uopPool.release(inflightErase(seq));
        }
        --slots;
    }
}

void
Pipeline::drainStores()
{
    if (drainQueue.empty() || cycle < drainBusyUntil)
        return;
    Uop *store = drainQueue.front();
    const uint64_t first_line = store->memBegin / params.lineBytes;
    const uint64_t last_line = (store->memEnd - 1) / params.lineBytes;
    unsigned latency = caches.storeDrain(first_line);
    if (last_line != first_line)
        latency += caches.storeDrain(last_line);
    drainBusyUntil = cycle + latency;
    literalCounter("sq.drained")++;
    storeFilter.remove(store->memBegin, store->memEnd);
    drainQueue.pop_front();
    uopPool.release(store);
}

// ---------------------------------------------------------------------
// Squash / replay
// ---------------------------------------------------------------------

void
Pipeline::resumeFetchAfter(uint64_t delay)
{
    fetchBlockedUntil = std::max(fetchBlockedUntil, cycle + delay);
}

void
Pipeline::squashFrom(uint64_t seq_min, const char *reason)
{
    // Formatted flush reason: safe through counter() since the cache
    // keys on content and views the name interned inside StatGroup.
    counter(strFormat("flush.%s", reason))++;
    if (params.traceOut)
        *params.traceOut << "FLUSH  " << reason << " from seq "
                         << seq_min << " @" << cycle << '\n';

    // Solution ii) of Section IV-C: if a surviving fused µ-op's tail
    // would be squashed, move the flush point up to that head.
    bool changed = true;
    while (changed) {
        changed = false;
        for (const Uop *uop : inflightSlots) {
            if (uop && uop->hasTail && !uop->isTailMarker &&
                uop->seq < seq_min && uop->tailDyn.seq >= seq_min) {
                seq_min = uop->seq;
                changed = true;
            }
        }
    }

    // Unlink the squashed suffix from every structure first; the
    // records themselves are released in the sweep below.
    while (readyTail && readyTail->seq >= seq_min)
        readyRemove(readyTail);
    auto chop = [seq_min](RingBuffer<Uop *> &ring) {
        while (!ring.empty() && ring.back()->seq >= seq_min)
            ring.pop_back();
    };
    chop(aq);
    chop(renamedQueue);
    chop(rob);
    chop(lqList);
    chop(sqList);
    for (size_t g = decodePipe.size(); g-- > 0;) {
        DecodeGroup &grp = decodePipe[g];
        // Only the unconsumed suffix can hold squashed µ-ops: seqs
        // ascend within a group and the consumed prefix is older.
        while (grp.uops.size() > grp.consumed &&
               grp.uops.back()->seq >= seq_min)
            grp.uops.pop_back();
    }
    while (!decodePipe.empty() &&
           decodePipe.back().uops.size() == decodePipe.back().consumed)
        decodePipe.pop_back();
    std::erase_if(activeNcsHeads, [seq_min](const Uop *uop) {
        return uop->seq >= seq_min;
    });

    // Remove squashed seqs from survivors' wakeup lists (both halves:
    // a stale tail-half entry would corrupt the notReady count of a
    // refetched µ-op that reuses the squashed sequence number).
    for (const Uop *survivor : inflightSlots) {
        if (!survivor || survivor->seq >= seq_min)
            continue;
        Uop *uop = const_cast<Uop *>(survivor);
        const auto stale = [seq_min](uint64_t dep) {
            return dep >= seq_min;
        };
        std::erase_if(uop->dependents, stale);
        std::erase_if(uop->dependentsTail, stale);
    }

    // Sweep the squashed seq range in ascending order: fire the
    // hooks, collect the replayed architectural instructions, undo
    // the resource accounting, and release the records.
    replayScratch.clear();
    uint64_t squashed_count = 0;
    for (uint64_t s = seq_min; s <= maxFetchedSeq; ++s) {
        unresolvedKind[s & inflightMask] = unresolvedNone;
        Uop *uop = findInflight(s);
        if (!uop)
            continue;
        ++squashed_count;
        AUDIT_HOOK(onSquash(*uop, cycle));
        if (tracer)
            tracer->recordSquash(*uop, cycle, reason);
        if (profiler)
            profiler->recordSquash(*uop);
        if (uop->isTailMarker) {
            // The head is older; if it survived we would have moved
            // the flush point above, so the head must be squashed and
            // contributes the tail's dyn record itself.
            helios_assert(uop->pairSeq >= seq_min,
                          "marker survived its head's squash");
        } else {
            replayScratch.push_back(uop->dyn);
            if (uop->hasTail)
                replayScratch.push_back(uop->tailDyn);
            if (uop->renamed)
                allocatedRegs -= uop->numDests;
            if (uop->inIq)
                --iqCount;
            if (uop->addrKnown) {
                if (uop->isStore())
                    storeFilter.remove(uop->memBegin, uop->memEnd);
                else if (uop->isLoad())
                    loadFilter.remove(uop->memBegin, uop->memEnd);
            }
        }
        uopPool.release(inflightErase(s));
    }

    // Rebuild the RAT from surviving renamed µ-ops in program order.
    for (RatEntry &entry : rat)
        entry.producerSeq = invalidSeq;
    auto rebuild = [this](const Uop *uop) {
        if (uop->isTailMarker)
            return;
        if (uop->dyn.inst.writesReg())
            rat[uop->dyn.inst.rd].producerSeq = uop->seq;
        if (uop->hasTail && uop->tailRenamed &&
            uop->tailDyn.inst.writesReg())
            rat[uop->tailDyn.inst.rd].producerSeq = uop->seq;
    };
    for (const Uop *uop : rob)
        rebuild(uop);
    for (const Uop *uop : renamedQueue)
        rebuild(uop);

    // Helios rename-side state: pendingNcsf counts fused pairs whose
    // tail marker has not yet renamed (markers still in the AQ).
    pendingNcsf = 0;
    for (const Uop *uop : aq)
        if (uop->isTailMarker)
            ++pendingNcsf;

    storeSets.squash(seq_min);

    // Prepend replayed instructions in program order (all older than
    // anything already waiting in the replay queue). The sweep found
    // heads in ascending seq order but emits a fused tail's record at
    // its head's position, so sort by arch seq (all seqs distinct).
    std::sort(replayScratch.begin(), replayScratch.end(),
              [](const DynInst &a, const DynInst &b) {
                  return a.seq < b.seq;
              });
    helios_assert(replayQueue.empty() || replayScratch.empty() ||
                      replayScratch.back().seq <
                          replayQueue.front().seq,
                  "replay order violated");
    for (size_t i = replayScratch.size(); i-- > 0;)
        replayQueue.push_front(replayScratch[i]);

    if (fetchStallSeq >= seq_min)
        fetchStallSeq = invalidSeq;
    lastFetchLine = ~0ULL;
    resumeFetchAfter(params.mispredictPenalty);
    literalCounter("flush.squashed_uops") += squashed_count;
}

// ---------------------------------------------------------------------
// Main loop
// ---------------------------------------------------------------------

PipelineResult
Pipeline::run()
{
    uint64_t last_commit_count = 0;
    uint64_t last_progress_cycle = 0;
    bool drained = false;

    while (cycle < params.maxCycles) {
        commitStage();
        drainStores();
        completeExecution();
        issueStage();
        dispatchStage();
        renameStage();
        aqInsertStage();
        fetchStage();
        ++cycle;

        if (params.sampleHistograms) {
            histRob->addSample(rob.size());
            histIq->addSample(iqCount);
            histLq->addSample(lqList.size());
            histSq->addSample(sqList.size());
        }

#ifdef HELIOS_AUDIT
        if (auditor) {
            AuditView view;
            view.cycle = cycle;
            view.rob = &rob;
            view.aq = &aq;
            view.lq = &lqList;
            view.sq = &sqList;
            view.iqCount = iqCount;
            view.drainCount = drainQueue.size();
            view.inflightCount = inflightCount;
            view.allocatedRegs = allocatedRegs;
            auditor->onCycleEnd(view);
        }
#endif

        // Sampled-simulation warmup boundary: latch the headline
        // counters the first cycle the commit count crosses the armed
        // target. Checked before the drain break so a window whose
        // warmup ends on the final cycle still latches.
        if (watch.atInsts && !watch.taken &&
            statGroup.get("commit.insts") >= watch.atInsts) {
            watch.taken = true;
            watch.cycles = cycle;
            watch.instructions = statGroup.get("commit.insts");
            watch.uops = statGroup.get("commit.uops");
            watch.fusedPairs = statGroup.get("pairs.csf_mem") +
                               statGroup.get("pairs.csf_other") +
                               statGroup.get("pairs.ncsf");
        }

        if (feedExhausted && replayQueue.empty() &&
            inflightCount == 0 &&
            drainQueue.empty() && decodePipe.empty() &&
            renamedQueue.empty() && aq.empty() && rob.empty()) {
            drained = true;
            break;
        }

        const uint64_t committed = statGroup.get("commit.insts");
        if (committed != last_commit_count) {
            last_commit_count = committed;
            last_progress_cycle = cycle;
        } else if (cycle - last_progress_cycle > 200000) {
            if (!rob.empty()) {
                const Uop *head = rob.front();
                warn("ROB head seq=%llu pc=0x%llx fused=%d "
                     "ncsReady=%d notReady=%d issued=%d done=%d",
                     static_cast<unsigned long long>(head->seq),
                     static_cast<unsigned long long>(head->dyn.pc),
                     int(head->fusion), int(head->ncsReady),
                     head->notReady, int(head->issued),
                     int(head->done));
            }
            panic("pipeline deadlock at cycle %llu (committed %llu)",
                  static_cast<unsigned long long>(cycle),
                  static_cast<unsigned long long>(committed));
        }
    }

    if (feedExhausted && inflightCount == 0 && allocatedRegs != 0)
        warn("PRF leak: %u registers still allocated at drain",
             allocatedRegs);
    AUDIT_HOOK(finalize(drained, cycle));
#ifndef HELIOS_AUDIT
    (void)drained;
#endif

    if (profiler)
        profiler->finalize(cycle);

    literalCounter("cycles") += cycle;
    PipelineResult result;
    result.cycles = cycle;
    result.instructions = statGroup.get("commit.insts");
    result.uops = statGroup.get("commit.uops");
    return result;
}

} // namespace helios
