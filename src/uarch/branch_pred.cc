#include "uarch/branch_pred.hh"

namespace helios
{

// --------------------------------------------------------------------
// TAGE
// --------------------------------------------------------------------

Tage::Tage()
{
    base.resize(1u << baseBits);
    for (auto &counter : base)
        counter.set(2); // weakly taken
    // Geometric history lengths, 4 .. ~160.
    unsigned length = 4;
    for (unsigned t = 0; t < numTables; ++t) {
        tagged[t].resize(1u << tableBits);
        historyLengths[t] = length;
        length = length * 17 / 10 + 1;
    }
}

uint64_t
Tage::foldHistory(unsigned length, unsigned bits) const
{
    uint64_t folded = 0;
    unsigned consumed = 0;
    while (consumed < length) {
        const unsigned chunk = std::min(length - consumed, bits);
        folded ^= (ghist >> consumed) & ((1ULL << chunk) - 1);
        consumed += chunk;
    }
    return folded & ((1ULL << bits) - 1);
}

unsigned
Tage::tableIndex(unsigned table, uint64_t pc) const
{
    const uint64_t folded = foldHistory(
        std::min<unsigned>(historyLengths[table], 63), tableBits);
    return ((pc >> 2) ^ (pc >> (tableBits - 2)) ^ folded ^
            (pathHist >> (table + 1))) &
           ((1u << tableBits) - 1);
}

uint16_t
Tage::tableTag(unsigned table, uint64_t pc) const
{
    const uint64_t folded = foldHistory(
        std::min<unsigned>(historyLengths[table], 63), tagBits);
    const uint64_t folded2 = foldHistory(
        std::min<unsigned>(historyLengths[table], 63), tagBits - 1);
    return ((pc >> 2) ^ folded ^ (folded2 << 1)) &
           ((1u << tagBits) - 1);
}

bool
Tage::predict(uint64_t pc)
{
    last.provider = -1;
    last.altProvider = -1;

    for (int t = numTables - 1; t >= 0; --t) {
        last.indices[t] = tableIndex(t, pc);
        last.tags[t] = tableTag(t, pc);
    }

    for (int t = numTables - 1; t >= 0; --t) {
        const TaggedEntry &entry = tagged[t][last.indices[t]];
        if (entry.tag != last.tags[t])
            continue;
        if (last.provider < 0) {
            last.provider = t;
            last.providerPred = entry.ctr.predictTaken();
        } else if (last.altProvider < 0) {
            last.altProvider = t;
            last.altPred = entry.ctr.predictTaken();
            break;
        }
    }

    const bool base_pred = base[(pc >> 2) & ((1u << baseBits) - 1)]
                               .isHigh();
    if (last.provider < 0)
        return base_pred;
    if (last.altProvider < 0)
        last.altPred = base_pred;

    // Weak newly-allocated entries defer to the alternate prediction.
    const TaggedEntry &provider =
        tagged[last.provider][last.indices[last.provider]];
    if (provider.ctr.isWeak() && provider.useful.value() == 0)
        return last.altPred;
    return last.providerPred;
}

void
Tage::update(uint64_t pc, bool taken)
{
    const unsigned base_index = (pc >> 2) & ((1u << baseBits) - 1);

    if (last.provider >= 0) {
        TaggedEntry &provider = tagged[last.provider]
                                      [last.indices[last.provider]];
        const bool correct = last.providerPred == taken;
        provider.ctr.update(taken);
        if (last.providerPred != last.altPred) {
            if (correct)
                provider.useful.increment();
            else
                provider.useful.decrement();
        }
        // Allocate a longer-history entry on a misprediction.
        if (!correct)
            goto allocate;
        return;
    }

    // Bimodal provided the prediction.
    if (base[base_index].isHigh() != taken)
        goto allocate;
    base[base_index].set(
        taken ? std::min(3, base[base_index].value() + 1)
              : std::max(0, int(base[base_index].value()) - 1));
    return;

  allocate:
    if (taken)
        base[base_index].increment();
    else
        base[base_index].decrement();
    {
        const int start = last.provider + 1;
        for (unsigned t = start; t < numTables; ++t) {
            TaggedEntry &entry = tagged[t][last.indices[t]];
            if (entry.useful.value() == 0) {
                entry.tag = last.tags[t];
                entry.ctr.set(taken ? 0 : -1);
                entry.useful.reset();
                break;
            }
            entry.useful.decrement();
        }
    }
}

void
Tage::updateHistory(bool taken)
{
    ghist = (ghist << 1) | (taken ? 1 : 0);
    pathHist = (pathHist << 1) ^ (taken ? 3 : 1);
}

// --------------------------------------------------------------------
// BTB
// --------------------------------------------------------------------

Btb::Btb()
{
    entries.resize(numSets * numWays);
}

uint64_t
Btb::lookup(uint64_t pc) const
{
    const unsigned set = (pc >> 2) & (numSets - 1);
    const uint64_t tag = pc >> 2;
    for (unsigned way = 0; way < numWays; ++way) {
        const Entry &entry = entries[set * numWays + way];
        if (entry.valid && entry.tag == tag)
            return entry.target;
    }
    return 0;
}

void
Btb::update(uint64_t pc, uint64_t target)
{
    const unsigned set = (pc >> 2) & (numSets - 1);
    const uint64_t tag = pc >> 2;
    ++tick;
    Entry *victim = nullptr;
    for (unsigned way = 0; way < numWays; ++way) {
        Entry &entry = entries[set * numWays + way];
        if (entry.valid && entry.tag == tag) {
            entry.target = target;
            entry.lru = tick;
            return;
        }
        if (!entry.valid) {
            victim = &entry;
        } else if (!victim ||
                   (victim->valid && entry.lru < victim->lru)) {
            victim = &entry;
        }
    }
    victim->valid = true;
    victim->tag = tag;
    victim->target = target;
    victim->lru = tick;
}

// --------------------------------------------------------------------
// RAS
// --------------------------------------------------------------------

void
ReturnAddressStack::push(uint64_t addr)
{
    top = (top + 1) % depth;
    stack[top] = addr;
    if (count < depth)
        ++count;
}

uint64_t
ReturnAddressStack::pop()
{
    if (count == 0)
        return 0;
    const uint64_t addr = stack[top];
    top = (top + depth - 1) % depth;
    --count;
    return addr;
}

// --------------------------------------------------------------------
// Combined predictor
// --------------------------------------------------------------------

bool
BranchPredictor::predictAndCheck(uint64_t pc, const Instruction &inst,
                                 bool taken, uint64_t target)
{
    ++lookups;
    bool correct = true;

    if (inst.isCondBranch()) {
        const bool pred_taken = tage.predict(pc);
        tage.update(pc, taken);
        tage.updateHistory(taken);
        if (pred_taken != taken) {
            correct = false;
        } else if (taken) {
            // Direction right: the target must come from the BTB.
            correct = btb.lookup(pc) == target;
        }
        // BTBs hold taken targets only.
        if (taken)
            btb.update(pc, target);
    } else if (inst.op == Op::Jal) {
        // Direct jump: target comes from the BTB (or decode); treat a
        // BTB miss as a (cheap, but modeled) front-end redirect.
        correct = btb.lookup(pc) == target;
        btb.update(pc, target);
        if (inst.rd == RegRa)
            ras.push(pc + 4);
    } else if (inst.op == Op::Jalr) {
        const bool is_return = inst.rd == RegZero && inst.rs1 == RegRa;
        if (is_return) {
            correct = !ras.empty() && ras.pop() == target;
        } else {
            correct = btb.lookup(pc) == target;
            btb.update(pc, target);
            if (inst.rd == RegRa)
                ras.push(pc + 4);
        }
    }

    if (!correct)
        ++mispredicts;
    return correct;
}

} // namespace helios
