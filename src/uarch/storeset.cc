#include "uarch/storeset.hh"

namespace helios
{

StoreSets::StoreSets()
{
    ssit.assign(ssitEntries, -1);
    lfst.assign(lfstEntries, invalidSeq);
}

unsigned
StoreSets::ssitIndex(uint64_t pc) const
{
    return (pc >> 2) & (ssitEntries - 1);
}

uint64_t
StoreSets::loadDependence(uint64_t load_pc) const
{
    const int32_t set = ssit[ssitIndex(load_pc)];
    if (set < 0)
        return invalidSeq;
    return lfst[set % lfstEntries];
}

uint64_t
StoreSets::storeRenamed(uint64_t store_pc, uint64_t store_seq)
{
    const int32_t set = ssit[ssitIndex(store_pc)];
    if (set < 0)
        return invalidSeq;
    const uint64_t previous = lfst[set % lfstEntries];
    lfst[set % lfstEntries] = store_seq;
    return previous;
}

void
StoreSets::storeCompleted(uint64_t store_pc, uint64_t store_seq)
{
    const int32_t set = ssit[ssitIndex(store_pc)];
    if (set >= 0 && lfst[set % lfstEntries] == store_seq)
        lfst[set % lfstEntries] = invalidSeq;
}

void
StoreSets::trainViolation(uint64_t load_pc, uint64_t store_pc)
{
    const unsigned load_index = ssitIndex(load_pc);
    const unsigned store_index = ssitIndex(store_pc);
    const int32_t load_set = ssit[load_index];
    const int32_t store_set = ssit[store_index];

    if (load_set < 0 && store_set < 0) {
        const int32_t set = int32_t(nextSetId++ % lfstEntries);
        ssit[load_index] = set;
        ssit[store_index] = set;
    } else if (load_set >= 0 && store_set < 0) {
        ssit[store_index] = load_set;
    } else if (load_set < 0 && store_set >= 0) {
        ssit[load_index] = store_set;
    } else {
        // Merge: both adopt the smaller set id (declining-id rule).
        const int32_t winner = std::min(load_set, store_set);
        ssit[load_index] = winner;
        ssit[store_index] = winner;
    }
}

void
StoreSets::age()
{
    ssit.assign(ssitEntries, -1);
}

void
StoreSets::squash(uint64_t min_squashed_seq)
{
    for (uint64_t &seq : lfst)
        if (seq != invalidSeq && seq >= min_squashed_seq)
            seq = invalidSeq;
}

} // namespace helios
