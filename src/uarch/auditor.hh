/**
 * @file
 * Per-cycle invariant auditor for the out-of-order pipeline.
 *
 * The timing model is trace-driven, so a fusion bug that drops a µ-op,
 * reorders a store, or leaks a ROB entry still produces a plausible
 * IPC table. The auditor mirrors the dynamic stream through hook
 * events and machine-checks the invariants every legal execution must
 * satisfy:
 *
 *  - commit order is strictly monotonic in (head) sequence number;
 *  - every fetched µ-op is exactly-once committed or squashed — no
 *    leaks from the in-flight set, no double commits;
 *  - the LQ/SQ/ROB stay in program order and structural limits (ROB,
 *    AQ, IQ, LQ, SQ, physical registers) are never exceeded;
 *  - fused pairs obey the idiom legality rules: consecutive pairs
 *    match Table I, memory pairs are same-kind, store pairs share a
 *    base register (unless DBR stores are enabled), a pair's combined
 *    access fits the fusion region, no store sits in a store pair's
 *    catalyst, and a pair that consumed a catalyst-produced source
 *    issued only after that producer completed;
 *  - unfuse/replay restores the unfused µ-op count (the tail nucleus
 *    of an unfused pair commits exactly once on its own).
 *
 * The auditor is passive: it records violations (with the offending
 * seq and cycle for replay) instead of aborting, so a harness can
 * collect a machine-readable report across many runs. Pipeline hook
 * call sites compile away entirely unless the HELIOS_AUDIT CMake
 * option is on; the class itself is always built so unit tests can
 * drive it directly.
 */

#ifndef UARCH_AUDITOR_HH
#define UARCH_AUDITOR_HH

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ring.hh"
#include "uarch/params.hh"
#include "uarch/uop.hh"

namespace helios
{

/** True when the pipeline's hook call sites were compiled in. */
constexpr bool
auditHooksCompiled()
{
#ifdef HELIOS_AUDIT
    return true;
#else
    return false;
#endif
}

/** One detected invariant violation. */
struct AuditViolation
{
    std::string invariant; ///< dotted invariant name, e.g. "commit.order"
    uint64_t seq = 0;      ///< offending sequence number (0 if n/a)
    uint64_t cycle = 0;    ///< cycle the violation was detected
    std::string detail;    ///< human-readable specifics

    /** One-object JSON rendering. */
    std::string toJson() const;
};

/** Read-only snapshot of the pipeline structures for per-cycle checks. */
struct AuditView
{
    uint64_t cycle = 0;
    const RingBuffer<Uop *> *rob = nullptr;
    const RingBuffer<Uop *> *aq = nullptr;
    const RingBuffer<Uop *> *lq = nullptr;
    const RingBuffer<Uop *> *sq = nullptr;
    unsigned iqCount = 0;
    size_t drainCount = 0;
    size_t inflightCount = 0;
    unsigned allocatedRegs = 0;
};

class PipelineAuditor
{
  public:
    explicit PipelineAuditor(const CoreParams &params);

    // ---- event hooks (called by the pipeline, or directly by tests) --
    /** A µ-op entered the machine (first fetch or post-squash refetch). */
    void onFetch(const Uop &uop, uint64_t cycle);

    /**
     * A fused pair formed. @a absorbed is true when the tail µ-op
     * leaves the machine immediately (consecutive and oracle fusion);
     * predicted pairs absorb their tail later, at marker validation.
     */
    void onFusePair(const Uop &head, const DynInst &tail,
                    FusionKind kind, bool absorbed, uint64_t cycle);

    /** A predicted pair's tail marker validated at Dispatch. */
    void onTailAbsorbed(uint64_t tail_seq, uint64_t head_seq,
                        uint64_t cycle);

    /** A pending pair unfused; the tail re-dispatches on its own. */
    void onUnfuse(const Uop &head, uint64_t tail_seq, uint64_t cycle);

    /** A µ-op issued (execution latency now scheduled). */
    void onIssue(const Uop &uop, uint64_t cycle);

    /** The ROB head committed. */
    void onCommit(const Uop &uop, uint64_t cycle);

    /** A µ-op was squashed (it may be refetched later). */
    void onSquash(const Uop &uop, uint64_t cycle);

    /** End-of-cycle structural checks. */
    void onCycleEnd(const AuditView &view);

    /**
     * End-of-run accounting. @a drained is true when the pipeline
     * emptied naturally (exactly-once checks only make sense then;
     * an instruction- or cycle-budget abort legitimately leaves
     * in-flight work behind).
     */
    void finalize(bool drained, uint64_t cycle);

    // ---- results ----
    bool ok() const { return theViolations.empty(); }
    const std::vector<AuditViolation> &violations() const
    {
        return theViolations;
    }

    /** Total invariant checks evaluated (sanity that hooks fired). */
    uint64_t checksPerformed() const { return checks; }
    uint64_t uopsAudited() const { return fetchEvents; }

    /** Machine-readable report: {"ok":..., "violations":[...], ...}. */
    std::string toJson() const;

    /** Cap on fully-recorded violations (repeats are only counted). */
    static constexpr size_t maxRecorded = 64;

  private:
    /** Lifecycle of one sequence number. */
    enum class SeqState : uint8_t
    {
        InFlight, ///< fetched, not yet committed/absorbed
        Absorbed, ///< tail nucleus folded into a fused head
        Committed,
    };

    struct Rec
    {
        DynInst dyn;
        SeqState state = SeqState::InFlight;
        bool issued = false;
        /** Head or absorbed tail of a fused pair (possibly already
         *  committed); its registers arrive at per-half latencies the
         *  mirror cannot observe, so timing checks skip it. */
        bool partOfPair = false;
        uint64_t issueCycle = 0;
        uint64_t doneCycle = 0;
    };

    struct PairInfo
    {
        uint64_t tailSeq = 0;
        FusionKind kind = FusionKind::None;
        bool fpInitiated = false;
    };

    /** Committed fused memory pair, kept until its catalysts commit. */
    struct CommittedPair
    {
        uint64_t headSeq = 0;
        uint64_t tailSeq = 0;
        uint64_t tailBegin = 0; ///< tail nucleus byte range
        uint64_t tailEnd = 0;
        uint64_t issueCycle = 0;
    };

    Rec *findRec(uint64_t seq);
    void report(const char *invariant, uint64_t seq, uint64_t cycle,
                std::string detail);
    void checkPairAtCommit(const Uop &uop, const Rec &head_rec,
                           uint64_t cycle);
    void checkOrderedScan(const AuditView &view);
    void pruneCommitted();

    const CoreParams params;

    std::unordered_map<uint64_t, Rec> recs;
    std::map<uint64_t, PairInfo> fusedPairs; ///< keyed by head seq
    std::vector<CommittedPair> committedLoadPairs;
    std::vector<CommittedPair> committedStorePairs;

    std::vector<AuditViolation> theViolations;
    std::map<std::string, uint64_t> violationCounts;

    uint64_t checks = 0;
    uint64_t fetchEvents = 0;
    uint64_t committedSeqs = 0;
    uint64_t minSeq = ~0ULL;
    uint64_t maxSeq = 0;
    bool anyFetched = false;
    bool haveCommitted = false;
    uint64_t lastCommitSeq = 0;
    uint64_t cyclesAudited = 0;

    /** Full order scans run every this many cycles (sizes: every cycle). */
    static constexpr uint64_t scanInterval = 64;
    /** Committed records are pruned once this far behind commit. */
    static constexpr uint64_t pruneWindow = 8192;
};

} // namespace helios

#endif // UARCH_AUDITOR_HH
