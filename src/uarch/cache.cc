#include "uarch/cache.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace helios
{

Cache::Cache(unsigned size_bytes, unsigned ways, unsigned line_bytes)
    : numSets(size_bytes / (ways * line_bytes)), numWays(ways)
{
    helios_assert(isPowerOf2(numSets), "cache sets not a power of two");
    this->ways.resize(numSets * numWays);
}

bool
Cache::access(uint64_t line_addr)
{
    const unsigned set = line_addr & (numSets - 1);
    const uint64_t tag = line_addr >> floorLog2(numSets);

    ++tick;
    for (unsigned i = 0; i < numWays; ++i) {
        Way &way = ways[set * numWays + i];
        if (way.valid && way.tag == tag) {
            way.lru = tick;
            ++hits;
            return true;
        }
    }

    Way *victim = nullptr;
    for (unsigned i = 0; i < numWays; ++i) {
        Way &way = ways[set * numWays + i];
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (!victim || way.lru < victim->lru)
            victim = &way;
    }
    ++misses;
    victim->valid = true;
    victim->tag = tag;
    victim->lru = tick;
    return false;
}

bool
Cache::probe(uint64_t line_addr) const
{
    const unsigned set = line_addr & (numSets - 1);
    const uint64_t tag = line_addr >> floorLog2(numSets);
    for (unsigned i = 0; i < numWays; ++i) {
        const Way &way = ways[set * numWays + i];
        if (way.valid && way.tag == tag)
            return true;
    }
    return false;
}

CacheHierarchy::CacheHierarchy(const CoreParams &p)
    : l1i(p.l1iBytes, p.l1iWays, p.lineBytes),
      l1d(p.l1dBytes, p.l1dWays, p.lineBytes),
      l2(p.l2Bytes, p.l2Ways, p.lineBytes),
      l3(p.l3Bytes, p.l3Ways, p.lineBytes),
      params(p)
{}

unsigned
CacheHierarchy::dataAccess(uint64_t line_addr)
{
    if (l1d.access(line_addr))
        return params.l1Latency;
    if (l2.access(line_addr))
        return params.l2Latency;
    if (l3.access(line_addr))
        return params.l3Latency;
    return params.memLatency;
}

unsigned
CacheHierarchy::instAccess(uint64_t line_addr)
{
    if (l1i.access(line_addr))
        return 0;
    if (l2.access(line_addr))
        return params.l2Latency;
    if (l3.access(line_addr))
        return params.l3Latency;
    return params.memLatency;
}

unsigned
CacheHierarchy::storeDrain(uint64_t line_addr)
{
    // A store retires into the L1 in a cycle when its line is present.
    // Misses hold the store-queue entry for part of the fill latency;
    // the remainder overlaps with younger fills through the write
    // buffers. This occupancy is the SQ pressure that store-pair
    // fusion relieves (Section V-B3).
    if (l1d.access(line_addr))
        return 1;
    if (l2.access(line_addr))
        return 1 + params.l2Latency / 4;
    if (l3.access(line_addr))
        return 1 + params.l3Latency / 4;
    return 1 + params.memLatency / 7;
}

} // namespace helios
