/**
 * @file
 * Slab allocator with a free list for in-flight µ-op records.
 *
 * The pipeline allocates one Uop per fetched µ-op and frees it at
 * commit, drain or squash — millions of times per run. Routing that
 * churn through the general-purpose heap (the old
 * unordered_map<seq, unique_ptr<Uop>>) costs an allocator round-trip
 * plus cold memory per µ-op. The pool hands out slots from 256-entry
 * slabs and recycles released slots LIFO, so the working set is a few
 * cache-resident slabs and a recycled Uop even keeps the heap
 * capacity of its three dependency vectors.
 *
 * Recycling must be *exact*: a recycled slot is reset to
 * freshly-constructed state (Uop::recycle()), so pooled and
 * heap-per-µ-op runs are bit-identical. CoreParams::poolRecycling ==
 * false selects a debug fallback that never reuses slots — every
 * alloc() gets a pristine slab entry — so a suspected recycling bug
 * can be bisected by diffing the two modes (see
 * tests/test_perf_structures.cc).
 */

#ifndef UARCH_UOP_POOL_HH
#define UARCH_UOP_POOL_HH

#include <memory>
#include <vector>

#include "uarch/uop.hh"

namespace helios
{

class UopPool
{
  public:
    explicit UopPool(bool recycle = true) : recycleMode(recycle) {}

    Uop *
    alloc()
    {
        if (!freeList.empty()) {
            Uop *uop = freeList.back();
            freeList.pop_back();
            uop->recycle();
            return uop;
        }
        if (slabs.empty() || slabUsed == slabSize) {
            slabs.push_back(std::make_unique<Uop[]>(slabSize));
            slabUsed = 0;
        }
        return &slabs.back()[slabUsed++];
    }

    void
    release(Uop *uop)
    {
        if (recycleMode)
            freeList.push_back(uop);
        // Debug fallback: leave the slot dead. The next alloc() draws
        // a pristine slab entry, so a recycling bug cannot couple two
        // µ-ops' state; the slabs still free wholesale with the pool.
    }

    size_t numSlabs() const { return slabs.size(); }
    bool recycling() const { return recycleMode; }

    static constexpr size_t slabSize = 256;

  private:
    std::vector<std::unique_ptr<Uop[]>> slabs;
    std::vector<Uop *> freeList;
    size_t slabUsed = 0;
    bool recycleMode;
};

} // namespace helios

#endif // UARCH_UOP_POOL_HH
