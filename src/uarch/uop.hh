/**
 * @file
 * The in-flight µ-op record used by the timing pipeline.
 */

#ifndef UARCH_UOP_HH
#define UARCH_UOP_HH

#include <cstdint>
#include <vector>

#include "fusion/fusion_predictor.hh"
#include "fusion/idiom.hh"
#include "sim/trace.hh"

namespace helios
{

/** How a µ-op came to be fused. */
enum class FusionKind : uint8_t
{
    None = 0,
    CsfMem,    ///< decode-time consecutive memory pair
    CsfOther,  ///< decode-time non-memory Table I idiom
    NcsfMem,   ///< AQ-time (predicted or oracle) memory pair
};

/**
 * Why a once-fused pair was broken before issue (profiling only;
 * inert when no profiler is attached). One byte on purpose — it rides
 * in every Uop.
 */
enum class ProfBreak : uint8_t
{
    None = 0,
    NestLimit,     ///< every NCSF nest level busy (fp_nest_limited)
    Deadlock,      ///< Deadlock-Tag propagation hit
    StoreCatalyst, ///< store in a store-pair catalyst window
    Serializing,   ///< serializing µ-op inside the catalyst
    LateRaw,       ///< tail source fed by a catalyst load
};

/** Stable lowercase name, e.g. "nest_limit" ("" for None). */
inline const char *
profBreakName(ProfBreak reason)
{
    switch (reason) {
      case ProfBreak::None: return "";
      case ProfBreak::NestLimit: return "nest_limit";
      case ProfBreak::Deadlock: return "deadlock";
      case ProfBreak::StoreCatalyst: return "store_catalyst";
      case ProfBreak::Serializing: return "serializing";
      case ProfBreak::LateRaw: return "late_raw";
    }
    return "";
}

/**
 * One µ-op flowing through the pipeline.
 *
 * A fused µ-op carries both nucleii (dyn = head, tailDyn = tail). An
 * NCSF tail nucleus additionally leaves a *tail marker* µ-op in the
 * Allocation Queue which consumes Rename/Dispatch slots and validates
 * the pending NCSF'd µ-op (Section IV-B).
 */
struct Uop
{
    uint64_t seq = 0;     ///< dynamic sequence number (head nucleus)
    uint64_t uid = 0;     ///< unique id (seq repeats after replay)
    DynInst dyn;
    uint16_t fetchHistory = 0; ///< global branch history at fetch

    // ---- control flow ----
    bool mispredictedBranch = false;

    // ---- fusion ----
    FusionKind fusion = FusionKind::None;
    Idiom idiom = Idiom::None;
    bool hasTail = false;
    DynInst tailDyn;
    bool isTailMarker = false;
    uint64_t pairSeq = 0;      ///< marker <-> fused-head linkage
    bool ncsReady = true;      ///< NCS Ready bit (Section IV-B2)
    bool tailRenamed = false;  ///< marker passed Rename (RAT updated)
    bool mustUnfuse = false;   ///< deadlock / store-catalyst / fence
    bool storeInCatalyst = false;
    bool serializingInCatalyst = false;
    bool fpInitiated = false;  ///< fusion came from the predictor
    /** Why a once-fused pair was broken (profiling only; first
     *  reason wins, None when never broken). One byte so it packs
     *  into the bool block — the Uop must not grow for a passive
     *  feature. */
    ProfBreak profBreak = ProfBreak::None;
    FpPrediction fpPred;

    /** Producers of the tail nucleus' sources, captured when the tail
     *  marker renames (the program-order-correct lookup point). */
    std::vector<uint64_t> tailProducers;


    // ---- rename state ----
    unsigned numDests = 0;
    int notReady = 0;
    std::vector<uint64_t> dependents; ///< woken by head-half completion
    std::vector<uint64_t> dependentsTail; ///< woken by tail half
    uint64_t waitStoreSeq = ~0ULL;    ///< store-set dependence

    // ---- issue ready list (intrusive, owned by Pipeline) ----
    // Doubly linked in ascending seq order so issue walks exactly the
    // ready µ-ops oldest-first, replacing the std::map rescan.
    Uop *readyPrev = nullptr;
    Uop *readyNext = nullptr;
    bool inReadyList = false;

    // ---- pipeline state ----
    bool inAq = false;
    bool renamed = false;
    bool dispatched = false;
    bool inIq = false;
    bool issued = false;
    bool headDone = false; ///< head-half result delivered
    bool tailDone = false; ///< tail-half result delivered
    bool done = false;     ///< fully complete (commit-eligible)
    bool committed = false;
    uint64_t fetchCycle = 0;
    uint64_t aqCycle = 0; ///< decode done, inserted into the AQ
    uint64_t renameCycle = 0;
    uint64_t dispatchCycle = 0;
    uint64_t issueCycle = 0;
    uint64_t doneCycle = 0;

    // ---- memory state ----
    bool addrKnown = false;
    uint64_t memBegin = 0; ///< effective byte range (both nucleii)
    uint64_t memEnd = 0;

    /**
     * Reset to freshly-constructed state while keeping the heap
     * capacity of the three dependency vectors, so a UopPool-recycled
     * slot is indistinguishable from a new Uop but allocation-free in
     * steady state. Exactness matters: pooled and heap-per-µ-op runs
     * must be bit-identical (tests/test_perf_structures.cc).
     */
    void
    recycle()
    {
        auto tail_producers = std::move(tailProducers);
        auto deps_head = std::move(dependents);
        auto deps_tail = std::move(dependentsTail);
        tail_producers.clear();
        deps_head.clear();
        deps_tail.clear();
        *this = Uop();
        tailProducers = std::move(tail_producers);
        dependents = std::move(deps_head);
        dependentsTail = std::move(deps_tail);
    }

    bool
    isLoad() const
    {
        return !isTailMarker &&
               (dyn.isLoad() || (hasTail && tailDyn.isLoad()));
    }

    bool
    isStore() const
    {
        return !isTailMarker &&
               (dyn.isStore() || (hasTail && tailDyn.isStore()));
    }

    bool isMem() const { return isLoad() || isStore(); }

    /** Committed architectural instructions this µ-op represents. */
    unsigned archInsts() const { return hasTail ? 2 : 1; }

    /** Combined access range of both nucleii (valid for mem µ-ops). */
    void
    computeMemRange()
    {
        bool have = false;
        if (dyn.inst.isMem()) {
            memBegin = dyn.effAddr;
            memEnd = dyn.effAddr + dyn.memSize();
            have = true;
        }
        if (hasTail && tailDyn.inst.isMem()) {
            if (have) {
                memBegin = std::min(memBegin, tailDyn.effAddr);
                memEnd = std::max(memEnd,
                                  tailDyn.effAddr + tailDyn.memSize());
            } else {
                memBegin = tailDyn.effAddr;
                memEnd = tailDyn.effAddr + tailDyn.memSize();
            }
        }
    }

    bool
    overlaps(uint64_t begin, uint64_t end) const
    {
        return memBegin < end && begin < memEnd;
    }
};

} // namespace helios

#endif // UARCH_UOP_HH
