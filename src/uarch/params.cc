#include "uarch/params.hh"

#include "common/logging.hh"

namespace helios
{

const char *
fusionModeName(FusionMode mode)
{
    switch (mode) {
      case FusionMode::None: return "NoFusion";
      case FusionMode::RiscvFusion: return "RISCVFusion";
      case FusionMode::CsfSbr: return "CSF-SBR";
      case FusionMode::RiscvFusionPP: return "RISCVFusion++";
      case FusionMode::Helios: return "Helios";
      case FusionMode::Oracle: return "OracleFusion";
    }
    return "?";
}

FusionMode
fusionModeFromName(const std::string &name)
{
    for (FusionMode mode :
         {FusionMode::None, FusionMode::RiscvFusion, FusionMode::CsfSbr,
          FusionMode::RiscvFusionPP, FusionMode::Helios,
          FusionMode::Oracle}) {
        if (name == fusionModeName(mode))
            return mode;
    }
    fatal("unknown fusion mode '%s'", name.c_str());
}

} // namespace helios
