#include "uarch/params.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace helios
{

const char *
fusionModeName(FusionMode mode)
{
    switch (mode) {
      case FusionMode::None: return "NoFusion";
      case FusionMode::RiscvFusion: return "RISCVFusion";
      case FusionMode::CsfSbr: return "CSF-SBR";
      case FusionMode::RiscvFusionPP: return "RISCVFusion++";
      case FusionMode::Helios: return "Helios";
      case FusionMode::Oracle: return "OracleFusion";
    }
    return "?";
}

FusionMode
fusionModeFromName(const std::string &name)
{
    for (FusionMode mode :
         {FusionMode::None, FusionMode::RiscvFusion, FusionMode::CsfSbr,
          FusionMode::RiscvFusionPP, FusionMode::Helios,
          FusionMode::Oracle}) {
        if (name == fusionModeName(mode))
            return mode;
    }
    fatal("unknown fusion mode '%s'", name.c_str());
}

uint64_t
configHash(const CoreParams &p)
{
    // `name=value;` pairs in a fixed order: adding a field appends to
    // the text (old digests change only when a *listed* field moves),
    // and renaming/reordering struct members cannot silently alias
    // two different configurations.
    std::string canon;
    canon.reserve(768);
    const auto field = [&canon](const char *name, uint64_t value) {
        canon += name;
        canon += '=';
        canon += std::to_string(value);
        canon += ';';
    };
    field("fetch_width", p.fetchWidth);
    field("decode_width", p.decodeWidth);
    field("rename_width", p.renameWidth);
    field("dispatch_width", p.dispatchWidth);
    field("commit_width", p.commitWidth);
    field("aq_size", p.aqSize);
    field("rob_size", p.robSize);
    field("iq_size", p.iqSize);
    field("lq_size", p.lqSize);
    field("sq_size", p.sqSize);
    field("num_phys_regs", p.numPhysRegs);
    field("frontend_depth", p.frontendDepth);
    field("mispredict_penalty", p.mispredictPenalty);
    field("alu_ports", p.aluPorts);
    field("mul_ports", p.mulPorts);
    field("div_ports", p.divPorts);
    field("load_ports", p.loadPorts);
    field("store_ports", p.storePorts);
    field("branch_ports", p.branchPorts);
    field("alu_latency", p.aluLatency);
    field("mul_latency", p.mulLatency);
    field("div_latency", p.divLatency);
    field("l1_latency", p.l1Latency);
    field("l2_latency", p.l2Latency);
    field("l3_latency", p.l3Latency);
    field("mem_latency", p.memLatency);
    field("forward_latency", p.forwardLatency);
    field("line_cross_penalty", p.lineCrossPenalty);
    field("l1i_bytes", p.l1iBytes);
    field("l1i_ways", p.l1iWays);
    field("l1d_bytes", p.l1dBytes);
    field("l1d_ways", p.l1dWays);
    field("l2_bytes", p.l2Bytes);
    field("l2_ways", p.l2Ways);
    field("l3_bytes", p.l3Bytes);
    field("l3_ways", p.l3Ways);
    field("line_bytes", p.lineBytes);
    canon += "fusion=";
    canon += fusionModeName(p.fusion);
    canon += ';';
    field("fusion_region_bytes", p.fusionRegionBytes);
    field("max_fusion_distance", p.maxFusionDistance);
    field("ncsf_nest_depth", p.ncsfNestDepth);
    field("fp_confidence_threshold", p.fpConfidenceThreshold);
    field("fp_kind", uint64_t(p.fpKind));
    field("fuse_dbr_store_pairs", p.fuseDbrStorePairs ? 1 : 0);
    return fnv1a(canon.data(), canon.size());
}

} // namespace helios
