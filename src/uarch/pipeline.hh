/**
 * @file
 * The cycle-level out-of-order core.
 *
 * A seven-stage model (Fetch, Decode, Allocation Queue, Rename,
 * Dispatch, Issue/Execute, Commit) in the style of González et al.,
 * configured as an Icelake-class machine (Table II). The pipeline is
 * trace-driven: it consumes the committed dynamic instruction stream
 * from the functional simulator and models speculation as front-end
 * bubbles plus squash/replay of in-flight work (DESIGN.md §6).
 *
 * All fusion flavours live here: consecutive fusion at Decode, the
 * Helios predictive NCSF/NCTF/DBR machinery across AQ / Rename /
 * Dispatch / Execute / Commit, and the oracle.
 */

#ifndef UARCH_PIPELINE_HH
#define UARCH_PIPELINE_HH

#include <deque>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "fusion/fp_base.hh"
#include "fusion/uch.hh"
#include "sim/trace.hh"
#include "uarch/branch_pred.hh"
#include "uarch/cache.hh"
#include "uarch/params.hh"
#include "uarch/storeset.hh"
#include "uarch/uop.hh"

namespace helios
{

class FusionProfiler;
class Histogram;
class LifecycleTracer;
class PipelineAuditor;

/** Result summary of a pipeline run. */
struct PipelineResult
{
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t uops = 0;

    double
    ipc() const
    {
        return cycles ? double(instructions) / double(cycles) : 0.0;
    }
};

class Pipeline
{
  public:
    Pipeline(const CoreParams &params, InstructionFeed &feed);
    ~Pipeline();

    /** Run until the feed is exhausted and the pipeline drains. */
    PipelineResult run();

    /** Statistics collected during run(). */
    const StatGroup &stats() const { return statGroup; }
    StatGroup &stats() { return statGroup; }

    /**
     * Attach a per-cycle invariant auditor (non-owning; must outlive
     * run()). Requires the HELIOS_AUDIT build option: when the hooks
     * are compiled out, attaching a non-null auditor is a fatal()
     * configuration error rather than a silently unaudited run.
     */
    void attachAuditor(PipelineAuditor *auditor);

    /** Per-PC fusion-site profile, when CoreParams::profile asked for
     *  one (nullptr otherwise). Finalized when run() returns. */
    const FusionProfiler *fusionProfiler() const
    {
        return profiler.get();
    }

  private:
    // ---- per-cycle stages (called in reverse pipeline order) ----
    void commitStage();
    void commitStageImpl();
    void drainStores();
    void completeExecution();
    void issueStage();
    void dispatchStage();
    void renameStage();
    void aqInsertStage();
    void fetchStage();

    // ---- fusion ----
    void applyConsecutiveFusion(std::vector<Uop *> &group);
    bool tryPredictedFusion(Uop *tail);
    bool tryOracleFusion(Uop *tail);
    bool oracleDependent(const Uop *head, const Uop *tail) const;
    bool catalystWritesTailSource(const Uop *head,
                                  const Uop *tail) const;
    void unfuseInPlace(Uop *head);
    void countFusedPair(const Uop *head);
    void traceCommit(const Uop *uop) const;

    // ---- rename helpers ----
    void renameNormal(Uop *uop);
    bool renameMarker(Uop *uop);
    bool heliosDependent(const Uop *head, const Uop *marker) const;
    bool tailDependsOnCatalystLoad(const Uop *head,
                                   const Uop *marker) const;
    bool attachDependency(Uop *consumer, uint64_t producer_seq,
                          int reg);
    void addSourceDependency(Uop *uop, unsigned reg);
    void addStoreSetDependency(Uop *uop);

    // ---- execute helpers ----
    unsigned executeStore(Uop *uop);
    bool validateFusedAddresses(Uop *uop);
    void scheduleCompletion(Uop *uop, unsigned latency);
    void scheduleSplitCompletion(Uop *uop, unsigned head_latency,
                                 unsigned tail_latency);
    unsigned loadHalfLatency(uint64_t load_seq, uint64_t begin,
                             uint64_t end);
    void wakeDependents(Uop *uop);
    void maybeReady(Uop *uop);

    // ---- recovery ----
    void squashFrom(uint64_t seq_min, const char *reason);
    void resumeFetchAfter(uint64_t delay);

    // ---- bookkeeping ----
    Uop *findInflight(uint64_t seq) const;
    bool sourceIsReady(uint64_t producer_seq) const;

    /**
     * Hot-path counter access. Call sites must pass pointers with
     * static storage duration (string literals): the pointer itself
     * identifies the counter, so memoizing Stat addresses by pointer
     * turns the per-event string-keyed lookup (~28% of simulation
     * time) into a flat hash hit. Distinct literals with identical
     * content coalesce onto one Stat through the content-hashed
     * StatGroup index, paid once per pointer miss. Never pass a
     * temporary's c_str() — a later allocation could reuse the
     * address and alias a different counter; dynamic names go through
     * statGroup.counter() directly (see squashFrom). Stat references
     * are stable: StatGroup stores counters in a stable deque.
     */
    Stat &
    counter(const char *name)
    {
        auto [it, fresh] = statCache.try_emplace(name, nullptr);
        if (fresh)
            it->second = &statGroup.counter(name);
        return *it->second;
    }

    const CoreParams params;
    InstructionFeed &feed;

    PipelineAuditor *auditor = nullptr; ///< optional, non-owning
    LifecycleTracer *tracer = nullptr;  ///< optional, non-owning
    /** Owned; non-null only when CoreParams::profile is set. The
     *  profiler keeps all data private (no statGroup counters), so a
     *  profiled run's stat dump matches an unprofiled one. */
    std::unique_ptr<FusionProfiler> profiler;

    StatGroup statGroup;
    std::unordered_map<const char *, Stat *> statCache;

    // Telemetry histograms (live inside statGroup; non-null only when
    // CoreParams::sampleHistograms asked for per-cycle sampling).
    Histogram *histRob = nullptr;
    Histogram *histIq = nullptr;
    Histogram *histLq = nullptr;
    Histogram *histSq = nullptr;
    Histogram *histPairDistance = nullptr;
    Histogram *histFpAgreement = nullptr;

    // Per-cycle CPI attribution (see commitStage): the blocked-head
    // category of the current cycle, cleared each cycle.
    const char *cpiBlockReason = nullptr;
    unsigned commitsThisCycle = 0;
    uint64_t lastCpiCycle = ~0ULL; ///< double-attribution guard
    CacheHierarchy caches;
    BranchPredictor bpred;
    StoreSets storeSets;
    UnfusedCommittedHistory uch;
    std::unique_ptr<FusionPredictorBase> fusionPred;

    uint64_t cycle = 0;
    bool feedExhausted = false;

    // Master ownership of in-flight µ-ops.
    std::unordered_map<uint64_t, std::unique_ptr<Uop>> inflight;

    // Replayed (squashed) instructions to refetch, in program order.
    std::deque<DynInst> replayQueue;

    // Front end.
    struct DecodeGroup
    {
        std::vector<Uop *> uops;
        uint64_t readyCycle;
    };
    std::deque<DecodeGroup> decodePipe;
    uint64_t fetchBlockedUntil = 0;
    uint64_t fetchStallSeq = ~0ULL; ///< mispredicted branch in flight
    uint64_t lastFetchLine = ~0ULL;

    // Allocation Queue, rename output, ROB.
    std::deque<Uop *> aq;
    std::deque<Uop *> renamedQueue;
    std::deque<Uop *> rob;

    // Load/store queues (program order; drainQueue holds committed
    // stores until they retire into the cache).
    std::deque<Uop *> lqList;
    std::deque<Uop *> sqList;

    // Memory µ-ops whose effective address is still unknown, by seq.
    // A fused pair commits at the head's ROB slot, hoisting its tail
    // past the catalyst window — it must wait for every catalyst
    // memory access to resolve first, or an alias could slip past the
    // LQ/SQ snoops (which only cover pre-commit µ-ops).
    std::set<uint64_t> unresolvedLoads;
    std::set<uint64_t> unresolvedStores;

    // Issue bookkeeping.
    std::map<uint64_t, Uop *> readySet; // ordered by age
    struct Event
    {
        uint64_t cycle;
        uint64_t seq;
        uint64_t uid;
        uint8_t kind; ///< 0: head-half, 1: tail-half, 2: final
        bool operator>(const Event &o) const { return cycle > o.cycle; }
    };
    std::priority_queue<Event, std::vector<Event>, std::greater<>>
        events;

    unsigned iqCount = 0;
    unsigned allocatedRegs = 0;
    uint64_t commitCount = 0;
    uint64_t divBusyUntil = 0;
    uint64_t nextUid = 1;

    // Deferred flush request raised during issue (at most one/cycle).
    uint64_t flushRequestSeq = ~0ULL;
    const char *flushReason = nullptr;

    // Post-commit store drain.
    struct DrainEntry
    {
        std::unique_ptr<Uop> uop;
    };
    std::deque<DrainEntry> drainQueue;
    uint64_t drainBusyUntil = 0;

    // Rename-side Helios state.
    struct RatEntry
    {
        uint64_t producerSeq = 0; ///< 0: architecturally ready
    };
    std::vector<RatEntry> rat;

    std::vector<Uop *> activeNcsHeads; ///< renamed, marker not yet
    unsigned pendingNcsf = 0;          ///< fused-in-AQ, marker pending

    // Dyn records of arch instructions fetched so far (for squash
    // replay we only need in-flight ones; committed are dropped).
    uint64_t nextFetchSeq = 0;
};

} // namespace helios

#endif // UARCH_PIPELINE_HH
