/**
 * @file
 * The cycle-level out-of-order core.
 *
 * A seven-stage model (Fetch, Decode, Allocation Queue, Rename,
 * Dispatch, Issue/Execute, Commit) in the style of González et al.,
 * configured as an Icelake-class machine (Table II). The pipeline is
 * trace-driven: it consumes the committed dynamic instruction stream
 * from the functional simulator and models speculation as front-end
 * bubbles plus squash/replay of in-flight work (DESIGN.md §6).
 *
 * All fusion flavours live here: consecutive fusion at Decode, the
 * Helios predictive NCSF/NCTF/DBR machinery across AQ / Rename /
 * Dispatch / Execute / Commit, and the oracle.
 */

#ifndef UARCH_PIPELINE_HH
#define UARCH_PIPELINE_HH

#include <array>
#include <deque>
#include <memory>
#include <queue>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/ring.hh"
#include "common/stats.hh"
#include "fusion/fp_base.hh"
#include "fusion/uch.hh"
#include "sim/trace.hh"
#include "uarch/branch_pred.hh"
#include "uarch/cache.hh"
#include "uarch/mem_filter.hh"
#include "uarch/params.hh"
#include "uarch/storeset.hh"
#include "uarch/uop.hh"
#include "uarch/uop_pool.hh"

namespace helios
{

class FusionProfiler;
class Histogram;
class LifecycleTracer;
class PipelineAuditor;

/** Result summary of a pipeline run. */
struct PipelineResult
{
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t uops = 0;

    double
    ipc() const
    {
        return cycles ? double(instructions) / double(cycles) : 0.0;
    }
};

class Pipeline
{
  public:
    Pipeline(const CoreParams &params, InstructionFeed &feed);
    ~Pipeline();

    /** Run until the feed is exhausted and the pipeline drains. */
    PipelineResult run();

    /** Statistics collected during run(). */
    const StatGroup &stats() const { return statGroup; }
    StatGroup &stats() { return statGroup; }

    /**
     * Attach a per-cycle invariant auditor (non-owning; must outlive
     * run()). Requires the HELIOS_AUDIT build option: when the hooks
     * are compiled out, attaching a non-null auditor is a fatal()
     * configuration error rather than a silently unaudited run.
     */
    void attachAuditor(PipelineAuditor *auditor);

    /** Per-PC fusion-site profile, when CoreParams::profile asked for
     *  one (nullptr otherwise). Finalized when run() returns. */
    const FusionProfiler *fusionProfiler() const
    {
        return profiler.get();
    }

    /**
     * Warmup/measurement split for sampled simulation: a snapshot of
     * the headline counters latched the first cycle the committed
     * instruction count reaches a target. The measured window of an
     * interval cell is then (final totals − snapshot), so warmup
     * cycles never pollute the timed sample. Commit is up to
     * commitWidth wide, so `instructions` records the exact count at
     * the latch (≥ the armed target by at most commitWidth−1);
     * consumers subtract using it, not the target. Pure observer —
     * arming a watch cannot change any simulated number.
     */
    struct CommitWatch
    {
        uint64_t atInsts = 0; ///< armed target (0: disarmed)
        bool taken = false;   ///< snapshot latched
        uint64_t cycles = 0;
        uint64_t instructions = 0;
        uint64_t uops = 0;
        uint64_t fusedPairs = 0; ///< csf_mem + csf_other + ncsf
    };

    /** Arm the commit watch; call before run(). 0 disarms. */
    void armCommitWatch(uint64_t at_insts) { watch.atInsts = at_insts; }

    /** The (possibly latched) watch; valid after run() returns. */
    const CommitWatch &commitWatch() const { return watch; }

  private:
    // ---- per-cycle stages (called in reverse pipeline order) ----
    void commitStage();
    void commitStageImpl();
    void drainStores();
    void completeExecution();
    void issueStage();
    void dispatchStage();
    void renameStage();
    void aqInsertStage();
    void fetchStage();

    // ---- fusion ----
    void applyConsecutiveFusion(std::vector<Uop *> &group);
    bool tryPredictedFusion(Uop *tail);
    bool tryOracleFusion(Uop *tail);
    bool oracleDependent(const Uop *head, const Uop *tail) const;
    bool catalystWritesTailSource(const Uop *head,
                                  const Uop *tail) const;
    void unfuseInPlace(Uop *head);
    void countFusedPair(const Uop *head);
    void traceCommit(const Uop *uop) const;

    // ---- rename helpers ----
    void renameNormal(Uop *uop);
    bool renameMarker(Uop *uop);
    bool heliosDependent(const Uop *head, const Uop *marker) const;
    bool tailDependsOnCatalystLoad(const Uop *head,
                                   const Uop *marker) const;
    bool attachDependency(Uop *consumer, uint64_t producer_seq,
                          int reg);
    void addSourceDependency(Uop *uop, unsigned reg);
    void addStoreSetDependency(Uop *uop);

    // ---- execute helpers ----
    unsigned executeStore(Uop *uop);
    bool validateFusedAddresses(Uop *uop);
    void scheduleCompletion(Uop *uop, unsigned latency);
    void scheduleSplitCompletion(Uop *uop, unsigned head_latency,
                                 unsigned tail_latency);
    unsigned loadHalfLatency(uint64_t load_seq, uint64_t begin,
                             uint64_t end);
    void wakeDependents(Uop *uop);
    void maybeReady(Uop *uop);

    // ---- recovery ----
    void squashFrom(uint64_t seq_min, const char *reason);
    void resumeFetchAfter(uint64_t delay);

    // ---- bookkeeping ----
    /**
     * O(1) in-flight lookup: seq & inflightMask picks the slot of a
     * direct-mapped ring sized to at least twice the maximum number
     * of in-flight sequence numbers, and the stored µ-op's own seq
     * disambiguates — absent or long-retired seqs (e.g. a committed
     * producer queried by sourceIsReady) miss on the compare.
     */
    Uop *
    findInflight(uint64_t seq) const
    {
        Uop *uop = inflightSlots[seq & inflightMask];
        return uop && uop->seq == seq ? uop : nullptr;
    }

    void inflightInsert(Uop *uop);
    Uop *inflightErase(uint64_t seq);
    bool sourceIsReady(uint64_t producer_seq) const;

    // ---- issue ready list (ascending seq, intrusive links) ----
    void readyInsert(Uop *uop);
    void readyRemove(Uop *uop);

    /**
     * Hot-path counter access, memoized by *content* in a
     * string_view-keyed map: identical names from different call
     * sites or translation units always coalesce onto one Stat, and
     * temporaries (e.g. squashFrom's formatted flush reason) are safe
     * because the cache key views the name interned inside StatGroup
     * (stable for the group's lifetime), never the caller's storage.
     * Stat references are stable: StatGroup stores counters in a
     * deque. The per-µop hottest counters skip even this hash via the
     * HotStats references bound at construction.
     */
    Stat &
    counter(std::string_view name)
    {
        auto it = statCache.find(name);
        if (it != statCache.end())
            return *it->second;
        auto [stable_name, stat] = statGroup.counterEntry(name);
        statCache.emplace(std::string_view(*stable_name), stat);
        return *stat;
    }

    /**
     * Even cheaper counter access for call sites that pass *string
     * literals*: a direct-mapped memo keyed on the literal's address
     * skips the string hash entirely (one pointer compare on the hot
     * path). Safe only because a literal's address is stable for the
     * whole program; never call this with heap or stack storage (use
     * counter() for formatted names). Misses — including the rare
     * collision between two literals mapping to the same slot — fall
     * back to the content-keyed counter(), so aliasing can never
     * attribute an increment to the wrong Stat.
     */
    Stat &
    literalCounter(const char *name)
    {
        auto &slot = literalStats[(reinterpret_cast<uintptr_t>(name) >>
                                   3) % literalStats.size()];
        if (slot.first != name) {
            slot.first = name;
            slot.second = &counter(name);
        }
        return *slot.second;
    }

    const CoreParams params;
    InstructionFeed &feed;

    PipelineAuditor *auditor = nullptr; ///< optional, non-owning
    LifecycleTracer *tracer = nullptr;  ///< optional, non-owning
    /** Owned; non-null only when CoreParams::profile is set. The
     *  profiler keeps all data private (no statGroup counters), so a
     *  profiled run's stat dump matches an unprofiled one. */
    std::unique_ptr<FusionProfiler> profiler;

    StatGroup statGroup;
    std::unordered_map<std::string_view, Stat *> statCache;
    /** literalCounter()'s direct-mapped address-keyed memo. */
    std::array<std::pair<const char *, Stat *>, 64> literalStats{};

    /** Per-µop / per-event counters hot enough to bypass even the
     *  content-hashed cache: bound once in the constructor. */
    struct HotStats
    {
        Stat &fetchUops;
        Stat &fetchBlocked;
        Stat &fetchMispredictStall;
        Stat &renameUops;
        Stat &renameAqEmpty;
        Stat &renameBacklog;
        Stat &dispatchUops;
        Stat &issueUops;
        Stat &execLoads;
        Stat &execStores;
        Stat &stlfForwards;
        Stat &stlfPartial;
        Stat &lineCrossers;
        Stat &commitInsts;
        Stat &commitUops;
        Stat &commitLoads;
        Stat &commitStores;
        Stat &cpiRetiring;
    };
    static HotStats bindHotStats(StatGroup &group);
    HotStats hot;

    // Telemetry histograms (live inside statGroup; non-null only when
    // CoreParams::sampleHistograms asked for per-cycle sampling).
    Histogram *histRob = nullptr;
    Histogram *histIq = nullptr;
    Histogram *histLq = nullptr;
    Histogram *histSq = nullptr;
    Histogram *histPairDistance = nullptr;
    Histogram *histFpAgreement = nullptr;

    // Per-cycle CPI attribution (see commitStage): the blocked-head
    // category of the current cycle, cleared each cycle.
    const char *cpiBlockReason = nullptr;
    unsigned commitsThisCycle = 0;
    uint64_t lastCpiCycle = ~0ULL; ///< double-attribution guard
    CacheHierarchy caches;
    BranchPredictor bpred;
    StoreSets storeSets;
    UnfusedCommittedHistory uch;
    std::unique_ptr<FusionPredictorBase> fusionPred;

    uint64_t cycle = 0;
    bool feedExhausted = false;

    // Master index plus storage of in-flight µ-ops: records live in
    // the slab pool, the seq-indexed ring gives O(1) lookup (see
    // findInflight). maxFetchedSeq bounds squash sweeps.
    UopPool uopPool;
    std::vector<Uop *> inflightSlots;
    uint64_t inflightMask = 0;
    size_t inflightCount = 0;
    uint64_t maxFetchedSeq = 0;

    // Replayed (squashed) instructions to refetch, in program order.
    std::deque<DynInst> replayQueue;

    // Front end. Groups recycle in place (emplace_back hands back the
    // slot, keeping the uops vector's capacity); `consumed` marks the
    // prefix already moved into the AQ, `fused` that consecutive
    // fusion already ran (it must run exactly once per group — a
    // rerun on an AQ-stalled remainder could re-fuse an already-fused
    // head and silently drop its absorbed tail).
    struct DecodeGroup
    {
        std::vector<Uop *> uops;
        size_t consumed = 0;
        uint64_t readyCycle = 0;
        bool fused = false;
    };
    RingBuffer<DecodeGroup> decodePipe;
    std::vector<Uop *> fuseScratch; ///< applyConsecutiveFusion output
    uint64_t fetchBlockedUntil = 0;
    uint64_t fetchStallSeq = ~0ULL; ///< mispredicted branch in flight
    uint64_t lastFetchLine = ~0ULL;

    // Allocation Queue, rename output, ROB: fixed-capacity rings (the
    // structural limits are hard caps, so they never reallocate).
    RingBuffer<Uop *> aq;
    RingBuffer<Uop *> renamedQueue;
    RingBuffer<Uop *> rob;

    // Load/store queues (program order; drainQueue holds committed
    // stores until they retire into the cache).
    RingBuffer<Uop *> lqList;
    RingBuffer<Uop *> sqList;

    // Conservative byte-range filters over executed-but-not-retired
    // memory µ-ops: loadFilter mirrors addrKnown LQ entries,
    // storeFilter mirrors addrKnown SQ entries plus the drain queue.
    // A miss proves no overlap, so the LQ snoop in executeStore and
    // the SQ/drain forwarding scans in loadHalfLatency skip their
    // linear walks in the common no-alias case.
    MemRangeFilter loadFilter;
    MemRangeFilter storeFilter;

    // Memory µ-ops whose effective address is still unknown, indexed
    // by seq on the same ring geometry as inflightSlots (0: resolved
    // or not a memory op; 1: load pending; 2: store pending). A fused
    // pair commits at the head's ROB slot, hoisting its tail past the
    // catalyst window — it must wait for every catalyst memory access
    // of the opposite kind to resolve first, or an alias could slip
    // past the LQ/SQ snoops (which only cover pre-commit µ-ops).
    std::vector<uint8_t> unresolvedKind;

    // Issue bookkeeping: ready µ-ops chain through their intrusive
    // readyPrev/readyNext links in ascending seq order.
    Uop *readyHead = nullptr;
    Uop *readyTail = nullptr;
    struct Event
    {
        uint64_t cycle;
        uint64_t seq;
        uint64_t uid;
        uint8_t kind; ///< 0: head-half, 1: tail-half, 2: final
        bool operator>(const Event &o) const { return cycle > o.cycle; }
    };
    std::priority_queue<Event, std::vector<Event>, std::greater<>>
        events;

    unsigned iqCount = 0;
    unsigned allocatedRegs = 0;
    uint64_t commitCount = 0;
    CommitWatch watch;
    uint64_t divBusyUntil = 0;
    uint64_t nextUid = 1;

    // Deferred flush request raised during issue (at most one/cycle).
    uint64_t flushRequestSeq = ~0ULL;
    const char *flushReason = nullptr;

    // Post-commit store drain (entries return to uopPool when the
    // store retires into the cache).
    RingBuffer<Uop *> drainQueue;
    uint64_t drainBusyUntil = 0;

    // Rename-side Helios state.
    struct RatEntry
    {
        uint64_t producerSeq = 0; ///< 0: architecturally ready
    };
    std::vector<RatEntry> rat;

    std::vector<Uop *> activeNcsHeads; ///< renamed, marker not yet
    unsigned pendingNcsf = 0;          ///< fused-in-AQ, marker pending

    std::vector<DynInst> replayScratch; ///< squashFrom working set
};

} // namespace helios

#endif // UARCH_PIPELINE_HH
