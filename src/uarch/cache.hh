/**
 * @file
 * Tag-only set-associative caches and the three-level hierarchy used
 * for load/store/fetch timing. Data values come from the functional
 * simulator; the hierarchy only answers "how many cycles".
 */

#ifndef UARCH_CACHE_HH
#define UARCH_CACHE_HH

#include <cstdint>
#include <vector>

#include "uarch/params.hh"

namespace helios
{

/** A single tag-only LRU cache level. */
class Cache
{
  public:
    Cache(unsigned size_bytes, unsigned ways, unsigned line_bytes);

    /** Look up a line; allocates on miss. @return hit? */
    bool access(uint64_t line_addr);

    /** Look up without allocating. */
    bool probe(uint64_t line_addr) const;

    uint64_t hits = 0;
    uint64_t misses = 0;

  private:
    struct Way
    {
        bool valid = false;
        uint64_t tag = 0;
        uint64_t lru = 0;
    };

    unsigned numSets;
    unsigned numWays;
    uint64_t tick = 0;
    std::vector<Way> ways;
};

/**
 * L1D + L2 + L3 + memory. Inclusive allocation on miss at every level.
 */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const CoreParams &params);

    /** Data-side access latency for one line. */
    unsigned dataAccess(uint64_t line_addr);

    /** Instruction-side access latency for one line (L1I then L2...). */
    unsigned instAccess(uint64_t line_addr);

    /**
     * Latency to retire one committed store into the hierarchy: a hit
     * drains in a cycle, a miss ties the store-queue entry down for a
     * fraction of the fill latency (write-combining approximation).
     */
    unsigned storeDrain(uint64_t line_addr);

    Cache l1i;
    Cache l1d;
    Cache l2;
    Cache l3;

  private:
    const CoreParams &params;
};

} // namespace helios

#endif // UARCH_CACHE_HH
