/**
 * @file
 * A small RISC-V (RV64IM) text assembler.
 *
 * Supports the standard assembler syntax subset needed by the workload
 * kernels:
 *  - labels (`loop:`), comments (`#`, `//`, `;`)
 *  - sections: `.text` (default) and `.data`
 *  - data directives: `.byte`, `.half`, `.word`, `.dword`, `.zero`/
 *    `.space`, `.align` (power-of-two exponent), `.asciz`
 *  - pseudo-instructions: `nop`, `li`, `la`, `mv`, `not`, `neg`,
 *    `negw`, `sext.w`, `seqz`, `snez`, `sltz`, `sgtz`, `beqz`, `bnez`,
 *    `blez`, `bgez`, `bltz`, `bgtz`, `bgt`, `ble`, `bgtu`, `bleu`,
 *    `j`, `jr`, `call`, `ret`
 *
 * Errors are reported through fatal() with the offending line number.
 */

#ifndef ASM_ASSEMBLER_HH
#define ASM_ASSEMBLER_HH

#include <string>

#include "asm/program.hh"

namespace helios
{

/** Assemble @a source into a loadable Program image. */
Program assemble(const std::string &source);

} // namespace helios

#endif // ASM_ASSEMBLER_HH
