/**
 * @file
 * An assembled program image: text, data and symbols.
 */

#ifndef ASM_PROGRAM_HH
#define ASM_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace helios
{

/** Default load addresses; both fit comfortably below 2^31 so that
 *  la/li address materialization is always a lui+addiw pair. */
constexpr uint64_t defaultTextBase = 0x10000;
constexpr uint64_t defaultDataBase = 0x200000;
constexpr uint64_t defaultStackTop = 0x7ff0000;

/**
 * The output of the assembler and the input of the loader.
 */
struct Program
{
    uint64_t textBase = defaultTextBase;
    uint64_t dataBase = defaultDataBase;
    uint64_t entry = defaultTextBase;

    /** Instruction words, textBase-relative. */
    std::vector<uint32_t> code;

    /** Initialized data bytes, dataBase-relative. */
    std::vector<uint8_t> data;

    /** Label name to absolute address. */
    std::map<std::string, uint64_t> symbols;

    /** Address of a symbol; fatal() if undefined. */
    uint64_t symbol(const std::string &name) const;

    /** Total number of instructions. */
    size_t numInsts() const { return code.size(); }
};

} // namespace helios

#endif // ASM_PROGRAM_HH
