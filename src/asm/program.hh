/**
 * @file
 * An assembled program image: text, data and symbols.
 */

#ifndef ASM_PROGRAM_HH
#define ASM_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace helios
{

/** Default load addresses; both fit comfortably below 2^31 so that
 *  la/li address materialization is always a lui+addiw pair. */
constexpr uint64_t defaultTextBase = 0x10000;
constexpr uint64_t defaultDataBase = 0x200000;
constexpr uint64_t defaultStackTop = 0x7ff0000;

/**
 * Every loadable byte of a guest image must sit below this limit:
 * the simulator backs guest memory with a contiguous 128 MiB arena
 * (sim/memory.hh) and the top of it is reserved for the stack
 * (defaultStackTop and down) plus a guard gap. The ELF loader rejects
 * segments reaching past it and the brk shim refuses to grow the heap
 * across it — both with explicit diagnostics — so a guest address can
 * never silently fall into the sparse high-page map, whose different
 * performance characteristics would skew timing results.
 */
constexpr uint64_t guestImageLimit = 0x7000000;

/**
 * The output of the assembler / ELF loader and the input of the
 * memory loader and hart reset.
 */
struct Program
{
    uint64_t textBase = defaultTextBase;
    uint64_t dataBase = defaultDataBase;
    uint64_t entry = defaultTextBase;

    /** Instruction words, textBase-relative. */
    std::vector<uint32_t> code;

    /** Initialized data bytes, dataBase-relative. */
    std::vector<uint8_t> data;

    /**
     * One loadable non-text segment of an ELF image. bytes holds the
     * file-backed content; the zero-initialized tail (bss) extends
     * the segment to memSize bytes in guest memory.
     */
    struct Segment
    {
        uint64_t vaddr = 0;
        std::vector<uint8_t> bytes;
        uint64_t memSize = 0;
    };

    /** Extra loadable segments (ELF images; empty for assembled
     *  programs, whose data blob lives in `data` above). */
    std::vector<Segment> segments;

    /**
     * Linux user-ABI process start: when set, Hart::reset() builds
     * the standard initial stack (argc / argv pointers / NULL envp /
     * minimal auxv, strings copied below the stack top) and points sp
     * at argc. Assembled kernels leave it false and keep the bare
     * sp = defaultStackTop contract.
     */
    bool linuxAbi = false;

    /** Guest argv (used when linuxAbi is set). */
    std::vector<std::string> argv;

    /** Bytes the read(2) shim serves from fd 0 (EOF when drained). */
    std::string stdinData;

    /**
     * Initial program break for the brk shim. 0 means "derive at
     * reset": one page above the highest loaded byte.
     */
    uint64_t brkBase = 0;

    /**
     * FNV-1a fingerprint of the image this program was built from:
     * the assembly source text (assemble()) or the raw ELF bytes
     * (loadElf()). Recorded in run reports so results are traceable
     * to the exact program that produced them.
     */
    uint64_t sourceHash = 0;

    /** Label name to absolute address. */
    std::map<std::string, uint64_t> symbols;

    /** Address of a symbol; fatal() if undefined. */
    uint64_t symbol(const std::string &name) const;

    /** Total number of instructions. */
    size_t numInsts() const { return code.size(); }

    /** Highest mapped guest address + 1 across text, data and
     *  segments (the natural brk floor). */
    uint64_t imageEnd() const;
};

} // namespace helios

#endif // ASM_PROGRAM_HH
