#include "asm/assembler.hh"

#include <cctype>
#include <optional>
#include <vector>

#include "common/bits.hh"
#include "common/logging.hh"
#include "isa/decoder.hh"
#include "isa/encoder.hh"

namespace helios
{

namespace
{

/** Where an unresolved label reference must be patched. */
enum class FixupKind
{
    Branch,  ///< B-type pc-relative offset
    Jal,     ///< J-type pc-relative offset
    LaHi,    ///< lui for absolute address (paired with LaLo)
    LaLo,    ///< addiw low 12 bits of absolute address
};

struct Fixup
{
    FixupKind kind;
    size_t codeIndex;
    std::string label;
    int line;
};

class Assembler
{
  public:
    Program
    run(const std::string &source)
    {
        size_t begin = 0;
        int line = 1;
        while (begin <= source.size()) {
            size_t end = source.find('\n', begin);
            if (end == std::string::npos)
                end = source.size();
            currentLine = line;
            processLine(source.substr(begin, end - begin));
            begin = end + 1;
            ++line;
        }
        resolveFixups();
        return std::move(prog);
    }

  private:
    [[noreturn]] void
    error(const std::string &message) const
    {
        fatal("asm line %d: %s", currentLine, message.c_str());
    }

    // ---- tokenization ------------------------------------------------

    static std::string
    stripComment(const std::string &text)
    {
        size_t pos = text.size();
        bool in_string = false;
        for (size_t i = 0; i < text.size(); ++i) {
            const char c = text[i];
            if (c == '"')
                in_string = !in_string;
            if (in_string)
                continue;
            if (c == '#' || c == ';' ||
                (c == '/' && i + 1 < text.size() && text[i + 1] == '/')) {
                pos = i;
                break;
            }
        }
        return text.substr(0, pos);
    }

    static std::string
    trim(const std::string &text)
    {
        size_t first = text.find_first_not_of(" \t\r");
        if (first == std::string::npos)
            return "";
        size_t last = text.find_last_not_of(" \t\r");
        return text.substr(first, last - first + 1);
    }

    /** Split "a0, 8(sp)" into {"a0", "8(sp)"}. */
    std::vector<std::string>
    splitOperands(const std::string &text) const
    {
        std::vector<std::string> result;
        std::string current;
        bool in_string = false;
        for (char c : text) {
            if (c == '"')
                in_string = !in_string;
            if (c == ',' && !in_string) {
                result.push_back(trim(current));
                current.clear();
            } else {
                current += c;
            }
        }
        const std::string last = trim(current);
        if (!last.empty())
            result.push_back(last);
        for (const std::string &operand : result)
            if (operand.empty())
                error("empty operand");
        return result;
    }

    // ---- operand parsing ---------------------------------------------

    uint8_t
    parseReg(const std::string &text) const
    {
        const int reg = parseRegName(text);
        if (reg < 0)
            error("unknown register '" + text + "'");
        return static_cast<uint8_t>(reg);
    }

    std::optional<int64_t>
    tryParseInt(const std::string &text) const
    {
        if (text.empty())
            return std::nullopt;
        size_t pos = 0;
        bool negative = false;
        if (text[pos] == '-' || text[pos] == '+') {
            negative = text[pos] == '-';
            ++pos;
        }
        if (pos >= text.size() || !std::isdigit(uint8_t(text[pos])))
            return std::nullopt;
        uint64_t value = 0;
        if (text.compare(pos, 2, "0x") == 0 ||
            text.compare(pos, 2, "0X") == 0) {
            pos += 2;
            if (pos >= text.size())
                return std::nullopt;
            for (; pos < text.size(); ++pos) {
                const char c = text[pos];
                if (!std::isxdigit(uint8_t(c)))
                    return std::nullopt;
                value = value * 16 +
                        (std::isdigit(uint8_t(c))
                             ? c - '0'
                             : std::tolower(uint8_t(c)) - 'a' + 10);
            }
        } else {
            for (; pos < text.size(); ++pos) {
                if (!std::isdigit(uint8_t(text[pos])))
                    return std::nullopt;
                value = value * 10 + (text[pos] - '0');
            }
        }
        // Negate in the unsigned domain: INT64_MIN round-trips
        // (-(unsigned INT64_MIN) == INT64_MIN) where negating the
        // signed value would overflow.
        if (negative)
            value = 0 - value;
        return static_cast<int64_t>(value);
    }

    int64_t
    parseInt(const std::string &text) const
    {
        auto value = tryParseInt(text);
        if (!value)
            error("expected integer, got '" + text + "'");
        return *value;
    }

    /** Parse "imm(reg)" or "(reg)" memory operands. */
    std::pair<int64_t, uint8_t>
    parseMemOperand(const std::string &text) const
    {
        const size_t open = text.find('(');
        const size_t close = text.rfind(')');
        if (open == std::string::npos || close == std::string::npos ||
            close < open) {
            error("expected mem operand 'imm(reg)', got '" + text + "'");
        }
        const std::string imm_text = trim(text.substr(0, open));
        const std::string reg_text =
            trim(text.substr(open + 1, close - open - 1));
        const int64_t imm = imm_text.empty() ? 0 : parseInt(imm_text);
        return {imm, parseReg(reg_text)};
    }

    // ---- emission ----------------------------------------------------

    uint64_t codePc() const { return prog.textBase + prog.code.size() * 4; }

    void
    emit(Op op, uint8_t rd, uint8_t rs1, uint8_t rs2, int64_t imm)
    {
        Instruction inst;
        inst.op = op;
        inst.rd = rd;
        inst.rs1 = rs1;
        inst.rs2 = rs2;
        inst.imm = imm;
        prog.code.push_back(encode(inst));
    }

    void
    emitBranchTo(Op op, uint8_t rs1, uint8_t rs2,
                 const std::string &target)
    {
        if (auto imm = tryParseInt(target)) {
            emit(op, 0, rs1, rs2, *imm);
            return;
        }
        fixups.push_back(
            {FixupKind::Branch, prog.code.size(), target, currentLine});
        emit(op, 0, rs1, rs2, 0);
    }

    void
    emitJalTo(uint8_t rd, const std::string &target)
    {
        if (auto imm = tryParseInt(target)) {
            emit(Op::Jal, rd, 0, 0, *imm);
            return;
        }
        fixups.push_back(
            {FixupKind::Jal, prog.code.size(), target, currentLine});
        emit(Op::Jal, rd, 0, 0, 0);
    }

    /** Materialize an arbitrary 64-bit constant. */
    void
    emitLi(uint8_t rd, int64_t value)
    {
        if (value >= -2048 && value <= 2047) {
            emit(Op::Addi, rd, RegZero, 0, value);
            return;
        }
        if (value >= INT32_MIN && value <= INT32_MAX) {
            const int32_t lo = static_cast<int32_t>(value << 52 >> 52);
            const int32_t hi20 =
                static_cast<int32_t>((value - lo) >> 12) & 0xfffff;
            emit(Op::Lui, rd, 0, 0, sextBits(hi20, 20));
            if (lo != 0)
                emit(Op::Addiw, rd, rd, 0, lo);
            return;
        }
        // 64-bit: build the upper part recursively, shift, add.
        const int64_t lo = value << 52 >> 52;
        emitLi(rd, (value - lo) >> 12);
        emit(Op::Slli, rd, rd, 0, 12);
        if (lo != 0)
            emit(Op::Addi, rd, rd, 0, lo);
    }

    void
    emitLa(uint8_t rd, const std::string &label)
    {
        if (auto imm = tryParseInt(label)) {
            emitLi(rd, *imm);
            return;
        }
        fixups.push_back(
            {FixupKind::LaHi, prog.code.size(), label, currentLine});
        emit(Op::Lui, rd, 0, 0, 0);
        fixups.push_back(
            {FixupKind::LaLo, prog.code.size(), label, currentLine});
        emit(Op::Addiw, rd, rd, 0, 0);
    }

    // ---- data section ------------------------------------------------

    void
    emitDataBytes(uint64_t value, unsigned size)
    {
        for (unsigned i = 0; i < size; ++i)
            prog.data.push_back(uint8_t(value >> (8 * i)));
    }

    void
    defineLabel(const std::string &name)
    {
        const uint64_t addr = inData
                                  ? prog.dataBase + prog.data.size()
                                  : codePc();
        if (!prog.symbols.emplace(name, addr).second)
            error("duplicate label '" + name + "'");
    }

    // ---- line processing ---------------------------------------------

    void
    processLine(const std::string &raw_line)
    {
        std::string text = trim(stripComment(raw_line));

        // Possibly several "label:" prefixes.
        while (true) {
            const size_t colon = text.find(':');
            if (colon == std::string::npos)
                break;
            const std::string label = trim(text.substr(0, colon));
            if (label.empty() || label.find(' ') != std::string::npos ||
                label.find('"') != std::string::npos ||
                label.find('(') != std::string::npos) {
                break;
            }
            defineLabel(label);
            text = trim(text.substr(colon + 1));
        }
        if (text.empty())
            return;

        const size_t space = text.find_first_of(" \t");
        const std::string mnemonic =
            space == std::string::npos ? text : text.substr(0, space);
        const std::string rest =
            space == std::string::npos ? "" : trim(text.substr(space + 1));

        if (mnemonic[0] == '.') {
            processDirective(mnemonic, rest);
            return;
        }
        if (inData)
            error("instruction '" + mnemonic + "' inside .data");
        processInstruction(mnemonic, splitOperands(rest));
    }

    void
    processDirective(const std::string &name, const std::string &rest)
    {
        if (name == ".text") {
            inData = false;
        } else if (name == ".data") {
            inData = true;
        } else if (name == ".global" || name == ".globl" ||
                   name == ".p2align" || name == ".option" ||
                   name == ".size" || name == ".type") {
            // Accepted and ignored for GNU-as compatibility.
        } else if (name == ".byte" || name == ".half" ||
                   name == ".word" || name == ".dword") {
            if (!inData)
                error(name + " outside .data");
            const unsigned size = name == ".byte"   ? 1
                                  : name == ".half" ? 2
                                  : name == ".word" ? 4
                                                    : 8;
            for (const std::string &operand : splitOperands(rest))
                emitDataBytes(uint64_t(parseInt(operand)), size);
        } else if (name == ".zero" || name == ".space") {
            if (!inData)
                error(name + " outside .data");
            const int64_t count = parseInt(trim(rest));
            if (count < 0)
                error("negative .zero size");
            prog.data.insert(prog.data.end(), size_t(count), 0);
        } else if (name == ".align") {
            const int64_t power = parseInt(trim(rest));
            if (power < 0 || power > 16)
                error("bad .align exponent");
            const uint64_t align = 1ULL << power;
            if (inData) {
                while (prog.data.size() % align)
                    prog.data.push_back(0);
            } else {
                while ((codePc() % align) != 0)
                    emit(Op::Addi, 0, 0, 0, 0); // nop padding
            }
        } else if (name == ".asciz" || name == ".string") {
            if (!inData)
                error(name + " outside .data");
            const std::string trimmed = trim(rest);
            if (trimmed.size() < 2 || trimmed.front() != '"' ||
                trimmed.back() != '"') {
                error("expected quoted string");
            }
            for (size_t i = 1; i + 1 < trimmed.size(); ++i) {
                char c = trimmed[i];
                if (c == '\\' && i + 2 < trimmed.size()) {
                    ++i;
                    switch (trimmed[i]) {
                      case 'n': c = '\n'; break;
                      case 't': c = '\t'; break;
                      case '0': c = '\0'; break;
                      case '\\': c = '\\'; break;
                      default: c = trimmed[i]; break;
                    }
                }
                prog.data.push_back(uint8_t(c));
            }
            prog.data.push_back(0);
        } else {
            error("unknown directive '" + name + "'");
        }
    }

    void
    processInstruction(const std::string &mnemonic,
                       const std::vector<std::string> &ops)
    {
        auto want = [&](size_t n) {
            if (ops.size() != n)
                error(mnemonic + " expects " + std::to_string(n) +
                      " operands, got " + std::to_string(ops.size()));
        };

        // ---- pseudo-instructions ----
        if (mnemonic == "nop") {
            want(0);
            emit(Op::Addi, 0, 0, 0, 0);
        } else if (mnemonic == "li") {
            want(2);
            emitLi(parseReg(ops[0]), parseInt(ops[1]));
        } else if (mnemonic == "la") {
            want(2);
            emitLa(parseReg(ops[0]), ops[1]);
        } else if (mnemonic == "mv") {
            want(2);
            emit(Op::Addi, parseReg(ops[0]), parseReg(ops[1]), 0, 0);
        } else if (mnemonic == "not") {
            want(2);
            emit(Op::Xori, parseReg(ops[0]), parseReg(ops[1]), 0, -1);
        } else if (mnemonic == "neg") {
            want(2);
            emit(Op::Sub, parseReg(ops[0]), RegZero, parseReg(ops[1]), 0);
        } else if (mnemonic == "negw") {
            want(2);
            emit(Op::Subw, parseReg(ops[0]), RegZero, parseReg(ops[1]), 0);
        } else if (mnemonic == "sext.w") {
            want(2);
            emit(Op::Addiw, parseReg(ops[0]), parseReg(ops[1]), 0, 0);
        } else if (mnemonic == "seqz") {
            want(2);
            emit(Op::Sltiu, parseReg(ops[0]), parseReg(ops[1]), 0, 1);
        } else if (mnemonic == "snez") {
            want(2);
            emit(Op::Sltu, parseReg(ops[0]), RegZero, parseReg(ops[1]), 0);
        } else if (mnemonic == "sltz") {
            want(2);
            emit(Op::Slt, parseReg(ops[0]), parseReg(ops[1]), RegZero, 0);
        } else if (mnemonic == "sgtz") {
            want(2);
            emit(Op::Slt, parseReg(ops[0]), RegZero, parseReg(ops[1]), 0);
        } else if (mnemonic == "beqz") {
            want(2);
            emitBranchTo(Op::Beq, parseReg(ops[0]), RegZero, ops[1]);
        } else if (mnemonic == "bnez") {
            want(2);
            emitBranchTo(Op::Bne, parseReg(ops[0]), RegZero, ops[1]);
        } else if (mnemonic == "blez") {
            want(2);
            emitBranchTo(Op::Bge, RegZero, parseReg(ops[0]), ops[1]);
        } else if (mnemonic == "bgez") {
            want(2);
            emitBranchTo(Op::Bge, parseReg(ops[0]), RegZero, ops[1]);
        } else if (mnemonic == "bltz") {
            want(2);
            emitBranchTo(Op::Blt, parseReg(ops[0]), RegZero, ops[1]);
        } else if (mnemonic == "bgtz") {
            want(2);
            emitBranchTo(Op::Blt, RegZero, parseReg(ops[0]), ops[1]);
        } else if (mnemonic == "bgt") {
            want(3);
            emitBranchTo(Op::Blt, parseReg(ops[1]), parseReg(ops[0]),
                         ops[2]);
        } else if (mnemonic == "ble") {
            want(3);
            emitBranchTo(Op::Bge, parseReg(ops[1]), parseReg(ops[0]),
                         ops[2]);
        } else if (mnemonic == "bgtu") {
            want(3);
            emitBranchTo(Op::Bltu, parseReg(ops[1]), parseReg(ops[0]),
                         ops[2]);
        } else if (mnemonic == "bleu") {
            want(3);
            emitBranchTo(Op::Bgeu, parseReg(ops[1]), parseReg(ops[0]),
                         ops[2]);
        } else if (mnemonic == "j") {
            want(1);
            emitJalTo(RegZero, ops[0]);
        } else if (mnemonic == "jr") {
            want(1);
            emit(Op::Jalr, RegZero, parseReg(ops[0]), 0, 0);
        } else if (mnemonic == "call") {
            want(1);
            emitJalTo(RegRa, ops[0]);
        } else if (mnemonic == "ret") {
            want(0);
            emit(Op::Jalr, RegZero, RegRa, 0, 0);
        }
        // ---- real instructions ----
        else if (Op op = lookupOp(mnemonic); op != Op::Invalid) {
            emitReal(op, ops, want);
        } else {
            error("unknown mnemonic '" + mnemonic + "'");
        }
    }

    static Op
    lookupOp(const std::string &mnemonic)
    {
        for (unsigned i = 1; i < unsigned(Op::NumOps); ++i) {
            const Op op = static_cast<Op>(i);
            if (mnemonic == opInfo(op).mnemonic)
                return op;
        }
        return Op::Invalid;
    }

    template <typename WantFn>
    void
    emitReal(Op op, const std::vector<std::string> &ops, WantFn want)
    {
        const OpInfo &info = opInfo(op);
        switch (info.cls) {
          case OpClass::Load: {
            want(2);
            auto [imm, base] = parseMemOperand(ops[1]);
            emit(op, parseReg(ops[0]), base, 0, imm);
            return;
          }
          case OpClass::Store: {
            want(2);
            auto [imm, base] = parseMemOperand(ops[1]);
            emit(op, 0, base, parseReg(ops[0]), imm);
            return;
          }
          case OpClass::Branch:
            if (op == Op::Jal) {
                if (ops.size() == 1) {
                    emitJalTo(RegRa, ops[0]);
                } else {
                    want(2);
                    emitJalTo(parseReg(ops[0]), ops[1]);
                }
            } else if (op == Op::Jalr) {
                if (ops.size() == 1) {
                    emit(op, RegRa, parseReg(ops[0]), 0, 0);
                } else if (ops.size() == 2 &&
                           ops[1].find('(') != std::string::npos) {
                    auto [imm, base] = parseMemOperand(ops[1]);
                    emit(op, parseReg(ops[0]), base, 0, imm);
                } else {
                    want(3);
                    emit(op, parseReg(ops[0]), parseReg(ops[1]), 0,
                         parseInt(ops[2]));
                }
            } else {
                want(3);
                emitBranchTo(op, parseReg(ops[0]), parseReg(ops[1]),
                             ops[2]);
            }
            return;
          case OpClass::Serializing:
            emit(op, 0, 0, 0, 0);
            return;
          default:
            break;
        }

        if (op == Op::Lui || op == Op::Auipc) {
            want(2);
            emit(op, parseReg(ops[0]), 0, 0, parseInt(ops[1]));
            return;
        }
        want(3);
        if (info.readsRs2) {
            emit(op, parseReg(ops[0]), parseReg(ops[1]),
                 parseReg(ops[2]), 0);
        } else {
            emit(op, parseReg(ops[0]), parseReg(ops[1]), 0,
                 parseInt(ops[2]));
        }
    }

    // ---- fixups --------------------------------------------------------

    void
    resolveFixups()
    {
        for (const Fixup &fixup : fixups) {
            auto it = prog.symbols.find(fixup.label);
            if (it == prog.symbols.end())
                fatal("asm line %d: undefined label '%s'", fixup.line,
                      fixup.label.c_str());
            const uint64_t target = it->second;
            const uint64_t pc = prog.textBase + fixup.codeIndex * 4;
            Instruction inst = decodePatched(fixup.codeIndex);

            switch (fixup.kind) {
              case FixupKind::Branch:
              case FixupKind::Jal:
                inst.imm = static_cast<int64_t>(target - pc);
                break;
              case FixupKind::LaHi: {
                const int64_t lo =
                    static_cast<int64_t>(target) << 52 >> 52;
                inst.imm =
                    ((static_cast<int64_t>(target) - lo) >> 12) & 0xfffff;
                inst.imm = sextBits(inst.imm, 20);
                break;
              }
              case FixupKind::LaLo:
                inst.imm = static_cast<int64_t>(target) << 52 >> 52;
                break;
            }
            currentLine = fixup.line;
            prog.code[fixup.codeIndex] = encode(inst);
        }
    }

    Instruction
    decodePatched(size_t index) const
    {
        return decode(prog.code[index]);
    }

    Program prog;
    std::vector<Fixup> fixups;
    bool inData = false;
    int currentLine = 0;
};

} // namespace

Program
assemble(const std::string &source)
{
    Program prog = Assembler().run(source);
    // Fingerprint the source so run reports can record exactly which
    // program produced a result (ELF images hash their raw bytes the
    // same way in loadElf()).
    prog.sourceHash = fnv1a(source.data(), source.size());
    return prog;
}

} // namespace helios
