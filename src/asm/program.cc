#include "asm/program.hh"

#include "common/logging.hh"

namespace helios
{

uint64_t
Program::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    if (it == symbols.end())
        fatal("undefined symbol '%s'", name.c_str());
    return it->second;
}

} // namespace helios
