#include "asm/program.hh"

#include <algorithm>

#include "common/logging.hh"

namespace helios
{

uint64_t
Program::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    if (it == symbols.end())
        fatal("undefined symbol '%s'", name.c_str());
    return it->second;
}

uint64_t
Program::imageEnd() const
{
    uint64_t end = textBase + 4 * code.size();
    if (!data.empty())
        end = std::max(end, dataBase + data.size());
    for (const Segment &seg : segments)
        end = std::max(end, seg.vaddr + seg.memSize);
    return end;
}

} // namespace helios
