#include "telemetry/host_trace.hh"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <ostream>

#include "common/json.hh"
#include "common/logging.hh"
#include "telemetry/host_metrics.hh"

namespace helios
{

namespace
{

/** Dense per-thread track id, assigned on first use. The main thread
 *  enables tracing before any worker exists, so it owns track 0. */
unsigned
hostTrackId()
{
    static std::atomic<unsigned> next{0};
    thread_local unsigned id = next.fetch_add(1);
    return id;
}

} // namespace

struct HostTracer::Impl
{
    struct Event
    {
        std::string name;
        std::string category;
        uint64_t begin = 0;
        uint64_t dur = 0;
        unsigned track = 0;
        std::vector<std::pair<std::string, std::string>> args;
    };

    mutable std::mutex mutex;
    std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();
    std::vector<Event> events;
    std::vector<std::pair<unsigned, std::string>> threadNames;
};

HostTracer::HostTracer() : impl(new Impl) {}

HostTracer &
HostTracer::global()
{
    // Leaked intentionally: atexit writers run after static dtors.
    static HostTracer *tracer = new HostTracer;
    return *tracer;
}

uint64_t
HostTracer::nowMicros() const
{
    return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - impl->epoch)
                        .count());
}

void
HostTracer::setThreadName(const std::string &name)
{
    const unsigned track = hostTrackId();
    std::lock_guard<std::mutex> lock(impl->mutex);
    for (auto &[id, existing] : impl->threadNames)
        if (id == track) {
            existing = name;
            return;
        }
    impl->threadNames.emplace_back(track, name);
}

void
HostTracer::recordSpan(
    const std::string &name, const std::string &category,
    uint64_t begin_us, uint64_t end_us,
    const std::vector<std::pair<std::string, std::string>> &args)
{
    Impl::Event event;
    event.name = name;
    event.category = category;
    event.begin = begin_us;
    event.dur = end_us > begin_us ? end_us - begin_us : 0;
    event.track = hostTrackId();
    event.args = args;
    std::lock_guard<std::mutex> lock(impl->mutex);
    impl->events.push_back(std::move(event));
}

size_t
HostTracer::numSpans() const
{
    std::lock_guard<std::mutex> lock(impl->mutex);
    return impl->events.size();
}

void
HostTracer::writeChromeTrace(std::ostream &out) const
{
    std::lock_guard<std::mutex> lock(impl->mutex);

    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    bool first = true;
    auto emit = [&](const JsonValue &event) {
        if (!first)
            out << ",\n";
        first = false;
        out << event.dump();
    };

    auto metadata = [&](const char *what, unsigned tid,
                        const std::string &value) {
        JsonValue meta = JsonValue::object();
        meta.set("name", what);
        meta.set("ph", "M");
        meta.set("pid", uint64_t(0));
        meta.set("tid", uint64_t(tid));
        JsonValue args = JsonValue::object();
        args.set("name", value);
        meta.set("args", args);
        emit(meta);
    };

    metadata("process_name", 0, "helios harness");
    bool named_main = false;
    for (const auto &[track, name] : impl->threadNames) {
        metadata("thread_name", track, name);
        named_main = named_main || track == 0;
    }
    if (!named_main)
        metadata("thread_name", 0, "main");

    for (const Impl::Event &event : impl->events) {
        JsonValue json = JsonValue::object();
        json.set("name", event.name);
        json.set("cat", event.category);
        json.set("ph", "X");
        json.set("ts", event.begin);
        json.set("dur", event.dur);
        json.set("pid", uint64_t(0));
        json.set("tid", uint64_t(event.track));
        if (!event.args.empty()) {
            JsonValue args = JsonValue::object();
            for (const auto &[key, value] : event.args)
                args.set(key, value);
            json.set("args", std::move(args));
        }
        emit(json);
    }
    out << "\n]}\n";
}

bool
HostTracer::writeToFile(const std::string &path) const
{
    std::ofstream out(path);
    if (out)
        writeChromeTrace(out);
    if (!out) {
        logError("host trace: cannot write '%s'", path.c_str());
        return false;
    }
    return true;
}

void
HostTracer::clear()
{
    std::lock_guard<std::mutex> lock(impl->mutex);
    impl->events.clear();
    impl->threadNames.clear();
}

// ---------------------------------------------------------------------
// HostSpan
// ---------------------------------------------------------------------

HostSpan::HostSpan(std::string span_name, std::string span_category)
    : name(std::move(span_name)), category(std::move(span_category))
{
    if (category.empty())
        category = name;
    active = HostTracer::global().enabled() ||
             HostMetrics::global().enabled();
    if (active)
        begin = HostTracer::global().nowMicros();
}

void
HostSpan::arg(std::string key, std::string value)
{
    if (active)
        args.emplace_back(std::move(key), std::move(value));
}

void
HostSpan::end()
{
    if (!active)
        return;
    active = false;
    const uint64_t now = HostTracer::global().nowMicros();
    if (HostTracer::global().enabled())
        HostTracer::global().recordSpan(name, category, begin, now,
                                        args);
    if (HostMetrics::global().enabled())
        HostMetrics::global().addPhaseSeconds(
            category, double(now - begin) / 1e6);
}

// ---------------------------------------------------------------------
// Environment hookup
// ---------------------------------------------------------------------

namespace
{

std::string &
hostTracePath()
{
    static std::string path;
    return path;
}

void
flushHostTrace()
{
    if (!hostTracePath().empty())
        HostTracer::global().writeToFile(hostTracePath());
}

} // namespace

void
writeHostTraceAtExit(const std::string &path)
{
    HostTracer::global().enable();
    const bool registered = !hostTracePath().empty();
    hostTracePath() = path;
    if (!registered)
        std::atexit(flushHostTrace);
}

void
initHostTelemetryFromEnv()
{
    static bool done = false;
    if (done)
        return;
    done = true;
    if (const char *path = std::getenv("HELIOS_HOST_TRACE"))
        if (*path)
            writeHostTraceAtExit(path);
    if (const char *path = std::getenv("HELIOS_METRICS"))
        if (*path)
            writeHostMetricsAtExit(path);
}

} // namespace helios
