/**
 * @file
 * Harness span tracing: where does the *host's* wall-clock go?
 *
 * The guest side of a run has been fully inspectable since the µop
 * LifecycleTracer landed; HostTracer is its mirror for the harness
 * itself. RAII HostSpan objects mark the harness's own phases —
 * assemble/decode, functional fast-forward, detailed simulation,
 * report writes, and one span per (workload, configuration) cell a
 * runMatrix worker executes — and the tracer renders them as the same
 * Chrome `trace_event` JSON the guest tracer emits, so a 192-cell
 * fig10 sweep loads into Perfetto as a worker-pool timeline.
 *
 * Enable with `helios_run --host-trace FILE` or HELIOS_HOST_TRACE=FILE
 * (any bench or CLI; see initHostTelemetryFromEnv). Disabled, a span
 * costs two relaxed atomic loads — the simulated machine never sees
 * it either way (observer-effect guarded in tier-1).
 */

#ifndef TELEMETRY_HOST_TRACE_HH
#define TELEMETRY_HOST_TRACE_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace helios
{

/**
 * Process-wide collector of completed harness spans. Thread-safe:
 * spans record under a mutex; worker threads get dense track ids on
 * first use and can name their track (thread_name metadata in the
 * Chrome export).
 */
class HostTracer
{
  public:
    static HostTracer &global();

    void enable() { on.store(true, std::memory_order_relaxed); }
    bool
    enabled() const
    {
        return on.load(std::memory_order_relaxed);
    }

    /** Microseconds since tracer construction (steady clock). */
    uint64_t nowMicros() const;

    /** Label the calling thread's track ("worker-3", "main", ...). */
    void setThreadName(const std::string &name);

    /** Record one completed span on the calling thread's track. */
    void recordSpan(
        const std::string &name, const std::string &category,
        uint64_t begin_us, uint64_t end_us,
        const std::vector<std::pair<std::string, std::string>> &args);

    size_t numSpans() const;

    /** Chrome trace_event JSON ({"traceEvents": [...]}), same dialect
     *  as LifecycleTracer::writeChromeTrace. */
    void writeChromeTrace(std::ostream &out) const;

    /** Write the Chrome trace to @a path; logError and return false
     *  on I/O failure. */
    bool writeToFile(const std::string &path) const;

    /** Drop all spans and thread names (tests). */
    void clear();

  private:
    HostTracer();

    struct Impl;
    Impl *impl;
    std::atomic<bool> on{false};
};

/**
 * RAII span: stamps the clock at construction, records at end() or
 * destruction (whichever comes first). @a category groups spans in
 * the viewer and doubles as the HostMetrics phase key, so every
 * traced phase automatically gets a wall-clock metric; it defaults
 * to the span name. Inert (no clock read) when both the tracer and
 * the metrics registry are disabled.
 */
class HostSpan
{
  public:
    explicit HostSpan(std::string name, std::string category = "");

    /** Attach a key=value annotation (shown in the viewer). */
    void arg(std::string key, std::string value);

    /** Close the span now; later calls and destruction are no-ops. */
    void end();

    ~HostSpan() { end(); }

    HostSpan(const HostSpan &) = delete;
    HostSpan &operator=(const HostSpan &) = delete;

  private:
    std::string name;
    std::string category;
    std::vector<std::pair<std::string, std::string>> args;
    uint64_t begin = 0;
    bool active = false;
};

/**
 * One-shot environment hookup, called by every bench (through
 * printBenchHeader) and by helios_run: HELIOS_HOST_TRACE=FILE enables
 * the tracer and writes FILE at process exit; HELIOS_METRICS=FILE
 * does the same for the Prometheus metrics file.
 */
void initHostTelemetryFromEnv();

/** Enable the tracer and write @a path at process exit. */
void writeHostTraceAtExit(const std::string &path);

} // namespace helios

#endif // TELEMETRY_HOST_TRACE_HH
