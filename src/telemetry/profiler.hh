/**
 * @file
 * Per-static-PC fusion-site profiling.
 *
 * The FusionProfiler aggregates, from the pipeline's commit/squash
 * hooks, everything the whole-run counters collapse: which static
 * sites carry the fusion coverage, where the cycles go (reusing the
 * exact per-cycle CPI attribution, keyed to the blocked ROB-head
 * µ-op's PC), and — through an oracle pair-finder running alongside
 * the predictor at commit — *why* each oracle-visible pair the
 * machine did not fuse was missed. Each missed pair is tagged with
 * exactly one MissReason, so the reasons partition the
 * oracle-minus-predictor coverage gap per site (the paper's
 * 12.2%-vs-13.6% story, decomposed).
 *
 * Like the LifecycleTracer, the profiler is passive and opt-in: the
 * pipeline owns one only when CoreParams::profile is set, every hook
 * is a single predictable null check when it is not, and the profiler
 * writes no counters into the pipeline's StatGroup — a profiled run
 * is bit-identical to an unprofiled one (tier-1 checked).
 */

#ifndef TELEMETRY_PROFILER_HH
#define TELEMETRY_PROFILER_HH

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/json.hh"
#include "uarch/params.hh"
#include "uarch/uop.hh"

namespace helios
{

/**
 * Committed fused-pair classes, the profiler's refinement of the
 * aggregate pairs.* counters. The five classes partition every
 * committed pair:
 *
 *  - Csf:  non-memory Table I idiom (aggregate pairs.csf_other);
 *  - Sbr:  decode-time consecutive same-base memory pair
 *          (FusionKind::CsfMem);
 *  - Nctf: AQ-time memory pair that turned out runtime-consecutive
 *          (distance 1) — the temporal machinery finding pairs static
 *          decode missed;
 *  - Ncsf: AQ-time same-base memory pair at distance > 1;
 *  - Dbr:  AQ-time different-base-register pair at distance > 1.
 *
 * Sbr + Nctf is the aggregate pairs.csf_mem; Ncsf + Dbr is the
 * aggregate pairs.ncsf (tier-1 asserts both identities per site sum).
 */
enum class PairClass : uint8_t
{
    Csf,
    Sbr,
    Ncsf,
    Nctf,
    Dbr,
};

constexpr size_t kNumPairClasses = 5;

const char *pairClassName(PairClass cls);

/**
 * Why an oracle-visible pair was not fused. Assigned by a strict
 * priority chain over the committing (unfused) tail µ-op, so every
 * missed pair lands in exactly one class and the per-reason counts
 * sum to the total number of missed pairs:
 *
 *  1. QueueCapacity: the pair was predicted and fused, but broken
 *     because every NCSF nest level was busy (fp_nest_limited);
 *  2. CatalystInterference: predicted and fused, but broken by the
 *     catalyst window (deadlock, store-in-catalyst, serializing, or
 *     a late RaW through a catalyst load);
 *  3. DistanceOverLimit: the oracle partner sits further away than
 *     the predictor's distance field can express;
 *  4. ColdSite: the predictor produced no confident prediction at
 *     this site (covers every non-Helios mode wholesale);
 *  5. PredictorDisagreement: a confident prediction existed but the
 *     pair still failed to materialize (wrong distance, head already
 *     fused, statically dependent, DBR store, ...).
 */
enum class MissReason : uint8_t
{
    QueueCapacity,
    CatalystInterference,
    DistanceOverLimit,
    ColdSite,
    PredictorDisagreement,
};

constexpr size_t kNumMissReasons = 5;

const char *missReasonName(MissReason reason);

/** Everything the profiler knows about one static PC. */
struct ProfileSite
{
    uint64_t pc = 0;

    /** Committed architectural instructions at this PC (a fused pair
     *  contributes one execution at the head PC and one at the tail
     *  PC). */
    uint64_t executions = 0;
    uint64_t squashes = 0;

    /** Committed fused pairs headed at this PC, by class. */
    std::array<uint64_t, kNumPairClasses> fused{};
    /** Committed fused pairs whose *tail* nucleus lives here. */
    uint64_t fusedTail = 0;

    /** Predictor activity keyed to the tail (prediction) site. */
    uint64_t attempts = 0;
    uint64_t mispredicts = 0;
    std::map<std::string, uint64_t> breaks; ///< unfuse reason -> count

    /** Oracle-only pairs whose tail committed here, by reason. */
    std::array<uint64_t, kNumMissReasons> missed{};

    /** Cycles the exact CPI attribution charged to a blocked ROB head
     *  at this PC, by cpi.* category. */
    std::map<std::string, uint64_t> stalls;

    uint64_t fusedPairs() const;
    uint64_t missedPairs() const;
    uint64_t stallCycles() const;

    /** Fraction of this line's executions that committed inside a
     *  fused pair (head or tail). */
    double coverage() const;

    /** cpi.* category with the most attributed cycles ("" if none). */
    std::string dominantStall() const;

    JsonValue toJson() const;
    static ProfileSite fromJson(const JsonValue &value);

    bool operator==(const ProfileSite &other) const = default;
};

/** One windowed time-series sample. */
struct ProfileWindow
{
    uint64_t startCycle = 0;
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t uops = 0;
    uint64_t fusedPairs = 0;
    std::map<std::string, uint64_t> cpi; ///< per-window cycle accounting

    double
    ipc() const
    {
        return cycles ? double(instructions) / double(cycles) : 0.0;
    }

    double
    coverage() const
    {
        return instructions
                   ? 2.0 * double(fusedPairs) / double(instructions)
                   : 0.0;
    }

    JsonValue toJson() const;
    static ProfileWindow fromJson(const JsonValue &value);

    bool operator==(const ProfileWindow &other) const = default;
};

/**
 * The profiler's serializable result: per-site aggregates, windowed
 * time-series, and the run-level totals the invariants are checked
 * against. Round-trips losslessly through the RunReport v2 JSON
 * schema (save -> parse -> operator== holds).
 */
struct ProfileData
{
    uint64_t windowCycles = 0; ///< sampling interval (0: no windows)
    uint64_t totalCycles = 0;

    std::array<uint64_t, kNumPairClasses> fusedTotals{};
    std::array<uint64_t, kNumMissReasons> missedTotals{};

    std::vector<ProfileSite> sites;     ///< sorted by pc
    std::vector<ProfileWindow> windows; ///< in time order

    const ProfileSite *find(uint64_t pc) const;
    uint64_t fusedPairs() const;
    uint64_t missedPairs() const;

    JsonValue toJson() const;
    static ProfileData fromJson(const JsonValue &value);

    bool operator==(const ProfileData &other) const = default;
};

/**
 * Collects ProfileData during a pipeline run. All record* hooks are
 * called by the pipeline (null-checked at the call site); finalize()
 * closes the last window and freezes the data.
 */
class FusionProfiler
{
  public:
    explicit FusionProfiler(const CoreParams &params);

    /**
     * Called once per cycle after the commit stage attributed the
     * cycle to @a category (a cpi.* literal). When the attribution
     * charged a blocked ROB head, @a blocked_valid is true and
     * @a blocked_pc is that µ-op's head PC.
     */
    void onCycle(const char *category, uint64_t blocked_pc,
                 bool blocked_valid);

    /** Called when @a uop retires (also runs the oracle finder). */
    void recordCommit(const Uop &uop);

    /** Called when @a uop is squashed. */
    void recordSquash(const Uop &uop);

    /** Predictor attempted to fuse at tail site @a tail_pc. */
    void recordAttempt(uint64_t tail_pc);

    /** A predicted pair tailed at @a tail_pc resolved incorrect. */
    void recordMispredict(uint64_t tail_pc);

    /** A predicted pair tailed at @a tail_pc was broken pre-issue. */
    void recordBreak(uint64_t tail_pc, ProfBreak reason);

    /** Close the run: flush the last window, sort the sites. */
    void finalize(uint64_t total_cycles);

    /** Valid after finalize(). */
    const ProfileData &data() const { return result; }

  private:
    /** One committed memory nucleus in the oracle finder's window. */
    struct Nucleus
    {
        uint64_t seq = 0;
        bool isStore = false;
        uint64_t begin = 0;
        uint64_t end = 0;
        uint8_t baseReg = 0;
        uint8_t rd = 0;
        bool writesRd = false;
        bool fused = false;   ///< committed as part of a fused pair
        bool claimed = false; ///< already the head of an oracle pair
    };

    ProfileSite &site(uint64_t pc);
    void closeWindow();
    void oracleScan(const Uop &uop);
    MissReason classifyMiss(const Uop &uop, uint64_t distance) const;
    void pushNucleus(const DynInst &dyn, bool fused);

    // Configuration mirrored from CoreParams at attach time.
    uint64_t oracleDistance;    ///< eligibility window (UCH reach)
    uint64_t predictorDistance; ///< what the predictor can express
    uint64_t regionBytes;
    bool fuseDbrStores;
    uint64_t windowCycles;

    std::unordered_map<uint64_t, ProfileSite> siteMap;
    std::deque<Nucleus> window;

    ProfileWindow current;
    uint64_t cyclesSeen = 0;
    bool finalized = false;

    ProfileData result;
};

} // namespace helios

#endif // TELEMETRY_PROFILER_HH
