/**
 * @file
 * Host metrics registry: resource and throughput accounting for the
 * harness process itself, exported two ways —
 *
 *  - a Prometheus text-format file (`helios_run --metrics FILE`,
 *    HELIOS_METRICS=FILE for the benches), so sweep campaigns can be
 *    scraped/aggregated with standard tooling;
 *  - an additive `host` section in RunReport files (schema v3; see
 *    attachHostSection in harness/run_report.hh), so every archived
 *    report carries its own provenance and cost.
 *
 * Collected: wall-clock per harness phase (fed by HostSpan — every
 * traced phase is also a metric), peak RSS via getrusage, total guest
 * instructions/µops and their per-second rates, matrix cells
 * completed and cells/s, plus a build-info stamp (git hash, compiler,
 * flags, build type) baked in at compile time.
 *
 * Like every telemetry layer here it is opt-in and observer-effect
 * free: disabled, the runMatrix hooks cost one relaxed atomic load,
 * and enabling it changes no architectural result or counter
 * (tier-1 guarded).
 */

#ifndef TELEMETRY_HOST_METRICS_HH
#define TELEMETRY_HOST_METRICS_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "common/json.hh"

namespace helios
{

/** Compile-time provenance stamp. */
struct BuildInfo
{
    std::string gitHash;   ///< short commit hash ("unknown" outside git)
    std::string compiler;  ///< __VERSION__ of the building compiler
    std::string flags;     ///< CMAKE_CXX_FLAGS the build was configured with
    std::string buildType; ///< CMAKE_BUILD_TYPE
};

const BuildInfo &buildInfo();

/** Process-wide metrics registry; all mutators are thread-safe. */
class HostMetrics
{
  public:
    static HostMetrics &global();

    void enable() { on.store(true, std::memory_order_relaxed); }
    bool
    enabled() const
    {
        return on.load(std::memory_order_relaxed);
    }

    /** Accumulate wall-clock into the named phase (HostSpan calls
     *  this with its category on every span end). */
    void addPhaseSeconds(const std::string &phase, double seconds);

    /** Account retired guest work (one call per finished run/cell). */
    void recordGuestWork(uint64_t instructions, uint64_t uops);

    /** Account one completed matrix cell. */
    void recordCellCompleted();

    /** Seconds since registry construction (process lifetime proxy). */
    double wallSeconds() const;

    /** Peak resident set size of this process, in bytes (getrusage). */
    static uint64_t peakRssBytes();

    uint64_t guestInstructions() const;
    uint64_t guestUops() const;
    uint64_t cellsCompleted() const;

    /** Render every metric in Prometheus text exposition format. */
    std::string prometheusText() const;

    /** The RunReport `host` section (schema v3). */
    JsonValue toJson() const;

    /** Write prometheusText() to @a path; logError and return false
     *  on I/O failure. */
    bool writeToFile(const std::string &path) const;

    /** Zero all accumulators (tests). */
    void reset();

  private:
    HostMetrics();

    struct Impl;
    Impl *impl;
    std::atomic<bool> on{false};
};

/** Enable the registry and write the Prometheus file at process
 *  exit (HELIOS_METRICS / --metrics plumbing). */
void writeHostMetricsAtExit(const std::string &path);

} // namespace helios

#endif // TELEMETRY_HOST_METRICS_HH
