/**
 * @file
 * Per-µop lifecycle tracing: the telemetry layer's record of every
 * µ-op's journey through the pipeline, with fusion annotations, and
 * exporters for two standard pipeline-viewer formats:
 *
 *  - Kanata text (`writeKonata`), loadable in the Konata viewer
 *    (https://github.com/shioyadan/Konata);
 *  - Chrome `trace_event` JSON (`writeChromeTrace`), loadable in
 *    Perfetto / chrome://tracing.
 *
 * The tracer is pull-free and passive: the pipeline calls
 * recordCommit()/recordSquash() when a CoreParams::tracer is attached,
 * and each call copies the timestamps the µ-op already carries. With
 * no tracer attached the hot path pays a single predictable branch.
 */

#ifndef TELEMETRY_LIFECYCLE_HH
#define TELEMETRY_LIFECYCLE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "uarch/uop.hh"

namespace helios
{

/** Completed lifecycle of one µ-op (committed or squashed). */
struct UopLifecycle
{
    uint64_t seq = 0;
    uint64_t uid = 0;
    uint64_t pc = 0;
    std::string disasm; ///< head nucleus (tail appended when fused)

    // Stage timestamps, in cycles. A µ-op squashed before reaching a
    // stage leaves the later stamps at 0.
    uint64_t fetch = 0;
    uint64_t aqInsert = 0; ///< decode done, inserted into the AQ
    uint64_t rename = 0;
    uint64_t dispatch = 0;
    uint64_t issue = 0;
    uint64_t complete = 0;
    uint64_t retire = 0;   ///< commit or squash cycle

    bool squashed = false;
    std::string squashReason;

    // ---- fusion annotations ----
    FusionKind fusion = FusionKind::None;
    Idiom idiom = Idiom::None;
    uint64_t pairSeq = 0;      ///< tail nucleus seq (0: unfused)
    uint64_t pairDistance = 0; ///< tail.seq - head.seq (0: unfused)
    uint64_t catalystUops = 0; ///< µ-ops between the nuclei
    bool predicted = false;    ///< pair came from the fusion predictor

    bool fused() const { return fusion != FusionKind::None; }
};

/**
 * Collects UopLifecycle records during a pipeline run and renders
 * them. Records are buffered in memory (one per committed or squashed
 * µ-op), so attach the tracer to bounded runs — every figure-scale
 * sweep runs with tracing off.
 */
class LifecycleTracer
{
  public:
    /** Called by the pipeline when @a uop retires. */
    void recordCommit(const Uop &uop, uint64_t cycle);

    /** Called by the pipeline when @a uop is squashed. */
    void recordSquash(const Uop &uop, uint64_t cycle,
                      const char *reason);

    const std::vector<UopLifecycle> &records() const { return log; }
    size_t numRecords() const { return log.size(); }
    size_t numCommitted() const { return committed; }
    size_t numSquashed() const { return log.size() - committed; }

    /** Chrome trace_event JSON ({"traceEvents": [...]}). */
    void writeChromeTrace(std::ostream &out) const;

    /** Kanata 0004 pipeline-viewer text. */
    void writeKonata(std::ostream &out) const;

  private:
    UopLifecycle capture(const Uop &uop) const;

    std::vector<UopLifecycle> log;
    size_t committed = 0;
};

} // namespace helios

#endif // TELEMETRY_LIFECYCLE_HH
