#include "telemetry/annotate.hh"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/logging.hh"
#include "isa/decoder.hh"
#include "isa/disasm.hh"

namespace helios
{

namespace
{

std::map<uint64_t, std::string>
labelsByAddress(const Program &program)
{
    std::map<uint64_t, std::string> labels;
    // First symbol name at each address wins (ties are rare: alias
    // labels on the same instruction).
    for (const auto &[name, addr] : program.symbols)
        labels.emplace(addr, name);
    return labels;
}

/** Indices of the top_n profiled lines by attributed stall cycles. */
std::vector<size_t>
hottest(const std::vector<AnnotatedLine> &lines, size_t top_n)
{
    std::vector<size_t> order;
    for (size_t i = 0; i < lines.size(); ++i)
        if (lines[i].profiled && lines[i].site.stallCycles() > 0)
            order.push_back(i);
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         return lines[a].site.stallCycles() >
                                lines[b].site.stallCycles();
                     });
    if (order.size() > top_n)
        order.resize(top_n);
    return order;
}

std::string
renderCounts(const std::array<uint64_t, kNumPairClasses> &fused,
             const std::array<uint64_t, kNumMissReasons> &missed)
{
    std::ostringstream out;
    bool first = true;
    for (size_t i = 0; i < kNumPairClasses; ++i) {
        if (!fused[i])
            continue;
        out << (first ? "" : ", ")
            << pairClassName(static_cast<PairClass>(i)) << " "
            << fused[i];
        first = false;
    }
    for (size_t i = 0; i < kNumMissReasons; ++i) {
        if (!missed[i])
            continue;
        out << (first ? "" : ", ") << "missed:"
            << missReasonName(static_cast<MissReason>(i)) << " "
            << missed[i];
        first = false;
    }
    return out.str();
}

} // namespace

std::vector<AnnotatedLine>
annotateLines(const ProfileData &profile, const Program &program)
{
    const auto labels = labelsByAddress(program);
    std::vector<AnnotatedLine> lines;
    lines.reserve(program.code.size());
    for (size_t i = 0; i < program.code.size(); ++i) {
        AnnotatedLine line;
        line.pc = program.textBase + 4 * i;
        auto label = labels.find(line.pc);
        if (label != labels.end())
            line.label = label->second;
        line.disasm = disassemble(decode(program.code[i]));
        if (const ProfileSite *site = profile.find(line.pc)) {
            line.profiled = true;
            line.site = *site;
        } else {
            line.site.pc = line.pc;
        }
        lines.push_back(std::move(line));
    }
    return lines;
}

std::string
annotateText(const ProfileData &profile, const Program &program,
             size_t top_n)
{
    const auto lines = annotateLines(profile, program);
    size_t profiled = 0;
    for (const AnnotatedLine &line : lines)
        profiled += line.profiled;

    std::ostringstream out;
    out << strFormat("annotated disassembly: %zu text instructions, "
                     "%zu executed\n",
                     lines.size(), profiled);
    out << strFormat("cycles %llu, fused pairs %llu",
                     (unsigned long long)profile.totalCycles,
                     (unsigned long long)profile.fusedPairs());
    const std::string totals =
        renderCounts(profile.fusedTotals, profile.missedTotals);
    if (!totals.empty())
        out << " (" << totals << ")";
    out << strFormat(", missed pairs %llu\n",
                     (unsigned long long)profile.missedPairs());

    const auto hot = hottest(lines, top_n);
    if (!hot.empty()) {
        out << "\nhottest sites (by attributed stall cycles):\n";
        for (size_t index : hot) {
            const AnnotatedLine &line = lines[index];
            out << strFormat(
                "  0x%05llx  %-28s %10llu cycles  %s\n",
                (unsigned long long)line.pc, line.disasm.c_str(),
                (unsigned long long)line.site.stallCycles(),
                line.site.dominantStall().c_str());
        }
    }

    out << "\n";
    for (const AnnotatedLine &line : lines) {
        if (!line.label.empty())
            out << line.label << ":\n";
        out << strFormat("  0x%05llx  %-28s",
                         (unsigned long long)line.pc,
                         line.disasm.c_str());
        if (line.profiled) {
            const ProfileSite &site = line.site;
            out << strFormat("  execs %8llu  cov %5.1f%%",
                             (unsigned long long)site.executions,
                             100.0 * site.coverage());
            const std::string counts =
                renderCounts(site.fused, site.missed);
            if (!counts.empty())
                out << "  [" << counts << "]";
            if (site.stallCycles() > 0)
                out << strFormat(
                    "  stall %llu (%s)",
                    (unsigned long long)site.stallCycles(),
                    site.dominantStall().c_str());
        }
        out << "\n";
    }
    return out.str();
}

JsonValue
annotateJson(const ProfileData &profile, const Program &program,
             size_t top_n)
{
    const auto lines = annotateLines(profile, program);

    JsonValue root = JsonValue::object();
    root.set("schema", JsonValue("helios-annotate"));
    root.set("version", JsonValue(uint64_t(1)));
    root.set("total_cycles", JsonValue(profile.totalCycles));
    root.set("fused_pairs", JsonValue(profile.fusedPairs()));
    root.set("missed_pairs", JsonValue(profile.missedPairs()));

    JsonValue hottest_pcs = JsonValue::array();
    for (size_t index : hottest(lines, top_n))
        hottest_pcs.push(JsonValue(lines[index].pc));
    root.set("hottest", std::move(hottest_pcs));

    JsonValue line_array = JsonValue::array();
    for (const AnnotatedLine &line : lines) {
        JsonValue entry = JsonValue::object();
        entry.set("pc", JsonValue(line.pc));
        if (!line.label.empty())
            entry.set("label", JsonValue(line.label));
        entry.set("disasm", JsonValue(line.disasm));
        entry.set("profiled", JsonValue(line.profiled));
        if (line.profiled) {
            entry.set("coverage", JsonValue(line.site.coverage()));
            const std::string stall = line.site.dominantStall();
            if (!stall.empty())
                entry.set("dominant_stall", JsonValue(stall));
            entry.set("site", line.site.toJson());
        }
        line_array.push(std::move(entry));
    }
    root.set("lines", std::move(line_array));
    return root;
}

} // namespace helios
