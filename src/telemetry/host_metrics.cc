#include "telemetry/host_metrics.hh"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include <sys/resource.h>

#include "common/logging.hh"

// Build provenance, injected per-source by src/telemetry/CMakeLists.txt.
#ifndef HELIOS_GIT_HASH
#define HELIOS_GIT_HASH "unknown"
#endif
#ifndef HELIOS_BUILD_FLAGS
#define HELIOS_BUILD_FLAGS ""
#endif
#ifndef HELIOS_BUILD_TYPE
#define HELIOS_BUILD_TYPE ""
#endif

namespace helios
{

const BuildInfo &
buildInfo()
{
    static const BuildInfo info = {HELIOS_GIT_HASH, __VERSION__,
                                   HELIOS_BUILD_FLAGS,
                                   HELIOS_BUILD_TYPE};
    return info;
}

namespace
{

/** Escape a Prometheus label value (backslash, quote, newline). */
std::string
labelEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
    return out;
}

} // namespace

struct HostMetrics::Impl
{
    mutable std::mutex mutex;
    std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();
    std::map<std::string, double> phaseSeconds; ///< sorted for output
    uint64_t guestInsts = 0;
    uint64_t guestUops = 0;
    uint64_t cells = 0;
};

HostMetrics::HostMetrics() : impl(new Impl) {}

HostMetrics &
HostMetrics::global()
{
    // Leaked intentionally: atexit writers run after static dtors.
    static HostMetrics *metrics = new HostMetrics;
    return *metrics;
}

void
HostMetrics::addPhaseSeconds(const std::string &phase, double seconds)
{
    std::lock_guard<std::mutex> lock(impl->mutex);
    impl->phaseSeconds[phase] += seconds;
}

void
HostMetrics::recordGuestWork(uint64_t instructions, uint64_t uops)
{
    std::lock_guard<std::mutex> lock(impl->mutex);
    impl->guestInsts += instructions;
    impl->guestUops += uops;
}

void
HostMetrics::recordCellCompleted()
{
    std::lock_guard<std::mutex> lock(impl->mutex);
    ++impl->cells;
}

double
HostMetrics::wallSeconds() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - impl->epoch)
        .count();
}

uint64_t
HostMetrics::peakRssBytes()
{
    struct rusage usage = {};
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
    // Linux reports ru_maxrss in kilobytes.
    return uint64_t(usage.ru_maxrss) * 1024;
}

uint64_t
HostMetrics::guestInstructions() const
{
    std::lock_guard<std::mutex> lock(impl->mutex);
    return impl->guestInsts;
}

uint64_t
HostMetrics::guestUops() const
{
    std::lock_guard<std::mutex> lock(impl->mutex);
    return impl->guestUops;
}

uint64_t
HostMetrics::cellsCompleted() const
{
    std::lock_guard<std::mutex> lock(impl->mutex);
    return impl->cells;
}

std::string
HostMetrics::prometheusText() const
{
    const double wall = wallSeconds();
    const BuildInfo &build = buildInfo();

    std::lock_guard<std::mutex> lock(impl->mutex);
    std::ostringstream out;
    out.precision(6);
    out << std::fixed;

    out << "# HELP helios_build_info Build provenance stamp "
           "(value is always 1).\n"
        << "# TYPE helios_build_info gauge\n"
        << "helios_build_info{git_hash=\"" << labelEscape(build.gitHash)
        << "\",compiler=\"" << labelEscape(build.compiler)
        << "\",build_type=\"" << labelEscape(build.buildType)
        << "\",flags=\"" << labelEscape(build.flags) << "\"} 1\n";

    out << "# HELP helios_wall_clock_seconds Harness process "
           "wall-clock time.\n"
        << "# TYPE helios_wall_clock_seconds gauge\n"
        << "helios_wall_clock_seconds " << wall << "\n";

    out << "# HELP helios_peak_rss_bytes Peak resident set size "
           "(getrusage).\n"
        << "# TYPE helios_peak_rss_bytes gauge\n"
        << "helios_peak_rss_bytes " << peakRssBytes() << "\n";

    out << "# HELP helios_phase_seconds Wall-clock accumulated per "
           "harness phase (HostSpan category).\n"
        << "# TYPE helios_phase_seconds gauge\n";
    for (const auto &[phase, seconds] : impl->phaseSeconds)
        out << "helios_phase_seconds{phase=\"" << labelEscape(phase)
            << "\"} " << seconds << "\n";

    out << "# HELP helios_guest_instructions_total Guest instructions "
           "retired across all runs.\n"
        << "# TYPE helios_guest_instructions_total counter\n"
        << "helios_guest_instructions_total " << impl->guestInsts
        << "\n";
    out << "# HELP helios_guest_uops_total Guest micro-ops retired "
           "across all runs.\n"
        << "# TYPE helios_guest_uops_total counter\n"
        << "helios_guest_uops_total " << impl->guestUops << "\n";
    out << "# HELP helios_guest_instructions_per_second Guest retire "
           "rate over process wall-clock.\n"
        << "# TYPE helios_guest_instructions_per_second gauge\n"
        << "helios_guest_instructions_per_second "
        << (wall > 0 ? double(impl->guestInsts) / wall : 0.0) << "\n";
    out << "# HELP helios_guest_uops_per_second Guest micro-op rate "
           "over process wall-clock.\n"
        << "# TYPE helios_guest_uops_per_second gauge\n"
        << "helios_guest_uops_per_second "
        << (wall > 0 ? double(impl->guestUops) / wall : 0.0) << "\n";

    out << "# HELP helios_cells_completed_total Matrix cells "
           "completed.\n"
        << "# TYPE helios_cells_completed_total counter\n"
        << "helios_cells_completed_total " << impl->cells << "\n";
    out << "# HELP helios_cells_per_second Matrix cell completion "
           "rate over process wall-clock.\n"
        << "# TYPE helios_cells_per_second gauge\n"
        << "helios_cells_per_second "
        << (wall > 0 ? double(impl->cells) / wall : 0.0) << "\n";

    return out.str();
}

JsonValue
HostMetrics::toJson() const
{
    const double wall = wallSeconds();
    const BuildInfo &info = buildInfo();

    JsonValue build = JsonValue::object();
    build.set("git_hash", info.gitHash);
    build.set("compiler", info.compiler);
    build.set("flags", info.flags);
    build.set("build_type", info.buildType);

    std::lock_guard<std::mutex> lock(impl->mutex);
    JsonValue value = JsonValue::object();
    value.set("build", std::move(build));
    value.set("wall_seconds", wall);
    value.set("peak_rss_bytes", peakRssBytes());

    JsonValue phases = JsonValue::object();
    for (const auto &[phase, seconds] : impl->phaseSeconds)
        phases.set(phase, seconds);
    value.set("phases", std::move(phases));

    value.set("guest_instructions", impl->guestInsts);
    value.set("guest_uops", impl->guestUops);
    value.set("guest_instructions_per_second",
              wall > 0 ? double(impl->guestInsts) / wall : 0.0);
    value.set("guest_uops_per_second",
              wall > 0 ? double(impl->guestUops) / wall : 0.0);
    value.set("cells_completed", impl->cells);
    value.set("cells_per_second",
              wall > 0 ? double(impl->cells) / wall : 0.0);
    return value;
}

bool
HostMetrics::writeToFile(const std::string &path) const
{
    std::ofstream out(path);
    if (out)
        out << prometheusText();
    if (!out) {
        logError("host metrics: cannot write '%s'", path.c_str());
        return false;
    }
    return true;
}

void
HostMetrics::reset()
{
    std::lock_guard<std::mutex> lock(impl->mutex);
    impl->phaseSeconds.clear();
    impl->guestInsts = 0;
    impl->guestUops = 0;
    impl->cells = 0;
}

namespace
{

std::string &
metricsPath()
{
    static std::string path;
    return path;
}

void
flushHostMetrics()
{
    if (!metricsPath().empty())
        HostMetrics::global().writeToFile(metricsPath());
}

} // namespace

void
writeHostMetricsAtExit(const std::string &path)
{
    HostMetrics::global().enable();
    const bool registered = !metricsPath().empty();
    metricsPath() = path;
    if (!registered)
        std::atexit(flushHostMetrics);
}

} // namespace helios
