/**
 * @file
 * Profile-annotated disassembly.
 *
 * Joins a FusionProfiler's per-PC ProfileData with a program image:
 * every text-section instruction is disassembled and decorated with
 * its execution count, fusion coverage, per-class fused-pair counts,
 * missed-opportunity reasons and dominant stall category. Emitted in
 * two forms — human-readable text (the `helios_annotate` tool and
 * `helios_run --annotate`) and JSON for downstream tooling.
 */

#ifndef TELEMETRY_ANNOTATE_HH
#define TELEMETRY_ANNOTATE_HH

#include <string>

#include "asm/program.hh"
#include "common/json.hh"
#include "telemetry/profiler.hh"

namespace helios
{

/** One annotated text-section line (profiled or not). */
struct AnnotatedLine
{
    uint64_t pc = 0;
    std::string label;  ///< symbol defined at this pc ("" if none)
    std::string disasm;
    bool profiled = false; ///< a ProfileSite exists for this pc
    ProfileSite site;      ///< zeroed when !profiled
};

/**
 * Join @a profile with @a program: one AnnotatedLine per text-section
 * instruction, in address order. Sites outside the text section
 * (there should be none) are ignored.
 */
std::vector<AnnotatedLine> annotateLines(const ProfileData &profile,
                                         const Program &program);

/**
 * Human-readable annotated disassembly: run totals, the @a top_n
 * hottest sites by attributed stall cycles, then every text line with
 * executions / coverage / dominant stall.
 */
std::string annotateText(const ProfileData &profile,
                         const Program &program, size_t top_n = 10);

/**
 * The same join as machine-readable JSON
 * (`"schema": "helios-annotate"`): totals, hottest sites, and one
 * entry per executed line including the full per-site counters.
 */
JsonValue annotateJson(const ProfileData &profile,
                       const Program &program, size_t top_n = 10);

} // namespace helios

#endif // TELEMETRY_ANNOTATE_HH
