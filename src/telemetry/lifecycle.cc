#include "telemetry/lifecycle.hh"

#include <algorithm>
#include <ostream>

#include "common/json.hh"
#include "common/logging.hh"
#include "isa/disasm.hh"

namespace helios
{

namespace
{

/** The lifecycle stages a record can occupy, in pipeline order. */
struct StageSpan
{
    const char *name; ///< short stage mnemonic (Konata column)
    uint64_t begin;
    uint64_t end;
};

/**
 * Expand a record into its stage spans. Stages the µ-op never reached
 * (squash mid-flight) are dropped; spans are clamped so ends never
 * precede begins even for same-cycle transitions.
 */
std::vector<StageSpan>
stageSpans(const UopLifecycle &rec)
{
    // (name, stamp) in pipeline order; a zero stamp after fetch means
    // the µ-op never reached the stage (fetch itself can legitimately
    // be cycle 0).
    const std::pair<const char *, uint64_t> stamps[] = {
        {"F", rec.fetch},    {"A", rec.aqInsert}, {"R", rec.rename},
        {"Q", rec.dispatch}, {"X", rec.issue},    {"C", rec.complete},
    };
    std::vector<StageSpan> spans;
    uint64_t prev = rec.fetch;
    for (size_t i = 0; i < std::size(stamps); ++i) {
        const uint64_t begin = stamps[i].second;
        if (i > 0 && begin == 0)
            break; // squashed before reaching this stage
        uint64_t end = rec.retire;
        if (i + 1 < std::size(stamps) && stamps[i + 1].second != 0)
            end = stamps[i + 1].second;
        const uint64_t lo = std::max(begin, prev);
        spans.push_back({stamps[i].first, lo, std::max(end, lo)});
        prev = spans.back().end;
    }
    return spans;
}

const char *
fusionKindLabel(FusionKind kind)
{
    switch (kind) {
      case FusionKind::None: return "none";
      case FusionKind::CsfMem: return "CSF-mem";
      case FusionKind::CsfOther: return "CSF-idiom";
      case FusionKind::NcsfMem: return "NCSF";
    }
    return "?";
}

} // namespace

UopLifecycle
LifecycleTracer::capture(const Uop &uop) const
{
    UopLifecycle rec;
    rec.seq = uop.seq;
    rec.uid = uop.uid;
    rec.pc = uop.dyn.pc;
    rec.disasm = disassemble(uop.dyn.inst);
    rec.fetch = uop.fetchCycle;
    rec.aqInsert = uop.aqCycle;
    rec.rename = uop.renameCycle;
    rec.dispatch = uop.dispatchCycle;
    rec.issue = uop.issueCycle;
    rec.complete = uop.doneCycle;
    if (uop.hasTail) {
        rec.disasm += " + ";
        rec.disasm += disassemble(uop.tailDyn.inst);
        rec.fusion = uop.fusion;
        rec.idiom = uop.idiom;
        rec.pairSeq = uop.tailDyn.seq;
        rec.pairDistance = uop.tailDyn.seq - uop.seq;
        rec.catalystUops = rec.pairDistance ? rec.pairDistance - 1 : 0;
        rec.predicted = uop.fpInitiated;
    }
    return rec;
}

void
LifecycleTracer::recordCommit(const Uop &uop, uint64_t cycle)
{
    UopLifecycle rec = capture(uop);
    rec.retire = cycle;
    log.push_back(std::move(rec));
    ++committed;
}

void
LifecycleTracer::recordSquash(const Uop &uop, uint64_t cycle,
                              const char *reason)
{
    UopLifecycle rec = capture(uop);
    rec.retire = cycle;
    rec.squashed = true;
    rec.squashReason = reason ? reason : "squash";
    log.push_back(std::move(rec));
}

// ---------------------------------------------------------------------
// Chrome trace_event JSON (Perfetto / chrome://tracing)
// ---------------------------------------------------------------------

void
LifecycleTracer::writeChromeTrace(std::ostream &out) const
{
    // One complete ("X") event per stage span; timestamps are cycles
    // expressed as microseconds (Perfetto's native unit). µ-ops are
    // spread over a bank of tracks so concurrent lifetimes stack.
    constexpr unsigned numTracks = 32;
    out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
    bool first = true;
    auto emit = [&](const JsonValue &event) {
        if (!first)
            out << ",\n";
        first = false;
        out << event.dump();
    };

    JsonValue meta = JsonValue::object();
    meta.set("name", "process_name");
    meta.set("ph", "M");
    meta.set("pid", uint64_t(0));
    JsonValue args = JsonValue::object();
    args.set("name", "helios pipeline");
    meta.set("args", args);
    emit(meta);

    for (const UopLifecycle &rec : log) {
        const uint64_t tid = rec.seq % numTracks;
        JsonValue common_args = JsonValue::object();
        common_args.set("seq", rec.seq);
        common_args.set("pc", strFormat("0x%llx",
                                        (unsigned long long)rec.pc));
        common_args.set("disasm", rec.disasm);
        if (rec.fused()) {
            common_args.set("fusion", fusionKindLabel(rec.fusion));
            common_args.set("idiom", idiomName(rec.idiom));
            common_args.set("pair_seq", rec.pairSeq);
            common_args.set("pair_distance", rec.pairDistance);
            common_args.set("catalyst_uops", rec.catalystUops);
            common_args.set("predicted", rec.predicted);
        }
        if (rec.squashed)
            common_args.set("squash_reason", rec.squashReason);

        for (const StageSpan &span : stageSpans(rec)) {
            JsonValue event = JsonValue::object();
            event.set("name", strFormat("%s %llu: %s", span.name,
                                        (unsigned long long)rec.seq,
                                        rec.disasm.c_str()));
            event.set("cat", rec.squashed ? "squashed" : "uop");
            event.set("ph", "X");
            event.set("ts", span.begin);
            event.set("dur", span.end - span.begin);
            event.set("pid", uint64_t(0));
            event.set("tid", tid);
            event.set("args", common_args);
            emit(event);
        }
        if (rec.squashed) {
            JsonValue event = JsonValue::object();
            event.set("name", strFormat("squash %llu (%s)",
                                        (unsigned long long)rec.seq,
                                        rec.squashReason.c_str()));
            event.set("cat", "squash");
            event.set("ph", "i");
            event.set("ts", rec.retire);
            event.set("pid", uint64_t(0));
            event.set("tid", tid);
            event.set("s", "t");
            emit(event);
        }
    }
    out << "\n]}\n";
}

// ---------------------------------------------------------------------
// Kanata pipeline-viewer text
// ---------------------------------------------------------------------

void
LifecycleTracer::writeKonata(std::ostream &out) const
{
    // The Kanata format is a cycle-ordered command stream; build the
    // command list with explicit cycles, sort, then emit with C
    // deltas. File ids are assigned in fetch order as Konata expects.
    struct Command
    {
        uint64_t cycle;
        uint64_t order; ///< stable tiebreak: file id * 8 + step
        std::string text;
    };

    std::vector<const UopLifecycle *> sorted;
    sorted.reserve(log.size());
    for (const UopLifecycle &rec : log)
        sorted.push_back(&rec);
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const UopLifecycle *a, const UopLifecycle *b) {
                         return a->fetch != b->fetch
                                    ? a->fetch < b->fetch
                                    : a->seq < b->seq;
                     });

    std::vector<Command> commands;
    uint64_t retire_id = 1;
    for (size_t id = 0; id < sorted.size(); ++id) {
        const UopLifecycle &rec = *sorted[id];
        const uint64_t base = uint64_t(id) * 16;
        const auto spans = stageSpans(rec);

        commands.push_back(
            {rec.fetch, base + 0,
             strFormat("I\t%zu\t%llu\t0", id,
                       (unsigned long long)rec.seq)});
        commands.push_back(
            {rec.fetch, base + 1,
             strFormat("L\t%zu\t0\t0x%05llx: %s", id,
                       (unsigned long long)rec.pc,
                       rec.disasm.c_str())});
        std::string tip = strFormat("seq=%llu uid=%llu",
                                    (unsigned long long)rec.seq,
                                    (unsigned long long)rec.uid);
        if (rec.fused())
            tip += strFormat(" %s idiom=%s pair=%llu dist=%llu "
                             "catalysts=%llu%s",
                             fusionKindLabel(rec.fusion),
                             idiomName(rec.idiom),
                             (unsigned long long)rec.pairSeq,
                             (unsigned long long)rec.pairDistance,
                             (unsigned long long)rec.catalystUops,
                             rec.predicted ? " predicted" : "");
        if (rec.squashed)
            tip += " squashed: " + rec.squashReason;
        commands.push_back({rec.fetch, base + 2,
                            strFormat("L\t%zu\t1\t%s", id, tip.c_str())});

        uint64_t step = 3;
        for (const StageSpan &span : spans) {
            commands.push_back(
                {span.begin, base + step++,
                 strFormat("S\t%zu\t0\t%s", id, span.name)});
        }
        // Konata closes a stage when the next one starts; the last
        // stage needs an explicit end at retire.
        if (!spans.empty())
            commands.push_back(
                {std::max(spans.back().end, spans.back().begin),
                 base + step++,
                 strFormat("E\t%zu\t0\t%s", id,
                           spans.back().name)});
        commands.push_back(
            {rec.retire, base + step,
             strFormat("R\t%zu\t%llu\t%d", id,
                       (unsigned long long)
                           (rec.squashed ? 0 : retire_id),
                       rec.squashed ? 1 : 0)});
        if (!rec.squashed)
            ++retire_id;
    }

    std::stable_sort(commands.begin(), commands.end(),
                     [](const Command &a, const Command &b) {
                         return a.cycle != b.cycle
                                    ? a.cycle < b.cycle
                                    : a.order < b.order;
                     });

    out << "Kanata\t0004\n";
    uint64_t current = commands.empty() ? 0 : commands.front().cycle;
    out << "C=\t" << current << '\n';
    for (const Command &command : commands) {
        if (command.cycle != current) {
            out << "C\t" << command.cycle - current << '\n';
            current = command.cycle;
        }
        out << command.text << '\n';
    }
}

} // namespace helios
