#include "telemetry/profiler.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"
#include "fusion/fusion_predictor.hh"

namespace helios
{

// ---------------------------------------------------------------------
// Names
// ---------------------------------------------------------------------

const char *
pairClassName(PairClass cls)
{
    switch (cls) {
      case PairClass::Csf: return "csf";
      case PairClass::Sbr: return "sbr";
      case PairClass::Ncsf: return "ncsf";
      case PairClass::Nctf: return "nctf";
      case PairClass::Dbr: return "dbr";
    }
    return "?";
}

const char *
missReasonName(MissReason reason)
{
    switch (reason) {
      case MissReason::QueueCapacity: return "queue_capacity";
      case MissReason::CatalystInterference:
        return "catalyst_interference";
      case MissReason::DistanceOverLimit: return "distance_over_limit";
      case MissReason::ColdSite: return "cold_site";
      case MissReason::PredictorDisagreement:
        return "predictor_disagreement";
    }
    return "?";
}

namespace
{

bool
rangesOverlap(uint64_t a_begin, uint64_t a_end, uint64_t b_begin,
              uint64_t b_end)
{
    return a_begin < b_end && b_begin < a_end;
}

JsonValue
countMapToJson(const std::map<std::string, uint64_t> &counts)
{
    JsonValue value = JsonValue::object();
    for (const auto &[name, count] : counts)
        value.set(name, JsonValue(count));
    return value;
}

std::map<std::string, uint64_t>
countMapFromJson(const JsonValue &value)
{
    std::map<std::string, uint64_t> counts;
    for (const auto &[name, count] : value.members())
        counts.emplace(name, count.asUint());
    return counts;
}

template <size_t N, typename NameFn>
JsonValue
namedArrayToJson(const std::array<uint64_t, N> &counts, NameFn name)
{
    JsonValue value = JsonValue::object();
    for (size_t i = 0; i < N; ++i)
        value.set(name(i), JsonValue(counts[i]));
    return value;
}

template <size_t N, typename NameFn>
std::array<uint64_t, N>
namedArrayFromJson(const JsonValue &value, NameFn name,
                   const char *what)
{
    std::array<uint64_t, N> counts{};
    for (size_t i = 0; i < N; ++i)
        counts[i] = value.at(name(i)).asUint();
    if (value.members().size() != N)
        fatal("profile: unexpected extra %s entries", what);
    return counts;
}

const char *
pairClassNameAt(size_t i)
{
    return pairClassName(static_cast<PairClass>(i));
}

const char *
missReasonNameAt(size_t i)
{
    return missReasonName(static_cast<MissReason>(i));
}

} // namespace

// ---------------------------------------------------------------------
// ProfileSite
// ---------------------------------------------------------------------

uint64_t
ProfileSite::fusedPairs() const
{
    uint64_t sum = 0;
    for (uint64_t count : fused)
        sum += count;
    return sum;
}

uint64_t
ProfileSite::missedPairs() const
{
    uint64_t sum = 0;
    for (uint64_t count : missed)
        sum += count;
    return sum;
}

uint64_t
ProfileSite::stallCycles() const
{
    uint64_t sum = 0;
    for (const auto &[name, cycles] : stalls)
        sum += cycles;
    return sum;
}

double
ProfileSite::coverage() const
{
    if (!executions)
        return 0.0;
    return double(fusedPairs() + fusedTail) / double(executions);
}

std::string
ProfileSite::dominantStall() const
{
    std::string best;
    uint64_t best_cycles = 0;
    for (const auto &[name, cycles] : stalls) {
        if (cycles > best_cycles) {
            best = name;
            best_cycles = cycles;
        }
    }
    return best;
}

JsonValue
ProfileSite::toJson() const
{
    JsonValue value = JsonValue::object();
    value.set("pc", JsonValue(pc));
    value.set("executions", JsonValue(executions));
    value.set("squashes", JsonValue(squashes));
    value.set("fused", namedArrayToJson(fused, pairClassNameAt));
    value.set("fused_tail", JsonValue(fusedTail));
    value.set("attempts", JsonValue(attempts));
    value.set("mispredicts", JsonValue(mispredicts));
    value.set("breaks", countMapToJson(breaks));
    value.set("missed", namedArrayToJson(missed, missReasonNameAt));
    value.set("stalls", countMapToJson(stalls));
    return value;
}

ProfileSite
ProfileSite::fromJson(const JsonValue &value)
{
    ProfileSite site;
    site.pc = value.at("pc").asUint();
    site.executions = value.at("executions").asUint();
    site.squashes = value.at("squashes").asUint();
    site.fused = namedArrayFromJson<kNumPairClasses>(
        value.at("fused"), pairClassNameAt, "pair-class");
    site.fusedTail = value.at("fused_tail").asUint();
    site.attempts = value.at("attempts").asUint();
    site.mispredicts = value.at("mispredicts").asUint();
    site.breaks = countMapFromJson(value.at("breaks"));
    site.missed = namedArrayFromJson<kNumMissReasons>(
        value.at("missed"), missReasonNameAt, "miss-reason");
    site.stalls = countMapFromJson(value.at("stalls"));
    return site;
}

// ---------------------------------------------------------------------
// ProfileWindow
// ---------------------------------------------------------------------

JsonValue
ProfileWindow::toJson() const
{
    JsonValue value = JsonValue::object();
    value.set("start_cycle", JsonValue(startCycle));
    value.set("cycles", JsonValue(cycles));
    value.set("instructions", JsonValue(instructions));
    value.set("uops", JsonValue(uops));
    value.set("fused_pairs", JsonValue(fusedPairs));
    value.set("cpi", countMapToJson(cpi));
    return value;
}

ProfileWindow
ProfileWindow::fromJson(const JsonValue &value)
{
    ProfileWindow window;
    window.startCycle = value.at("start_cycle").asUint();
    window.cycles = value.at("cycles").asUint();
    window.instructions = value.at("instructions").asUint();
    window.uops = value.at("uops").asUint();
    window.fusedPairs = value.at("fused_pairs").asUint();
    window.cpi = countMapFromJson(value.at("cpi"));
    return window;
}

// ---------------------------------------------------------------------
// ProfileData
// ---------------------------------------------------------------------

const ProfileSite *
ProfileData::find(uint64_t pc) const
{
    // Sites are sorted by pc (finalize()).
    auto it = std::lower_bound(
        sites.begin(), sites.end(), pc,
        [](const ProfileSite &site, uint64_t key) {
            return site.pc < key;
        });
    return it != sites.end() && it->pc == pc ? &*it : nullptr;
}

uint64_t
ProfileData::fusedPairs() const
{
    uint64_t sum = 0;
    for (uint64_t count : fusedTotals)
        sum += count;
    return sum;
}

uint64_t
ProfileData::missedPairs() const
{
    uint64_t sum = 0;
    for (uint64_t count : missedTotals)
        sum += count;
    return sum;
}

JsonValue
ProfileData::toJson() const
{
    JsonValue value = JsonValue::object();
    value.set("window_cycles", JsonValue(windowCycles));
    value.set("total_cycles", JsonValue(totalCycles));
    value.set("fused", namedArrayToJson(fusedTotals, pairClassNameAt));
    value.set("missed",
              namedArrayToJson(missedTotals, missReasonNameAt));

    JsonValue site_array = JsonValue::array();
    for (const ProfileSite &site : sites)
        site_array.push(site.toJson());
    value.set("sites", std::move(site_array));

    JsonValue window_array = JsonValue::array();
    for (const ProfileWindow &window : windows)
        window_array.push(window.toJson());
    value.set("windows", std::move(window_array));
    return value;
}

ProfileData
ProfileData::fromJson(const JsonValue &value)
{
    ProfileData data;
    data.windowCycles = value.at("window_cycles").asUint();
    data.totalCycles = value.at("total_cycles").asUint();
    data.fusedTotals = namedArrayFromJson<kNumPairClasses>(
        value.at("fused"), pairClassNameAt, "pair-class");
    data.missedTotals = namedArrayFromJson<kNumMissReasons>(
        value.at("missed"), missReasonNameAt, "miss-reason");

    const JsonValue &site_array = value.at("sites");
    for (size_t i = 0; i < site_array.size(); ++i)
        data.sites.push_back(ProfileSite::fromJson(site_array.at(i)));

    const JsonValue &window_array = value.at("windows");
    for (size_t i = 0; i < window_array.size(); ++i)
        data.windows.push_back(
            ProfileWindow::fromJson(window_array.at(i)));
    return data;
}

// ---------------------------------------------------------------------
// FusionProfiler
// ---------------------------------------------------------------------

FusionProfiler::FusionProfiler(const CoreParams &params)
    : oracleDistance(params.maxFusionDistance),
      predictorDistance(FusionPredictor::maxDistance),
      regionBytes(params.fusionRegionBytes),
      fuseDbrStores(params.fuseDbrStorePairs),
      windowCycles(params.profileWindowCycles)
{
}

ProfileSite &
FusionProfiler::site(uint64_t pc)
{
    ProfileSite &entry = siteMap[pc];
    entry.pc = pc;
    return entry;
}

void
FusionProfiler::closeWindow()
{
    if (current.cycles == 0)
        return;
    result.windows.push_back(std::move(current));
    current = ProfileWindow();
    current.startCycle = cyclesSeen;
}

void
FusionProfiler::onCycle(const char *category, uint64_t blocked_pc,
                        bool blocked_valid)
{
    ++current.cycles;
    ++current.cpi[category];
    ++cyclesSeen;
    if (blocked_valid)
        ++site(blocked_pc).stalls[category];
    if (windowCycles && current.cycles >= windowCycles)
        closeWindow();
}

void
FusionProfiler::pushNucleus(const DynInst &dyn, bool fused)
{
    Nucleus nucleus;
    nucleus.seq = dyn.seq;
    nucleus.isStore = dyn.isStore();
    nucleus.begin = dyn.effAddr;
    nucleus.end = dyn.effAddr + dyn.memSize();
    nucleus.baseReg = dyn.inst.baseReg();
    nucleus.rd = dyn.inst.rd;
    nucleus.writesRd = dyn.inst.writesReg();
    nucleus.fused = fused;
    window.push_back(nucleus);
    while (!window.empty() &&
           dyn.seq - window.front().seq > oracleDistance)
        window.pop_front();
}

MissReason
FusionProfiler::classifyMiss(const Uop &uop, uint64_t distance) const
{
    // Priority chain; see the MissReason documentation. The pipeline
    // stamps Uop::profBreak when Helios machinery fused the pair and
    // then had to break it.
    if (uop.profBreak != ProfBreak::None) {
        if (uop.profBreak == ProfBreak::NestLimit)
            return MissReason::QueueCapacity;
        return MissReason::CatalystInterference;
    }
    if (distance > predictorDistance)
        return MissReason::DistanceOverLimit;
    if (!uop.fpPred.valid)
        return MissReason::ColdSite;
    return MissReason::PredictorDisagreement;
}

void
FusionProfiler::oracleScan(const Uop &uop)
{
    const DynInst &tail = uop.dyn;
    const bool tail_store = tail.isStore();
    const uint64_t t_begin = tail.effAddr;
    const uint64_t t_end = t_begin + tail.memSize();

    Nucleus *found = nullptr;
    uint64_t span_begin = 0, span_end = 0;
    for (auto it = window.rbegin(); it != window.rend(); ++it) {
        Nucleus &head = *it;
        if (tail.seq - head.seq > oracleDistance)
            break;
        if (head.isStore != tail_store)
            continue;

        bool ok = !head.fused && !head.claimed;
        const uint64_t begin = std::min(head.begin, t_begin);
        const uint64_t end = std::max(head.end, t_end);
        if (ok)
            ok = end - begin <= regionBytes;
        // Different-base store pairs need a fourth source register;
        // only fusable when the DBR ablation knob is on.
        if (ok && tail_store && !fuseDbrStores &&
            head.baseReg != tail.inst.baseReg())
            ok = false;
        // Statically-dependent loads never fuse (Section II-B).
        if (ok && !tail_store && head.writesRd &&
            head.rd == tail.inst.baseReg())
            ok = false;
        // Never hoist a tail load over a catalyst store writing bytes
        // the pair reads (mirrors the pipeline's oracle).
        if (ok && !tail_store) {
            for (const Nucleus &mid : window) {
                if (mid.seq <= head.seq || mid.seq >= tail.seq ||
                    !mid.isStore)
                    continue;
                if (rangesOverlap(mid.begin, mid.end, begin, end)) {
                    ok = false;
                    break;
                }
            }
        }
        if (ok) {
            found = &head;
            span_begin = begin;
            span_end = end;
            break;
        }
        // Stores may only pair with the nearest older store.
        if (tail_store)
            break;
    }
    (void)span_begin;
    (void)span_end;

    if (!found)
        return;
    found->claimed = true;
    const MissReason reason =
        classifyMiss(uop, tail.seq - found->seq);
    ++site(tail.pc).missed[size_t(reason)];
    ++result.missedTotals[size_t(reason)];
}

void
FusionProfiler::recordCommit(const Uop &uop)
{
    ++site(uop.dyn.pc).executions;
    current.instructions += uop.archInsts();
    ++current.uops;

    if (uop.hasTail) {
        ++site(uop.tailDyn.pc).executions;

        PairClass cls;
        switch (uop.fusion) {
          case FusionKind::CsfOther:
            cls = PairClass::Csf;
            break;
          case FusionKind::CsfMem:
            cls = PairClass::Sbr;
            break;
          case FusionKind::NcsfMem:
          default: {
            const uint64_t distance = uop.tailDyn.seq - uop.dyn.seq;
            if (distance == 1)
                cls = PairClass::Nctf;
            else if (uop.dyn.inst.baseReg() !=
                     uop.tailDyn.inst.baseReg())
                cls = PairClass::Dbr;
            else
                cls = PairClass::Ncsf;
            break;
          }
        }
        ++site(uop.dyn.pc).fused[size_t(cls)];
        ++site(uop.tailDyn.pc).fusedTail;
        ++result.fusedTotals[size_t(cls)];
        ++current.fusedPairs;

        // Fused nuclei enter the oracle window claimed: the machine
        // already paired them, so they are not part of the gap.
        if (uop.dyn.inst.isMem())
            pushNucleus(uop.dyn, /*fused=*/true);
        if (uop.tailDyn.inst.isMem())
            pushNucleus(uop.tailDyn, /*fused=*/true);
        return;
    }

    if (uop.dyn.inst.isMem()) {
        // Unfused committed memory µ-op: the oracle finder looks for
        // the partner the machine did not take.
        oracleScan(uop);
        pushNucleus(uop.dyn, /*fused=*/false);
    }
}

void
FusionProfiler::recordSquash(const Uop &uop)
{
    ++site(uop.dyn.pc).squashes;
}

void
FusionProfiler::recordAttempt(uint64_t tail_pc)
{
    ++site(tail_pc).attempts;
}

void
FusionProfiler::recordMispredict(uint64_t tail_pc)
{
    ++site(tail_pc).mispredicts;
}

void
FusionProfiler::recordBreak(uint64_t tail_pc, ProfBreak reason)
{
    ++site(tail_pc).breaks[profBreakName(reason)];
}

void
FusionProfiler::finalize(uint64_t total_cycles)
{
    helios_assert(!finalized, "profiler finalized twice");
    finalized = true;
    // The trailing partial window; with sampling off (windowCycles 0)
    // there is no time series at all.
    if (windowCycles)
        closeWindow();

    result.windowCycles = windowCycles;
    result.totalCycles = total_cycles;
    result.sites.reserve(siteMap.size());
    for (auto &[pc, entry] : siteMap)
        result.sites.push_back(std::move(entry));
    siteMap.clear();
    std::sort(result.sites.begin(), result.sites.end(),
              [](const ProfileSite &a, const ProfileSite &b) {
                  return a.pc < b.pc;
              });
}

} // namespace helios
