/**
 * @file
 * The Helios Fusion Predictor (Section IV-A2).
 *
 * A tournament predictor that, given a potential tail nucleus' PC,
 * predicts the distance (in µ-ops) to the head nucleus it should fuse
 * with. Two 512-set/4-way components — a "local" PC-indexed table and
 * a "global" gshare-like table indexed by PC ⊕ branch history — are
 * arbitrated by a 2048-entry direct-mapped selector of 2-bit counters.
 *
 * Each component entry holds an 8-bit tag, a 6-bit distance, a 2-bit
 * confidence counter and a pseudo-LRU bit (17 bits; 34 Kbit per
 * component, 72 Kbit total with the selector).
 */

#ifndef FUSION_FUSION_PREDICTOR_HH
#define FUSION_FUSION_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/counters.hh"
#include "fusion/fp_base.hh"

namespace helios
{

/** The paper's tournament fusion predictor (Section IV-A2). */
class FusionPredictor : public FusionPredictorBase
{
  public:
    static constexpr unsigned numSets = 512;
    static constexpr unsigned numWays = 4;
    static constexpr unsigned selectorEntries = 2048;
    static constexpr unsigned maxDistance = 63; ///< 6-bit field

    FusionPredictor();

    /**
     * Look up both components at Decode.
     * The returned prediction is valid only when the selected
     * component hits with a saturated confidence counter.
     */
    FpPrediction lookup(uint64_t pc, uint16_t history) override;

    /**
     * UCH-driven training at Commit: a (tail PC, distance) pair was
     * observed. Allocates/updates both components, like the update
     * policy of tournament branch predictors.
     */
    void train(uint64_t pc, uint16_t history,
               unsigned distance) override;

    /**
     * Resolution of a predicted fusion at Execute.
     * @param correct whether the fused pair fit the fusion region
     *
     * On a misprediction the used entry's confidence is reset to 0
     * (Section IV-A2). The selector is steered toward whichever
     * component was right when the components disagreed.
     */
    void resolve(const FpPrediction &pred, bool correct) override;

  private:
    struct Entry
    {
        bool valid = false;
        uint8_t tag = 0;
        uint8_t distance = 0;
        SatCounter<2> confidence;
        bool plru = false;
    };

    struct Component
    {
        std::vector<Entry> entries; // numSets * numWays

        Entry *find(unsigned set, uint8_t tag);
        const Entry *find(unsigned set, uint8_t tag) const;
        Entry *allocate(unsigned set, uint8_t tag);
        void touch(unsigned set, Entry *entry);
    };

    static unsigned localSet(uint64_t pc);
    static unsigned globalSet(uint64_t pc, uint16_t history);
    static uint8_t tagOf(uint64_t pc);
    static unsigned selectorIndex(uint64_t pc);

    void trainComponent(Component &component, unsigned set, uint8_t tag,
                        unsigned distance);

    Component local;
    Component global;
    std::vector<SatCounter<2>> selector;

    /** Per-PC misprediction strikes: serially mispredicting tails are
     *  suppressed entirely — the accuracy-for-coverage trade the
     *  paper suggests implementing with probabilistic counters. */
    static constexpr unsigned strikeEntries = 256;
    static constexpr unsigned strikeLimit = 6;
    std::vector<SatCounter<3>> strikes;
};

} // namespace helios

#endif // FUSION_FUSION_PREDICTOR_HH
