#include "fusion/fusion_predictor.hh"

namespace helios
{

FusionPredictor::FusionPredictor()
{
    local.entries.resize(numSets * numWays);
    global.entries.resize(numSets * numWays);
    selector.resize(selectorEntries);
    strikes.resize(strikeEntries);
}

unsigned
FusionPredictor::localSet(uint64_t pc)
{
    return (pc >> 2) & (numSets - 1);
}

unsigned
FusionPredictor::globalSet(uint64_t pc, uint16_t history)
{
    return ((pc >> 2) ^ history) & (numSets - 1);
}

uint8_t
FusionPredictor::tagOf(uint64_t pc)
{
    return static_cast<uint8_t>((pc >> 11) ^ (pc >> 2));
}

unsigned
FusionPredictor::selectorIndex(uint64_t pc)
{
    return (pc >> 2) & (selectorEntries - 1);
}

FusionPredictor::Entry *
FusionPredictor::Component::find(unsigned set, uint8_t tag)
{
    for (unsigned way = 0; way < numWays; ++way) {
        Entry &entry = entries[set * numWays + way];
        if (entry.valid && entry.tag == tag)
            return &entry;
    }
    return nullptr;
}

const FusionPredictor::Entry *
FusionPredictor::Component::find(unsigned set, uint8_t tag) const
{
    return const_cast<Component *>(this)->find(set, tag);
}

FusionPredictor::Entry *
FusionPredictor::Component::allocate(unsigned set, uint8_t tag)
{
    // Pseudo-LRU: victim is the first way whose bit is clear; invalid
    // ways take precedence.
    Entry *victim = nullptr;
    for (unsigned way = 0; way < numWays; ++way) {
        Entry &entry = entries[set * numWays + way];
        if (!entry.valid) {
            victim = &entry;
            break;
        }
        if (!victim && !entry.plru)
            victim = &entry;
    }
    if (!victim)
        victim = &entries[set * numWays];
    victim->valid = true;
    victim->tag = tag;
    victim->distance = 0;
    victim->confidence.reset();
    return victim;
}

void
FusionPredictor::Component::touch(unsigned set, Entry *entry)
{
    entry->plru = true;
    bool all_set = true;
    for (unsigned way = 0; way < numWays; ++way)
        all_set &= entries[set * numWays + way].plru;
    if (all_set) {
        for (unsigned way = 0; way < numWays; ++way)
            entries[set * numWays + way].plru = false;
        entry->plru = true;
    }
}

FpPrediction
FusionPredictor::lookup(uint64_t pc, uint16_t history)
{
    ++lookups;

    FpPrediction pred;
    pred.pc = static_cast<uint32_t>(pc);
    pred.history = history;

    const uint8_t tag = tagOf(pc);
    const Entry *local_entry = local.find(localSet(pc), tag);
    const Entry *global_entry = global.find(globalSet(pc, history), tag);

    if (local_entry && local_entry->confidence.isSaturated()) {
        pred.localValid = true;
        pred.localDistance = local_entry->distance;
    }
    if (global_entry && global_entry->confidence.isSaturated()) {
        pred.globalValid = true;
        pred.globalDistance = global_entry->distance;
    }

    if (strikes[(pc >> 2) & (strikeEntries - 1)].value() >=
        strikeLimit)
        return pred; // suppressed: serial region mispredictor

    pred.usedGlobal = selector[selectorIndex(pc)].isHigh();
    if (pred.usedGlobal && pred.globalValid) {
        pred.valid = true;
        pred.distance = pred.globalDistance;
    } else if (!pred.usedGlobal && pred.localValid) {
        pred.valid = true;
        pred.distance = pred.localDistance;
    }
    if (pred.valid && pred.distance == 0)
        pred.valid = false;
    if (pred.valid)
        ++confidentPredictions;
    return pred;
}

void
FusionPredictor::trainComponent(Component &component, unsigned set,
                                uint8_t tag, unsigned distance)
{
    Entry *entry = component.find(set, tag);
    if (!entry) {
        entry = component.allocate(set, tag);
        entry->distance = static_cast<uint8_t>(distance);
        entry->confidence.set(1);
    } else if (entry->distance == 0 && entry->confidence.value() > 0) {
        // Poisoned by a misprediction (hysteresis in the spirit of
        // the probabilistic counters the paper points at [20]): the
        // entry must count down before it may retrain, so unstable
        // pairs stop oscillating between confident and flushing.
        entry->confidence.decrement();
    } else if (entry->distance == distance) {
        entry->confidence.increment();
    } else {
        entry->distance = static_cast<uint8_t>(distance);
        entry->confidence.set(1);
    }
    component.touch(set, entry);
}

void
FusionPredictor::train(uint64_t pc, uint16_t history, unsigned distance)
{
    if (distance == 0 || distance > maxDistance)
        return;
    const uint8_t tag = tagOf(pc);
    trainComponent(local, localSet(pc), tag, distance);
    trainComponent(global, globalSet(pc, history), tag, distance);

    // Tournament steering on observed outcomes: if exactly one
    // component already predicted this distance confidently, reward it.
    const Entry *local_entry = local.find(localSet(pc), tag);
    const Entry *global_entry = global.find(globalSet(pc, history), tag);
    const bool local_right = local_entry &&
                             local_entry->distance == distance &&
                             local_entry->confidence.isSaturated();
    const bool global_right = global_entry &&
                              global_entry->distance == distance &&
                              global_entry->confidence.isSaturated();
    if (local_right != global_right) {
        if (global_right)
            selector[selectorIndex(pc)].increment();
        else
            selector[selectorIndex(pc)].decrement();
    }
}

void
FusionPredictor::resolve(const FpPrediction &pred, bool correct)
{
    if (!pred.valid)
        return;
    const uint8_t tag = tagOf(pred.pc);

    if (!correct) {
        strikes[(pred.pc >> 2) & (strikeEntries - 1)].increment();
        // Reset the used entry's confidence (Section IV-A2).
        Component &used = pred.usedGlobal ? global : local;
        const unsigned set = pred.usedGlobal
                                 ? globalSet(pred.pc, pred.history)
                                 : localSet(pred.pc);
        if (Entry *entry = used.find(set, tag)) {
            // Poison: distance 0 is unencodable as a prediction; the
            // saturated counter now acts as a retraining back-off.
            entry->distance = 0;
            entry->confidence.set(Entry{}.confidence.maxValue);
        }
        // Tournament with abstention: if the other component made no
        // prediction here, it was implicitly right — steer toward it.
        // This lets the history-indexed component take over patterns
        // whose fuseability is control-flow dependent.
        if (!pred.usedGlobal && !pred.globalValid)
            selector[selectorIndex(pred.pc)].increment();
        else if (pred.usedGlobal && !pred.localValid)
            selector[selectorIndex(pred.pc)].decrement();
    }

    // Steer the selector when the components disagreed.
    if (pred.localValid && pred.globalValid &&
        pred.localDistance != pred.globalDistance) {
        const bool used_global = pred.usedGlobal;
        if (correct == used_global)
            selector[selectorIndex(pred.pc)].increment();
        else
            selector[selectorIndex(pred.pc)].decrement();
    }
}

} // namespace helios
