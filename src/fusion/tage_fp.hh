/**
 * @file
 * A TAGE-organized fusion predictor — the alternative organization the
 * paper points at ("other predictors, such as TAGE-based [27] ...
 * can be employed", Section IV-A2).
 *
 * A PC-indexed base table provides history-free distances; four
 * tagged components indexed by PC ⊕ folded branch history (geometric
 * lengths 4/8/16/32 over the 16-bit history the front end supplies)
 * capture control-flow-dependent fusion patterns. The longest
 * matching component with saturated confidence provides the
 * prediction. The same per-PC strike suppression as the tournament
 * predictor bounds serial mispredictors.
 */

#ifndef FUSION_TAGE_FP_HH
#define FUSION_TAGE_FP_HH

#include <array>
#include <vector>

#include "common/counters.hh"
#include "fusion/fp_base.hh"

namespace helios
{

class TageFusionPredictor : public FusionPredictorBase
{
  public:
    static constexpr unsigned numTables = 4;
    static constexpr unsigned tableSets = 256;
    static constexpr unsigned baseEntries = 1024;
    static constexpr unsigned maxDistance = 63;
    static constexpr unsigned strikeEntries = 256;
    static constexpr unsigned strikeLimit = 6;

    TageFusionPredictor();

    FpPrediction lookup(uint64_t pc, uint16_t history) override;
    void train(uint64_t pc, uint16_t history,
               unsigned distance) override;
    void resolve(const FpPrediction &pred, bool correct) override;

  private:
    struct BaseEntry
    {
        uint8_t distance = 0;
        SatCounter<2> confidence;
    };

    struct TaggedEntry
    {
        bool valid = false;
        uint16_t tag = 0;
        uint8_t distance = 0;
        SatCounter<2> confidence;
        SatCounter<2> useful;
    };

    static unsigned baseIndex(uint64_t pc);
    unsigned tableIndex(unsigned table, uint64_t pc,
                        uint16_t history) const;
    uint16_t tableTag(unsigned table, uint64_t pc,
                      uint16_t history) const;
    static uint16_t foldHistory(uint16_t history, unsigned length,
                                unsigned bits);

    std::vector<BaseEntry> base;
    std::array<std::vector<TaggedEntry>, numTables> tagged;
    std::array<unsigned, numTables> historyLengths;
    std::vector<SatCounter<3>> strikes;
};

} // namespace helios

#endif // FUSION_TAGE_FP_HH
