/**
 * @file
 * Unfused Committed History (Section IV-A1).
 *
 * A commit-stage structure that discovers potential fusion pairs:
 * memory µ-ops that access the same cache line within 64 µ-ops of each
 * other. Loads use a 6-entry fully associative history (LRU through
 * the commit number); stores keep a single entry, as stores cannot be
 * fused across other stores.
 */

#ifndef FUSION_UCH_HH
#define FUSION_UCH_HH

#include <array>
#include <cstdint>
#include <optional>

namespace helios
{

/**
 * One direction (load or store) of the Unfused Committed History.
 */
class UchHistory
{
  public:
    static constexpr unsigned maxDistance = 64;

    explicit UchHistory(unsigned entries) : numEntries(entries) {}

    /**
     * Access the history for a committing unfused memory µ-op.
     *
     * On a tag match, the matching entry is invalidated (a µ-op fuses
     * with at most one other µ-op) and the µ-op distance is returned
     * if it is within the 64-µ-op fusion window. On a miss (or an
     * over-distance match), the µ-op is inserted.
     *
     * @param line_addr cache-line address accessed by the µ-op
     * @param commit_number low 7 bits of the global µ-op commit count
     * @return distance to the older pair member, if a pair was found
     */
    std::optional<unsigned> access(uint64_t line_addr,
                                   uint8_t commit_number);

    /** Invalidate everything (pipeline flush has no effect on UCH in
     *  the paper, but tests and resets use this). */
    void clear();

  private:
    struct Entry
    {
        bool valid = false;
        uint32_t tag = 0;
        uint8_t cn = 0;
    };

    static constexpr unsigned maxEntries = 8;

    unsigned numEntries;
    std::array<Entry, maxEntries> entries{};
};

/**
 * The complete UCH: 6 load entries + 1 store entry (280 bits total in
 * the paper's accounting).
 */
class UnfusedCommittedHistory
{
  public:
    UnfusedCommittedHistory() : loads(6), stores(1) {}

    std::optional<unsigned>
    accessLoad(uint64_t line_addr, uint8_t commit_number)
    {
        return loads.access(line_addr, commit_number);
    }

    std::optional<unsigned>
    accessStore(uint64_t line_addr, uint8_t commit_number)
    {
        return stores.access(line_addr, commit_number);
    }

    void
    clear()
    {
        loads.clear();
        stores.clear();
    }

  private:
    UchHistory loads;
    UchHistory stores;
};

} // namespace helios

#endif // FUSION_UCH_HH
