/**
 * @file
 * Interface of a Helios fusion predictor.
 *
 * The paper's baseline is the tournament predictor of Section IV-A2,
 * but it notes that "other predictors, such as TAGE-based [27] or
 * local history based [32], can be employed". The pipeline talks to
 * this interface so the organizations can be swapped and compared
 * (see CoreParams::fpKind and bench/ablation_helios).
 */

#ifndef FUSION_FP_BASE_HH
#define FUSION_FP_BASE_HH

#include <cstdint>

namespace helios
{

/**
 * Prediction record flowing down the pipeline with the µ-op, mirroring
 * the paper's dedicated update queue (29 bits per entry; unlimited in
 * the evaluation, as in the paper).
 */
struct FpPrediction
{
    bool valid = false;       ///< a confident distance was produced
    unsigned distance = 0;    ///< µ-op distance to the head nucleus

    // Update-time bookkeeping (fields used depend on the organization).
    bool usedGlobal = false;
    bool localValid = false;
    bool globalValid = false;
    unsigned localDistance = 0;
    unsigned globalDistance = 0;
    int provider = -1;        ///< TAGE: providing component
    uint32_t pc = 0;
    uint16_t history = 0;
};

/** Common interface of the fusion predictor organizations. */
class FusionPredictorBase
{
  public:
    virtual ~FusionPredictorBase() = default;

    /** Look up a potential tail nucleus at Decode. */
    virtual FpPrediction lookup(uint64_t pc, uint16_t history) = 0;

    /** UCH-driven training at Commit (tail PC, observed distance). */
    virtual void train(uint64_t pc, uint16_t history,
                       unsigned distance) = 0;

    /** Resolution of a predicted fusion at Execute. */
    virtual void resolve(const FpPrediction &pred, bool correct) = 0;

    uint64_t lookups = 0;
    uint64_t confidentPredictions = 0;
};

} // namespace helios

#endif // FUSION_FP_BASE_HH
