#include "fusion/idiom.hh"

namespace helios
{

bool
isMemPairable(const Instruction &first, const Instruction &second,
              bool allow_asymmetric)
{
    const bool both_loads = first.isLoad() && second.isLoad();
    const bool both_stores = first.isStore() && second.isStore();
    if (!both_loads && !both_stores)
        return false;
    if (first.baseReg() != second.baseReg())
        return false;
    // Dependent loads cannot compute their addresses concurrently
    // (Section II-B): the first load must not write the shared base.
    if (both_loads && first.writesReg() && first.rd == second.baseReg())
        return false;
    if (!allow_asymmetric && first.memSize() != second.memSize())
        return false;
    // Contiguous, non-overlapping bytes.
    const int64_t a_begin = first.imm;
    const int64_t a_end = a_begin + first.memSize();
    const int64_t b_begin = second.imm;
    const int64_t b_end = b_begin + second.memSize();
    return a_end == b_begin || b_end == a_begin;
}

Idiom
matchIdiom(const Instruction &first, const Instruction &second)
{
    // Memory pairing idioms (bold in Table I). The baseline decode-time
    // idiom allows asymmetric sizes (CSF-SBR definition in Section V-A).
    if (isMemPairable(first, second, true))
        return first.isLoad() ? Idiom::LoadPair : Idiom::StorePair;

    // slli rd, rs, {1,2,3} ; add rd, rd, rs2 — indexed addressing.
    if (first.op == Op::Slli && second.op == Op::Add &&
        first.imm >= 1 && first.imm <= 3 && first.rd != RegZero &&
        second.rd == first.rd &&
        (second.rs1 == first.rd || second.rs2 == first.rd)) {
        return Idiom::LeaSlliAdd;
    }

    // lui rd, hi ; addi/addiw rd, rd, lo — load immediate.
    if (first.op == Op::Lui &&
        (second.op == Op::Addi || second.op == Op::Addiw) &&
        first.rd != RegZero && second.rd == first.rd &&
        second.rs1 == first.rd) {
        return Idiom::LuiAddi;
    }

    // auipc rd, hi ; addi rd, rd, lo — pc-relative address.
    if (first.op == Op::Auipc && second.op == Op::Addi &&
        first.rd != RegZero && second.rd == first.rd &&
        second.rs1 == first.rd) {
        return Idiom::AuipcAddi;
    }

    // slli rd, rs, k ; srli rd, rd, k — clear upper bits.
    if (first.op == Op::Slli && second.op == Op::Srli &&
        first.rd != RegZero && first.imm == second.imm &&
        second.rd == first.rd && second.rs1 == first.rd) {
        return Idiom::ClearUpper;
    }

    // lui rd, hi ; load rd, lo(rd) — load global.
    if (first.op == Op::Lui && second.isLoad() &&
        first.rd != RegZero && second.rs1 == first.rd &&
        second.rd == first.rd) {
        return Idiom::LuiLoad;
    }

    // lui rd, hi ; store rs2, lo(rd) — store global. The store's data
    // register must not be the materialized address.
    if (first.op == Op::Lui && second.isStore() &&
        first.rd != RegZero && second.rs1 == first.rd &&
        second.rs2 != first.rd) {
        return Idiom::LuiStore;
    }

    return Idiom::None;
}

const char *
idiomName(Idiom idiom)
{
    switch (idiom) {
      case Idiom::None: return "none";
      case Idiom::LoadPair: return "load_pair";
      case Idiom::StorePair: return "store_pair";
      case Idiom::LeaSlliAdd: return "lea_slli_add";
      case Idiom::LuiAddi: return "lui_addi";
      case Idiom::AuipcAddi: return "auipc_addi";
      case Idiom::ClearUpper: return "clear_upper";
      case Idiom::LuiLoad: return "lui_load";
      case Idiom::LuiStore: return "lui_store";
    }
    return "?";
}

} // namespace helios
