#include "fusion/uch.hh"

#include "common/logging.hh"

namespace helios
{

std::optional<unsigned>
UchHistory::access(uint64_t line_addr, uint8_t commit_number)
{
    helios_assert(numEntries <= maxEntries, "UCH too large");
    const auto tag = static_cast<uint32_t>(line_addr);

    // Search for a matching line.
    for (unsigned i = 0; i < numEntries; ++i) {
        Entry &entry = entries[i];
        if (!entry.valid || entry.tag != tag)
            continue;
        const unsigned distance = (commit_number - entry.cn) & 0x7f;
        // A µ-op can fuse with a single other µ-op: the match is
        // consumed either way.
        entry.valid = false;
        if (distance >= 1 && distance <= maxDistance)
            return distance;
        // Over-distance (or CN-wrap) match: treat as a miss and
        // remember the new access instead.
        break;
    }

    // Miss: insert, preferring invalidated entries, then the entry
    // with the oldest commit number (LRU through the CN).
    Entry *victim = nullptr;
    unsigned oldest_age = 0;
    for (unsigned i = 0; i < numEntries; ++i) {
        Entry &entry = entries[i];
        if (!entry.valid) {
            victim = &entry;
            break;
        }
        const unsigned age = (commit_number - entry.cn) & 0x7f;
        if (age >= oldest_age) {
            oldest_age = age;
            victim = &entry;
        }
    }
    victim->valid = true;
    victim->tag = tag;
    victim->cn = commit_number;
    return std::nullopt;
}

void
UchHistory::clear()
{
    for (Entry &entry : entries)
        entry.valid = false;
}

} // namespace helios
