#include "fusion/tage_fp.hh"

namespace helios
{

TageFusionPredictor::TageFusionPredictor()
{
    base.resize(baseEntries);
    unsigned length = 4;
    for (unsigned t = 0; t < numTables; ++t) {
        tagged[t].resize(tableSets);
        historyLengths[t] = length;
        length *= 2;
    }
    strikes.resize(strikeEntries);
}

unsigned
TageFusionPredictor::baseIndex(uint64_t pc)
{
    return (pc >> 2) & (baseEntries - 1);
}

uint16_t
TageFusionPredictor::foldHistory(uint16_t history, unsigned length,
                                 unsigned bits)
{
    const uint32_t masked = history & ((1u << std::min(length, 16u)) - 1);
    uint16_t folded = 0;
    for (unsigned consumed = 0; consumed < length; consumed += bits)
        folded ^= uint16_t((masked >> consumed) & ((1u << bits) - 1));
    return folded;
}

unsigned
TageFusionPredictor::tableIndex(unsigned table, uint64_t pc,
                                uint16_t history) const
{
    const uint16_t folded = foldHistory(history, historyLengths[table], 8);
    return ((pc >> 2) ^ (pc >> 10) ^ folded ^ (table << 3)) &
           (tableSets - 1);
}

uint16_t
TageFusionPredictor::tableTag(unsigned table, uint64_t pc,
                              uint16_t history) const
{
    const uint16_t folded = foldHistory(history, historyLengths[table], 9);
    return uint16_t(((pc >> 2) ^ (pc >> 12) ^ (folded << 1) ^ table) &
                    0x3ff);
}

FpPrediction
TageFusionPredictor::lookup(uint64_t pc, uint16_t history)
{
    ++lookups;
    FpPrediction pred;
    pred.pc = uint32_t(pc);
    pred.history = history;

    if (strikes[(pc >> 2) & (strikeEntries - 1)].value() >= strikeLimit)
        return pred;

    for (int t = numTables - 1; t >= 0; --t) {
        const TaggedEntry &entry =
            tagged[t][tableIndex(t, pc, history)];
        if (entry.valid && entry.tag == tableTag(t, pc, history)) {
            pred.provider = t;
            if (entry.confidence.isSaturated() && entry.distance != 0) {
                pred.valid = true;
                pred.distance = entry.distance;
            }
            break;
        }
    }
    if (pred.provider < 0) {
        const BaseEntry &entry = base[baseIndex(pc)];
        if (entry.confidence.isSaturated() && entry.distance != 0) {
            pred.valid = true;
            pred.distance = entry.distance;
        }
    }
    if (pred.valid)
        ++confidentPredictions;
    return pred;
}

void
TageFusionPredictor::train(uint64_t pc, uint16_t history,
                           unsigned distance)
{
    if (distance == 0 || distance > maxDistance)
        return;

    // Base component always trains.
    BaseEntry &base_entry = base[baseIndex(pc)];
    if (base_entry.distance == uint8_t(distance)) {
        base_entry.confidence.increment();
    } else if (base_entry.confidence.value() == 0) {
        base_entry.distance = uint8_t(distance);
        base_entry.confidence.set(1);
    } else {
        base_entry.confidence.decrement();
    }

    // Provider component trains; on a distance conflict a
    // longer-history component is allocated (TAGE allocation rule).
    int provider = -1;
    for (int t = numTables - 1; t >= 0; --t) {
        TaggedEntry &entry = tagged[t][tableIndex(t, pc, history)];
        if (entry.valid && entry.tag == tableTag(t, pc, history)) {
            provider = t;
            if (entry.distance == uint8_t(distance)) {
                entry.confidence.increment();
                entry.useful.increment();
                return; // stable: no allocation needed
            }
            if (entry.distance == 0 && entry.confidence.value() > 0) {
                // Poisoned by a misprediction: count the back-off
                // down without escaping into a longer component.
                entry.confidence.decrement();
                return;
            }
            if (entry.confidence.value() == 0) {
                entry.distance = uint8_t(distance);
                entry.confidence.set(1);
            } else {
                entry.confidence.decrement();
            }
            break;
        }
    }

    // Allocate in a longer-history component.
    for (unsigned t = provider + 1; t < numTables; ++t) {
        TaggedEntry &entry = tagged[t][tableIndex(t, pc, history)];
        if (!entry.valid || entry.useful.value() == 0) {
            entry.valid = true;
            entry.tag = tableTag(t, pc, history);
            entry.distance = uint8_t(distance);
            entry.confidence.set(1);
            entry.useful.reset();
            return;
        }
        entry.useful.decrement();
    }
}

void
TageFusionPredictor::resolve(const FpPrediction &pred, bool correct)
{
    if (!pred.valid)
        return;
    if (correct)
        return;

    strikes[(pred.pc >> 2) & (strikeEntries - 1)].increment();
    if (pred.provider >= 0) {
        TaggedEntry &entry =
            tagged[pred.provider]
                  [tableIndex(pred.provider, pred.pc, pred.history)];
        if (entry.valid &&
            entry.tag == tableTag(pred.provider, pred.pc,
                                  pred.history)) {
            entry.distance = 0; // poisoned: must count down to retrain
            entry.confidence.set(entry.confidence.maxValue);
        }
    } else {
        BaseEntry &entry = base[baseIndex(pred.pc)];
        entry.distance = 0;
        entry.confidence.set(entry.confidence.maxValue);
    }
}

} // namespace helios
