/**
 * @file
 * Consecutive fusion idioms (Table I of the paper, after Celio et al.).
 *
 * The matcher answers, for two *consecutive* decoded instructions,
 * which fusion idiom (if any) they form. Memory pairing idioms (load
 * pair / store pair, bold in Table I) are distinguished from the other
 * idioms because the paper's configurations enable them selectively.
 */

#ifndef FUSION_IDIOM_HH
#define FUSION_IDIOM_HH

#include "isa/instruction.hh"

namespace helios
{

/** Fusion idiom classes from Table I. */
enum class Idiom : uint8_t
{
    None = 0,
    // Memory pairing idioms (bold in Table I).
    LoadPair,
    StorePair,
    // Other idioms.
    LeaSlliAdd,   ///< slli rd,rs,{1,2,3} + add rd,rd,rs2
    LuiAddi,      ///< lui rd,hi + addi(w) rd,rd,lo  (load immediate)
    AuipcAddi,    ///< auipc rd,hi + addi rd,rd,lo   (pc-relative addr)
    ClearUpper,   ///< slli rd,rs,k + srli rd,rd,k   (zero extension)
    LuiLoad,      ///< lui rd,hi + load rd,lo(rd)    (load global)
    LuiStore,     ///< lui rd,hi + store rs2,lo(rd)  (store global)
};

/** True for the bold memory-pairing rows of Table I. */
inline bool
isMemoryIdiom(Idiom idiom)
{
    return idiom == Idiom::LoadPair || idiom == Idiom::StorePair;
}

/**
 * Static memory-pair check shared by consecutive fusion and the
 * Allocation Queue machinery: same kind (load/load or store/store),
 * same base architectural register, contiguous non-overlapping
 * offsets, and no base-register dependence of @a second on @a first.
 *
 * @param allow_asymmetric accept different access widths (CSF-SBR and
 *        Helios allow this; architectural ldp/stp would not)
 */
bool isMemPairable(const Instruction &first, const Instruction &second,
                   bool allow_asymmetric);

/**
 * Match two consecutive instructions against Table I.
 * @return the matched idiom, Idiom::None otherwise.
 */
Idiom matchIdiom(const Instruction &first, const Instruction &second);

/** Human-readable idiom name (debug/trace output). */
const char *idiomName(Idiom idiom);

} // namespace helios

#endif // FUSION_IDIOM_HH
