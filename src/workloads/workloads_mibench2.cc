/**
 * @file
 * MiBench-like kernels, part 2: jpeg, patricia, qsort, rijndael,
 * rsynth, sha, stringsearch, susan, typeset.
 */

#include "workloads/workloads.hh"

#include <algorithm>
#include <vector>

namespace helios
{
namespace workload_detail
{

namespace
{

using std::vector;

const std::string exitStub = R"(
    li a7, 93
    ecall
)";

std::string
finish(std::string source)
{
    const size_t pos = source.find("{EXIT}");
    source.replace(pos, 6, exitStub);
    return source;
}

std::string
withLcg(std::string source, uint64_t seed)
{
    source = substitute(source, "SEED", seed);
    source = substitute(source, "LCGMUL", lcgMul);
    source = substitute(source, "LCGADD", lcgAdd);
    return source;
}

uint64_t
rotl64(uint64_t value, unsigned amount)
{
    return (value << amount) | (value >> (64 - amount));
}

// ---------------------------------------------------------------------
// jpeg: 8-point integer DCT-like transform with quantization divides.
// ---------------------------------------------------------------------

constexpr uint64_t jpegBlocks = 2000;

const char *jpegSource = R"(
    la s0, inbuf
    la s1, outbuf
    li s9, {SEED}
    li s10, {LCGMUL}
    li s11, {LCGADD}
    li t0, {HALFS}
    mv t1, s0
jgen:
    mul s9, s9, s10
    add s9, s9, s11
    srli t2, s9, 52
    slli t2, t2, 52
    srai t2, t2, 52
    sh t2, 0(t1)
    addi t1, t1, 2
    addi t0, t0, -1
    bnez t0, jgen

    li s2, 0
    li s3, {BLOCKS}
    mv s4, s0
    mv s5, s1
block:
    lh a1, 0(s4)
    lh a2, 2(s4)
    lh a3, 4(s4)
    lh a4, 6(s4)
    lh a5, 8(s4)
    lh a6, 10(s4)
    lh a7, 12(s4)
    lh t6, 14(s4)

    add t0, a1, t6
    add t1, a2, a7
    add t2, a3, a6
    add t3, a4, a5
    sub t4, a1, t6
    sub t5, a2, a7
    sub a1, a3, a6
    sub a2, a4, a5

    add a3, t0, t3
    add a4, t1, t2
    add a5, a3, a4
    sub a6, a3, a4
    sub a3, t0, t3
    sub a4, t1, t2
    li t6, 1004
    mul t0, a3, t6
    li t6, 851
    mul t1, a4, t6
    add t0, t0, t1
    srai t0, t0, 10
    li t6, 851
    mul t1, a3, t6
    li t6, 1004
    mul t2, a4, t6
    sub t1, t1, t2
    srai t1, t1, 10

    li t6, 569
    mul t2, t4, t6
    li t6, 200
    mul t3, t5, t6
    add t2, t2, t3
    li t6, 1337
    mul t3, a1, t6
    add t2, t2, t3
    li t6, 749
    mul t3, a2, t6
    add t2, t2, t3
    srai t2, t2, 10
    li t6, 749
    mul t3, t4, t6
    li t6, 1337
    mul a3, t5, t6
    sub t3, t3, a3
    li t6, 200
    mul a3, a1, t6
    add t3, t3, a3
    li t6, 569
    mul a3, a2, t6
    sub t3, t3, a3
    srai t3, t3, 10

    li t6, 16
    div a5, a5, t6
    li t6, 11
    div t0, t0, t6
    li t6, 10
    div t2, t2, t6
    li t6, 24
    div a6, a6, t6
    li t6, 40
    div t1, t1, t6
    li t6, 51
    div t3, t3, t6

    sh a5, 0(s5)
    sh t2, 2(s5)
    sh t0, 4(s5)
    sh t3, 6(s5)
    sh a6, 8(s5)
    sh t1, 10(s5)

    add s2, s2, a5
    xor s2, s2, t0
    add s2, s2, t2
    xor s2, s2, t3
    add s2, s2, a6
    xor s2, s2, t1
    slli t6, s2, 1
    srli a3, s2, 63
    or s2, t6, a3

    addi s4, s4, 16
    addi s5, s5, 16
    addi s3, s3, -1
    bnez s3, block
    mv a0, s2
{EXIT}
    .data
    .align 6
inbuf:
    .zero {BYTES}
    .align 6
outbuf:
    .zero {BYTES}
)";

uint64_t
jpegReference(uint64_t seed)
{
    uint64_t x = seed;
    vector<int16_t> input(jpegBlocks * 8);
    for (auto &h : input) {
        lcgNext(x);
        h = int16_t((int64_t(x >> 52) << 52) >> 52);
    }
    uint64_t sum = 0;
    for (uint64_t b = 0; b < jpegBlocks; ++b) {
        const int16_t *p = &input[b * 8];
        const int64_t s0 = p[0] + p[7], s1 = p[1] + p[6];
        const int64_t s2 = p[2] + p[5], s3 = p[3] + p[4];
        const int64_t d0 = p[0] - p[7], d1 = p[1] - p[6];
        const int64_t d2 = p[2] - p[5], d3 = p[3] - p[4];

        const int64_t e0 = s0 + s3, e1 = s1 + s2;
        const int64_t o0 = e0 + e1;
        const int64_t o4 = e0 - e1;
        const int64_t f0 = s0 - s3, f1 = s1 - s2;
        const int64_t o2 = (f0 * 1004 + f1 * 851) >> 10;
        const int64_t o6 = (f0 * 851 - f1 * 1004) >> 10;
        const int64_t o1 =
            (d0 * 569 + d1 * 200 + d2 * 1337 + d3 * 749) >> 10;
        const int64_t o3 =
            (d0 * 749 - d1 * 1337 + d2 * 200 - d3 * 569) >> 10;

        const int64_t q0 = o0 / 16, q1 = o2 / 11, q2 = o1 / 10;
        const int64_t q3 = o3 / 51, q4 = o4 / 24, q5 = o6 / 40;

        sum += uint64_t(q0);
        sum ^= uint64_t(q1);
        sum += uint64_t(q2);
        sum ^= uint64_t(q3);
        sum += uint64_t(q4);
        sum ^= uint64_t(q5);
        sum = rotl64(sum, 1);
    }
    return sum;
}

Workload
makeJpeg()
{
    const uint64_t seed = 0x19e6;
    std::string source = jpegSource;
    source = substitute(source, "BLOCKS", jpegBlocks);
    source = substitute(source, "HALFS", jpegBlocks * 8);
    source = substitute(source, "BYTES", jpegBlocks * 16);
    source = withLcg(source, seed);
    return {"jpeg", Suite::MiBench,
            "8-point integer DCT rows with quantization divides",
            finish(source), [seed] { return jpegReference(seed); }};
}

// ---------------------------------------------------------------------
// patricia: binary trie over 16-bit keys.
// ---------------------------------------------------------------------

constexpr uint64_t patriciaInserts = 1200;
constexpr uint64_t patriciaLookups = 1200;
constexpr uint64_t patriciaDepth = 16;

const char *patriciaSource = R"(
    la s0, arena
    li s1, 1
    li s9, {SEED}
    li s10, {LCGMUL}
    li s11, {LCGADD}

    li s2, {N}
ins:
    mul s9, s9, s10
    add s9, s9, s11
    srli t0, s9, 30
    li t1, 0xffff
    and t0, t0, t1
    mv t1, s0
    li t2, 0
ins_walk:
    li t3, {DEPTH}
    bge t2, t3, ins_leaf
    srl t3, t0, t2
    andi t3, t3, 1
    slli t3, t3, 3
    add t3, t3, t1
    ld t4, 0(t3)
    bnez t4, ins_down
    li t5, 24
    mul t4, s1, t5
    add t4, t4, s0
    addi s1, s1, 1
    sd t4, 0(t3)
ins_down:
    mv t1, t4
    addi t2, t2, 1
    j ins_walk
ins_leaf:
    ld t3, 16(t1)
    addi t3, t3, 1
    sd t3, 16(t1)
    addi s2, s2, -1
    bnez s2, ins

    li s3, {M}
    li s4, 0
look:
    mul s9, s9, s10
    add s9, s9, s11
    srli t0, s9, 30
    li t1, 0xffff
    and t0, t0, t1
    mv t1, s0
    li t2, 0
look_walk:
    li t3, {DEPTH}
    bge t2, t3, look_leaf
    srl t3, t0, t2
    andi t3, t3, 1
    slli t3, t3, 3
    add t3, t3, t1
    ld t4, 0(t3)
    beqz t4, look_miss
    mv t1, t4
    addi t2, t2, 1
    j look_walk
look_leaf:
    ld t3, 16(t1)
    add s4, s4, t3
    j look_next
look_miss:
    add s4, s4, t2
look_next:
    addi s3, s3, -1
    bnez s3, look
    add a0, s4, s1
{EXIT}
    .data
    .align 6
arena:
    .zero {ARENABYTES}
)";

uint64_t
patriciaReference(uint64_t seed)
{
    struct Node
    {
        uint64_t child[2] = {0, 0};
        uint64_t count = 0;
    };
    vector<Node> nodes(1);
    nodes.reserve(patriciaInserts * patriciaDepth + 2);
    uint64_t x = seed;

    for (uint64_t n = 0; n < patriciaInserts; ++n) {
        lcgNext(x);
        const uint64_t key = (x >> 30) & 0xffff;
        uint64_t cur = 0;
        for (uint64_t d = 0; d < patriciaDepth; ++d) {
            const uint64_t dir = (key >> d) & 1;
            if (nodes[cur].child[dir] == 0) {
                nodes.push_back({});
                nodes[cur].child[dir] = nodes.size() - 1;
            }
            cur = nodes[cur].child[dir];
        }
        ++nodes[cur].count;
    }

    uint64_t sum = 0;
    for (uint64_t n = 0; n < patriciaLookups; ++n) {
        lcgNext(x);
        const uint64_t key = (x >> 30) & 0xffff;
        uint64_t cur = 0;
        uint64_t d = 0;
        bool miss = false;
        for (; d < patriciaDepth; ++d) {
            const uint64_t dir = (key >> d) & 1;
            if (nodes[cur].child[dir] == 0) {
                miss = true;
                break;
            }
            cur = nodes[cur].child[dir];
        }
        sum += miss ? d : nodes[cur].count;
    }
    return sum + nodes.size();
}

Workload
makePatricia()
{
    const uint64_t seed = 0x9a77;
    std::string source = patriciaSource;
    source = substitute(source, "N", patriciaInserts);
    source = substitute(source, "M", patriciaLookups);
    source = substitute(source, "DEPTH", patriciaDepth);
    source = substitute(source, "ARENABYTES",
                        (patriciaInserts * patriciaDepth + 2) * 24);
    source = withLcg(source, seed);
    return {"patricia", Suite::MiBench,
            "bitwise trie inserts/lookups over 24-byte nodes",
            finish(source), [seed] { return patriciaReference(seed); }};
}

// ---------------------------------------------------------------------
// qsort: iterative Hoare quicksort with an explicit range stack.
// ---------------------------------------------------------------------

constexpr uint64_t qsortElems = 3000;

const char *qsortSource = R"(
    la s0, arr
    li s1, {N}
    li s9, {SEED}
    li s10, {LCGMUL}
    li s11, {LCGADD}
    li t0, {N}
    mv t1, s0
agen:
    mul s9, s9, s10
    add s9, s9, s11
    srli t2, s9, 8
    sd t2, 0(t1)
    addi t1, t1, 8
    addi t0, t0, -1
    bnez t0, agen

    la s2, stk
    li t0, 0
    addi t1, s1, -1
    sd t0, 0(s2)
    sd t1, 8(s2)
    addi s2, s2, 16
qloop:
    la t6, stk
    bleu s2, t6, qdone
    addi s2, s2, -16
    ld s3, 0(s2)
    ld s4, 8(s2)
    bge s3, s4, qloop
    add t0, s3, s4
    srli t0, t0, 1
    slli t0, t0, 3
    add t0, t0, s0
    ld s5, 0(t0)
    addi t1, s3, -1
    addi t2, s4, 1
hoare:
inc_i:
    addi t1, t1, 1
    slli t3, t1, 3
    add t3, t3, s0
    ld t4, 0(t3)
    bltu t4, s5, inc_i
dec_j:
    addi t2, t2, -1
    slli t5, t2, 3
    add t5, t5, s0
    ld t6, 0(t5)
    bgtu t6, s5, dec_j
    bge t1, t2, hoare_done
    sd t6, 0(t3)
    sd t4, 0(t5)
    j hoare
hoare_done:
    sd s3, 0(s2)
    sd t2, 8(s2)
    addi s2, s2, 16
    addi t2, t2, 1
    sd t2, 0(s2)
    sd s4, 8(s2)
    addi s2, s2, 16
    j qloop
qdone:
    li a0, 0
    li t0, 0
    li t1, 0
vfold:
    slli t2, t0, 3
    add t2, t2, s0
    ld t3, 0(t2)
    bgeu t3, t1, inorder
    li a0, 0xbadbad
    j vdone
inorder:
    mv t1, t3
    slli t4, a0, 1
    srli t5, a0, 63
    or a0, t4, t5
    xor a0, a0, t3
    addi t0, t0, 1
    blt t0, s1, vfold
vdone:
{EXIT}
    .data
    .align 6
arr:
    .zero {ARRBYTES}
    .align 6
stk:
    .zero {STKBYTES}
)";

uint64_t
qsortReference(uint64_t seed)
{
    uint64_t x = seed;
    vector<uint64_t> arr(qsortElems);
    for (auto &value : arr) {
        lcgNext(x);
        value = x >> 8;
    }
    std::sort(arr.begin(), arr.end());
    uint64_t sum = 0;
    for (uint64_t value : arr)
        sum = rotl64(sum, 1) ^ value;
    return sum;
}

Workload
makeQsort()
{
    const uint64_t seed = 0x9507;
    std::string source = qsortSource;
    source = substitute(source, "N", qsortElems);
    source = substitute(source, "ARRBYTES", qsortElems * 8);
    source = substitute(source, "STKBYTES", qsortElems * 32);
    source = withLcg(source, seed);
    return {"qsort", Suite::MiBench,
            "iterative Hoare quicksort with explicit range stack",
            finish(source), [seed] { return qsortReference(seed); }};
}

// ---------------------------------------------------------------------
// rijndael: AES-like SPN rounds with a generated byte S-box.
// ---------------------------------------------------------------------

constexpr uint64_t rijndaelBlocks = 300;
constexpr uint64_t rijndaelRounds = 8;

const char *rijndaelSource = R"(
    la s0, sbox
    li t0, 0
sgen:
    li t1, 167
    mul t1, t0, t1
    addi t1, t1, 13
    andi t1, t1, 0xff
    add t2, s0, t0
    sb t1, 0(t2)
    addi t0, t0, 1
    li t3, 256
    blt t0, t3, sgen

    li s4, 0
    li s9, {SEED}
    li s10, {LCGMUL}
    li s11, {LCGADD}
    li s5, {BLOCKS}
    la s2, trace
    li s3, 0
block:
    mul s9, s9, s10
    add s9, s9, s11
    mv s6, s9
    mul s9, s9, s10
    add s9, s9, s11
    mv s7, s9
    li a6, {KEY0}
    li a7, {KEY1}

    li s8, 0
round:
    xor s6, s6, a6
    xor s7, s7, a7
    li t2, 0
    li t3, 8
sub_l:
    andi t4, s6, 0xff
    add t4, t4, s0
    lbu t4, 0(t4)
    slli t2, t2, 8
    or t2, t2, t4
    srli s6, s6, 8
    addi t3, t3, -1
    bnez t3, sub_l
    li t5, 0
    li t3, 8
sub_h:
    andi t4, s7, 0xff
    add t4, t4, s0
    lbu t4, 0(t4)
    slli t5, t5, 8
    or t5, t5, t4
    srli s7, s7, 8
    addi t3, t3, -1
    bnez t3, sub_h
    slli t0, t2, 8
    srli t1, t2, 56
    or t0, t0, t1
    xor s6, t0, t5
    slli t0, t5, 24
    srli t1, t5, 40
    or t0, t0, t1
    xor s7, t0, t2
    slli t0, a6, 7
    srli t1, a6, 57
    or a6, t0, t1
    add a6, a6, s8
    slli t0, a7, 13
    srli t1, a7, 51
    or a7, t0, t1
    xor a7, a7, s8
    andi t0, s3, 2047
    slli t0, t0, 4
    add t0, t0, s2
    sd s6, 0(t0)
    sd s7, 8(t0)
    addi s3, s3, 1
    addi s8, s8, 1
    li t0, {ROUNDS}
    blt s8, t0, round

    add s4, s4, s6
    slli t0, s4, 1
    srli t1, s4, 63
    or s4, t0, t1
    xor s4, s4, s7
    addi s5, s5, -1
    bnez s5, block
    add a0, s4, s3
{EXIT}
    .data
    .align 6
sbox:
    .zero 256
    .align 6
trace:
    .zero 32768
)";

uint64_t
rijndaelReference(uint64_t seed, uint64_t key0, uint64_t key1)
{
    uint8_t sbox[256];
    for (unsigned i = 0; i < 256; ++i)
        sbox[i] = uint8_t(i * 167 + 13);

    auto substitute_bytes = [&sbox](uint64_t value) {
        uint64_t result = 0;
        for (int b = 0; b < 8; ++b) {
            result = (result << 8) | sbox[value & 0xff];
            value >>= 8;
        }
        return result;
    };

    uint64_t x = seed, sum = 0;
    for (uint64_t blk = 0; blk < rijndaelBlocks; ++blk) {
        uint64_t low = lcgNext(x);
        uint64_t high = lcgNext(x);
        uint64_t k0 = key0, k1 = key1;
        for (uint64_t r = 0; r < rijndaelRounds; ++r) {
            low ^= k0;
            high ^= k1;
            const uint64_t sub_low = substitute_bytes(low);
            const uint64_t sub_high = substitute_bytes(high);
            low = rotl64(sub_low, 8) ^ sub_high;
            high = rotl64(sub_high, 24) ^ sub_low;
            k0 = rotl64(k0, 7) + r;
            k1 = rotl64(k1, 13) ^ r;
        }
        sum += low;
        sum = rotl64(sum, 1) ^ high;
    }
    return sum + rijndaelBlocks * rijndaelRounds;
}

Workload
makeRijndael()
{
    const uint64_t seed = 0xae5;
    const uint64_t key0 = 0x0f1e2d3c4b5a6978ULL;
    const uint64_t key1 = 0x8796a5b4c3d2e1f0ULL;
    std::string source = rijndaelSource;
    source = substitute(source, "BLOCKS", rijndaelBlocks);
    source = substitute(source, "ROUNDS", rijndaelRounds);
    source = substitute(source, "KEY0", key0);
    source = substitute(source, "KEY1", key1);
    source = withLcg(source, seed);
    return {"rijndael", Suite::MiBench,
            "AES-like SPN rounds with byte S-box lookups",
            finish(source), [seed, key0, key1] {
                return rijndaelReference(seed, key0, key1);
            }};
}

// ---------------------------------------------------------------------
// rsynth: wavetable oscillator bank with clipping.
// ---------------------------------------------------------------------

constexpr uint64_t rsynthSamples = 15000;

const char *rsynthSource = R"(
    la s0, wave
    li t0, 0
wgen:
    li t1, 512
    blt t0, t1, rising
    li t2, 768
    sub t2, t2, t0
    j wstore
rising:
    addi t2, t0, -256
wstore:
    slli t3, t0, 1
    add t3, t3, s0
    sh t2, 0(t3)
    addi t0, t0, 1
    li t1, 1024
    blt t0, t1, wgen

    la s1, out
    li s2, 0
    li s3, 0
    li s4, 0
    li s5, 0
    li s6, {N}
    li s7, 0
    li s8, 4095
synth:
    addi s2, s2, 511
    addi s3, s3, 197
    addi s4, s4, 89
    srli t0, s2, 6
    andi t0, t0, 1023
    slli t0, t0, 1
    add t0, t0, s0
    lh t1, 0(t0)
    srli t0, s3, 6
    andi t0, t0, 1023
    slli t0, t0, 1
    add t0, t0, s0
    lh t2, 0(t0)
    srli t0, s4, 6
    andi t0, t0, 1023
    slli t0, t0, 1
    add t0, t0, s0
    lh t3, 0(t0)
    add t1, t1, t2
    sub t1, t1, t3
    li t4, 700
    ble t1, t4, clip_lo
    mv t1, t4
clip_lo:
    li t4, -700
    bge t1, t4, clip_done
    mv t1, t4
clip_done:
    and t5, s7, s8
    slli t5, t5, 1
    add t5, t5, s1
    sh t1, 0(t5)
    add s5, s5, t1
    slli t6, s5, 1
    srli t0, s5, 63
    or s5, t6, t0
    addi s7, s7, 1
    blt s7, s6, synth
    mv a0, s5
{EXIT}
    .data
    .align 6
wave:
    .zero 2048
    .align 6
out:
    .zero 8192
)";

uint64_t
rsynthReference()
{
    int16_t wave[1024];
    for (int i = 0; i < 1024; ++i)
        wave[i] = int16_t(i < 512 ? i - 256 : 768 - i);

    uint64_t ph1 = 0, ph2 = 0, ph3 = 0, sum = 0;
    for (uint64_t n = 0; n < rsynthSamples; ++n) {
        ph1 += 511;
        ph2 += 197;
        ph3 += 89;
        int64_t sample = wave[(ph1 >> 6) & 1023] +
                         wave[(ph2 >> 6) & 1023] -
                         wave[(ph3 >> 6) & 1023];
        if (sample > 700)
            sample = 700;
        if (sample < -700)
            sample = -700;
        sum += uint64_t(sample);
        sum = rotl64(sum, 1);
    }
    return sum;
}

Workload
makeRsynth()
{
    std::string source = rsynthSource;
    source = substitute(source, "N", rsynthSamples);
    return {"rsynth", Suite::MiBench,
            "wavetable oscillator bank with clipping and output stores",
            finish(source), [] { return rsynthReference(); }};
}

// ---------------------------------------------------------------------
// sha: SHA-1 compression over generated blocks.
// ---------------------------------------------------------------------

constexpr uint64_t shaBlocks = 120;

const char *shaSource = R"(
    li s2, 0x67452301
    li s3, 0xefcdab89
    li s4, 0x98badcfe
    li s5, 0x10325476
    li s6, 0xc3d2e1f0
    li s9, {SEED}
    li s10, {LCGMUL}
    li s11, {LCGADD}
    la s0, wbuf
    li s7, {BLOCKS}
    li s8, 0xffffffff
block:
    li t0, 0
wgen:
    mul s9, s9, s10
    add s9, s9, s11
    srli t1, s9, 32
    slli t2, t0, 2
    add t2, t2, s0
    sw t1, 0(t2)
    addi t0, t0, 1
    li t3, 16
    blt t0, t3, wgen
wext:
    slli t2, t0, 2
    add t2, t2, s0
    lwu t1, -12(t2)
    lwu t3, -32(t2)
    xor t1, t1, t3
    lwu t3, -56(t2)
    xor t1, t1, t3
    lwu t3, -64(t2)
    xor t1, t1, t3
    slli t3, t1, 1
    srli t1, t1, 31
    or t1, t1, t3
    and t1, t1, s8
    sw t1, 0(t2)
    addi t0, t0, 1
    li t3, 80
    blt t0, t3, wext

    mv a1, s2
    mv a2, s3
    mv a3, s4
    mv a4, s5
    mv a5, s6
    li t0, 0
round:
    li t3, 20
    blt t0, t3, f1
    li t3, 40
    blt t0, t3, f2
    li t3, 60
    blt t0, t3, f3
    xor t1, a2, a3
    xor t1, t1, a4
    li t2, 0xca62c1d6
    j fdone
f1:
    and t1, a2, a3
    not t2, a2
    and t2, t2, a4
    or t1, t1, t2
    li t2, 0x5a827999
    j fdone
f2:
    xor t1, a2, a3
    xor t1, t1, a4
    li t2, 0x6ed9eba1
    j fdone
f3:
    and t1, a2, a3
    and t3, a2, a4
    or t1, t1, t3
    and t3, a3, a4
    or t1, t1, t3
    li t2, 0x8f1bbcdc
fdone:
    slli t3, a1, 5
    srli t4, a1, 27
    or t3, t3, t4
    and t3, t3, s8
    add t3, t3, t1
    add t3, t3, a5
    add t3, t3, t2
    slli t4, t0, 2
    add t4, t4, s0
    lwu t5, 0(t4)
    add t3, t3, t5
    and t3, t3, s8
    mv a5, a4
    mv a4, a3
    slli t4, a2, 30
    srli t5, a2, 2
    or t4, t4, t5
    and a3, t4, s8
    mv a2, a1
    mv a1, t3
    addi t0, t0, 1
    li t3, 80
    blt t0, t3, round

    add s2, s2, a1
    and s2, s2, s8
    add s3, s3, a2
    and s3, s3, s8
    add s4, s4, a3
    and s4, s4, s8
    add s5, s5, a4
    and s5, s5, s8
    add s6, s6, a5
    and s6, s6, s8
    addi s7, s7, -1
    bnez s7, block

    slli a0, s2, 32
    or a0, a0, s3
    xor a0, a0, s4
    slli t0, s5, 16
    add a0, a0, t0
    xor a0, a0, s6
{EXIT}
    .data
    .align 6
wbuf:
    .zero 320
)";

uint64_t
shaReference(uint64_t seed)
{
    constexpr uint64_t m32 = 0xffffffffULL;
    uint64_t h0 = 0x67452301, h1 = 0xefcdab89, h2 = 0x98badcfe;
    uint64_t h3 = 0x10325476, h4 = 0xc3d2e1f0;
    uint64_t x = seed;

    for (uint64_t blk = 0; blk < shaBlocks; ++blk) {
        uint64_t w[80];
        for (int i = 0; i < 16; ++i) {
            lcgNext(x);
            w[i] = x >> 32;
        }
        for (int i = 16; i < 80; ++i) {
            uint64_t v = w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16];
            w[i] = ((v << 1) | (v >> 31)) & m32;
        }
        uint64_t a = h0, b = h1, c = h2, d = h3, e = h4;
        for (int i = 0; i < 80; ++i) {
            uint64_t f, k;
            if (i < 20) {
                f = (b & c) | (~b & d);
                k = 0x5a827999;
            } else if (i < 40) {
                f = b ^ c ^ d;
                k = 0x6ed9eba1;
            } else if (i < 60) {
                f = (b & c) | (b & d) | (c & d);
                k = 0x8f1bbcdc;
            } else {
                f = b ^ c ^ d;
                k = 0xca62c1d6;
            }
            const uint64_t temp =
                ((((a << 5) | (a >> 27)) & m32) + f + e + k + w[i]) & m32;
            e = d;
            d = c;
            c = ((b << 30) | (b >> 2)) & m32;
            b = a;
            a = temp;
        }
        h0 = (h0 + a) & m32;
        h1 = (h1 + b) & m32;
        h2 = (h2 + c) & m32;
        h3 = (h3 + d) & m32;
        h4 = (h4 + e) & m32;
    }
    uint64_t sum = (h0 << 32) | h1;
    sum ^= h2;
    sum += h3 << 16;
    sum ^= h4;
    return sum;
}

Workload
makeSha()
{
    const uint64_t seed = 0x5a15a1;
    std::string source = shaSource;
    source = substitute(source, "BLOCKS", shaBlocks);
    source = withLcg(source, seed);
    return {"sha", Suite::MiBench,
            "SHA-1 compression: schedule extension plus 80 rounds",
            finish(source), [seed] { return shaReference(seed); }};
}

// ---------------------------------------------------------------------
// stringsearch: Horspool scanning with per-pattern skip tables.
// ---------------------------------------------------------------------

constexpr uint64_t searchTextLen = 12000;
constexpr uint64_t searchPatterns = 8;
constexpr uint64_t searchPatLen = 6;

const char *searchSource = R"(
    la s0, text
    li s9, {SEED}
    li s10, {LCGMUL}
    li s11, {LCGADD}
    li t0, {LEN}
    mv t1, s0
tgen:
    mul s9, s9, s10
    add s9, s9, s11
    srli t2, s9, 33
    li t3, 26
    remu t2, t2, t3
    addi t2, t2, 97
    sb t2, 0(t1)
    addi t1, t1, 1
    addi t0, t0, -1
    bnez t0, tgen

    la s1, skip
    la s2, pat
    li s4, 0
    li s5, 0
    li s7, 0
pattern_loop:
    mul s9, s9, s10
    add s9, s9, s11
    srli t0, s9, 20
    li t1, {MAXSTART}
    remu t0, t0, t1
    add t0, t0, s0
    li t1, 0
pcopy:
    add t2, t0, t1
    lbu t3, 0(t2)
    add t4, s2, t1
    sb t3, 0(t4)
    addi t1, t1, 1
    li t2, {PLEN}
    blt t1, t2, pcopy

    li t0, 0
    li t1, {PLEN}
sk_init:
    add t2, s1, t0
    sb t1, 0(t2)
    addi t0, t0, 1
    li t3, 256
    blt t0, t3, sk_init
    li t0, 0
    li t4, {PLEN1}
sk_fill:
    add t2, s2, t0
    lbu t3, 0(t2)
    add t3, t3, s1
    sub t5, t4, t0
    sb t5, 0(t3)
    addi t0, t0, 1
    blt t0, t4, sk_fill

    li t0, 0
    li s6, {SCANLIMIT}
scan:
    bgt t0, s6, scan_done
    li t1, {PLEN1}
cmp:
    add t2, t0, t1
    add t2, t2, s0
    lbu t3, 0(t2)
    add t4, s2, t1
    lbu t5, 0(t4)
    bne t3, t5, mismatch
    addi t1, t1, -1
    bgez t1, cmp
    add s4, s4, t0
    addi s5, s5, 1
    addi t0, t0, 1
    j scan
mismatch:
    li t1, {PLEN1}
    add t2, t0, t1
    add t2, t2, s0
    lbu t3, 0(t2)
    add t3, t3, s1
    lbu t4, 0(t3)
    add t0, t0, t4
    j scan
scan_done:
    addi s7, s7, 1
    li t0, {NPAT}
    blt s7, t0, pattern_loop
    slli t0, s5, 20
    add a0, s4, t0
{EXIT}
    .data
    .align 6
text:
    .zero {LEN}
skip:
    .zero 256
pat:
    .zero 16
)";

uint64_t
searchReference(uint64_t seed)
{
    uint64_t x = seed;
    vector<uint8_t> text(searchTextLen);
    for (auto &c : text) {
        lcgNext(x);
        c = uint8_t(97 + (x >> 33) % 26);
    }

    uint64_t pos_sum = 0, match_count = 0;
    for (uint64_t p = 0; p < searchPatterns; ++p) {
        lcgNext(x);
        const uint64_t start =
            (x >> 20) % (searchTextLen - searchPatLen - 2);
        uint8_t pat[searchPatLen];
        for (uint64_t i = 0; i < searchPatLen; ++i)
            pat[i] = text[start + i];

        uint8_t skip[256];
        for (unsigned i = 0; i < 256; ++i)
            skip[i] = searchPatLen;
        for (uint64_t i = 0; i + 1 < searchPatLen; ++i)
            skip[pat[i]] = uint8_t(searchPatLen - 1 - i);

        int64_t i = 0;
        const int64_t limit = int64_t(searchTextLen - searchPatLen);
        while (i <= limit) {
            int64_t j = searchPatLen - 1;
            while (j >= 0 && text[i + j] == pat[j])
                --j;
            if (j < 0) {
                pos_sum += uint64_t(i);
                ++match_count;
                ++i;
            } else {
                i += skip[text[i + searchPatLen - 1]];
            }
        }
    }
    return pos_sum + (match_count << 20);
}

Workload
makeStringsearch()
{
    const uint64_t seed = 0x57a9;
    std::string source = searchSource;
    source = substitute(source, "LEN", searchTextLen);
    source = substitute(source, "PLEN", searchPatLen);
    source = substitute(source, "PLEN1", searchPatLen - 1);
    source = substitute(source, "NPAT", searchPatterns);
    source = substitute(source, "MAXSTART",
                        searchTextLen - searchPatLen - 2);
    source = substitute(source, "SCANLIMIT",
                        searchTextLen - searchPatLen);
    source = withLcg(source, seed);
    return {"stringsearch", Suite::MiBench,
            "Horspool text scanning with skip-table byte loads",
            finish(source), [seed] { return searchReference(seed); }};
}

// ---------------------------------------------------------------------
// susan: USAN-style similarity counting over a smoothed byte image.
// ---------------------------------------------------------------------

constexpr uint64_t susanWidth = 80;
constexpr uint64_t susanHeight = 60;

const char *susanSource = R"(
    la s0, img
    la s1, outimg
    li s9, {SEED}
    li s10, {LCGMUL}
    li s11, {LCGADD}
    li t0, {PIXELS}
    mv t1, s0
    li t5, 128
igen:
    mul s9, s9, s10
    add s9, s9, s11
    srli t2, s9, 40
    andi t2, t2, 0xff
    li t3, 3
    mul t4, t5, t3
    add t4, t4, t2
    srli t4, t4, 2
    mv t5, t4
    sb t4, 0(t1)
    addi t1, t1, 1
    addi t0, t0, -1
    bnez t0, igen

    li s4, 0
    li s5, 1
yloop:
    li s6, 1
xloop:
    li t0, {W}
    mul t0, t0, s5
    add t0, t0, s6
    add t1, s0, t0
    lbu t2, 0(t1)
    li t3, 0
    lbu t4, -{W1}(t1)
    sub t5, t4, t2
    srai t6, t5, 63
    xor t5, t5, t6
    sub t5, t5, t6
    sltiu t5, t5, 21
    add t3, t3, t5
    lbu t4, -{W}(t1)
    sub t5, t4, t2
    srai t6, t5, 63
    xor t5, t5, t6
    sub t5, t5, t6
    sltiu t5, t5, 21
    add t3, t3, t5
    lbu t4, -{Wm1}(t1)
    sub t5, t4, t2
    srai t6, t5, 63
    xor t5, t5, t6
    sub t5, t5, t6
    sltiu t5, t5, 21
    add t3, t3, t5
    lbu t4, -1(t1)
    sub t5, t4, t2
    srai t6, t5, 63
    xor t5, t5, t6
    sub t5, t5, t6
    sltiu t5, t5, 21
    add t3, t3, t5
    lbu t4, 1(t1)
    sub t5, t4, t2
    srai t6, t5, 63
    xor t5, t5, t6
    sub t5, t5, t6
    sltiu t5, t5, 21
    add t3, t3, t5
    lbu t4, {Wm1}(t1)
    sub t5, t4, t2
    srai t6, t5, 63
    xor t5, t5, t6
    sub t5, t5, t6
    sltiu t5, t5, 21
    add t3, t3, t5
    lbu t4, {W}(t1)
    sub t5, t4, t2
    srai t6, t5, 63
    xor t5, t5, t6
    sub t5, t5, t6
    sltiu t5, t5, 21
    add t3, t3, t5
    lbu t4, {W1}(t1)
    sub t5, t4, t2
    srai t6, t5, 63
    xor t5, t5, t6
    sub t5, t5, t6
    sltiu t5, t5, 21
    add t3, t3, t5
    add t4, s1, t0
    sb t3, 0(t4)
    add s4, s4, t3
    sltiu t5, t3, 4
    slli t5, t5, 6
    add s4, s4, t5
    addi s6, s6, 1
    li t0, {Wlim}
    blt s6, t0, xloop
    addi s5, s5, 1
    li t0, {Hlim}
    blt s5, t0, yloop
    mv a0, s4
{EXIT}
    .data
    .align 6
img:
    .zero {PIXELS}
    .align 6
outimg:
    .zero {PIXELS}
)";

uint64_t
susanReference(uint64_t seed)
{
    constexpr uint64_t w = susanWidth, h = susanHeight;
    vector<uint8_t> img(w * h);
    uint64_t x = seed;
    uint64_t prev = 128;
    for (auto &pixel : img) {
        lcgNext(x);
        const uint64_t noise = (x >> 40) & 0xff;
        prev = (prev * 3 + noise) >> 2;
        pixel = uint8_t(prev);
    }
    uint64_t sum = 0;
    for (uint64_t y = 1; y + 1 < h; ++y) {
        for (uint64_t col = 1; col + 1 < w; ++col) {
            const int64_t center = img[y * w + col];
            const int64_t offsets[8] = {
                -int64_t(w) - 1, -int64_t(w), -int64_t(w) + 1, -1,
                1, int64_t(w) - 1, int64_t(w), int64_t(w) + 1};
            uint64_t similar = 0;
            for (int64_t off : offsets) {
                int64_t diff = img[y * w + col + off] - center;
                if (diff < 0)
                    diff = -diff;
                if (diff <= 20)
                    ++similar;
            }
            sum += similar;
            if (similar < 4)
                sum += 64;
        }
    }
    return sum;
}

Workload
makeSusan()
{
    const uint64_t seed = 0x5a5a;
    std::string source = susanSource;
    source = substitute(source, "PIXELS", susanWidth * susanHeight);
    source = substitute(source, "W", susanWidth);
    source = substitute(source, "W1", susanWidth + 1);
    source = substitute(source, "Wm1", susanWidth - 1);
    source = substitute(source, "Wlim", susanWidth - 1);
    source = substitute(source, "Hlim", susanHeight - 1);
    source = withLcg(source, seed);
    return {"susan", Suite::MiBench,
            "USAN neighbor-similarity counting over a byte image",
            finish(source), [seed] { return susanReference(seed); }};
}

// ---------------------------------------------------------------------
// typeset: greedy line breaking over a doubly linked box list.
// ---------------------------------------------------------------------

constexpr uint64_t typesetBoxes = 3000;

const char *typesetSource = R"(
    la s0, boxes
    li s9, {SEED}
    li s10, {LCGMUL}
    li s11, {LCGADD}
    li t0, 0
    li t6, 0
build:
    li t1, 24
    mul t1, t1, t0
    add t1, t1, s0
    addi t2, t0, 1
    li t3, {N}
    blt t2, t3, has_next
    sd zero, 0(t1)
    j set_prev
has_next:
    li t4, 24
    mul t4, t4, t2
    add t4, t4, s0
    sd t4, 0(t1)
set_prev:
    sd t6, 8(t1)
    mul s9, s9, s10
    add s9, s9, s11
    srli t5, s9, 45
    andi t5, t5, 15
    addi t5, t5, 1
    sd t5, 16(t1)
    mv t6, t1
    addi t0, t0, 1
    li t3, {N}
    blt t0, t3, build

    li s4, 0
    li s5, 0
    la s6, breaks
width_loop:
    la s6, breaks
    slli t0, s5, 4
    addi t0, t0, 60
    mv t1, s0
    li t2, 0
    li t3, 0
walk:
    beqz t1, walk_done
    ld t4, 16(t1)
    add t2, t2, t4
    ble t2, t0, advance
    sub t5, t2, t4
    sub t5, t0, t5
    mul t5, t5, t5
    add s4, s4, t5
    sd t5, 0(s6)
    sd t3, 8(s6)
    sd t1, 16(s6)
    sd t2, 24(s6)
    addi s6, s6, 32
    addi t3, t3, 1
    mv t2, t4
advance:
    ld t1, 0(t1)
    j walk
walk_done:
    slli t3, t3, 8
    add s4, s4, t3
    addi s5, s5, 1
    li t0, 5
    blt s5, t0, width_loop

    li t0, 24
    li t1, {NM1}
    mul t0, t0, t1
    add t0, t0, s0
    li t2, 0
rwalk:
    beqz t0, rdone
    ld t3, 16(t0)
    xor t2, t2, t3
    slli t4, t2, 3
    srli t5, t2, 61
    or t2, t4, t5
    ld t0, 8(t0)
    j rwalk
rdone:
    add a0, s4, t2
{EXIT}
    .data
    .align 6
boxes:
    .zero {BOXBYTES}
    .align 6
breaks:
    .zero {BREAKBYTES}
)";

uint64_t
typesetReference(uint64_t seed)
{
    uint64_t x = seed;
    vector<uint64_t> widths(typesetBoxes);
    for (auto &width : widths) {
        lcgNext(x);
        width = ((x >> 45) & 15) + 1;
    }

    uint64_t sum = 0;
    for (uint64_t wl = 0; wl < 5; ++wl) {
        const uint64_t line_width = wl * 16 + 60;
        uint64_t acc = 0, lines = 0;
        for (uint64_t w : widths) {
            acc += w;
            if (int64_t(acc) > int64_t(line_width)) {
                const int64_t slack =
                    int64_t(line_width) - int64_t(acc - w);
                sum += uint64_t(slack * slack);
                ++lines;
                acc = w;
            }
        }
        sum += lines << 8;
    }

    uint64_t fold = 0;
    for (uint64_t i = typesetBoxes; i-- > 0;) {
        fold ^= widths[i];
        fold = rotl64(fold, 3);
    }
    return sum + fold;
}

Workload
makeTypeset()
{
    const uint64_t seed = 0x7e5e;
    std::string source = typesetSource;
    source = substitute(source, "N", typesetBoxes);
    source = substitute(source, "NM1", typesetBoxes - 1);
    source = substitute(source, "BOXBYTES", typesetBoxes * 24);
    source = substitute(source, "BREAKBYTES", typesetBoxes * 32);
    source = withLcg(source, seed);
    return {"typeset", Suite::MiBench,
            "greedy line breaking over a doubly linked box list",
            finish(source), [seed] { return typesetReference(seed); }};
}

} // namespace

std::vector<Workload>
mibenchWorkloads2()
{
    std::vector<Workload> workloads;
    workloads.push_back(makeJpeg());
    workloads.push_back(makePatricia());
    workloads.push_back(makeQsort());
    workloads.push_back(makeRijndael());
    workloads.push_back(makeRsynth());
    workloads.push_back(makeSha());
    workloads.push_back(makeStringsearch());
    workloads.push_back(makeSusan());
    workloads.push_back(makeTypeset());
    return workloads;
}

} // namespace workload_detail
} // namespace helios
