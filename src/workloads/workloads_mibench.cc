/**
 * @file
 * MiBench-like kernels, part 1: adpcm, basicmath, bitcount, blowfish,
 * crc32, dijkstra, fft, gsm (toast/untoast).
 */

#include "workloads/workloads.hh"

#include <array>
#include <vector>

namespace helios
{
namespace workload_detail
{

namespace
{

using std::vector;

const std::string exitStub = R"(
    li a7, 93
    ecall
)";

std::string
finish(std::string source)
{
    const size_t pos = source.find("{EXIT}");
    source.replace(pos, 6, exitStub);
    return source;
}

std::string
withLcg(std::string source, uint64_t seed)
{
    source = substitute(source, "SEED", seed);
    source = substitute(source, "LCGMUL", lcgMul);
    source = substitute(source, "LCGADD", lcgAdd);
    return source;
}

// ---------------------------------------------------------------------
// adpcm: IMA-style ADPCM encoding with step/index tables.
// ---------------------------------------------------------------------

constexpr int adpcmStepTable[89] = {
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34,
    37, 41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143,
    157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494,
    544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552,
    1707, 1878, 2066, 2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428,
    4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487,
    12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086,
    29794, 32767};

constexpr int adpcmIndexTable[8] = {-1, -1, -1, -1, 2, 4, 6, 8};

constexpr uint64_t adpcmSamples = 6000;

std::string
adpcmTables()
{
    std::string text = "step_table:\n";
    for (int step : adpcmStepTable)
        text += "    .word " + std::to_string(step) + "\n";
    text += "index_table:\n";
    for (int delta : adpcmIndexTable)
        text += "    .word " + std::to_string(delta) + "\n";
    return text;
}

const char *adpcmSource = R"(
    la s0, step_table
    la s1, index_table
    li s2, 0
    li s3, 0
    li s4, 0
    li s9, {SEED}
    li s10, {LCGMUL}
    li s11, {LCGADD}
    li s5, {N}
    lw s6, 0(s0)
loop:
    mul s9, s9, s10
    add s9, s9, s11
    srli t0, s9, 48
    slli t0, t0, 48
    srai t0, t0, 48
    sub t1, t0, s2
    li t2, 0
    bgez t1, pos
    li t2, 8
    neg t1, t1
pos:
    mv t3, s6
    srli t4, t3, 3
    blt t1, t3, b2
    ori t2, t2, 4
    sub t1, t1, t3
    add t4, t4, t3
b2:
    srli t3, t3, 1
    blt t1, t3, b1
    ori t2, t2, 2
    sub t1, t1, t3
    add t4, t4, t3
b1:
    srli t3, t3, 1
    blt t1, t3, bdone
    ori t2, t2, 1
    add t4, t4, t3
bdone:
    andi t5, t2, 8
    beqz t5, addp
    sub s2, s2, t4
    j clampp
addp:
    add s2, s2, t4
clampp:
    li t5, 32767
    ble s2, t5, c2
    mv s2, t5
c2:
    li t5, -32768
    bge s2, t5, c3
    mv s2, t5
c3:
    andi t5, t2, 7
    slli t5, t5, 2
    add t5, t5, s1
    lw t6, 0(t5)
    add s3, s3, t6
    bgez s3, c4
    li s3, 0
c4:
    li t5, 88
    ble s3, t5, c5
    mv s3, t5
c5:
    slli t5, s3, 2
    add t5, t5, s0
    lw s6, 0(t5)
    li t5, 3
    mul s4, s4, t5
    add s4, s4, t2
    addi s5, s5, -1
    bnez s5, loop
    slli t0, s2, 48
    srli t0, t0, 48
    add a0, s4, t0
    add a0, a0, s3
{EXIT}
    .data
    .align 6
{TABLES}
)";

uint64_t
adpcmReference(uint64_t seed)
{
    uint64_t x = seed;
    int64_t predicted = 0;
    int64_t index = 0;
    int64_t step = adpcmStepTable[0];
    uint64_t sum = 0;
    for (uint64_t n = 0; n < adpcmSamples; ++n) {
        lcgNext(x);
        const int64_t sample = int16_t(x >> 48);
        int64_t diff = sample - predicted;
        int64_t code = 0;
        if (diff < 0) {
            code = 8;
            diff = -diff;
        }
        int64_t step_work = step;
        int64_t vpdiff = step_work >> 3;
        if (diff >= step_work) {
            code |= 4;
            diff -= step_work;
            vpdiff += step_work;
        }
        step_work >>= 1;
        if (diff >= step_work) {
            code |= 2;
            diff -= step_work;
            vpdiff += step_work;
        }
        step_work >>= 1;
        if (diff >= step_work) {
            code |= 1;
            vpdiff += step_work;
        }
        predicted += (code & 8) ? -vpdiff : vpdiff;
        if (predicted > 32767)
            predicted = 32767;
        if (predicted < -32768)
            predicted = -32768;
        index += adpcmIndexTable[code & 7];
        if (index < 0)
            index = 0;
        if (index > 88)
            index = 88;
        step = adpcmStepTable[index];
        sum = sum * 3 + uint64_t(code);
    }
    return sum + (uint64_t(predicted) & 0xffff) + uint64_t(index);
}

Workload
makeAdpcm()
{
    const uint64_t seed = 31337;
    std::string source = adpcmSource;
    source = substitute(source, "N", adpcmSamples);
    source = withLcg(source, seed);
    const size_t pos = source.find("{TABLES}");
    source.replace(pos, 8, adpcmTables());
    return {"adpcm", Suite::MiBench,
            "IMA ADPCM quantization with step/index table lookups",
            finish(source), [seed] { return adpcmReference(seed); }};
}

// ---------------------------------------------------------------------
// basicmath: integer sqrt, gcd and polynomial evaluation.
// ---------------------------------------------------------------------

constexpr uint64_t basicmathIters = 1500;

const char *basicmathSource = R"(
    li s2, 0
    li s3, 1
    li s9, {SEED}
    li s10, {LCGMUL}
    li s11, {LCGADD}
    li s5, {N}
loop:
    mul s9, s9, s10
    add s9, s9, s11
    srli s6, s9, 33

    mv t0, s6
    li t1, 0
    li t2, 0x40000000
isq:
    beqz t2, isq_done
    add t3, t1, t2
    sltu t4, t0, t3
    addi t4, t4, -1
    and t5, t3, t4
    sub t0, t0, t5
    srli t1, t1, 1
    and t5, t2, t4
    add t1, t1, t5
    srli t2, t2, 2
    j isq
isq_done:
    add s2, s2, t1

    mv t2, s6
    mv t3, s3
gcd:
    beqz t3, gcd_done
    remu t4, t2, t3
    mv t2, t3
    mv t3, t4
    j gcd
gcd_done:
    add s2, s2, t2
    addi s3, s6, 1

    li t0, 3
    mul t1, s6, t0
    addi t1, t1, 7
    mul t1, t1, s6
    addi t1, t1, -5
    mul t1, t1, s6
    addi t1, t1, 11
    xor s2, s2, t1

    addi s5, s5, -1
    bnez s5, loop
    mv a0, s2
{EXIT}
)";

uint64_t
basicmathReference(uint64_t seed)
{
    uint64_t x = seed, sum = 0, prev = 1;
    for (uint64_t n = 0; n < basicmathIters; ++n) {
        lcgNext(x);
        const uint64_t v = x >> 33;

        uint64_t rem = v, res = 0, bit = 0x40000000;
        while (bit != 0) {
            if (rem >= res + bit) {
                rem -= res + bit;
                res = (res >> 1) + bit;
            } else {
                res >>= 1;
            }
            bit >>= 2;
        }
        sum += res;

        uint64_t a = v, b = prev;
        while (b != 0) {
            const uint64_t r = a % b;
            a = b;
            b = r;
        }
        sum += a;
        prev = v + 1;

        const uint64_t poly = ((3 * v + 7) * v - 5) * v + 11;
        sum ^= poly;
    }
    return sum;
}

Workload
makeBasicmath()
{
    const uint64_t seed = 555;
    std::string source = basicmathSource;
    source = substitute(source, "N", basicmathIters);
    source = withLcg(source, seed);
    return {"basicmath", Suite::MiBench,
            "integer sqrt, Euclid gcd (divider) and Horner polynomials",
            finish(source), [seed] { return basicmathReference(seed); }};
}

// ---------------------------------------------------------------------
// bitcount: three bit-counting algorithms (ALU heavy, few memory ops).
// ---------------------------------------------------------------------

constexpr uint64_t bitcountIters = 4000;

const char *bitcountSource = R"(
    li s2, 0
    li s9, {SEED}
    li s10, {LCGMUL}
    li s11, {LCGADD}
    li s5, {N}
    li s6, 0x5555555555555555
    li s7, 0x3333333333333333
    li s8, 0x0f0f0f0f0f0f0f0f
loop:
    mul s9, s9, s10
    add s9, s9, s11

    mv t0, s9
    li t1, 0
kern:
    beqz t0, kern_done
    addi t2, t0, -1
    and t0, t0, t2
    addi t1, t1, 1
    j kern
kern_done:
    add s2, s2, t1

    mv t0, s9
    li t1, 0
nib:
    beqz t0, nib_done
    andi t2, t0, 15
    srli t3, t2, 1
    andi t3, t3, 5
    sub t2, t2, t3
    andi t3, t2, 3
    srli t2, t2, 2
    add t2, t2, t3
    add t1, t1, t2
    srli t0, t0, 4
    j nib
nib_done:
    add s2, s2, t1

    mv t0, s9
    srli t1, t0, 1
    and t1, t1, s6
    sub t0, t0, t1
    and t1, t0, s7
    srli t0, t0, 2
    and t0, t0, s7
    add t0, t0, t1
    srli t1, t0, 4
    add t0, t0, t1
    and t0, t0, s8
    li t1, 0x0101010101010101
    mul t0, t0, t1
    srli t0, t0, 56
    add s2, s2, t0

    addi s5, s5, -1
    bnez s5, loop
    mv a0, s2
{EXIT}
)";

uint64_t
bitcountReference(uint64_t seed)
{
    uint64_t x = seed, sum = 0;
    for (uint64_t n = 0; n < bitcountIters; ++n) {
        lcgNext(x);

        uint64_t v = x, count = 0;
        while (v) {
            v &= v - 1;
            ++count;
        }
        sum += count;

        v = x;
        count = 0;
        while (v) {
            uint64_t nib = v & 15;
            nib = nib - ((nib >> 1) & 5);
            nib = (nib & 3) + (nib >> 2);
            count += nib;
            v >>= 4;
        }
        sum += count;

        v = x;
        v = v - ((v >> 1) & 0x5555555555555555ULL);
        v = (v >> 2 & 0x3333333333333333ULL) +
            (v & 0x3333333333333333ULL);
        v = (v + (v >> 4)) & 0x0f0f0f0f0f0f0f0fULL;
        sum += (v * 0x0101010101010101ULL) >> 56;
    }
    return sum;
}

Workload
makeBitcount()
{
    const uint64_t seed = 808;
    std::string source = bitcountSource;
    source = substitute(source, "N", bitcountIters);
    source = withLcg(source, seed);
    return {"bitcount", Suite::MiBench,
            "Kernighan, nibble-SWAR and full-SWAR popcounts (ALU only)",
            finish(source), [seed] { return bitcountReference(seed); }};
}

// ---------------------------------------------------------------------
// blowfish: Feistel rounds with two generated 256-entry S-tables.
// ---------------------------------------------------------------------

constexpr uint64_t blowfishBlocks = 1200;
constexpr uint64_t blowfishRounds = 16;

const char *blowfishSource = R"(
    la s0, sbox0
    la s1, sbox1
    la s2, parr
    li s9, {SEED}
    li s10, {LCGMUL}
    li s11, {LCGADD}

    li t0, 256
    mv t1, s0
fill0:
    mul s9, s9, s10
    add s9, s9, s11
    srli t2, s9, 32
    sw t2, 0(t1)
    addi t1, t1, 4
    addi t0, t0, -1
    bnez t0, fill0
    li t0, 256
    mv t1, s1
fill1:
    mul s9, s9, s10
    add s9, s9, s11
    srli t2, s9, 32
    sw t2, 0(t1)
    addi t1, t1, 4
    addi t0, t0, -1
    bnez t0, fill1
    li t0, {ROUNDS}
    mv t1, s2
fillp:
    mul s9, s9, s10
    add s9, s9, s11
    srli t2, s9, 32
    sw t2, 0(t1)
    addi t1, t1, 4
    addi t0, t0, -1
    bnez t0, fillp

    li s4, 0
    li s5, {BLOCKS}
block:
    mul s9, s9, s10
    add s9, s9, s11
    srli s6, s9, 32
    li t6, 0xffffffff
    and s7, s9, t6

    li s8, 0
round:
    slli t0, s8, 2
    add t0, t0, s2
    lwu t1, 0(t0)
    andi t2, s6, 0xff
    slli t2, t2, 2
    add t2, t2, s0
    lwu t3, 0(t2)
    srli t4, s6, 8
    andi t4, t4, 0xff
    slli t4, t4, 2
    add t4, t4, s1
    lwu t5, 0(t4)
    add t3, t3, t5
    srli t5, s6, 16
    xor t3, t3, t5
    add t3, t3, t1
    li t6, 0xffffffff
    and t3, t3, t6
    xor s7, s7, t3
    mv t0, s6
    mv s6, s7
    mv s7, t0
    addi s8, s8, 1
    li t1, {ROUNDS}
    blt s8, t1, round

    add s4, s4, s6
    slli t0, s7, 1
    xor s4, s4, t0
    addi s5, s5, -1
    bnez s5, block
    mv a0, s4
{EXIT}
    .data
    .align 6
sbox0:
    .zero 1024
sbox1:
    .zero 1024
parr:
    .zero 64
)";

uint64_t
blowfishReference(uint64_t seed)
{
    uint64_t x = seed;
    uint32_t sbox0[256], sbox1[256], parr[blowfishRounds];
    for (auto &entry : sbox0)
        entry = uint32_t(lcgNext(x) >> 32);
    for (auto &entry : sbox1)
        entry = uint32_t(lcgNext(x) >> 32);
    for (auto &entry : parr)
        entry = uint32_t(lcgNext(x) >> 32);

    uint64_t sum = 0;
    for (uint64_t b = 0; b < blowfishBlocks; ++b) {
        lcgNext(x);
        uint64_t left = x >> 32;
        uint64_t right = x & 0xffffffffULL;
        for (uint64_t r = 0; r < blowfishRounds; ++r) {
            uint64_t f = uint64_t(sbox0[left & 0xff]) +
                         uint64_t(sbox1[(left >> 8) & 0xff]);
            f ^= left >> 16;
            f += parr[r];
            f &= 0xffffffffULL;
            right ^= f;
            std::swap(left, right);
        }
        sum += left;
        sum ^= right << 1;
    }
    return sum;
}

Workload
makeBlowfish()
{
    const uint64_t seed = 0xb10f15b;
    std::string source = blowfishSource;
    source = substitute(source, "BLOCKS", blowfishBlocks);
    source = substitute(source, "ROUNDS", blowfishRounds);
    source = withLcg(source, seed);
    return {"blowfish", Suite::MiBench,
            "Feistel rounds with word S-box lookups",
            finish(source), [seed] { return blowfishReference(seed); }};
}

// ---------------------------------------------------------------------
// crc32: table-driven CRC over a generated buffer.
// ---------------------------------------------------------------------

constexpr uint64_t crcLen = 16384;

const char *crcSource = R"(
    la s0, crc_table
    li t0, 0
tgen:
    mv t1, t0
    li t2, 8
    li t4, 0xedb88320
tbit:
    andi t3, t1, 1
    srli t1, t1, 1
    sub t3, zero, t3
    and t3, t3, t4
    xor t1, t1, t3
    addi t2, t2, -1
    bnez t2, tbit
    slli t3, t0, 2
    add t3, t3, s0
    sw t1, 0(t3)
    addi t0, t0, 1
    li t4, 256
    blt t0, t4, tgen

    la s1, buf
    li s9, {SEED}
    li s10, {LCGMUL}
    li s11, {LCGADD}
    li t0, {LEN}
    mv t1, s1
bgen:
    mul s9, s9, s10
    add s9, s9, s11
    srli t2, s9, 35
    sb t2, 0(t1)
    addi t1, t1, 1
    addi t0, t0, -1
    bnez t0, bgen

    li t0, 0xffffffff
    mv t1, s1
    li t2, {HALFLEN}
crc:
    lbu t3, 0(t1)
    lbu t5, 1(t1)
    xor t3, t3, t0
    andi t3, t3, 0xff
    slli t3, t3, 2
    add t3, t3, s0
    lwu t4, 0(t3)
    srli t0, t0, 8
    xor t0, t0, t4
    xor t5, t5, t0
    andi t5, t5, 0xff
    slli t5, t5, 2
    add t5, t5, s0
    lwu t6, 0(t5)
    srli t0, t0, 8
    xor t0, t0, t6
    addi t1, t1, 2
    addi t2, t2, -1
    bnez t2, crc
    li t4, 0xffffffff
    xor a0, t0, t4
{EXIT}
    .data
    .align 6
crc_table:
    .zero 1024
buf:
    .zero {LEN}
)";

uint64_t
crcReference(uint64_t seed)
{
    uint32_t table[256];
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t v = i;
        for (int b = 0; b < 8; ++b)
            v = (v & 1) ? (v >> 1) ^ 0xedb88320u : v >> 1;
        table[i] = v;
    }
    uint64_t x = seed;
    vector<uint8_t> buf(crcLen);
    for (auto &byte : buf) {
        lcgNext(x);
        byte = uint8_t(x >> 35);
    }
    uint32_t crc = 0xffffffffu;
    for (uint8_t byte : buf)
        crc = (crc >> 8) ^ table[(crc ^ byte) & 0xff];
    return ~crc & 0xffffffffULL;
}

Workload
makeCrc32()
{
    const uint64_t seed = 0xc4c32;
    std::string source = crcSource;
    source = substitute(source, "LEN", crcLen);
    source = substitute(source, "HALFLEN", crcLen / 2);
    source = withLcg(source, seed);
    return {"crc32", Suite::MiBench,
            "table-driven CRC-32 over a 16 KiB buffer",
            finish(source), [seed] { return crcReference(seed); }};
}

// ---------------------------------------------------------------------
// dijkstra: dense-graph shortest paths with linear min scans.
// ---------------------------------------------------------------------

constexpr uint64_t dijkstraNodes = 64;
constexpr uint64_t dijkstraSources = 6;

const char *dijkstraSource = R"(
    la s0, weights
    li s9, {SEED}
    li s10, {LCGMUL}
    li s11, {LCGADD}
    li t0, {EDGES}
    mv t1, s0
wgen:
    mul s9, s9, s10
    add s9, s9, s11
    srli t2, s9, 40
    andi t2, t2, 63
    addi t2, t2, 1
    sd t2, 0(t1)
    addi t1, t1, 8
    addi t0, t0, -1
    bnez t0, wgen

    la s1, dist
    la s2, visited
    li s4, 0
    li s5, 0
source_loop:
    li t0, 0
    li t1, {INF}
init:
    slli t2, t0, 3
    add t2, t2, s1
    sd t1, 0(t2)
    add t3, s2, t0
    sb zero, 0(t3)
    addi t0, t0, 1
    li t4, {V}
    blt t0, t4, init
    slli t0, s5, 3
    add t0, t0, s1
    sd zero, 0(t0)

    li s6, {V}
iter:
    li t0, 0
    li t1, {INF}
    li t2, -1
scan:
    add t3, s2, t0
    lbu t4, 0(t3)
    bnez t4, scan_next
    slli t5, t0, 3
    add t5, t5, s1
    ld t6, 0(t5)
    bgeu t6, t1, scan_next
    mv t1, t6
    mv t2, t0
scan_next:
    addi t0, t0, 1
    li t3, {V}
    blt t0, t3, scan
    bltz t2, iter_done
    add t3, s2, t2
    li t4, 1
    sb t4, 0(t3)

    li t0, 0
    li t5, {V}
    mul t6, t2, t5
    slli t6, t6, 3
    add t6, t6, s0
relax:
    ld a1, 0(t6)
    add a1, a1, t1
    slli a2, t0, 3
    add a2, a2, s1
    ld a3, 0(a2)
    bgeu a1, a3, relax_next
    sd a1, 0(a2)
relax_next:
    addi t6, t6, 8
    addi t0, t0, 1
    blt t0, t5, relax
iter_done:
    addi s6, s6, -1
    bnez s6, iter

    li t0, 0
    li t1, {V}
fold:
    slli t2, t0, 3
    add t2, t2, s1
    ld t3, 0(t2)
    add s4, s4, t3
    addi t0, t0, 1
    blt t0, t1, fold

    addi s5, s5, 1
    li t0, {SOURCES}
    blt s5, t0, source_loop
    mv a0, s4
{EXIT}
    .data
    .align 6
weights:
    .zero {WBYTES}
dist:
    .zero {DBYTES}
visited:
    .zero {V}
)";

uint64_t
dijkstraReference(uint64_t seed)
{
    constexpr uint64_t v = dijkstraNodes;
    constexpr uint64_t inf = 1ULL << 40;
    uint64_t x = seed;
    vector<uint64_t> w(v * v);
    for (auto &weight : w) {
        lcgNext(x);
        weight = ((x >> 40) & 63) + 1;
    }
    uint64_t sum = 0;
    for (uint64_t src = 0; src < dijkstraSources; ++src) {
        vector<uint64_t> dist(v, inf);
        vector<uint8_t> visited(v, 0);
        dist[src] = 0;
        for (uint64_t it = 0; it < v; ++it) {
            uint64_t best = inf;
            int64_t u = -1;
            for (uint64_t i = 0; i < v; ++i) {
                if (!visited[i] && dist[i] < best) {
                    best = dist[i];
                    u = int64_t(i);
                }
            }
            if (u < 0)
                continue;
            visited[u] = 1;
            for (uint64_t i = 0; i < v; ++i) {
                const uint64_t nd = w[uint64_t(u) * v + i] + best;
                if (nd < dist[i])
                    dist[i] = nd;
            }
        }
        for (uint64_t i = 0; i < v; ++i)
            sum += dist[i];
    }
    return sum;
}

Workload
makeDijkstra()
{
    const uint64_t seed = 60046;
    std::string source = dijkstraSource;
    source = substitute(source, "V", dijkstraNodes);
    source = substitute(source, "EDGES", dijkstraNodes * dijkstraNodes);
    source = substitute(source, "WBYTES",
                        dijkstraNodes * dijkstraNodes * 8);
    source = substitute(source, "DBYTES", dijkstraNodes * 8);
    source = substitute(source, "SOURCES", dijkstraSources);
    source = substitute(source, "INF", 1ULL << 40);
    source = withLcg(source, seed);
    return {"dijkstra", Suite::MiBench,
            "dense Dijkstra with linear min scans and relaxations",
            finish(source), [seed] { return dijkstraReference(seed); }};
}

// ---------------------------------------------------------------------
// fft: fixed-point radix-2 FFT over interleaved complex data.
// ---------------------------------------------------------------------

constexpr uint64_t fftSize = 256;
constexpr uint64_t fftRuns = 8;

std::string
fftTwiddles()
{
    // Q14 twiddle factors for a size-256 forward FFT, baked into the
    // data segment (computing sin/cos in integer assembly would bring
    // nothing to the evaluation).
    std::string text = "twiddle:\n";
    for (uint64_t j = 0; j < fftSize / 2; ++j) {
        const double angle = -2.0 * 3.14159265358979323846 *
                             double(j) / double(fftSize);
        const auto wr = int64_t(16384.0 * __builtin_cos(angle));
        const auto wi = int64_t(16384.0 * __builtin_sin(angle));
        text += "    .dword " + std::to_string(uint64_t(wr)) + "\n";
        text += "    .dword " + std::to_string(uint64_t(wi)) + "\n";
    }
    return text;
}

const char *fftSource = R"(
    li s7, 0
    li s9, {SEED}
    li s10, {LCGMUL}
    li s11, {LCGADD}
    li s8, 0
run_loop:
    la s0, cdata
    li t0, {N}
    mv t1, s0
dgen:
    mul s9, s9, s10
    add s9, s9, s11
    srai t2, s9, 52
    sd t2, 0(t1)
    srli t3, s9, 20
    slli t3, t3, 52
    srai t3, t3, 52
    sd t3, 8(t1)
    addi t1, t1, 16
    addi t0, t0, -1
    bnez t0, dgen

    li t0, 0
bitrev:
    li t1, 0
    li t2, 0
    li t3, {LOGN}
brbit:
    slli t1, t1, 1
    srl t4, t0, t2
    andi t4, t4, 1
    or t1, t1, t4
    addi t2, t2, 1
    blt t2, t3, brbit
    bge t0, t1, brskip
    slli t4, t0, 4
    add t4, t4, s0
    slli t5, t1, 4
    add t5, t5, s0
    ld t6, 0(t4)
    ld a1, 8(t4)
    ld a2, 0(t5)
    ld a3, 8(t5)
    sd a2, 0(t4)
    sd a3, 8(t4)
    sd t6, 0(t5)
    sd a1, 8(t5)
brskip:
    addi t0, t0, 1
    li t4, {N}
    blt t0, t4, bitrev

    la s1, twiddle
    li s2, 2
stage:
    li s3, {N}
    divu s4, s3, s2
    li s5, 0
group:
    li s6, 0
butterfly:
    mul t0, s6, s4
    slli t0, t0, 4
    add t0, t0, s1
    ld a1, 0(t0)
    ld a2, 8(t0)
    add t1, s5, s6
    slli t1, t1, 4
    add t1, t1, s0
    srli t2, s2, 1
    add t2, t2, s5
    add t2, t2, s6
    slli t2, t2, 4
    add t2, t2, s0
    ld a3, 0(t1)
    ld a4, 8(t1)
    ld a5, 0(t2)
    ld a6, 8(t2)
    mul t3, a1, a5
    mul t4, a2, a6
    sub t3, t3, t4
    srai t3, t3, 14
    mul t4, a1, a6
    mul t5, a2, a5
    add t4, t4, t5
    srai t4, t4, 14
    sub t5, a3, t3
    sub t6, a4, t4
    sd t5, 0(t2)
    sd t6, 8(t2)
    add t5, a3, t3
    add t6, a4, t4
    sd t5, 0(t1)
    sd t6, 8(t1)
    addi s6, s6, 1
    srli t0, s2, 1
    blt s6, t0, butterfly
    add s5, s5, s2
    li t0, {N}
    blt s5, t0, group
    slli s2, s2, 1
    li t0, {N}
    ble s2, t0, stage

    li t0, {N}
    mv t1, s0
ffold:
    ld t2, 0(t1)
    ld t3, 8(t1)
    add s7, s7, t2
    slli t4, s7, 1
    srli t5, s7, 63
    or s7, t4, t5
    xor s7, s7, t3
    addi t1, t1, 16
    addi t0, t0, -1
    bnez t0, ffold

    addi s8, s8, 1
    li t0, {RUNS}
    blt s8, t0, run_loop
    mv a0, s7
{EXIT}
    .data
    .align 6
cdata:
    .zero {CBYTES}
    .align 6
{TWIDDLE}
)";

uint64_t
fftReference(uint64_t seed)
{
    constexpr uint64_t n = fftSize;
    int64_t twr[n / 2], twi[n / 2];
    for (uint64_t j = 0; j < n / 2; ++j) {
        const double angle =
            -2.0 * 3.14159265358979323846 * double(j) / double(n);
        twr[j] = int64_t(16384.0 * __builtin_cos(angle));
        twi[j] = int64_t(16384.0 * __builtin_sin(angle));
    }

    uint64_t x = seed, sum = 0;
    for (uint64_t run = 0; run < fftRuns; ++run) {
        int64_t re[n], im[n];
        for (uint64_t i = 0; i < n; ++i) {
            lcgNext(x);
            re[i] = int64_t(x) >> 52;
            im[i] = (int64_t(x >> 20) << 52) >> 52;
        }
        for (uint64_t i = 0; i < n; ++i) {
            uint64_t j = 0;
            for (uint64_t b = 0; b < 8; ++b)
                j = (j << 1) | ((i >> b) & 1);
            if (int64_t(i) < int64_t(j)) {
                std::swap(re[i], re[j]);
                std::swap(im[i], im[j]);
            }
        }
        for (uint64_t len = 2; len <= n; len <<= 1) {
            const uint64_t step = n / len;
            for (uint64_t base = 0; base < n; base += len) {
                for (uint64_t j = 0; j < len / 2; ++j) {
                    const int64_t wr = twr[j * step];
                    const int64_t wi = twi[j * step];
                    const uint64_t a = base + j;
                    const uint64_t b = base + j + len / 2;
                    const int64_t tr = (wr * re[b] - wi * im[b]) >> 14;
                    const int64_t ti = (wr * im[b] + wi * re[b]) >> 14;
                    re[b] = re[a] - tr;
                    im[b] = im[a] - ti;
                    re[a] = re[a] + tr;
                    im[a] = im[a] + ti;
                }
            }
        }
        for (uint64_t i = 0; i < n; ++i) {
            sum += uint64_t(re[i]);
            sum = (sum << 1) | (sum >> 63);
            sum ^= uint64_t(im[i]);
        }
    }
    return sum;
}

Workload
makeFft()
{
    const uint64_t seed = 0xff7;
    std::string source = fftSource;
    source = substitute(source, "N", fftSize);
    source = substitute(source, "LOGN", 8);
    source = substitute(source, "RUNS", fftRuns);
    source = substitute(source, "CBYTES", fftSize * 16);
    source = withLcg(source, seed);
    const size_t pos = source.find("{TWIDDLE}");
    source.replace(pos, 9, fftTwiddles());
    return {"fft", Suite::MiBench,
            "fixed-point radix-2 FFT: interleaved re/im butterfly pairs",
            finish(source), [seed] { return fftReference(seed); }};
}

// ---------------------------------------------------------------------
// gsm toast / untoast: autocorrelation MACs and synthesis filtering.
// ---------------------------------------------------------------------

constexpr uint64_t gsmFrames = 40;
constexpr uint64_t gsmFrameLen = 160;
constexpr uint64_t gsmLags = 9;

const char *gsmToastSource = R"(
    la s0, samples
    li s9, {SEED}
    li s10, {LCGMUL}
    li s11, {LCGADD}
    li t0, {TOTAL}
    mv t1, s0
sgen:
    mul s9, s9, s10
    add s9, s9, s11
    srli t2, s9, 49
    slli t2, t2, 49
    srai t2, t2, 49
    sh t2, 0(t1)
    addi t1, t1, 2
    addi t0, t0, -1
    bnez t0, sgen

    li s4, 0
    li s5, 0
frame:
    li t0, {FRAMELEN}
    mul t0, t0, s5
    slli t0, t0, 1
    add s6, s0, t0
    li s7, 0
lag:
    li t0, 0
    li t1, 0
    li t2, {FRAMELEN}
    sub t2, t2, s7
mac:
    slli t3, t0, 1
    add t3, t3, s6
    lh t4, 0(t3)
    add t5, t0, s7
    slli t5, t5, 1
    add t5, t5, s6
    lh t6, 0(t5)
    mul t4, t4, t6
    add t1, t1, t4
    addi t0, t0, 1
    blt t0, t2, mac
    srai t1, t1, 10
    add s4, s4, t1
    slli t3, s4, 3
    srli t4, s4, 61
    or t3, t3, t4
    xor s4, t3, t1
    addi s7, s7, 1
    li t0, {LAGS}
    blt s7, t0, lag
    addi s5, s5, 1
    li t0, {FRAMES}
    blt s5, t0, frame
    mv a0, s4
{EXIT}
    .data
    .align 6
samples:
    .zero {SBYTES}
)";

uint64_t
gsmToastReference(uint64_t seed)
{
    constexpr uint64_t total = gsmFrames * gsmFrameLen;
    vector<int16_t> samples(total);
    uint64_t x = seed;
    for (auto &sample : samples) {
        lcgNext(x);
        sample = int16_t((int64_t(x >> 49) << 49) >> 49);
    }
    uint64_t sum = 0;
    for (uint64_t f = 0; f < gsmFrames; ++f) {
        const int16_t *frame = &samples[f * gsmFrameLen];
        for (uint64_t lag = 0; lag < gsmLags; ++lag) {
            int64_t acc = 0;
            for (uint64_t i = 0; i + lag < gsmFrameLen; ++i)
                acc += int64_t(frame[i]) * frame[i + lag];
            acc >>= 10;
            sum += uint64_t(acc);
            sum = (((sum << 3) | (sum >> 61))) ^ uint64_t(acc);
        }
    }
    return sum;
}

const char *gsmUntoastSource = R"(
    la s0, input
    la s1, output
    li s9, {SEED}
    li s10, {LCGMUL}
    li s11, {LCGADD}
    li t0, {TOTAL}
    mv t1, s0
sgen:
    mul s9, s9, s10
    add s9, s9, s11
    srli t2, s9, 51
    slli t2, t2, 51
    srai t2, t2, 51
    sh t2, 0(t1)
    addi t1, t1, 2
    addi t0, t0, -1
    bnez t0, sgen

    li s2, 0
    li s3, 0
    li s4, 0
    li t0, 0
    li s5, {TOTAL}
    li s6, 1638
    li s7, -819
filter:
    slli t1, t0, 1
    add t1, t1, s0
    lh t2, 0(t1)
    mul t3, s2, s6
    mul t4, s3, s7
    add t3, t3, t4
    srai t3, t3, 11
    add t2, t2, t3
    li t4, 32767
    ble t2, t4, fc1
    mv t2, t4
fc1:
    li t4, -32768
    bge t2, t4, fc2
    mv t2, t4
fc2:
    mv s3, s2
    mv s2, t2
    slli t1, t0, 1
    add t1, t1, s1
    sh t2, 0(t1)
    add s4, s4, t2
    slli t5, s4, 5
    srli t6, s4, 59
    or s4, t5, t6
    addi t0, t0, 1
    blt t0, s5, filter

    mv a0, s4
{EXIT}
    .data
    .align 6
input:
    .zero {SBYTES}
    .align 6
output:
    .zero {SBYTES}
)";

uint64_t
gsmUntoastReference(uint64_t seed)
{
    constexpr uint64_t total = gsmFrames * gsmFrameLen;
    vector<int16_t> input(total);
    uint64_t x = seed;
    for (auto &sample : input) {
        lcgNext(x);
        sample = int16_t((int64_t(x >> 51) << 51) >> 51);
    }
    int64_t y1 = 0, y2 = 0;
    uint64_t sum = 0;
    for (uint64_t i = 0; i < total; ++i) {
        int64_t y = input[i] + ((y1 * 1638 + y2 * -819) >> 11);
        if (y > 32767)
            y = 32767;
        if (y < -32768)
            y = -32768;
        y2 = y1;
        y1 = y;
        sum += uint64_t(y);
        sum = (sum << 5) | (sum >> 59);
    }
    return sum;
}

Workload
makeGsm(bool toast)
{
    const uint64_t seed = toast ? 0x95b1 : 0x95b2;
    std::string source = toast ? gsmToastSource : gsmUntoastSource;
    source = substitute(source, "TOTAL", gsmFrames * gsmFrameLen);
    source = substitute(source, "FRAMES", gsmFrames);
    source = substitute(source, "FRAMELEN", gsmFrameLen);
    source = substitute(source, "LAGS", gsmLags);
    source = substitute(source, "SBYTES", gsmFrames * gsmFrameLen * 2);
    source = withLcg(source, seed);
    return {toast ? "gsm_toast" : "gsm_untoast", Suite::MiBench,
            toast ? "LPC autocorrelation MACs over 16-bit frames"
                  : "fixed-point IIR synthesis filter with clamping",
            finish(source), [seed, toast] {
                return toast ? gsmToastReference(seed)
                             : gsmUntoastReference(seed);
            }};
}

} // namespace

std::vector<Workload>
mibenchWorkloads()
{
    std::vector<Workload> workloads;
    workloads.push_back(makeAdpcm());
    workloads.push_back(makeBasicmath());
    workloads.push_back(makeBitcount());
    workloads.push_back(makeBlowfish());
    workloads.push_back(makeCrc32());
    workloads.push_back(makeDijkstra());
    workloads.push_back(makeFft());
    workloads.push_back(makeGsm(true));
    workloads.push_back(makeGsm(false));
    return workloads;
}

} // namespace workload_detail
} // namespace helios
