/**
 * @file
 * The workload suite.
 *
 * The paper evaluates SPEC CPU 2017 and MiBench binaries; this repo
 * substitutes self-checking RISC-V assembly kernels, one per paper
 * application, that reproduce each application's dominant instruction-
 * level patterns (see DESIGN.md §1). Every kernel ends with
 * `li a7, 93; ecall` returning a checksum in a0, and carries a C++
 * reference implementation of the same algorithm so the test suite can
 * verify that the assembler + functional simulator compute the right
 * architectural result.
 */

#ifndef WORKLOADS_WORKLOADS_HH
#define WORKLOADS_WORKLOADS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "asm/program.hh"

namespace helios
{

/** Benchmark suite a workload belongs to (matches the paper's split). */
enum class Suite
{
    Spec,
    MiBench,
};

/** One benchmark kernel. */
struct Workload
{
    std::string name;         ///< paper application name, e.g. "605.mcf_s"
    Suite suite;
    std::string description;  ///< which pattern of the original it mimics
    std::string source;       ///< RISC-V assembly text

    /** C++ reference computing the expected exit checksum. */
    std::function<uint64_t()> reference;

    /**
     * Alternative program factory: when set, program() calls this
     * instead of assembling `source`. ELF-loaded workloads
     * (harness/elf_image.hh: makeElfWorkload) use it to ride every
     * harness — runOne, runMatrix, the differential sweeps — without
     * the harness knowing where the program came from. Last member so
     * the suite's positional aggregate initializers stay valid.
     */
    std::function<Program()> makeProgram;

    /** Assemble the kernel (or run makeProgram when set). */
    Program program() const;
};

/** The full suite, in the paper's listing order. */
const std::vector<Workload> &allWorkloads();

/** Look up one workload by name; fatal() if unknown. */
const Workload &findWorkload(const std::string &name);

/** Names of all workloads (for harness/bench iteration). */
std::vector<std::string> workloadNames();

namespace workload_detail
{

/** The LCG all kernels use for deterministic data generation. */
constexpr uint64_t lcgMul = 6364136223846793005ULL;
constexpr uint64_t lcgAdd = 1442695040888963407ULL;

inline uint64_t
lcgNext(uint64_t &state)
{
    state = state * lcgMul + lcgAdd;
    return state;
}

/** Replace every occurrence of `{KEY}` in @a text. */
std::string substitute(std::string text, const std::string &key,
                       uint64_t value);

/** Registered by each workloads_*.cc translation unit. */
std::vector<Workload> specWorkloads();
std::vector<Workload> mibenchWorkloads();
std::vector<Workload> mibenchWorkloads2();

} // namespace workload_detail

} // namespace helios

#endif // WORKLOADS_WORKLOADS_HH
