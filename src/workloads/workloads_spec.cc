/**
 * @file
 * SPEC CPU 2017-like kernels (see DESIGN.md §1 for the substitution
 * rationale). Each kernel mimics the dominant instruction-level
 * behaviour of the paper's application and self-checks via a checksum.
 */

#include "workloads/workloads.hh"

#include <vector>

namespace helios
{
namespace workload_detail
{

namespace
{

using std::vector;

const std::string exitStub = R"(
    li a7, 93
    ecall
)";

// ---------------------------------------------------------------------
// 600.perlbench_s: string tokenization and hashing over generated text.
// ---------------------------------------------------------------------

constexpr uint64_t perlLen = 12000;
constexpr uint64_t perlBuckets = 256;

const char *perlSource = R"(
    la s0, text
    li s1, {LEN}
    li s10, {LCGMUL}
    li s11, {LCGADD}
    li s9, {SEED}
    li t0, 0
    li s5, 26
gen:
    mul s9, s9, s10
    add s9, s9, s11
    srli t1, s9, 33
    andi t1, t1, 63
    remu t2, t1, s5
    addi t2, t2, 97
    sltiu t3, t1, 8
    addi t4, t3, -1
    and t2, t2, t4
    li t5, 32
    sub t6, zero, t3
    and t5, t5, t6
    or t2, t2, t5
    add t6, s0, t0
    sb t2, 0(t6)
    addi t0, t0, 1
    blt t0, s1, gen

    li t0, 0
    li t3, 0
    la s2, buckets
    la s6, toklog
    li s3, {NB}
    li s4, 31
tok:
    add t2, s0, t0
    lbu t1, 0(t2)
    li t4, 32
    beq t1, t4, tok_sep
    mul t3, t3, s4
    add t3, t3, t1
    j tok_next
tok_sep:
    beqz t3, tok_next
    remu t5, t3, s3
    slli t5, t5, 3
    add t5, t5, s2
    ld t6, 0(t5)
    add t6, t6, t3
    sd t6, 0(t5)
    sd t3, 0(s6)
    sd t0, 8(s6)
    addi s6, s6, 16
    li t3, 0
tok_next:
    addi t0, t0, 1
    blt t0, s1, tok

    li a0, 0
    li t0, 0
fold:
    slli t1, t0, 3
    add t1, t1, s2
    ld t2, 0(t1)
    slli t4, a0, 7
    srli t5, a0, 57
    or a0, t4, t5
    xor a0, a0, t2
    addi t0, t0, 1
    blt t0, s3, fold
    la t0, toklog
    sub t1, s6, t0
    add a0, a0, t1
lfold:
    bgeu t0, s6, lfold_done
    ld t2, 0(t0)
    ld t3, 8(t0)
    add a0, a0, t2
    xor a0, a0, t3
    addi t0, t0, 16
    j lfold
lfold_done:
{EXIT}
    .data
    .align 6
text:
    .zero {LEN}
    .align 6
buckets:
    .zero {NBBYTES}
    .align 6
toklog:
    .zero {LOGBYTES}
)";

uint64_t
perlReference(uint64_t seed)
{
    vector<uint8_t> text(perlLen);
    uint64_t x = seed;
    for (uint64_t i = 0; i < perlLen; ++i) {
        lcgNext(x);
        const uint64_t v = (x >> 33) & 63;
        text[i] = v < 8 ? 32 : uint8_t(97 + v % 26);
    }
    vector<uint64_t> buckets(perlBuckets, 0);
    vector<std::pair<uint64_t, uint64_t>> toklog;
    uint64_t hash = 0;
    for (uint64_t i = 0; i < perlLen; ++i) {
        if (text[i] == 32) {
            if (hash != 0) {
                buckets[hash % perlBuckets] += hash;
                toklog.emplace_back(hash, i);
                hash = 0;
            }
        } else {
            hash = hash * 31 + text[i];
        }
    }
    uint64_t sum = 0;
    for (uint64_t i = 0; i < perlBuckets; ++i)
        sum = ((sum << 7) | (sum >> 57)) ^ buckets[i];
    sum += toklog.size() * 16;
    for (const auto &[h, pos] : toklog) {
        sum += h;
        sum ^= pos;
    }
    return sum;
}

Workload
makePerlbench(int variant, uint64_t seed)
{
    std::string source = perlSource;
    source = substitute(source, "LEN", perlLen);
    source = substitute(source, "NB", perlBuckets);
    source = substitute(source, "NBBYTES", perlBuckets * 8);
    source = substitute(source, "LOGBYTES", perlLen * 4);
    source = substitute(source, "SEED", seed);
    source = substitute(source, "LCGMUL", lcgMul);
    source = substitute(source, "LCGADD", lcgAdd);
    size_t pos = source.find("{EXIT}");
    source.replace(pos, 6, exitStub);
    return {"600.perlbench_s_" + std::to_string(variant), Suite::Spec,
            "token scanning and hash-bucket updates over text",
            source, [seed] { return perlReference(seed); }};
}

// ---------------------------------------------------------------------
// 602.gcc_s: bitset dataflow iteration over basic-block sets.
// ---------------------------------------------------------------------

constexpr uint64_t gccBlocks = 64;
constexpr uint64_t gccWordsPerBlock = 16;
constexpr uint64_t gccWords = gccBlocks * gccWordsPerBlock;
constexpr uint64_t gccPasses = 15;

const char *gccSource = R"(
    la s0, arena
    li t0, {INITWORDS}
    li s10, {LCGMUL}
    li s11, {LCGADD}
    li s9, {SEED}
    mv t1, s0
igen:
    mul s9, s9, s10
    add s9, s9, s11
    sd s9, 0(t1)
    addi t1, t1, 8
    addi t0, t0, -1
    bnez t0, igen

    la s1, arena
    li t0, {ARRBYTES}
    add s2, s1, t0
    add s3, s2, t0
    add s4, s3, t0
    add s8, s4, t0
    li s5, {PASSES}
pass:
    mv t2, s1
    mv t3, s2
    mv t4, s3
    mv t5, s4
    li s6, {HALFWORDS}
inner:
    ld a1, 0(t2)
    ld a2, 8(t2)
    ld a3, 0(t3)
    ld a4, 8(t3)
    ld a5, 0(t4)
    ld a6, 8(t4)
    not a3, a3
    not a4, a4
    and a5, a5, a3
    and a6, a6, a4
    or a5, a5, a1
    or a6, a6, a2
    sd a5, 0(t5)
    sd a6, 8(t5)
    addi t2, t2, 16
    addi t3, t3, 16
    addi t4, t4, 16
    addi t5, t5, 16
    addi s6, s6, -1
    bnez s6, inner

    li t0, 0
    li s7, {NWBYTES}
    li t6, {ARRBYTES}
prop:
    add t1, t0, s7
    bltu t1, t6, nowrap
    sub t1, t1, t6
nowrap:
    add t2, s4, t1
    ld t3, 0(t2)
    add t4, s3, t0
    ld t5, 0(t4)
    xor t3, t3, t5
    add t4, s8, t0
    sd t3, 0(t4)
    addi t0, t0, 8
    bltu t0, t6, prop
    mv t0, s3
    mv s3, s8
    mv s8, t0
    addi s5, s5, -1
    bnez s5, pass

    li a0, 0
    mv t0, s3
    li t1, {NWORDS}
fold:
    ld t2, 0(t0)
    add a0, a0, t2
    slli t3, a0, 1
    srli t4, a0, 63
    or a0, t3, t4
    addi t0, t0, 8
    addi t1, t1, -1
    bnez t1, fold
{EXIT}
    .data
    .align 6
arena:
    .zero {TOTALBYTES}
)";

uint64_t
gccReference(uint64_t seed)
{
    vector<uint64_t> gen(gccWords), kill(gccWords);
    vector<uint64_t> in(gccWords, 0), out(gccWords, 0);
    uint64_t x = seed;
    for (uint64_t i = 0; i < gccWords; ++i)
        gen[i] = lcgNext(x);
    for (uint64_t i = 0; i < gccWords; ++i)
        kill[i] = lcgNext(x);
    vector<uint64_t> scratch(gccWords, 0);
    for (uint64_t pass = 0; pass < gccPasses; ++pass) {
        for (uint64_t i = 0; i < gccWords; ++i)
            out[i] = gen[i] | (in[i] & ~kill[i]);
        for (uint64_t i = 0; i < gccWords; ++i)
            scratch[i] = out[(i + gccWordsPerBlock) % gccWords] ^ in[i];
        std::swap(in, scratch);
    }
    uint64_t sum = 0;
    for (uint64_t i = 0; i < gccWords; ++i) {
        sum += in[i];
        sum = (sum << 1) | (sum >> 63);
    }
    return sum;
}

Workload
makeGcc(int variant, uint64_t seed)
{
    std::string source = gccSource;
    source = substitute(source, "INITWORDS", gccWords * 2);
    source = substitute(source, "ARRBYTES", gccWords * 8);
    source = substitute(source, "HALFWORDS", gccWords / 2);
    source = substitute(source, "NWBYTES", gccWordsPerBlock * 8);
    source = substitute(source, "NWORDS", gccWords);
    source = substitute(source, "PASSES", gccPasses);
    source = substitute(source, "TOTALBYTES", gccWords * 8 * 5);
    source = substitute(source, "SEED", seed);
    source = substitute(source, "LCGMUL", lcgMul);
    source = substitute(source, "LCGADD", lcgAdd);
    size_t pos = source.find("{EXIT}");
    source.replace(pos, 6, exitStub);
    return {"602.gcc_s_" + std::to_string(variant), Suite::Spec,
            "bitset dataflow over basic-block gen/kill/in/out sets",
            source, [seed] { return gccReference(seed); }};
}

// ---------------------------------------------------------------------
// 605.mcf_s: pointer chasing over a scattered linked list.
// ---------------------------------------------------------------------

constexpr uint64_t mcfNodes = 4096;
constexpr uint64_t mcfSteps = 60000;

const char *mcfSource = R"(
    la s0, heap
    li s1, {N}
    li t0, 0
build:
    slli t1, t0, 5
    add t1, t1, s0
    li t2, 17
    mul t2, t0, t2
    addi t2, t2, 1
    remu t2, t2, s1
    slli t2, t2, 5
    add t2, t2, s0
    sd t2, 0(t1)
    li t3, 2654435761
    mul t3, t0, t3
    li t4, 0xffff
    and t3, t3, t4
    sd t3, 8(t1)
    xori t5, t3, 0x55
    sd t5, 16(t1)
    addi t0, t0, 1
    blt t0, s1, build

    li s2, 0
    mv t0, s0
    li s3, {STEPS}
traverse:
    ld t1, 8(t0)
    ld t2, 16(t0)
    add s2, s2, t1
    xor s2, s2, t2
    ld t0, 0(t0)
    addi s3, s3, -1
    bnez s3, traverse
    mv a0, s2
{EXIT}
    .data
    .align 6
heap:
    .zero {HEAPBYTES}
)";

uint64_t
mcfReference()
{
    vector<uint64_t> next(mcfNodes), val(mcfNodes), weight(mcfNodes);
    for (uint64_t i = 0; i < mcfNodes; ++i) {
        next[i] = (i * 17 + 1) % mcfNodes;
        val[i] = (i * 2654435761ULL) & 0xffff;
        weight[i] = val[i] ^ 0x55;
    }
    uint64_t sum = 0, cur = 0;
    for (uint64_t s = 0; s < mcfSteps; ++s) {
        sum += val[cur];
        sum ^= weight[cur];
        cur = next[cur];
    }
    return sum;
}

Workload
makeMcf()
{
    std::string source = mcfSource;
    source = substitute(source, "N", mcfNodes);
    source = substitute(source, "STEPS", mcfSteps);
    source = substitute(source, "HEAPBYTES", mcfNodes * 32);
    size_t pos = source.find("{EXIT}");
    source.replace(pos, 6, exitStub);
    return {"605.mcf_s", Suite::Spec,
            "pointer chasing over 32-byte list nodes with field pairs",
            source, [] { return mcfReference(); }};
}

// ---------------------------------------------------------------------
// 620.omnetpp_s: binary-heap event queue churn.
// ---------------------------------------------------------------------

constexpr uint64_t omnetFill = 256;
constexpr uint64_t omnetOps = 3000;

const char *omnetSource = R"(
    la s0, heap
    li s1, 0
    li s10, {LCGMUL}
    li s11, {LCGADD}
    li s9, {SEED}
    li s2, {FILL}
fill:
    mul s9, s9, s10
    add s9, s9, s11
    srli t0, s9, 16
    call push
    addi s2, s2, -1
    bnez s2, fill

    li s3, {OPS}
    li s4, 0
ops:
    call pop
    add s4, s4, t0
    slli t1, t0, 13
    xor t0, t0, t1
    srli t1, t0, 7
    xor t0, t0, t1
    slli t1, t0, 17
    xor t0, t0, t1
    srli t0, t0, 8
    call push
    addi s3, s3, -1
    bnez s3, ops
    mv a0, s4
{EXIT}

push:
    addi s1, s1, 1
    mv t1, s1
    slli t2, t1, 3
    add t2, t2, s0
    sd t0, 0(t2)
push_loop:
    li t3, 1
    bleu t1, t3, push_done
    srli t4, t1, 1
    slli t5, t4, 3
    add t5, t5, s0
    ld t6, 0(t5)
    slli t2, t1, 3
    add t2, t2, s0
    ld t3, 0(t2)
    bgeu t3, t6, push_done
    sd t6, 0(t2)
    sd t3, 0(t5)
    mv t1, t4
    j push_loop
push_done:
    ret

pop:
    ld t0, 8(s0)
    slli t1, s1, 3
    add t1, t1, s0
    ld t2, 0(t1)
    sd t2, 8(s0)
    addi s1, s1, -1
    li t1, 1
pop_loop:
    slli t2, t1, 1
    bgtu t2, s1, pop_done
    slli t3, t2, 3
    add t3, t3, s0
    ld t4, 0(t3)
    addi t5, t2, 1
    bgtu t5, s1, no_right
    ld t6, 8(t3)
    bgeu t6, t4, no_right
    mv t4, t6
    mv t2, t5
no_right:
    slli t5, t1, 3
    add t5, t5, s0
    ld t6, 0(t5)
    bleu t6, t4, pop_done
    slli t3, t2, 3
    add t3, t3, s0
    sd t6, 0(t3)
    sd t4, 0(t5)
    mv t1, t2
    j pop_loop
pop_done:
    ret
    .data
    .align 6
heap:
    .zero {HEAPBYTES}
)";

uint64_t
omnetReference(uint64_t seed)
{
    vector<uint64_t> heap(omnetFill + omnetOps + 2, 0);
    uint64_t size = 0;
    auto push = [&](uint64_t key) {
        heap[++size] = key;
        uint64_t i = size;
        while (i > 1) {
            const uint64_t p = i / 2;
            if (heap[i] >= heap[p])
                break;
            std::swap(heap[i], heap[p]);
            i = p;
        }
    };
    auto pop = [&] {
        const uint64_t top = heap[1];
        heap[1] = heap[size--];
        uint64_t i = 1;
        while (true) {
            uint64_t c = 2 * i;
            if (c > size)
                break;
            uint64_t child_val = heap[c];
            if (c + 1 <= size && heap[c + 1] < child_val) {
                child_val = heap[c + 1];
                c = c + 1;
            }
            if (heap[i] <= child_val)
                break;
            std::swap(heap[i], heap[c]);
            i = c;
        }
        return top;
    };

    uint64_t x = seed;
    for (uint64_t i = 0; i < omnetFill; ++i) {
        lcgNext(x);
        push(x >> 16);
    }
    uint64_t sum = 0;
    for (uint64_t i = 0; i < omnetOps; ++i) {
        uint64_t key = pop();
        sum += key;
        key ^= key << 13;
        key ^= key >> 7;
        key ^= key << 17;
        push(key >> 8);
    }
    return sum;
}

Workload
makeOmnetpp()
{
    const uint64_t seed = 777;
    std::string source = omnetSource;
    source = substitute(source, "FILL", omnetFill);
    source = substitute(source, "OPS", omnetOps);
    source = substitute(source, "HEAPBYTES",
                        (omnetFill + omnetOps + 2) * 8);
    source = substitute(source, "SEED", seed);
    source = substitute(source, "LCGMUL", lcgMul);
    source = substitute(source, "LCGADD", lcgAdd);
    size_t pos = source.find("{EXIT}");
    source.replace(pos, 6, exitStub);
    return {"620.omnetpp_s", Suite::Spec,
            "binary-heap event queue with sift swaps (ld/sd pairs)",
            source, [seed] { return omnetReference(seed); }};
}

// ---------------------------------------------------------------------
// 623.xalancbmk_s: binary search tree build and probe.
// ---------------------------------------------------------------------

constexpr uint64_t xalanInserts = 2000;
constexpr uint64_t xalanLookups = 2000;

const char *xalanSource = R"(
    la s0, arena
    li s10, {LCGMUL}
    li s11, {LCGADD}
    li s9, {SEED}
    mul s9, s9, s10
    add s9, s9, s11
    srli t0, s9, 40
    sd zero, 0(s0)
    sd zero, 8(s0)
    sd t0, 16(s0)
    li s1, 1
    li s2, {N}
ins:
    mul s9, s9, s10
    add s9, s9, s11
    srli t0, s9, 40
    mv t1, s0
ins_walk:
    ld t2, 16(t1)
    bltu t0, t2, go_left
    ld t3, 8(t1)
    beqz t3, attach_right
    mv t1, t3
    j ins_walk
go_left:
    ld t3, 0(t1)
    beqz t3, attach_left
    mv t1, t3
    j ins_walk
attach_right:
    li t4, 24
    mul t4, s1, t4
    add t4, t4, s0
    sd zero, 0(t4)
    sd zero, 8(t4)
    sd t0, 16(t4)
    sd t4, 8(t1)
    addi s1, s1, 1
    j ins_next
attach_left:
    li t4, 24
    mul t4, s1, t4
    add t4, t4, s0
    sd zero, 0(t4)
    sd zero, 8(t4)
    sd t0, 16(t4)
    sd t4, 0(t1)
    addi s1, s1, 1
ins_next:
    addi s2, s2, -1
    bnez s2, ins

    li s3, {M}
    li s4, 0
look:
    mul s9, s9, s10
    add s9, s9, s11
    srli t0, s9, 40
    mv t1, s0
    li t5, 0
look_walk:
    beqz t1, look_miss
    ld t2, 16(t1)
    beq t2, t0, look_hit
    bltu t0, t2, look_left
    ld t1, 8(t1)
    addi t5, t5, 1
    j look_walk
look_left:
    ld t1, 0(t1)
    addi t5, t5, 1
    j look_walk
look_hit:
    add s4, s4, t2
look_miss:
    add s4, s4, t5
    addi s3, s3, -1
    bnez s3, look
    mv a0, s4
{EXIT}
    .data
    .align 6
arena:
    .zero {ARENABYTES}
)";

uint64_t
xalanReference(uint64_t seed)
{
    struct Node
    {
        uint64_t left = 0, right = 0, key = 0;
    };
    vector<Node> nodes;
    nodes.reserve(xalanInserts + 1);
    uint64_t x = seed;
    lcgNext(x);
    nodes.push_back({0, 0, x >> 40});

    for (uint64_t i = 0; i < xalanInserts; ++i) {
        lcgNext(x);
        const uint64_t key = x >> 40;
        uint64_t cur = 0;
        while (true) {
            if (key < nodes[cur].key) {
                if (nodes[cur].left == 0) {
                    nodes.push_back({0, 0, key});
                    nodes[cur].left = nodes.size() - 1;
                    break;
                }
                cur = nodes[cur].left;
            } else {
                if (nodes[cur].right == 0) {
                    nodes.push_back({0, 0, key});
                    nodes[cur].right = nodes.size() - 1;
                    break;
                }
                cur = nodes[cur].right;
            }
        }
    }

    uint64_t sum = 0;
    for (uint64_t i = 0; i < xalanLookups; ++i) {
        lcgNext(x);
        const uint64_t key = x >> 40;
        uint64_t cur = 0;
        uint64_t depth = 0;
        bool present = true;
        while (nodes[cur].key != key) {
            const uint64_t next_index = key < nodes[cur].key
                                            ? nodes[cur].left
                                            : nodes[cur].right;
            ++depth;
            if (next_index == 0) {
                present = false;
                break;
            }
            cur = next_index;
        }
        if (present)
            sum += nodes[cur].key;
        sum += depth;
    }
    return sum;
}

Workload
makeXalancbmk()
{
    const uint64_t seed = 4242;
    std::string source = xalanSource;
    source = substitute(source, "N", xalanInserts);
    source = substitute(source, "M", xalanLookups);
    source = substitute(source, "ARENABYTES", (xalanInserts + 2) * 24);
    source = substitute(source, "SEED", seed);
    source = substitute(source, "LCGMUL", lcgMul);
    source = substitute(source, "LCGADD", lcgAdd);
    size_t pos = source.find("{EXIT}");
    source.replace(pos, 6, exitStub);
    return {"623.xalancbmk_s", Suite::Spec,
            "binary search tree walks over 24-byte nodes",
            source, [seed] { return xalanReference(seed); }};
}

// ---------------------------------------------------------------------
// 631.deepsjeng_s: popcount tables + transposition-table probes.
// ---------------------------------------------------------------------

constexpr uint64_t sjengIters = 6000;
constexpr uint64_t sjengTtEntries = 1024;

const char *sjengSource = R"(
    la s0, table256
    li t0, 0
bt:
    mv t1, t0
    li t2, 0
bt_in:
    andi t3, t1, 1
    add t2, t2, t3
    srli t1, t1, 1
    bnez t1, bt_in
    add t4, s0, t0
    sb t2, 0(t4)
    addi t0, t0, 1
    li t5, 256
    blt t0, t5, bt

    la s1, ttable
    li s2, {ITERS}
    li s4, 0
    li s9, {SEED}
loop:
    slli t0, s9, 13
    xor s9, s9, t0
    srli t0, s9, 7
    xor s9, s9, t0
    slli t0, s9, 17
    xor s9, s9, t0

    mv t1, s9
    li t2, 0
    li t3, 8
pc:
    andi t4, t1, 0xff
    add t4, t4, s0
    lbu t5, 0(t4)
    add t2, t2, t5
    srli t1, t1, 8
    addi t3, t3, -1
    bnez t3, pc

    srli a1, s9, 20
    li a2, 0xffff
    and a1, a1, a2
    andi a3, a1, {TMASK}
    slli a3, a3, 4
    add a3, a3, s1
    ld t4, 0(a3)
    ld t5, 8(a3)
    beq t4, a1, hit
    sd a1, 0(a3)
    sd t2, 8(a3)
    add s4, s4, t2
    j next
hit:
    add s4, s4, t5
next:
    addi s2, s2, -1
    bnez s2, loop
    mv a0, s4
{EXIT}
    .data
    .align 6
table256:
    .zero 256
    .align 6
ttable:
    .zero {TTBYTES}
)";

uint64_t
sjengReference(uint64_t seed)
{
    uint8_t table[256];
    for (unsigned i = 0; i < 256; ++i) {
        unsigned v = i, c = 0;
        do {
            c += v & 1;
            v >>= 1;
        } while (v);
        table[i] = uint8_t(c);
    }
    vector<uint64_t> tt(sjengTtEntries * 2, 0);
    uint64_t x = seed, sum = 0;
    for (uint64_t it = 0; it < sjengIters; ++it) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        uint64_t v = x, count = 0;
        for (int i = 0; i < 8; ++i) {
            count += table[v & 0xff];
            v >>= 8;
        }
        const uint64_t pos = (x >> 20) & 0xffff;
        const uint64_t index = pos & (sjengTtEntries - 1);
        if (tt[index * 2] == pos) {
            sum += tt[index * 2 + 1];
        } else {
            tt[index * 2] = pos;
            tt[index * 2 + 1] = count;
            sum += count;
        }
    }
    return sum;
}

Workload
makeDeepsjeng()
{
    const uint64_t seed = 0x123456789abcdefULL;
    std::string source = sjengSource;
    source = substitute(source, "ITERS", sjengIters);
    source = substitute(source, "TMASK", sjengTtEntries - 1);
    source = substitute(source, "TTBYTES", sjengTtEntries * 16);
    source = substitute(source, "SEED", seed);
    size_t pos = source.find("{EXIT}");
    source.replace(pos, 6, exitStub);
    return {"631.deepsjeng_s", Suite::Spec,
            "byte-table popcounts and 16-byte transposition entries",
            source, [seed] { return sjengReference(seed); }};
}

// ---------------------------------------------------------------------
// 641.leela_s: board-array playouts with neighbor inspection.
// ---------------------------------------------------------------------

constexpr uint64_t leelaIters = 12000;

const char *leelaSource = R"(
    la s0, board
    li s9, {SEED}
    li s2, {ITERS}
    li s4, 0
    li s5, 21
    li s6, 19
loop:
    slli t0, s9, 13
    xor s9, s9, t0
    srli t0, s9, 7
    xor s9, s9, t0
    slli t0, s9, 17
    xor s9, s9, t0

    srli t0, s9, 10
    remu t0, t0, s6
    addi t0, t0, 1
    srli t1, s9, 30
    remu t1, t1, s6
    addi t1, t1, 1
    mul t2, t0, s5
    add t2, t2, t1
    add t3, s0, t2
    lbu t4, -1(t3)
    lbu t5, 1(t3)
    add t4, t4, t5
    lbu t5, -21(t3)
    add t4, t4, t5
    lbu t5, 21(t3)
    add t4, t4, t5
    lbu t6, 0(t3)
    bnez t6, occupied
    li t5, 3
    bge t4, t5, crowd
    andi t6, s9, 1
    addi t6, t6, 1
    sb t6, 0(t3)
    add s4, s4, t6
    j next
occupied:
    li t5, 6
    blt t4, t5, crowd
    sb zero, 0(t3)
    addi s4, s4, 1
    j next
crowd:
    add s4, s4, t4
next:
    addi s2, s2, -1
    bnez s2, loop

    li t0, 0
    li t1, 441
    mv t2, s0
fsum:
    lbu t3, 0(t2)
    add t0, t0, t3
    addi t2, t2, 1
    addi t1, t1, -1
    bnez t1, fsum
    slli t0, t0, 16
    add a0, s4, t0
{EXIT}
    .data
    .align 6
board:
    .zero 448
)";

uint64_t
leelaReference(uint64_t seed)
{
    uint8_t board[448] = {};
    uint64_t x = seed, sum = 0;
    for (uint64_t it = 0; it < leelaIters; ++it) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const uint64_t row = (x >> 10) % 19 + 1;
        const uint64_t col = (x >> 30) % 19 + 1;
        const uint64_t index = row * 21 + col;
        const uint64_t neighbors = board[index - 1] + board[index + 1] +
                                   board[index - 21] + board[index + 21];
        if (board[index] == 0) {
            if (int64_t(neighbors) >= 3) {
                sum += neighbors;
            } else {
                const uint8_t stone = uint8_t((x & 1) + 1);
                board[index] = stone;
                sum += stone;
            }
        } else if (int64_t(neighbors) >= 6) {
            board[index] = 0;
            sum += 1;
        } else {
            sum += neighbors;
        }
    }
    uint64_t total = 0;
    for (unsigned i = 0; i < 441; ++i)
        total += board[i];
    return sum + (total << 16);
}

Workload
makeLeela()
{
    const uint64_t seed = 0xfeedface12345ULL;
    std::string source = leelaSource;
    source = substitute(source, "ITERS", leelaIters);
    source = substitute(source, "SEED", seed);
    size_t pos = source.find("{EXIT}");
    source.replace(pos, 6, exitStub);
    return {"641.leela_s", Suite::Spec,
            "board playouts with 4-neighbor byte loads per move",
            source, [seed] { return leelaReference(seed); }};
}

// ---------------------------------------------------------------------
// 648.exchange2_s: recursive permutation generation (Heap's algorithm).
// ---------------------------------------------------------------------

constexpr uint64_t exchElems = 7;

const char *exchSource = R"(
    la s0, arr
    li t0, 0
init:
    slli t1, t0, 3
    add t1, t1, s0
    addi t2, t0, 1
    sd t2, 0(t1)
    addi t0, t0, 1
    li t3, {K}
    blt t0, t3, init
    li s4, 0
    li a0, {K}
    call permute
    mv a0, s4
{EXIT}

permute:
    addi sp, sp, -32
    sd ra, 24(sp)
    sd s1, 16(sp)
    sd s2, 8(sp)
    li t0, 1
    bne a0, t0, recurse
    li t1, 0
    li t2, 0
base:
    slli t3, t1, 3
    add t3, t3, s0
    ld t4, 0(t3)
    addi t5, t1, 1
    mul t4, t4, t5
    add t2, t2, t4
    addi t1, t1, 1
    li t6, {K}
    blt t1, t6, base
    xor s4, s4, t2
    slli t2, t2, 1
    add s4, s4, t2
    j pdone
recurse:
    mv s1, a0
    li s2, 0
ploop:
    addi a0, s1, -1
    call permute
    andi t0, s1, 1
    beqz t0, even
    li t1, 0
    j doswap
even:
    mv t1, s2
doswap:
    slli t1, t1, 3
    add t1, t1, s0
    addi t2, s1, -1
    slli t2, t2, 3
    add t2, t2, s0
    ld t3, 0(t1)
    ld t4, 0(t2)
    sd t4, 0(t1)
    sd t3, 0(t2)
    addi s2, s2, 1
    addi t5, s1, -1
    blt s2, t5, ploop
    addi a0, s1, -1
    call permute
pdone:
    ld ra, 24(sp)
    ld s1, 16(sp)
    ld s2, 8(sp)
    addi sp, sp, 32
    ret
    .data
    .align 6
arr:
    .zero 64
)";

uint64_t
exchReference()
{
    uint64_t arr[exchElems];
    for (uint64_t i = 0; i < exchElems; ++i)
        arr[i] = i + 1;
    uint64_t sum = 0;

    // Mirrors the recursive Heap's algorithm in the kernel, including
    // the checksum fold at each base case.
    auto permute = [&](auto &&self, uint64_t k) -> void {
        if (k == 1) {
            uint64_t acc = 0;
            for (uint64_t i = 0; i < exchElems; ++i)
                acc += arr[i] * (i + 1);
            sum = (sum ^ acc) + (acc << 1);
            return;
        }
        for (uint64_t i = 0; i + 1 < k; ++i) {
            self(self, k - 1);
            if (k % 2 == 1)
                std::swap(arr[0], arr[k - 1]);
            else
                std::swap(arr[i], arr[k - 1]);
        }
        self(self, k - 1);
    };
    permute(permute, exchElems);
    return sum;
}

Workload
makeExchange2()
{
    std::string source = exchSource;
    source = substitute(source, "K", exchElems);
    size_t pos = source.find("{EXIT}");
    source.replace(pos, 6, exitStub);
    return {"648.exchange2_s", Suite::Spec,
            "recursive permutation search with stack save/restore pairs",
            source, [] { return exchReference(); }};
}

// ---------------------------------------------------------------------
// 657.xz_s: LZ-style match finding and copy with heavy store traffic.
// ---------------------------------------------------------------------

constexpr uint64_t xzLen = 32768;
constexpr uint64_t xzHashEntries = 4096;

const char *xzSource = R"(
    la s0, phrases
    li s9, {SEED}
    li s10, {LCGMUL}
    li s11, {LCGADD}
    li t0, 16
    mv t1, s0
gphr:
    mul s9, s9, s10
    add s9, s9, s11
    sd s9, 0(t1)
    addi t1, t1, 8
    addi t0, t0, -1
    bnez t0, gphr

    la s1, input
    li t0, {CHUNKS}
    mv t1, s1
ginp:
    mul s9, s9, s10
    add s9, s9, s11
    srli t2, s9, 25
    andi t2, t2, 15
    slli t2, t2, 3
    add t2, t2, s0
    ld t3, 0(t2)
    sd t3, 0(t1)
    addi t1, t1, 8
    addi t0, t0, -1
    bnez t0, ginp

    la s2, head
    la s3, output
    mv s4, s3
    li s5, 0
    li s6, {LIMIT}
comp:
    add t0, s1, s5
    lwu t1, 0(t0)
    li t2, 2654435761
    mul t2, t1, t2
    srli t2, t2, 20
    li t3, 0xfff
    and t2, t2, t3
    slli t2, t2, 3
    add t2, t2, s2
    ld t3, 0(t2)
    addi t4, s5, 1
    sd t4, 0(t2)
    beqz t3, literal
    addi t3, t3, -1
    add t4, s1, t3
    lwu t5, 0(t4)
    bne t5, t1, literal
    ld a1, 0(t4)
    ld a2, 0(t0)
    li t6, 8
    bne a1, a2, ext_done
    ld a3, 8(t4)
    ld a4, 8(t0)
    li t6, 16
    beq a3, a4, ext_done
    li t6, 8
ext_done:
    sub a1, s5, t3
    sd a1, 0(s4)
    sd t6, 8(s4)
    sd a2, 16(s4)
    sd s5, 24(s4)
    addi s4, s4, 32
    add s5, s5, t6
    j comp_next
literal:
    lbu a1, 0(t0)
    sb a1, 0(s4)
    addi s4, s4, 1
    addi s5, s5, 1
comp_next:
    blt s5, s6, comp

    la t0, output
    sub t1, s4, t0
    li a0, 0
    srli t2, t1, 3
fold:
    beqz t2, fold_done
    ld t3, 0(t0)
    slli t4, a0, 5
    srli t5, a0, 59
    or a0, t4, t5
    xor a0, a0, t3
    addi t0, t0, 8
    addi t2, t2, -1
    j fold
fold_done:
    add a0, a0, t1
{EXIT}
    .data
    .align 6
phrases:
    .zero 128
    .align 6
input:
    .zero {INPUTBYTES}
    .align 6
head:
    .zero {HEADBYTES}
    .align 6
output:
    .zero {OUTPUTBYTES}
)";

uint64_t
xzReference(uint64_t seed)
{
    uint64_t x = seed;
    uint64_t phrases[16];
    for (int i = 0; i < 16; ++i)
        phrases[i] = lcgNext(x);

    vector<uint8_t> input(xzLen + 64, 0);
    for (uint64_t c = 0; c < xzLen / 8; ++c) {
        lcgNext(x);
        const uint64_t phrase = phrases[(x >> 25) & 15];
        for (int b = 0; b < 8; ++b)
            input[c * 8 + b] = uint8_t(phrase >> (8 * b));
    }

    vector<uint64_t> head(xzHashEntries, 0);
    vector<uint8_t> output;
    output.reserve(4 * xzLen);
    auto emit64 = [&output](uint64_t value) {
        for (int b = 0; b < 8; ++b)
            output.push_back(uint8_t(value >> (8 * b)));
    };

    uint64_t pos = 0;
    const uint64_t limit = xzLen - 24;
    while (pos < limit) {
        uint32_t four = 0;
        for (int b = 0; b < 4; ++b)
            four |= uint32_t(input[pos + b]) << (8 * b);
        const uint64_t hash =
            ((uint64_t(four) * 2654435761ULL) >> 20) & 0xfff;
        const uint64_t cand_plus1 = head[hash];
        head[hash] = pos + 1;
        bool matched = false;
        if (cand_plus1 != 0) {
            const uint64_t cand = cand_plus1 - 1;
            uint32_t cand_four = 0;
            for (int b = 0; b < 4; ++b)
                cand_four |= uint32_t(input[cand + b]) << (8 * b);
            if (cand_four == four) {
                auto word_at = [&input](uint64_t at) {
                    uint64_t value = 0;
                    for (int b = 0; b < 8; ++b)
                        value |= uint64_t(input[at + b]) << (8 * b);
                    return value;
                };
                const uint64_t cand_word = word_at(cand);
                uint64_t len = 8;
                if (cand_word == word_at(pos) &&
                    word_at(cand + 8) == word_at(pos + 8))
                    len = 16;
                emit64(pos - cand);
                emit64(len);
                emit64(word_at(pos));
                emit64(pos);
                pos += len;
                matched = true;
            }
        }
        if (!matched) {
            output.push_back(input[pos]);
            ++pos;
        }
    }

    uint64_t sum = 0;
    const uint64_t out_len = output.size();
    for (uint64_t i = 0; i + 8 <= out_len; i += 8) {
        uint64_t word = 0;
        for (int b = 0; b < 8; ++b)
            word |= uint64_t(output[i + b]) << (8 * b);
        sum = ((sum << 5) | (sum >> 59)) ^ word;
    }
    return sum + out_len;
}

Workload
makeXz(int variant, uint64_t seed)
{
    std::string source = xzSource;
    source = substitute(source, "CHUNKS", xzLen / 8);
    source = substitute(source, "LIMIT", xzLen - 24);
    source = substitute(source, "INPUTBYTES", xzLen + 64);
    source = substitute(source, "HEADBYTES", xzHashEntries * 8);
    source = substitute(source, "OUTPUTBYTES", 4 * xzLen);
    source = substitute(source, "SEED", seed);
    source = substitute(source, "LCGMUL", lcgMul);
    source = substitute(source, "LCGADD", lcgAdd);
    size_t pos = source.find("{EXIT}");
    source.replace(pos, 6, exitStub);
    return {"657.xz_s_" + std::to_string(variant), Suite::Spec,
            "LZ match finding with (offset,len) store bursts",
            source, [seed] { return xzReference(seed); }};
}

} // namespace

std::vector<Workload>
specWorkloads()
{
    std::vector<Workload> workloads;
    workloads.push_back(makePerlbench(1, 11));
    workloads.push_back(makePerlbench(2, 22));
    workloads.push_back(makePerlbench(3, 33));
    workloads.push_back(makeGcc(1, 101));
    workloads.push_back(makeGcc(2, 202));
    workloads.push_back(makeGcc(3, 303));
    workloads.push_back(makeMcf());
    workloads.push_back(makeOmnetpp());
    workloads.push_back(makeXalancbmk());
    workloads.push_back(makeDeepsjeng());
    workloads.push_back(makeLeela());
    workloads.push_back(makeExchange2());
    workloads.push_back(makeXz(1, 900913));
    workloads.push_back(makeXz(2, 424242));
    return workloads;
}

} // namespace workload_detail
} // namespace helios
