#include "workloads/workloads.hh"

#include "asm/assembler.hh"
#include "common/logging.hh"

namespace helios
{

Program
Workload::program() const
{
    if (makeProgram)
        return makeProgram();
    return assemble(source);
}

const std::vector<Workload> &
allWorkloads()
{
    static const std::vector<Workload> workloads = [] {
        std::vector<Workload> all = workload_detail::specWorkloads();
        std::vector<Workload> mi = workload_detail::mibenchWorkloads();
        std::vector<Workload> mi2 = workload_detail::mibenchWorkloads2();
        all.insert(all.end(), mi.begin(), mi.end());
        all.insert(all.end(), mi2.begin(), mi2.end());
        return all;
    }();
    return workloads;
}

const Workload &
findWorkload(const std::string &name)
{
    for (const Workload &workload : allWorkloads())
        if (workload.name == name)
            return workload;
    fatal("unknown workload '%s'", name.c_str());
}

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const Workload &workload : allWorkloads())
        names.push_back(workload.name);
    return names;
}

namespace workload_detail
{

std::string
substitute(std::string text, const std::string &key, uint64_t value)
{
    const std::string pattern = "{" + key + "}";
    size_t pos = 0;
    while ((pos = text.find(pattern, pos)) != std::string::npos) {
        const std::string replacement = std::to_string(value);
        text.replace(pos, pattern.size(), replacement);
        pos += replacement.size();
    }
    return text;
}

} // namespace workload_detail

} // namespace helios
