#include "harness/report.hh"

#include <cstdio>
#include <sstream>

#include "common/logging.hh"
#include "ledger/ledger.hh"
#include "telemetry/host_trace.hh"

namespace helios
{

Table::Table(std::vector<std::string> hs) : headers(std::move(hs)) {}

void
Table::addRow(std::vector<std::string> cells)
{
    helios_assert(cells.size() == headers.size(),
                  "row width mismatch");
    rows.push_back(std::move(cells));
}

std::string
Table::num(double value, int digits)
{
    return strFormat("%.*f", digits, value);
}

std::string
Table::pct(double ratio, int digits)
{
    return strFormat("%.*f%%", digits, ratio * 100.0);
}

std::string
Table::toString() const
{
    std::vector<size_t> widths(headers.size());
    for (size_t i = 0; i < headers.size(); ++i)
        widths[i] = headers[i].size();
    for (const auto &row : rows)
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());

    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i) {
            out << cells[i];
            out << std::string(widths[i] - cells[i].size() + 2, ' ');
        }
        out << '\n';
    };
    emit(headers);
    size_t total = 0;
    for (size_t width : widths)
        total += width + 2;
    out << std::string(total, '-') << '\n';
    for (const auto &row : rows)
        emit(row);
    return out.str();
}

void
Table::print() const
{
    std::fputs(toString().c_str(), stdout);
}

void
printBenchHeader(const std::string &title,
                 const std::string &description)
{
    // Every bench prints this header first, so it doubles as the
    // hook that arms HELIOS_HOST_TRACE / HELIOS_METRICS collection
    // and the HELIOS_LEDGER run ledger.
    initHostTelemetryFromEnv();
    initLedgerFromEnv();
    std::printf("==================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("%s\n", description.c_str());
    std::printf("Machine: Icelake-class (Table II): 8-wide fetch/"
                "decode, 5-wide rename,\n  AQ=140 ROB=352 IQ=160 "
                "LQ=128 SQ=72, TAGE + store-sets, 48K/512K/2M caches\n");
    std::printf("==================================================\n");
}

void
printMatrixTiming(size_t cells, unsigned jobs, double seconds)
{
    std::printf("\n[matrix] %zu cells on %u worker thread%s in %.2f s "
                "(%.2f cells/s)\n",
                cells, jobs, jobs == 1 ? "" : "s", seconds,
                seconds > 0.0 ? double(cells) / seconds : 0.0);
}

} // namespace helios
