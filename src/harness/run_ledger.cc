#include "harness/run_ledger.hh"

#include "common/bits.hh"
#include "harness/run_report.hh"
#include "harness/sampling.hh"
#include "ledger/ledger.hh"
#include "telemetry/host_metrics.hh"

namespace helios
{

namespace
{

uint64_t
normalizeBudget(uint64_t max_insts)
{
    return max_insts == UINT64_MAX ? 0 : max_insts;
}

} // namespace

LedgerOutcome
recordRunToLedger(const RunResult &result, uint64_t max_insts)
{
    Ledger *ledger = Ledger::global();
    if (!ledger)
        return LedgerOutcome::Disarmed;

    const uint64_t budget = normalizeBudget(max_insts);
    const RunReport report = makeRunReport(result, budget);

    LedgerKey key;
    key.programHash = result.programHash;
    key.configHash = result.configHash;
    key.budget = budget;
    key.build = buildInfo().gitHash;

    JsonValue meta = JsonValue::object();
    meta.set("workload", JsonValue(report.workload));
    meta.set("mode", JsonValue(report.mode));
    meta.set("ipc", JsonValue(report.ipc));
    meta.set("fusion_coverage", JsonValue(report.fusionCoverage()));
    meta.set("instructions", JsonValue(report.instructions));
    meta.set("cycles", JsonValue(report.cycles));
    meta.set("uops", JsonValue(report.uops));

    RunReportFile file;
    file.generator = "helios-ledger";
    file.runs.push_back(report);

    return ledger->record(key, std::move(meta), file.toJsonText())
               ? LedgerOutcome::Recorded
               : LedgerOutcome::Hit;
}

LedgerOutcome
recordFunctionalToLedger(const std::string &workload,
                         const FunctionalResult &result,
                         uint64_t max_insts, bool fast_path)
{
    Ledger *ledger = Ledger::global();
    if (!ledger)
        return LedgerOutcome::Disarmed;

    const uint64_t budget = normalizeBudget(max_insts);
    const std::string mode =
        fast_path ? "functional-fast" : "functional-ref";

    LedgerKey key;
    key.programHash = result.programHash;
    key.configHash = 0; // functional runs have no CoreParams
    key.budget = budget;
    key.build = buildInfo().gitHash;

    JsonValue meta = JsonValue::object();
    meta.set("workload", JsonValue(workload));
    meta.set("mode", JsonValue(mode));
    meta.set("instructions", JsonValue(result.instructions));

    JsonValue blob = JsonValue::object();
    blob.set("workload", JsonValue(workload));
    blob.set("mode", JsonValue(mode));
    blob.set("max_insts", JsonValue(budget));
    blob.set("instructions", JsonValue(result.instructions));
    blob.set("arch_checksum", JsonValue(result.archChecksum));
    blob.set("mem_checksum", JsonValue(result.memChecksum));
    blob.set("exited", JsonValue(result.exited));
    blob.set("exit_code", JsonValue(result.exitCode));
    blob.set("program_hash", JsonValue(result.programHash));

    return ledger->record(key, std::move(meta), blob.dump(2) + "\n")
               ? LedgerOutcome::Recorded
               : LedgerOutcome::Hit;
}

LedgerOutcome
recordSampledToLedger(const SampledResult &result)
{
    Ledger *ledger = Ledger::global();
    if (!ledger)
        return LedgerOutcome::Disarmed;

    const RunReport report = makeSampledRunReport(result);

    LedgerKey key;
    key.programHash = result.programHash;
    // Same program + config sampled under a different spec is a
    // different estimate; fold the spec hash in so the records
    // coexist (and never collide with a full run's record either).
    const uint64_t spec_hash = result.spec.specHash();
    key.configHash =
        fnv1a(&spec_hash, sizeof(spec_hash), result.configHash);
    key.budget = result.spec.totalBudget;
    key.build = buildInfo().gitHash;

    JsonValue meta = JsonValue::object();
    meta.set("workload", JsonValue(report.workload));
    meta.set("mode", JsonValue(report.mode));
    meta.set("sampled", JsonValue(true));
    meta.set("ipc", JsonValue(result.ipc.mean));
    meta.set("ipc_ci95_half", JsonValue(result.ipc.ci95Half));
    meta.set("fusion_coverage", JsonValue(result.coverage.mean));
    meta.set("interval", JsonValue(result.spec.intervalInsts));
    meta.set("warmup", JsonValue(result.spec.warmupInsts));
    meta.set("samples", JsonValue(uint64_t(result.intervals.size())));
    meta.set("instructions", JsonValue(result.measuredInstructions));
    meta.set("cycles", JsonValue(result.measuredCycles));
    meta.set("uops", JsonValue(result.measuredUops));

    RunReportFile file;
    file.generator = "helios-ledger";
    file.runs.push_back(report);

    return ledger->record(key, std::move(meta), file.toJsonText())
               ? LedgerOutcome::Recorded
               : LedgerOutcome::Hit;
}

} // namespace helios
