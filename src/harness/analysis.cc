#include "harness/analysis.hh"

#include <deque>

#include "fusion/idiom.hh"

namespace helios
{

double
IdiomStats::memoryFraction() const
{
    return totalUops ? double(memoryPairUops) / double(totalUops) : 0.0;
}

double
IdiomStats::othersFraction() const
{
    return totalUops ? double(otherPairUops) / double(totalUops) : 0.0;
}

IdiomStats
analyzeIdioms(const std::vector<DynInst> &trace)
{
    IdiomStats stats;
    stats.totalUops = trace.size();
    size_t i = 0;
    while (i + 1 < trace.size()) {
        const Idiom idiom =
            matchIdiom(trace[i].inst, trace[i + 1].inst);
        if (idiom == Idiom::None) {
            ++i;
            continue;
        }
        if (isMemoryIdiom(idiom))
            stats.memoryPairUops += 2;
        else
            stats.otherPairUops += 2;
        i += 2; // greedy non-overlapping pairing
    }
    return stats;
}

double
CsfCategoryStats::fraction(uint64_t pairs) const
{
    return totalUops ? 2.0 * double(pairs) / double(totalUops) : 0.0;
}

CsfCategoryStats
analyzeCsfCategories(const std::vector<DynInst> &trace,
                     unsigned line_bytes)
{
    CsfCategoryStats stats;
    stats.totalUops = trace.size();
    size_t i = 0;
    while (i + 1 < trace.size()) {
        const DynInst &a = trace[i];
        const DynInst &b = trace[i + 1];
        const bool same_kind = (a.isLoad() && b.isLoad()) ||
                               (a.isStore() && b.isStore());
        if (!same_kind) {
            ++i;
            continue;
        }
        // Dependent loads cannot pair (Section II-B).
        if (a.isLoad() && a.inst.writesReg() &&
            a.inst.rd == b.inst.baseReg()) {
            ++i;
            continue;
        }
        const uint64_t a_begin = a.effAddr;
        const uint64_t a_end = a_begin + a.memSize();
        const uint64_t b_begin = b.effAddr;
        const uint64_t b_end = b_begin + b.memSize();
        const uint64_t line_a = a_begin / line_bytes;
        const uint64_t line_b = b_begin / line_bytes;

        bool paired = true;
        if (a_end == b_begin || b_end == a_begin) {
            ++stats.contiguous;
        } else if (a_begin < b_end && b_begin < a_end) {
            ++stats.overlapping;
        } else if (line_a == line_b) {
            ++stats.sameLine;
        } else if (line_a + 1 == line_b || line_b + 1 == line_a) {
            ++stats.nextLine;
        } else {
            paired = false;
        }
        i += paired ? 2 : 1;
    }
    return stats;
}

double
NcsfPotentialStats::fraction(uint64_t pair_count) const
{
    return totalUops ? 2.0 * double(pair_count) / double(totalUops)
                     : 0.0;
}

NcsfPotentialStats
analyzeNcsfPotential(const std::vector<DynInst> &trace, unsigned window,
                     unsigned region_bytes)
{
    NcsfPotentialStats stats;
    stats.totalUops = trace.size();

    struct Candidate
    {
        size_t index;
        bool paired;
    };
    std::deque<Candidate> recent; // unpaired memory µ-ops, newest last

    for (size_t i = 0; i < trace.size(); ++i) {
        while (!recent.empty() && i - recent.front().index > window)
            recent.pop_front();

        const DynInst &tail = trace[i];
        if (!tail.isMem())
            continue;

        bool matched = false;
        for (auto it = recent.rbegin(); it != recent.rend(); ++it) {
            if (it->paired)
                continue;
            const DynInst &head = trace[it->index];
            const bool same_kind =
                (head.isLoad() && tail.isLoad()) ||
                (head.isStore() && tail.isStore());
            if (!same_kind)
                continue;
            const uint64_t begin =
                std::min(head.effAddr, tail.effAddr);
            const uint64_t end =
                std::max(head.effAddr + head.memSize(),
                         tail.effAddr + tail.memSize());
            if (end - begin > region_bytes)
                continue;
            if (head.inst.writesReg() &&
                head.inst.rd == tail.inst.baseReg())
                continue; // directly dependent

            const bool consecutive = it->index + 1 == i;
            const bool same_base =
                head.inst.baseReg() == tail.inst.baseReg();
            if (consecutive) {
                ++(same_base ? stats.csfSbr : stats.csfDbr);
            } else {
                ++(same_base ? stats.ncsfSbr : stats.ncsfDbr);
            }
            if (head.memSize() != tail.memSize())
                ++stats.asymmetric;
            it->paired = true;
            matched = true;
            break;
        }
        if (!matched)
            recent.push_back({i, false});
    }
    return stats;
}

} // namespace helios
