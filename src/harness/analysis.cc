#include "harness/analysis.hh"

#include <algorithm>

#include "fusion/idiom.hh"

namespace helios
{

double
IdiomStats::memoryFraction() const
{
    return totalUops ? double(memoryPairUops) / double(totalUops) : 0.0;
}

double
IdiomStats::othersFraction() const
{
    return totalUops ? double(otherPairUops) / double(totalUops) : 0.0;
}

void
IdiomAccumulator::add(const DynInst &dyn)
{
    ++theStats.totalUops;
    if (!havePending) {
        pending = dyn;
        havePending = true;
        return;
    }
    const Idiom idiom = matchIdiom(pending.inst, dyn.inst);
    if (idiom == Idiom::None) {
        pending = dyn; // head advances by one
        return;
    }
    if (isMemoryIdiom(idiom))
        theStats.memoryPairUops += 2;
    else
        theStats.otherPairUops += 2;
    havePending = false; // greedy non-overlapping pairing
}

IdiomStats
analyzeIdioms(const std::vector<DynInst> &trace)
{
    IdiomAccumulator acc;
    for (const DynInst &dyn : trace)
        acc.add(dyn);
    return acc.stats();
}

double
CsfCategoryStats::fraction(uint64_t pairs) const
{
    return totalUops ? 2.0 * double(pairs) / double(totalUops) : 0.0;
}

void
CsfCategoryAccumulator::add(const DynInst &dyn)
{
    ++theStats.totalUops;
    if (!havePending) {
        pending = dyn;
        havePending = true;
        return;
    }
    const DynInst &a = pending;
    const DynInst &b = dyn;
    const bool same_kind = (a.isLoad() && b.isLoad()) ||
                           (a.isStore() && b.isStore());
    // Dependent loads cannot pair (Section II-B).
    const bool dependent = a.isLoad() && a.inst.writesReg() &&
                           a.inst.rd == b.inst.baseReg();
    bool paired = false;
    if (same_kind && !dependent) {
        const uint64_t a_begin = a.effAddr;
        const uint64_t a_end = a_begin + a.memSize();
        const uint64_t b_begin = b.effAddr;
        const uint64_t b_end = b_begin + b.memSize();
        const uint64_t line_a = a_begin / lineBytes;
        const uint64_t line_b = b_begin / lineBytes;

        paired = true;
        if (a_end == b_begin || b_end == a_begin) {
            ++theStats.contiguous;
        } else if (a_begin < b_end && b_begin < a_end) {
            ++theStats.overlapping;
        } else if (line_a == line_b) {
            ++theStats.sameLine;
        } else if (line_a + 1 == line_b || line_b + 1 == line_a) {
            ++theStats.nextLine;
        } else {
            paired = false;
        }
    }
    if (paired)
        havePending = false;
    else
        pending = dyn;
}

CsfCategoryStats
analyzeCsfCategories(const std::vector<DynInst> &trace,
                     unsigned line_bytes)
{
    CsfCategoryAccumulator acc(line_bytes);
    for (const DynInst &dyn : trace)
        acc.add(dyn);
    return acc.stats();
}

double
NcsfPotentialStats::fraction(uint64_t pair_count) const
{
    return totalUops ? 2.0 * double(pair_count) / double(totalUops)
                     : 0.0;
}

void
NcsfPotentialAccumulator::add(const DynInst &dyn)
{
    const uint64_t i = nextIndex++;
    ++theStats.totalUops;

    while (!recent.empty() && i - recent.front().index > window)
        recent.pop_front();

    if (!dyn.isMem())
        return;

    bool matched = false;
    for (auto it = recent.rbegin(); it != recent.rend(); ++it) {
        if (it->paired)
            continue;
        const DynInst &head = it->dyn;
        const bool same_kind =
            (head.isLoad() && dyn.isLoad()) ||
            (head.isStore() && dyn.isStore());
        if (!same_kind)
            continue;
        const uint64_t begin = std::min(head.effAddr, dyn.effAddr);
        const uint64_t end = std::max(head.effAddr + head.memSize(),
                                      dyn.effAddr + dyn.memSize());
        if (end - begin > regionBytes)
            continue;
        if (head.inst.writesReg() &&
            head.inst.rd == dyn.inst.baseReg())
            continue; // directly dependent

        const bool consecutive = it->index + 1 == i;
        const bool same_base =
            head.inst.baseReg() == dyn.inst.baseReg();
        if (consecutive) {
            ++(same_base ? theStats.csfSbr : theStats.csfDbr);
        } else {
            ++(same_base ? theStats.ncsfSbr : theStats.ncsfDbr);
        }
        if (head.memSize() != dyn.memSize())
            ++theStats.asymmetric;
        it->paired = true;
        matched = true;
        break;
    }
    if (!matched)
        recent.push_back({dyn, i, false});
}

NcsfPotentialStats
analyzeNcsfPotential(const std::vector<DynInst> &trace, unsigned window,
                     unsigned region_bytes)
{
    NcsfPotentialAccumulator acc(window, region_bytes);
    for (const DynInst &dyn : trace)
        acc.add(dyn);
    return acc.stats();
}

} // namespace helios
