/**
 * @file
 * Experiment harness: run workload × configuration matrices and
 * collect results for the paper's tables and figures.
 *
 * Two throughput layers keep the big sweeps fast: a streaming trace
 * API (forEachDynInst) so analyses never materialize multi-million
 * entry vectors, and a parallel run matrix (runMatrix) that farms
 * independent (workload, configuration) cells out to a worker pool —
 * every cell owns a private Memory/Hart/Pipeline, so the sweep is
 * embarrassingly parallel and results are deterministic.
 */

#ifndef HARNESS_RUNNER_HH
#define HARNESS_RUNNER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "sim/trace.hh"
#include "telemetry/profiler.hh"
#include "uarch/auditor.hh"
#include "uarch/params.hh"
#include "workloads/workloads.hh"

namespace helios
{

struct Checkpoint;

/** Result of one (workload, configuration) timing run. */
struct RunResult
{
    std::string workload;
    FusionMode mode = FusionMode::None;
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t uops = 0;
    StatGroup stats;

    // Final architectural state of the functional hart that fed the
    // run. The differential harness compares these across fusion
    // configurations: the timing model must never change what the
    // program computed.
    uint64_t archChecksum = 0;     ///< Hart::archChecksum()
    uint64_t memChecksum = 0;      ///< Memory::checksum()
    uint64_t hartInstructions = 0; ///< instructions the hart executed
    bool exited = false;           ///< program reached its exit ecall
    uint64_t exitCode = 0;
    uint64_t programHash = 0;      ///< Program::sourceHash fingerprint
    uint64_t configHash = 0;       ///< configHash(params) of this run

    // Audit outcome; filled when CoreParams::audit was set.
    bool audited = false;
    uint64_t auditChecks = 0;
    std::vector<AuditViolation> auditViolations;

    // Per-PC fusion-site profile; filled when CoreParams::profile
    // was set.
    bool profiled = false;
    ProfileData profile;

    // Sampled-interval cell outcome (MatrixCell::restoreFrom runs).
    // cycles/instructions/uops above stay the cell totals (warmup +
    // measured window); the sampling layer subtracts the warmup
    // snapshot to get the measured window.
    bool sampled = false;
    uint64_t sampleStartInst = 0;  ///< checkpoint cut (dynamic index)
    bool warmupTaken = false;      ///< the commit watch latched
    uint64_t warmupCycles = 0;
    uint64_t warmupInstructions = 0;
    uint64_t warmupUops = 0;
    uint64_t warmupFusedPairs = 0;

    double
    ipc() const
    {
        return cycles ? double(instructions) / double(cycles) : 0.0;
    }

    /** Convenience accessor into the stat group. */
    uint64_t stat(const std::string &name) const { return stats.get(name); }
};

/**
 * Run one workload under one configuration.
 *
 * @param max_insts cap on executed architectural instructions
 *        (UINT64_MAX: run the kernel to completion)
 */
RunResult runOne(const Workload &workload, FusionMode mode,
                 uint64_t max_insts = UINT64_MAX);

/** Same, with explicit parameters (ablation studies). */
RunResult runOne(const Workload &workload, const CoreParams &params,
                 uint64_t max_insts = UINT64_MAX);

/**
 * Sampled-interval variant: restore the hart from @a restore_from
 * instead of resetting (skipping the assemble/ELF-load entirely), run
 * at most @a max_insts instructions, and latch the warmup snapshot
 * when @a warmup_insts instructions have committed (0: no watch).
 * With restore_from == nullptr this is exactly the plain overload.
 */
RunResult runOne(const Workload &workload, const CoreParams &params,
                 uint64_t max_insts, const Checkpoint *restore_from,
                 uint64_t warmup_insts);

/**
 * One cell of an experiment matrix: a workload to run under a
 * configuration with an instruction budget. The workload is held by
 * pointer and must outlive the runMatrix() call (cells built from
 * allWorkloads() / findWorkload() always satisfy this).
 *
 * Sampled-interval cells additionally point at a Checkpoint to
 * restore from (must outlive the runMatrix() call) and carry the
 * warmup length; the hart then resumes from the checkpoint's cut
 * instead of resetting, so a long run shards into independent,
 * restartable interval cells.
 */
struct MatrixCell
{
    const Workload *workload = nullptr;
    CoreParams params;
    uint64_t maxInsts = UINT64_MAX;

    // Sampled-interval cells (harness/sampling.hh schedules these).
    const Checkpoint *restoreFrom = nullptr;
    uint64_t warmupInsts = 0;

    MatrixCell() = default;

    MatrixCell(const Workload &w, const CoreParams &p,
               uint64_t max_insts = UINT64_MAX)
        : workload(&w), params(p), maxInsts(max_insts)
    {}

    MatrixCell(const Workload &w, FusionMode mode,
               uint64_t max_insts = UINT64_MAX)
        : workload(&w), params(CoreParams::icelake(mode)),
          maxInsts(max_insts)
    {}
};

/**
 * Run every cell of an experiment matrix, possibly in parallel.
 *
 * Results come back in input order and are bit-identical to running
 * the cells sequentially through runOne(): each worker owns private
 * simulator state, so the schedule cannot influence any counter.
 * A fatal() raised by any cell is rethrown on the calling thread.
 *
 * @param jobs worker-thread count; 0 means defaultJobCount()
 */
std::vector<RunResult> runMatrix(const std::vector<MatrixCell> &cells,
                                 unsigned jobs = 0);

/**
 * Worker count used by runMatrix(jobs=0): the HELIOS_JOBS environment
 * variable if set (fatal() on malformed or zero values), otherwise
 * std::thread::hardware_concurrency().
 */
unsigned defaultJobCount();

/** Final state of a functional-only (no timing model) run. */
struct FunctionalResult
{
    uint64_t instructions = 0; ///< executed before exit/budget
    uint64_t archChecksum = 0; ///< Hart::archChecksum()
    uint64_t memChecksum = 0;  ///< Memory::checksum()
    bool exited = false;
    uint64_t exitCode = 0;
    uint64_t programHash = 0;  ///< Program::sourceHash fingerprint
};

/**
 * Functional-only run through either execution engine: the fast-
 * forward engine (decoder cache + threaded dispatch, Hart::runFast)
 * or the reference step() loop. The two must be bit-identical — the
 * engine differential (runEngineDifferential) asserts it — so
 * @a fast_path is purely a throughput choice.
 */
FunctionalResult runFunctional(const Workload &workload,
                               uint64_t max_insts = UINT64_MAX,
                               bool fast_path = true);

/**
 * Functional-only run: execute the workload and return the dynamic
 * instruction stream facts needed by the analysis figures (2, 4, 5).
 *
 * Prefer forEachDynInst() for large budgets — this variant
 * materializes the whole stream in memory.
 */
std::vector<DynInst> functionalTrace(const Workload &workload,
                                     uint64_t max_insts = UINT64_MAX);

/**
 * Streaming functional run: execute the workload and hand each
 * dynamic instruction to @a visit as it retires, without buffering
 * the stream. Yields exactly the same records, in the same order, as
 * functionalTrace().
 *
 * @return the number of instructions executed
 */
uint64_t forEachDynInst(const Workload &workload, uint64_t max_insts,
                        const std::function<void(const DynInst &)> &visit);

/**
 * Geometric mean of a list of ratios. Non-positive values carry no
 * usable ratio information (log is undefined) and are skipped; an
 * input with no positive values yields 0.
 */
double geomean(const std::vector<double> &values);

/**
 * The default per-workload instruction budget used by bench binaries;
 * overridable through the HELIOS_MAX_INSTS environment variable.
 * Malformed or zero values are a fatal() error rather than a silent
 * zero-instruction run.
 */
uint64_t benchInstructionBudget();

} // namespace helios

#endif // HARNESS_RUNNER_HH
