/**
 * @file
 * Experiment harness: run workload × configuration matrices and
 * collect results for the paper's tables and figures.
 */

#ifndef HARNESS_RUNNER_HH
#define HARNESS_RUNNER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "sim/trace.hh"
#include "uarch/params.hh"
#include "workloads/workloads.hh"

namespace helios
{

/** Result of one (workload, configuration) timing run. */
struct RunResult
{
    std::string workload;
    FusionMode mode = FusionMode::None;
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t uops = 0;
    StatGroup stats;

    double
    ipc() const
    {
        return cycles ? double(instructions) / double(cycles) : 0.0;
    }

    /** Convenience accessor into the stat group. */
    uint64_t stat(const std::string &name) const { return stats.get(name); }
};

/**
 * Run one workload under one configuration.
 *
 * @param max_insts cap on executed architectural instructions
 *        (UINT64_MAX: run the kernel to completion)
 */
RunResult runOne(const Workload &workload, FusionMode mode,
                 uint64_t max_insts = UINT64_MAX);

/** Same, with explicit parameters (ablation studies). */
RunResult runOne(const Workload &workload, const CoreParams &params,
                 uint64_t max_insts = UINT64_MAX);

/**
 * Functional-only run: execute the workload and return the dynamic
 * instruction stream facts needed by the analysis figures (2, 4, 5).
 */
std::vector<DynInst> functionalTrace(const Workload &workload,
                                     uint64_t max_insts = UINT64_MAX);

/** Geometric mean of a list of ratios. */
double geomean(const std::vector<double> &values);

/**
 * The default per-workload instruction budget used by bench binaries;
 * overridable through the HELIOS_MAX_INSTS environment variable.
 */
uint64_t benchInstructionBudget();

} // namespace helios

#endif // HARNESS_RUNNER_HH
