/**
 * @file
 * Differential verification harness: run workloads through multiple
 * fusion configurations and machine-check that fusion only changed
 * the timing, never the computation.
 *
 * For every workload the harness asserts, against the no-fusion
 * baseline, that each configuration
 *
 *  - reached an identical final architectural state (register file,
 *    pc, exit status and output via Hart::archChecksum(); memory via
 *    Memory::checksum());
 *  - committed exactly the instructions the functional hart executed
 *    (no µ-op lost or duplicated by fusion/unfuse/replay);
 *  - did not regress IPC below the unfused baseline beyond a small
 *    tolerance (fusion exists to go faster);
 *  - with DiffOptions::audit set, produced zero PipelineAuditor
 *    invariant violations.
 *
 * Violations carry the offending workload/mode plus seq and cycle
 * where known, and the whole report renders to JSON for CI logs.
 */

#ifndef HARNESS_DIFFERENTIAL_HH
#define HARNESS_DIFFERENTIAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "harness/runner.hh"

namespace helios
{

/** Knobs for one differential sweep. */
struct DiffOptions
{
    /** Configurations to compare; the first is the baseline. */
    std::vector<FusionMode> modes = {FusionMode::None, FusionMode::CsfSbr,
                                     FusionMode::Helios, FusionMode::Oracle};

    /** Per-workload instruction budget. */
    uint64_t maxInsts = UINT64_MAX;

    /**
     * Fused configurations must reach at least
     * (1 - ipcTolerance) × baseline IPC. Fusion never removes work,
     * so a real regression means the model spent cycles it should
     * not have; the tolerance absorbs second-order scheduling noise.
     */
    double ipcTolerance = 0.02;

    /** Attach a PipelineAuditor to every run (needs HELIOS_AUDIT). */
    bool audit = false;

    /** Worker threads for the underlying runMatrix (0 = default). */
    unsigned jobs = 0;
};

/** One cross-configuration or audit failure. */
struct DiffViolation
{
    std::string workload;
    FusionMode mode = FusionMode::None;
    std::string check;  ///< "arch_state", "mem_state", "commit_count",
                        ///< "ipc_regression" or "audit.<invariant>"
    std::string detail; ///< human-readable specifics
    uint64_t seq = 0;   ///< offending sequence number (0 if n/a)
    uint64_t cycle = 0; ///< offending cycle (0 if n/a)

    std::string toJson() const;
};

/** Everything a differential sweep produced. */
struct DiffReport
{
    std::vector<FusionMode> modes;
    std::vector<std::string> workloads;
    /** Row-major: results[w * modes.size() + m]. */
    std::vector<RunResult> results;
    std::vector<DiffViolation> violations;
    bool audited = false;

    bool ok() const { return violations.empty(); }

    const RunResult &
    result(size_t workload, size_t mode) const
    {
        return results[workload * modes.size() + mode];
    }

    /** Machine-readable report: {"ok":..., "violations":[...], ...}. */
    std::string toJson() const;
};

/**
 * Run @a workloads through every configuration in @a opts.modes and
 * cross-check the results. Cells run through runMatrix(), so the
 * sweep parallelizes across (workload, mode) and results are
 * deterministic. fatal() if opts requests fewer than two modes or
 * audit without HELIOS_AUDIT hooks compiled in.
 */
DiffReport runDifferential(const std::vector<const Workload *> &workloads,
                           const DiffOptions &opts = {});

/** Convenience: the full workload suite. */
DiffReport runDifferentialAll(const DiffOptions &opts = {});

/** One fast-vs-reference engine equivalence failure. */
struct EngineDiffViolation
{
    std::string workload;
    std::string check;  ///< "dyninst_stream", "trace_length",
                        ///< "inst_count", "arch_state", "mem_state"
                        ///< or "exit_state"
    std::string detail; ///< human-readable specifics
    uint64_t seq = 0;   ///< first diverging sequence number (0 if n/a)

    std::string toJson() const;
};

/** Result of a fast-vs-reference engine equivalence sweep. */
struct EngineDiffReport
{
    std::vector<std::string> workloads;
    std::vector<EngineDiffViolation> violations;
    uint64_t tracedInstructions = 0;   ///< DynInsts compared in lockstep
    uint64_t untracedInstructions = 0; ///< insts executed per engine

    bool ok() const { return violations.empty(); }

    /** Machine-readable report: {"ok":..., "violations":[...], ...}. */
    std::string toJson() const;
};

/**
 * Prove the fast-forward engine (Hart::runFast / Hart::stepFast)
 * bit-identical to the reference engine (Hart::run / Hart::step).
 * For each workload, two independent checks:
 *
 *  1. traced lockstep — step() and stepFast() advance private harts
 *     side by side and every DynInst field (seq, pc, nextPc, decoded
 *     instruction including the raw word, effective address, branch
 *     outcome) is compared record by record for the first
 *     @a traced_insts instructions;
 *  2. untraced end state — run() and runFast() execute under
 *     @a max_insts and the final Hart::archChecksum(),
 *     Memory::checksum(), executed-instruction count and exit
 *     status/code must all match.
 */
EngineDiffReport
runEngineDifferential(const std::vector<const Workload *> &workloads,
                      uint64_t max_insts = UINT64_MAX,
                      uint64_t traced_insts = 20'000);

/**
 * Convenience: the full workload suite plus a self-modifying-code
 * kernel (smcPatchWorkload()) that patches instruction words inside
 * its own hot loop, exercising the decoder-cache invalidation path
 * under both engines, plus an ELF-loaded kernel
 * (elfChecksumWorkload()) that routes the real-binary frontend and
 * the Linux ecall shim through the same lockstep checks.
 */
EngineDiffReport
runEngineDifferentialAll(uint64_t max_insts = UINT64_MAX,
                         uint64_t traced_insts = 20'000);

/**
 * A self-checking kernel that stores into its own text segment every
 * iteration (rewriting an addi immediate), so any stale decoder-cache
 * entry or block descriptor shows up as a checksum divergence. Not
 * part of allWorkloads() — the paper matrix never self-modifies — but
 * appended by runEngineDifferentialAll() and usable directly in
 * tests.
 */
const Workload &smcPatchWorkload();

/**
 * A self-checking kernel assembled in-process, packed into a static
 * ELF64 image (harness/elf_image.hh) and re-loaded through the real
 * ELF frontend. Runs under the Linux ABI start stack and exercises
 * the ecall shim (write to captured stdout, brk heap growth) before
 * exiting with a heap checksum. Appended by
 * runEngineDifferentialAll(); also usable directly in fusion-config
 * differentials.
 */
const Workload &elfChecksumWorkload();

} // namespace helios

#endif // HARNESS_DIFFERENTIAL_HH
