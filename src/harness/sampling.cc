#include "harness/sampling.hh"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>

#include "common/bits.hh"
#include "common/logging.hh"
#include "sim/hart.hh"
#include "sim/memory.hh"
#include "telemetry/host_trace.hh"

namespace fs = std::filesystem;

namespace helios
{

namespace
{

/** Two-sided 97.5% Student-t quantiles for df 1..30; 1.96 beyond.
 *  Small sample counts are the norm here (10–50 intervals), so the
 *  normal approximation alone would understate the interval. */
double
tQuantile975(uint64_t df)
{
    static constexpr double table[30] = {
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
        2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
        2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060,  2.056, 2.052, 2.048, 2.045, 2.042,
    };
    if (df == 0)
        return 0.0;
    if (df <= 30)
        return table[df - 1];
    return 1.96;
}

/** Checkpoint file name: program identity + cut index. Specs that
 *  share cuts (same stride schedule) share the files. */
std::string
checkpointFileName(uint64_t program_hash, uint64_t inst_index)
{
    return strFormat("ckpt-%016llx-%llu.bin",
                     (unsigned long long)program_hash,
                     (unsigned long long)inst_index);
}

/** Manifest file name: one per (program, cut schedule). */
std::string
manifestFileName(uint64_t program_hash, const SamplingSpec &spec)
{
    uint64_t schedule = fnv1a(&spec.totalBudget, sizeof(spec.totalBudget));
    schedule = fnv1a(&spec.sampleCount, sizeof(spec.sampleCount), schedule);
    return strFormat("manifest-%016llx-%016llx.json",
                     (unsigned long long)program_hash,
                     (unsigned long long)schedule);
}

/** Try to serve the whole checkpoint set from @a spec.checkpointDir.
 *  Any mismatch (absent manifest, other program, other schedule,
 *  missing or corrupt checkpoint file) falls back to a rebuild —
 *  reuse is an optimization, never a correctness dependency. */
bool
loadPersisted(const SamplingSpec &spec, uint64_t program_hash,
              CheckpointSet &out)
{
    const fs::path dir(spec.checkpointDir);
    const fs::path manifest_path =
        dir / manifestFileName(program_hash, spec);
    std::error_code ec;
    if (!fs::exists(manifest_path, ec))
        return false;

    try {
        std::ifstream in(manifest_path);
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        const JsonValue doc = JsonValue::parse(text);
        if (doc.at("program_hash").asUint() != program_hash ||
            doc.at("total_budget").asUint() != spec.totalBudget ||
            doc.at("sample_count").asUint() != spec.sampleCount)
            return false;

        CheckpointSet set;
        set.programHash = program_hash;
        set.ffInstructions = doc.at("ff_instructions").asUint();
        set.exited = doc.at("exited").asBool();
        set.exitCode = doc.at("exit_code").asUint();
        const JsonValue &cuts = doc.at("cuts");
        for (size_t i = 0; i < cuts.size(); ++i) {
            const JsonValue &cut = cuts.at(i);
            const fs::path file = dir / cut.at("file").asString();
            Checkpoint ckpt = Checkpoint::load(file.string());
            if (ckpt.programHash != program_hash ||
                ckpt.instIndex != cut.at("inst").asUint())
                return false;
            set.checkpoints.push_back(std::move(ckpt));
        }
        set.reused = true;
        out = std::move(set);
        return true;
    } catch (const FatalError &err) {
        // A corrupt manifest or checkpoint file is survivable: log
        // and rebuild from scratch (which also rewrites the files).
        warn("checkpoint dir %s unusable (%s); rebuilding",
             spec.checkpointDir.c_str(), err.what());
        return false;
    }
}

/** Persist a freshly built checkpoint set; fatal() on I/O failure
 *  (the caller asked for persistence, silently losing it would make
 *  the next sweep silently pay the fast-forward again). */
void
persist(const SamplingSpec &spec, const CheckpointSet &set)
{
    const fs::path dir(spec.checkpointDir);
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        fatal("cannot create checkpoint dir %s: %s",
              spec.checkpointDir.c_str(), ec.message().c_str());

    JsonValue cuts = JsonValue::array();
    for (const Checkpoint &ckpt : set.checkpoints) {
        const std::string name =
            checkpointFileName(set.programHash, ckpt.instIndex);
        ckpt.save((dir / name).string());
        JsonValue cut = JsonValue::object();
        cut.set("inst", ckpt.instIndex);
        cut.set("file", name);
        cuts.push(std::move(cut));
    }

    JsonValue doc = JsonValue::object();
    doc.set("version", uint64_t(Checkpoint::kVersion));
    doc.set("program_hash", set.programHash);
    doc.set("total_budget", spec.totalBudget);
    doc.set("sample_count", spec.sampleCount);
    doc.set("stride", spec.stride());
    doc.set("ff_instructions", set.ffInstructions);
    doc.set("exited", set.exited);
    doc.set("exit_code", set.exitCode);
    doc.set("cuts", std::move(cuts));

    const fs::path manifest_path =
        dir / manifestFileName(set.programHash, spec);
    std::ofstream out(manifest_path);
    out << doc.dump(2) << "\n";
    if (!out)
        fatal("cannot write checkpoint manifest %s",
              manifest_path.string().c_str());
}

} // namespace

uint64_t
SamplingSpec::specHash() const
{
    uint64_t hash = fnv1a(&totalBudget, sizeof(totalBudget));
    hash = fnv1a(&intervalInsts, sizeof(intervalInsts), hash);
    hash = fnv1a(&warmupInsts, sizeof(warmupInsts), hash);
    hash = fnv1a(&sampleCount, sizeof(sampleCount), hash);
    return hash;
}

void
SamplingSpec::validate() const
{
    if (intervalInsts == 0)
        fatal("sampling interval must be a positive instruction count");
    if (sampleCount == 0)
        fatal("sample count must be a positive integer");
    if (warmupInsts >= intervalInsts)
        fatal("sampling warmup (%llu) must be shorter than the "
              "measured interval (%llu)",
              (unsigned long long)warmupInsts,
              (unsigned long long)intervalInsts);
    if (totalBudget == 0 || totalBudget == UINT64_MAX)
        fatal("sampling needs an explicit total instruction budget");
    if (stride() < warmupInsts + intervalInsts)
        fatal("budget %llu is too small for %llu disjoint "
              "warmup+interval windows of %llu instructions",
              (unsigned long long)totalBudget,
              (unsigned long long)sampleCount,
              (unsigned long long)(warmupInsts + intervalInsts));
}

CheckpointSet
buildCheckpoints(const Workload &workload, const SamplingSpec &spec)
{
    spec.validate();

    const Program prog = workload.program();
    if (!spec.checkpointDir.empty()) {
        CheckpointSet persisted;
        if (loadPersisted(spec, prog.sourceHash, persisted)) {
            logDebug("reusing %zu checkpoints for %s from %s",
                     persisted.checkpoints.size(),
                     workload.name.c_str(),
                     spec.checkpointDir.c_str());
            return persisted;
        }
    }

    HostSpan span(strFormat("fast-forward %s", workload.name.c_str()),
                  "sampling");

    Memory mem;
    Hart hart(mem);
    hart.reset(prog);

    CheckpointSet set;
    set.programHash = prog.sourceHash;
    const uint64_t stride = spec.stride();
    for (uint64_t k = 0; k < spec.sampleCount; ++k) {
        const uint64_t target = k * stride;
        if (target > hart.instsExecuted())
            hart.runFast(target - hart.instsExecuted());
        if (hart.exited() || hart.instsExecuted() < target) {
            // Program ended inside the frame; the remaining cuts
            // cannot exist. The estimate simply has fewer samples.
            inform("%s exited after %llu instructions; dropping %llu "
                   "of %llu sample cuts",
                   workload.name.c_str(),
                   (unsigned long long)hart.instsExecuted(),
                   (unsigned long long)(spec.sampleCount - k),
                   (unsigned long long)spec.sampleCount);
            break;
        }
        set.checkpoints.push_back(hart.makeCheckpoint(prog.sourceHash));
    }
    set.ffInstructions = hart.instsExecuted();
    set.exited = hart.exited();
    set.exitCode = hart.exitCode();
    span.end();

    if (!spec.checkpointDir.empty())
        persist(spec, set);
    return set;
}

SampledEstimate
estimateWeighted(const std::vector<IntervalSample> &intervals,
                 double (IntervalSample::*value)() const)
{
    SampledEstimate est;
    est.samples = intervals.size();
    double weight_sum = 0.0;
    for (const IntervalSample &sample : intervals)
        weight_sum += double(sample.instructions);
    if (weight_sum == 0.0)
        return est;

    double mean = 0.0;
    for (const IntervalSample &sample : intervals)
        mean += double(sample.instructions) / weight_sum *
                (sample.*value)();
    est.mean = mean;

    const uint64_t n = intervals.size();
    if (n < 2)
        return est; // no variance information: CI half-width stays 0

    // Reliability-weighted sample variance: reduces to the classic
    // 1/(n−1) estimator when every window measured the same number of
    // instructions.
    double var = 0.0;
    for (const IntervalSample &sample : intervals) {
        const double dev = (sample.*value)() - mean;
        var += double(sample.instructions) / weight_sum * dev * dev;
    }
    var *= double(n) / double(n - 1);
    const double stderr_mean = std::sqrt(var / double(n));
    est.ci95Half = tQuantile975(n - 1) * stderr_mean;
    return est;
}

SampledResult
runSampled(const Workload &workload, const CoreParams &params,
           const SamplingSpec &spec, unsigned jobs)
{
    spec.validate();
    const CheckpointSet set = buildCheckpoints(workload, spec);
    return runSampled(workload, params, spec, set, jobs);
}

SampledResult
runSampled(const Workload &workload, const CoreParams &params,
           const SamplingSpec &spec, const CheckpointSet &set,
           unsigned jobs)
{
    spec.validate();

    SampledResult result;
    result.workload = workload.name;
    result.mode = params.fusion;
    result.spec = spec;
    result.programHash = set.programHash;
    result.configHash = configHash(params);
    result.checkpointsReused = set.reused;
    result.ffInstructions = set.ffInstructions;
    result.droppedIntervals = spec.sampleCount - set.checkpoints.size();

    // Each interval is one independent matrix cell: restore the cut,
    // run warmup+window detailed, stop. The worker pool parallelizes
    // across intervals exactly as it does across configurations.
    std::vector<MatrixCell> cells;
    cells.reserve(set.checkpoints.size());
    for (const Checkpoint &ckpt : set.checkpoints) {
        MatrixCell cell(workload, params,
                        spec.warmupInsts + spec.intervalInsts);
        cell.restoreFrom = &ckpt;
        cell.warmupInsts = spec.warmupInsts;
        cells.push_back(cell);
    }
    const std::vector<RunResult> runs = runMatrix(cells, jobs);

    for (const RunResult &run : runs) {
        result.detailedInstructions += run.instructions;
        if (spec.warmupInsts && !run.warmupTaken) {
            // The cell ended before warmup completed (exit inside the
            // window): there is no measured window to score.
            inform("%s: interval at %llu ended during warmup; skipped",
                   workload.name.c_str(),
                   (unsigned long long)run.sampleStartInst);
            ++result.droppedIntervals;
            continue;
        }
        const uint64_t pairs = run.stat("pairs.csf_mem") +
                               run.stat("pairs.csf_other") +
                               run.stat("pairs.ncsf");
        IntervalSample sample;
        sample.startInst = run.sampleStartInst;
        sample.warmupCycles = run.warmupCycles;
        sample.cycles = run.cycles - run.warmupCycles;
        sample.instructions = run.instructions - run.warmupInstructions;
        sample.uops = run.uops - run.warmupUops;
        sample.fusedPairs = pairs - run.warmupFusedPairs;
        if (sample.instructions == 0) {
            ++result.droppedIntervals;
            continue;
        }
        result.measuredCycles += sample.cycles;
        result.measuredInstructions += sample.instructions;
        result.measuredUops += sample.uops;
        result.measuredFusedPairs += sample.fusedPairs;
        result.intervals.push_back(sample);
    }

    result.ipc = estimateWeighted(result.intervals, &IntervalSample::ipc);
    result.coverage =
        estimateWeighted(result.intervals, &IntervalSample::coverage);
    return result;
}

JsonValue
SampledResult::toJson() const
{
    JsonValue spec_json = JsonValue::object();
    spec_json.set("total_budget", spec.totalBudget);
    spec_json.set("interval", spec.intervalInsts);
    spec_json.set("warmup", spec.warmupInsts);
    spec_json.set("samples", spec.sampleCount);
    spec_json.set("spec_hash", spec.specHash());

    JsonValue measured = JsonValue::object();
    measured.set("cycles", measuredCycles);
    measured.set("instructions", measuredInstructions);
    measured.set("uops", measuredUops);
    measured.set("fused_pairs", measuredFusedPairs);
    measured.set("detailed_instructions", detailedInstructions);

    auto estimate_json = [](const SampledEstimate &est) {
        JsonValue value = JsonValue::object();
        value.set("mean", est.mean);
        value.set("ci95_half", est.ci95Half);
        value.set("ci95_lo", est.lo());
        value.set("ci95_hi", est.hi());
        value.set("samples", est.samples);
        return value;
    };

    JsonValue interval_list = JsonValue::array();
    for (const IntervalSample &sample : intervals) {
        JsonValue entry = JsonValue::object();
        entry.set("start", sample.startInst);
        entry.set("warmup_cycles", sample.warmupCycles);
        entry.set("cycles", sample.cycles);
        entry.set("instructions", sample.instructions);
        entry.set("uops", sample.uops);
        entry.set("fused_pairs", sample.fusedPairs);
        interval_list.push(std::move(entry));
    }

    JsonValue value = JsonValue::object();
    value.set("workload", workload);
    value.set("mode", fusionModeName(mode));
    value.set("spec", std::move(spec_json));
    value.set("program_hash", programHash);
    value.set("config_hash", configHash);
    value.set("checkpoints_reused", checkpointsReused);
    value.set("ff_instructions", ffInstructions);
    value.set("dropped_intervals", droppedIntervals);
    value.set("measured", std::move(measured));
    value.set("ipc", estimate_json(ipc));
    value.set("fusion_coverage", estimate_json(coverage));
    value.set("intervals", std::move(interval_list));
    return value;
}

SampledResult
SampledResult::fromJson(const JsonValue &value)
{
    SampledResult result;
    result.workload = value.at("workload").asString();
    result.mode = fusionModeFromName(value.at("mode").asString());
    const JsonValue &spec_json = value.at("spec");
    result.spec.totalBudget = spec_json.at("total_budget").asUint();
    result.spec.intervalInsts = spec_json.at("interval").asUint();
    result.spec.warmupInsts = spec_json.at("warmup").asUint();
    result.spec.sampleCount = spec_json.at("samples").asUint();
    result.programHash = value.at("program_hash").asUint();
    result.configHash = value.at("config_hash").asUint();
    result.checkpointsReused = value.at("checkpoints_reused").asBool();
    result.ffInstructions = value.at("ff_instructions").asUint();
    result.droppedIntervals = value.at("dropped_intervals").asUint();

    const JsonValue &measured = value.at("measured");
    result.measuredCycles = measured.at("cycles").asUint();
    result.measuredInstructions = measured.at("instructions").asUint();
    result.measuredUops = measured.at("uops").asUint();
    result.measuredFusedPairs = measured.at("fused_pairs").asUint();
    result.detailedInstructions =
        measured.at("detailed_instructions").asUint();

    auto estimate_from = [](const JsonValue &est_json) {
        SampledEstimate est;
        est.mean = est_json.at("mean").asDouble();
        est.ci95Half = est_json.at("ci95_half").asDouble();
        est.samples = est_json.at("samples").asUint();
        return est;
    };
    result.ipc = estimate_from(value.at("ipc"));
    result.coverage = estimate_from(value.at("fusion_coverage"));

    const JsonValue &interval_list = value.at("intervals");
    for (size_t i = 0; i < interval_list.size(); ++i) {
        const JsonValue &entry = interval_list.at(i);
        IntervalSample sample;
        sample.startInst = entry.at("start").asUint();
        sample.warmupCycles = entry.at("warmup_cycles").asUint();
        sample.cycles = entry.at("cycles").asUint();
        sample.instructions = entry.at("instructions").asUint();
        sample.uops = entry.at("uops").asUint();
        sample.fusedPairs = entry.at("fused_pairs").asUint();
        result.intervals.push_back(sample);
    }
    return result;
}

RunReport
makeSampledRunReport(const SampledResult &result)
{
    RunReport report;
    report.workload = result.workload;
    report.mode = fusionModeName(result.mode);
    report.maxInsts = result.spec.totalBudget;
    report.cycles = result.measuredCycles;
    report.instructions = result.measuredInstructions;
    report.uops = result.measuredUops;
    report.ipc = result.ipc.mean;
    report.programHash = result.programHash;
    report.configHash = result.configHash;
    report.sampled = result.toJson();
    return report;
}

} // namespace helios
