/**
 * @file
 * RunReport-shaped glue between the harness and the run ledger.
 *
 * The ledger itself (ledger/ledger.hh) stores opaque meta + blob
 * text; this layer gives finished runs their canonical ledger shape:
 * key = (program hash, config hash, normalized budget, build stamp),
 * meta = the queryable headline fields `helios_db trend` works over,
 * blob = a single-run RunReportFile so `helios_db show`/`diff` can
 * reconstruct the full report without re-simulating.
 *
 * Recording happens strictly after a run finishes — it reads results,
 * never influences them — so arming the ledger is observer-effect
 * free by construction (tier-1 guarded).
 */

#ifndef HARNESS_RUN_LEDGER_HH
#define HARNESS_RUN_LEDGER_HH

#include <cstdint>
#include <string>

#include "harness/runner.hh"

namespace helios
{

struct SampledResult;

/** What a recording attempt did. */
enum class LedgerOutcome
{
    Disarmed, ///< no global ledger armed; nothing happened
    Recorded, ///< new record appended
    Hit,      ///< key already present; nothing written
};

/**
 * Record one finished timing run into the armed global ledger (no-op
 * when disarmed). The budget is normalized: UINT64_MAX (run to
 * completion) is stored as 0, matching the report-file `max_insts`
 * convention.
 */
LedgerOutcome recordRunToLedger(const RunResult &result,
                                uint64_t max_insts);

/**
 * Record one finished functional-only run. Functional runs carry no
 * CoreParams, so the config hash is 0 and the mode is
 * "functional-fast" / "functional-ref"; the blob is a small JSON
 * document of the architectural outcome.
 */
LedgerOutcome recordFunctionalToLedger(const std::string &workload,
                                       const FunctionalResult &result,
                                       uint64_t max_insts,
                                       bool fast_path);

/**
 * Record one finished sampled run (harness/sampling.hh). A sampled
 * result answers a different question than a full run of the same
 * (program, config, budget) — it is an estimate over a sampling spec —
 * so the spec hash is folded into the key's config hash and the
 * budget is the sampled frame (SamplingSpec::totalBudget). The blob
 * is a single-run schema-v5 RunReportFile with the full `sampled`
 * section.
 */
LedgerOutcome recordSampledToLedger(const SampledResult &result);

} // namespace helios

#endif // HARNESS_RUN_LEDGER_HH
