#include "harness/run_report.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "harness/differential.hh"
#include "telemetry/host_metrics.hh"
#include "uarch/params.hh"

namespace helios
{

// ---------------------------------------------------------------------
// Histogram <-> JSON
// ---------------------------------------------------------------------

namespace
{

JsonValue
histogramToJson(const Histogram &hist)
{
    JsonValue value = JsonValue::object();

    JsonValue bounds = JsonValue::array();
    for (uint64_t bound : hist.bucketBounds())
        bounds.push(JsonValue(bound));
    value.set("bounds", std::move(bounds));

    JsonValue counts = JsonValue::array();
    for (size_t i = 0; i < hist.numBuckets(); ++i)
        counts.push(JsonValue(hist.bucketCount(i)));
    value.set("counts", std::move(counts));

    value.set("samples", JsonValue(hist.samples()));
    value.set("sum", JsonValue(hist.sum()));
    value.set("min", JsonValue(hist.minValue()));
    value.set("max", JsonValue(hist.maxValue()));
    return value;
}

Histogram
histogramFromJson(const JsonValue &value)
{
    const JsonValue &bounds = value.at("bounds");
    std::vector<uint64_t> upper;
    upper.reserve(bounds.size());
    for (size_t i = 0; i < bounds.size(); ++i)
        upper.push_back(bounds.at(i).asUint());
    Histogram hist{std::move(upper)};

    const JsonValue &counts = value.at("counts");
    if (counts.size() != hist.numBuckets())
        fatal("run report: histogram bucket count mismatch "
              "(%zu counts for %zu buckets)",
              counts.size(), hist.numBuckets());
    std::vector<uint64_t> bucket_counts;
    bucket_counts.reserve(counts.size());
    for (size_t i = 0; i < counts.size(); ++i)
        bucket_counts.push_back(counts.at(i).asUint());

    hist.restore(bucket_counts, value.at("samples").asUint(),
                 value.at("sum").asUint(), value.at("min").asUint(),
                 value.at("max").asUint());
    return hist;
}

JsonValue
statsToJson(const StatGroup &stats)
{
    JsonValue counters = JsonValue::object();
    for (const auto &[name, count] : stats.dump())
        counters.set(name, JsonValue(count));
    return counters;
}

} // namespace

// ---------------------------------------------------------------------
// RunReport
// ---------------------------------------------------------------------

double
RunReport::fusionCoverage() const
{
    const uint64_t pairs = stats.get("pairs.csf_mem") +
                           stats.get("pairs.csf_other") +
                           stats.get("pairs.ncsf");
    return instructions ? 2.0 * double(pairs) / double(instructions)
                        : 0.0;
}

JsonValue
RunReport::toJson() const
{
    JsonValue value = JsonValue::object();
    value.set("workload", JsonValue(workload));
    value.set("mode", JsonValue(mode));
    value.set("max_insts", JsonValue(maxInsts));

    value.set("cycles", JsonValue(cycles));
    value.set("instructions", JsonValue(instructions));
    value.set("uops", JsonValue(uops));
    value.set("ipc", JsonValue(ipc));
    value.set("fusion_coverage", JsonValue(fusionCoverage()));

    value.set("arch_checksum", JsonValue(archChecksum));
    value.set("mem_checksum", JsonValue(memChecksum));
    value.set("hart_instructions", JsonValue(hartInstructions));
    value.set("exited", JsonValue(exited));
    value.set("exit_code", JsonValue(exitCode));
    value.set("program_hash", JsonValue(programHash));
    value.set("config_hash", JsonValue(configHash));

    value.set("audited", JsonValue(audited));
    value.set("audit_checks", JsonValue(auditChecks));
    value.set("audit_violations", JsonValue(auditViolations));

    value.set("counters", statsToJson(stats));

    JsonValue histograms = JsonValue::object();
    for (const auto &[name, hist] : stats.dumpHistograms())
        histograms.set(name, histogramToJson(*hist));
    value.set("histograms", std::move(histograms));

    // The CPI stack is derived from the cpi.* counters; serialize the
    // rendered form too so downstream tooling does not need to know
    // the attribution scheme.
    JsonValue cpi = JsonValue::object();
    const CpiStack stack = cpiStack();
    for (size_t i = 0; i < stack.size(); ++i)
        cpi.set(stack.name(i), JsonValue(stack.cycles(i)));
    value.set("cpi_stack", std::move(cpi));

    // Schema v2: the profile section is optional so unprofiled runs
    // serialize exactly as v1 did (minus the version stamp).
    if (profiled)
        value.set("profile", profile.toJson());

    // Schema v5: the sampled section is optional so full-run reports
    // serialize exactly as v4 did (minus the version stamp).
    if (!sampled.isNull())
        value.set("sampled", sampled);
    return value;
}

RunReport
RunReport::fromJson(const JsonValue &value)
{
    RunReport report;
    report.workload = value.at("workload").asString();
    report.mode = value.at("mode").asString();
    report.maxInsts = value.at("max_insts").asUint();

    report.cycles = value.at("cycles").asUint();
    report.instructions = value.at("instructions").asUint();
    report.uops = value.at("uops").asUint();
    report.ipc = value.at("ipc").asDouble();

    report.archChecksum = value.at("arch_checksum").asUint();
    report.memChecksum = value.at("mem_checksum").asUint();
    report.hartInstructions = value.at("hart_instructions").asUint();
    report.exited = value.at("exited").asBool();
    report.exitCode = value.at("exit_code").asUint();
    // Additive in schema v2: absent from pre-ELF-frontend files.
    if (value.has("program_hash"))
        report.programHash = value.at("program_hash").asUint();
    // Additive in schema v4: absent from pre-ledger files.
    if (value.has("config_hash"))
        report.configHash = value.at("config_hash").asUint();

    report.audited = value.at("audited").asBool();
    report.auditChecks = value.at("audit_checks").asUint();
    report.auditViolations = value.at("audit_violations").asUint();

    for (const auto &[name, count] : value.at("counters").members())
        report.stats.counter(name) += count.asUint();

    for (const auto &[name, hist] : value.at("histograms").members())
        report.stats.histogram(name, histogramFromJson(hist));

    if (value.has("profile")) {
        report.profiled = true;
        report.profile = ProfileData::fromJson(value.at("profile"));
    }
    // Additive in schema v5; carried opaquely (decoded on demand by
    // SampledResult::fromJson).
    if (value.has("sampled"))
        report.sampled = value.at("sampled");
    return report;
}

bool
RunReport::operator==(const RunReport &other) const
{
    if (workload != other.workload || mode != other.mode ||
        maxInsts != other.maxInsts || cycles != other.cycles ||
        instructions != other.instructions || uops != other.uops ||
        ipc != other.ipc || archChecksum != other.archChecksum ||
        memChecksum != other.memChecksum ||
        hartInstructions != other.hartInstructions ||
        exited != other.exited || exitCode != other.exitCode ||
        programHash != other.programHash ||
        configHash != other.configHash ||
        audited != other.audited || auditChecks != other.auditChecks ||
        auditViolations != other.auditViolations ||
        profiled != other.profiled || !(profile == other.profile) ||
        !(sampled == other.sampled))
        return false;
    if (stats.dump() != other.stats.dump())
        return false;
    const auto mine = stats.dumpHistograms();
    const auto theirs = other.stats.dumpHistograms();
    if (mine.size() != theirs.size())
        return false;
    for (size_t i = 0; i < mine.size(); ++i) {
        if (mine[i].first != theirs[i].first ||
            !(*mine[i].second == *theirs[i].second))
            return false;
    }
    return true;
}

RunReport
makeRunReport(const RunResult &result, uint64_t max_insts)
{
    RunReport report;
    report.workload = result.workload;
    report.mode = fusionModeName(result.mode);
    report.maxInsts = max_insts;
    report.cycles = result.cycles;
    report.instructions = result.instructions;
    report.uops = result.uops;
    report.ipc = result.ipc();
    report.archChecksum = result.archChecksum;
    report.memChecksum = result.memChecksum;
    report.hartInstructions = result.hartInstructions;
    report.exited = result.exited;
    report.exitCode = result.exitCode;
    report.programHash = result.programHash;
    report.configHash = result.configHash;
    report.audited = result.audited;
    report.auditChecks = result.auditChecks;
    report.auditViolations = result.auditViolations.size();
    report.stats = result.stats;
    report.profiled = result.profiled;
    report.profile = result.profile;
    return report;
}

// ---------------------------------------------------------------------
// ReportVerdict
// ---------------------------------------------------------------------

JsonValue
ReportVerdict::toJson() const
{
    JsonValue value = JsonValue::object();
    value.set("workload", JsonValue(workload));
    value.set("mode", JsonValue(mode));
    value.set("check", JsonValue(check));
    value.set("detail", JsonValue(detail));
    return value;
}

ReportVerdict
ReportVerdict::fromJson(const JsonValue &value)
{
    ReportVerdict verdict;
    verdict.workload = value.at("workload").asString();
    verdict.mode = value.at("mode").asString();
    verdict.check = value.at("check").asString();
    verdict.detail = value.at("detail").asString();
    return verdict;
}

// ---------------------------------------------------------------------
// RunReportFile
// ---------------------------------------------------------------------

void
RunReportFile::add(const RunResult &result, uint64_t max_insts)
{
    runs.push_back(makeRunReport(result, max_insts));
}

void
RunReportFile::addDifferential(const DiffReport &report,
                               uint64_t max_insts)
{
    for (const RunResult &result : report.results)
        add(result, max_insts);
    for (const DiffViolation &violation : report.violations) {
        ReportVerdict verdict;
        verdict.workload = violation.workload;
        verdict.mode = fusionModeName(violation.mode);
        verdict.check = violation.check;
        verdict.detail = violation.detail;
        verdicts.push_back(std::move(verdict));
    }
}

const RunReport *
RunReportFile::find(const std::string &workload,
                    const std::string &mode) const
{
    for (const RunReport &run : runs)
        if (run.workload == workload && run.mode == mode)
            return &run;
    return nullptr;
}

JsonValue
RunReportFile::toJson() const
{
    JsonValue value = JsonValue::object();
    value.set("schema", JsonValue(std::string("helios-run-report")));
    value.set("version", JsonValue(uint64_t(version)));
    value.set("generator", JsonValue(generator));

    JsonValue run_array = JsonValue::array();
    for (const RunReport &run : runs)
        run_array.push(run.toJson());
    value.set("runs", std::move(run_array));

    JsonValue verdict_array = JsonValue::array();
    for (const ReportVerdict &verdict : verdicts)
        verdict_array.push(verdict.toJson());
    value.set("verdicts", std::move(verdict_array));

    // Schema v3: host telemetry is optional so reports produced with
    // host metrics off serialize exactly as v2 did (minus the stamp).
    if (!host.isNull())
        value.set("host", host);
    return value;
}

RunReportFile
RunReportFile::fromJson(const JsonValue &value)
{
    if (value.get("schema").asString() != "helios-run-report")
        fatal("run report: not a helios-run-report file");
    RunReportFile file;
    file.version = unsigned(value.at("version").asUint());
    if (file.version > kRunReportVersion)
        fatal("run report: schema version %u is newer than this "
              "build understands (%u)",
              file.version, kRunReportVersion);
    file.generator = value.get("generator").isString()
                         ? value.get("generator").asString()
                         : std::string();

    const JsonValue &run_array = value.at("runs");
    for (size_t i = 0; i < run_array.size(); ++i)
        file.runs.push_back(RunReport::fromJson(run_array.at(i)));

    const JsonValue &verdict_array = value.at("verdicts");
    for (size_t i = 0; i < verdict_array.size(); ++i)
        file.verdicts.push_back(
            ReportVerdict::fromJson(verdict_array.at(i)));

    // Additive in schema v3; carried opaquely (the host section
    // describes the producing machine, not the simulated result).
    if (value.has("host"))
        file.host = value.at("host");
    return file;
}

std::string
RunReportFile::toJsonText() const
{
    return toJson().dump(2) + "\n";
}

RunReportFile
RunReportFile::fromJsonText(const std::string &text)
{
    return fromJson(JsonValue::parse(text));
}

void
RunReportFile::save(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("run report: cannot open '%s' for writing", path.c_str());
    out << toJsonText();
    if (!out)
        fatal("run report: write to '%s' failed", path.c_str());
}

RunReportFile
RunReportFile::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("run report: cannot open '%s'", path.c_str());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return fromJsonText(buffer.str());
}

bool
RunReportFile::operator==(const RunReportFile &other) const
{
    return version == other.version && generator == other.generator &&
           runs == other.runs && verdicts == other.verdicts &&
           host == other.host;
}

void
attachHostSection(RunReportFile &file)
{
    if (HostMetrics::global().enabled())
        file.host = HostMetrics::global().toJson();
}

} // namespace helios
