#include "harness/elf_image.hh"

#include <cstring>
#include <fstream>

#include "common/bits.hh"
#include "common/logging.hh"
#include "sim/elf_loader.hh"

namespace helios
{

namespace
{

constexpr uint64_t ehdrSize = 64;
constexpr uint64_t phentSize = 56;
constexpr uint64_t pageAlign = 0x1000;

/** Append a little-endian field to the image. */
template <typename T>
void
put(std::vector<uint8_t> &image, T value)
{
    for (size_t i = 0; i < sizeof(T); ++i)
        image.push_back(uint8_t(uint64_t(value) >> (8 * i)));
}

/** One output segment: bytes to place in the file plus a bss tail. */
struct OutSegment
{
    uint64_t vaddr = 0;
    std::vector<uint8_t> bytes;
    uint64_t memSize = 0;
    uint32_t flags = 0; // PF_R=4, PF_W=2, PF_X=1
    uint64_t offset = 0; // assigned during layout
};

} // namespace

std::vector<uint8_t>
buildElfImage(const Program &prog)
{
    if (prog.code.empty())
        fatal("cannot build an ELF image from a program with no code");

    std::vector<OutSegment> segs;

    OutSegment text;
    text.vaddr = prog.textBase;
    text.bytes.reserve(prog.code.size() * 4);
    for (uint32_t word : prog.code)
        for (unsigned i = 0; i < 4; ++i)
            text.bytes.push_back(uint8_t(word >> (8 * i)));
    text.memSize = text.bytes.size();
    text.flags = 4 | 1; // R+X
    segs.push_back(std::move(text));

    if (!prog.data.empty()) {
        OutSegment data;
        data.vaddr = prog.dataBase;
        data.bytes = prog.data;
        data.memSize = data.bytes.size();
        data.flags = 4 | 2; // R+W
        segs.push_back(std::move(data));
    }
    for (const Program::Segment &extra : prog.segments) {
        OutSegment seg;
        seg.vaddr = extra.vaddr;
        seg.bytes = extra.bytes;
        seg.memSize = extra.memSize ? extra.memSize
                                    : extra.bytes.size();
        seg.flags = 4 | 2;
        segs.push_back(std::move(seg));
    }

    // Layout: header + program header table, then each segment at a
    // file offset congruent to its vaddr modulo the page size (the
    // standard loadable-segment invariant real kernels require).
    uint64_t offset = ehdrSize + segs.size() * phentSize;
    for (OutSegment &seg : segs) {
        const uint64_t misalign = seg.vaddr & (pageAlign - 1);
        offset = alignUp(offset, pageAlign) + misalign;
        seg.offset = offset;
        offset += seg.bytes.size();
    }

    std::vector<uint8_t> image;
    image.reserve(size_t(offset));

    // ELF header.
    const uint8_t ident[16] = {0x7f, 'E', 'L', 'F',
                               2,  // ELFCLASS64
                               1,  // ELFDATA2LSB
                               1,  // EV_CURRENT
                               0, 0, 0, 0, 0, 0, 0, 0, 0};
    image.insert(image.end(), ident, ident + 16);
    put<uint16_t>(image, 2);    // e_type = ET_EXEC
    put<uint16_t>(image, 243);  // e_machine = EM_RISCV
    put<uint32_t>(image, 1);    // e_version
    put<uint64_t>(image, prog.entry);
    put<uint64_t>(image, ehdrSize); // e_phoff: right after the header
    put<uint64_t>(image, 0);    // e_shoff: no sections
    put<uint32_t>(image, 0);    // e_flags
    put<uint16_t>(image, uint16_t(ehdrSize));
    put<uint16_t>(image, uint16_t(phentSize));
    put<uint16_t>(image, uint16_t(segs.size()));
    put<uint16_t>(image, 0);    // e_shentsize
    put<uint16_t>(image, 0);    // e_shnum
    put<uint16_t>(image, 0);    // e_shstrndx

    // Program header table.
    for (const OutSegment &seg : segs) {
        put<uint32_t>(image, 1); // PT_LOAD
        put<uint32_t>(image, seg.flags);
        put<uint64_t>(image, seg.offset);
        put<uint64_t>(image, seg.vaddr);
        put<uint64_t>(image, seg.vaddr); // p_paddr mirrors p_vaddr
        put<uint64_t>(image, seg.bytes.size());
        put<uint64_t>(image, seg.memSize);
        put<uint64_t>(image, pageAlign);
    }

    // Segment contents at their assigned offsets.
    for (const OutSegment &seg : segs) {
        image.resize(size_t(seg.offset), 0);
        image.insert(image.end(), seg.bytes.begin(), seg.bytes.end());
    }
    return image;
}

void
writeElfFile(const std::string &path, const Program &prog)
{
    const std::vector<uint8_t> image = buildElfImage(prog);
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    out.write(reinterpret_cast<const char *>(image.data()),
              std::streamsize(image.size()));
    if (!out)
        fatal("failed writing ELF image to '%s'", path.c_str());
}

Workload
makeElfWorkload(const std::string &name,
                const std::string &description,
                std::vector<uint8_t> image,
                std::vector<std::string> argv, std::string stdin_data)
{
    Workload workload;
    workload.name = name;
    workload.suite = Suite::MiBench;
    workload.description = description;
    workload.makeProgram = [image = std::move(image),
                            argv = std::move(argv),
                            stdin_data = std::move(stdin_data)] {
        Program prog = loadElf(image);
        if (!argv.empty())
            prog.argv = argv;
        prog.stdinData = stdin_data;
        return prog;
    };
    return workload;
}

} // namespace helios
