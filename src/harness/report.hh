/**
 * @file
 * Plain-text table formatting for the bench binaries: fixed-width
 * columns, a header, and per-row cells, in the spirit of the paper's
 * tables and figure series.
 */

#ifndef HARNESS_REPORT_HH
#define HARNESS_REPORT_HH

#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

namespace helios
{

/** A simple fixed-width text table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Format a double with @a digits decimals. */
    static std::string num(double value, int digits = 2);

    /** Format a percentage (value is a ratio). */
    static std::string pct(double ratio, int digits = 1);

    std::string toString() const;
    void print() const;

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

/** Print the standard bench banner (config summary). */
void printBenchHeader(const std::string &title,
                      const std::string &description);

/** Wall-clock stopwatch for reporting experiment throughput. */
class Stopwatch
{
  public:
    Stopwatch() : start(std::chrono::steady_clock::now()) {}

    /** Seconds elapsed since construction. */
    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start;
};

/**
 * Print the standard matrix-timing footer: how many cells ran, on how
 * many worker threads, in how long. Bench binaries call this so the
 * throughput of a sweep is always visible.
 */
void printMatrixTiming(size_t cells, unsigned jobs, double seconds);

} // namespace helios

#endif // HARNESS_REPORT_HH
