/**
 * @file
 * The report-diff core shared by bench/compare_reports and
 * `helios_db diff`: match two RunReportFiles by (workload, mode) and
 * flag regressions — IPC drops, fusion-coverage drops, committed-
 * instruction drift under an identical budget, per-site coverage
 * regressions (schema v2 profiles), and differential-harness verdicts
 * carried by the current file. A regressing pair is annotated with
 * its top counter deltas so the first diagnostic step needs no second
 * tool.
 *
 * Output is rendered into a string, one line per finding, in exactly
 * the format compare_reports has always printed (VERDICT / MISSING /
 * IPC / COVERAGE / INSTS / SITE / ok) — CI greps and the test suite
 * key on those spellings. The summary line and exit-status policy
 * stay with the callers.
 */

#ifndef HARNESS_REPORT_DIFF_HH
#define HARNESS_REPORT_DIFF_HH

#include <string>

namespace helios
{

struct RunReportFile;

struct ReportDiffOptions
{
    double ipcTolerance = 0.02;      ///< max relative IPC drop
    double coverageTolerance = 0.01; ///< max coverage drop (fraction)
    bool verbose = false;            ///< also print clean "ok" pairs
    size_t topCounterDeltas = 5;     ///< counters listed per regression
};

struct ReportDiffResult
{
    unsigned matched = 0;     ///< (workload, mode) pairs compared
    unsigned regressions = 0; ///< flagged pairs + missing runs + verdicts

    bool clean() const { return regressions == 0; }
};

/**
 * Diff @a current against @a baseline, appending findings to @a out.
 * Never throws on content (only malformed files do, upstream in
 * RunReportFile parsing); host sections are ignored by design.
 */
ReportDiffResult diffReportFiles(const RunReportFile &baseline,
                                 const RunReportFile &current,
                                 const ReportDiffOptions &options,
                                 std::string &out);

} // namespace helios

#endif // HARNESS_REPORT_DIFF_HH
