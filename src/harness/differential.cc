#include "harness/differential.hh"

#include <cmath>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"
#include "uarch/auditor.hh"

namespace helios
{

std::string
DiffViolation::toJson() const
{
    std::ostringstream out;
    out << "{\"workload\":\"" << jsonEscape(workload) << "\""
        << ",\"mode\":\"" << fusionModeName(mode) << "\""
        << ",\"check\":\"" << jsonEscape(check) << "\""
        << ",\"seq\":" << seq << ",\"cycle\":" << cycle
        << ",\"detail\":\"" << jsonEscape(detail) << "\"}";
    return out.str();
}

std::string
DiffReport::toJson() const
{
    std::ostringstream out;
    out << "{\"ok\":" << (ok() ? "true" : "false")
        << ",\"audited\":" << (audited ? "true" : "false")
        << ",\"workloads\":" << workloads.size()
        << ",\"modes\":[";
    for (size_t m = 0; m < modes.size(); ++m)
        out << (m ? "," : "") << "\"" << fusionModeName(modes[m]) << "\"";
    out << "],\"violations\":[";
    for (size_t v = 0; v < violations.size(); ++v)
        out << (v ? "," : "") << violations[v].toJson();
    out << "],\"results\":[";
    for (size_t r = 0; r < results.size(); ++r) {
        const RunResult &res = results[r];
        out << (r ? "," : "")
            << "{\"workload\":\"" << jsonEscape(res.workload) << "\""
            << ",\"mode\":\"" << fusionModeName(res.mode) << "\""
            << ",\"cycles\":" << res.cycles
            << ",\"instructions\":" << res.instructions
            << ",\"uops\":" << res.uops
            << ",\"ipc\":" << res.ipc() << "}";
    }
    out << "]}";
    return out.str();
}

DiffReport
runDifferential(const std::vector<const Workload *> &workloads,
                const DiffOptions &opts)
{
    if (opts.modes.size() < 2)
        fatal("differential run needs at least two fusion modes "
              "(got %zu)", opts.modes.size());
    if (opts.audit && !auditHooksCompiled())
        fatal("differential audit requested but the pipeline audit "
              "hooks were compiled out; rebuild with -DHELIOS_AUDIT=ON");

    const size_t num_modes = opts.modes.size();

    std::vector<MatrixCell> cells;
    cells.reserve(workloads.size() * num_modes);
    for (const Workload *workload : workloads) {
        helios_assert(workload, "differential cell without a workload");
        for (FusionMode mode : opts.modes) {
            CoreParams params = CoreParams::icelake(mode);
            params.audit = opts.audit;
            cells.emplace_back(*workload, params, opts.maxInsts);
        }
    }

    DiffReport report;
    report.modes = opts.modes;
    report.audited = opts.audit;
    for (const Workload *workload : workloads)
        report.workloads.push_back(workload->name);
    report.results = runMatrix(cells, opts.jobs);

    auto add = [&report](const RunResult &res, std::string check,
                         std::string detail, uint64_t seq = 0,
                         uint64_t cycle = 0) {
        DiffViolation violation;
        violation.workload = res.workload;
        violation.mode = res.mode;
        violation.check = std::move(check);
        violation.detail = std::move(detail);
        violation.seq = seq;
        violation.cycle = cycle;
        report.violations.push_back(std::move(violation));
    };

    for (size_t w = 0; w < workloads.size(); ++w) {
        const RunResult &base = report.result(w, 0);
        for (size_t m = 0; m < num_modes; ++m) {
            const RunResult &res = report.result(w, m);
            std::ostringstream detail;

            // (a) identical final architectural state.
            if (res.archChecksum != base.archChecksum ||
                res.exited != base.exited ||
                res.exitCode != base.exitCode) {
                detail << "arch checksum 0x" << std::hex
                       << res.archChecksum << " != baseline 0x"
                       << base.archChecksum << std::dec << " (exited "
                       << res.exited << "/" << base.exited << ")";
                add(res, "arch_state", detail.str());
            } else if (res.memChecksum != base.memChecksum) {
                detail << "memory checksum 0x" << std::hex
                       << res.memChecksum << " != baseline 0x"
                       << base.memChecksum << std::dec;
                add(res, "mem_state", detail.str());
            }

            // (b) committed counts: the pipeline must commit exactly
            // the architectural instructions the hart executed, and
            // every mode must agree.
            if (res.instructions != res.hartInstructions) {
                detail.str("");
                detail << "committed " << res.instructions
                       << " instructions, hart executed "
                       << res.hartInstructions;
                add(res, "commit_count", detail.str());
            } else if (res.instructions != base.instructions) {
                detail.str("");
                detail << "committed " << res.instructions
                       << " instructions, baseline committed "
                       << base.instructions;
                add(res, "commit_count", detail.str());
            }

            // (c) fused configurations must not run slower than the
            // unfused baseline beyond the tolerance.
            if (m > 0 &&
                res.ipc() < base.ipc() * (1.0 - opts.ipcTolerance)) {
                detail.str("");
                detail << "ipc " << res.ipc() << " below baseline "
                       << base.ipc() << " - " << opts.ipcTolerance * 100
                       << "%";
                add(res, "ipc_regression", detail.str());
            }

            // (d) per-run invariant audit.
            for (const AuditViolation &av : res.auditViolations)
                add(res, "audit." + av.invariant, av.detail, av.seq,
                    av.cycle);
        }
    }

    return report;
}

DiffReport
runDifferentialAll(const DiffOptions &opts)
{
    std::vector<const Workload *> workloads;
    for (const Workload &workload : allWorkloads())
        workloads.push_back(&workload);
    return runDifferential(workloads, opts);
}

} // namespace helios
