#include "harness/differential.hh"

#include <cmath>
#include <sstream>

#include "asm/assembler.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "harness/elf_image.hh"
#include "sim/hart.hh"
#include "sim/memory.hh"
#include "uarch/auditor.hh"

namespace helios
{

std::string
DiffViolation::toJson() const
{
    std::ostringstream out;
    out << "{\"workload\":\"" << jsonEscape(workload) << "\""
        << ",\"mode\":\"" << fusionModeName(mode) << "\""
        << ",\"check\":\"" << jsonEscape(check) << "\""
        << ",\"seq\":" << seq << ",\"cycle\":" << cycle
        << ",\"detail\":\"" << jsonEscape(detail) << "\"}";
    return out.str();
}

std::string
DiffReport::toJson() const
{
    std::ostringstream out;
    out << "{\"ok\":" << (ok() ? "true" : "false")
        << ",\"audited\":" << (audited ? "true" : "false")
        << ",\"workloads\":" << workloads.size()
        << ",\"modes\":[";
    for (size_t m = 0; m < modes.size(); ++m)
        out << (m ? "," : "") << "\"" << fusionModeName(modes[m]) << "\"";
    out << "],\"violations\":[";
    for (size_t v = 0; v < violations.size(); ++v)
        out << (v ? "," : "") << violations[v].toJson();
    out << "],\"results\":[";
    for (size_t r = 0; r < results.size(); ++r) {
        const RunResult &res = results[r];
        out << (r ? "," : "")
            << "{\"workload\":\"" << jsonEscape(res.workload) << "\""
            << ",\"mode\":\"" << fusionModeName(res.mode) << "\""
            << ",\"cycles\":" << res.cycles
            << ",\"instructions\":" << res.instructions
            << ",\"uops\":" << res.uops
            << ",\"ipc\":" << res.ipc() << "}";
    }
    out << "]}";
    return out.str();
}

DiffReport
runDifferential(const std::vector<const Workload *> &workloads,
                const DiffOptions &opts)
{
    if (opts.modes.size() < 2)
        fatal("differential run needs at least two fusion modes "
              "(got %zu)", opts.modes.size());
    if (opts.audit && !auditHooksCompiled())
        fatal("differential audit requested but the pipeline audit "
              "hooks were compiled out; rebuild with -DHELIOS_AUDIT=ON");

    const size_t num_modes = opts.modes.size();

    std::vector<MatrixCell> cells;
    cells.reserve(workloads.size() * num_modes);
    for (const Workload *workload : workloads) {
        helios_assert(workload, "differential cell without a workload");
        for (FusionMode mode : opts.modes) {
            CoreParams params = CoreParams::icelake(mode);
            params.audit = opts.audit;
            cells.emplace_back(*workload, params, opts.maxInsts);
        }
    }

    DiffReport report;
    report.modes = opts.modes;
    report.audited = opts.audit;
    for (const Workload *workload : workloads)
        report.workloads.push_back(workload->name);
    report.results = runMatrix(cells, opts.jobs);

    auto add = [&report](const RunResult &res, std::string check,
                         std::string detail, uint64_t seq = 0,
                         uint64_t cycle = 0) {
        DiffViolation violation;
        violation.workload = res.workload;
        violation.mode = res.mode;
        violation.check = std::move(check);
        violation.detail = std::move(detail);
        violation.seq = seq;
        violation.cycle = cycle;
        report.violations.push_back(std::move(violation));
    };

    for (size_t w = 0; w < workloads.size(); ++w) {
        const RunResult &base = report.result(w, 0);
        for (size_t m = 0; m < num_modes; ++m) {
            const RunResult &res = report.result(w, m);
            std::ostringstream detail;

            // (a) identical final architectural state.
            if (res.archChecksum != base.archChecksum ||
                res.exited != base.exited ||
                res.exitCode != base.exitCode) {
                detail << "arch checksum 0x" << std::hex
                       << res.archChecksum << " != baseline 0x"
                       << base.archChecksum << std::dec << " (exited "
                       << res.exited << "/" << base.exited << ")";
                add(res, "arch_state", detail.str());
            } else if (res.memChecksum != base.memChecksum) {
                detail << "memory checksum 0x" << std::hex
                       << res.memChecksum << " != baseline 0x"
                       << base.memChecksum << std::dec;
                add(res, "mem_state", detail.str());
            }

            // (b) committed counts: the pipeline must commit exactly
            // the architectural instructions the hart executed, and
            // every mode must agree.
            if (res.instructions != res.hartInstructions) {
                detail.str("");
                detail << "committed " << res.instructions
                       << " instructions, hart executed "
                       << res.hartInstructions;
                add(res, "commit_count", detail.str());
            } else if (res.instructions != base.instructions) {
                detail.str("");
                detail << "committed " << res.instructions
                       << " instructions, baseline committed "
                       << base.instructions;
                add(res, "commit_count", detail.str());
            }

            // (c) fused configurations must not run slower than the
            // unfused baseline beyond the tolerance.
            if (m > 0 &&
                res.ipc() < base.ipc() * (1.0 - opts.ipcTolerance)) {
                detail.str("");
                detail << "ipc " << res.ipc() << " below baseline "
                       << base.ipc() << " - " << opts.ipcTolerance * 100
                       << "%";
                add(res, "ipc_regression", detail.str());
            }

            // (d) per-run invariant audit.
            for (const AuditViolation &av : res.auditViolations)
                add(res, "audit." + av.invariant, av.detail, av.seq,
                    av.cycle);
        }
    }

    return report;
}

DiffReport
runDifferentialAll(const DiffOptions &opts)
{
    std::vector<const Workload *> workloads;
    for (const Workload &workload : allWorkloads())
        workloads.push_back(&workload);
    return runDifferential(workloads, opts);
}

std::string
EngineDiffViolation::toJson() const
{
    std::ostringstream out;
    out << "{\"workload\":\"" << jsonEscape(workload) << "\""
        << ",\"check\":\"" << jsonEscape(check) << "\""
        << ",\"seq\":" << seq
        << ",\"detail\":\"" << jsonEscape(detail) << "\"}";
    return out.str();
}

std::string
EngineDiffReport::toJson() const
{
    std::ostringstream out;
    out << "{\"ok\":" << (ok() ? "true" : "false")
        << ",\"workloads\":" << workloads.size()
        << ",\"traced_instructions\":" << tracedInstructions
        << ",\"untraced_instructions\":" << untracedInstructions
        << ",\"violations\":[";
    for (size_t v = 0; v < violations.size(); ++v)
        out << (v ? "," : "") << violations[v].toJson();
    out << "]}";
    return out.str();
}

const Workload &
smcPatchWorkload()
{
    static const Workload workload = [] {
        Workload w;
        w.name = "smc_patch";
        w.suite = Suite::MiBench;
        w.description =
            "self-modifying loop: rewrites its addi immediate in text "
            "every iteration (decoder-cache invalidation stress)";
        // Each iteration executes `addi t1, zero, <imm>`, folds t1
        // into the checksum, then stores a freshly encoded word over
        // that very addi, setting <imm> to the loop counter:
        // (imm << 20) | (rd=t1 << 7) | 0x13.
        w.source = R"(
            li s0, 0
            li s1, 64
            la t0, patch
        loop:
        patch:
            addi t1, zero, 0
            add s0, s0, t1
            slli t2, s1, 20
            li t3, 0x313
            or t2, t2, t3
            sw t2, 0(t0)
            addi s1, s1, -1
            bnez s1, loop
            mv a0, s0
            li a7, 93
            ecall
        )";
        w.reference = [] {
            uint64_t sum = 0;
            uint64_t imm = 0;
            for (int i = 64; i >= 1; --i) {
                sum += imm;
                imm = uint64_t(i);
            }
            return sum;
        };
        return w;
    }();
    return workload;
}

EngineDiffReport
runEngineDifferential(const std::vector<const Workload *> &workloads,
                      uint64_t max_insts, uint64_t traced_insts)
{
    EngineDiffReport report;
    for (const Workload *workload : workloads) {
        report.workloads.push_back(workload->name);
        const auto add = [&](const std::string &check,
                             const std::string &detail,
                             uint64_t seq = 0) {
            report.violations.push_back(
                {workload->name, check, detail, seq});
        };
        std::ostringstream detail;

        // 1. Traced lockstep: the engines must emit byte-identical
        // DynInst records in program order.
        {
            Memory ref_mem, fast_mem;
            Hart ref(ref_mem), fast(fast_mem);
            ref.reset(workload->program());
            fast.reset(workload->program());
            DynInst a, b;
            for (uint64_t n = 0; n < traced_insts; ++n) {
                const bool more_ref = ref.step(a);
                const bool more_fast = fast.stepFast(b);
                if (more_ref != more_fast) {
                    detail.str("");
                    detail << "after " << n << " records the "
                           << (more_ref ? "fast" : "reference")
                           << " engine exited first";
                    add("trace_length", detail.str(), n);
                    break;
                }
                if (!more_ref)
                    break;
                ++report.tracedInstructions;
                if (a.seq != b.seq || a.pc != b.pc ||
                    a.nextPc != b.nextPc || a.effAddr != b.effAddr ||
                    a.taken != b.taken || a.inst.op != b.inst.op ||
                    a.inst.rd != b.inst.rd ||
                    a.inst.rs1 != b.inst.rs1 ||
                    a.inst.rs2 != b.inst.rs2 ||
                    a.inst.imm != b.inst.imm ||
                    a.inst.raw != b.inst.raw) {
                    detail.str("");
                    detail << "DynInst diverges at seq " << a.seq
                           << ": reference pc 0x" << std::hex << a.pc
                           << " raw 0x" << a.inst.raw << ", fast pc 0x"
                           << b.pc << " raw 0x" << b.inst.raw;
                    add("dyninst_stream", detail.str(), a.seq);
                    break;
                }
            }
        }

        // 2. Untraced end state: full-speed runs must land on the
        // same architectural fingerprint.
        const FunctionalResult ref_result =
            runFunctional(*workload, max_insts, false);
        const FunctionalResult fast_result =
            runFunctional(*workload, max_insts, true);
        report.untracedInstructions += ref_result.instructions;
        if (ref_result.instructions != fast_result.instructions) {
            detail.str("");
            detail << "reference executed " << ref_result.instructions
                   << " instructions, fast executed "
                   << fast_result.instructions;
            add("inst_count", detail.str());
        }
        if (ref_result.archChecksum != fast_result.archChecksum) {
            detail.str("");
            detail << "arch checksum 0x" << std::hex
                   << ref_result.archChecksum << " vs 0x"
                   << fast_result.archChecksum;
            add("arch_state", detail.str());
        }
        if (ref_result.memChecksum != fast_result.memChecksum) {
            detail.str("");
            detail << "memory checksum 0x" << std::hex
                   << ref_result.memChecksum << " vs 0x"
                   << fast_result.memChecksum;
            add("mem_state", detail.str());
        }
        if (ref_result.exited != fast_result.exited ||
            ref_result.exitCode != fast_result.exitCode) {
            detail.str("");
            detail << "exit state (" << ref_result.exited << ", "
                   << ref_result.exitCode << ") vs ("
                   << fast_result.exited << ", "
                   << fast_result.exitCode << ")";
            add("exit_state", detail.str());
        }
    }
    return report;
}

const Workload &
elfChecksumWorkload()
{
    static const Workload workload = [] {
        // The kernel is assembled in-process, packed into a static
        // ELF64 image and re-loaded through the real ELF frontend, so
        // the differential sweeps cover the loader + Linux-ABI start
        // stack + ecall shim exactly the way `helios_run --elf` does.
        // It exercises write(2) to the captured stdout, brk(2) heap
        // growth with stores/loads through the new break, and a
        // checksum loop whose result is the exit code.
        const Program prog = assemble(R"(
            la a1, msg
            li a7, 64
            li a0, 1
            li a2, 4
            ecall            # write "elf\n" -> 4

            li a7, 214
            li a0, 0
            ecall            # query the current program break
            mv s2, a0
            addi a0, a0, 1024
            li a7, 214
            ecall            # grow the heap by 1 KiB

            li s0, 0
            li s1, 32
            mv t1, s2
        loop:
            slli t2, s1, 3
            add t3, t2, s1   # value = 9 * i
            sd t3, 0(t1)
            ld t4, 0(t1)
            add s0, s0, t4
            addi t1, t1, 8
            addi s1, s1, -1
            bnez s1, loop
            mv a0, s0
            li a7, 93
            ecall
            .data
        msg:
            .asciz "elf\n"
        )");
        Workload w = makeElfWorkload(
            "elf_checksum",
            "ELF-loaded kernel: write + brk ecalls feeding a heap "
            "checksum loop (loader/shim differential coverage)",
            buildElfImage(prog));
        w.reference = [] {
            uint64_t sum = 0;
            for (uint64_t i = 1; i <= 32; ++i)
                sum += 9 * i;
            return sum;
        };
        return w;
    }();
    return workload;
}

EngineDiffReport
runEngineDifferentialAll(uint64_t max_insts, uint64_t traced_insts)
{
    std::vector<const Workload *> workloads;
    for (const Workload &workload : allWorkloads())
        workloads.push_back(&workload);
    workloads.push_back(&smcPatchWorkload());
    workloads.push_back(&elfChecksumWorkload());
    return runEngineDifferential(workloads, max_insts, traced_insts);
}

} // namespace helios
