/**
 * @file
 * Dynamic-stream characterization for the paper's motivation figures
 * (Figures 2, 4 and 5): idiom frequency, consecutive memory pair
 * categories and non-consecutive fusion potential. These analyses run
 * over the functional instruction stream, independent of the timing
 * model, exactly as a trace study would.
 *
 * Each analysis is a streaming accumulator — feed it one DynInst at a
 * time (e.g. from forEachDynInst()) and read the stats at the end —
 * so characterizing a 500M-instruction region never materializes the
 * dynamic stream. The vector-taking functions are thin wrappers kept
 * for tests and small traces.
 */

#ifndef HARNESS_ANALYSIS_HH
#define HARNESS_ANALYSIS_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/trace.hh"

namespace helios
{

/** Figure 2: fused µ-ops by idiom class, relative to dynamic µ-ops. */
struct IdiomStats
{
    uint64_t totalUops = 0;
    uint64_t memoryPairUops = 0; ///< µ-ops in load/store pair idioms
    uint64_t otherPairUops = 0;  ///< µ-ops in the non-memory idioms

    double memoryFraction() const;
    double othersFraction() const;
};

/** Streaming Figure 2 analysis: greedy non-overlapping idiom pairing. */
class IdiomAccumulator
{
  public:
    void add(const DynInst &dyn);
    const IdiomStats &stats() const { return theStats; }

  private:
    IdiomStats theStats;
    DynInst pending;
    bool havePending = false;
};

IdiomStats analyzeIdioms(const std::vector<DynInst> &trace);

/** Figure 4: consecutive memory pairs by address relationship. */
struct CsfCategoryStats
{
    uint64_t totalUops = 0;
    uint64_t contiguous = 0;  ///< exactly adjacent bytes
    uint64_t overlapping = 0; ///< overlapping bytes
    uint64_t sameLine = 0;    ///< same 64 B line, gap between accesses
    uint64_t nextLine = 0;    ///< two contiguous cache lines

    double fraction(uint64_t pairs) const;
};

/** Streaming Figure 4 analysis. */
class CsfCategoryAccumulator
{
  public:
    explicit CsfCategoryAccumulator(unsigned line_bytes = 64)
        : lineBytes(line_bytes)
    {}

    void add(const DynInst &dyn);
    const CsfCategoryStats &stats() const { return theStats; }

  private:
    CsfCategoryStats theStats;
    unsigned lineBytes;
    DynInst pending;
    bool havePending = false;
};

CsfCategoryStats analyzeCsfCategories(const std::vector<DynInst> &trace,
                                      unsigned line_bytes = 64);

/** Figure 5: additional potential of NCSF and DBR fusion. */
struct NcsfPotentialStats
{
    uint64_t totalUops = 0;
    uint64_t csfSbr = 0;     ///< consecutive, same base register
    uint64_t csfDbr = 0;     ///< consecutive, different base register
    uint64_t ncsfSbr = 0;    ///< non-consecutive, same base
    uint64_t ncsfDbr = 0;    ///< non-consecutive, different base
    uint64_t asymmetric = 0; ///< pairs with different access widths

    uint64_t pairs() const { return csfSbr + csfDbr + ncsfSbr + ncsfDbr; }
    double fraction(uint64_t pairs) const;
};

/**
 * Streaming Figure 5 analysis. Keeps only the sliding window of
 * unpaired memory µ-ops (bounded by @a window), not the trace.
 */
class NcsfPotentialAccumulator
{
  public:
    explicit NcsfPotentialAccumulator(unsigned window = 64,
                                      unsigned region_bytes = 64)
        : window(window), regionBytes(region_bytes)
    {}

    void add(const DynInst &dyn);
    const NcsfPotentialStats &stats() const { return theStats; }

  private:
    struct Candidate
    {
        DynInst dyn;
        uint64_t index;
        bool paired;
    };

    NcsfPotentialStats theStats;
    unsigned window;
    unsigned regionBytes;
    uint64_t nextIndex = 0;
    std::deque<Candidate> recent; ///< unpaired memory µ-ops, newest last
};

NcsfPotentialStats
analyzeNcsfPotential(const std::vector<DynInst> &trace,
                     unsigned window = 64, unsigned region_bytes = 64);

} // namespace helios

#endif // HARNESS_ANALYSIS_HH
