/**
 * @file
 * Dynamic-stream characterization for the paper's motivation figures
 * (Figures 2, 4 and 5): idiom frequency, consecutive memory pair
 * categories and non-consecutive fusion potential. These analyses run
 * over the functional instruction stream, independent of the timing
 * model, exactly as a trace study would.
 */

#ifndef HARNESS_ANALYSIS_HH
#define HARNESS_ANALYSIS_HH

#include <cstdint>
#include <vector>

#include "sim/trace.hh"

namespace helios
{

/** Figure 2: fused µ-ops by idiom class, relative to dynamic µ-ops. */
struct IdiomStats
{
    uint64_t totalUops = 0;
    uint64_t memoryPairUops = 0; ///< µ-ops in load/store pair idioms
    uint64_t otherPairUops = 0;  ///< µ-ops in the non-memory idioms

    double memoryFraction() const;
    double othersFraction() const;
};

IdiomStats analyzeIdioms(const std::vector<DynInst> &trace);

/** Figure 4: consecutive memory pairs by address relationship. */
struct CsfCategoryStats
{
    uint64_t totalUops = 0;
    uint64_t contiguous = 0;  ///< exactly adjacent bytes
    uint64_t overlapping = 0; ///< overlapping bytes
    uint64_t sameLine = 0;    ///< same 64 B line, gap between accesses
    uint64_t nextLine = 0;    ///< two contiguous cache lines

    double fraction(uint64_t pairs) const;
};

CsfCategoryStats analyzeCsfCategories(const std::vector<DynInst> &trace,
                                      unsigned line_bytes = 64);

/** Figure 5: additional potential of NCSF and DBR fusion. */
struct NcsfPotentialStats
{
    uint64_t totalUops = 0;
    uint64_t csfSbr = 0;     ///< consecutive, same base register
    uint64_t csfDbr = 0;     ///< consecutive, different base register
    uint64_t ncsfSbr = 0;    ///< non-consecutive, same base
    uint64_t ncsfDbr = 0;    ///< non-consecutive, different base
    uint64_t asymmetric = 0; ///< pairs with different access widths

    uint64_t pairs() const { return csfSbr + csfDbr + ncsfSbr + ncsfDbr; }
    double fraction(uint64_t pairs) const;
};

NcsfPotentialStats
analyzeNcsfPotential(const std::vector<DynInst> &trace,
                     unsigned window = 64, unsigned region_bytes = 64);

} // namespace helios

#endif // HARNESS_ANALYSIS_HH
