/**
 * @file
 * In-repo ELF64 image builder.
 *
 * The build container has no RISC-V cross-compiler, so the repo
 * cannot test the ELF frontend against toolchain-emitted binaries.
 * This builder closes the loop hermetically: it packs the output of
 * our own assembler into a valid statically-linked ELF64 executable
 * (ELF header + one RX text PT_LOAD + RW PT_LOADs for the data blob
 * and any extra segments), which the loader (sim/elf_loader.hh) then
 * maps back. loadElf(buildElfImage(p)) reproduces p's text, data and
 * entry exactly — tests assert it — and the same builder generates
 * the RV64IM conformance corpus (tests/test_conformance.cc) and the
 * fuzz seeds (tests/test_elf_loader.cc).
 */

#ifndef HARNESS_ELF_IMAGE_HH
#define HARNESS_ELF_IMAGE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "asm/program.hh"
#include "workloads/workloads.hh"

namespace helios
{

/**
 * Pack an assembled Program into a valid ELF64 RISC-V executable
 * image: text (RX) at prog.textBase, the data blob (RW) at
 * prog.dataBase when present, and every prog.segments entry as a
 * further RW PT_LOAD. fatal() when the program has no code.
 */
std::vector<uint8_t> buildElfImage(const Program &prog);

/** buildElfImage() and write the bytes to @a path (fatal on I/O). */
void writeElfFile(const std::string &path, const Program &prog);

/**
 * Wrap an ELF image as a Workload so it rides every existing harness
 * (runOne, runMatrix, the differential sweeps): program() loads the
 * image through loadElf() with @a argv and @a stdin_data applied.
 */
Workload makeElfWorkload(const std::string &name,
                         const std::string &description,
                         std::vector<uint8_t> image,
                         std::vector<std::string> argv = {},
                         std::string stdin_data = {});

} // namespace helios

#endif // HARNESS_ELF_IMAGE_HH
