/**
 * @file
 * Machine-readable run reports.
 *
 * A RunReport serializes everything one (workload, configuration)
 * timing run produced — configuration, headline numbers, the full
 * counter table, telemetry histograms, the exact CPI stack, and the
 * audit verdict — into a stable JSON schema. A RunReportFile bundles
 * the reports of a whole experiment matrix plus the differential
 * verdicts that compared them.
 *
 * The schema is the contract between the simulator and downstream
 * tooling (bench/compare_reports, CI baselines, plotting scripts):
 * reports round-trip through JSON losslessly (save → parse → equal),
 * so a committed baseline file can be diffed against a fresh run
 * without re-simulating. See OBSERVABILITY.md for the field-by-field
 * description.
 */

#ifndef HARNESS_RUN_REPORT_HH
#define HARNESS_RUN_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/stats.hh"
#include "harness/runner.hh"

namespace helios
{

struct DiffReport;

/** Schema version stamped into every report file. Bump on any change
 *  that is not purely additive.
 *
 *  v2 adds an optional per-run "profile" section (per-PC fusion-site
 *  counters, missed-opportunity attribution and windowed time-series
 *  samples; see OBSERVABILITY.md) and an optional "program_hash"
 *  field (FNV-1a fingerprint of the program image the run executed;
 *  ELF frontend).
 *
 *  v3 adds an optional top-level "host" section (host telemetry:
 *  build provenance, per-phase wall-clock, peak RSS, guest and cell
 *  throughput; see telemetry/host_metrics.hh). Host data describes
 *  the machine the report was produced on, never the simulated
 *  result, so baseline comparisons (bench/compare_reports) ignore it
 *  entirely.
 *
 *  v4 adds an optional per-run "config_hash" field: the canonical
 *  FNV-1a digest of every result-affecting CoreParams field (see
 *  configHash in uarch/params.hh). Together with program_hash and the
 *  instruction budget it content-addresses a run — the key the run
 *  ledger (src/ledger) memoizes results under.
 *
 *  v5 adds an optional per-run "sampled" section: the full sampled-
 *  simulation record (sampling spec, fast-forward length, per-interval
 *  measurements, and weighted IPC / fusion-coverage estimates with
 *  95% confidence intervals; see harness/sampling.hh). Present only
 *  on reports produced by sampled runs; carried opaquely so files
 *  round-trip losslessly.
 *
 *  All additions are backward compatible: v1/v2/v3/v4 files parse
 *  unchanged (absent fields default to zero/null). */
constexpr unsigned kRunReportVersion = 5;

/** One (workload, configuration) run, ready for serialization. */
struct RunReport
{
    // Identity.
    std::string workload;
    std::string mode;        ///< fusionModeName() spelling
    uint64_t maxInsts = 0;   ///< instruction budget (0: unbounded)

    // Headline numbers.
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t uops = 0;
    double ipc = 0.0;

    // Architectural verdict (differential-harness inputs).
    uint64_t archChecksum = 0;
    uint64_t memChecksum = 0;
    uint64_t hartInstructions = 0;
    bool exited = false;
    uint64_t exitCode = 0;
    uint64_t programHash = 0; ///< Program::sourceHash fingerprint
    uint64_t configHash = 0;  ///< configHash(params); schema v4

    // Audit outcome (meaningful when audited is true).
    bool audited = false;
    uint64_t auditChecks = 0;
    uint64_t auditViolations = 0;

    // Full counter table and telemetry histograms.
    StatGroup stats;

    // Per-PC fusion-site profile (schema v2; present when the run was
    // profiled).
    bool profiled = false;
    ProfileData profile;

    /** Sampled-simulation section (schema v5). Null unless the run
     *  was produced by the interval sampler; carried opaquely —
     *  harness/sampling.hh SampledResult::fromJson decodes it. */
    JsonValue sampled;

    /** Exact CPI stack rebuilt from the cpi.* counters. */
    CpiStack cpiStack() const { return stats.cpiStack(cycles); }

    /** Derived: fraction of committed instructions covered by fused
     *  pairs (2 × fused pairs / committed instructions). */
    double fusionCoverage() const;

    JsonValue toJson() const;
    static RunReport fromJson(const JsonValue &value);

    bool operator==(const RunReport &other) const;
};

/** Build a report from a finished run. */
RunReport makeRunReport(const RunResult &result, uint64_t max_insts = 0);

/** One differential-harness verdict attached to a report file. */
struct ReportVerdict
{
    std::string workload;
    std::string mode;
    std::string check;  ///< e.g. "arch_state", "ipc_regression"
    std::string detail;

    JsonValue toJson() const;
    static ReportVerdict fromJson(const JsonValue &value);

    bool operator==(const ReportVerdict &other) const = default;
};

/**
 * A set of run reports (one experiment matrix) plus the differential
 * verdicts that compared them. This is the on-disk artifact CI
 * uploads and compare_reports diffs.
 */
struct RunReportFile
{
    unsigned version = kRunReportVersion;
    std::string generator; ///< tool that wrote the file (free-form)
    std::vector<RunReport> runs;
    std::vector<ReportVerdict> verdicts;

    /** Host-telemetry section (schema v3). Null when the producing
     *  process ran without host metrics; carried opaquely so files
     *  round-trip losslessly, ignored by report comparisons. */
    JsonValue host;

    void add(const RunResult &result, uint64_t max_insts = 0);

    /** Fold a differential report in: every cell result plus every
     *  violation as a verdict. */
    void addDifferential(const DiffReport &report, uint64_t max_insts);

    /** Find a run by (workload, mode); nullptr when absent. */
    const RunReport *find(const std::string &workload,
                          const std::string &mode) const;

    JsonValue toJson() const;
    static RunReportFile fromJson(const JsonValue &value);

    /** Serialize to pretty-printed JSON text. */
    std::string toJsonText() const;

    /** Parse back from JSON text; fatal() on malformed input or an
     *  unsupported schema version. */
    static RunReportFile fromJsonText(const std::string &text);

    /** Write to @a path (fatal() on I/O failure). */
    void save(const std::string &path) const;

    /** Load from @a path (fatal() on I/O failure or bad schema). */
    static RunReportFile load(const std::string &path);

    bool operator==(const RunReportFile &other) const;
};

/**
 * Stamp the current host-metrics snapshot into @a file's `host`
 * section when host metrics collection is enabled (--metrics /
 * HELIOS_METRICS); a no-op otherwise. Producers call this right
 * before save() so the report records the cost of making it.
 */
void attachHostSection(RunReportFile &file);

} // namespace helios

#endif // HARNESS_RUN_REPORT_HH
