#include "harness/report_diff.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "harness/run_report.hh"

namespace helios
{

namespace
{

/**
 * Append the most-changed counters between two regressing runs,
 * largest relative move first. Counters present in only one run count
 * as a full move.
 */
void
appendTopCounterDeltas(const RunReport &base, const RunReport &cur,
                       size_t top_n, std::string &out)
{
    struct Delta
    {
        std::string name;
        uint64_t before, after;
        double rel;
    };
    std::vector<Delta> deltas;
    const auto consider = [&](const std::string &name, uint64_t before,
                              uint64_t after) {
        if (before == after)
            return;
        const uint64_t reference = std::max(before, after);
        deltas.push_back(
            {name, before, after,
             before ? (double(after) - double(before)) / double(before)
                    : double(reference)});
    };
    for (const auto &[name, before] : base.stats.dump())
        consider(name, before, cur.stats.get(name));
    for (const auto &[name, after] : cur.stats.dump())
        if (base.stats.get(name) == 0 && after != 0)
            consider(name, 0, after);
    std::sort(deltas.begin(), deltas.end(),
              [](const Delta &a, const Delta &b) {
                  if (std::fabs(a.rel) != std::fabs(b.rel))
                      return std::fabs(a.rel) > std::fabs(b.rel);
                  return std::max(a.before, a.after) >
                         std::max(b.before, b.after);
              });
    if (deltas.size() > top_n)
        deltas.resize(top_n);
    for (const Delta &delta : deltas)
        out += strFormat("         %-32s %12llu -> %-12llu (%+.1f%%)\n",
                         delta.name.c_str(),
                         (unsigned long long)delta.before,
                         (unsigned long long)delta.after,
                         100.0 * delta.rel);
}

/** A site hot enough that its coverage is statistically meaningful. */
constexpr uint64_t kSiteExecutionFloor = 128;

/**
 * Per-site coverage regression check (both runs profiled): flag every
 * hot baseline site whose coverage dropped more than the tolerance.
 * Returns the number of regressing sites.
 */
unsigned
compareSites(const RunReport &base, const RunReport &cur,
             double coverage_tolerance, std::string &out)
{
    unsigned regressions = 0;
    for (const ProfileSite &site : base.profile.sites) {
        if (site.executions < kSiteExecutionFloor)
            continue;
        const ProfileSite *now = cur.profile.find(site.pc);
        const double before = site.coverage();
        const double after = now ? now->coverage() : 0.0;
        if (after < before - coverage_tolerance) {
            out += strFormat("SITE     %s/%s pc 0x%llx coverage "
                             "%.4f -> %.4f (tolerance -%.2f pp)\n",
                             base.workload.c_str(), base.mode.c_str(),
                             (unsigned long long)site.pc, before, after,
                             100.0 * coverage_tolerance);
            ++regressions;
        }
    }
    return regressions;
}

} // namespace

ReportDiffResult
diffReportFiles(const RunReportFile &baseline,
                const RunReportFile &current,
                const ReportDiffOptions &options, std::string &out)
{
    ReportDiffResult result;

    for (const ReportVerdict &verdict : current.verdicts) {
        out += strFormat("VERDICT  %s/%s %s: %s\n",
                         verdict.workload.c_str(), verdict.mode.c_str(),
                         verdict.check.c_str(), verdict.detail.c_str());
        ++result.regressions;
    }

    for (const RunReport &base : baseline.runs) {
        const RunReport *cur = current.find(base.workload, base.mode);
        if (!cur) {
            out += strFormat("MISSING  %s/%s present in baseline only\n",
                             base.workload.c_str(), base.mode.c_str());
            ++result.regressions;
            continue;
        }
        ++result.matched;

        const double ipc_ratio =
            base.ipc > 0 ? cur->ipc / base.ipc : 1.0;
        const double coverage_delta =
            cur->fusionCoverage() - base.fusionCoverage();

        bool bad = false;
        if (ipc_ratio < 1.0 - options.ipcTolerance) {
            out += strFormat("IPC      %s/%s %.4f -> %.4f "
                             "(%.2f%%, tolerance -%.2f%%)\n",
                             base.workload.c_str(), base.mode.c_str(),
                             base.ipc, cur->ipc,
                             100.0 * (ipc_ratio - 1.0),
                             100.0 * options.ipcTolerance);
            bad = true;
        }
        if (coverage_delta < -options.coverageTolerance) {
            out += strFormat("COVERAGE %s/%s %.4f -> %.4f "
                             "(tolerance -%.2f pp)\n",
                             base.workload.c_str(), base.mode.c_str(),
                             base.fusionCoverage(),
                             cur->fusionCoverage(),
                             100.0 * options.coverageTolerance);
            bad = true;
        }
        if (base.maxInsts == cur->maxInsts &&
            base.instructions != cur->instructions) {
            out += strFormat("INSTS    %s/%s committed %llu -> %llu "
                             "under the same budget\n",
                             base.workload.c_str(), base.mode.c_str(),
                             (unsigned long long)base.instructions,
                             (unsigned long long)cur->instructions);
            bad = true;
        }
        if (base.profiled && cur->profiled &&
            compareSites(base, *cur, options.coverageTolerance,
                         out) > 0)
            bad = true;
        if (bad) {
            appendTopCounterDeltas(base, *cur,
                                   options.topCounterDeltas, out);
            ++result.regressions;
        } else if (options.verbose) {
            out += strFormat("ok       %s/%s IPC %.4f -> %.4f "
                             "(%+.2f%%), coverage %.4f -> %.4f\n",
                             base.workload.c_str(), base.mode.c_str(),
                             base.ipc, cur->ipc,
                             100.0 * (ipc_ratio - 1.0),
                             base.fusionCoverage(),
                             cur->fusionCoverage());
        }
    }

    return result;
}

} // namespace helios
