/**
 * @file
 * Sampled simulation: checkpointed fast-forward plus interval timing
 * samples with confidence intervals.
 *
 * The paper-scale problem: detailed simulation runs at ~100 K
 * cycles/s while the functional fast-forward engine runs at hundreds
 * of M inst/s, so cycle-level cost on every instruction caps runs at
 * a few hundred thousand instructions. SMARTS/SimPoint-style interval
 * sampling buys the run length back: fast-forward functionally, cut
 * architectural checkpoints (sim/checkpoint.hh) at evenly spaced
 * interval starts, then run detailed warmup + a short measured window
 * from each checkpoint and aggregate the per-interval IPC into a
 * weighted mean with a 95% confidence interval.
 *
 * Each interval is an independent MatrixCell fed to the existing
 * runMatrix worker pool, so a 500M-instruction run becomes a
 * shardable set of restartable interval cells. Checkpoints are
 * configuration-independent — one checkpoint set (optionally
 * persisted under SamplingSpec::checkpointDir and reused across
 * processes) serves a whole configuration sweep.
 *
 * Estimator: with per-interval IPC x_i weighted by measured
 * instructions w_i,
 *
 *   mean      m  = Σ w_i x_i / Σ w_i
 *   variance  s² = (n / (n−1)) · Σ w̄_i (x_i − m)²,  w̄_i = w_i / Σ w_i
 *   95% CI       = m ± t_{0.975, n−1} · s / √n
 *
 * which reduces to the classic unweighted t-interval when all
 * windows measure the same instruction count (the common case; the
 * weights only matter when the program exits inside a window).
 * Fusion coverage (2·pairs/instructions) aggregates identically.
 */

#ifndef HARNESS_SAMPLING_HH
#define HARNESS_SAMPLING_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hh"
#include "harness/run_report.hh"
#include "harness/runner.hh"
#include "sim/checkpoint.hh"

namespace helios
{

/** What to sample: the frame, the window, and the warmup. */
struct SamplingSpec
{
    uint64_t totalBudget = 0;   ///< instructions the sample frame covers
    uint64_t intervalInsts = 0; ///< measured window per sample
    uint64_t warmupInsts = 0;   ///< detailed warmup before each window
    uint64_t sampleCount = 0;   ///< evenly spaced samples over the frame

    /** Optional checkpoint persistence directory (empty: in-memory
     *  only). Checkpoints in it are reused when the program hash and
     *  cut schedule match, so a sweep pays one fast-forward total. */
    std::string checkpointDir;

    /** Distance between interval starts: totalBudget / sampleCount. */
    uint64_t
    stride() const
    {
        return sampleCount ? totalBudget / sampleCount : 0;
    }

    /** FNV-1a digest of the numeric spec (budget, interval, warmup,
     *  count) — what the ledger keys a sampled run under, combined
     *  with the program and config hashes. The directory is excluded:
     *  where checkpoints live cannot change a result. */
    uint64_t specHash() const;

    /** fatal() on a spec that cannot produce a valid estimate: zero
     *  interval/count, warmup >= interval, or a frame too small for
     *  sampleCount disjoint warmup+interval windows. */
    void validate() const;
};

/** Checkpoints cut at the spec's interval starts by one functional
 *  fast-forward pass (or reloaded from checkpointDir). */
struct CheckpointSet
{
    std::vector<Checkpoint> checkpoints; ///< ascending cut order
    uint64_t ffInstructions = 0; ///< how far the fast-forward ran
    bool exited = false;         ///< program exited inside the frame
    uint64_t exitCode = 0;
    uint64_t programHash = 0;
    bool reused = false;         ///< loaded from checkpointDir
};

/**
 * Fast-forward @a workload functionally and cut a checkpoint at every
 * interval start (k·stride for k = 0..sampleCount−1). Stops early if
 * the program exits inside the frame — later cuts are dropped with a
 * log note and the estimate simply has fewer samples. When
 * spec.checkpointDir is set, a manifest + checkpoint files are
 * persisted there and reused on the next call with the same program
 * and cut schedule.
 */
CheckpointSet buildCheckpoints(const Workload &workload,
                               const SamplingSpec &spec);

/** One measured interval (the warmup snapshot already subtracted). */
struct IntervalSample
{
    uint64_t startInst = 0;    ///< checkpoint cut (dynamic index)
    uint64_t warmupCycles = 0; ///< cycles spent warming up
    uint64_t cycles = 0;       ///< measured window
    uint64_t instructions = 0;
    uint64_t uops = 0;
    uint64_t fusedPairs = 0;

    double
    ipc() const
    {
        return cycles ? double(instructions) / double(cycles) : 0.0;
    }

    double
    coverage() const
    {
        return instructions
                   ? 2.0 * double(fusedPairs) / double(instructions)
                   : 0.0;
    }
};

/** A weighted mean with its 95% confidence half-width. */
struct SampledEstimate
{
    uint64_t samples = 0;
    double mean = 0.0;
    double ci95Half = 0.0; ///< 0 when samples < 2 (no interval)

    double lo() const { return mean - ci95Half; }
    double hi() const { return mean + ci95Half; }

    /** Half-width relative to the mean (0 when mean is 0). */
    double
    relative() const
    {
        return mean != 0.0 ? ci95Half / mean : 0.0;
    }
};

/** Instruction-weighted mean + 95% CI over per-interval values of
 *  @a value (exposed for tests; runSampled uses it internally). */
SampledEstimate
estimateWeighted(const std::vector<IntervalSample> &intervals,
                 double (IntervalSample::*value)() const);

/** The outcome of one sampled (workload, configuration) run. */
struct SampledResult
{
    std::string workload;
    FusionMode mode = FusionMode::None;
    SamplingSpec spec;
    uint64_t programHash = 0;
    uint64_t configHash = 0;

    bool checkpointsReused = false; ///< checkpointDir served the cuts
    uint64_t ffInstructions = 0;    ///< functional fast-forward length
    uint64_t droppedIntervals = 0;  ///< cuts lost to early exit

    std::vector<IntervalSample> intervals;

    // Totals over the measured windows only.
    uint64_t measuredCycles = 0;
    uint64_t measuredInstructions = 0;
    uint64_t measuredUops = 0;
    uint64_t measuredFusedPairs = 0;
    uint64_t detailedInstructions = 0; ///< warmup + measured, all cells

    SampledEstimate ipc;      ///< weighted per-interval IPC
    SampledEstimate coverage; ///< weighted fusion coverage

    /** The schema-v5 `sampled` report section. */
    JsonValue toJson() const;
    static SampledResult fromJson(const JsonValue &value);
};

/**
 * Run one workload sampled: build (or reuse) the checkpoint set, run
 * every interval as an independent cell through the runMatrix worker
 * pool, and aggregate. @a jobs as in runMatrix (0: defaultJobCount).
 */
SampledResult runSampled(const Workload &workload,
                         const CoreParams &params,
                         const SamplingSpec &spec, unsigned jobs = 0);

/** Same, over a prebuilt checkpoint set (configuration sweeps build
 *  the set once and reuse it for every configuration). */
SampledResult runSampled(const Workload &workload,
                         const CoreParams &params,
                         const SamplingSpec &spec,
                         const CheckpointSet &set, unsigned jobs = 0);

/**
 * Shape a sampled run as a RunReport: headline cycles/instructions/
 * uops are the measured-window totals, ipc is the weighted estimate,
 * and the full per-interval detail rides in the report's `sampled`
 * section (schema v5).
 */
RunReport makeSampledRunReport(const SampledResult &result);

} // namespace helios

#endif // HARNESS_SAMPLING_HH
