#include "harness/runner.hh"

#include <cmath>
#include <cstdlib>

#include "sim/hart.hh"
#include "uarch/pipeline.hh"

namespace helios
{

RunResult
runOne(const Workload &workload, const CoreParams &params,
       uint64_t max_insts)
{
    Memory mem;
    Hart hart(mem);
    hart.reset(workload.program());
    HartFeed feed(hart, max_insts);

    Pipeline pipeline(params, feed);
    const PipelineResult pres = pipeline.run();

    RunResult result;
    result.workload = workload.name;
    result.mode = params.fusion;
    result.cycles = pres.cycles;
    result.instructions = pres.instructions;
    result.uops = pres.uops;
    result.stats = pipeline.stats();
    return result;
}

RunResult
runOne(const Workload &workload, FusionMode mode, uint64_t max_insts)
{
    return runOne(workload, CoreParams::icelake(mode), max_insts);
}

std::vector<DynInst>
functionalTrace(const Workload &workload, uint64_t max_insts)
{
    Memory mem;
    Hart hart(mem);
    hart.reset(workload.program());

    std::vector<DynInst> trace;
    DynInst rec;
    while (trace.size() < max_insts && hart.step(rec))
        trace.push_back(rec);
    return trace;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double value : values)
        log_sum += std::log(value);
    return std::exp(log_sum / double(values.size()));
}

uint64_t
benchInstructionBudget()
{
    if (const char *env = std::getenv("HELIOS_MAX_INSTS"))
        return std::strtoull(env, nullptr, 0);
    return 200'000;
}

} // namespace helios
