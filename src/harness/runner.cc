#include "harness/runner.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include <unistd.h>

#include "common/logging.hh"
#include "harness/run_ledger.hh"
#include "ledger/ledger.hh"
#include "sim/checkpoint.hh"
#include "sim/hart.hh"
#include "telemetry/host_metrics.hh"
#include "telemetry/host_trace.hh"
#include "uarch/auditor.hh"
#include "uarch/params.hh"
#include "uarch/pipeline.hh"

namespace helios
{

namespace
{

/**
 * Parse a strictly positive integer environment variable; fatal() on
 * garbage, trailing junk, overflow or zero so misconfigured sweeps
 * fail loudly instead of silently running nothing.
 */
uint64_t
parsePositiveEnv(const char *name, const char *text)
{
    errno = 0;
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 0);
    // strtoull silently wraps negative input to a huge value.
    if (end == text || *end != '\0' || text[0] == '-')
        fatal("%s='%s' is not a number", name, text);
    if (errno == ERANGE)
        fatal("%s='%s' is out of range", name, text);
    if (value == 0)
        fatal("%s must be a positive integer (got '%s')", name, text);
    return value;
}

/**
 * Sweep progress feedback, fed by workers as cells complete. Two
 * modes, both off the results path (pure observer):
 *
 *  - stderr is a TTY: a throttled rewrite-in-place progress line with
 *    completion percentage, cell rate and ETA (HELIOS_PROGRESS=0
 *    disables);
 *  - otherwise: a periodic heartbeat through the structured logger at
 *    info level, every HELIOS_HEARTBEAT seconds (default 30; 0
 *    disables) — so a multi-hour redirected sweep still shows a
 *    pulse in its log.
 */
class MatrixProgress
{
  public:
    explicit MatrixProgress(size_t total_cells)
        : total(total_cells),
          start(std::chrono::steady_clock::now())
    {
        const char *env = std::getenv("HELIOS_PROGRESS");
        tty = isatty(fileno(stderr)) &&
              !(env && std::string(env) == "0");
        heartbeatSeconds = 30.0;
        if (const char *beat = std::getenv("HELIOS_HEARTBEAT"))
            heartbeatSeconds = std::strtod(beat, nullptr);
    }

    ~MatrixProgress()
    {
        if (shown)
            Logger::global().clearProgress();
    }

    void
    cellDone()
    {
        const size_t done = completed.fetch_add(1) + 1;
        const double elapsed = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() -
                                   start)
                                   .count();
        if (tty) {
            std::lock_guard<std::mutex> lock(mutex);
            // Throttle redraws; always draw the final cell so the
            // line ends at 100%.
            if (elapsed - lastUpdate < 0.1 && done != total)
                return;
            lastUpdate = elapsed;
            shown = true;
            Logger::global().progress(render(done, elapsed));
        } else if (heartbeatSeconds > 0) {
            std::lock_guard<std::mutex> lock(mutex);
            if (elapsed - lastUpdate < heartbeatSeconds)
                return;
            lastUpdate = elapsed;
            inform("[matrix] %s", render(done, elapsed).c_str());
        }
    }

  private:
    std::string
    render(size_t done, double elapsed) const
    {
        return formatMatrixProgress(done, total, elapsed);
    }

    const size_t total;
    const std::chrono::steady_clock::time_point start;
    std::atomic<size_t> completed{0};
    std::mutex mutex;
    double lastUpdate = 0.0;
    double heartbeatSeconds = 30.0;
    bool tty = false;
    bool shown = false;
};

} // namespace

RunResult
runOne(const Workload &workload, const CoreParams &params,
       uint64_t max_insts, const Checkpoint *restore_from,
       uint64_t warmup_insts)
{
    Memory mem;
    Hart hart(mem);
    uint64_t program_hash = 0;
    if (restore_from) {
        // Resume mid-run: no assemble/ELF-load — the checkpoint is
        // the whole program state, and it is config-independent, so
        // every configuration of a sweep restores the same one.
        hart.restoreCheckpoint(*restore_from);
        program_hash = restore_from->programHash;
    } else {
        const Program prog = workload.program();
        hart.reset(prog);
        program_hash = prog.sourceHash;
    }
    HartFeed feed(hart, max_insts);

    Pipeline pipeline(params, feed);
    if (warmup_insts)
        pipeline.armCommitWatch(warmup_insts);
    std::unique_ptr<PipelineAuditor> auditor;
    if (params.audit) {
        auditor = std::make_unique<PipelineAuditor>(params);
        pipeline.attachAuditor(auditor.get());
    }
    const PipelineResult pres = pipeline.run();

    RunResult result;
    result.workload = workload.name;
    result.mode = params.fusion;
    result.cycles = pres.cycles;
    result.instructions = pres.instructions;
    result.uops = pres.uops;
    result.stats = pipeline.stats();
    result.archChecksum = hart.archChecksum();
    result.memChecksum = mem.checksum();
    result.hartInstructions = hart.instsExecuted();
    result.exited = hart.exited();
    result.exitCode = hart.exitCode();
    result.programHash = program_hash;
    result.configHash = configHash(params);
    if (auditor) {
        result.audited = true;
        result.auditChecks = auditor->checksPerformed();
        result.auditViolations = auditor->violations();
    }
    if (const FusionProfiler *profiler = pipeline.fusionProfiler()) {
        result.profiled = true;
        result.profile = profiler->data();
    }
    if (restore_from) {
        result.sampled = true;
        result.sampleStartInst = restore_from->instIndex;
        const Pipeline::CommitWatch &watch = pipeline.commitWatch();
        result.warmupTaken = watch.taken;
        result.warmupCycles = watch.cycles;
        result.warmupInstructions = watch.instructions;
        result.warmupUops = watch.uops;
        result.warmupFusedPairs = watch.fusedPairs;
    }
    return result;
}

RunResult
runOne(const Workload &workload, const CoreParams &params,
       uint64_t max_insts)
{
    return runOne(workload, params, max_insts, nullptr, 0);
}

RunResult
runOne(const Workload &workload, FusionMode mode, uint64_t max_insts)
{
    return runOne(workload, CoreParams::icelake(mode), max_insts);
}

unsigned
defaultJobCount()
{
    if (const char *env = std::getenv("HELIOS_JOBS")) {
        const uint64_t jobs = parsePositiveEnv("HELIOS_JOBS", env);
        if (jobs > 1024)
            fatal("HELIOS_JOBS=%llu is absurdly large",
                  static_cast<unsigned long long>(jobs));
        return static_cast<unsigned>(jobs);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

std::vector<RunResult>
runMatrix(const std::vector<MatrixCell> &cells, unsigned jobs)
{
    std::vector<RunResult> results(cells.size());
    if (cells.empty())
        return results;
    for (const MatrixCell &cell : cells)
        helios_assert(cell.workload, "matrix cell without a workload");

    if (jobs == 0)
        jobs = defaultJobCount();
    jobs = std::min<size_t>(jobs, cells.size());

    MatrixProgress progress(cells.size());

    // One cell, fully observed: a host-trace span on the worker's
    // track, log-context fields so any warn() fired inside the
    // pipeline names its cell, and guest-throughput accounting. All
    // of it reads the finished result — nothing feeds back into the
    // simulation, so telemetry on/off cannot move a counter (tier-1
    // guarded).
    auto run_cell = [&](size_t index) {
        const MatrixCell &cell = cells[index];
        const std::string mode = fusionModeName(cell.params.fusion);
        LogContext context({{"cell", std::to_string(index)},
                            {"workload", cell.workload->name},
                            {"config", mode}});
        HostSpan span(strFormat("cell %zu %s/%s", index,
                                cell.workload->name.c_str(),
                                mode.c_str()),
                      "cell");
        span.arg("workload", cell.workload->name);
        span.arg("config", mode);
        results[index] =
            runOne(*cell.workload, cell.params, cell.maxInsts,
                   cell.restoreFrom, cell.warmupInsts);
        span.end();
        logDebug("cell done: %llu cycles, %llu insts, IPC %.3f",
                 (unsigned long long)results[index].cycles,
                 (unsigned long long)results[index].instructions,
                 results[index].ipc());
        if (HostMetrics::global().enabled()) {
            HostMetrics::global().recordGuestWork(
                results[index].instructions, results[index].uops);
            HostMetrics::global().recordCellCompleted();
        }
        // Interval cells are fragments of one sampled run — their
        // individual numbers would collide under the (program,
        // config, budget) key. The sampling layer records the
        // aggregate instead, keyed by the sampling spec.
        if (Ledger::global() && !cell.restoreFrom)
            recordRunToLedger(results[index], cell.maxInsts);
        progress.cellDone();
    };

    if (jobs <= 1) {
        for (size_t i = 0; i < cells.size(); ++i)
            run_cell(i);
        return results;
    }

    // Each worker grabs the next unclaimed cell; every cell owns
    // private Memory/Hart/Pipeline state, so the claim order cannot
    // affect any result and output order is the input order.
    std::atomic<size_t> next{0};
    std::atomic<unsigned> worker_id{0};
    std::mutex error_mutex;
    std::exception_ptr error;

    auto worker = [&] {
        if (HostTracer::global().enabled())
            HostTracer::global().setThreadName(strFormat(
                "worker-%u", worker_id.fetch_add(1)));
        for (;;) {
            const size_t index = next.fetch_add(1);
            if (index >= cells.size())
                return;
            try {
                run_cell(index);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!error)
                    error = std::current_exception();
                return;
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i)
        pool.emplace_back(worker);
    for (std::thread &thread : pool)
        thread.join();

    if (error)
        std::rethrow_exception(error);
    return results;
}

FunctionalResult
runFunctional(const Workload &workload, uint64_t max_insts,
              bool fast_path)
{
    Memory mem;
    Hart hart(mem);
    const Program prog = workload.program();
    hart.reset(prog);

    FunctionalResult result;
    result.instructions =
        fast_path ? hart.runFast(max_insts) : hart.run(max_insts);
    result.archChecksum = hart.archChecksum();
    result.memChecksum = mem.checksum();
    result.exited = hart.exited();
    result.exitCode = hart.exitCode();
    result.programHash = prog.sourceHash;
    return result;
}

std::vector<DynInst>
functionalTrace(const Workload &workload, uint64_t max_insts)
{
    Memory mem;
    Hart hart(mem);
    hart.reset(workload.program());

    std::vector<DynInst> trace;
    DynInst rec;
    while (trace.size() < max_insts && hart.step(rec))
        trace.push_back(rec);
    return trace;
}

uint64_t
forEachDynInst(const Workload &workload, uint64_t max_insts,
               const std::function<void(const DynInst &)> &visit)
{
    Memory mem;
    Hart hart(mem);
    hart.reset(workload.program());

    uint64_t executed = 0;
    DynInst rec;
    while (executed < max_insts && hart.step(rec)) {
        visit(rec);
        ++executed;
    }
    return executed;
}

double
geomean(const std::vector<double> &values)
{
    double log_sum = 0.0;
    size_t counted = 0;
    for (double value : values) {
        if (value <= 0.0)
            continue; // no ratio information; keep -inf out of the mean
        log_sum += std::log(value);
        ++counted;
    }
    return counted ? std::exp(log_sum / double(counted)) : 0.0;
}

uint64_t
benchInstructionBudget()
{
    if (const char *env = std::getenv("HELIOS_MAX_INSTS"))
        return parsePositiveEnv("HELIOS_MAX_INSTS", env);
    return 200'000;
}

} // namespace helios
