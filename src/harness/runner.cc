#include "harness/runner.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "common/logging.hh"
#include "sim/hart.hh"
#include "uarch/auditor.hh"
#include "uarch/pipeline.hh"

namespace helios
{

namespace
{

/**
 * Parse a strictly positive integer environment variable; fatal() on
 * garbage, trailing junk, overflow or zero so misconfigured sweeps
 * fail loudly instead of silently running nothing.
 */
uint64_t
parsePositiveEnv(const char *name, const char *text)
{
    errno = 0;
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 0);
    // strtoull silently wraps negative input to a huge value.
    if (end == text || *end != '\0' || text[0] == '-')
        fatal("%s='%s' is not a number", name, text);
    if (errno == ERANGE)
        fatal("%s='%s' is out of range", name, text);
    if (value == 0)
        fatal("%s must be a positive integer (got '%s')", name, text);
    return value;
}

} // namespace

RunResult
runOne(const Workload &workload, const CoreParams &params,
       uint64_t max_insts)
{
    Memory mem;
    Hart hart(mem);
    const Program prog = workload.program();
    hart.reset(prog);
    HartFeed feed(hart, max_insts);

    Pipeline pipeline(params, feed);
    std::unique_ptr<PipelineAuditor> auditor;
    if (params.audit) {
        auditor = std::make_unique<PipelineAuditor>(params);
        pipeline.attachAuditor(auditor.get());
    }
    const PipelineResult pres = pipeline.run();

    RunResult result;
    result.workload = workload.name;
    result.mode = params.fusion;
    result.cycles = pres.cycles;
    result.instructions = pres.instructions;
    result.uops = pres.uops;
    result.stats = pipeline.stats();
    result.archChecksum = hart.archChecksum();
    result.memChecksum = mem.checksum();
    result.hartInstructions = hart.instsExecuted();
    result.exited = hart.exited();
    result.exitCode = hart.exitCode();
    result.programHash = prog.sourceHash;
    if (auditor) {
        result.audited = true;
        result.auditChecks = auditor->checksPerformed();
        result.auditViolations = auditor->violations();
    }
    if (const FusionProfiler *profiler = pipeline.fusionProfiler()) {
        result.profiled = true;
        result.profile = profiler->data();
    }
    return result;
}

RunResult
runOne(const Workload &workload, FusionMode mode, uint64_t max_insts)
{
    return runOne(workload, CoreParams::icelake(mode), max_insts);
}

unsigned
defaultJobCount()
{
    if (const char *env = std::getenv("HELIOS_JOBS")) {
        const uint64_t jobs = parsePositiveEnv("HELIOS_JOBS", env);
        if (jobs > 1024)
            fatal("HELIOS_JOBS=%llu is absurdly large",
                  static_cast<unsigned long long>(jobs));
        return static_cast<unsigned>(jobs);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

std::vector<RunResult>
runMatrix(const std::vector<MatrixCell> &cells, unsigned jobs)
{
    std::vector<RunResult> results(cells.size());
    if (cells.empty())
        return results;
    for (const MatrixCell &cell : cells)
        helios_assert(cell.workload, "matrix cell without a workload");

    if (jobs == 0)
        jobs = defaultJobCount();
    jobs = std::min<size_t>(jobs, cells.size());

    if (jobs <= 1) {
        for (size_t i = 0; i < cells.size(); ++i)
            results[i] = runOne(*cells[i].workload, cells[i].params,
                                cells[i].maxInsts);
        return results;
    }

    // Each worker grabs the next unclaimed cell; every cell owns
    // private Memory/Hart/Pipeline state, so the claim order cannot
    // affect any result and output order is the input order.
    std::atomic<size_t> next{0};
    std::mutex error_mutex;
    std::exception_ptr error;

    auto worker = [&] {
        for (;;) {
            const size_t index = next.fetch_add(1);
            if (index >= cells.size())
                return;
            try {
                const MatrixCell &cell = cells[index];
                results[index] = runOne(*cell.workload, cell.params,
                                        cell.maxInsts);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!error)
                    error = std::current_exception();
                return;
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i)
        pool.emplace_back(worker);
    for (std::thread &thread : pool)
        thread.join();

    if (error)
        std::rethrow_exception(error);
    return results;
}

FunctionalResult
runFunctional(const Workload &workload, uint64_t max_insts,
              bool fast_path)
{
    Memory mem;
    Hart hart(mem);
    const Program prog = workload.program();
    hart.reset(prog);

    FunctionalResult result;
    result.instructions =
        fast_path ? hart.runFast(max_insts) : hart.run(max_insts);
    result.archChecksum = hart.archChecksum();
    result.memChecksum = mem.checksum();
    result.exited = hart.exited();
    result.exitCode = hart.exitCode();
    result.programHash = prog.sourceHash;
    return result;
}

std::vector<DynInst>
functionalTrace(const Workload &workload, uint64_t max_insts)
{
    Memory mem;
    Hart hart(mem);
    hart.reset(workload.program());

    std::vector<DynInst> trace;
    DynInst rec;
    while (trace.size() < max_insts && hart.step(rec))
        trace.push_back(rec);
    return trace;
}

uint64_t
forEachDynInst(const Workload &workload, uint64_t max_insts,
               const std::function<void(const DynInst &)> &visit)
{
    Memory mem;
    Hart hart(mem);
    hart.reset(workload.program());

    uint64_t executed = 0;
    DynInst rec;
    while (executed < max_insts && hart.step(rec)) {
        visit(rec);
        ++executed;
    }
    return executed;
}

double
geomean(const std::vector<double> &values)
{
    double log_sum = 0.0;
    size_t counted = 0;
    for (double value : values) {
        if (value <= 0.0)
            continue; // no ratio information; keep -inf out of the mean
        log_sum += std::log(value);
        ++counted;
    }
    return counted ? std::exp(log_sum / double(counted)) : 0.0;
}

uint64_t
benchInstructionBudget()
{
    if (const char *env = std::getenv("HELIOS_MAX_INSTS"))
        return parsePositiveEnv("HELIOS_MAX_INSTS", env);
    return 200'000;
}

} // namespace helios
