#include "isa/encoder.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace helios
{

namespace
{

// Major opcodes.
constexpr uint32_t opcLoad = 0x03;
constexpr uint32_t opcMiscMem = 0x0f;
constexpr uint32_t opcOpImm = 0x13;
constexpr uint32_t opcAuipc = 0x17;
constexpr uint32_t opcOpImm32 = 0x1b;
constexpr uint32_t opcStore = 0x23;
constexpr uint32_t opcOp = 0x33;
constexpr uint32_t opcLui = 0x37;
constexpr uint32_t opcOp32 = 0x3b;
constexpr uint32_t opcBranch = 0x63;
constexpr uint32_t opcJalr = 0x67;
constexpr uint32_t opcJal = 0x6f;
constexpr uint32_t opcSystem = 0x73;

void
checkImm(int64_t imm, unsigned width, const char *kind)
{
    const int64_t lo = -(1LL << (width - 1));
    const int64_t hi = (1LL << (width - 1)) - 1;
    if (imm < lo || imm > hi)
        fatal("%s immediate %lld out of range [%lld, %lld]",
              kind, static_cast<long long>(imm),
              static_cast<long long>(lo), static_cast<long long>(hi));
}

uint32_t
encodeR(uint32_t funct7, uint8_t rs2, uint8_t rs1, uint32_t funct3,
        uint8_t rd, uint32_t opcode)
{
    return (funct7 << 25) | (uint32_t(rs2) << 20) | (uint32_t(rs1) << 15) |
           (funct3 << 12) | (uint32_t(rd) << 7) | opcode;
}

uint32_t
encodeI(int64_t imm, uint8_t rs1, uint32_t funct3, uint8_t rd,
        uint32_t opcode)
{
    checkImm(imm, 12, "I-type");
    return (uint32_t(imm & 0xfff) << 20) | (uint32_t(rs1) << 15) |
           (funct3 << 12) | (uint32_t(rd) << 7) | opcode;
}

uint32_t
encodeS(int64_t imm, uint8_t rs2, uint8_t rs1, uint32_t funct3,
        uint32_t opcode)
{
    checkImm(imm, 12, "S-type");
    const uint32_t uimm = uint32_t(imm & 0xfff);
    return (bits(uimm, 11, 5) << 25) | (uint32_t(rs2) << 20) |
           (uint32_t(rs1) << 15) | (funct3 << 12) |
           (uint32_t(bits(uimm, 4, 0)) << 7) | opcode;
}

uint32_t
encodeB(int64_t imm, uint8_t rs2, uint8_t rs1, uint32_t funct3)
{
    checkImm(imm, 13, "branch");
    if (imm & 1)
        fatal("branch offset %lld is not even",
              static_cast<long long>(imm));
    const uint32_t uimm = uint32_t(imm & 0x1fff);
    return (uint32_t(bit(uimm, 12)) << 31) |
           (uint32_t(bits(uimm, 10, 5)) << 25) |
           (uint32_t(rs2) << 20) | (uint32_t(rs1) << 15) |
           (funct3 << 12) | (uint32_t(bits(uimm, 4, 1)) << 8) |
           (uint32_t(bit(uimm, 11)) << 7) | opcBranch;
}

uint32_t
encodeU(int64_t imm, uint8_t rd, uint32_t opcode)
{
    // imm is the value of imm[31:12].
    checkImm(imm, 20, "U-type");
    return (uint32_t(imm & 0xfffff) << 12) | (uint32_t(rd) << 7) | opcode;
}

uint32_t
encodeJ(int64_t imm, uint8_t rd)
{
    checkImm(imm, 21, "jal");
    if (imm & 1)
        fatal("jal offset %lld is not even", static_cast<long long>(imm));
    const uint32_t uimm = uint32_t(imm & 0x1fffff);
    return (uint32_t(bit(uimm, 20)) << 31) |
           (uint32_t(bits(uimm, 10, 1)) << 21) |
           (uint32_t(bit(uimm, 11)) << 20) |
           (uint32_t(bits(uimm, 19, 12)) << 12) |
           (uint32_t(rd) << 7) | opcJal;
}

uint32_t
encodeShiftImm(uint32_t funct6, const Instruction &inst, uint32_t funct3,
               uint32_t opcode, unsigned shamt_bits)
{
    const auto shamt = static_cast<uint64_t>(inst.imm);
    if (shamt >= (1ULL << shamt_bits))
        fatal("shift amount %llu out of range",
              static_cast<unsigned long long>(shamt));
    return (funct6 << 26) | (uint32_t(shamt) << 20) |
           (uint32_t(inst.rs1) << 15) | (funct3 << 12) |
           (uint32_t(inst.rd) << 7) | opcode;
}

} // namespace

uint32_t
encode(const Instruction &inst)
{
    const uint8_t rd = inst.rd;
    const uint8_t rs1 = inst.rs1;
    const uint8_t rs2 = inst.rs2;
    const int64_t imm = inst.imm;

    switch (inst.op) {
      case Op::Lui: return encodeU(imm, rd, opcLui);
      case Op::Auipc: return encodeU(imm, rd, opcAuipc);
      case Op::Jal: return encodeJ(imm, rd);
      case Op::Jalr: return encodeI(imm, rs1, 0, rd, opcJalr);

      case Op::Beq: return encodeB(imm, rs2, rs1, 0);
      case Op::Bne: return encodeB(imm, rs2, rs1, 1);
      case Op::Blt: return encodeB(imm, rs2, rs1, 4);
      case Op::Bge: return encodeB(imm, rs2, rs1, 5);
      case Op::Bltu: return encodeB(imm, rs2, rs1, 6);
      case Op::Bgeu: return encodeB(imm, rs2, rs1, 7);

      case Op::Lb: return encodeI(imm, rs1, 0, rd, opcLoad);
      case Op::Lh: return encodeI(imm, rs1, 1, rd, opcLoad);
      case Op::Lw: return encodeI(imm, rs1, 2, rd, opcLoad);
      case Op::Ld: return encodeI(imm, rs1, 3, rd, opcLoad);
      case Op::Lbu: return encodeI(imm, rs1, 4, rd, opcLoad);
      case Op::Lhu: return encodeI(imm, rs1, 5, rd, opcLoad);
      case Op::Lwu: return encodeI(imm, rs1, 6, rd, opcLoad);

      case Op::Sb: return encodeS(imm, rs2, rs1, 0, opcStore);
      case Op::Sh: return encodeS(imm, rs2, rs1, 1, opcStore);
      case Op::Sw: return encodeS(imm, rs2, rs1, 2, opcStore);
      case Op::Sd: return encodeS(imm, rs2, rs1, 3, opcStore);

      case Op::Addi: return encodeI(imm, rs1, 0, rd, opcOpImm);
      case Op::Slti: return encodeI(imm, rs1, 2, rd, opcOpImm);
      case Op::Sltiu: return encodeI(imm, rs1, 3, rd, opcOpImm);
      case Op::Xori: return encodeI(imm, rs1, 4, rd, opcOpImm);
      case Op::Ori: return encodeI(imm, rs1, 6, rd, opcOpImm);
      case Op::Andi: return encodeI(imm, rs1, 7, rd, opcOpImm);
      case Op::Slli: return encodeShiftImm(0x00, inst, 1, opcOpImm, 6);
      case Op::Srli: return encodeShiftImm(0x00, inst, 5, opcOpImm, 6);
      case Op::Srai: return encodeShiftImm(0x10, inst, 5, opcOpImm, 6);

      case Op::Add: return encodeR(0x00, rs2, rs1, 0, rd, opcOp);
      case Op::Sub: return encodeR(0x20, rs2, rs1, 0, rd, opcOp);
      case Op::Sll: return encodeR(0x00, rs2, rs1, 1, rd, opcOp);
      case Op::Slt: return encodeR(0x00, rs2, rs1, 2, rd, opcOp);
      case Op::Sltu: return encodeR(0x00, rs2, rs1, 3, rd, opcOp);
      case Op::Xor: return encodeR(0x00, rs2, rs1, 4, rd, opcOp);
      case Op::Srl: return encodeR(0x00, rs2, rs1, 5, rd, opcOp);
      case Op::Sra: return encodeR(0x20, rs2, rs1, 5, rd, opcOp);
      case Op::Or: return encodeR(0x00, rs2, rs1, 6, rd, opcOp);
      case Op::And: return encodeR(0x00, rs2, rs1, 7, rd, opcOp);

      case Op::Addiw: return encodeI(imm, rs1, 0, rd, opcOpImm32);
      case Op::Slliw: return encodeShiftImm(0x00, inst, 1, opcOpImm32, 5);
      case Op::Srliw: return encodeShiftImm(0x00, inst, 5, opcOpImm32, 5);
      case Op::Sraiw: return encodeShiftImm(0x10, inst, 5, opcOpImm32, 5);
      case Op::Addw: return encodeR(0x00, rs2, rs1, 0, rd, opcOp32);
      case Op::Subw: return encodeR(0x20, rs2, rs1, 0, rd, opcOp32);
      case Op::Sllw: return encodeR(0x00, rs2, rs1, 1, rd, opcOp32);
      case Op::Srlw: return encodeR(0x00, rs2, rs1, 5, rd, opcOp32);
      case Op::Sraw: return encodeR(0x20, rs2, rs1, 5, rd, opcOp32);

      case Op::Mul: return encodeR(0x01, rs2, rs1, 0, rd, opcOp);
      case Op::Mulh: return encodeR(0x01, rs2, rs1, 1, rd, opcOp);
      case Op::Mulhsu: return encodeR(0x01, rs2, rs1, 2, rd, opcOp);
      case Op::Mulhu: return encodeR(0x01, rs2, rs1, 3, rd, opcOp);
      case Op::Div: return encodeR(0x01, rs2, rs1, 4, rd, opcOp);
      case Op::Divu: return encodeR(0x01, rs2, rs1, 5, rd, opcOp);
      case Op::Rem: return encodeR(0x01, rs2, rs1, 6, rd, opcOp);
      case Op::Remu: return encodeR(0x01, rs2, rs1, 7, rd, opcOp);
      case Op::Mulw: return encodeR(0x01, rs2, rs1, 0, rd, opcOp32);
      case Op::Divw: return encodeR(0x01, rs2, rs1, 4, rd, opcOp32);
      case Op::Divuw: return encodeR(0x01, rs2, rs1, 5, rd, opcOp32);
      case Op::Remw: return encodeR(0x01, rs2, rs1, 6, rd, opcOp32);
      case Op::Remuw: return encodeR(0x01, rs2, rs1, 7, rd, opcOp32);

      case Op::Fence: return 0x0ff0000f;
      case Op::Ecall: return 0x00000073;
      case Op::Ebreak: return 0x00100073;

      default:
        fatal("cannot encode opcode %u",
              static_cast<unsigned>(inst.op));
    }
    return 0; // unreachable
}

} // namespace helios
