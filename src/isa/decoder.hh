/**
 * @file
 * RV64IM machine-code decoder.
 */

#ifndef ISA_DECODER_HH
#define ISA_DECODER_HH

#include <cstdint>

#include "isa/instruction.hh"

namespace helios
{

/**
 * Decode a 32-bit machine word.
 *
 * Unknown encodings decode to Op::Invalid rather than raising an error;
 * the functional simulator turns executing an invalid instruction into
 * a fatal() so that bad jumps are reported at the faulting PC.
 */
Instruction decode(uint32_t word);

} // namespace helios

#endif // ISA_DECODER_HH
