/**
 * @file
 * Decoded architectural instruction representation.
 */

#ifndef ISA_INSTRUCTION_HH
#define ISA_INSTRUCTION_HH

#include <cstdint>

#include "isa/riscv.hh"

namespace helios
{

/**
 * A decoded RV64IM instruction.
 *
 * In this model every RISC-V architectural instruction translates to
 * exactly one µ-op (footnote 2 of the paper), so this structure doubles
 * as the µ-op payload before any fusion is applied.
 */
struct Instruction
{
    Op op = Op::Invalid;
    uint8_t rd = 0;
    uint8_t rs1 = 0;
    uint8_t rs2 = 0;
    int64_t imm = 0;
    uint32_t raw = 0;

    const OpInfo &info() const { return opInfo(op); }

    bool isLoad() const { return isLoadOp(op); }
    bool isStore() const { return isStoreOp(op); }
    bool isMem() const { return isMemOp(op); }
    bool isControl() const { return isControlOp(op); }
    bool isCondBranch() const { return isCondBranchOp(op); }
    bool isJump() const { return op == Op::Jal || op == Op::Jalr; }
    bool isSerializing() const { return isSerializingOp(op); }

    /** Memory access width in bytes (0 for non-memory ops). */
    uint8_t memSize() const { return info().memSize; }

    /** Destination register, honoring x0 hard-wiring. */
    bool
    writesReg() const
    {
        return info().writesRd && rd != RegZero;
    }

    bool readsRs1() const { return info().readsRs1 && rs1 != RegZero; }
    bool readsRs2() const { return info().readsRs2 && rs2 != RegZero; }

    /**
     * Base register of a memory access. Loads use rs1; stores use rs1
     * as base and rs2 as data.
     */
    uint8_t baseReg() const { return rs1; }

    bool
    operator==(const Instruction &other) const
    {
        return op == other.op && rd == other.rd && rs1 == other.rs1 &&
               rs2 == other.rs2 && imm == other.imm;
    }
};

} // namespace helios

#endif // ISA_INSTRUCTION_HH
