#include "isa/riscv.hh"

#include <array>
#include <map>

#include "common/logging.hh"

namespace helios
{

namespace
{

constexpr OpInfo
alu(const char *name)
{
    return {name, OpClass::IntAlu, 0, false, true, true, true};
}

constexpr OpInfo
aluImm(const char *name)
{
    return {name, OpClass::IntAlu, 0, false, true, true, false};
}

constexpr OpInfo
mulOp(const char *name)
{
    return {name, OpClass::IntMul, 0, false, true, true, true};
}

constexpr OpInfo
divOp(const char *name)
{
    return {name, OpClass::IntDiv, 0, false, true, true, true};
}

constexpr OpInfo
load(const char *name, uint8_t size, bool sign)
{
    return {name, OpClass::Load, size, sign, true, true, false};
}

constexpr OpInfo
store(const char *name, uint8_t size)
{
    return {name, OpClass::Store, size, false, false, true, true};
}

constexpr OpInfo
branch(const char *name)
{
    return {name, OpClass::Branch, 0, false, false, true, true};
}

const std::array<OpInfo, static_cast<size_t>(Op::NumOps)> opTable = [] {
    std::array<OpInfo, static_cast<size_t>(Op::NumOps)> t{};
    auto set = [&t](Op op, OpInfo info) {
        t[static_cast<size_t>(op)] = info;
    };

    set(Op::Invalid,
        {"invalid", OpClass::Invalid, 0, false, false, false, false});

    set(Op::Lui,
        {"lui", OpClass::IntAlu, 0, false, true, false, false});
    set(Op::Auipc,
        {"auipc", OpClass::IntAlu, 0, false, true, false, false});
    set(Op::Jal,
        {"jal", OpClass::Branch, 0, false, true, false, false});
    set(Op::Jalr,
        {"jalr", OpClass::Branch, 0, false, true, true, false});

    set(Op::Beq, branch("beq"));
    set(Op::Bne, branch("bne"));
    set(Op::Blt, branch("blt"));
    set(Op::Bge, branch("bge"));
    set(Op::Bltu, branch("bltu"));
    set(Op::Bgeu, branch("bgeu"));

    set(Op::Lb, load("lb", 1, true));
    set(Op::Lh, load("lh", 2, true));
    set(Op::Lw, load("lw", 4, true));
    set(Op::Ld, load("ld", 8, true));
    set(Op::Lbu, load("lbu", 1, false));
    set(Op::Lhu, load("lhu", 2, false));
    set(Op::Lwu, load("lwu", 4, false));

    set(Op::Sb, store("sb", 1));
    set(Op::Sh, store("sh", 2));
    set(Op::Sw, store("sw", 4));
    set(Op::Sd, store("sd", 8));

    set(Op::Addi, aluImm("addi"));
    set(Op::Slti, aluImm("slti"));
    set(Op::Sltiu, aluImm("sltiu"));
    set(Op::Xori, aluImm("xori"));
    set(Op::Ori, aluImm("ori"));
    set(Op::Andi, aluImm("andi"));
    set(Op::Slli, aluImm("slli"));
    set(Op::Srli, aluImm("srli"));
    set(Op::Srai, aluImm("srai"));

    set(Op::Add, alu("add"));
    set(Op::Sub, alu("sub"));
    set(Op::Sll, alu("sll"));
    set(Op::Slt, alu("slt"));
    set(Op::Sltu, alu("sltu"));
    set(Op::Xor, alu("xor"));
    set(Op::Srl, alu("srl"));
    set(Op::Sra, alu("sra"));
    set(Op::Or, alu("or"));
    set(Op::And, alu("and"));

    set(Op::Addiw, aluImm("addiw"));
    set(Op::Slliw, aluImm("slliw"));
    set(Op::Srliw, aluImm("srliw"));
    set(Op::Sraiw, aluImm("sraiw"));
    set(Op::Addw, alu("addw"));
    set(Op::Subw, alu("subw"));
    set(Op::Sllw, alu("sllw"));
    set(Op::Srlw, alu("srlw"));
    set(Op::Sraw, alu("sraw"));

    set(Op::Mul, mulOp("mul"));
    set(Op::Mulh, mulOp("mulh"));
    set(Op::Mulhsu, mulOp("mulhsu"));
    set(Op::Mulhu, mulOp("mulhu"));
    set(Op::Div, divOp("div"));
    set(Op::Divu, divOp("divu"));
    set(Op::Rem, divOp("rem"));
    set(Op::Remu, divOp("remu"));
    set(Op::Mulw, mulOp("mulw"));
    set(Op::Divw, divOp("divw"));
    set(Op::Divuw, divOp("divuw"));
    set(Op::Remw, divOp("remw"));
    set(Op::Remuw, divOp("remuw"));

    set(Op::Fence,
        {"fence", OpClass::Serializing, 0, false, false, false, false});
    set(Op::Ecall,
        {"ecall", OpClass::Serializing, 0, false, false, false, false});
    set(Op::Ebreak,
        {"ebreak", OpClass::Serializing, 0, false, false, false, false});

    return t;
}();

const char *const abiNames[numArchRegs] = {
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
};

} // namespace

const OpInfo &
opInfo(Op op)
{
    helios_assert(op < Op::NumOps, "opcode out of range");
    return opTable[static_cast<size_t>(op)];
}

std::string
regName(unsigned reg)
{
    helios_assert(reg < numArchRegs, "register index out of range");
    return abiNames[reg];
}

int
parseRegName(const std::string &name)
{
    static const std::map<std::string, int> table = [] {
        std::map<std::string, int> t;
        for (unsigned i = 0; i < numArchRegs; ++i) {
            t[abiNames[i]] = static_cast<int>(i);
            t["x" + std::to_string(i)] = static_cast<int>(i);
        }
        t["fp"] = RegFp;
        return t;
    }();

    auto it = table.find(name);
    return it == table.end() ? -1 : it->second;
}

} // namespace helios
