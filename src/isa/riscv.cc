#include "isa/riscv.hh"

#include <array>
#include <map>

#include "common/logging.hh"

namespace helios
{

namespace
{

const char *const abiNames[numArchRegs] = {
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
};

} // namespace

std::string
regName(unsigned reg)
{
    helios_assert(reg < numArchRegs, "register index out of range");
    return abiNames[reg];
}

int
parseRegName(const std::string &name)
{
    static const std::map<std::string, int> table = [] {
        std::map<std::string, int> t;
        for (unsigned i = 0; i < numArchRegs; ++i) {
            t[abiNames[i]] = static_cast<int>(i);
            // Built with += rather than operator+ to dodge a GCC 12
            // -Wrestrict false positive (PR 105651) under -Werror.
            std::string xname = "x";
            xname += std::to_string(i);
            t[xname] = static_cast<int>(i);
        }
        t["fp"] = RegFp;
        return t;
    }();

    auto it = table.find(name);
    return it == table.end() ? -1 : it->second;
}

} // namespace helios
