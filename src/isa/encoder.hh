/**
 * @file
 * RV64IM machine-code encoder.
 *
 * The encoder is the assembler's backend and the test suite's
 * round-trip partner for the decoder.
 */

#ifndef ISA_ENCODER_HH
#define ISA_ENCODER_HH

#include <cstdint>

#include "isa/instruction.hh"

namespace helios
{

/**
 * Encode a decoded instruction back into its 32-bit machine word.
 *
 * fatal()s if an immediate does not fit its encoding field, so the
 * assembler reports range errors instead of silently truncating.
 */
uint32_t encode(const Instruction &inst);

} // namespace helios

#endif // ISA_ENCODER_HH
