/**
 * @file
 * RV64IM architectural definitions: registers, opcodes and per-opcode
 * metadata used by the decoder, the functional simulator and the
 * fusion idiom matcher.
 */

#ifndef ISA_RISCV_HH
#define ISA_RISCV_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/logging.hh"

namespace helios
{

/** Number of integer architectural registers. */
constexpr unsigned numArchRegs = 32;

/** ABI register aliases. */
enum Reg : uint8_t
{
    RegZero = 0, RegRa = 1, RegSp = 2, RegGp = 3, RegTp = 4,
    RegT0 = 5, RegT1 = 6, RegT2 = 7,
    RegS0 = 8, RegFp = 8, RegS1 = 9,
    RegA0 = 10, RegA1 = 11, RegA2 = 12, RegA3 = 13,
    RegA4 = 14, RegA5 = 15, RegA6 = 16, RegA7 = 17,
    RegS2 = 18, RegS3 = 19, RegS4 = 20, RegS5 = 21, RegS6 = 22,
    RegS7 = 23, RegS8 = 24, RegS9 = 25, RegS10 = 26, RegS11 = 27,
    RegT3 = 28, RegT4 = 29, RegT5 = 30, RegT6 = 31,
};

/** Every RV64IM architectural opcode modeled by the simulator. */
enum class Op : uint8_t
{
    Invalid = 0,
    // RV32I / RV64I upper-immediate and control transfer
    Lui, Auipc, Jal, Jalr,
    Beq, Bne, Blt, Bge, Bltu, Bgeu,
    // Loads
    Lb, Lh, Lw, Ld, Lbu, Lhu, Lwu,
    // Stores
    Sb, Sh, Sw, Sd,
    // Immediate ALU
    Addi, Slti, Sltiu, Xori, Ori, Andi, Slli, Srli, Srai,
    // Register ALU
    Add, Sub, Sll, Slt, Sltu, Xor, Srl, Sra, Or, And,
    // RV64I word forms
    Addiw, Slliw, Srliw, Sraiw,
    Addw, Subw, Sllw, Srlw, Sraw,
    // RV64M
    Mul, Mulh, Mulhsu, Mulhu, Div, Divu, Rem, Remu,
    Mulw, Divw, Divuw, Remw, Remuw,
    // System
    Fence, Ecall, Ebreak,

    NumOps,
};

/** Broad execution class; selects issue port and latency. */
enum class OpClass : uint8_t
{
    Invalid,
    IntAlu,      ///< single-cycle integer
    IntMul,      ///< pipelined multiplier
    IntDiv,      ///< unpipelined divider
    Load,
    Store,
    Branch,      ///< conditional branches and jumps
    Serializing, ///< fence / ecall / ebreak
};

/** Metadata table entry for one opcode. */
struct OpInfo
{
    const char *mnemonic;
    OpClass cls;
    uint8_t memSize;    ///< access width in bytes; 0 for non-memory
    bool memSigned;     ///< sign-extending load
    bool writesRd;
    bool readsRs1;
    bool readsRs2;
};

namespace op_detail
{

constexpr OpInfo
alu(const char *name)
{
    return {name, OpClass::IntAlu, 0, false, true, true, true};
}

constexpr OpInfo
aluImm(const char *name)
{
    return {name, OpClass::IntAlu, 0, false, true, true, false};
}

constexpr OpInfo
mulOp(const char *name)
{
    return {name, OpClass::IntMul, 0, false, true, true, true};
}

constexpr OpInfo
divOp(const char *name)
{
    return {name, OpClass::IntDiv, 0, false, true, true, true};
}

constexpr OpInfo
load(const char *name, uint8_t size, bool sign)
{
    return {name, OpClass::Load, size, sign, true, true, false};
}

constexpr OpInfo
store(const char *name, uint8_t size)
{
    return {name, OpClass::Store, size, false, false, true, true};
}

constexpr OpInfo
branch(const char *name)
{
    return {name, OpClass::Branch, 0, false, false, true, true};
}

/**
 * The opcode metadata table. Lives in the header as an inline
 * constexpr so that the extremely hot opInfo() accessor (every
 * isLoad()/writesReg()/memSize() query in the simulator goes through
 * it) inlines and constant-folds instead of crossing a translation
 * unit boundary.
 */
inline constexpr std::array<OpInfo, static_cast<size_t>(Op::NumOps)>
    opTable = [] {
    std::array<OpInfo, static_cast<size_t>(Op::NumOps)> t{};
    auto set = [&t](Op op, OpInfo info) {
        t[static_cast<size_t>(op)] = info;
    };

    set(Op::Invalid,
        {"invalid", OpClass::Invalid, 0, false, false, false, false});

    set(Op::Lui,
        {"lui", OpClass::IntAlu, 0, false, true, false, false});
    set(Op::Auipc,
        {"auipc", OpClass::IntAlu, 0, false, true, false, false});
    set(Op::Jal,
        {"jal", OpClass::Branch, 0, false, true, false, false});
    set(Op::Jalr,
        {"jalr", OpClass::Branch, 0, false, true, true, false});

    set(Op::Beq, branch("beq"));
    set(Op::Bne, branch("bne"));
    set(Op::Blt, branch("blt"));
    set(Op::Bge, branch("bge"));
    set(Op::Bltu, branch("bltu"));
    set(Op::Bgeu, branch("bgeu"));

    set(Op::Lb, load("lb", 1, true));
    set(Op::Lh, load("lh", 2, true));
    set(Op::Lw, load("lw", 4, true));
    set(Op::Ld, load("ld", 8, true));
    set(Op::Lbu, load("lbu", 1, false));
    set(Op::Lhu, load("lhu", 2, false));
    set(Op::Lwu, load("lwu", 4, false));

    set(Op::Sb, store("sb", 1));
    set(Op::Sh, store("sh", 2));
    set(Op::Sw, store("sw", 4));
    set(Op::Sd, store("sd", 8));

    set(Op::Addi, aluImm("addi"));
    set(Op::Slti, aluImm("slti"));
    set(Op::Sltiu, aluImm("sltiu"));
    set(Op::Xori, aluImm("xori"));
    set(Op::Ori, aluImm("ori"));
    set(Op::Andi, aluImm("andi"));
    set(Op::Slli, aluImm("slli"));
    set(Op::Srli, aluImm("srli"));
    set(Op::Srai, aluImm("srai"));

    set(Op::Add, alu("add"));
    set(Op::Sub, alu("sub"));
    set(Op::Sll, alu("sll"));
    set(Op::Slt, alu("slt"));
    set(Op::Sltu, alu("sltu"));
    set(Op::Xor, alu("xor"));
    set(Op::Srl, alu("srl"));
    set(Op::Sra, alu("sra"));
    set(Op::Or, alu("or"));
    set(Op::And, alu("and"));

    set(Op::Addiw, aluImm("addiw"));
    set(Op::Slliw, aluImm("slliw"));
    set(Op::Srliw, aluImm("srliw"));
    set(Op::Sraiw, aluImm("sraiw"));
    set(Op::Addw, alu("addw"));
    set(Op::Subw, alu("subw"));
    set(Op::Sllw, alu("sllw"));
    set(Op::Srlw, alu("srlw"));
    set(Op::Sraw, alu("sraw"));

    set(Op::Mul, mulOp("mul"));
    set(Op::Mulh, mulOp("mulh"));
    set(Op::Mulhsu, mulOp("mulhsu"));
    set(Op::Mulhu, mulOp("mulhu"));
    set(Op::Div, divOp("div"));
    set(Op::Divu, divOp("divu"));
    set(Op::Rem, divOp("rem"));
    set(Op::Remu, divOp("remu"));
    set(Op::Mulw, mulOp("mulw"));
    set(Op::Divw, divOp("divw"));
    set(Op::Divuw, divOp("divuw"));
    set(Op::Remw, divOp("remw"));
    set(Op::Remuw, divOp("remuw"));

    set(Op::Fence,
        {"fence", OpClass::Serializing, 0, false, false, false, false});
    set(Op::Ecall,
        {"ecall", OpClass::Serializing, 0, false, false, false, false});
    set(Op::Ebreak,
        {"ebreak", OpClass::Serializing, 0, false, false, false, false});

    return t;
}();

} // namespace op_detail

/** Look up the metadata for an opcode. */
inline const OpInfo &
opInfo(Op op)
{
    helios_assert(op < Op::NumOps, "opcode out of range");
    return op_detail::opTable[static_cast<size_t>(op)];
}

/** Mnemonic for an opcode. */
inline const char *opName(Op op) { return opInfo(op).mnemonic; }

inline bool isLoadOp(Op op) { return opInfo(op).cls == OpClass::Load; }
inline bool isStoreOp(Op op) { return opInfo(op).cls == OpClass::Store; }
inline bool isMemOp(Op op) { return isLoadOp(op) || isStoreOp(op); }

inline bool
isControlOp(Op op)
{
    return opInfo(op).cls == OpClass::Branch;
}

inline bool
isSerializingOp(Op op)
{
    return opInfo(op).cls == OpClass::Serializing;
}

/** Conditional branch (not jal/jalr). */
inline bool
isCondBranchOp(Op op)
{
    return op >= Op::Beq && op <= Op::Bgeu;
}

/**
 * Does @a op end a basic block in the fast-forward engine? Control
 * transfers leave the straight-line path, ecall can flip the hart
 * into the exited state (or run an arbitrary system call), and
 * ebreak/invalid fault — after any of these the dispatch loop must
 * return to the block dispatcher. Fence is deliberately *not* a
 * terminator: the functional model treats it as a nop.
 */
inline bool
isBlockTerminatorOp(Op op)
{
    return isControlOp(op) || op == Op::Ecall || op == Op::Ebreak ||
           op == Op::Invalid;
}

/** ABI name ("a0", "sp", ...) for a register index. */
std::string regName(unsigned reg);

/** Parse a register name ("x13", "a3", "sp", ...); -1 if unknown. */
int parseRegName(const std::string &name);

} // namespace helios

#endif // ISA_RISCV_HH
