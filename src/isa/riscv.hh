/**
 * @file
 * RV64IM architectural definitions: registers, opcodes and per-opcode
 * metadata used by the decoder, the functional simulator and the
 * fusion idiom matcher.
 */

#ifndef ISA_RISCV_HH
#define ISA_RISCV_HH

#include <cstdint>
#include <string>

namespace helios
{

/** Number of integer architectural registers. */
constexpr unsigned numArchRegs = 32;

/** ABI register aliases. */
enum Reg : uint8_t
{
    RegZero = 0, RegRa = 1, RegSp = 2, RegGp = 3, RegTp = 4,
    RegT0 = 5, RegT1 = 6, RegT2 = 7,
    RegS0 = 8, RegFp = 8, RegS1 = 9,
    RegA0 = 10, RegA1 = 11, RegA2 = 12, RegA3 = 13,
    RegA4 = 14, RegA5 = 15, RegA6 = 16, RegA7 = 17,
    RegS2 = 18, RegS3 = 19, RegS4 = 20, RegS5 = 21, RegS6 = 22,
    RegS7 = 23, RegS8 = 24, RegS9 = 25, RegS10 = 26, RegS11 = 27,
    RegT3 = 28, RegT4 = 29, RegT5 = 30, RegT6 = 31,
};

/** Every RV64IM architectural opcode modeled by the simulator. */
enum class Op : uint8_t
{
    Invalid = 0,
    // RV32I / RV64I upper-immediate and control transfer
    Lui, Auipc, Jal, Jalr,
    Beq, Bne, Blt, Bge, Bltu, Bgeu,
    // Loads
    Lb, Lh, Lw, Ld, Lbu, Lhu, Lwu,
    // Stores
    Sb, Sh, Sw, Sd,
    // Immediate ALU
    Addi, Slti, Sltiu, Xori, Ori, Andi, Slli, Srli, Srai,
    // Register ALU
    Add, Sub, Sll, Slt, Sltu, Xor, Srl, Sra, Or, And,
    // RV64I word forms
    Addiw, Slliw, Srliw, Sraiw,
    Addw, Subw, Sllw, Srlw, Sraw,
    // RV64M
    Mul, Mulh, Mulhsu, Mulhu, Div, Divu, Rem, Remu,
    Mulw, Divw, Divuw, Remw, Remuw,
    // System
    Fence, Ecall, Ebreak,

    NumOps,
};

/** Broad execution class; selects issue port and latency. */
enum class OpClass : uint8_t
{
    Invalid,
    IntAlu,      ///< single-cycle integer
    IntMul,      ///< pipelined multiplier
    IntDiv,      ///< unpipelined divider
    Load,
    Store,
    Branch,      ///< conditional branches and jumps
    Serializing, ///< fence / ecall / ebreak
};

/** Metadata table entry for one opcode. */
struct OpInfo
{
    const char *mnemonic;
    OpClass cls;
    uint8_t memSize;    ///< access width in bytes; 0 for non-memory
    bool memSigned;     ///< sign-extending load
    bool writesRd;
    bool readsRs1;
    bool readsRs2;
};

/** Look up the metadata for an opcode. */
const OpInfo &opInfo(Op op);

/** Mnemonic for an opcode. */
inline const char *opName(Op op) { return opInfo(op).mnemonic; }

inline bool isLoadOp(Op op) { return opInfo(op).cls == OpClass::Load; }
inline bool isStoreOp(Op op) { return opInfo(op).cls == OpClass::Store; }
inline bool isMemOp(Op op) { return isLoadOp(op) || isStoreOp(op); }

inline bool
isControlOp(Op op)
{
    return opInfo(op).cls == OpClass::Branch;
}

inline bool
isSerializingOp(Op op)
{
    return opInfo(op).cls == OpClass::Serializing;
}

/** Conditional branch (not jal/jalr). */
inline bool
isCondBranchOp(Op op)
{
    return op >= Op::Beq && op <= Op::Bgeu;
}

/** ABI name ("a0", "sp", ...) for a register index. */
std::string regName(unsigned reg);

/** Parse a register name ("x13", "a3", "sp", ...); -1 if unknown. */
int parseRegName(const std::string &name);

} // namespace helios

#endif // ISA_RISCV_HH
