/**
 * @file
 * Textual disassembly of decoded instructions (debug/trace output).
 */

#ifndef ISA_DISASM_HH
#define ISA_DISASM_HH

#include <string>

#include "isa/instruction.hh"

namespace helios
{

/** Render an instruction in assembler-compatible syntax. */
std::string disassemble(const Instruction &inst);

} // namespace helios

#endif // ISA_DISASM_HH
