#include "isa/decoder.hh"

#include "common/bits.hh"

namespace helios
{

namespace
{

int64_t
immI(uint32_t word)
{
    return sextBits(bits(word, 31, 20), 12);
}

int64_t
immS(uint32_t word)
{
    return sextBits((bits(word, 31, 25) << 5) | bits(word, 11, 7), 12);
}

int64_t
immB(uint32_t word)
{
    const uint64_t imm = (bit(word, 31) << 12) | (bit(word, 7) << 11) |
                         (bits(word, 30, 25) << 5) |
                         (bits(word, 11, 8) << 1);
    return sextBits(imm, 13);
}

int64_t
immU(uint32_t word)
{
    // Keep the decoded immediate as imm[31:12] so that the encoder
    // round-trips; consumers shift when materializing the value.
    return sextBits(bits(word, 31, 12), 20);
}

int64_t
immJ(uint32_t word)
{
    const uint64_t imm = (bit(word, 31) << 20) |
                         (bits(word, 19, 12) << 12) |
                         (bit(word, 20) << 11) |
                         (bits(word, 30, 21) << 1);
    return sextBits(imm, 21);
}

Op
decodeLoad(uint32_t funct3)
{
    switch (funct3) {
      case 0: return Op::Lb;
      case 1: return Op::Lh;
      case 2: return Op::Lw;
      case 3: return Op::Ld;
      case 4: return Op::Lbu;
      case 5: return Op::Lhu;
      case 6: return Op::Lwu;
      default: return Op::Invalid;
    }
}

Op
decodeStore(uint32_t funct3)
{
    switch (funct3) {
      case 0: return Op::Sb;
      case 1: return Op::Sh;
      case 2: return Op::Sw;
      case 3: return Op::Sd;
      default: return Op::Invalid;
    }
}

Op
decodeBranch(uint32_t funct3)
{
    switch (funct3) {
      case 0: return Op::Beq;
      case 1: return Op::Bne;
      case 4: return Op::Blt;
      case 5: return Op::Bge;
      case 6: return Op::Bltu;
      case 7: return Op::Bgeu;
      default: return Op::Invalid;
    }
}

Op
decodeOpImm(uint32_t word, uint32_t funct3)
{
    switch (funct3) {
      case 0: return Op::Addi;
      case 1: return bits(word, 31, 26) == 0 ? Op::Slli : Op::Invalid;
      case 2: return Op::Slti;
      case 3: return Op::Sltiu;
      case 4: return Op::Xori;
      case 5:
        switch (bits(word, 31, 26)) {
          case 0x00: return Op::Srli;
          case 0x10: return Op::Srai;
          default: return Op::Invalid;
        }
      case 6: return Op::Ori;
      case 7: return Op::Andi;
      default: return Op::Invalid;
    }
}

Op
decodeOpImm32(uint32_t word, uint32_t funct3)
{
    switch (funct3) {
      case 0: return Op::Addiw;
      case 1: return bits(word, 31, 25) == 0 ? Op::Slliw : Op::Invalid;
      case 5:
        switch (bits(word, 31, 25)) {
          case 0x00: return Op::Srliw;
          case 0x20: return Op::Sraiw;
          default: return Op::Invalid;
        }
      default: return Op::Invalid;
    }
}

Op
decodeOp(uint32_t funct7, uint32_t funct3)
{
    if (funct7 == 0x01) {
        switch (funct3) {
          case 0: return Op::Mul;
          case 1: return Op::Mulh;
          case 2: return Op::Mulhsu;
          case 3: return Op::Mulhu;
          case 4: return Op::Div;
          case 5: return Op::Divu;
          case 6: return Op::Rem;
          case 7: return Op::Remu;
        }
    }
    switch (funct3) {
      case 0:
        if (funct7 == 0x00) return Op::Add;
        if (funct7 == 0x20) return Op::Sub;
        return Op::Invalid;
      case 1: return funct7 == 0 ? Op::Sll : Op::Invalid;
      case 2: return funct7 == 0 ? Op::Slt : Op::Invalid;
      case 3: return funct7 == 0 ? Op::Sltu : Op::Invalid;
      case 4: return funct7 == 0 ? Op::Xor : Op::Invalid;
      case 5:
        if (funct7 == 0x00) return Op::Srl;
        if (funct7 == 0x20) return Op::Sra;
        return Op::Invalid;
      case 6: return funct7 == 0 ? Op::Or : Op::Invalid;
      case 7: return funct7 == 0 ? Op::And : Op::Invalid;
      default: return Op::Invalid;
    }
}

Op
decodeOp32(uint32_t funct7, uint32_t funct3)
{
    if (funct7 == 0x01) {
        switch (funct3) {
          case 0: return Op::Mulw;
          case 4: return Op::Divw;
          case 5: return Op::Divuw;
          case 6: return Op::Remw;
          case 7: return Op::Remuw;
          default: return Op::Invalid;
        }
    }
    switch (funct3) {
      case 0:
        if (funct7 == 0x00) return Op::Addw;
        if (funct7 == 0x20) return Op::Subw;
        return Op::Invalid;
      case 1: return funct7 == 0 ? Op::Sllw : Op::Invalid;
      case 5:
        if (funct7 == 0x00) return Op::Srlw;
        if (funct7 == 0x20) return Op::Sraw;
        return Op::Invalid;
      default: return Op::Invalid;
    }
}

} // namespace

Instruction
decode(uint32_t word)
{
    Instruction inst;
    inst.raw = word;

    const uint32_t opcode = bits(word, 6, 0);
    const uint32_t funct3 = bits(word, 14, 12);
    const uint32_t funct7 = bits(word, 31, 25);
    inst.rd = static_cast<uint8_t>(bits(word, 11, 7));
    inst.rs1 = static_cast<uint8_t>(bits(word, 19, 15));
    inst.rs2 = static_cast<uint8_t>(bits(word, 24, 20));

    switch (opcode) {
      case 0x37:
        inst.op = Op::Lui;
        inst.imm = immU(word);
        inst.rs1 = inst.rs2 = 0;
        break;
      case 0x17:
        inst.op = Op::Auipc;
        inst.imm = immU(word);
        inst.rs1 = inst.rs2 = 0;
        break;
      case 0x6f:
        inst.op = Op::Jal;
        inst.imm = immJ(word);
        inst.rs1 = inst.rs2 = 0;
        break;
      case 0x67:
        inst.op = funct3 == 0 ? Op::Jalr : Op::Invalid;
        inst.imm = immI(word);
        inst.rs2 = 0;
        break;
      case 0x63:
        inst.op = decodeBranch(funct3);
        inst.imm = immB(word);
        inst.rd = 0;
        break;
      case 0x03:
        inst.op = decodeLoad(funct3);
        inst.imm = immI(word);
        inst.rs2 = 0;
        break;
      case 0x23:
        inst.op = decodeStore(funct3);
        inst.imm = immS(word);
        inst.rd = 0;
        break;
      case 0x13:
        inst.op = decodeOpImm(word, funct3);
        if (inst.op == Op::Slli || inst.op == Op::Srli ||
            inst.op == Op::Srai) {
            inst.imm = static_cast<int64_t>(bits(word, 25, 20));
        } else {
            inst.imm = immI(word);
        }
        inst.rs2 = 0;
        break;
      case 0x1b:
        inst.op = decodeOpImm32(word, funct3);
        if (inst.op == Op::Slliw || inst.op == Op::Srliw ||
            inst.op == Op::Sraiw) {
            inst.imm = static_cast<int64_t>(bits(word, 24, 20));
        } else {
            inst.imm = immI(word);
        }
        inst.rs2 = 0;
        break;
      case 0x33:
        inst.op = decodeOp(funct7, funct3);
        inst.imm = 0;
        break;
      case 0x3b:
        inst.op = decodeOp32(funct7, funct3);
        inst.imm = 0;
        break;
      case 0x0f:
        inst.op = Op::Fence;
        inst.rd = inst.rs1 = inst.rs2 = 0;
        inst.imm = 0;
        break;
      case 0x73:
        if (word == 0x00000073)
            inst.op = Op::Ecall;
        else if (word == 0x00100073)
            inst.op = Op::Ebreak;
        else
            inst.op = Op::Invalid;
        inst.rd = inst.rs1 = inst.rs2 = 0;
        inst.imm = 0;
        break;
      default:
        inst.op = Op::Invalid;
        break;
    }

    if (inst.op == Op::Invalid) {
        inst.rd = inst.rs1 = inst.rs2 = 0;
        inst.imm = 0;
    }
    return inst;
}

} // namespace helios
