#include "isa/disasm.hh"

#include "common/logging.hh"

namespace helios
{

std::string
disassemble(const Instruction &inst)
{
    const std::string name = opName(inst.op);
    const std::string rd = regName(inst.rd);
    const std::string rs1 = regName(inst.rs1);
    const std::string rs2 = regName(inst.rs2);
    const long long imm = inst.imm;

    switch (opInfo(inst.op).cls) {
      case OpClass::Load:
        return strFormat("%s %s, %lld(%s)", name.c_str(), rd.c_str(),
                         imm, rs1.c_str());
      case OpClass::Store:
        return strFormat("%s %s, %lld(%s)", name.c_str(), rs2.c_str(),
                         imm, rs1.c_str());
      case OpClass::Branch:
        if (inst.op == Op::Jal)
            return strFormat("jal %s, %lld", rd.c_str(), imm);
        if (inst.op == Op::Jalr)
            return strFormat("jalr %s, %lld(%s)", rd.c_str(), imm,
                             rs1.c_str());
        return strFormat("%s %s, %s, %lld", name.c_str(), rs1.c_str(),
                         rs2.c_str(), imm);
      case OpClass::Serializing:
        return name;
      default:
        break;
    }

    if (inst.op == Op::Lui || inst.op == Op::Auipc)
        return strFormat("%s %s, %lld", name.c_str(), rd.c_str(), imm);

    const OpInfo &info = opInfo(inst.op);
    if (info.readsRs2)
        return strFormat("%s %s, %s, %s", name.c_str(), rd.c_str(),
                         rs1.c_str(), rs2.c_str());
    return strFormat("%s %s, %s, %lld", name.c_str(), rd.c_str(),
                     rs1.c_str(), imm);
}

} // namespace helios
