/**
 * @file
 * Quickstart: assemble a RISC-V program, execute it functionally,
 * then run it through the Helios out-of-order pipeline and compare
 * against the no-fusion baseline.
 *
 *   $ ./examples/quickstart
 */

#include <cstdio>

#include "asm/assembler.hh"
#include "sim/hart.hh"
#include "uarch/pipeline.hh"

using namespace helios;

int
main()
{
    // A small kernel with obvious fusion opportunities: two loads off
    // the same cache line separated by ALU work (an NCSF pair), and a
    // `li` (lui+addiw) pair the consecutive-fusion idioms catch.
    const char *source = R"(
        la s0, data
        li s1, 20000
        li s2, 0
    loop:
        ld t0, 0(s0)          # head nucleus
        add s2, s2, t0
        xor t2, s2, t0        # catalyst
        ld t1, 16(s0)         # tail nucleus (same line, NCSF)
        add s2, s2, t1
        li t3, 1234567        # lui+addiw -> consecutive fusion
        add s2, s2, t3
        addi s1, s1, -1
        bnez s1, loop
        mv a0, s2
        li a7, 93
        ecall

        .data
        .align 6
    data:
        .dword 3, 5, 7, 9, 11, 13, 15, 17
    )";

    const Program program = assemble(source);
    std::printf("assembled %zu instructions\n", program.numInsts());

    // 1) Functional execution (the ground truth).
    {
        Memory memory;
        Hart hart(memory);
        hart.reset(program);
        hart.run();
        std::printf("functional result: a0 = %llu after %llu insts\n",
                    (unsigned long long)hart.exitCode(),
                    (unsigned long long)hart.instsExecuted());
    }

    // 2) Timing simulation, no fusion vs Helios.
    for (FusionMode mode : {FusionMode::None, FusionMode::Helios}) {
        Memory memory;
        Hart hart(memory);
        hart.reset(program);
        HartFeed feed(hart);
        Pipeline pipeline(CoreParams::icelake(mode), feed);
        const PipelineResult result = pipeline.run();
        std::printf(
            "%-12s %8llu cycles  IPC %.3f  csf pairs %llu  "
            "ncsf pairs %llu\n",
            fusionModeName(mode), (unsigned long long)result.cycles,
            result.ipc(),
            (unsigned long long)(pipeline.stats().get("pairs.csf_mem") +
                                 pipeline.stats().get(
                                     "pairs.csf_other")),
            (unsigned long long)pipeline.stats().get("pairs.ncsf"));
    }
    return 0;
}
