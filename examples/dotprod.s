# Fixed-point dot product over two in-memory vectors, unrolled x2.
#
# The inner loop is deliberately fusion-friendly: paired loads off the
# same base, address increments feeding the next iteration, and a
# running accumulation — the access pattern Helios' non-consecutive
# store/load fusion targets. CI runs this under
# `helios_run --sweep --audit` so every fusion configuration must
# reproduce the same result while the invariant auditor watches.

        # s0 = vector A, s1 = vector B, s2 = element count (pairs)
        addi    s0, sp, -2048
        addi    s1, s0, -2048
        li      s2, 128

        # ---- initialise A[i] = i + 3, B[i] = 2*i + 1 ----
        mv      t0, s0
        mv      t1, s1
        li      t2, 0
init:
        addi    t3, t2, 3
        sd      t3, 0(t0)
        slli    t4, t2, 1
        addi    t4, t4, 1
        sd      t4, 0(t1)
        addi    t0, t0, 8
        addi    t1, t1, 8
        addi    t2, t2, 1
        slli    t5, s2, 1
        blt     t2, t5, init

        # ---- acc = sum A[i]*B[i], two elements per iteration ----
        mv      t0, s0
        mv      t1, s1
        li      a0, 0
        mv      t2, s2
loop:
        ld      t3, 0(t0)
        ld      t4, 0(t1)
        ld      t5, 8(t0)
        ld      t6, 8(t1)
        mul     t3, t3, t4
        mul     t5, t5, t6
        add     a0, a0, t3
        add     a0, a0, t5
        addi    t0, t0, 16
        addi    t1, t1, 16
        addi    t2, t2, -1
        bnez    t2, loop

        # exit with the low bits of the accumulator
        andi    a0, a0, 255
        li      a7, 93
        ecall
