/**
 * @file
 * Fusion explorer: run any workload of the suite under every fusion
 * configuration and print a side-by-side comparison of IPC, fused
 * pairs and the Helios repair events.
 *
 *   $ ./examples/fusion_explorer 657.xz_s_1 [max_insts]
 *   $ ./examples/fusion_explorer --list
 *   $ ./examples/fusion_explorer --trace 605.mcf_s   # pipeview lines
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <iostream>

#include "harness/report.hh"
#include "harness/runner.hh"
#include "sim/hart.hh"
#include "uarch/pipeline.hh"

using namespace helios;

namespace
{

/// Print the first committed µ-ops of a Helios run, pipeview-style.
void
traceRun(const Workload &workload, uint64_t budget)
{
    Memory memory;
    Hart hart(memory);
    hart.reset(workload.program());
    HartFeed feed(hart, budget);
    CoreParams params = CoreParams::icelake(FusionMode::Helios);
    params.traceOut = &std::cout;
    std::printf("  seq    pc    [Fetch Rename Dispatch Issue Complete "
                "@commit]\n");
    Pipeline pipeline(params, feed);
    pipeline.run();
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--trace") == 0) {
        const std::string name = argc > 2 ? argv[2] : "605.mcf_s";
        traceRun(findWorkload(name),
                 argc > 3 ? std::strtoull(argv[3], nullptr, 0) : 300);
        return 0;
    }
    if (argc > 1 && std::strcmp(argv[1], "--list") == 0) {
        for (const Workload &workload : allWorkloads())
            std::printf("%-20s %s\n", workload.name.c_str(),
                        workload.description.c_str());
        return 0;
    }

    const std::string name = argc > 1 ? argv[1] : "602.gcc_s_1";
    const uint64_t budget =
        argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 200'000;
    const Workload &workload = findWorkload(name);

    std::printf("workload: %s — %s\n", workload.name.c_str(),
                workload.description.c_str());

    Table table({"config", "IPC", "vs base", "CSF mem", "CSF other",
                 "NCSF", "mispredicts", "unfused"});
    double base_ipc = 0.0;
    for (FusionMode mode :
         {FusionMode::None, FusionMode::RiscvFusion, FusionMode::CsfSbr,
          FusionMode::RiscvFusionPP, FusionMode::Helios,
          FusionMode::Oracle}) {
        const RunResult result = runOne(workload, mode, budget);
        if (mode == FusionMode::None)
            base_ipc = result.ipc();
        table.addRow(
            {fusionModeName(mode), Table::num(result.ipc(), 3),
             Table::pct(result.ipc() / base_ipc - 1.0),
             std::to_string(result.stat("pairs.csf_mem")),
             std::to_string(result.stat("pairs.csf_other")),
             std::to_string(result.stat("pairs.ncsf")),
             std::to_string(result.stat("fusion.mispredicts")),
             std::to_string(result.stat("fusion.unfused"))});
    }
    table.print();

    // Helios internals.
    const RunResult helios_run =
        runOne(workload, FusionMode::Helios, budget);
    std::printf("\nHelios machinery for this run:\n");
    for (const char *stat :
         {"uch.matches", "fusion.fp_attempts", "fusion.fp_applied",
          "fusion.validated", "fusion.unfuse_deadlock",
          "fusion.unfuse_store_catalyst", "fusion.unfuse_serializing",
          "fusion.mispredict_region", "pairs.dbr",
          "pairs.distance_sum"}) {
        std::printf("  %-30s %llu\n", stat,
                    (unsigned long long)helios_run.stat(stat));
    }
    return 0;
}
