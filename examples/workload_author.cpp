/**
 * @file
 * Workload authoring walkthrough: write a self-checking RISC-V kernel
 * the way the suite's kernels are written — assembly plus a C++
 * reference of the same algorithm — validate it functionally, then
 * measure it under the fusion configurations and the stream analyses.
 *
 *   $ ./examples/workload_author
 */

#include <cstdio>

#include "harness/analysis.hh"
#include "harness/runner.hh"
#include "sim/hart.hh"

using namespace helios;

namespace
{

/// The kernel: strided sums over an array of 3-field records, the
/// kind of code that is full of load-pair opportunities.
constexpr uint64_t numRecords = 2000;
constexpr uint64_t numRounds = 10;

const char *kernelSource = R"(
    la s0, records
    li s1, {N}

    # build records: {key, value, weight}
    li t0, 0
build:
    li t1, 24
    mul t1, t1, t0
    add t1, t1, s0
    sd t0, 0(t1)
    slli t2, t0, 1
    addi t2, t2, 3
    sd t2, 8(t1)
    xori t3, t2, 0x2a
    sd t3, 16(t1)
    addi t0, t0, 1
    blt t0, s1, build

    li s2, 0
    li s3, {ROUNDS}
round:
    li t0, 0
    mv t1, s0
scan:
    ld t2, 8(t1)     # value
    ld t3, 16(t1)    # weight: contiguous -> consecutive fusion
    mul t4, t2, t3
    add s2, s2, t4
    ld t5, 0(t1)     # key: same line -> predictive fusion
    xor s2, s2, t5
    addi t1, t1, 24
    addi t0, t0, 1
    blt t0, s1, scan
    addi s3, s3, -1
    bnez s3, round

    mv a0, s2
    li a7, 93
    ecall

    .data
    .align 6
records:
    .zero {BYTES}
)";

/// The C++ reference mirrors the kernel's arithmetic exactly.
uint64_t
reference()
{
    uint64_t key[numRecords], value[numRecords], weight[numRecords];
    for (uint64_t i = 0; i < numRecords; ++i) {
        key[i] = i;
        value[i] = 2 * i + 3;
        weight[i] = value[i] ^ 0x2a;
    }
    uint64_t sum = 0;
    for (uint64_t round = 0; round < numRounds; ++round) {
        for (uint64_t i = 0; i < numRecords; ++i) {
            sum += value[i] * weight[i];
            sum ^= key[i];
        }
    }
    return sum;
}

} // namespace

int
main()
{
    using workload_detail::substitute;
    std::string source = kernelSource;
    source = substitute(source, "N", numRecords);
    source = substitute(source, "ROUNDS", numRounds);
    source = substitute(source, "BYTES", numRecords * 24);

    Workload workload{"records_scan", Suite::MiBench,
                      "record scanning demo", source, reference};

    // 1) Self-check against the C++ reference.
    Memory memory;
    Hart hart(memory);
    hart.reset(workload.program());
    hart.run();
    const uint64_t expected = reference();
    std::printf("checksum: asm %llu, reference %llu — %s\n",
                (unsigned long long)hart.exitCode(),
                (unsigned long long)expected,
                hart.exitCode() == expected ? "MATCH" : "MISMATCH");
    if (hart.exitCode() != expected)
        return 1;

    // 2) Stream characterization (what could fuse?).
    const auto trace = functionalTrace(workload);
    const NcsfPotentialStats potential = analyzeNcsfPotential(trace);
    std::printf("pairable: CSF %.1f%%  NCSF %.1f%%  (of %llu µ-ops)\n",
                100.0 * potential.fraction(potential.csfSbr +
                                           potential.csfDbr),
                100.0 * potential.fraction(potential.ncsfSbr +
                                           potential.ncsfDbr),
                (unsigned long long)potential.totalUops);

    // 3) Timing under the main configurations.
    for (FusionMode mode : {FusionMode::None, FusionMode::CsfSbr,
                            FusionMode::Helios, FusionMode::Oracle}) {
        const RunResult result = runOne(workload, mode);
        std::printf("%-14s IPC %.3f  fused pairs %llu\n",
                    fusionModeName(mode), result.ipc(),
                    (unsigned long long)(result.stat("pairs.csf_mem") +
                                         result.stat("pairs.ncsf")));
    }
    return 0;
}
