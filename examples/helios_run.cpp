/**
 * @file
 * Command-line driver: assemble and simulate a RISC-V assembly file.
 *
 *   $ ./examples/helios_run program.s [options]
 *       --config <NoFusion|RISCVFusion|CSF-SBR|RISCVFusion++|
 *                 Helios|OracleFusion>     (default Helios)
 *       --max-insts N                      instruction budget
 *       --trace                            pipeview commit trace
 *       --stats                            dump every counter
 *       --functional                       skip the timing model
 *       --sweep                            run ALL configurations as a
 *                                          parallel matrix and print a
 *                                          comparison table
 *       --jobs N                           worker threads for --sweep
 *                                          (default HELIOS_JOBS or all
 *                                          hardware threads)
 *       --audit                            attach the pipeline invariant
 *                                          auditor (needs HELIOS_AUDIT);
 *                                          with --sweep, runs the
 *                                          differential harness and
 *                                          prints its JSON report on
 *                                          violation. Exit 1 when any
 *                                          invariant fails.
 *
 * The program uses the same conventions as the workload suite: exit
 * through `li a7, 93; ecall` with the result in a0; `ecall` with
 * a7=64 writes bytes (a1=buf, a2=len) to stdout.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "asm/assembler.hh"
#include "common/logging.hh"
#include "harness/differential.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "sim/hart.hh"
#include "uarch/auditor.hh"
#include "uarch/pipeline.hh"

using namespace helios;

namespace
{

void
usage()
{
    std::fprintf(stderr,
                 "usage: helios_run <file.s> [--config NAME] "
                 "[--max-insts N] [--trace] [--stats] "
                 "[--functional] [--sweep] [--jobs N] [--audit]\n");
}

/**
 * Run every fusion configuration over the file as a parallel matrix.
 * With @a audit, route the sweep through the differential harness so
 * cross-configuration state and per-run invariants are checked too.
 */
int
runSweep(const std::string &path, const std::string &source,
         uint64_t max_insts, unsigned jobs, bool audit)
{
    // Wrap the assembled file as an ad-hoc workload so it can ride
    // the same matrix machinery as the paper sweeps.
    Workload workload;
    workload.name = path;
    workload.suite = Suite::MiBench;
    workload.description = "user program";
    workload.source = source;

    const FusionMode modes[] = {FusionMode::None,
                                FusionMode::RiscvFusion,
                                FusionMode::CsfSbr,
                                FusionMode::RiscvFusionPP,
                                FusionMode::Helios, FusionMode::Oracle};

    if (jobs == 0)
        jobs = defaultJobCount();

    std::vector<RunResult> results;
    const DiffReport *diff = nullptr;
    DiffReport report;
    Stopwatch timer;
    if (audit) {
        DiffOptions opts;
        opts.modes.assign(std::begin(modes), std::end(modes));
        opts.maxInsts = max_insts;
        opts.audit = true;
        opts.jobs = jobs;
        report = runDifferential({&workload}, opts);
        results = report.results;
        diff = &report;
    } else {
        std::vector<MatrixCell> cells;
        for (FusionMode mode : modes)
            cells.emplace_back(workload, mode, max_insts);
        results = runMatrix(cells, jobs);
    }
    const double elapsed = timer.seconds();

    const double base = results[0].ipc();
    Table table({"config", "cycles", "uops", "IPC", "vs NoFusion"});
    for (const RunResult &result : results)
        table.addRow({fusionModeName(result.mode),
                      std::to_string(result.cycles),
                      std::to_string(result.uops),
                      Table::num(result.ipc(), 3),
                      base > 0 ? Table::num(result.ipc() / base, 3)
                               : "-"});
    table.print();
    printMatrixTiming(results.size(), jobs, elapsed);

    if (diff) {
        if (diff->ok()) {
            std::printf("differential audit: ok (%zu configs, "
                        "0 violations)\n", results.size());
        } else {
            std::printf("differential audit: %zu violation(s)\n%s\n",
                        diff->violations.size(),
                        diff->toJson().c_str());
            return 1;
        }
    }
    return 0;
}

/** Attach an auditor to one pipeline run; report and set exit status. */
int
auditEpilogue(const PipelineAuditor &auditor)
{
    if (auditor.ok()) {
        std::printf("audit: ok (%llu checks over %llu uops)\n",
                    (unsigned long long)auditor.checksPerformed(),
                    (unsigned long long)auditor.uopsAudited());
        return 0;
    }
    std::printf("audit: %zu violation(s)\n%s\n",
                auditor.violations().size(), auditor.toJson().c_str());
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }

    std::string path;
    FusionMode mode = FusionMode::Helios;
    uint64_t max_insts = UINT64_MAX;
    unsigned jobs = 0;
    bool trace = false, dump_stats = false, functional_only = false;
    bool sweep = false, audit = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--config" && i + 1 < argc) {
            mode = fusionModeFromName(argv[++i]);
        } else if (arg == "--max-insts" && i + 1 < argc) {
            max_insts = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--jobs" && i + 1 < argc) {
            jobs = unsigned(std::strtoul(argv[++i], nullptr, 0));
        } else if (arg == "--trace") {
            trace = true;
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--functional") {
            functional_only = true;
        } else if (arg == "--sweep") {
            sweep = true;
        } else if (arg == "--audit") {
            audit = true;
        } else if (arg[0] == '-') {
            usage();
            return 2;
        } else {
            path = arg;
        }
    }
    if (path.empty()) {
        usage();
        return 2;
    }

    std::ifstream file(path);
    if (!file) {
        std::fprintf(stderr, "helios_run: cannot open '%s'\n",
                     path.c_str());
        return 2;
    }
    std::ostringstream text;
    text << file.rdbuf();

    try {
        const Program program = assemble(text.str());
        std::printf("assembled %zu instructions, %zu data bytes\n",
                    program.numInsts(), program.data.size());

        if (audit && !auditHooksCompiled())
            fatal("--audit needs the pipeline audit hooks; rebuild "
                  "with -DHELIOS_AUDIT=ON");
        if (audit && functional_only)
            fatal("--audit checks the timing pipeline; drop "
                  "--functional");

        if (sweep)
            return runSweep(path, text.str(), max_insts, jobs, audit);

        Memory memory;
        Hart hart(memory);
        hart.reset(program);

        Stopwatch timer;
        if (functional_only) {
            const uint64_t executed = hart.run(max_insts);
            const double elapsed = timer.seconds();
            std::printf("functional: %llu instructions in %.3f s "
                        "(%.1f M inst/s, pre-decoded %zu static "
                        "insts)\n",
                        (unsigned long long)executed, elapsed,
                        elapsed > 0 ? double(executed) / elapsed / 1e6
                                    : 0.0,
                        hart.decodeCacheSize());
        } else {
            HartFeed feed(hart, max_insts);
            CoreParams params = CoreParams::icelake(mode);
            if (trace)
                params.traceOut = &std::cout;
            Pipeline pipeline(params, feed);
            PipelineAuditor auditor(params);
            if (audit)
                pipeline.attachAuditor(&auditor);
            const PipelineResult result = pipeline.run();
            const double elapsed = timer.seconds();
            std::printf("%s: %llu instructions in %llu cycles "
                        "(IPC %.3f) [%.3f s wall, %.1f K cycles/s]\n",
                        fusionModeName(mode),
                        (unsigned long long)result.instructions,
                        (unsigned long long)result.cycles,
                        result.ipc(), elapsed,
                        elapsed > 0 ? double(result.cycles) / elapsed /
                                          1e3
                                    : 0.0);
            if (dump_stats)
                std::fputs(pipeline.stats().toString().c_str(), stdout);
            if (audit) {
                const int status = auditEpilogue(auditor);
                if (status)
                    return status;
            }
        }

        if (!hart.output().empty())
            std::printf("program output: %s\n", hart.output().c_str());
        if (hart.exited())
            std::printf("exit code (a0): %llu\n",
                        (unsigned long long)hart.exitCode());
        else
            std::printf("stopped before exit (budget reached)\n");
    } catch (const FatalError &error) {
        std::fprintf(stderr, "helios_run: %s\n", error.what());
        return 1;
    }
    return 0;
}
