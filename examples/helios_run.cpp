/**
 * @file
 * Command-line driver: assemble and simulate a RISC-V assembly file.
 *
 *   $ ./examples/helios_run program.s [options]
 *       --config <NoFusion|RISCVFusion|CSF-SBR|RISCVFusion++|
 *                 Helios|OracleFusion>     (default Helios)
 *       --max-insts N                      instruction budget
 *       --trace                            pipeview commit trace
 *       --stats                            dump every counter
 *       --functional                       skip the timing model
 *
 * The program uses the same conventions as the workload suite: exit
 * through `li a7, 93; ecall` with the result in a0; `ecall` with
 * a7=64 writes bytes (a1=buf, a2=len) to stdout.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "asm/assembler.hh"
#include "common/logging.hh"
#include "sim/hart.hh"
#include "uarch/pipeline.hh"

using namespace helios;

namespace
{

void
usage()
{
    std::fprintf(stderr,
                 "usage: helios_run <file.s> [--config NAME] "
                 "[--max-insts N] [--trace] [--stats] "
                 "[--functional]\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }

    std::string path;
    FusionMode mode = FusionMode::Helios;
    uint64_t max_insts = UINT64_MAX;
    bool trace = false, dump_stats = false, functional_only = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--config" && i + 1 < argc) {
            mode = fusionModeFromName(argv[++i]);
        } else if (arg == "--max-insts" && i + 1 < argc) {
            max_insts = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--trace") {
            trace = true;
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--functional") {
            functional_only = true;
        } else if (arg[0] == '-') {
            usage();
            return 2;
        } else {
            path = arg;
        }
    }
    if (path.empty()) {
        usage();
        return 2;
    }

    std::ifstream file(path);
    if (!file) {
        std::fprintf(stderr, "helios_run: cannot open '%s'\n",
                     path.c_str());
        return 2;
    }
    std::ostringstream text;
    text << file.rdbuf();

    try {
        const Program program = assemble(text.str());
        std::printf("assembled %zu instructions, %zu data bytes\n",
                    program.numInsts(), program.data.size());

        Memory memory;
        Hart hart(memory);
        hart.reset(program);

        if (functional_only) {
            hart.run(max_insts);
        } else {
            HartFeed feed(hart, max_insts);
            CoreParams params = CoreParams::icelake(mode);
            if (trace)
                params.traceOut = &std::cout;
            Pipeline pipeline(params, feed);
            const PipelineResult result = pipeline.run();
            std::printf("%s: %llu instructions in %llu cycles "
                        "(IPC %.3f)\n",
                        fusionModeName(mode),
                        (unsigned long long)result.instructions,
                        (unsigned long long)result.cycles,
                        result.ipc());
            if (dump_stats)
                std::fputs(pipeline.stats().toString().c_str(), stdout);
        }

        if (!hart.output().empty())
            std::printf("program output: %s\n", hart.output().c_str());
        if (hart.exited())
            std::printf("exit code (a0): %llu\n",
                        (unsigned long long)hart.exitCode());
        else
            std::printf("stopped before exit (budget reached)\n");
    } catch (const FatalError &error) {
        std::fprintf(stderr, "helios_run: %s\n", error.what());
        return 1;
    }
    return 0;
}
