/**
 * @file
 * Command-line driver: assemble and simulate a RISC-V assembly file.
 *
 *   $ ./examples/helios_run program.s [options]
 *   $ ./examples/helios_run --elf program.elf [options]
 *       --elf FILE                         run a statically linked
 *                                          RV64IM ELF64 executable
 *                                          instead of assembling a .s
 *                                          file (conflicts with a
 *                                          positional source path);
 *                                          the guest exit code is
 *                                          propagated for single runs
 *       --argv ARG...                      remaining arguments become
 *                                          the guest argv[1..]
 *                                          (argv[0] is the ELF path);
 *                                          only valid with --elf
 *       --emit-elf FILE                    assemble the .s input, pack
 *                                          it into a static ELF64
 *                                          image at FILE and exit
 *                                          without simulating
 *       --config <NoFusion|RISCVFusion|CSF-SBR|RISCVFusion++|
 *                 Helios|OracleFusion>     (default Helios)
 *       --max-insts N                      instruction budget
 *       --trace FILE                       µop lifecycle trace: Chrome
 *                                          trace_event JSON to FILE
 *                                          (load in Perfetto / chrome:
 *                                          //tracing) plus a Konata
 *                                          pipeline view to FILE.kanata
 *       --pipeview                         legacy commit trace on stdout
 *       --stats                            dump every counter (per
 *                                          config with --sweep)
 *       --cpi-stack                        print the exact top-down
 *                                          cycle-accounting stack
 *       --report FILE                      write a machine-readable
 *                                          RunReport JSON file (single
 *                                          run or the whole --sweep)
 *       --profile FILE                     enable the per-PC fusion-
 *                                          site profiler and write a
 *                                          schema-v2 report (with the
 *                                          profile section) to FILE
 *       --window N                         profiler time-series window
 *                                          in cycles (default 10000;
 *                                          0 disables windowed samples)
 *       --log-level LEVEL                  logger threshold: trace,
 *                                          debug, info, warn, error or
 *                                          off (default info; env
 *                                          HELIOS_LOG)
 *       --log-json FILE                    mirror every log record as
 *                                          a JSON-lines object to FILE
 *                                          (env HELIOS_LOG_JSON)
 *       --host-trace FILE                  harness span trace: Chrome
 *                                          trace_event JSON of host
 *                                          phases (assemble,
 *                                          functional, detailed-sim,
 *                                          report-write) and per-cell
 *                                          sweep-worker spans, written
 *                                          at exit (env
 *                                          HELIOS_HOST_TRACE)
 *       --metrics FILE                     host metrics (per-phase
 *                                          wall-clock, peak RSS, guest
 *                                          and cell throughput, build
 *                                          stamp) in Prometheus text
 *                                          format, written at exit
 *                                          (env HELIOS_METRICS); also
 *                                          stamps the `host` section
 *                                          into --report files
 *       --ledger DIR                       record the finished run(s)
 *                                          into the content-addressed
 *                                          run ledger at DIR (created
 *                                          if absent; env
 *                                          HELIOS_LEDGER); a run whose
 *                                          key (program hash, config
 *                                          hash, budget, build) is
 *                                          already present is a keyed
 *                                          hit and writes nothing.
 *                                          Query with bench/helios_db.
 *       --annotate                         profile the run and print
 *                                          annotated disassembly
 *                                          (execs / coverage / stalls
 *                                          per line) on stdout
 *       --time                             print a machine-greppable
 *                                          simulation-speed line:
 *                                          wall-clock seconds, host-
 *                                          MHz-equivalent (simulated
 *                                          cycles per host second) and
 *                                          simulated µops per second;
 *                                          with --functional the line
 *                                          is wall seconds + Minst/s
 *       --functional                       skip the timing model and
 *                                          execute through the fast-
 *                                          forward engine (decoder
 *                                          cache + threaded dispatch)
 *       --engine fast|reference            functional engine choice
 *                                          (default fast; reference
 *                                          is the step()-loop baseline
 *                                          the fast engine is verified
 *                                          against)
 *       --sweep                            run ALL configurations as a
 *                                          parallel matrix and print a
 *                                          comparison table
 *       --jobs N                           worker threads for --sweep
 *                                          (default HELIOS_JOBS or all
 *                                          hardware threads)
 *       --sample N                         sampled simulation: fast-
 *                                          forward functionally, cut N
 *                                          evenly spaced checkpoints
 *                                          across the --max-insts
 *                                          frame (required), and run
 *                                          detailed timing only on a
 *                                          warmup+interval window from
 *                                          each cut; reports weighted
 *                                          IPC / fusion coverage with
 *                                          95% confidence intervals.
 *                                          Composes with --sweep (one
 *                                          checkpoint set serves every
 *                                          configuration), --report
 *                                          (schema-v5 `sampled`
 *                                          section) and --ledger
 *                                          (keyed by sampling spec)
 *       --interval M                       measured instructions per
 *                                          sample window (default
 *                                          100000)
 *       --warmup K                         detailed warmup instructions
 *                                          before each measured window
 *                                          (default 10000; must be
 *                                          less than --interval)
 *       --checkpoint-dir DIR               persist/reuse checkpoints
 *                                          under DIR (created if
 *                                          absent); cuts are keyed by
 *                                          program hash and schedule,
 *                                          so repeated runs and config
 *                                          sweeps skip the fast-
 *                                          forward entirely
 *       --audit                            attach the pipeline invariant
 *                                          auditor (needs HELIOS_AUDIT);
 *                                          with --sweep, runs the
 *                                          differential harness and
 *                                          prints its JSON report on
 *                                          violation. Exit 1 when any
 *                                          invariant fails.
 *
 * Unknown options, options missing their argument, and output paths
 * (--trace/--report/--profile) that cannot be opened for writing exit
 * with status 2 — the last is checked up front so a long simulation
 * never runs just to lose its results. See OBSERVABILITY.md for the
 * trace, report and profile formats.
 *
 * The program uses the same conventions as the workload suite: exit
 * through `li a7, 93; ecall` with the result in a0; `ecall` with
 * a7=64 writes bytes (a1=buf, a2=len) to stdout.
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <sstream>

#include "asm/assembler.hh"
#include "common/bits.hh"
#include "common/logging.hh"
#include "harness/elf_image.hh"
#include "harness/differential.hh"
#include "harness/report.hh"
#include "harness/run_ledger.hh"
#include "harness/run_report.hh"
#include "harness/runner.hh"
#include "harness/sampling.hh"
#include "ledger/ledger.hh"
#include "sim/elf_loader.hh"
#include "sim/hart.hh"
#include "telemetry/annotate.hh"
#include "telemetry/host_metrics.hh"
#include "telemetry/host_trace.hh"
#include "telemetry/lifecycle.hh"
#include "telemetry/profiler.hh"
#include "uarch/auditor.hh"
#include "uarch/pipeline.hh"

using namespace helios;

namespace
{

void
usage()
{
    std::fprintf(stderr,
                 "usage: helios_run <file.s> [--config NAME] "
                 "[--max-insts N] [--trace FILE] [--pipeview] "
                 "[--stats] [--cpi-stack] [--report FILE] "
                 "[--profile FILE] [--window N] [--annotate] "
                 "[--time] [--functional] [--engine fast|reference] "
                 "[--sweep] [--jobs N] [--audit] [--emit-elf FILE] "
                 "[--sample N] [--interval M] [--warmup K] "
                 "[--checkpoint-dir DIR] "
                 "[--log-level LEVEL] [--log-json FILE] "
                 "[--host-trace FILE] [--metrics FILE] "
                 "[--ledger DIR]\n"
                 "       helios_run --elf <file.elf> [options] "
                 "[--argv ARG...]\n");
}

/** One greppable line per recording attempt, so scripts (and
 *  test_cli) can tell a fresh record from a keyed replay. */
void
noteLedgerOutcome(LedgerOutcome outcome)
{
    const Ledger *ledger = Ledger::global();
    if (!ledger || outcome == LedgerOutcome::Disarmed)
        return;
    if (outcome == LedgerOutcome::Recorded)
        std::printf("ledger: recorded 1 run -> %s\n",
                    ledger->dir().c_str());
    else
        std::printf("ledger: hit (run already recorded in %s)\n",
                    ledger->dir().c_str());
}

/**
 * Output paths fail fast: a path that cannot be opened for writing is
 * a usage error (exit 2) detected before the simulation runs, not a
 * silent or late failure after minutes of work. The append-mode probe
 * never truncates an existing file.
 */
void
requireWritable(const std::string &path, const char *flag)
{
    if (path.empty())
        return;
    std::ofstream probe(path, std::ios::app);
    if (!probe) {
        std::fprintf(stderr,
                     "helios_run: %s: cannot open '%s' for writing\n",
                     flag, path.c_str());
        std::exit(2);
    }
}

/** Write the lifecycle trace pair: Chrome JSON plus Konata text. */
void
writeTraces(const LifecycleTracer &tracer, const std::string &path)
{
    {
        std::ofstream out(path);
        if (!out)
            fatal("cannot open trace file '%s'", path.c_str());
        tracer.writeChromeTrace(out);
    }
    const std::string konata_path = path + ".kanata";
    {
        std::ofstream out(konata_path);
        if (!out)
            fatal("cannot open trace file '%s'", konata_path.c_str());
        tracer.writeKonata(out);
    }
    std::printf("trace: %zu uop records (%zu committed, %zu squashed) "
                "-> %s (Chrome/Perfetto), %s (Konata)\n",
                tracer.numRecords(), tracer.numCommitted(),
                tracer.numSquashed(), path.c_str(),
                konata_path.c_str());
}

/**
 * The --time line: how fast the *simulator* ran, in units that
 * compare directly across hosts and changes — wall-clock seconds,
 * host-MHz-equivalent (simulated cycles per host second), and
 * simulated µops per host second. One fixed-format line so scripts
 * and tests can grep it.
 */
void
printTimeLine(double seconds, uint64_t cycles, uint64_t uops)
{
    const double mhz =
        seconds > 0 ? double(cycles) / seconds / 1e6 : 0.0;
    const double muops =
        seconds > 0 ? double(uops) / seconds / 1e6 : 0.0;
    std::printf("time: %.3f s wall, %.3f MHz-equivalent, "
                "%.3f Muops/s\n",
                seconds, mhz, muops);
}

/**
 * Parse a numeric option value; garbage, trailing junk, negatives and
 * (unless @a allow_zero) zero are usage errors (exit 2) like any
 * other malformed option.
 */
uint64_t
parseCount(const char *text, const char *flag, bool allow_zero = false)
{
    errno = 0;
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 0);
    if (end == text || *end != '\0' || text[0] == '-' ||
        errno == ERANGE || (value == 0 && !allow_zero)) {
        std::fprintf(stderr,
                     "helios_run: %s needs a positive integer "
                     "(got '%s')\n",
                     flag, text);
        usage();
        std::exit(2);
    }
    return value;
}

/**
 * Sampled run: one configuration, or the full --sweep matrix over a
 * single shared checkpoint set (checkpoints are config-independent,
 * so the fast-forward is paid once for all six configurations).
 * Prints one greppable estimate line per configuration and routes
 * --report/--ledger through the schema-v5 `sampled` section.
 */
int
runSampledCli(const Workload &workload, const SamplingSpec &spec,
              FusionMode mode, bool sweep, unsigned jobs, bool timing,
              const std::string &report_path)
{
    Stopwatch timer;
    const CheckpointSet set = buildCheckpoints(workload, spec);
    std::printf("sampling: %zu checkpoint(s) over a %llu-instruction "
                "frame (%s), warmup %llu + interval %llu\n",
                set.checkpoints.size(),
                (unsigned long long)spec.totalBudget,
                set.reused ? "reused from checkpoint dir"
                           : "fast-forwarded",
                (unsigned long long)spec.warmupInsts,
                (unsigned long long)spec.intervalInsts);

    std::vector<FusionMode> modes;
    if (sweep)
        modes = {FusionMode::None,     FusionMode::RiscvFusion,
                 FusionMode::CsfSbr,   FusionMode::RiscvFusionPP,
                 FusionMode::Helios,   FusionMode::Oracle};
    else
        modes = {mode};

    std::vector<SampledResult> results;
    for (FusionMode m : modes)
        results.push_back(runSampled(workload, CoreParams::icelake(m),
                                     spec, set, jobs));
    const double elapsed = timer.seconds();

    for (const SampledResult &result : results)
        std::printf("sampled: %s IPC %.3f +- %.4f (95%% CI, %zu/%llu "
                    "intervals, coverage %.3f +- %.4f)\n",
                    fusionModeName(result.mode), result.ipc.mean,
                    result.ipc.ci95Half, result.intervals.size(),
                    (unsigned long long)spec.sampleCount,
                    result.coverage.mean, result.coverage.ci95Half);

    if (sweep) {
        const double base = results[0].ipc.mean;
        Table table({"config", "samples", "IPC", "95% CI half",
                     "coverage", "vs NoFusion"});
        for (const SampledResult &result : results)
            table.addRow({fusionModeName(result.mode),
                          std::to_string(result.intervals.size()),
                          Table::num(result.ipc.mean, 3),
                          Table::num(result.ipc.ci95Half, 4),
                          Table::num(result.coverage.mean, 3),
                          base > 0
                              ? Table::num(result.ipc.mean / base, 3)
                              : "-"});
        table.print();
    }
    if (timing) {
        uint64_t total_cycles = 0, total_uops = 0;
        for (const SampledResult &result : results) {
            total_cycles += result.measuredCycles;
            total_uops += result.measuredUops;
        }
        printTimeLine(elapsed, total_cycles, total_uops);
    }

    if (!report_path.empty()) {
        HostSpan report_span("report-write");
        RunReportFile file;
        file.generator = "helios_run --sample";
        for (const SampledResult &result : results)
            file.runs.push_back(makeSampledRunReport(result));
        attachHostSection(file);
        file.save(report_path);
        std::printf("report: %zu sampled run(s) -> %s\n",
                    file.runs.size(), report_path.c_str());
    }

    if (Ledger::global())
        for (const SampledResult &result : results)
            noteLedgerOutcome(recordSampledToLedger(result));
    return 0;
}

/**
 * Run every fusion configuration over the file as a parallel matrix.
 * With @a audit, route the sweep through the differential harness so
 * cross-configuration state and per-run invariants are checked too.
 */
int
runSweep(const Workload &workload, uint64_t max_insts, unsigned jobs,
         bool audit, bool dump_stats, bool cpi_stack, bool timing,
         const std::string &report_path,
         const std::string &profile_path, uint64_t window_cycles)
{
    const FusionMode modes[] = {FusionMode::None,
                                FusionMode::RiscvFusion,
                                FusionMode::CsfSbr,
                                FusionMode::RiscvFusionPP,
                                FusionMode::Helios, FusionMode::Oracle};

    if (jobs == 0)
        jobs = defaultJobCount();

    std::vector<RunResult> results;
    const DiffReport *diff = nullptr;
    DiffReport report;
    Stopwatch timer;
    HostSpan sweep_span("sweep");
    sweep_span.arg("workload", workload.name);
    if (audit) {
        DiffOptions opts;
        opts.modes.assign(std::begin(modes), std::end(modes));
        opts.maxInsts = max_insts;
        opts.audit = true;
        opts.jobs = jobs;
        report = runDifferential({&workload}, opts);
        results = report.results;
        diff = &report;
    } else {
        std::vector<MatrixCell> cells;
        for (FusionMode mode : modes) {
            CoreParams params = CoreParams::icelake(mode);
            // Reports carry occupancy histograms; sampling is
            // observer-effect-free (tested) and cheap at this scale.
            params.sampleHistograms = !report_path.empty();
            params.profile = !profile_path.empty();
            params.profileWindowCycles = window_cycles;
            cells.emplace_back(workload, params, max_insts);
        }
        results = runMatrix(cells, jobs);
    }
    sweep_span.end();
    const double elapsed = timer.seconds();

    const double base = results[0].ipc();
    Table table({"config", "cycles", "uops", "IPC", "vs NoFusion"});
    for (const RunResult &result : results)
        table.addRow({fusionModeName(result.mode),
                      std::to_string(result.cycles),
                      std::to_string(result.uops),
                      Table::num(result.ipc(), 3),
                      base > 0 ? Table::num(result.ipc() / base, 3)
                               : "-"});
    table.print();
    printMatrixTiming(results.size(), jobs, elapsed);
    if (timing) {
        uint64_t total_cycles = 0, total_uops = 0;
        for (const RunResult &result : results) {
            total_cycles += result.cycles;
            total_uops += result.uops;
        }
        printTimeLine(elapsed, total_cycles, total_uops);
    }

    for (const RunResult &result : results) {
        if (dump_stats) {
            std::printf("--- %s counters ---\n",
                        fusionModeName(result.mode));
            std::fputs(result.stats.toString().c_str(), stdout);
        }
        if (cpi_stack) {
            std::printf("--- %s CPI stack ---\n%s",
                        fusionModeName(result.mode),
                        result.stats.cpiStack(result.cycles)
                            .toString().c_str());
        }
    }

    if (!report_path.empty() || !profile_path.empty()) {
        HostSpan report_span("report-write");
        RunReportFile file;
        file.generator = "helios_run --sweep";
        if (diff)
            file.addDifferential(*diff, max_insts);
        else
            for (const RunResult &result : results)
                file.add(result, max_insts);
        attachHostSection(file);
        if (!report_path.empty()) {
            file.save(report_path);
            std::printf("report: %zu runs, %zu verdicts -> %s\n",
                        file.runs.size(), file.verdicts.size(),
                        report_path.c_str());
        }
        if (!profile_path.empty() && profile_path != report_path) {
            file.save(profile_path);
            std::printf("profile: %zu runs -> %s\n",
                        file.runs.size(), profile_path.c_str());
        }
    }

    if (diff) {
        if (diff->ok()) {
            std::printf("differential audit: ok (%zu configs, "
                        "0 violations)\n", results.size());
        } else {
            std::printf("differential audit: %zu violation(s)\n%s\n",
                        diff->violations.size(),
                        diff->toJson().c_str());
            return 1;
        }
    }
    return 0;
}

/** Attach an auditor to one pipeline run; report and set exit status. */
int
auditEpilogue(const PipelineAuditor &auditor)
{
    if (auditor.ok()) {
        std::printf("audit: ok (%llu checks over %llu uops)\n",
                    (unsigned long long)auditor.checksPerformed(),
                    (unsigned long long)auditor.uopsAudited());
        return 0;
    }
    std::printf("audit: %zu violation(s)\n%s\n",
                auditor.violations().size(), auditor.toJson().c_str());
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }

    std::string path;
    std::string elf_path;
    std::string emit_elf_path;
    std::vector<std::string> guest_argv;
    std::string trace_path;
    std::string report_path;
    std::string profile_path;
    std::string log_level;
    std::string log_json_path;
    std::string host_trace_path;
    std::string metrics_path;
    std::string ledger_path;
    FusionMode mode = FusionMode::Helios;
    uint64_t max_insts = UINT64_MAX;
    uint64_t window_cycles = 10000;
    uint64_t sample_count = 0;
    uint64_t interval_insts = 100000;
    uint64_t warmup_insts = 10000;
    bool sampling_tuned = false; ///< --interval/--warmup given
    std::string checkpoint_dir;
    unsigned jobs = 0;
    bool pipeview = false, dump_stats = false, functional_only = false;
    bool cpi_stack = false, sweep = false, audit = false;
    bool annotate = false, timing = false;
    bool fast_engine = true, engine_chosen = false;

    // Options taking a value; missing values are a usage error (exit
    // 2), same as unknown options.
    const auto value_of = [&](int &i, const char *name) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "helios_run: %s needs an argument\n",
                         name);
            usage();
            std::exit(2);
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--elf") {
            elf_path = value_of(i, "--elf");
        } else if (arg == "--emit-elf") {
            emit_elf_path = value_of(i, "--emit-elf");
        } else if (arg == "--argv") {
            // Everything after --argv belongs to the guest program.
            for (int j = i + 1; j < argc; ++j)
                guest_argv.push_back(argv[j]);
            i = argc;
        } else if (arg == "--config") {
            mode = fusionModeFromName(value_of(i, "--config"));
        } else if (arg == "--max-insts") {
            max_insts =
                std::strtoull(value_of(i, "--max-insts"), nullptr, 0);
        } else if (arg == "--jobs") {
            jobs = unsigned(
                std::strtoul(value_of(i, "--jobs"), nullptr, 0));
        } else if (arg == "--trace") {
            trace_path = value_of(i, "--trace");
        } else if (arg == "--report") {
            report_path = value_of(i, "--report");
        } else if (arg == "--profile") {
            profile_path = value_of(i, "--profile");
        } else if (arg == "--window") {
            window_cycles =
                std::strtoull(value_of(i, "--window"), nullptr, 0);
        } else if (arg == "--sample") {
            sample_count =
                parseCount(value_of(i, "--sample"), "--sample");
        } else if (arg == "--interval") {
            interval_insts =
                parseCount(value_of(i, "--interval"), "--interval");
            sampling_tuned = true;
        } else if (arg == "--warmup") {
            warmup_insts = parseCount(value_of(i, "--warmup"),
                                      "--warmup", true);
            sampling_tuned = true;
        } else if (arg == "--checkpoint-dir") {
            checkpoint_dir = value_of(i, "--checkpoint-dir");
        } else if (arg == "--log-level") {
            log_level = value_of(i, "--log-level");
        } else if (arg == "--log-json") {
            log_json_path = value_of(i, "--log-json");
        } else if (arg == "--host-trace") {
            host_trace_path = value_of(i, "--host-trace");
        } else if (arg == "--metrics") {
            metrics_path = value_of(i, "--metrics");
        } else if (arg == "--ledger") {
            ledger_path = value_of(i, "--ledger");
        } else if (arg == "--annotate") {
            annotate = true;
        } else if (arg == "--pipeview") {
            pipeview = true;
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--cpi-stack") {
            cpi_stack = true;
        } else if (arg == "--time") {
            timing = true;
        } else if (arg == "--functional") {
            functional_only = true;
        } else if (arg == "--engine") {
            const std::string engine = value_of(i, "--engine");
            engine_chosen = true;
            if (engine == "fast") {
                fast_engine = true;
            } else if (engine == "reference") {
                fast_engine = false;
            } else {
                std::fprintf(stderr,
                             "helios_run: unknown engine '%s' "
                             "(fast|reference)\n",
                             engine.c_str());
                usage();
                return 2;
            }
        } else if (arg == "--sweep") {
            sweep = true;
        } else if (arg == "--audit") {
            audit = true;
        } else if (arg[0] == '-') {
            std::fprintf(stderr, "helios_run: unknown option '%s'\n",
                         arg.c_str());
            usage();
            return 2;
        } else {
            path = arg;
        }
    }
    if (!elf_path.empty() && !path.empty()) {
        std::fprintf(stderr,
                     "helios_run: --elf conflicts with assembly input "
                     "'%s'; pick one program\n", path.c_str());
        return 2;
    }
    if (!guest_argv.empty() && elf_path.empty()) {
        std::fprintf(stderr,
                     "helios_run: --argv passes arguments to an ELF "
                     "guest; add --elf\n");
        return 2;
    }
    if (!emit_elf_path.empty() && !elf_path.empty()) {
        std::fprintf(stderr,
                     "helios_run: --emit-elf packs assembly input; it "
                     "cannot re-emit an --elf image\n");
        return 2;
    }
    if (path.empty() && elf_path.empty()) {
        usage();
        return 2;
    }

    // Sampled-run usage errors, all caught before any simulation (or
    // even file I/O) happens — a bad sampling spec on a 500M-inst run
    // must not cost a fast-forward to discover.
    if (sample_count == 0 &&
        (sampling_tuned || !checkpoint_dir.empty())) {
        std::fprintf(stderr,
                     "helios_run: --interval/--warmup/--checkpoint-dir "
                     "configure sampled runs; add --sample N\n");
        return 2;
    }
    SamplingSpec sampling_spec;
    if (sample_count) {
        if (functional_only) {
            std::fprintf(stderr,
                         "helios_run: --sample estimates detailed-"
                         "timing IPC; a --functional run has no "
                         "timing to sample\n");
            return 2;
        }
        if (max_insts == UINT64_MAX) {
            std::fprintf(stderr,
                         "helios_run: --sample needs an explicit "
                         "--max-insts frame to place samples in\n");
            return 2;
        }
        sampling_spec.totalBudget = max_insts;
        sampling_spec.intervalInsts = interval_insts;
        sampling_spec.warmupInsts = warmup_insts;
        sampling_spec.sampleCount = sample_count;
        sampling_spec.checkpointDir = checkpoint_dir;
        try {
            sampling_spec.validate();
        } catch (const FatalError &error) {
            std::fprintf(stderr, "helios_run: %s\n", error.what());
            return 2;
        }
        if (!checkpoint_dir.empty()) {
            // Same fail-fast contract as the output paths: probe that
            // the directory is creatable and writable up front.
            std::error_code ec;
            std::filesystem::create_directories(checkpoint_dir, ec);
            const std::filesystem::path probe =
                std::filesystem::path(checkpoint_dir) /
                ".helios-write-probe";
            std::ofstream probe_out(probe);
            const bool writable = !ec && bool(probe_out);
            probe_out.close();
            std::filesystem::remove(probe, ec);
            if (!writable) {
                std::fprintf(stderr,
                             "helios_run: --checkpoint-dir: cannot "
                             "write to '%s'\n",
                             checkpoint_dir.c_str());
                return 2;
            }
        }
    }

    requireWritable(trace_path, "--trace");
    requireWritable(report_path, "--report");
    requireWritable(profile_path, "--profile");
    requireWritable(emit_elf_path, "--emit-elf");
    requireWritable(log_json_path, "--log-json");
    requireWritable(host_trace_path, "--host-trace");
    requireWritable(metrics_path, "--metrics");

    // Host telemetry: a bad level name is a usage error (exit 2) like
    // any other malformed option; the sinks flush at process exit so
    // every return path below still produces the files.
    if (!log_level.empty()) {
        try {
            Logger::global().setLevel(logLevelFromName(log_level));
        } catch (const FatalError &error) {
            std::fprintf(stderr, "helios_run: %s\n", error.what());
            usage();
            return 2;
        }
    }
    if (!log_json_path.empty())
        Logger::global().openJsonSink(log_json_path);
    initHostTelemetryFromEnv();
    if (!host_trace_path.empty())
        writeHostTraceAtExit(host_trace_path);
    if (!metrics_path.empty())
        writeHostMetricsAtExit(metrics_path);
    // --ledger wins over HELIOS_LEDGER; a bad directory is a usage
    // error like any other unwritable output path.
    try {
        if (!ledger_path.empty())
            Ledger::arm(ledger_path);
        else
            initLedgerFromEnv();
    } catch (const FatalError &error) {
        std::fprintf(stderr, "helios_run: %s\n", error.what());
        return 2;
    }

    // Read the input up front so a missing file is a usage error
    // (exit 2), distinct from a malformed program (exit 1 below).
    std::string source;
    std::vector<uint8_t> elf_image;
    if (!elf_path.empty()) {
        std::ifstream file(elf_path, std::ios::binary);
        if (!file) {
            std::fprintf(stderr, "helios_run: cannot open '%s'\n",
                         elf_path.c_str());
            return 2;
        }
        elf_image.assign(std::istreambuf_iterator<char>(file),
                         std::istreambuf_iterator<char>());
    } else {
        std::ifstream file(path);
        if (!file) {
            std::fprintf(stderr, "helios_run: cannot open '%s'\n",
                         path.c_str());
            return 2;
        }
        std::ostringstream text;
        text << file.rdbuf();
        source = text.str();
    }

    try {
        // Wrap the input as an ad-hoc workload so both frontends ride
        // the same runner/matrix machinery as the paper sweeps.
        Workload workload;
        workload.suite = Suite::MiBench;
        workload.description = "user program";
        if (!elf_path.empty()) {
            workload.name = elf_path;
            workload.makeProgram = [&elf_image, &elf_path,
                                    &guest_argv] {
                Program prog = loadElf(elf_image);
                prog.argv.assign(1, elf_path);
                prog.argv.insert(prog.argv.end(), guest_argv.begin(),
                                 guest_argv.end());
                return prog;
            };
        } else {
            workload.name = path;
            workload.source = source;
        }

        HostSpan assemble_span(elf_path.empty() ? "assemble"
                                                : "elf-load");
        const Program program = workload.program();
        assemble_span.end();
        if (!elf_path.empty())
            std::printf("elf: %s: %zu instructions, %zu segment(s), "
                        "entry 0x%llx, hash 0x%016llx\n",
                        elf_path.c_str(), program.numInsts(),
                        program.segments.size() + 1,
                        (unsigned long long)program.entry,
                        (unsigned long long)program.sourceHash);
        else
            std::printf("assembled %zu instructions, %zu data bytes\n",
                        program.numInsts(), program.data.size());

        if (!emit_elf_path.empty()) {
            const std::vector<uint8_t> image = buildElfImage(program);
            writeElfFile(emit_elf_path, program);
            std::printf("emitted ELF image -> %s (%zu bytes, "
                        "hash 0x%016llx)\n",
                        emit_elf_path.c_str(), image.size(),
                        (unsigned long long)fnv1a(image.data(),
                                                  image.size()));
            return 0;
        }

        if (audit && !auditHooksCompiled())
            fatal("--audit needs the pipeline audit hooks; rebuild "
                  "with -DHELIOS_AUDIT=ON");
        if (audit && functional_only)
            fatal("--audit checks the timing pipeline; drop "
                  "--functional");
        if (functional_only &&
            (!trace_path.empty() || cpi_stack || pipeview ||
             !profile_path.empty() || annotate))
            fatal("--trace/--cpi-stack/--pipeview/--profile/"
                  "--annotate need the timing model; drop "
                  "--functional");
        if (engine_chosen && !functional_only)
            fatal("--engine selects the functional execution engine; "
                  "add --functional");
        if (sweep && !trace_path.empty())
            fatal("--trace records one run; pick a --config instead "
                  "of --sweep");
        if (sweep && annotate)
            fatal("--annotate renders one run; pick a --config "
                  "instead of --sweep");
        if (sweep && audit && !profile_path.empty())
            fatal("--profile is not routed through the differential "
                  "harness; drop --audit or --sweep");
        if (sample_count &&
            (!trace_path.empty() || pipeview || annotate ||
             !profile_path.empty() || audit))
            fatal("--trace/--pipeview/--annotate/--profile/--audit "
                  "observe every committed instruction; sampled runs "
                  "measure only windows — drop --sample or those "
                  "flags");

        if (sample_count) {
            const int status =
                runSampledCli(workload, sampling_spec, mode, sweep,
                              jobs, timing, report_path);
            if (const Ledger *ledger = Ledger::global())
                std::printf("ledger: %llu run(s) recorded, %llu "
                            "hit(s) -> %s\n",
                            (unsigned long long)ledger->recorded(),
                            (unsigned long long)ledger->hits(),
                            ledger->dir().c_str());
            return status;
        }

        if (sweep) {
            const int status =
                runSweep(workload, max_insts, jobs, audit, dump_stats,
                         cpi_stack, timing, report_path, profile_path,
                         window_cycles);
            if (const Ledger *ledger = Ledger::global())
                std::printf("ledger: %llu run(s) recorded, %llu "
                            "hit(s) -> %s\n",
                            (unsigned long long)ledger->recorded(),
                            (unsigned long long)ledger->hits(),
                            ledger->dir().c_str());
            return status;
        }

        Memory memory;
        Hart hart(memory);
        hart.reset(program);

        Stopwatch timer;
        if (functional_only) {
            HostSpan functional_span("functional");
            functional_span.arg("engine",
                                fast_engine ? "fast" : "reference");
            const uint64_t executed = fast_engine
                                          ? hart.runFast(max_insts)
                                          : hart.run(max_insts);
            functional_span.end();
            if (HostMetrics::global().enabled())
                HostMetrics::global().recordGuestWork(executed, 0);
            const double elapsed = timer.seconds();
            const double minst_per_sec =
                elapsed > 0 ? double(executed) / elapsed / 1e6 : 0.0;
            if (fast_engine)
                std::printf("functional: %llu instructions in %.3f s "
                            "(%.1f M inst/s, fast engine: %zu cache "
                            "entries, %zu fused pairs)\n",
                            (unsigned long long)executed, elapsed,
                            minst_per_sec, hart.fastCacheEntries(),
                            hart.fastFusedPairs());
            else
                std::printf("functional: %llu instructions in %.3f s "
                            "(%.1f M inst/s, reference engine, "
                            "pre-decoded %zu static insts)\n",
                            (unsigned long long)executed, elapsed,
                            minst_per_sec, hart.decodeCacheSize());
            if (timing)
                std::printf("time: %.3f s wall, %.2f Minst/s "
                            "(functional)\n",
                            elapsed, minst_per_sec);
            if (Ledger::global()) {
                FunctionalResult fres;
                fres.instructions = executed;
                fres.archChecksum = hart.archChecksum();
                fres.memChecksum = memory.checksum();
                fres.exited = hart.exited();
                fres.exitCode = hart.exitCode();
                fres.programHash = program.sourceHash;
                noteLedgerOutcome(recordFunctionalToLedger(
                    workload.name, fres, max_insts, fast_engine));
            }
        } else {
            HartFeed feed(hart, max_insts);
            CoreParams params = CoreParams::icelake(mode);
            LifecycleTracer tracer;
            if (pipeview)
                params.traceOut = &std::cout;
            if (!trace_path.empty())
                params.tracer = &tracer;
            params.sampleHistograms = !trace_path.empty() ||
                                      !report_path.empty() || cpi_stack;
            params.profile = !profile_path.empty() || annotate;
            params.profileWindowCycles = window_cycles;
            Pipeline pipeline(params, feed);
            PipelineAuditor auditor(params);
            if (audit)
                pipeline.attachAuditor(&auditor);
            HostSpan sim_span("detailed-sim");
            sim_span.arg("config", fusionModeName(mode));
            const PipelineResult result = pipeline.run();
            sim_span.end();
            if (HostMetrics::global().enabled())
                HostMetrics::global().recordGuestWork(
                    result.instructions, result.uops);
            const double elapsed = timer.seconds();
            std::printf("%s: %llu instructions in %llu cycles "
                        "(IPC %.3f) [%.3f s wall, %.1f K cycles/s]\n",
                        fusionModeName(mode),
                        (unsigned long long)result.instructions,
                        (unsigned long long)result.cycles,
                        result.ipc(), elapsed,
                        elapsed > 0 ? double(result.cycles) / elapsed /
                                          1e3
                                    : 0.0);
            if (timing)
                printTimeLine(elapsed, result.cycles, result.uops);
            if (dump_stats)
                std::fputs(pipeline.stats().toString().c_str(), stdout);
            if (cpi_stack)
                std::fputs(pipeline.stats()
                               .cpiStack(result.cycles)
                               .toString().c_str(),
                           stdout);
            if (!trace_path.empty()) {
                HostSpan span("trace-write");
                writeTraces(tracer, trace_path);
            }
            if (!report_path.empty() || !profile_path.empty() ||
                Ledger::global()) {
                HostSpan report_span("report-write");
                RunResult run;
                run.workload = path;
                run.mode = mode;
                run.cycles = result.cycles;
                run.instructions = result.instructions;
                run.uops = result.uops;
                run.stats = pipeline.stats();
                run.archChecksum = hart.archChecksum();
                run.memChecksum = memory.checksum();
                run.hartInstructions = hart.instsExecuted();
                run.exited = hart.exited();
                run.exitCode = hart.exitCode();
                run.programHash = program.sourceHash;
                run.configHash = configHash(params);
                if (audit) {
                    run.audited = true;
                    run.auditChecks = auditor.checksPerformed();
                    run.auditViolations = auditor.violations();
                }
                if (const FusionProfiler *profiler =
                        pipeline.fusionProfiler()) {
                    run.profiled = true;
                    run.profile = profiler->data();
                }
                if (!report_path.empty() || !profile_path.empty()) {
                    RunReportFile report_file;
                    report_file.generator = "helios_run";
                    report_file.add(run, max_insts == UINT64_MAX
                                             ? 0 : max_insts);
                    attachHostSection(report_file);
                    if (!report_path.empty()) {
                        report_file.save(report_path);
                        std::printf("report: 1 run -> %s\n",
                                    report_path.c_str());
                    }
                    if (!profile_path.empty() &&
                        profile_path != report_path) {
                        report_file.save(profile_path);
                        std::printf(
                            "profile: %zu sites, %zu windows -> %s\n",
                            report_file.runs[0].profile.sites.size(),
                            report_file.runs[0].profile.windows.size(),
                            profile_path.c_str());
                    }
                }
                noteLedgerOutcome(recordRunToLedger(run, max_insts));
            }
            if (annotate) {
                const FusionProfiler *profiler =
                    pipeline.fusionProfiler();
                std::fputs(
                    annotateText(profiler->data(), program).c_str(),
                    stdout);
            }
            if (audit) {
                const int status = auditEpilogue(auditor);
                if (status)
                    return status;
            }
        }

        if (!hart.output().empty())
            std::printf("program output: %s\n", hart.output().c_str());
        if (hart.exited())
            std::printf("exit code (a0): %llu\n",
                        (unsigned long long)hart.exitCode());
        else
            std::printf("stopped before exit (budget reached)\n");

        // Real-binary runs behave like a shell command: the guest's
        // exit status becomes ours (truncated to 8 bits, as the OS
        // would). Assembly kernels keep the historical behaviour of
        // reporting the checksum without failing the invocation.
        if (!elf_path.empty() && hart.exited())
            return int(hart.exitCode() & 0xff);
    } catch (const FatalError &error) {
        std::fprintf(stderr, "helios_run: %s\n", error.what());
        return 1;
    }
    return 0;
}
