# Sample program for helios_run: prints a message and sums an array.
#   $ ./examples/helios_run examples/hello.s --config Helios --stats

    la a1, msg
    li a2, 14
    li a0, 1
    li a7, 64           # write(1, msg, 14)
    ecall

    la s0, numbers
    li s1, 8
    li s2, 0
    li t0, 0
loop:
    slli t1, t0, 3
    add t1, t1, s0
    ld t2, 0(t1)        # these loads pair up under fusion
    ld t3, 8(t1)
    add s2, s2, t2
    add s2, s2, t3
    addi t0, t0, 2
    blt t0, s1, loop

    mv a0, s2           # exit with the sum (= 2+3+...+9 = 44)
    li a7, 93
    ecall

    .data
    .align 6
msg:
    .asciz "hello, fusion\n"
    .align 6
numbers:
    .dword 2, 3, 4, 5, 6, 7, 8, 9
