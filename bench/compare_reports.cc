/**
 * @file
 * Diff two RunReport JSON files and flag regressions.
 *
 *   $ compare_reports baseline.json current.json [options]
 *       --tolerance PCT         shorthand: set both tolerances at once
 *       --ipc-tolerance PCT     max allowed IPC drop, percent
 *                               (default 2)
 *       --coverage-tolerance PCT max allowed fusion-coverage drop,
 *                               percentage points (default 1)
 *       --verbose               print every matched pair, not just
 *                               regressions
 *
 * The comparison itself — run matching, IPC/coverage/instruction
 * drift, per-site profile regressions, verdict propagation, top
 * counter deltas — lives in harness/report_diff.* and is shared with
 * `helios_db diff`, so a committed baseline and a ledger record diff
 * through exactly the same logic. This tool owns only the CLI: the
 * tolerance flags, the summary line, and the exit status.
 *
 * Exit status: 0 clean, 1 regression or verdict found, 2 usage /
 * file errors. CI keeps a committed baseline under bench/baselines/
 * and fails the build when a change drifts past the tolerance; to
 * accept an intentional change, regenerate the baseline (see
 * OBSERVABILITY.md).
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/logging.hh"
#include "harness/report_diff.hh"
#include "harness/run_report.hh"

using namespace helios;

namespace
{

void
usage()
{
    std::fprintf(stderr,
                 "usage: compare_reports <baseline.json> "
                 "<current.json> [--tolerance PCT] "
                 "[--ipc-tolerance PCT] "
                 "[--coverage-tolerance PCT] [--verbose]\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string baseline_path, current_path;
    ReportDiffOptions options;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--tolerance" && i + 1 < argc) {
            const double tolerance =
                std::strtod(argv[++i], nullptr) / 100.0;
            options.ipcTolerance = tolerance;
            options.coverageTolerance = tolerance;
        } else if (arg == "--ipc-tolerance" && i + 1 < argc) {
            options.ipcTolerance =
                std::strtod(argv[++i], nullptr) / 100.0;
        } else if (arg == "--coverage-tolerance" && i + 1 < argc) {
            options.coverageTolerance =
                std::strtod(argv[++i], nullptr) / 100.0;
        } else if (arg == "--verbose") {
            options.verbose = true;
        } else if (arg[0] == '-') {
            usage();
            return 2;
        } else if (baseline_path.empty()) {
            baseline_path = arg;
        } else if (current_path.empty()) {
            current_path = arg;
        } else {
            usage();
            return 2;
        }
    }
    if (baseline_path.empty() || current_path.empty()) {
        usage();
        return 2;
    }

    try {
        const RunReportFile baseline =
            RunReportFile::load(baseline_path);
        const RunReportFile current = RunReportFile::load(current_path);

        std::string findings;
        const ReportDiffResult result =
            diffReportFiles(baseline, current, options, findings);
        std::fputs(findings.c_str(), stdout);

        std::printf("compare_reports: %u run(s) matched, "
                    "%u regression(s)\n",
                    result.matched, result.regressions);
        return result.clean() ? 0 : 1;
    } catch (const FatalError &error) {
        std::fprintf(stderr, "compare_reports: %s\n", error.what());
        return 2;
    }
}
