/**
 * @file
 * Diff two RunReport JSON files and flag regressions.
 *
 *   $ compare_reports baseline.json current.json [options]
 *       --tolerance PCT         shorthand: set both tolerances at once
 *       --ipc-tolerance PCT     max allowed IPC drop, percent
 *                               (default 2)
 *       --coverage-tolerance PCT max allowed fusion-coverage drop,
 *                               percentage points (default 1)
 *       --verbose               print every matched pair, not just
 *                               regressions
 *
 * Runs are matched by (workload, mode). For every pair the tool
 * checks that
 *   - IPC did not drop more than the tolerance below the baseline;
 *   - fusion coverage (fused-pair instructions / committed
 *     instructions) did not drop more than the tolerance;
 *   - the committed instruction count is identical when both runs
 *     used the same instruction budget (the workload itself did not
 *     silently change);
 *   - when both runs carry a profile section (schema v2), no hot
 *     static site's fusion coverage dropped more than the coverage
 *     tolerance (per-site regression detection: an aggregate can hide
 *     one site losing its fusion to another site gaining);
 *   - the current file reports no differential-harness verdicts.
 *
 * The schema-v3 `host` section (host telemetry: build stamp, phase
 * wall-clock, peak RSS, throughput) describes the machine that
 * produced a report, never the simulated result, so comparisons
 * ignore it entirely — two reports that differ only in `host` are
 * clean.
 *
 * A regressing pair additionally prints the top counter deltas
 * between the two runs, so the first diagnostic step — which counter
 * moved — needs no second tool.
 *
 * Exit status: 0 clean, 1 regression or verdict found, 2 usage /
 * file errors. CI keeps a committed baseline under bench/baselines/
 * and fails the build when a change drifts past the tolerance; to
 * accept an intentional change, regenerate the baseline (see
 * OBSERVABILITY.md).
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "harness/run_report.hh"

using namespace helios;

namespace
{

void
usage()
{
    std::fprintf(stderr,
                 "usage: compare_reports <baseline.json> "
                 "<current.json> [--tolerance PCT] "
                 "[--ipc-tolerance PCT] "
                 "[--coverage-tolerance PCT] [--verbose]\n");
}

/**
 * Print the most-changed counters between two regressing runs,
 * largest relative move first. Counters present in only one run count
 * as a full move.
 */
void
printTopCounterDeltas(const RunReport &base, const RunReport &cur,
                      size_t top_n)
{
    struct Delta
    {
        std::string name;
        uint64_t before, after;
        double rel;
    };
    std::vector<Delta> deltas;
    const auto consider = [&](const std::string &name, uint64_t before,
                              uint64_t after) {
        if (before == after)
            return;
        const uint64_t reference = std::max(before, after);
        deltas.push_back(
            {name, before, after,
             before ? (double(after) - double(before)) / double(before)
                    : double(reference)});
    };
    for (const auto &[name, before] : base.stats.dump())
        consider(name, before, cur.stats.get(name));
    for (const auto &[name, after] : cur.stats.dump())
        if (base.stats.get(name) == 0 && after != 0)
            consider(name, 0, after);
    std::sort(deltas.begin(), deltas.end(),
              [](const Delta &a, const Delta &b) {
                  if (std::fabs(a.rel) != std::fabs(b.rel))
                      return std::fabs(a.rel) > std::fabs(b.rel);
                  return std::max(a.before, a.after) >
                         std::max(b.before, b.after);
              });
    if (deltas.size() > top_n)
        deltas.resize(top_n);
    for (const Delta &delta : deltas)
        std::printf("         %-32s %12llu -> %-12llu (%+.1f%%)\n",
                    delta.name.c_str(),
                    (unsigned long long)delta.before,
                    (unsigned long long)delta.after,
                    100.0 * delta.rel);
}

/** A site hot enough that its coverage is statistically meaningful. */
constexpr uint64_t kSiteExecutionFloor = 128;

/**
 * Per-site coverage regression check (both runs profiled): flag every
 * hot baseline site whose coverage dropped more than the tolerance.
 * Returns the number of regressing sites.
 */
unsigned
compareSites(const RunReport &base, const RunReport &cur,
             double coverage_tolerance)
{
    unsigned regressions = 0;
    for (const ProfileSite &site : base.profile.sites) {
        if (site.executions < kSiteExecutionFloor)
            continue;
        const ProfileSite *now = cur.profile.find(site.pc);
        const double before = site.coverage();
        const double after = now ? now->coverage() : 0.0;
        if (after < before - coverage_tolerance) {
            std::printf("SITE     %s/%s pc 0x%llx coverage "
                        "%.4f -> %.4f (tolerance -%.2f pp)\n",
                        base.workload.c_str(), base.mode.c_str(),
                        (unsigned long long)site.pc, before, after,
                        100.0 * coverage_tolerance);
            ++regressions;
        }
    }
    return regressions;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string baseline_path, current_path;
    double ipc_tolerance = 0.02;
    double coverage_tolerance = 0.01;
    bool verbose = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--tolerance" && i + 1 < argc) {
            const double tolerance =
                std::strtod(argv[++i], nullptr) / 100.0;
            ipc_tolerance = tolerance;
            coverage_tolerance = tolerance;
        } else if (arg == "--ipc-tolerance" && i + 1 < argc) {
            ipc_tolerance = std::strtod(argv[++i], nullptr) / 100.0;
        } else if (arg == "--coverage-tolerance" && i + 1 < argc) {
            coverage_tolerance =
                std::strtod(argv[++i], nullptr) / 100.0;
        } else if (arg == "--verbose") {
            verbose = true;
        } else if (arg[0] == '-') {
            usage();
            return 2;
        } else if (baseline_path.empty()) {
            baseline_path = arg;
        } else if (current_path.empty()) {
            current_path = arg;
        } else {
            usage();
            return 2;
        }
    }
    if (baseline_path.empty() || current_path.empty()) {
        usage();
        return 2;
    }

    try {
        const RunReportFile baseline =
            RunReportFile::load(baseline_path);
        const RunReportFile current = RunReportFile::load(current_path);

        unsigned regressions = 0, matched = 0;

        for (const ReportVerdict &verdict : current.verdicts) {
            std::printf("VERDICT  %s/%s %s: %s\n",
                        verdict.workload.c_str(), verdict.mode.c_str(),
                        verdict.check.c_str(), verdict.detail.c_str());
            ++regressions;
        }

        for (const RunReport &base : baseline.runs) {
            const RunReport *cur =
                current.find(base.workload, base.mode);
            if (!cur) {
                std::printf("MISSING  %s/%s present in baseline only\n",
                            base.workload.c_str(), base.mode.c_str());
                ++regressions;
                continue;
            }
            ++matched;

            const double ipc_ratio =
                base.ipc > 0 ? cur->ipc / base.ipc : 1.0;
            const double coverage_delta =
                cur->fusionCoverage() - base.fusionCoverage();

            bool bad = false;
            if (ipc_ratio < 1.0 - ipc_tolerance) {
                std::printf("IPC      %s/%s %.4f -> %.4f "
                            "(%.2f%%, tolerance -%.2f%%)\n",
                            base.workload.c_str(), base.mode.c_str(),
                            base.ipc, cur->ipc,
                            100.0 * (ipc_ratio - 1.0),
                            100.0 * ipc_tolerance);
                bad = true;
            }
            if (coverage_delta < -coverage_tolerance) {
                std::printf("COVERAGE %s/%s %.4f -> %.4f "
                            "(tolerance -%.2f pp)\n",
                            base.workload.c_str(), base.mode.c_str(),
                            base.fusionCoverage(),
                            cur->fusionCoverage(),
                            100.0 * coverage_tolerance);
                bad = true;
            }
            if (base.maxInsts == cur->maxInsts &&
                base.instructions != cur->instructions) {
                std::printf("INSTS    %s/%s committed %llu -> %llu "
                            "under the same budget\n",
                            base.workload.c_str(), base.mode.c_str(),
                            (unsigned long long)base.instructions,
                            (unsigned long long)cur->instructions);
                bad = true;
            }
            if (base.profiled && cur->profiled &&
                compareSites(base, *cur, coverage_tolerance) > 0)
                bad = true;
            if (bad) {
                printTopCounterDeltas(base, *cur, 5);
                ++regressions;
            } else if (verbose) {
                std::printf("ok       %s/%s IPC %.4f -> %.4f "
                            "(%+.2f%%), coverage %.4f -> %.4f\n",
                            base.workload.c_str(), base.mode.c_str(),
                            base.ipc, cur->ipc,
                            100.0 * (ipc_ratio - 1.0),
                            base.fusionCoverage(),
                            cur->fusionCoverage());
            }
        }

        std::printf("compare_reports: %u run(s) matched, "
                    "%u regression(s)\n", matched, regressions);
        return regressions ? 1 : 0;
    } catch (const FatalError &error) {
        std::fprintf(stderr, "compare_reports: %s\n", error.what());
        return 2;
    }
}
