/**
 * @file
 * Figure 8: number of CSF and NCSF pairs in Helios and OracleFusion,
 * relative to dynamic memory instructions.
 *
 * Paper reference: Helios delivers 6.7% CSF + 5.5% NCSF pairs, close
 * to OracleFusion (which fuses 6.1% CSF); average head-tail distance
 * is 10.5 dynamic instructions.
 */

#include <cstdio>

#include "harness/report.hh"
#include "harness/runner.hh"

using namespace helios;

namespace
{

struct PairNumbers
{
    double csf;
    double ncsf;
    double distance;
};

PairNumbers
pairNumbers(const RunResult &result)
{
    const double mem_insts = double(result.stat("commit.loads") +
                                    result.stat("commit.stores"));
    const double csf = double(result.stat("pairs.csf_mem"));
    const double ncsf = double(result.stat("pairs.ncsf"));
    const double dsum = double(result.stat("pairs.distance_sum"));
    return {mem_insts ? csf / mem_insts : 0.0,
            mem_insts ? ncsf / mem_insts : 0.0,
            (csf + ncsf) > 0 ? dsum / double(csf + ncsf) : 0.0};
}

} // namespace

int
main()
{
    printBenchHeader(
        "Figure 8 — CSF and NCSF pairs, Helios vs OracleFusion",
        "pairs as % of dynamic memory instructions; avg fusion "
        "distance in µ-ops");
    const uint64_t budget = benchInstructionBudget();
    const unsigned jobs = defaultJobCount();

    std::vector<MatrixCell> cells;
    for (const Workload &workload : allWorkloads()) {
        cells.emplace_back(workload, FusionMode::Helios, budget);
        cells.emplace_back(workload, FusionMode::Oracle, budget);
    }

    Stopwatch timer;
    const std::vector<RunResult> results = runMatrix(cells, jobs);
    const double elapsed = timer.seconds();

    Table table({"workload", "Helios CSF", "Helios NCSF", "Oracle CSF",
                 "Oracle NCSF", "Helios dist"});
    double sums[4] = {};
    double dist_sum = 0.0;
    unsigned count = 0;
    const auto &workloads = allWorkloads();
    for (size_t w = 0; w < workloads.size(); ++w) {
        const PairNumbers helios_numbers = pairNumbers(results[w * 2]);
        const PairNumbers oracle_numbers =
            pairNumbers(results[w * 2 + 1]);
        table.addRow({workloads[w].name, Table::pct(helios_numbers.csf),
                      Table::pct(helios_numbers.ncsf),
                      Table::pct(oracle_numbers.csf),
                      Table::pct(oracle_numbers.ncsf),
                      Table::num(helios_numbers.distance, 1)});
        sums[0] += helios_numbers.csf;
        sums[1] += helios_numbers.ncsf;
        sums[2] += oracle_numbers.csf;
        sums[3] += oracle_numbers.ncsf;
        dist_sum += helios_numbers.distance;
        ++count;
    }
    table.addRow({"AVERAGE", Table::pct(sums[0] / count),
                  Table::pct(sums[1] / count),
                  Table::pct(sums[2] / count),
                  Table::pct(sums[3] / count),
                  Table::num(dist_sum / count, 1)});
    table.print();
    std::printf("\nPaper (amean over memory insts): Helios 6.7%% CSF "
                "+ 5.5%% NCSF; Oracle CSF 6.1%%; distance 10.5\n");
    printMatrixTiming(cells.size(), jobs, elapsed);
    return 0;
}
