/**
 * @file
 * google-benchmark microbenchmarks of the simulator's components:
 * predictor lookup/train rates, UCH accesses, TAGE predictions,
 * cache accesses, instruction decode and end-to-end simulation speed.
 */

#include <benchmark/benchmark.h>

#include "asm/assembler.hh"
#include "fusion/fusion_predictor.hh"
#include "fusion/idiom.hh"
#include "fusion/uch.hh"
#include "harness/runner.hh"
#include "isa/decoder.hh"
#include "isa/encoder.hh"
#include "sim/hart.hh"
#include "uarch/branch_pred.hh"
#include "uarch/cache.hh"

using namespace helios;

static void
BM_FusionPredictorLookup(benchmark::State &state)
{
    FusionPredictor fp;
    for (unsigned i = 0; i < 512; ++i)
        for (int k = 0; k < 3; ++k)
            fp.train(0x10000 + i * 4, uint16_t(i), i % 60 + 1);
    uint64_t pc = 0x10000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(fp.lookup(pc, uint16_t(pc)));
        pc = 0x10000 + ((pc + 4) & 0x7ff);
    }
}
BENCHMARK(BM_FusionPredictorLookup);

static void
BM_FusionPredictorTrain(benchmark::State &state)
{
    FusionPredictor fp;
    uint64_t pc = 0x10000;
    for (auto _ : state) {
        fp.train(pc, uint16_t(pc >> 2), unsigned(pc % 60) + 1);
        pc = 0x10000 + ((pc + 4) & 0xfff);
    }
}
BENCHMARK(BM_FusionPredictorTrain);

static void
BM_UchAccess(benchmark::State &state)
{
    UnfusedCommittedHistory uch;
    uint64_t line = 0;
    uint8_t cn = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(uch.accessLoad(line & 0xff, cn));
        line += 7;
        ++cn;
    }
}
BENCHMARK(BM_UchAccess);

static void
BM_TagePredict(benchmark::State &state)
{
    Tage tage;
    uint64_t pc = 0x4000;
    bool taken = false;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tage.predict(pc));
        tage.update(pc, taken);
        tage.updateHistory(taken);
        taken = !taken;
        pc = 0x4000 + ((pc + 4) & 0x3ff);
    }
}
BENCHMARK(BM_TagePredict);

static void
BM_CacheAccess(benchmark::State &state)
{
    CoreParams params;
    CacheHierarchy caches(params);
    uint64_t line = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(caches.dataAccess(line));
        line = (line + 17) & 0xffff;
    }
}
BENCHMARK(BM_CacheAccess);

static void
BM_Decode(benchmark::State &state)
{
    Instruction inst;
    inst.op = Op::Add;
    inst.rd = 1;
    inst.rs1 = 2;
    inst.rs2 = 3;
    const uint32_t word = encode(inst);
    for (auto _ : state)
        benchmark::DoNotOptimize(decode(word));
}
BENCHMARK(BM_Decode);

static void
BM_IdiomMatch(benchmark::State &state)
{
    Instruction first, second;
    first.op = Op::Ld;
    first.rd = 4;
    first.rs1 = 2;
    second.op = Op::Ld;
    second.rd = 5;
    second.rs1 = 2;
    second.imm = 8;
    for (auto _ : state)
        benchmark::DoNotOptimize(matchIdiom(first, second));
}
BENCHMARK(BM_IdiomMatch);

static void
BM_PipelineSimulation(benchmark::State &state)
{
    const Workload &workload = findWorkload("605.mcf_s");
    for (auto _ : state) {
        RunResult result = runOne(workload, FusionMode::Helios, 20'000);
        benchmark::DoNotOptimize(result.cycles);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * 20'000);
}
BENCHMARK(BM_PipelineSimulation)->Unit(benchmark::kMillisecond);

/**
 * Functional emulation speed with and without the pre-decoded
 * program cache (range argument 1 / 0); the gap is the per-
 * instruction decode overhead the cache removes.
 */
static void
BM_FunctionalEmulation(benchmark::State &state)
{
    const Workload &workload = findWorkload("605.mcf_s");
    const Program program = workload.program();
    for (auto _ : state) {
        Memory mem;
        Hart hart(mem);
        hart.setDecodeCacheEnabled(state.range(0) != 0);
        hart.reset(program);
        benchmark::DoNotOptimize(hart.run(100'000));
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * 100'000);
}
BENCHMARK(BM_FunctionalEmulation)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

/** Streaming dynamic-trace delivery (forEachDynInst). */
static void
BM_StreamingTrace(benchmark::State &state)
{
    const Workload &workload = findWorkload("605.mcf_s");
    for (auto _ : state) {
        uint64_t loads = 0;
        forEachDynInst(workload, 100'000, [&](const DynInst &dyn) {
            loads += dyn.isLoad();
        });
        benchmark::DoNotOptimize(loads);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * 100'000);
}
BENCHMARK(BM_StreamingTrace)->Unit(benchmark::kMillisecond);

/** A small experiment matrix through the parallel worker pool. */
static void
BM_RunMatrix(benchmark::State &state)
{
    const Workload &workload = findWorkload("605.mcf_s");
    std::vector<MatrixCell> cells;
    for (FusionMode mode :
         {FusionMode::None, FusionMode::CsfSbr, FusionMode::Helios,
          FusionMode::Oracle})
        cells.emplace_back(workload, mode, 20'000);
    for (auto _ : state) {
        auto results = runMatrix(cells, unsigned(state.range(0)));
        benchmark::DoNotOptimize(results.front().cycles);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(cells.size()) * 20'000);
}
BENCHMARK(BM_RunMatrix)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
