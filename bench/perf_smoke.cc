/**
 * @file
 * Wall-clock smoke benchmark for the simulator itself.
 *
 * Every other binary under bench/ measures the *modeled* machine;
 * this one measures the *model*: how many µ-ops per host second the
 * cycle-level core simulates. It exists so the hot-path work (µ-op
 * slab recycler, ring-buffer queues, event-driven wakeup, the
 * LQ/SQ counting filter — see DESIGN.md, "Performance engineering")
 * stays fast: CI runs it against a committed baseline and fails when
 * simulation throughput regresses.
 *
 *   $ perf_smoke [options]
 *       --out PATH        write results as JSON (BENCH_perf.json)
 *       --baseline PATH   compare against a previous --out file
 *       --tolerance PCT   max allowed throughput drop, percent
 *                         (default 25 — wall clock on shared CI
 *                         runners is noisy; the committed baseline
 *                         catches step-function regressions, not
 *                         single-digit drift)
 *       --runs N          timing repetitions per cell, best-of-N
 *                         (default 3)
 *       --max-insts N     per-cell instruction budget
 *                         (default 300000)
 *       --functional-insts N       instruction budget for the
 *                         functional cells (default 2000000 — the
 *                         functional engines are orders of magnitude
 *                         faster than the cycle model, so they need a
 *                         bigger budget for a stable wall-clock read)
 *       --functional-tolerance PCT max allowed functional
 *                         throughput drop vs the baseline (default 30)
 *       --min-functional-speedup X fail (exit 1) unless the fast
 *                         engine's geomean is at least X times the
 *                         reference engine's in this very run
 *                         (default 0 = disabled; CI passes a floor —
 *                         the ratio of two same-host measurements is
 *                         far less noisy than either absolute rate)
 *
 * Besides the cycle-model matrix, a functional section measures raw
 * architectural instructions per host second on the same three
 * workloads under both functional engines (the reference step() loop
 * and the fast-forward decoder-cache engine), reporting per-cell
 * rates, per-engine geomeans and the fast/reference speedup.
 *
 * The matrix is three workloads of deliberately different character
 * (605.mcf_s: pointer chasing and flushes; qsort: branchy integer
 * code; fft: dense float arithmetic) under three fusion configs
 * (None: baseline decode path, Helios: the predictive front end,
 * Oracle: the AQ-scanning upper bound), so a regression in any major
 * subsystem moves at least one cell. Cells run sequentially on one
 * thread — this is a wall-clock benchmark, co-scheduling cells would
 * just measure contention. Each cell reports its best-of-N µ-ops per
 * host second; the headline number is the geomean across cells.
 *
 * Exit status: 0 clean, 1 regression against the baseline, 2 usage /
 * file errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "harness/report.hh"
#include "harness/runner.hh"

using namespace helios;

namespace
{

struct Cell
{
    const char *workload;
    FusionMode mode;
    double uopsPerSec = 0.0; ///< best of N runs
    uint64_t uops = 0;
    uint64_t cycles = 0;
};

void
usage()
{
    std::fprintf(stderr,
                 "usage: perf_smoke [--out PATH] [--baseline PATH] "
                 "[--tolerance PCT] [--runs N] [--max-insts N] "
                 "[--functional-insts N] [--functional-tolerance PCT] "
                 "[--min-functional-speedup X]\n");
}

std::string
cellKey(const Cell &cell)
{
    return std::string(cell.workload) + "/" +
           fusionModeName(cell.mode);
}

struct FunctionalCell
{
    const char *workload;
    bool fastPath;
    double instsPerSec = 0.0; ///< best of N runs
    uint64_t instructions = 0;
};

const char *
engineName(bool fast_path)
{
    return fast_path ? "fast" : "reference";
}

std::string
functionalKey(const FunctionalCell &cell)
{
    return std::string(cell.workload) + "/" +
           engineName(cell.fastPath);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path;
    std::string baseline_path;
    double tolerance = 25.0;
    double functional_tolerance = 30.0;
    double min_functional_speedup = 0.0;
    int runs = 3;
    uint64_t max_insts = 300000;
    uint64_t functional_insts = 2'000'000;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--out") {
            out_path = value();
        } else if (arg == "--baseline") {
            baseline_path = value();
        } else if (arg == "--tolerance") {
            tolerance = std::strtod(value(), nullptr);
        } else if (arg == "--runs") {
            runs = std::atoi(value());
        } else if (arg == "--max-insts") {
            max_insts = std::strtoull(value(), nullptr, 0);
        } else if (arg == "--functional-insts") {
            functional_insts = std::strtoull(value(), nullptr, 0);
        } else if (arg == "--functional-tolerance") {
            functional_tolerance = std::strtod(value(), nullptr);
        } else if (arg == "--min-functional-speedup") {
            min_functional_speedup = std::strtod(value(), nullptr);
        } else {
            usage();
            return 2;
        }
    }
    if (runs < 1 || tolerance < 0 || functional_tolerance < 0 ||
        min_functional_speedup < 0) {
        usage();
        return 2;
    }

    printBenchHeader("perf_smoke — simulator wall-clock throughput",
                     "µ-ops simulated per host second, best of " +
                         std::to_string(runs) + " run(s)");

    std::vector<Cell> cells = {
        {"605.mcf_s", FusionMode::None},
        {"605.mcf_s", FusionMode::Helios},
        {"605.mcf_s", FusionMode::Oracle},
        {"qsort", FusionMode::None},
        {"qsort", FusionMode::Helios},
        {"qsort", FusionMode::Oracle},
        {"fft", FusionMode::None},
        {"fft", FusionMode::Helios},
        {"fft", FusionMode::Oracle},
    };

    Table table({"workload", "mode", "uops", "cycles", "Muops/s"});
    std::vector<double> rates;
    for (Cell &cell : cells) {
        const Workload &workload = findWorkload(cell.workload);
        for (int attempt = 0; attempt < runs; ++attempt) {
            Stopwatch timer;
            const RunResult result =
                runOne(workload, cell.mode, max_insts);
            const double seconds = timer.seconds();
            const double rate =
                seconds > 0 ? double(result.uops) / seconds : 0;
            if (rate > cell.uopsPerSec) {
                cell.uopsPerSec = rate;
                cell.uops = result.uops;
                cell.cycles = result.cycles;
            }
        }
        rates.push_back(cell.uopsPerSec);
        table.addRow({cell.workload, fusionModeName(cell.mode),
                      std::to_string(cell.uops),
                      std::to_string(cell.cycles),
                      Table::num(cell.uopsPerSec / 1e6, 2)});
    }
    table.print();
    const double headline = geomean(rates);
    std::printf("\ngeomean: %.2f Muops/s\n", headline / 1e6);

    // Functional section: raw architectural instructions per host
    // second, reference step() loop vs fast-forward engine.
    std::printf("\nfunctional engines — instructions per host second "
                "(budget %llu)\n",
                (unsigned long long)functional_insts);

    std::vector<FunctionalCell> functional_cells = {
        {"605.mcf_s", false}, {"605.mcf_s", true},
        {"qsort", false},     {"qsort", true},
        {"fft", false},       {"fft", true},
    };

    Table functional_table({"workload", "engine", "insts", "Minst/s"});
    std::vector<double> reference_rates, fast_rates;
    for (FunctionalCell &cell : functional_cells) {
        const Workload &workload = findWorkload(cell.workload);
        for (int attempt = 0; attempt < runs; ++attempt) {
            Stopwatch timer;
            const FunctionalResult result =
                runFunctional(workload, functional_insts,
                              cell.fastPath);
            const double seconds = timer.seconds();
            const double rate =
                seconds > 0 ? double(result.instructions) / seconds
                            : 0;
            if (rate > cell.instsPerSec) {
                cell.instsPerSec = rate;
                cell.instructions = result.instructions;
            }
        }
        (cell.fastPath ? fast_rates : reference_rates)
            .push_back(cell.instsPerSec);
        functional_table.addRow(
            {cell.workload, engineName(cell.fastPath),
             std::to_string(cell.instructions),
             Table::num(cell.instsPerSec / 1e6, 2)});
    }
    functional_table.print();
    const double reference_geomean = geomean(reference_rates);
    const double fast_geomean = geomean(fast_rates);
    const double speedup = reference_geomean > 0
                               ? fast_geomean / reference_geomean
                               : 0.0;
    std::printf("\nfunctional geomean: reference %.2f Minst/s, "
                "fast %.2f Minst/s, speedup %.1fx\n",
                reference_geomean / 1e6, fast_geomean / 1e6, speedup);

    if (!out_path.empty()) {
        JsonValue root = JsonValue::object();
        root.set("generator", "perf_smoke");
        root.set("max_insts", max_insts);
        root.set("runs", uint64_t(runs));
        root.set("geomean_uops_per_sec", headline);
        JsonValue cell_array = JsonValue::array();
        for (const Cell &cell : cells) {
            JsonValue entry = JsonValue::object();
            entry.set("workload", cell.workload);
            entry.set("mode", fusionModeName(cell.mode));
            entry.set("uops", cell.uops);
            entry.set("cycles", cell.cycles);
            entry.set("uops_per_sec", cell.uopsPerSec);
            cell_array.push(std::move(entry));
        }
        root.set("cells", std::move(cell_array));
        JsonValue functional = JsonValue::object();
        functional.set("max_insts", functional_insts);
        functional.set("geomean_reference_insts_per_sec",
                       reference_geomean);
        functional.set("geomean_fast_insts_per_sec", fast_geomean);
        functional.set("speedup", speedup);
        JsonValue functional_array = JsonValue::array();
        for (const FunctionalCell &cell : functional_cells) {
            JsonValue entry = JsonValue::object();
            entry.set("workload", cell.workload);
            entry.set("engine", engineName(cell.fastPath));
            entry.set("instructions", cell.instructions);
            entry.set("insts_per_sec", cell.instsPerSec);
            functional_array.push(std::move(entry));
        }
        functional.set("cells", std::move(functional_array));
        root.set("functional", std::move(functional));
        std::ofstream file(out_path);
        if (!file) {
            warn("perf_smoke: cannot write %s", out_path.c_str());
            return 2;
        }
        file << root.dump(2) << '\n';
        std::printf("wrote %s\n", out_path.c_str());
    }

    int failures = 0;
    if (min_functional_speedup > 0 &&
        speedup < min_functional_speedup) {
        std::printf("\nfunctional fast-engine speedup %.1fx is below "
                    "the required %.1fx\n",
                    speedup, min_functional_speedup);
        ++failures;
    }

    if (baseline_path.empty())
        return failures > 0 ? 1 : 0;

    std::ifstream file(baseline_path);
    if (!file) {
        warn("perf_smoke: cannot read %s", baseline_path.c_str());
        return 2;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    const JsonValue base = JsonValue::parse(buffer.str());

    // Per-cell comparison: an aggregate geomean can hide one config
    // regressing while another (noisier) one speeds up.
    int regressions = 0;
    const JsonValue &base_cells = base.at("cells");
    for (const Cell &cell : cells) {
        const JsonValue *match = nullptr;
        for (size_t i = 0; i < base_cells.size(); ++i) {
            const JsonValue &entry = base_cells.at(i);
            if (entry.at("workload").asString() == cell.workload &&
                entry.at("mode").asString() ==
                    fusionModeName(cell.mode)) {
                match = &entry;
                break;
            }
        }
        if (!match) {
            std::printf("  [new cell]  %s\n", cellKey(cell).c_str());
            continue;
        }
        const double before = match->at("uops_per_sec").asDouble();
        if (before <= 0)
            continue;
        const double change =
            (cell.uopsPerSec - before) / before * 100.0;
        const bool bad = change < -tolerance;
        if (bad)
            ++regressions;
        std::printf("  %-24s %8.2f -> %8.2f Muops/s  (%+.1f%%)%s\n",
                    cellKey(cell).c_str(), before / 1e6,
                    cell.uopsPerSec / 1e6, change,
                    bad ? "  REGRESSION" : "");
    }
    const double base_geomean =
        base.at("geomean_uops_per_sec").asDouble();
    if (base_geomean > 0) {
        const double change =
            (headline - base_geomean) / base_geomean * 100.0;
        std::printf("  %-24s %8.2f -> %8.2f Muops/s  (%+.1f%%)\n",
                    "geomean", base_geomean / 1e6, headline / 1e6,
                    change);
    }

    // Functional cells get their own tolerance: the engines are so
    // much faster than the cycle model that the same absolute noise
    // is a different relative wobble.
    int functional_regressions = 0;
    if (base.has("functional")) {
        const JsonValue &base_functional_cells =
            base.at("functional").at("cells");
        for (const FunctionalCell &cell : functional_cells) {
            const JsonValue *match = nullptr;
            for (size_t i = 0; i < base_functional_cells.size();
                 ++i) {
                const JsonValue &entry = base_functional_cells.at(i);
                if (entry.at("workload").asString() ==
                        cell.workload &&
                    entry.at("engine").asString() ==
                        engineName(cell.fastPath)) {
                    match = &entry;
                    break;
                }
            }
            if (!match) {
                std::printf("  [new cell]  %s\n",
                            functionalKey(cell).c_str());
                continue;
            }
            const double before =
                match->at("insts_per_sec").asDouble();
            if (before <= 0)
                continue;
            const double change =
                (cell.instsPerSec - before) / before * 100.0;
            const bool bad = change < -functional_tolerance;
            if (bad)
                ++functional_regressions;
            std::printf("  %-24s %8.2f -> %8.2f Minst/s (%+.1f%%)%s\n",
                        functionalKey(cell).c_str(), before / 1e6,
                        cell.instsPerSec / 1e6, change,
                        bad ? "  REGRESSION" : "");
        }
    } else {
        std::printf("  [new section]  functional\n");
    }

    if (regressions > 0) {
        std::printf("\n%d cell(s) regressed more than %.0f%%\n",
                    regressions, tolerance);
        ++failures;
    }
    if (functional_regressions > 0) {
        std::printf("\n%d functional cell(s) regressed more than "
                    "%.0f%%\n",
                    functional_regressions, functional_tolerance);
        ++failures;
    }
    if (failures > 0)
        return 1;
    std::printf("\nwithin %.0f%% of baseline (functional: %.0f%%)\n",
                tolerance, functional_tolerance);
    return 0;
}
