/**
 * @file
 * Figure 3: IPC of fusing all Table I idioms vs only the memory
 * pairing idioms, normalized to no fusion.
 *
 * Paper reference: the difference between fusing all µ-ops and just
 * memory µ-ops is about 1 percentage point on average (susan is the
 * notable exception), motivating the focus on memory fusion.
 */

#include <cstdio>

#include "harness/report.hh"
#include "harness/runner.hh"

using namespace helios;

int
main()
{
    printBenchHeader(
        "Figure 3 — all idioms vs memory-only fusion (normalized IPC)",
        "CSF-SBR = memory pairing idioms only; RISCVFusion++ = all "
        "Table I idioms");
    const uint64_t budget = benchInstructionBudget();
    const unsigned jobs = defaultJobCount();

    const FusionMode modes[] = {FusionMode::None, FusionMode::CsfSbr,
                                FusionMode::RiscvFusionPP};
    std::vector<MatrixCell> cells;
    for (const Workload &workload : allWorkloads())
        for (FusionMode mode : modes)
            cells.emplace_back(workload, mode, budget);

    Stopwatch timer;
    const std::vector<RunResult> results = runMatrix(cells, jobs);
    const double elapsed = timer.seconds();

    Table table({"workload", "base IPC", "MemoryOnly", "AllIdioms"});
    std::vector<double> memory_ratios, all_ratios;
    const auto &workloads = allWorkloads();
    for (size_t w = 0; w < workloads.size(); ++w) {
        const double base = results[w * 3].ipc();
        const double memory = results[w * 3 + 1].ipc();
        const double all = results[w * 3 + 2].ipc();
        table.addRow({workloads[w].name, Table::num(base, 3),
                      Table::num(memory / base, 3),
                      Table::num(all / base, 3)});
        memory_ratios.push_back(memory / base);
        all_ratios.push_back(all / base);
    }
    table.addRow({"GEOMEAN", "",
                  Table::num(geomean(memory_ratios), 3),
                  Table::num(geomean(all_ratios), 3)});
    table.print();
    std::printf("\nPaper: ~1 percentage point between the two on "
                "average\n");
    printMatrixTiming(cells.size(), jobs, elapsed);
    return 0;
}
