/**
 * @file
 * Figure 5: additional fusion potential from non-consecutive (NCSF)
 * and different-base-register (DBR) memory fusion, within a 64-µ-op
 * window and 64 B region.
 *
 * Paper reference: NCSF adds a non-negligible fraction on top of CSF;
 * 12.1% of NCSF pairs are asymmetric; DBR pairs amount to ~1.5% of
 * dynamic µ-ops.
 */

#include <cstdio>

#include "harness/analysis.hh"
#include "harness/report.hh"
#include "harness/runner.hh"

using namespace helios;

int
main()
{
    printBenchHeader(
        "Figure 5 — NCSF / DBR fusion potential",
        "% of dynamic µ-ops pairable per category (64-µ-op window)");
    const uint64_t budget = benchInstructionBudget();

    Stopwatch timer;
    Table table({"workload", "CSF", "CSF-DBR", "NCSF", "NCSF-DBR",
                 "asym%ofNCSF"});
    double sums[4] = {};
    double asym_sum = 0.0;
    unsigned count = 0;
    for (const Workload &workload : allWorkloads()) {
        NcsfPotentialAccumulator acc;
        forEachDynInst(workload, budget,
                       [&](const DynInst &dyn) { acc.add(dyn); });
        const NcsfPotentialStats &stats = acc.stats();
        const double values[4] = {stats.fraction(stats.csfSbr),
                                  stats.fraction(stats.csfDbr),
                                  stats.fraction(stats.ncsfSbr),
                                  stats.fraction(stats.ncsfDbr)};
        const uint64_t ncsf_pairs = stats.ncsfSbr + stats.ncsfDbr;
        const double asym =
            ncsf_pairs ? double(stats.asymmetric) / double(stats.pairs())
                       : 0.0;
        table.addRow({workload.name, Table::pct(values[0]),
                      Table::pct(values[1]), Table::pct(values[2]),
                      Table::pct(values[3]), Table::pct(asym)});
        for (int i = 0; i < 4; ++i)
            sums[i] += values[i];
        asym_sum += asym;
        ++count;
    }
    table.addRow({"AVERAGE", Table::pct(sums[0] / count),
                  Table::pct(sums[1] / count),
                  Table::pct(sums[2] / count),
                  Table::pct(sums[3] / count),
                  Table::pct(asym_sum / count)});
    table.print();
    std::printf("\nPaper: DBR ~1.5%% of dynamic µ-ops; 12.1%% of NCSF "
                "pairs asymmetric\n");
    std::printf("\n[stream] %u workloads analyzed in %.2f s\n", count,
                timer.seconds());
    return 0;
}
