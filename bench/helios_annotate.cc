/**
 * @file
 * Annotated disassembly from a profiled run report.
 *
 *   $ helios_annotate <report.json> <program.s> [options]
 *       --run NAME      pick the run by workload name (default: the
 *                       first profiled run in the file)
 *       --mode NAME     pick the run by fusion mode (combined with
 *                       --run when both are given)
 *       --top N         hottest-site list length (default 10)
 *       --json          emit machine-readable JSON instead of text
 *       --out FILE      write to FILE instead of stdout
 *
 * Joins the per-PC fusion-site profile of a schema-v2 run report
 * (`helios_run --profile`, or fig10 with HELIOS_PROFILE set) with the
 * disassembly of the program it measured: every text line gets its
 * execution count, fusion coverage, per-class fused pairs,
 * missed-opportunity reasons and dominant stall category; the hottest
 * sites by attributed stall cycles lead the output. See
 * OBSERVABILITY.md ("Profiling & annotation").
 *
 * Exit status: 0 on success, 1 on malformed inputs (fatal errors),
 * 2 on usage errors or an unwritable --out path.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "asm/assembler.hh"
#include "common/logging.hh"
#include "harness/run_report.hh"
#include "telemetry/annotate.hh"

using namespace helios;

namespace
{

void
usage()
{
    std::fprintf(stderr,
                 "usage: helios_annotate <report.json> <program.s> "
                 "[--run NAME] [--mode NAME] [--top N] [--json] "
                 "[--out FILE]\n");
}

/** The run to annotate: filtered by name/mode, profiled runs only. */
const RunReport *
selectRun(const RunReportFile &file, const std::string &run_name,
          const std::string &mode_name)
{
    for (const RunReport &run : file.runs) {
        if (!run.profiled)
            continue;
        if (!run_name.empty() && run.workload != run_name)
            continue;
        if (!mode_name.empty() && run.mode != mode_name)
            continue;
        return &run;
    }
    return nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string report_path, program_path, out_path;
    std::string run_name, mode_name;
    size_t top_n = 10;
    bool json = false;

    const auto value_of = [&](int &i, const char *name) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr,
                         "helios_annotate: %s needs an argument\n",
                         name);
            usage();
            std::exit(2);
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--run") {
            run_name = value_of(i, "--run");
        } else if (arg == "--mode") {
            mode_name = value_of(i, "--mode");
        } else if (arg == "--top") {
            top_n = std::strtoull(value_of(i, "--top"), nullptr, 0);
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--out") {
            out_path = value_of(i, "--out");
        } else if (arg[0] == '-') {
            std::fprintf(stderr,
                         "helios_annotate: unknown option '%s'\n",
                         arg.c_str());
            usage();
            return 2;
        } else if (report_path.empty()) {
            report_path = arg;
        } else if (program_path.empty()) {
            program_path = arg;
        } else {
            usage();
            return 2;
        }
    }
    if (report_path.empty() || program_path.empty()) {
        usage();
        return 2;
    }

    try {
        const RunReportFile file = RunReportFile::load(report_path);
        const RunReport *run = selectRun(file, run_name, mode_name);
        if (!run)
            fatal("no profiled run%s%s in '%s' (re-run with "
                  "--profile / HELIOS_PROFILE)",
                  run_name.empty() ? "" : " matching ",
                  run_name.empty() ? "" : run_name.c_str(),
                  report_path.c_str());

        std::ifstream source_file(program_path);
        if (!source_file) {
            std::fprintf(stderr,
                         "helios_annotate: cannot open '%s'\n",
                         program_path.c_str());
            return 2;
        }
        std::ostringstream source;
        source << source_file.rdbuf();
        const Program program = assemble(source.str());

        std::string rendered;
        if (json) {
            rendered =
                annotateJson(run->profile, program, top_n).dump(2) +
                "\n";
        } else {
            rendered = strFormat("%s %s (%s)\n", run->workload.c_str(),
                                 run->mode.c_str(),
                                 report_path.c_str()) +
                       annotateText(run->profile, program, top_n);
        }

        if (out_path.empty()) {
            std::fputs(rendered.c_str(), stdout);
        } else {
            std::ofstream out(out_path);
            if (!out || !(out << rendered)) {
                std::fprintf(
                    stderr,
                    "helios_annotate: cannot write '%s'\n",
                    out_path.c_str());
                return 2;
            }
        }
        return 0;
    } catch (const FatalError &error) {
        std::fprintf(stderr, "helios_annotate: %s\n", error.what());
        return 1;
    }
}
