/**
 * @file
 * Figure 2: percentage of fused µ-ops considering all or just memory
 * fusion idioms, relative to total dynamic µ-ops.
 *
 * Paper reference: 5.6% of dynamic µ-ops belong to the Memory
 * category, 1.1% to Others, on average; bitcount and susan are among
 * the exceptions where non-memory fusion dominates.
 */

#include <cstdio>

#include "harness/analysis.hh"
#include "harness/report.hh"
#include "harness/runner.hh"

using namespace helios;

int
main()
{
    printBenchHeader(
        "Figure 2 — fused pairs by idiom class",
        "Memory (load/store pair) vs Others (Table I non-memory "
        "idioms), % of dynamic µ-ops");
    const uint64_t budget = benchInstructionBudget();

    Stopwatch timer;
    Table table({"workload", "Memory", "Others", "Total"});
    double mem_sum = 0.0, other_sum = 0.0;
    unsigned count = 0;
    for (const Workload &workload : allWorkloads()) {
        // Stream the dynamic instructions straight into the analysis
        // instead of materializing the trace.
        IdiomAccumulator acc;
        forEachDynInst(workload, budget,
                       [&](const DynInst &dyn) { acc.add(dyn); });
        const IdiomStats &stats = acc.stats();
        table.addRow({workload.name, Table::pct(stats.memoryFraction()),
                      Table::pct(stats.othersFraction()),
                      Table::pct(stats.memoryFraction() +
                                 stats.othersFraction())});
        mem_sum += stats.memoryFraction();
        other_sum += stats.othersFraction();
        ++count;
    }
    table.addRow({"AVERAGE", Table::pct(mem_sum / count),
                  Table::pct(other_sum / count),
                  Table::pct((mem_sum + other_sum) / count)});
    table.print();
    std::printf("\nPaper (amean): Memory 5.6%%, Others 1.1%%\n");
    std::printf("\n[stream] %u workloads analyzed in %.2f s\n", count,
                timer.seconds());
    return 0;
}
