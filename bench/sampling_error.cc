/**
 * @file
 * Sampled-vs-full validation gate for the interval sampler.
 *
 * For each named workload, run the same instruction frame twice:
 * once fully detailed (every instruction through the cycle model —
 * ground truth) and once sampled (harness/sampling.hh: functional
 * fast-forward, checkpoints at interval starts, warmup + measured
 * window per sample). Report the IPC error of the sampled estimate
 * against the full run, and fail (exit 1) when any workload's error
 * exceeds the tolerance — this is the committed accuracy contract CI
 * enforces, so estimator or warmup regressions surface as a red gate
 * rather than as silently wrong paper numbers.
 *
 *   $ sampling_error [options] [workload...]
 *       --tolerance PCT   max |sampled - full| / full IPC error
 *                         (default 2)
 *       --budget N        instruction frame per workload
 *                         (default 2000000)
 *       --samples N       checkpoints per frame (default 10)
 *       --interval M      measured instructions per sample
 *                         (default 20000)
 *       --warmup K        detailed warmup before each window
 *                         (default 5000)
 *       --report FILE     write a schema-v5 RunReportFile holding the
 *                         full run and the sampled run (with its
 *                         `sampled` section) per workload
 *       --checkpoint-dir DIR  persist/reuse checkpoints under DIR
 *
 * Default workloads: dotprod-like integer (crc32) and pointer-heavy
 * (qsort) kernels; CI passes its own pair explicitly.
 *
 * Exit status: 0 within tolerance, 1 tolerance exceeded, 2 usage
 * errors.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "harness/report.hh"
#include "harness/run_report.hh"
#include "harness/runner.hh"
#include "harness/sampling.hh"
#include "workloads/workloads.hh"

using namespace helios;

namespace
{

void
usage()
{
    std::fprintf(stderr,
                 "usage: sampling_error [--tolerance PCT] "
                 "[--budget N] [--samples N] [--interval M] "
                 "[--warmup K] [--report FILE] "
                 "[--checkpoint-dir DIR] [workload...]\n");
}

} // namespace

int
main(int argc, char **argv)
{
    double tolerance = 2.0;
    SamplingSpec spec;
    spec.totalBudget = 2'000'000;
    spec.sampleCount = 10;
    spec.intervalInsts = 20'000;
    spec.warmupInsts = 5'000;
    std::string report_path;
    std::vector<std::string> names;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "sampling_error: %s needs an argument\n",
                             arg.c_str());
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--tolerance") {
            tolerance = std::strtod(value(), nullptr);
        } else if (arg == "--budget") {
            spec.totalBudget = std::strtoull(value(), nullptr, 0);
        } else if (arg == "--samples") {
            spec.sampleCount = std::strtoull(value(), nullptr, 0);
        } else if (arg == "--interval") {
            spec.intervalInsts = std::strtoull(value(), nullptr, 0);
        } else if (arg == "--warmup") {
            spec.warmupInsts = std::strtoull(value(), nullptr, 0);
        } else if (arg == "--report") {
            report_path = value();
        } else if (arg == "--checkpoint-dir") {
            spec.checkpointDir = value();
        } else if (arg[0] == '-') {
            std::fprintf(stderr,
                         "sampling_error: unknown option '%s'\n",
                         arg.c_str());
            usage();
            return 2;
        } else {
            names.push_back(arg);
        }
    }
    if (names.empty())
        names = {"crc32", "qsort"};

    try {
        spec.validate();

        printBenchHeader("sampled-vs-full IPC error",
                         strFormat("%zu workloads, %llu-inst frame, "
                                   "%llu samples x (%llu warmup + "
                                   "%llu interval), tolerance %.2f%%",
                                   names.size(),
                                   (unsigned long long)spec.totalBudget,
                                   (unsigned long long)spec.sampleCount,
                                   (unsigned long long)spec.warmupInsts,
                                   (unsigned long long)spec.intervalInsts,
                                   tolerance)
                             .c_str());

        const CoreParams params =
            CoreParams::icelake(FusionMode::Helios);
        RunReportFile file;
        file.generator = "sampling_error";

        Table table({"workload", "full IPC", "sampled IPC",
                     "95% CI half", "error %", "speedup", "verdict"});
        bool failed = false;
        for (const std::string &name : names) {
            const Workload &workload = findWorkload(name);

            Stopwatch full_timer;
            const RunResult full =
                runOne(workload, params, spec.totalBudget);
            const double full_seconds = full_timer.seconds();

            Stopwatch sampled_timer;
            const SampledResult sampled =
                runSampled(workload, params, spec);
            const double sampled_seconds = sampled_timer.seconds();

            const double error_pct =
                full.ipc() > 0
                    ? 100.0 *
                          std::fabs(sampled.ipc.mean - full.ipc()) /
                          full.ipc()
                    : 0.0;
            const double speedup = sampled_seconds > 0
                                       ? full_seconds / sampled_seconds
                                       : 0.0;
            const bool ok = error_pct <= tolerance;
            failed = failed || !ok;

            table.addRow({name, Table::num(full.ipc(), 4),
                          Table::num(sampled.ipc.mean, 4),
                          Table::num(sampled.ipc.ci95Half, 4),
                          Table::num(error_pct, 3),
                          Table::num(speedup, 1) + "x",
                          ok ? "ok" : "FAIL"});

            file.add(full, spec.totalBudget);
            file.runs.push_back(makeSampledRunReport(sampled));
        }
        table.print();

        if (!report_path.empty()) {
            attachHostSection(file);
            file.save(report_path);
            std::printf("report: %zu runs -> %s\n", file.runs.size(),
                        report_path.c_str());
        }

        if (failed) {
            std::printf("sampling error gate: FAIL (tolerance "
                        "%.2f%%)\n",
                        tolerance);
            return 1;
        }
        std::printf("sampling error gate: ok (tolerance %.2f%%)\n",
                    tolerance);
        return 0;
    } catch (const FatalError &error) {
        std::fprintf(stderr, "sampling_error: %s\n", error.what());
        return 2;
    }
}
