/**
 * @file
 * Figure 4: paired consecutive memory µ-ops by address relationship
 * (contiguous / overlapping / same cache line / next line), relative
 * to total dynamic µ-ops, assuming 64 B cache access granularity.
 *
 * Paper reference: very few pairs overlap; ~1% additional µ-ops could
 * fuse with non-contiguous fusion (SameLine + NextLine).
 */

#include <cstdio>

#include "harness/analysis.hh"
#include "harness/report.hh"
#include "harness/runner.hh"

using namespace helios;

int
main()
{
    printBenchHeader(
        "Figure 4 — consecutive memory pair categories",
        "% of dynamic µ-ops in each pair category (64 B granularity)");
    const uint64_t budget = benchInstructionBudget();

    Stopwatch timer;
    Table table({"workload", "Contiguous", "Overlap", "SameLine",
                 "NextLine"});
    double sums[4] = {};
    unsigned count = 0;
    for (const Workload &workload : allWorkloads()) {
        CsfCategoryAccumulator acc;
        forEachDynInst(workload, budget,
                       [&](const DynInst &dyn) { acc.add(dyn); });
        const CsfCategoryStats &stats = acc.stats();
        const double values[4] = {stats.fraction(stats.contiguous),
                                  stats.fraction(stats.overlapping),
                                  stats.fraction(stats.sameLine),
                                  stats.fraction(stats.nextLine)};
        table.addRow({workload.name, Table::pct(values[0]),
                      Table::pct(values[1]), Table::pct(values[2]),
                      Table::pct(values[3])});
        for (int i = 0; i < 4; ++i)
            sums[i] += values[i];
        ++count;
    }
    table.addRow({"AVERAGE", Table::pct(sums[0] / count),
                  Table::pct(sums[1] / count),
                  Table::pct(sums[2] / count),
                  Table::pct(sums[3] / count)});
    table.print();
    std::printf("\nPaper: overlap nearly absent; SameLine+NextLine "
                "adds ~1%% beyond contiguous\n");
    std::printf("\n[stream] %u workloads analyzed in %.2f s\n", count,
                timer.seconds());
    return 0;
}
