/**
 * @file
 * Query and maintain a run ledger (src/ledger): the content-addressed
 * store `helios_run --ledger` / HELIOS_LEDGER records finished runs
 * into.
 *
 *   $ helios_db <command> <ledger-dir> [args]
 *
 *       ingest DIR report.json [--build NAME]
 *           Ingest every run of a RunReport file as a ledger record
 *           (key: program_hash, config_hash, max_insts, build). The
 *           --build override stamps a synthetic build name — that is
 *           how a trend history is seeded from reports produced by
 *           one binary (same key except the build ⇒ a new point).
 *
 *       list DIR
 *           One line per record: seq, workload, config, build, IPC.
 *
 *       show DIR SEQ
 *           Print record SEQ's meta and its full blob (the run's
 *           report JSON).
 *
 *       trend DIR --metric NAME [--window N] [--tolerance PCT]
 *                 [--lower-is-better]
 *           Every (workload, config) series of meta field NAME in
 *           append order, flagging the latest point when it drifted
 *           past the tolerance vs the mean of the preceding window
 *           (default: window 5, tolerance 2%, higher is better).
 *           Exit 1 when any series is flagged — the CI drift
 *           observatory's gate.
 *
 *       diff DIR SEQ_BASE SEQ_CUR [--tolerance PCT]
 *                 [--ipc-tolerance PCT] [--coverage-tolerance PCT]
 *                 [--verbose]
 *           Diff two ledger records through the same report-diff core
 *           as bench/compare_reports (harness/report_diff.*). Exit 1
 *           on regressions.
 *
 *       gc DIR
 *           Delete unreferenced blob files (crash leftovers) and
 *           compact the index.
 *
 * Exit status: 0 clean, 1 regression found (trend/diff), 2 usage or
 * file errors. See OBSERVABILITY.md ("Run ledger & trends").
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "harness/report_diff.hh"
#include "harness/run_report.hh"
#include "ledger/ledger.hh"
#include "ledger/trend.hh"
#include "telemetry/host_metrics.hh"

using namespace helios;

namespace
{

void
usage()
{
    std::fprintf(
        stderr,
        "usage: helios_db <command> <ledger-dir> [args]\n"
        "  ingest DIR report.json [--build NAME]\n"
        "  list   DIR\n"
        "  show   DIR SEQ\n"
        "  trend  DIR --metric NAME [--window N] [--tolerance PCT]\n"
        "               [--lower-is-better]\n"
        "  diff   DIR SEQ_BASE SEQ_CUR [--tolerance PCT]\n"
        "               [--ipc-tolerance PCT] "
        "[--coverage-tolerance PCT] [--verbose]\n"
        "  gc     DIR\n");
}

const LedgerRecord *
findBySeq(const Ledger &ledger, uint64_t seq)
{
    for (const LedgerRecord &record : ledger.records())
        if (record.seq == seq)
            return &record;
    return nullptr;
}

uint64_t
parseSeq(const char *text)
{
    char *end = nullptr;
    const uint64_t seq = std::strtoull(text, &end, 0);
    if (end == text || *end != '\0') {
        std::fprintf(stderr, "helios_db: '%s' is not a record seq\n",
                     text);
        std::exit(2);
    }
    return seq;
}

int
cmdIngest(Ledger &ledger, const std::string &report_path,
          const std::string &build_override)
{
    const RunReportFile file = RunReportFile::load(report_path);
    unsigned recorded = 0, hits = 0;
    for (const RunReport &report : file.runs) {
        LedgerKey key;
        key.programHash = report.programHash;
        key.configHash = report.configHash;
        key.budget = report.maxInsts;
        key.build = build_override.empty() ? buildInfo().gitHash
                                           : build_override;

        JsonValue meta = JsonValue::object();
        meta.set("workload", JsonValue(report.workload));
        meta.set("mode", JsonValue(report.mode));
        meta.set("ipc", JsonValue(report.ipc));
        meta.set("fusion_coverage",
                 JsonValue(report.fusionCoverage()));
        meta.set("instructions", JsonValue(report.instructions));
        meta.set("cycles", JsonValue(report.cycles));
        meta.set("uops", JsonValue(report.uops));

        RunReportFile blob;
        blob.generator = "helios_db ingest";
        blob.runs.push_back(report);
        if (ledger.record(key, std::move(meta), blob.toJsonText()))
            ++recorded;
        else
            ++hits;
    }
    std::printf("ingest: %u run(s) recorded, %u already present "
                "<- %s\n",
                recorded, hits, report_path.c_str());
    return 0;
}

int
cmdList(const Ledger &ledger)
{
    for (const LedgerRecord &record : ledger.records()) {
        const JsonValue &meta = record.meta;
        const auto field = [&](const char *name) -> std::string {
            const JsonValue &value = meta.get(name);
            return value.isString() ? value.asString() : "-";
        };
        const JsonValue &ipc = meta.get("ipc");
        std::printf("%4llu  %-24s %-12s %-12s ipc %-8s %s\n",
                    (unsigned long long)record.seq,
                    field("workload").c_str(), field("mode").c_str(),
                    record.key.build.c_str(),
                    ipc.isNumber()
                        ? strFormat("%.4f", ipc.asDouble()).c_str()
                        : "-",
                    record.key.text().c_str());
    }
    std::printf("helios_db: %zu record(s) in %s\n",
                ledger.records().size(), ledger.dir().c_str());
    return 0;
}

int
cmdShow(const Ledger &ledger, uint64_t seq)
{
    const LedgerRecord *record = findBySeq(ledger, seq);
    if (!record) {
        std::fprintf(stderr, "helios_db: no record with seq %llu\n",
                     (unsigned long long)seq);
        return 2;
    }
    std::printf("key:  %s\n", record->key.text().c_str());
    std::printf("meta: %s\n", record->meta.dump(0).c_str());
    const std::string blob = ledger.loadBlob(*record);
    std::fputs(blob.c_str(), stdout);
    if (!blob.empty() && blob.back() != '\n')
        std::fputc('\n', stdout);
    return 0;
}

int
cmdTrend(const Ledger &ledger, const std::string &metric,
         const TrendOptions &options)
{
    const std::vector<TrendSeries> series =
        collectTrendSeries(ledger, metric);
    if (series.empty()) {
        std::printf("trend: no records carry metric '%s'\n",
                    metric.c_str());
        return 0;
    }

    unsigned flagged = 0;
    for (const TrendSeries &s : series) {
        std::string points;
        for (const TrendPoint &point : s.points)
            points += strFormat(" %.4f", point.value);
        std::printf("%s/%s (budget %llu) %s:%s\n", s.workload.c_str(),
                    s.mode.c_str(), (unsigned long long)s.budget,
                    metric.c_str(), points.c_str());
        for (const TrendFlag &flag : analyzeTrend(s, options)) {
            std::printf("TREND    %s/%s %s %.4f vs window mean %.4f "
                        "(%+.2f%%, tolerance %.2f%%)\n",
                        flag.workload.c_str(), flag.mode.c_str(),
                        flag.metric.c_str(), flag.latest,
                        flag.reference, 100.0 * flag.delta,
                        100.0 * options.tolerance);
            ++flagged;
        }
    }
    std::printf("trend: %zu series, %u regression(s)\n", series.size(),
                flagged);
    return flagged ? 1 : 0;
}

int
cmdDiff(const Ledger &ledger, uint64_t seq_base, uint64_t seq_cur,
        const ReportDiffOptions &options)
{
    const LedgerRecord *base = findBySeq(ledger, seq_base);
    const LedgerRecord *cur = findBySeq(ledger, seq_cur);
    if (!base || !cur) {
        std::fprintf(stderr, "helios_db: no record with seq %llu\n",
                     (unsigned long long)(!base ? seq_base : seq_cur));
        return 2;
    }
    const RunReportFile baseline =
        RunReportFile::fromJsonText(ledger.loadBlob(*base));
    const RunReportFile current =
        RunReportFile::fromJsonText(ledger.loadBlob(*cur));

    std::string findings;
    const ReportDiffResult result =
        diffReportFiles(baseline, current, options, findings);
    std::fputs(findings.c_str(), stdout);
    std::printf("helios_db diff: %u run(s) matched, "
                "%u regression(s)\n",
                result.matched, result.regressions);
    return result.clean() ? 0 : 1;
}

int
cmdGc(Ledger &ledger)
{
    const size_t removed = ledger.gc();
    std::printf("gc: removed %zu unreferenced blob(s), %zu record(s) "
                "kept\n",
                removed, ledger.records().size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3) {
        usage();
        return 2;
    }
    const std::string command = argv[1];
    const std::string dir = argv[2];

    try {
        Ledger ledger(dir);

        if (command == "ingest") {
            std::string report_path, build_override;
            for (int i = 3; i < argc; ++i) {
                const std::string arg = argv[i];
                if (arg == "--build" && i + 1 < argc) {
                    build_override = argv[++i];
                } else if (arg[0] == '-' || !report_path.empty()) {
                    usage();
                    return 2;
                } else {
                    report_path = arg;
                }
            }
            if (report_path.empty()) {
                usage();
                return 2;
            }
            return cmdIngest(ledger, report_path, build_override);
        }
        if (command == "list") {
            return cmdList(ledger);
        }
        if (command == "show") {
            if (argc != 4) {
                usage();
                return 2;
            }
            return cmdShow(ledger, parseSeq(argv[3]));
        }
        if (command == "trend") {
            std::string metric;
            TrendOptions options;
            for (int i = 3; i < argc; ++i) {
                const std::string arg = argv[i];
                if (arg == "--metric" && i + 1 < argc) {
                    metric = argv[++i];
                } else if (arg == "--window" && i + 1 < argc) {
                    options.window =
                        std::strtoull(argv[++i], nullptr, 0);
                } else if (arg == "--tolerance" && i + 1 < argc) {
                    options.tolerance =
                        std::strtod(argv[++i], nullptr) / 100.0;
                } else if (arg == "--lower-is-better") {
                    options.higherIsBetter = false;
                } else {
                    usage();
                    return 2;
                }
            }
            if (metric.empty()) {
                usage();
                return 2;
            }
            return cmdTrend(ledger, metric, options);
        }
        if (command == "diff") {
            if (argc < 5) {
                usage();
                return 2;
            }
            ReportDiffOptions options;
            for (int i = 5; i < argc; ++i) {
                const std::string arg = argv[i];
                if (arg == "--tolerance" && i + 1 < argc) {
                    const double tolerance =
                        std::strtod(argv[++i], nullptr) / 100.0;
                    options.ipcTolerance = tolerance;
                    options.coverageTolerance = tolerance;
                } else if (arg == "--ipc-tolerance" && i + 1 < argc) {
                    options.ipcTolerance =
                        std::strtod(argv[++i], nullptr) / 100.0;
                } else if (arg == "--coverage-tolerance" &&
                           i + 1 < argc) {
                    options.coverageTolerance =
                        std::strtod(argv[++i], nullptr) / 100.0;
                } else if (arg == "--verbose") {
                    options.verbose = true;
                } else {
                    usage();
                    return 2;
                }
            }
            return cmdDiff(ledger, parseSeq(argv[3]),
                           parseSeq(argv[4]), options);
        }
        if (command == "gc") {
            return cmdGc(ledger);
        }

        std::fprintf(stderr, "helios_db: unknown command '%s'\n",
                     command.c_str());
        usage();
        return 2;
    } catch (const FatalError &error) {
        std::fprintf(stderr, "helios_db: %s\n", error.what());
        return 2;
    }
}
