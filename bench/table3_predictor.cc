/**
 * @file
 * Table III: Helios fusion predictor coverage, accuracy and MPKI.
 *
 * Coverage counts the pairs that need prediction (NCSF plus CSF pairs
 * with different base registers), measured against what OracleFusion
 * achieves; accuracy is validated fusions over resolved predictions;
 * MPKI is fusion mispredictions per kilo-instruction.
 *
 * Paper reference (averages): coverage 68.2%, accuracy 99.7%,
 * MPKI 0.1416; 641.leela has the lowest accuracy (97.7%), 657.xz_1
 * the highest coverage (~100%).
 */

#include <algorithm>
#include <cstdio>

#include "harness/report.hh"
#include "harness/runner.hh"

using namespace helios;

int
main()
{
    printBenchHeader("Table III — Helios fusion predictor quality",
                     "coverage vs oracle, accuracy, fusion MPKI");
    const uint64_t budget = benchInstructionBudget();
    const unsigned jobs = defaultJobCount();

    std::vector<MatrixCell> cells;
    for (const Workload &workload : allWorkloads()) {
        cells.emplace_back(workload, FusionMode::Helios, budget);
        cells.emplace_back(workload, FusionMode::Oracle, budget);
    }

    Stopwatch timer;
    const std::vector<RunResult> results = runMatrix(cells, jobs);
    const double elapsed = timer.seconds();

    Table table({"workload", "Coverage", "Accuracy", "MPKI"});
    double cov_sum = 0.0, acc_sum = 0.0, mpki_sum = 0.0;
    unsigned count = 0;
    const auto &workloads = allWorkloads();
    for (size_t w = 0; w < workloads.size(); ++w) {
        const RunResult &helios_run = results[w * 2];
        const RunResult &oracle_run = results[w * 2 + 1];

        const double achieved =
            double(helios_run.stat("pairs.fp_validated"));
        const double possible =
            double(oracle_run.stat("pairs.need_prediction"));
        const double coverage =
            possible > 0 ? std::min(1.0, achieved / possible) : 1.0;

        const double correct =
            double(helios_run.stat("fusion.fp_correct"));
        const double wrong =
            double(helios_run.stat("fusion.mispredicts"));
        const double accuracy =
            (correct + wrong) > 0 ? correct / (correct + wrong) : 1.0;

        const double mpki =
            1000.0 * wrong / double(helios_run.instructions);

        table.addRow({workloads[w].name, Table::pct(coverage),
                      Table::pct(accuracy), Table::num(mpki, 4)});
        cov_sum += coverage;
        acc_sum += accuracy;
        mpki_sum += mpki;
        ++count;
    }
    table.addRow({"AVERAGE", Table::pct(cov_sum / count),
                  Table::pct(acc_sum / count),
                  Table::num(mpki_sum / count, 4)});
    table.print();
    std::printf("\nPaper (avg): coverage 68.2%%, accuracy 99.7%%, "
                "MPKI 0.1416\n");
    printMatrixTiming(cells.size(), jobs, elapsed);
    return 0;
}
