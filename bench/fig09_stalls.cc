/**
 * @file
 * Figure 9: Rename and Dispatch structural stalls as a percentage of
 * total execution cycles, for the no-fusion baseline, Helios and
 * OracleFusion.
 *
 * Paper reference: applications with large baseline dispatch stalls
 * (657.xz_1: 88% waiting for an SQ entry) see the largest IPC gains;
 * Helios removes a significant share of those stalls.
 */

#include <cstdio>

#include "harness/report.hh"
#include "harness/runner.hh"

using namespace helios;

namespace
{

double
stallPercent(const RunResult &result)
{
    const double cycles = double(result.cycles);
    const uint64_t stalls = result.stat("rename.stall.prf") +
                            result.stat("dispatch.stall.rob") +
                            result.stat("dispatch.stall.iq") +
                            result.stat("dispatch.stall.lq") +
                            result.stat("dispatch.stall.sq");
    return cycles ? double(stalls) / cycles : 0.0;
}

std::string
dominant(const RunResult &result)
{
    const char *names[] = {"rename.stall.prf", "dispatch.stall.rob",
                           "dispatch.stall.iq", "dispatch.stall.lq",
                           "dispatch.stall.sq"};
    const char *labels[] = {"prf", "rob", "iq", "lq", "sq"};
    uint64_t best = 0;
    const char *label = "-";
    for (int i = 0; i < 5; ++i) {
        if (result.stat(names[i]) > best) {
            best = result.stat(names[i]);
            label = labels[i];
        }
    }
    return best ? label : "-";
}

} // namespace

int
main()
{
    printBenchHeader(
        "Figure 9 — rename/dispatch structural stalls (% of cycles)",
        "baseline (no fusion) vs Helios vs OracleFusion; 'top' = "
        "dominant stalled resource in the baseline");
    const uint64_t budget = benchInstructionBudget();
    const unsigned jobs = defaultJobCount();

    const FusionMode modes[] = {FusionMode::None, FusionMode::Helios,
                                FusionMode::Oracle};
    std::vector<MatrixCell> cells;
    for (const Workload &workload : allWorkloads())
        for (FusionMode mode : modes)
            cells.emplace_back(workload, mode, budget);

    Stopwatch timer;
    const std::vector<RunResult> results = runMatrix(cells, jobs);
    const double elapsed = timer.seconds();

    Table table({"workload", "baseline", "Helios", "Oracle", "top"});
    const auto &workloads = allWorkloads();
    for (size_t w = 0; w < workloads.size(); ++w) {
        const RunResult &base = results[w * 3];
        const RunResult &helios_run = results[w * 3 + 1];
        const RunResult &oracle_run = results[w * 3 + 2];
        table.addRow({workloads[w].name, Table::pct(stallPercent(base)),
                      Table::pct(stallPercent(helios_run)),
                      Table::pct(stallPercent(oracle_run)),
                      dominant(base)});
    }
    table.print();
    std::printf("\nPaper: stall-heavy baselines (xz_1 88%% SQ) gain "
                "most from fusion\n");
    printMatrixTiming(cells.size(), jobs, elapsed);
    return 0;
}
