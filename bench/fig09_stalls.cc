/**
 * @file
 * Figure 9: Rename and Dispatch structural stalls as a percentage of
 * total execution cycles, for the no-fusion baseline, Helios and
 * OracleFusion.
 *
 * The stall table is built from CpiStack cycle accounting in two
 * forms: the paper's ad-hoc stack over the historical rename/dispatch
 * stall counters (which may overlap; the residual absorbs the rest),
 * and the pipeline's exact per-cycle `cpi.*` attribution where every
 * cycle is claimed exactly once (the `exact top` column shows its
 * dominant category for the baseline).
 *
 * Paper reference: applications with large baseline dispatch stalls
 * (657.xz_1: 88% waiting for an SQ entry) see the largest IPC gains;
 * Helios removes a significant share of those stalls.
 */

#include <cstdio>

#include "common/stats.hh"
#include "harness/report.hh"
#include "harness/runner.hh"

using namespace helios;

namespace
{

/** The paper's stall categories as an ad-hoc CPI stack. */
CpiStack
stallStack(const RunResult &result)
{
    CpiStack stack(result.cycles);
    stack.addCategory("prf", result.stat("rename.stall.prf"));
    stack.addCategory("rob", result.stat("dispatch.stall.rob"));
    stack.addCategory("iq", result.stat("dispatch.stall.iq"));
    stack.addCategory("lq", result.stat("dispatch.stall.lq"));
    stack.addCategory("sq", result.stat("dispatch.stall.sq"));
    return stack;
}

double
stallPercent(const RunResult &result)
{
    return stallStack(result).fractionWithPrefix("");
}

std::string
dominant(const RunResult &result)
{
    const CpiStack stack = stallStack(result);
    uint64_t best = 0;
    for (size_t i = 0; i < stack.size(); ++i)
        best = std::max(best, stack.cycles(i));
    return best ? stack.dominant() : "-";
}

} // namespace

int
main()
{
    printBenchHeader(
        "Figure 9 — rename/dispatch structural stalls (% of cycles)",
        "baseline (no fusion) vs Helios vs OracleFusion; 'top' = "
        "dominant stalled resource in the baseline, 'exact top' = "
        "dominant category of the exact per-cycle CPI stack");
    const uint64_t budget = benchInstructionBudget();
    const unsigned jobs = defaultJobCount();

    const FusionMode modes[] = {FusionMode::None, FusionMode::Helios,
                                FusionMode::Oracle};
    std::vector<MatrixCell> cells;
    for (const Workload &workload : allWorkloads())
        for (FusionMode mode : modes)
            cells.emplace_back(workload, mode, budget);

    Stopwatch timer;
    const std::vector<RunResult> results = runMatrix(cells, jobs);
    const double elapsed = timer.seconds();

    Table table({"workload", "baseline", "Helios", "Oracle", "top",
                 "exact top"});
    const auto &workloads = allWorkloads();
    for (size_t w = 0; w < workloads.size(); ++w) {
        const RunResult &base = results[w * 3];
        const RunResult &helios_run = results[w * 3 + 1];
        const RunResult &oracle_run = results[w * 3 + 2];
        const CpiStack exact =
            base.stats.cpiStack(base.cycles);
        table.addRow({workloads[w].name, Table::pct(stallPercent(base)),
                      Table::pct(stallPercent(helios_run)),
                      Table::pct(stallPercent(oracle_run)),
                      dominant(base), exact.dominant()});
        if (!exact.exact())
            std::printf("warning: %s baseline CPI stack residual %lld\n",
                        workloads[w].name.c_str(),
                        (long long)exact.residual());
    }
    table.print();
    std::printf("\nPaper: stall-heavy baselines (xz_1 88%% SQ) gain "
                "most from fusion\n");
    printMatrixTiming(cells.size(), jobs, elapsed);
    return 0;
}
