/**
 * @file
 * Figure 10 — the headline result: IPC of every configuration,
 * normalized to the no-fusion baseline.
 *
 * Paper reference (geomean IPC uplift over no fusion):
 *   RISCVFusion +0.8%, CSF-SBR +6%, RISCVFusion++ +7%,
 *   Helios +14.2% (8.2% over CSF-SBR), OracleFusion +16.3%.
 *
 * Set HELIOS_REPORT=<path> to additionally write the whole matrix as
 * a RunReport JSON file (see OBSERVABILITY.md) for archival or
 * bench/compare_reports diffing against a previous run.
 *
 * Set HELIOS_PROFILE=<window-cycles> to run every cell with the
 * per-PC fusion-site profiler attached (0: profile without windowed
 * time-series samples); the profile sections ride along in the
 * HELIOS_REPORT file.
 */

#include <cstdio>
#include <cstdlib>

#include "harness/report.hh"
#include "harness/run_report.hh"
#include "harness/runner.hh"

using namespace helios;

int
main()
{
    printBenchHeader(
        "Figure 10 — IPC by configuration (normalized to NoFusion)",
        "the paper's headline evaluation");
    const uint64_t budget = benchInstructionBudget();
    const unsigned jobs = defaultJobCount();

    const FusionMode modes[] = {FusionMode::None,
                                FusionMode::RiscvFusion,
                                FusionMode::CsfSbr,
                                FusionMode::RiscvFusionPP,
                                FusionMode::Helios, FusionMode::Oracle};
    constexpr int num_modes = 6;

    // One matrix cell per (workload, mode); results come back in
    // input order, so cell w * num_modes + m is workload w, mode m.
    bool profile = false;
    uint64_t window_cycles = 0;
    if (const char *spec = std::getenv("HELIOS_PROFILE")) {
        profile = true;
        window_cycles = std::strtoull(spec, nullptr, 0);
    }

    std::vector<MatrixCell> cells;
    for (const Workload &workload : allWorkloads())
        for (FusionMode mode : modes) {
            CoreParams params = CoreParams::icelake(mode);
            params.profile = profile;
            params.profileWindowCycles = window_cycles;
            cells.emplace_back(workload, params, budget);
        }

    Stopwatch timer;
    const std::vector<RunResult> results = runMatrix(cells, jobs);
    const double elapsed = timer.seconds();

    Table table({"workload", "base IPC", "RVF", "CSF-SBR", "RVF++",
                 "Helios", "Oracle"});
    std::vector<double> ratios[num_modes - 1];
    const auto &workloads = allWorkloads();
    for (size_t w = 0; w < workloads.size(); ++w) {
        const double base = results[w * num_modes].ipc();
        std::vector<std::string> row = {workloads[w].name,
                                        Table::num(base, 3)};
        for (int i = 1; i < num_modes; ++i) {
            const double ipc = results[w * num_modes + i].ipc();
            ratios[i - 1].push_back(ipc / base);
            row.push_back(Table::num(ipc / base, 3));
        }
        table.addRow(row);
    }
    std::vector<std::string> last = {"GEOMEAN", ""};
    for (auto &ratio : ratios)
        last.push_back(Table::num(geomean(ratio), 3));
    table.addRow(last);
    table.print();

    std::printf("\nGeomean uplift over NoFusion:\n");
    const char *names[] = {"RISCVFusion", "CSF-SBR", "RISCVFusion++",
                           "Helios", "OracleFusion"};
    const double paper[] = {0.8, 6.0, 7.0, 14.2, 16.3};
    for (int i = 0; i < num_modes - 1; ++i)
        std::printf("  %-14s measured %+5.1f%%   paper %+5.1f%%\n",
                    names[i], 100.0 * (geomean(ratios[i]) - 1.0),
                    paper[i]);
    std::printf("  Helios over CSF-SBR: measured %+.1f%% (paper "
                "+8.2%%)\n",
                100.0 * (geomean(ratios[3]) / geomean(ratios[1]) - 1.0));
    printMatrixTiming(cells.size(), jobs, elapsed);

    if (const char *report_path = std::getenv("HELIOS_REPORT")) {
        RunReportFile file;
        file.generator = "fig10_ipc";
        for (const RunResult &result : results)
            file.add(result, budget);
        attachHostSection(file);
        file.save(report_path);
        std::printf("report: %zu runs -> %s\n", file.runs.size(),
                    report_path);
    }
    return 0;
}
