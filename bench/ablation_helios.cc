/**
 * @file
 * Ablations of the Helios design points called out in the paper's
 * text: NCSF nesting depth (Section IV-B: "two nested NCSF'd µ-ops
 * ... sufficient"), the fusion region granularity (Section III-C),
 * the Allocation Queue size (Section V-A: a wide frontend is needed
 * to fill the AQ), and the fetch width itself.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "harness/report.hh"
#include "harness/runner.hh"

using namespace helios;

namespace
{

const char *ablationWorkloads[] = {
    "602.gcc_s_1", "605.mcf_s", "657.xz_s_1", "fft", "dijkstra",
    "qsort", "typeset", "sha",
};

struct Ablation
{
    std::string name;
    std::string value;
    CoreParams params;
};

} // namespace

int
main()
{
    printBenchHeader(
        "Ablations — Helios design points",
        "geomean IPC uplift over no fusion on an 8-workload subset");
    const uint64_t budget = benchInstructionBudget();
    const unsigned jobs = defaultJobCount();

    std::vector<Ablation> ablations;
    for (unsigned depth : {1u, 2u, 4u}) {
        CoreParams params = CoreParams::icelake(FusionMode::Helios);
        params.ncsfNestDepth = depth;
        ablations.push_back(
            {"NCSF nesting depth", std::to_string(depth), params});
    }
    for (unsigned region : {16u, 32u, 64u}) {
        CoreParams params = CoreParams::icelake(FusionMode::Helios);
        params.fusionRegionBytes = region;
        ablations.push_back(
            {"fusion region bytes", std::to_string(region), params});
    }
    for (unsigned aq : {35u, 70u, 140u, 280u}) {
        CoreParams params = CoreParams::icelake(FusionMode::Helios);
        params.aqSize = aq;
        ablations.push_back(
            {"allocation queue size", std::to_string(aq), params});
    }
    for (unsigned width : {5u, 8u}) {
        CoreParams params = CoreParams::icelake(FusionMode::Helios);
        params.fetchWidth = width;
        params.decodeWidth = width;
        ablations.push_back(
            {"fetch/decode width", std::to_string(width), params});
    }
    for (bool dbr_stores : {false, true}) {
        CoreParams params = CoreParams::icelake(FusionMode::Helios);
        params.fuseDbrStorePairs = dbr_stores;
        ablations.push_back(
            {"DBR store pairs", dbr_stores ? "on" : "off", params});
    }
    for (FpKind kind : {FpKind::Tournament, FpKind::Tage}) {
        CoreParams params = CoreParams::icelake(FusionMode::Helios);
        params.fpKind = kind;
        ablations.push_back(
            {"fusion predictor",
             kind == FpKind::Tage ? "TAGE" : "tournament", params});
    }

    // Flatten every (ablation, workload) into a fused run and its
    // no-fusion baseline: cell 2*(a*W + w) is the Helios variant,
    // the next cell its baseline.
    std::vector<MatrixCell> cells;
    for (const Ablation &ablation : ablations) {
        for (const char *name : ablationWorkloads) {
            const Workload &workload = findWorkload(name);
            CoreParams base_params = ablation.params;
            base_params.fusion = FusionMode::None;
            cells.emplace_back(workload, ablation.params, budget);
            cells.emplace_back(workload, base_params, budget);
        }
    }

    Stopwatch timer;
    const std::vector<RunResult> results = runMatrix(cells, jobs);
    const double elapsed = timer.seconds();

    Table table({"ablation", "value", "Helios uplift"});
    constexpr size_t num_workloads = std::size(ablationWorkloads);
    for (size_t a = 0; a < ablations.size(); ++a) {
        std::vector<double> ratios;
        for (size_t w = 0; w < num_workloads; ++w) {
            const size_t base_index = 2 * (a * num_workloads + w);
            const double helios_ipc = results[base_index].ipc();
            const double base = results[base_index + 1].ipc();
            ratios.push_back(helios_ipc / base);
        }
        const double uplift = 100.0 * (geomean(ratios) - 1.0);
        table.addRow({ablations[a].name, ablations[a].value,
                      Table::num(uplift, 2) + "%"});
    }
    table.print();
    std::printf("\nPaper: nesting depth 2 achieves most benefits; an "
                "8-wide frontend is needed to fill the AQ\n");
    printMatrixTiming(cells.size(), jobs, elapsed);
    return 0;
}
