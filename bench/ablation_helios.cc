/**
 * @file
 * Ablations of the Helios design points called out in the paper's
 * text: NCSF nesting depth (Section IV-B: "two nested NCSF'd µ-ops
 * ... sufficient"), the fusion region granularity (Section III-C),
 * the Allocation Queue size (Section V-A: a wide frontend is needed
 * to fill the AQ), and the fetch width itself.
 */

#include <cstdio>

#include "harness/report.hh"
#include "harness/runner.hh"

using namespace helios;

namespace
{

const char *ablationWorkloads[] = {
    "602.gcc_s_1", "605.mcf_s", "657.xz_s_1", "fft", "dijkstra",
    "qsort", "typeset", "sha",
};

double
geomeanUplift(const CoreParams &params, uint64_t budget)
{
    std::vector<double> ratios;
    for (const char *name : ablationWorkloads) {
        const Workload &workload = findWorkload(name);
        CoreParams base_params = params;
        base_params.fusion = FusionMode::None;
        const double base = runOne(workload, base_params, budget).ipc();
        const double helios_ipc =
            runOne(workload, params, budget).ipc();
        ratios.push_back(helios_ipc / base);
    }
    return 100.0 * (geomean(ratios) - 1.0);
}

} // namespace

int
main()
{
    printBenchHeader(
        "Ablations — Helios design points",
        "geomean IPC uplift over no fusion on an 8-workload subset");
    const uint64_t budget = benchInstructionBudget();

    Table table({"ablation", "value", "Helios uplift"});

    for (unsigned depth : {1u, 2u, 4u}) {
        CoreParams params = CoreParams::icelake(FusionMode::Helios);
        params.ncsfNestDepth = depth;
        table.addRow({"NCSF nesting depth", std::to_string(depth),
                      Table::num(geomeanUplift(params, budget), 2) +
                          "%"});
    }
    for (unsigned region : {16u, 32u, 64u}) {
        CoreParams params = CoreParams::icelake(FusionMode::Helios);
        params.fusionRegionBytes = region;
        table.addRow({"fusion region bytes", std::to_string(region),
                      Table::num(geomeanUplift(params, budget), 2) +
                          "%"});
    }
    for (unsigned aq : {35u, 70u, 140u, 280u}) {
        CoreParams params = CoreParams::icelake(FusionMode::Helios);
        params.aqSize = aq;
        table.addRow({"allocation queue size", std::to_string(aq),
                      Table::num(geomeanUplift(params, budget), 2) +
                          "%"});
    }
    for (unsigned width : {5u, 8u}) {
        CoreParams params = CoreParams::icelake(FusionMode::Helios);
        params.fetchWidth = width;
        params.decodeWidth = width;
        table.addRow({"fetch/decode width", std::to_string(width),
                      Table::num(geomeanUplift(params, budget), 2) +
                          "%"});
    }
    for (bool dbr_stores : {false, true}) {
        CoreParams params = CoreParams::icelake(FusionMode::Helios);
        params.fuseDbrStorePairs = dbr_stores;
        table.addRow({"DBR store pairs", dbr_stores ? "on" : "off",
                      Table::num(geomeanUplift(params, budget), 2) +
                          "%"});
    }
    for (FpKind kind : {FpKind::Tournament, FpKind::Tage}) {
        CoreParams params = CoreParams::icelake(FusionMode::Helios);
        params.fpKind = kind;
        table.addRow({"fusion predictor",
                      kind == FpKind::Tage ? "TAGE" : "tournament",
                      Table::num(geomeanUplift(params, budget), 2) +
                          "%"});
    }
    table.print();
    std::printf("\nPaper: nesting depth 2 achieves most benefits; an "
                "8-wide frontend is needed to fill the AQ\n");
    return 0;
}
